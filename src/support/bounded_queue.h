#ifndef PGIVM_SUPPORT_BOUNDED_QUEUE_H_
#define PGIVM_SUPPORT_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace pgivm {

/// A bounded multi-producer queue with blocking backpressure, feeding one
/// consumer that drains in batches.
///
/// Producers (any number of threads) Push(); when the queue is at
/// capacity they block until the consumer makes room — the backpressure
/// that keeps a burst of submitters from buffering unbounded work. The
/// consumer PopAll()s everything queued at once, which is what batches
/// submissions into one propagation drain downstream (QueryEngine's ingest
/// thread): the faster producers outpace the consumer, the larger the
/// batches get, instead of the queue growing.
///
/// Close() shuts the queue down: blocked producers wake and their Push
/// fails, the consumer drains what is left and then gets 0.
template <typename T>
class BoundedQueue {
 public:
  /// `capacity` below 1 is clamped to 1.
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item`, blocking while the queue is full. Returns false —
  /// dropping `item` — if the queue is (or gets) closed instead.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Appends every queued item to `out` and returns how many, blocking
  /// until at least one is available. Returns 0 only when the queue is
  /// closed and fully drained — the consumer's termination signal.
  size_t PopAll(std::vector<T>& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    size_t n = items_.size();
    out.reserve(out.size() + n);
    for (T& item : items_) out.push_back(std::move(item));
    items_.clear();
    lock.unlock();
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Shuts the queue down (idempotent); see class comment.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;   // producers park here
  std::condition_variable not_empty_;  // the consumer parks here
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pgivm

#endif  // PGIVM_SUPPORT_BOUNDED_QUEUE_H_
