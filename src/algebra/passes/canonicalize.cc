// Canonical plan normalization (PlanOptions::canonicalize, the last FRA
// pass). Logically equal queries reach this pass as structurally different
// trees — the compiler joins MATCH parts in clause order, filter pushdown
// visits conjuncts in WHERE order, property pushdown appends extracts in
// reference order. This pass rewrites all of that order away: after it,
// clause permutations, alias renames and commuted conjuncts produce plans
// whose canonical fingerprints (algebra/plan_fingerprint.h) are equal, so
// the catalog's NodeRegistry maps them onto one shared Rete sub-network.
//
// Every rewrite below is a bag-algebra identity (natural joins are
// commutative and associative, selections commute with joins and each
// other, semi/anti joins filter only their left input, union is
// commutative), and operators keep their output column *names* — so
// downstream name-based binding, and with it every view snapshot, is
// unchanged. Only intermediate column order and node placement move.

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "algebra/passes/pass_manager.h"
#include "algebra/plan_fingerprint.h"

namespace pgivm {

namespace {

bool SchemaBinds(const Schema& schema, const std::vector<std::string>& vars) {
  for (const std::string& var : vars) {
    if (!schema.Contains(var)) return false;
  }
  return true;
}

bool SharesColumn(const Schema& acc, const Schema& leaf) {
  for (const Attribute& attr : leaf.attributes()) {
    if (acc.Contains(attr.name)) return true;
  }
  return false;
}

/// Positional rendering of the natural-join key pairs `acc` ⋈ `leaf` — the
/// alias-insensitive tie-break between leaves with equal fingerprints that
/// attach to the already-joined prefix on different columns (two identical
/// vertex scans binding the two endpoints of one edge, say).
std::string JoinSignature(const Schema& acc, const Schema& leaf) {
  std::string out = "{";
  for (size_t i = 0; i < acc.size(); ++i) {
    int r = leaf.IndexOf(acc.at(i).name);
    if (r < 0) continue;
    out.append(std::to_string(i));
    out.push_back('~');
    out.append(std::to_string(r));
    out.push_back(',');
  }
  out.push_back('}');
  return out;
}

/// (what, role, property key) — unique per leaf (property pushdown dedups
/// identical accesses) and free of the alias-derived column name, so the
/// extract order is stable under renames.
bool ExtractLess(const PropertyExtract& a, const PropertyExtract& b,
                 const LogicalOp& op) {
  auto role = [&op](const PropertyExtract& e) {
    if (e.element_var == op.src_var) return 0;
    if (e.element_var == op.edge_var) return 1;
    if (e.element_var == op.dst_var) return 2;
    return 3;  // vertex leaves: single element, role irrelevant
  };
  if (role(a) != role(b)) return role(a) < role(b);
  if (a.what != b.what) return a.what < b.what;
  return a.key < b.key;
}

/// The pass. Canonicalizes bottom-up; every returned subtree has its
/// schema recomputed (ComputeSchemaShallow), because ordering keys are
/// position-based and need valid schemas at each step.
class Canonicalizer {
 public:
  Result<OpPtr> Run(const OpPtr& op) {
    switch (op->kind) {
      case OpKind::kJoin:
      case OpKind::kSelection:
        return CanonJoinRegion(op);
      case OpKind::kSemiJoin:
      case OpKind::kAntiJoin:
        return CanonSemiAntiChain(op);
      case OpKind::kUnion:
        return CanonUnion(op);
      default:
        return CanonDefault(op);
    }
  }

 private:
  /// Key-sorts `items` (projection / group-by / aggregate lists); ties and
  /// unkeyable expressions keep their original relative order.
  static void SortNamedExprs(
      std::vector<std::pair<std::string, ExprPtr>>& items,
      const Schema& scope) {
    std::vector<std::pair<std::string, std::pair<std::string, ExprPtr>>>
        keyed;
    keyed.reserve(items.size());
    for (auto& item : items) {
      keyed.emplace_back(CanonicalExprKey(item.second, scope),
                         std::move(item));
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                       return CanonicalKeyLess(a.first, b.first);
                     });
    items.clear();
    for (auto& [key, item] : keyed) {
      (void)key;
      items.push_back(std::move(item));
    }
  }

  /// Everything that is not a join region / filter chain / union /
  /// semi-anti chain: canonicalize children, order the operator's own
  /// commutative payload, recompute the schema.
  Result<OpPtr> CanonDefault(const OpPtr& op) {
    auto copy = std::make_shared<LogicalOp>(*op);
    for (OpPtr& child : copy->children) {
      PGIVM_ASSIGN_OR_RETURN(child, Run(child));
    }
    switch (copy->kind) {
      case OpKind::kGetVertices:
        std::sort(copy->labels.begin(), copy->labels.end());
        std::sort(copy->extracts.begin(), copy->extracts.end(),
                  [&copy](const PropertyExtract& a, const PropertyExtract& b) {
                    return ExtractLess(a, b, *copy);
                  });
        break;

      case OpKind::kGetEdges:
        std::sort(copy->edge_types.begin(), copy->edge_types.end());
        std::sort(copy->extracts.begin(), copy->extracts.end(),
                  [&copy](const PropertyExtract& a, const PropertyExtract& b) {
                    return ExtractLess(a, b, *copy);
                  });
        break;

      case OpKind::kPathJoin:
        std::sort(copy->edge_types.begin(), copy->edge_types.end());
        break;

      case OpKind::kUnnest:
        copy->unnest_expr =
            CanonicalizeExpr(copy->unnest_expr, copy->children[0]->schema);
        std::sort(copy->unnest_drop_columns.begin(),
                  copy->unnest_drop_columns.end());
        break;

      case OpKind::kProjection: {
        const Schema& child = copy->children[0]->schema;
        for (auto& [name, expr] : copy->projections) {
          (void)name;
          expr = CanonicalizeExpr(expr, child);
        }
        SortNamedExprs(copy->projections, child);
        break;
      }

      case OpKind::kProduce: {
        // The view root: column order is user-visible (RETURN order), so
        // only the expressions canonicalize, never the item order.
        const Schema& child = copy->children[0]->schema;
        for (auto& [name, expr] : copy->projections) {
          (void)name;
          expr = CanonicalizeExpr(expr, child);
        }
        break;
      }

      case OpKind::kAggregate: {
        const Schema& child = copy->children[0]->schema;
        for (auto* items : {&copy->group_by, &copy->aggregates}) {
          for (auto& [name, expr] : *items) {
            (void)name;
            expr = CanonicalizeExpr(expr, child);
          }
          SortNamedExprs(*items, child);
        }
        break;
      }

      default:
        break;  // kUnit/kDistinct/kLeftOuterJoin carry no commutative payload
    }
    PGIVM_RETURN_IF_ERROR(ComputeSchemaShallow(copy));
    // An undirected (kBoth) edge scan emits both orientations of every
    // edge, so swapping its endpoint roles is a pure renaming — the two
    // spellings bind identical rows (see MirrorUndirectedLeaf). Pin the
    // orientation to the smaller fingerprint, so `(a)-[e]-(b)` and
    // `(b)-[e]-(a)` leaves with asymmetric extracts canonicalize — and
    // therefore share — identically. Symmetric leaves tie here; their
    // orientation is resolved at the join-region level (CanonJoinRegion),
    // where the attachment to the neighbors breaks the tie.
    if (copy->kind == OpKind::kGetEdges &&
        copy->direction == EdgeDirection::kBoth) {
      OpPtr mirror = MirrorUndirectedLeaf(*copy);
      if (mirror != nullptr) {
        std::string key = CanonicalPlanKey(*copy);
        std::string mirror_key = CanonicalPlanKey(*mirror);
        if (CanonicalKeyLess(mirror_key, key)) return mirror;
      }
    }
    return copy;
  }

  // ---- join regions ---------------------------------------------------------

  /// A *join region* is a maximal subtree of inner natural joins with
  /// selections interleaved anywhere. Its semantics are fully described by
  /// the leaf multiset and the conjunct multiset; the internal shape is the
  /// compiler's clause-order accident that this pass normalizes away.
  static void FlattenRegion(const OpPtr& op, std::vector<OpPtr>* leaves,
                            std::vector<ExprPtr>* conjuncts) {
    if (op->kind == OpKind::kJoin) {
      FlattenRegion(op->children[0], leaves, conjuncts);
      FlattenRegion(op->children[1], leaves, conjuncts);
      return;
    }
    if (op->kind == OpKind::kSelection) {
      for (const ExprPtr& conjunct : SplitConjuncts(op->predicate)) {
        conjuncts->push_back(conjunct);
      }
      FlattenRegion(op->children[0], leaves, conjuncts);
      return;
    }
    leaves->push_back(op);
  }

  struct Leaf {
    OpPtr op;
    std::string key;
    /// Weisfeiler–Leman-refined tie-break key, filled by RefineLeafKeys:
    /// equal-fingerprint leaves are distinguished by how they attach to
    /// the rest of the region. Never part of the registry fingerprint.
    std::string refined;
    size_t index;  // original region position — the last-resort tie-break
  };

  static std::string HashHex(const std::string& blob) {
    static const char* kHex = "0123456789abcdef";
    uint64_t hash = FingerprintHash(blob);
    std::string out;
    out.reserve(16);
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(kHex[(hash >> shift) & 0xf]);
    }
    return out;
  }

  /// Iterated neighborhood refinement (Weisfeiler–Leman coloring) of the
  /// leaf fingerprints: two same-shaped leaves — say the two edge scans of
  /// `(a)-[:R]->(b), (c)-[:R]->(d), (b)-[:S]->(c)` — have equal base
  /// fingerprints, but attach to the rest of the region on different
  /// columns; each round folds every neighbor's (positional join
  /// signature, current color) multiset into the leaf's color, so such
  /// ties resolve without falling back to clause order. Built purely from
  /// alias-insensitive parts and multisets over the leaf set, so the
  /// result is invariant under MATCH permutations and renames. Colors are
  /// re-hashed per round to stay short; a hash collision only weakens a
  /// tie-break, never a fingerprint. Leaves truly automorphic in the
  /// region stay tied (and then either order yields isomorphic plans).
  static void RefineLeafKeys(std::vector<Leaf>& leaves) {
    const size_t n = leaves.size();
    std::vector<std::string> color(n);
    for (size_t i = 0; i < n; ++i) color[i] = leaves[i].key;
    // Region diameters are tiny; three rounds separate everything the
    // signature graph can separate in practice.
    const int kRounds = 3;
    std::vector<std::string> next(n);
    for (int round = 0; round < kRounds; ++round) {
      for (size_t i = 0; i < n; ++i) {
        std::vector<std::string> attachments;
        for (size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          if (!SharesColumn(leaves[i].op->schema, leaves[j].op->schema)) {
            continue;
          }
          attachments.push_back(
              JoinSignature(leaves[i].op->schema, leaves[j].op->schema) +
              "|" + color[j]);
        }
        std::sort(attachments.begin(), attachments.end());
        std::string blob = color[i];
        for (const std::string& attachment : attachments) {
          blob.push_back(';');
          blob.append(attachment);
        }
        next[i] = HashHex(blob);
      }
      color.swap(next);
    }
    for (size_t i = 0; i < n; ++i) leaves[i].refined = std::move(color[i]);
  }

  /// Canonical leaf order: start at the globally smallest fingerprint, then
  /// repeatedly append the smallest-keyed leaf that shares a column with
  /// the prefix joined so far (ties broken by the refined color, then by
  /// how the leaf attaches — the positional join signature). Preferring
  /// connected leaves means no cross product is introduced where the
  /// source plan had none; every criterion is alias-insensitive and
  /// multiset-derived, so any permutation of the same leaf multiset
  /// orders identically up to true automorphisms. Fills `prefix` with the
  /// left-deep prefix schemas.
  static std::vector<size_t> OrderLeaves(std::vector<Leaf>& leaves,
                                         std::vector<Schema>* prefix) {
    const size_t n = leaves.size();
    RefineLeafKeys(leaves);
    std::vector<size_t> order;
    order.reserve(n);
    std::vector<bool> used(n, false);

    auto start_less = [&leaves](size_t a, size_t b) {
      const Leaf& la = leaves[a];
      const Leaf& lb = leaves[b];
      if (la.key != lb.key) return CanonicalKeyLess(la.key, lb.key);
      if (la.refined != lb.refined) return la.refined < lb.refined;
      return la.index < lb.index;
    };
    size_t start = 0;
    for (size_t i = 1; i < n; ++i) {
      if (start_less(i, start)) start = i;
    }
    order.push_back(start);
    used[start] = true;
    Schema acc = leaves[start].op->schema;
    prefix->push_back(acc);

    while (order.size() < n) {
      size_t best = n;
      bool best_connected = false;
      std::string best_sig;
      for (size_t i = 0; i < n; ++i) {
        if (used[i]) continue;
        bool connected = SharesColumn(acc, leaves[i].op->schema);
        std::string sig =
            connected ? JoinSignature(acc, leaves[i].op->schema)
                      : std::string();
        bool better;
        if (best == n) {
          better = true;
        } else if (connected != best_connected) {
          better = connected;
        } else if (leaves[i].key != leaves[best].key) {
          better = CanonicalKeyLess(leaves[i].key, leaves[best].key);
        } else if (leaves[i].refined != leaves[best].refined) {
          better = leaves[i].refined < leaves[best].refined;
        } else if (sig != best_sig) {
          better = sig < best_sig;
        } else {
          better = leaves[i].index < leaves[best].index;
        }
        if (better) {
          best = i;
          best_connected = connected;
          best_sig = std::move(sig);
        }
      }
      order.push_back(best);
      used[best] = true;
      // Extend the prefix schema exactly as kJoin's schema rule does:
      // left columns, then right columns not already present.
      for (const Attribute& attr : leaves[best].op->schema.attributes()) {
        if (!acc.Contains(attr.name)) acc.Add(attr);
      }
      prefix->push_back(acc);
    }
    return order;
  }

  /// Wraps `node` in one σ carrying `conjuncts` canonicalized against the
  /// site schema, key-sorted, and deduplicated (equal canonical keys render
  /// the same positional predicate — σ is idempotent, so the duplicate is
  /// dead weight).
  Result<OpPtr> WrapSelection(OpPtr node, std::vector<ExprPtr> conjuncts) {
    if (conjuncts.empty()) return node;
    const Schema& scope = node->schema;
    std::vector<std::pair<std::string, ExprPtr>> keyed;
    keyed.reserve(conjuncts.size());
    for (ExprPtr& conjunct : conjuncts) {
      ExprPtr canon = CanonicalizeExpr(conjunct, scope);
      keyed.emplace_back(CanonicalExprKey(canon, scope), std::move(canon));
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                       return CanonicalKeyLess(a.first, b.first);
                     });
    std::vector<ExprPtr> terms;
    terms.reserve(keyed.size());
    for (size_t i = 0; i < keyed.size(); ++i) {
      if (i > 0 && !keyed[i].first.empty() &&
          keyed[i].first == keyed[i - 1].first) {
        continue;  // duplicate conjunct
      }
      terms.push_back(std::move(keyed[i].second));
    }
    OpPtr selection = MakeOp(OpKind::kSelection, {std::move(node)});
    selection->predicate = ConjoinAll(std::move(terms));
    PGIVM_RETURN_IF_ERROR(ComputeSchemaShallow(selection));
    return selection;
  }

  Result<OpPtr> CanonJoinRegion(const OpPtr& op) {
    std::vector<OpPtr> raw_leaves;
    std::vector<ExprPtr> conjuncts;
    FlattenRegion(op, &raw_leaves, &conjuncts);

    std::vector<Leaf> leaves;
    leaves.reserve(raw_leaves.size());
    for (size_t i = 0; i < raw_leaves.size(); ++i) {
      PGIVM_ASSIGN_OR_RETURN(OpPtr canon, Run(raw_leaves[i]));
      std::string key = CanonicalPlanKey(*canon);
      leaves.push_back({std::move(canon), std::move(key), std::string(), i});
    }

    // Undirected leaves whose two orientations fingerprint identically
    // (CanonDefault could not pin them) still render the *region*
    // differently — which endpoint joins which neighbor moves the join
    // signatures. No alias-free criterion ranks the orientations up
    // front, so enumerate: rebuild the region for every assignment over
    // the ambiguous leaves and keep the smallest rendering. Regions have
    // at most a handful of undirected edges; the enumeration is capped
    // (leaves beyond the cap keep their given orientation) so the worst
    // case stays at 2^4 rebuilds of one small region.
    constexpr size_t kMaxAmbiguous = 4;
    std::vector<std::pair<size_t, OpPtr>> ambiguous;  // leaf index → mirror
    for (size_t i = 0;
         i < leaves.size() && ambiguous.size() < kMaxAmbiguous; ++i) {
      if (leaves[i].key.empty()) continue;  // unshareable: not worth picking
      OpPtr mirror = MirrorUndirectedLeaf(*leaves[i].op);
      if (mirror == nullptr) continue;
      if (CanonicalPlanKey(*mirror) != leaves[i].key) continue;
      ambiguous.emplace_back(i, std::move(mirror));
    }
    if (ambiguous.empty()) {
      return BuildRegion(std::move(leaves), std::move(conjuncts));
    }
    OpPtr best;
    std::string best_key;
    for (uint32_t mask = 0; mask < (1u << ambiguous.size()); ++mask) {
      std::vector<Leaf> attempt = leaves;  // leaf ops are never mutated
      for (size_t bit = 0; bit < ambiguous.size(); ++bit) {
        if (mask & (1u << bit)) {
          attempt[ambiguous[bit].first].op = ambiguous[bit].second;
        }
      }
      PGIVM_ASSIGN_OR_RETURN(OpPtr candidate,
                             BuildRegion(std::move(attempt), conjuncts));
      std::string key = CanonicalPlanKey(*candidate);
      if (best == nullptr || CanonicalKeyLess(key, best_key)) {
        best = std::move(candidate);
        best_key = std::move(key);
      }
    }
    return best;
  }

  /// Rebuilds one join region from its canonicalized leaves and conjunct
  /// multiset: canonical leaf order, conjuncts re-pushed to their deepest
  /// binding site, left-deep kJoin chain.
  Result<OpPtr> BuildRegion(std::vector<Leaf> leaves,
                            std::vector<ExprPtr> conjuncts) {
    std::vector<Schema> prefix;
    prefix.reserve(leaves.size());
    std::vector<size_t> order = OrderLeaves(leaves, &prefix);
    const size_t n = order.size();

    // Re-push every conjunct to its deepest binding site in the canonical
    // tree: the first single leaf whose schema binds all its variables, or
    // failing that the shortest left-deep prefix. Filtering either side of
    // a natural join on shared columns is equivalent to filtering the join,
    // so any binding site yields the same region output; picking the first
    // makes the choice canonical.
    std::vector<std::vector<ExprPtr>> leaf_conjuncts(n);
    std::vector<std::vector<ExprPtr>> prefix_conjuncts(n);
    for (ExprPtr& conjunct : conjuncts) {
      std::vector<std::string> vars;
      conjunct->CollectVariables(vars);
      bool placed = false;
      for (size_t p = 0; p < n && !placed; ++p) {
        if (SchemaBinds(leaves[order[p]].op->schema, vars)) {
          leaf_conjuncts[p].push_back(std::move(conjunct));
          placed = true;
        }
      }
      for (size_t k = 1; k < n && !placed; ++k) {
        if (SchemaBinds(prefix[k], vars)) {
          prefix_conjuncts[k].push_back(std::move(conjunct));
          placed = true;
        }
      }
      if (!placed) {
        // A variable the region does not bind — keep the conjunct at the
        // topmost site so WrapSelection's schema validation reports it
        // (prefix slot 0 is never applied: the rebuild loop starts at 1,
        // so a single-leaf region must fall back to the leaf site).
        if (n == 1) {
          leaf_conjuncts[0].push_back(std::move(conjunct));
        } else {
          prefix_conjuncts[n - 1].push_back(std::move(conjunct));
        }
      }
    }

    PGIVM_ASSIGN_OR_RETURN(
        OpPtr current,
        WrapSelection(leaves[order[0]].op, std::move(leaf_conjuncts[0])));
    for (size_t k = 1; k < n; ++k) {
      PGIVM_ASSIGN_OR_RETURN(
          OpPtr rhs, WrapSelection(leaves[order[k]].op,
                                   std::move(leaf_conjuncts[k])));
      OpPtr join =
          MakeOp(OpKind::kJoin, {std::move(current), std::move(rhs)});
      PGIVM_RETURN_IF_ERROR(ComputeSchemaShallow(join));
      PGIVM_ASSIGN_OR_RETURN(
          current,
          WrapSelection(std::move(join), std::move(prefix_conjuncts[k])));
    }
    return current;
  }

  // ---- semi/anti-join chains ------------------------------------------------

  /// exists() conjuncts become a left-nested chain of semi/anti joins in
  /// WHERE order. Each one only filters the left input (the probe side is
  /// read-only), so they commute freely: re-order by (kind, probe
  /// fingerprint).
  Result<OpPtr> CanonSemiAntiChain(const OpPtr& op) {
    struct Probe {
      OpKind kind;
      OpPtr plan;
      std::string key;
      size_t index;
    };
    std::vector<Probe> probes;
    OpPtr base = op;
    while (base->kind == OpKind::kSemiJoin ||
           base->kind == OpKind::kAntiJoin) {
      probes.push_back({base->kind, base->children[1], std::string(),
                        probes.size()});
      base = base->children[0];
    }
    std::reverse(probes.begin(), probes.end());  // innermost first
    PGIVM_ASSIGN_OR_RETURN(OpPtr current, Run(base));
    for (Probe& probe : probes) {
      PGIVM_ASSIGN_OR_RETURN(probe.plan, Run(probe.plan));
      probe.key = CanonicalPlanKey(*probe.plan);
    }
    std::stable_sort(probes.begin(), probes.end(),
                     [](const Probe& a, const Probe& b) {
                       if (a.kind != b.kind) {
                         return a.kind == OpKind::kSemiJoin;
                       }
                       return CanonicalKeyLess(a.key, b.key);
                     });
    for (Probe& probe : probes) {
      OpPtr join =
          MakeOp(probe.kind, {std::move(current), std::move(probe.plan)});
      PGIVM_RETURN_IF_ERROR(ComputeSchemaShallow(join));
      current = std::move(join);
    }
    return current;
  }

  // ---- unions ---------------------------------------------------------------

  static void FlattenUnion(const OpPtr& op, std::vector<OpPtr>* branches) {
    if (op->kind == OpKind::kUnion) {
      FlattenUnion(op->children[0], branches);
      FlattenUnion(op->children[1], branches);
      return;
    }
    branches->push_back(op);
  }

  /// Bag union is commutative and associative; branches are key-sorted and
  /// rebuilt left-deep. The first branch's column order becomes the output
  /// order — names are preserved, so the Produce above re-projects
  /// identically.
  Result<OpPtr> CanonUnion(const OpPtr& op) {
    std::vector<OpPtr> raw;
    FlattenUnion(op, &raw);
    std::vector<std::pair<std::string, OpPtr>> branches;
    branches.reserve(raw.size());
    for (OpPtr& branch : raw) {
      PGIVM_ASSIGN_OR_RETURN(OpPtr canon, Run(branch));
      branches.emplace_back(CanonicalPlanKey(*canon), std::move(canon));
    }
    std::stable_sort(branches.begin(), branches.end(),
                     [](const auto& a, const auto& b) {
                       return CanonicalKeyLess(a.first, b.first);
                     });
    OpPtr current = std::move(branches[0].second);
    for (size_t i = 1; i < branches.size(); ++i) {
      OpPtr merged = MakeOp(OpKind::kUnion, {std::move(current),
                                             std::move(branches[i].second)});
      PGIVM_RETURN_IF_ERROR(ComputeSchemaShallow(merged));
      current = std::move(merged);
    }
    return current;
  }
};

}  // namespace

Result<OpPtr> CanonicalizePlan(const OpPtr& root) {
  return Canonicalizer().Run(root);
}

}  // namespace pgivm
