#ifndef PGIVM_CYPHER_LEXER_H_
#define PGIVM_CYPHER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "cypher/token.h"
#include "support/status.h"

namespace pgivm {

/// Tokenizes an openCypher query string. Comments (`// ...` and `/* ... */`)
/// and whitespace are skipped; keywords are recognized case-insensitively.
///
/// Returns the full token stream (terminated by a kEnd token) or a
/// position-annotated error for malformed input.
Result<std::vector<Token>> Tokenize(std::string_view query);

}  // namespace pgivm

#endif  // PGIVM_CYPHER_LEXER_H_
