#include <gtest/gtest.h>

#include "rete/aggregate_node.h"
#include "rete/antijoin_node.h"
#include "rete/distinct_node.h"
#include "rete/filter_node.h"
#include "rete/join_node.h"
#include "rete/project_node.h"
#include "rete/semijoin_node.h"
#include "rete/union_node.h"
#include "rete/unnest_node.h"

namespace pgivm {
namespace {

/// Net-effect recorder. Unlike pgivm::Bag it tolerates negative counts:
/// several tests feed nodes raw retraction streams and assert on the net
/// multiplicity, which may legitimately dip below zero at a sink that never
/// saw the original assertions.
class SignedBag {
 public:
  void Apply(const Tuple& tuple, int64_t multiplicity) {
    auto it = counts_.emplace(tuple, 0).first;
    it->second += multiplicity;
    total_ += multiplicity;
    if (it->second == 0) counts_.erase(it);
  }
  int64_t Count(const Tuple& tuple) const {
    auto it = counts_.find(tuple);
    return it == counts_.end() ? 0 : it->second;
  }
  int64_t total_count() const { return total_; }

 private:
  std::unordered_map<Tuple, int64_t, TupleHash> counts_;
  int64_t total_ = 0;
};

/// Terminal node that accumulates everything it receives into a bag.
class SinkNode : public ReteNode {
 public:
  SinkNode() : ReteNode(Schema{}) {}
  void OnDelta(int port, const Delta& delta) override {
    (void)port;
    for (const DeltaEntry& entry : delta) {
      bag.Apply(entry.tuple, entry.multiplicity);
      ++entries_seen;
    }
  }
  std::string DebugString() const override { return "Sink"; }

  SignedBag bag;
  int entries_seen = 0;
};

Schema OneCol(const char* name) {
  return Schema({{name, Attribute::Kind::kValue}});
}

Schema TwoCols(const char* a, const char* b) {
  return Schema({{a, Attribute::Kind::kValue},
                 {b, Attribute::Kind::kValue}});
}

Tuple T1(int64_t a) { return Tuple({Value::Int(a)}); }
Tuple T2(int64_t a, int64_t b) {
  return Tuple({Value::Int(a), Value::Int(b)});
}

BoundExpression Bind(const ExprPtr& expr, const Schema& schema) {
  Result<BoundExpression> bound = BoundExpression::Bind(expr, schema);
  EXPECT_TRUE(bound.ok()) << bound.status();
  return std::move(bound).value();
}

// ---- FilterNode ------------------------------------------------------------

TEST(FilterNodeTest, KeepsOnlyTrueRows) {
  Schema schema = OneCol("x");
  ExprPtr pred = MakeBinary(BinaryOp::kGt, MakeVariable("x"),
                            MakeLiteral(Value::Int(2)));
  FilterNode filter(schema, Bind(pred, schema));
  SinkNode sink;
  filter.AddOutput(&sink, 0);

  filter.OnDelta(0, {{T1(1), 1}, {T1(3), 2}, {T1(5), 1}});
  EXPECT_EQ(sink.bag.Count(T1(1)), 0);
  EXPECT_EQ(sink.bag.Count(T1(3)), 2);
  EXPECT_EQ(sink.bag.Count(T1(5)), 1);

  filter.OnDelta(0, {{T1(3), -2}});
  EXPECT_EQ(sink.bag.Count(T1(3)), 0);
}

// ---- ProjectNode -----------------------------------------------------------

TEST(ProjectNodeTest, MapsAndPreservesMultiplicity) {
  Schema in = OneCol("x");
  Schema out = OneCol("y");
  std::vector<BoundExpression> columns;
  columns.push_back(Bind(MakeBinary(BinaryOp::kMul, MakeVariable("x"),
                                    MakeLiteral(Value::Int(10))),
                         in));
  ProjectNode project(out, std::move(columns));
  SinkNode sink;
  project.AddOutput(&sink, 0);

  project.OnDelta(0, {{T1(2), 3}, {T1(4), -1}});
  EXPECT_EQ(sink.bag.Count(T1(20)), 3);
  EXPECT_EQ(sink.bag.Count(T1(40)), -1);
}

// ---- JoinNode --------------------------------------------------------------

TEST(JoinNodeTest, NaturalJoinOnSharedColumn) {
  Schema left = TwoCols("k", "a");
  Schema right = TwoCols("k", "b");
  Schema out({{"k", Attribute::Kind::kValue},
              {"a", Attribute::Kind::kValue},
              {"b", Attribute::Kind::kValue}});
  JoinNode join(out, left, right);
  SinkNode sink;
  join.AddOutput(&sink, 0);

  join.OnDelta(0, {{T2(1, 10), 1}});
  EXPECT_EQ(sink.bag.total_count(), 0);  // No right side yet.
  join.OnDelta(1, {{T2(1, 100), 1}});
  EXPECT_EQ(sink.bag.Count(Tuple({Value::Int(1), Value::Int(10),
                                  Value::Int(100)})),
            1);
  // Non-matching key produces nothing.
  join.OnDelta(1, {{T2(2, 200), 1}});
  EXPECT_EQ(sink.bag.total_count(), 1);
}

TEST(JoinNodeTest, MultiplicitiesMultiply) {
  Schema left = TwoCols("k", "a");
  Schema right = TwoCols("k", "b");
  Schema out({{"k", Attribute::Kind::kValue},
              {"a", Attribute::Kind::kValue},
              {"b", Attribute::Kind::kValue}});
  JoinNode join(out, left, right);
  SinkNode sink;
  join.AddOutput(&sink, 0);

  join.OnDelta(0, {{T2(1, 10), 2}});
  join.OnDelta(1, {{T2(1, 100), 3}});
  EXPECT_EQ(sink.bag.Count(Tuple({Value::Int(1), Value::Int(10),
                                  Value::Int(100)})),
            6);
}

TEST(JoinNodeTest, RetractionCascades) {
  Schema left = TwoCols("k", "a");
  Schema right = TwoCols("k", "b");
  Schema out({{"k", Attribute::Kind::kValue},
              {"a", Attribute::Kind::kValue},
              {"b", Attribute::Kind::kValue}});
  JoinNode join(out, left, right);
  SinkNode sink;
  join.AddOutput(&sink, 0);

  join.OnDelta(0, {{T2(1, 10), 1}});
  join.OnDelta(1, {{T2(1, 100), 1}});
  join.OnDelta(0, {{T2(1, 10), -1}});
  EXPECT_EQ(sink.bag.total_count(), 0);
  EXPECT_GT(join.ApproxMemoryBytes(), 0u);  // Right memory still holds a row.
}

TEST(JoinNodeTest, CrossJoinWhenNoSharedColumns) {
  Schema left = OneCol("a");
  Schema right = OneCol("b");
  Schema out = TwoCols("a", "b");
  JoinNode join(out, left, right);
  SinkNode sink;
  join.AddOutput(&sink, 0);

  join.OnDelta(0, {{T1(1), 1}, {T1(2), 1}});
  join.OnDelta(1, {{T1(9), 1}});
  EXPECT_EQ(sink.bag.Count(T2(1, 9)), 1);
  EXPECT_EQ(sink.bag.Count(T2(2, 9)), 1);
}

// ---- AntiJoinNode ----------------------------------------------------------

TEST(AntiJoinNodeTest, EmitsLeftWithoutPartner) {
  Schema left = TwoCols("k", "a");
  Schema right = OneCol("k");
  AntiJoinNode anti(left, left, right);
  SinkNode sink;
  anti.AddOutput(&sink, 0);

  anti.OnDelta(0, {{T2(1, 10), 1}});
  EXPECT_EQ(sink.bag.Count(T2(1, 10)), 1);  // No partner yet.

  anti.OnDelta(1, {{T1(1), 1}});  // Partner arrives: retract.
  EXPECT_EQ(sink.bag.Count(T2(1, 10)), 0);

  anti.OnDelta(1, {{T1(1), -1}});  // Partner leaves: re-assert.
  EXPECT_EQ(sink.bag.Count(T2(1, 10)), 1);
}

TEST(AntiJoinNodeTest, LeftArrivingAfterPartnerSuppressed) {
  Schema left = TwoCols("k", "a");
  Schema right = OneCol("k");
  AntiJoinNode anti(left, left, right);
  SinkNode sink;
  anti.AddOutput(&sink, 0);

  anti.OnDelta(1, {{T1(1), 1}});
  anti.OnDelta(0, {{T2(1, 10), 1}});
  EXPECT_EQ(sink.bag.total_count(), 0);
  anti.OnDelta(0, {{T2(2, 20), 1}});
  EXPECT_EQ(sink.bag.Count(T2(2, 20)), 1);
}

// ---- SemiJoinNode ----------------------------------------------------------

TEST(SemiJoinNodeTest, EmitsLeftWithPartnerOnly) {
  Schema left = TwoCols("k", "a");
  Schema right = OneCol("k");
  SemiJoinNode semi(left, left, right);
  SinkNode sink;
  semi.AddOutput(&sink, 0);

  semi.OnDelta(0, {{T2(1, 10), 1}});
  EXPECT_EQ(sink.bag.total_count(), 0);  // No partner yet.

  semi.OnDelta(1, {{T1(1), 1}});  // Partner arrives: assert.
  EXPECT_EQ(sink.bag.Count(T2(1, 10)), 1);

  // Second partner for the same key: no duplicate output (not a join).
  semi.OnDelta(1, {{T1(1), 1}});
  EXPECT_EQ(sink.bag.Count(T2(1, 10)), 1);

  // Removing one partner keeps the row; removing the last retracts it.
  semi.OnDelta(1, {{T1(1), -1}});
  EXPECT_EQ(sink.bag.Count(T2(1, 10)), 1);
  semi.OnDelta(1, {{T1(1), -1}});
  EXPECT_EQ(sink.bag.Count(T2(1, 10)), 0);
}

TEST(SemiJoinNodeTest, LeftMultiplicityPreserved) {
  Schema left = TwoCols("k", "a");
  Schema right = OneCol("k");
  SemiJoinNode semi(left, left, right);
  SinkNode sink;
  semi.AddOutput(&sink, 0);

  semi.OnDelta(1, {{T1(1), 5}});         // Fanout 5 on the right...
  semi.OnDelta(0, {{T2(1, 10), 3}});     // ...left multiplicity 3.
  EXPECT_EQ(sink.bag.Count(T2(1, 10)), 3);  // Not 15.
}

TEST(SemiJoinNodeTest, DualOfAntiJoin) {
  // On identical delta streams, semi(L) + anti(L) == L.
  Schema left = TwoCols("k", "a");
  Schema right = OneCol("k");
  SemiJoinNode semi(left, left, right);
  AntiJoinNode anti(left, left, right);
  SinkNode semi_sink, anti_sink;
  semi.AddOutput(&semi_sink, 0);
  anti.AddOutput(&anti_sink, 0);

  std::vector<std::pair<int, DeltaEntry>> script = {
      {0, {T2(1, 10), 1}}, {0, {T2(2, 20), 1}}, {1, {T1(1), 1}},
      {1, {T1(2), 1}},     {1, {T1(1), -1}},    {0, {T2(3, 30), 2}},
  };
  for (const auto& [port, entry] : script) {
    semi.OnDelta(port, {entry});
    anti.OnDelta(port, {entry});
  }
  EXPECT_EQ(semi_sink.bag.Count(T2(1, 10)) + anti_sink.bag.Count(T2(1, 10)),
            1);
  EXPECT_EQ(semi_sink.bag.Count(T2(2, 20)) + anti_sink.bag.Count(T2(2, 20)),
            1);
  EXPECT_EQ(semi_sink.bag.Count(T2(3, 30)) + anti_sink.bag.Count(T2(3, 30)),
            2);
}

// ---- DistinctNode ----------------------------------------------------------

TEST(DistinctNodeTest, EmitsOnZeroTransitionsOnly) {
  DistinctNode distinct(OneCol("x"));
  SinkNode sink;
  distinct.AddOutput(&sink, 0);

  distinct.OnDelta(0, {{T1(1), 3}});
  EXPECT_EQ(sink.bag.Count(T1(1)), 1);
  distinct.OnDelta(0, {{T1(1), 5}});
  EXPECT_EQ(sink.bag.Count(T1(1)), 1);  // Still one.
  distinct.OnDelta(0, {{T1(1), -7}});
  EXPECT_EQ(sink.bag.Count(T1(1)), 1);  // Count 1 left upstream.
  distinct.OnDelta(0, {{T1(1), -1}});
  EXPECT_EQ(sink.bag.Count(T1(1)), 0);  // Now gone.
}

// ---- UnionNode -------------------------------------------------------------

TEST(UnionNodeTest, MergesBothPorts) {
  UnionNode u(OneCol("x"));
  SinkNode sink;
  u.AddOutput(&sink, 0);
  u.OnDelta(0, {{T1(1), 1}});
  u.OnDelta(1, {{T1(1), 2}});
  EXPECT_EQ(sink.bag.Count(T1(1)), 3);
}

// ---- AggregateNode ---------------------------------------------------------

AggregateSpec MakeSpec(const std::string& fn, const Schema& input,
                       bool distinct = false) {
  ExprPtr call = fn == "count*"
                     ? MakeCountStar()
                     : MakeFunctionCall(fn, {MakeVariable("v")}, distinct);
  Result<AggregateSpec> spec = AggregateSpec::Make(call, input, nullptr);
  EXPECT_TRUE(spec.ok()) << spec.status();
  return std::move(spec).value();
}

TEST(AggregateNodeTest, GroupedCountAndSum) {
  Schema in = TwoCols("k", "v");
  Schema out({{"k", Attribute::Kind::kValue},
              {"c", Attribute::Kind::kValue},
              {"s", Attribute::Kind::kValue}});
  std::vector<BoundExpression> keys;
  keys.push_back(Bind(MakeVariable("k"), in));
  std::vector<AggregateSpec> specs;
  specs.push_back(MakeSpec("count*", in));
  specs.push_back(MakeSpec("sum", in));
  AggregateNode agg(out, std::move(keys), std::move(specs));
  SinkNode sink;
  agg.AddOutput(&sink, 0);

  agg.OnDelta(0, {{T2(1, 10), 1}, {T2(1, 20), 1}, {T2(2, 5), 1}});
  EXPECT_EQ(sink.bag.Count(Tuple({Value::Int(1), Value::Int(2),
                                  Value::Int(30)})),
            1);
  EXPECT_EQ(sink.bag.Count(Tuple({Value::Int(2), Value::Int(1),
                                  Value::Int(5)})),
            1);

  // Retract one row: the group's output row is replaced.
  agg.OnDelta(0, {{T2(1, 20), -1}});
  EXPECT_EQ(sink.bag.Count(Tuple({Value::Int(1), Value::Int(1),
                                  Value::Int(10)})),
            1);
  EXPECT_EQ(sink.bag.Count(Tuple({Value::Int(1), Value::Int(2),
                                  Value::Int(30)})),
            0);

  // Empty the group entirely: its row disappears.
  agg.OnDelta(0, {{T2(2, 5), -1}});
  EXPECT_EQ(sink.bag.total_count(), 1);
}

TEST(AggregateNodeTest, KeylessAggregationAlwaysHasOneRow) {
  Schema in = TwoCols("k", "v");
  Schema out = OneCol("c");
  std::vector<AggregateSpec> specs;
  specs.push_back(MakeSpec("count*", in));
  AggregateNode agg(out, {}, std::move(specs));
  SinkNode sink;
  agg.AddOutput(&sink, 0);

  agg.EmitInitial();
  EXPECT_EQ(sink.bag.Count(T1(0)), 1);  // count(*) = 0 over empty input.

  agg.OnDelta(0, {{T2(1, 1), 2}});
  EXPECT_EQ(sink.bag.Count(T1(2)), 1);
  EXPECT_EQ(sink.bag.Count(T1(0)), 0);

  agg.OnDelta(0, {{T2(1, 1), -2}});
  EXPECT_EQ(sink.bag.Count(T1(0)), 1);  // Back to the empty-input row.
}

TEST(AggregateNodeTest, MinMaxSupportRetraction) {
  Schema in = TwoCols("k", "v");
  Schema out = TwoCols("mn", "mx");
  std::vector<AggregateSpec> specs;
  specs.push_back(MakeSpec("min", in));
  specs.push_back(MakeSpec("max", in));
  AggregateNode agg(out, {}, std::move(specs));
  SinkNode sink;
  agg.AddOutput(&sink, 0);
  agg.EmitInitial();

  agg.OnDelta(0, {{T2(0, 5), 1}, {T2(0, 9), 1}, {T2(0, 1), 1}});
  EXPECT_EQ(sink.bag.Count(T2(1, 9)), 1);
  agg.OnDelta(0, {{T2(0, 1), -1}});  // Retract the minimum.
  EXPECT_EQ(sink.bag.Count(T2(5, 9)), 1);
  agg.OnDelta(0, {{T2(0, 9), -1}});  // Retract the maximum.
  EXPECT_EQ(sink.bag.Count(T2(5, 5)), 1);
}

TEST(AggregateNodeTest, CollectAndDistinctCount) {
  Schema in = TwoCols("k", "v");
  Schema out = TwoCols("l", "d");
  std::vector<AggregateSpec> specs;
  specs.push_back(MakeSpec("collect", in));
  specs.push_back(MakeSpec("count", in, /*distinct=*/true));
  AggregateNode agg(out, {}, std::move(specs));
  SinkNode sink;
  agg.AddOutput(&sink, 0);
  agg.EmitInitial();

  agg.OnDelta(0, {{T2(0, 3), 1}, {T2(0, 3), 1}, {T2(0, 1), 1}});
  Tuple expected({Value::List({Value::Int(1), Value::Int(3), Value::Int(3)}),
                  Value::Int(2)});
  EXPECT_EQ(sink.bag.Count(expected), 1);
}

TEST(AggregateNodeTest, NullArgumentsSkipped) {
  Schema in = TwoCols("k", "v");
  Schema out = TwoCols("c", "s");
  std::vector<AggregateSpec> specs;
  specs.push_back(MakeSpec("count", in));
  specs.push_back(MakeSpec("sum", in));
  AggregateNode agg(out, {}, std::move(specs));
  SinkNode sink;
  agg.AddOutput(&sink, 0);
  agg.EmitInitial();

  agg.OnDelta(0, {{Tuple({Value::Int(0), Value::Null()}), 1},
                  {T2(0, 7), 1}});
  EXPECT_EQ(sink.bag.Count(T2(1, 7)), 1);
}

// ---- UnnestNode ------------------------------------------------------------

TEST(UnnestNodeTest, ExpandsListElements) {
  Schema in = TwoCols("id", "tags");
  Schema out = TwoCols("id", "tag");
  BoundExpression collection = Bind(MakeVariable("tags"), in);
  UnnestNode unnest(out, std::move(collection), {0}, /*fine_grained=*/false);
  SinkNode sink;
  unnest.AddOutput(&sink, 0);

  Tuple input({Value::Int(1),
               Value::List({Value::Int(7), Value::Int(8), Value::Int(7)})});
  unnest.OnDelta(0, {{input, 1}});
  EXPECT_EQ(sink.bag.Count(T2(1, 7)), 2);
  EXPECT_EQ(sink.bag.Count(T2(1, 8)), 1);
}

TEST(UnnestNodeTest, NullAndScalarHandling) {
  Schema in = TwoCols("id", "x");
  Schema out = TwoCols("id", "e");
  UnnestNode unnest(out, Bind(MakeVariable("x"), in), {0}, false);
  SinkNode sink;
  unnest.AddOutput(&sink, 0);

  unnest.OnDelta(0, {{Tuple({Value::Int(1), Value::Null()}), 1}});
  EXPECT_EQ(sink.bag.total_count(), 0);  // UNWIND null -> no rows.
  unnest.OnDelta(0, {{Tuple({Value::Int(1), Value::Int(9)}), 1}});
  EXPECT_EQ(sink.bag.Count(T2(1, 9)), 1);  // Scalar singleton.
}

TEST(UnnestNodeTest, FineGrainedEmitsOnlyElementDiff) {
  // Input column 1 (the collection) is dropped from the output, enabling
  // fine-grained pairing: a one-element append emits ONE entry.
  Schema in = TwoCols("id", "tags");
  Schema out = TwoCols("id", "tag");
  UnnestNode unnest(out, Bind(MakeVariable("tags"), in), {0},
                    /*fine_grained=*/true);
  SinkNode sink;
  unnest.AddOutput(&sink, 0);

  ValueList big;
  for (int i = 0; i < 100; ++i) big.push_back(Value::Int(i));
  Tuple before({Value::Int(1), Value::List(big)});
  unnest.OnDelta(0, {{before, 1}});
  int baseline_entries = sink.entries_seen;

  big.push_back(Value::Int(100));
  Tuple after({Value::Int(1), Value::List(big)});
  unnest.OnDelta(0, {{before, -1}, {after, 1}});
  EXPECT_EQ(sink.entries_seen - baseline_entries, 1);  // FGN!
  EXPECT_EQ(sink.bag.Count(T2(1, 100)), 1);
  EXPECT_EQ(sink.bag.total_count(), 101);
}

TEST(UnnestNodeTest, NaiveModeReemitsEverything) {
  Schema in = TwoCols("id", "tags");
  Schema out = TwoCols("id", "tag");
  UnnestNode unnest(out, Bind(MakeVariable("tags"), in), {0},
                    /*fine_grained=*/false);
  SinkNode sink;
  unnest.AddOutput(&sink, 0);

  ValueList big;
  for (int i = 0; i < 100; ++i) big.push_back(Value::Int(i));
  Tuple before({Value::Int(1), Value::List(big)});
  unnest.OnDelta(0, {{before, 1}});
  int baseline_entries = sink.entries_seen;

  big.push_back(Value::Int(100));
  Tuple after({Value::Int(1), Value::List(big)});
  unnest.OnDelta(0, {{before, -1}, {after, 1}});
  EXPECT_EQ(sink.entries_seen - baseline_entries, 201);  // 100 - then 101 +.
  EXPECT_EQ(sink.bag.total_count(), 101);  // Same net result.
}

}  // namespace
}  // namespace pgivm
