#include "rete/network.h"

#include <sstream>

namespace pgivm {

ReteNetwork::~ReteNetwork() { Detach(); }

void ReteNetwork::Attach(PropertyGraph* graph) {
  attached_graph_ = graph;
  for (const auto& node : nodes_) node->EmitInitial();
  for (GraphSourceNode* source : sources_) source->EmitInitialFromGraph();
  graph->AddListener(this);
}

void ReteNetwork::Detach() {
  if (attached_graph_ == nullptr) return;
  attached_graph_->RemoveListener(this);
  attached_graph_ = nullptr;
}

void ReteNetwork::OnGraphDelta(const GraphDelta& delta) {
  ++deltas_processed_;
  changes_processed_ += static_cast<int64_t>(delta.changes.size());
  for (const GraphChange& change : delta.changes) {
    for (GraphSourceNode* source : sources_) {
      source->HandleChange(change);
    }
  }
}

int64_t ReteNetwork::TotalEmittedEntries() const {
  int64_t total = 0;
  for (const auto& node : nodes_) total += node->emitted_entries();
  return total;
}

size_t ReteNetwork::ApproxMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& node : nodes_) bytes += node->ApproxMemoryBytes();
  return bytes;
}

std::string ReteNetwork::DebugString() const {
  std::ostringstream os;
  for (const auto& node : nodes_) {
    os << node->DebugString() << "  mem=" << node->ApproxMemoryBytes()
       << "B emitted=" << node->emitted_entries() << "\n";
  }
  return os.str();
}

}  // namespace pgivm
