#ifndef PGIVM_VALUE_IDS_H_
#define PGIVM_VALUE_IDS_H_

#include <cstdint>

namespace pgivm {

/// Dense, monotonically assigned element identifiers. Ids are never reused
/// after deletion, so an id uniquely names an element for the lifetime of a
/// PropertyGraph (a property the Rete engine relies on).
using VertexId = int64_t;
using EdgeId = int64_t;

inline constexpr int64_t kInvalidId = -1;

}  // namespace pgivm

#endif  // PGIVM_VALUE_IDS_H_
