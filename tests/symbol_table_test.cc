// Storage-layer unit tests: the SymbolTable intern contract (idempotence,
// miss behaviour, growth with stable name references), SymbolRef's lazy
// resolve-once cache, and the PropertyColumn/PropertyStore typed-lane +
// overflow semantics the bit-identity harnesses depend on.

#include "graph/symbol_table.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/property_columns.h"
#include "graph/property_graph.h"

namespace pgivm {
namespace {

// ---- SymbolTable -----------------------------------------------------------

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  SymbolId a = table.Intern("alpha");
  SymbolId b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("alpha"), a);
  EXPECT_EQ(table.Intern("beta"), b);
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTableTest, IdsAreDenseInFirstInternOrder) {
  SymbolTable table;
  EXPECT_EQ(table.Intern("first"), 0u);
  EXPECT_EQ(table.Intern("second"), 1u);
  EXPECT_EQ(table.Intern("first"), 0u);
  EXPECT_EQ(table.Intern("third"), 2u);
  EXPECT_EQ(table.Name(0), "first");
  EXPECT_EQ(table.Name(1), "second");
  EXPECT_EQ(table.Name(2), "third");
}

TEST(SymbolTableTest, LookupMissIsEmptyAndDoesNotIntern) {
  SymbolTable table;
  EXPECT_FALSE(table.Lookup("ghost").has_value());
  EXPECT_EQ(table.size(), 0u);
  SymbolId id = table.Intern("ghost");
  ASSERT_TRUE(table.Lookup("ghost").has_value());
  EXPECT_EQ(*table.Lookup("ghost"), id);
  // The empty string is a valid (if odd) name, distinct from a miss.
  EXPECT_FALSE(table.Lookup("").has_value());
  SymbolId empty = table.Intern("");
  EXPECT_EQ(*table.Lookup(""), empty);
}

TEST(SymbolTableTest, GrowthKeepsNameReferencesAndIdsStable) {
  SymbolTable table;
  SymbolId first = table.Intern("anchor");
  const std::string* anchor = &table.Name(first);
  size_t small_bytes = table.ApproxMemoryBytes();
  for (int i = 0; i < 10000; ++i) {
    table.Intern("sym" + std::to_string(i));
  }
  EXPECT_EQ(table.size(), 10001u);
  // The deque never moves stored names; ids never shift.
  EXPECT_EQ(&table.Name(first), anchor);
  EXPECT_EQ(*anchor, "anchor");
  EXPECT_EQ(*table.Lookup("anchor"), first);
  EXPECT_EQ(*table.Lookup("sym9999"), 10000u);
  EXPECT_GT(table.ApproxMemoryBytes(), small_bytes);
}

// ---- SymbolRef -------------------------------------------------------------

TEST(SymbolRefTest, MissResolvesToNoSymbolAndIsReprobed) {
  SymbolTable table;
  SymbolRef ref("later");
  // A miss is not cached: the name may be interned by a later mutation.
  EXPECT_EQ(ref.Resolve(table), kNoSymbol);
  EXPECT_EQ(ref.Resolve(table), kNoSymbol);
  SymbolId id = table.Intern("later");
  EXPECT_EQ(ref.Resolve(table), id);
  // Now cached: repeated resolves return the same id.
  EXPECT_EQ(ref.Resolve(table), id);
}

TEST(SymbolRefTest, CopyCarriesNameAndCache) {
  SymbolTable table;
  SymbolId id = table.Intern("copied");
  SymbolRef original("copied");
  EXPECT_EQ(original.Resolve(table), id);
  SymbolRef copy(original);
  EXPECT_EQ(copy.name(), "copied");
  EXPECT_EQ(copy.Resolve(table), id);
  SymbolRef assigned;
  assigned = original;
  EXPECT_EQ(assigned.Resolve(table), id);
}

TEST(SymbolRefTest, ConcurrentResolveIsRaceFree) {
  // Resolve may race with itself on pool threads (parallel source
  // translation); all racers must agree. Run under TSAN via the
  // `storage` label for the data-race proof.
  SymbolTable table;
  SymbolId id = table.Intern("shared");
  SymbolRef ref("shared");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ref, &table, id] {
      for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(ref.Resolve(table), id);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

// ---- PropertyColumn --------------------------------------------------------

TEST(PropertyColumnTest, LaneAdoptsFirstScalarType) {
  PropertyColumn column;
  EXPECT_TRUE(column.empty());
  column.Set(0, Value::Int(7));
  column.Set(1, Value::Int(-3));
  EXPECT_EQ(column.Get(0), Value::Int(7));
  EXPECT_EQ(column.Get(1), Value::Int(-3));
  EXPECT_TRUE(column.Has(0));
  EXPECT_FALSE(column.Has(2));
  EXPECT_TRUE(column.Get(2).is_null());
  EXPECT_FALSE(column.empty());
}

TEST(PropertyColumnTest, MismatchedTypesKeepExactFidelityViaOverflow) {
  // Value::Compare treats Int(1) == Double(1.0), so storage must never
  // coerce: the value read back is the exact Value written, or downstream
  // arithmetic would silently change.
  PropertyColumn column;
  column.Set(0, Value::Int(1));           // lane adopts Int64
  column.Set(1, Value::Double(1.0));      // must NOT become Int(1)
  column.Set(2, Value::String("one"));
  Value read = column.Get(1);
  EXPECT_TRUE(read.is_double()) << read.ToString();
  EXPECT_EQ(read, Value::Double(1.0));
  EXPECT_TRUE(column.Get(0).is_int());
  EXPECT_EQ(column.Get(2), Value::String("one"));
}

TEST(PropertyColumnTest, OverwriteMovesValueBetweenLaneAndOverflow) {
  PropertyColumn column;
  column.Set(0, Value::Int(1));
  column.Set(0, Value::String("now a string"));  // lane -> overflow
  EXPECT_EQ(column.Get(0), Value::String("now a string"));
  column.Set(0, Value::Int(2));  // overflow -> lane again
  EXPECT_EQ(column.Get(0), Value::Int(2));
  EXPECT_TRUE(column.Get(0).is_int());
}

TEST(PropertyColumnTest, EraseClearsBothPaths) {
  PropertyColumn column;
  column.Set(3, Value::Bool(true));       // lane adopts Bool
  column.Set(4, Value::String("spill"));  // overflow
  column.Erase(3);
  column.Erase(4);
  column.Erase(99);  // absent: no-op
  EXPECT_FALSE(column.Has(3));
  EXPECT_FALSE(column.Has(4));
  EXPECT_TRUE(column.Get(3).is_null());
  EXPECT_TRUE(column.empty());
}

TEST(PropertyColumnTest, SparseHighIdsWork) {
  PropertyColumn column;
  column.Set(100000, Value::Double(2.5));
  EXPECT_EQ(column.Get(100000), Value::Double(2.5));
  EXPECT_FALSE(column.Has(99999));
  EXPECT_GT(column.ApproxMemoryBytes(), 0u);
}

// ---- PropertyStore ---------------------------------------------------------

class PropertyStoreModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(PropertyStoreModeTest, SetGetEraseCollectAgreeAcrossModes) {
  SymbolTable symbols;
  PropertyStore store(&symbols, /*typed=*/GetParam());
  EXPECT_EQ(store.typed(), GetParam());
  SymbolId x = symbols.Intern("x");
  SymbolId name = symbols.Intern("name");
  SymbolId tags = symbols.Intern("tags");

  store.Set(0, x, Value::Int(5));
  store.Set(0, name, Value::String("zero"));
  store.Set(1, tags, Value::List({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(store.Get(0, x), Value::Int(5));
  EXPECT_EQ(store.Get(0, name), Value::String("zero"));
  EXPECT_TRUE(store.Has(1, tags));
  EXPECT_FALSE(store.Has(1, x));
  EXPECT_TRUE(store.Get(1, x).is_null());

  // Collect is name-sorted regardless of intern or insertion order.
  ValueMap collected = store.Collect(0);
  ASSERT_EQ(collected.size(), 2u);
  EXPECT_EQ(collected.begin()->first, "name");
  EXPECT_EQ(collected.rbegin()->first, "x");

  // Null set erases; ClearElement drops everything.
  store.Set(0, x, Value::Null());
  EXPECT_FALSE(store.Has(0, x));
  store.ClearElement(0);
  EXPECT_TRUE(store.Collect(0).empty());
  EXPECT_FALSE(store.Collect(1).empty());
  EXPECT_GT(store.ApproxMemoryBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(TypedAndRow, PropertyStoreModeTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "typed" : "row";
                         });

// ---- posting-list determinism at the graph level ---------------------------

TEST(PostingListTest, LabelAndTypeScansAreAscendingAfterChurn) {
  PropertyGraph graph;
  // Interleave creation, label churn and deletion so the posting lists see
  // inserts out of tail position and erases from the middle.
  std::vector<VertexId> vertices;
  for (int i = 0; i < 20; ++i) {
    vertices.push_back(
        graph.AddVertex(i % 2 == 0 ? std::vector<std::string>{"Even"}
                                   : std::vector<std::string>{"Odd"}));
  }
  for (int i = 0; i < 20; i += 4) {
    ASSERT_TRUE(graph.AddVertexLabel(vertices[static_cast<size_t>(i)], "Odd")
                    .ok());
  }
  ASSERT_TRUE(graph.RemoveVertexLabel(vertices[0], "Odd").ok());
  ASSERT_TRUE(graph.RemoveVertex(vertices[5]).ok());
  std::vector<EdgeId> edges;
  for (int i = 0; i < 10; ++i) {
    if (i == 5) continue;  // that source vertex was removed above
    edges.push_back(graph
                        .AddEdge(vertices[static_cast<size_t>(i)],
                                 vertices[static_cast<size_t>(i + 6)], "T")
                        .value());
  }
  ASSERT_TRUE(graph.RemoveEdge(edges[3]).ok());

  std::vector<VertexId> odd = graph.VerticesWithLabel("Odd");
  EXPECT_TRUE(std::is_sorted(odd.begin(), odd.end()));
  // Exact content: odd-indexed vertices minus the removed vertices[5],
  // plus the even ones that gained "Odd" minus vertices[0] whose grant
  // was retracted.
  std::vector<VertexId> expected_odd;
  for (int i = 0; i < 20; ++i) {
    VertexId v = vertices[static_cast<size_t>(i)];
    bool is_odd = i % 2 == 1 || (i % 4 == 0 && i != 0);
    if (i == 5 || !is_odd) continue;
    expected_odd.push_back(v);
  }
  EXPECT_EQ(odd, expected_odd);

  std::vector<EdgeId> typed_edges = graph.EdgesWithType("T");
  EXPECT_TRUE(std::is_sorted(typed_edges.begin(), typed_edges.end()));
  EXPECT_EQ(typed_edges.size(), 8u);

  // The SymbolId fast path returns the same posting list by reference.
  ASSERT_TRUE(graph.symbols().Lookup("Odd").has_value());
  EXPECT_EQ(graph.VerticesWithLabelId(*graph.symbols().Lookup("Odd")),
            expected_odd);
  // Unknown symbols (and kNoSymbol) scan as empty.
  EXPECT_TRUE(graph.VerticesWithLabelId(kNoSymbol).empty());
  EXPECT_TRUE(graph.EdgesWithTypeId(kNoSymbol).empty());
}

}  // namespace
}  // namespace pgivm
