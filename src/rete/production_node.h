#ifndef PGIVM_RETE_PRODUCTION_NODE_H_
#define PGIVM_RETE_PRODUCTION_NODE_H_

#include <vector>

#include "rete/node.h"

namespace pgivm {

/// Observer of a materialized view's changes. `delta` is normalized (tuples
/// coalesced, zero entries dropped) and describes the net effect of one
/// graph delta on the result bag.
class ViewChangeListener {
 public:
  virtual ~ViewChangeListener() = default;
  virtual void OnViewDelta(const Delta& delta) = 0;
};

/// Network root: materializes the result bag of the view and fans change
/// notifications out to listeners. Snapshot() exposes the current rows.
class ProductionNode : public ReteNode {
 public:
  explicit ProductionNode(Schema schema) : ReteNode(std::move(schema)) {}

  void OnDelta(int port, const Delta& delta) override;

  void Reset() override { results_.Clear(); }

  /// Current result bag (tuple -> multiplicity).
  const Bag& results() const { return results_; }

  /// Rows with multiplicities expanded, sorted for determinism.
  std::vector<Tuple> SortedSnapshot() const;

  void AddListener(ViewChangeListener* listener) {
    listeners_.push_back(listener);
  }
  void RemoveListener(ViewChangeListener* listener);

  size_t ApproxMemoryBytes() const override {
    return results_.ApproxMemoryBytes();
  }

  std::string DebugString() const override { return "Production"; }

 private:
  Bag results_;
  std::vector<ViewChangeListener*> listeners_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_PRODUCTION_NODE_H_
