#ifndef PGIVM_ENGINE_VIEW_H_
#define PGIVM_ENGINE_VIEW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algebra/operator.h"
#include "rete/network.h"
#include "support/metrics.h"

namespace pgivm {

class ViewCatalog;

/// An immutable, pinned view state: one committed epoch's result bag plus
/// its presentation rendering (multiplicities expanded, sorted, the view's
/// SKIP/LIMIT applied). Obtained from View::Pin(); safe to read from any
/// thread and valid for as long as the shared_ptr is held — later commits
/// never mutate it, they publish new epochs.
class ViewSnapshot {
 public:
  /// The network commit epoch this state was published at.
  uint64_t epoch() const { return source_->epoch; }

  /// Rows with multiplicities expanded, sorted, SKIP/LIMIT applied.
  const std::vector<Tuple>& rows() const { return rows_; }

  /// The committed bag (tuple -> multiplicity), before SKIP/LIMIT.
  const Bag& bag() const { return source_->results; }

  /// Total result rows (with duplicates), before SKIP/LIMIT.
  int64_t total_rows() const { return source_->results.total_count(); }

 private:
  friend class View;
  ProductionNode::EpochPtr source_;
  std::vector<Tuple> rows_;
};

/// A live, incrementally maintained query result.
///
/// Obtained from QueryEngine::Register. The view stays consistent with its
/// graph after every committed change; reading it never triggers
/// re-evaluation. A view is a handle into its engine's ViewCatalog: with
/// operator-state sharing (the default) its Rete nodes live inside the
/// catalog's shared network, possibly serving sibling views too; with
/// sharing disabled the view owns a private network (the seed behaviour).
/// Destroying the view deregisters it — shared nodes survive as long as a
/// sibling still references them.
///
/// Registration into a live catalog is primed incrementally: node memories
/// the new view shares are replayed into its consumers instead of
/// re-reading the graph — prime_stats() reports the split. Sibling views
/// and their listeners observe nothing.
///
/// Ordering note (the paper's ORD restriction): the maintained result is a
/// bag — no order is maintained. Snapshot() sorts rows only for
/// presentation/determinism and applies the query's SKIP/LIMIT at that
/// moment; the sorted rendering is built once per committed epoch and
/// cached as an immutable ViewSnapshot, so polling an unchanged view is
/// O(copy), not O(n log n).
///
/// Thread-safety: Pin()/Snapshot()/results()/size() are safe from any
/// number of reader threads, concurrently with a drain propagating on the
/// writer thread, and never block it — the network publishes an immutable
/// PublishedEpoch per production at every commit (the wave barrier of a
/// batched drain, the end of an eager cascade), and readers pin the last
/// published epoch with an atomic shared_ptr swap. A pinned ViewSnapshot
/// is frozen: it reflects exactly one committed epoch, mid-drain states
/// are never observable, and it stays valid after the View (or the whole
/// engine) is destroyed. Readers racing a commit see either the previous
/// epoch or the new one, never a torn mix.
///
/// Everything else — Register/Deregister, applying graph deltas,
/// AddListener/RemoveListener, the diagnostics accessors — remains
/// writer-thread-only. Listener callbacks run on the writer thread; during
/// parallel waves they are deferred to the wave barrier, never concurrent.
///
/// Lifecycle: destroying the View deregisters it from the catalog
/// (refcounted under sharing). The View keeps its catalog — and with it
/// the shared network — alive past engine destruction; only the graph
/// must outlive everything.
class View {
 public:
  ~View();

  View(const View&) = delete;
  View& operator=(const View&) = delete;

  /// Output column names, in RETURN order.
  const std::vector<std::string>& column_names() const { return columns_; }

  /// Pins the last committed epoch as an immutable snapshot: the result
  /// bag plus its sorted/SKIP/LIMIT rendering. Safe from any thread (see
  /// the thread-safety contract above). The rendering is built at most
  /// once per epoch — concurrent first-readers may build it redundantly
  /// (benign: identical immutable objects, last store wins), after which
  /// every Pin() of the same epoch returns the cached object.
  std::shared_ptr<const ViewSnapshot> Pin() const;

  /// Current rows, multiplicities expanded, sorted, SKIP/LIMIT applied —
  /// a copy of Pin()->rows(). Safe from any thread.
  std::vector<Tuple> Snapshot() const { return Pin()->rows(); }

  /// The last committed bag (tuple -> multiplicity), unsorted, pinned so
  /// it stays valid while the pointer is held. Safe from any thread.
  std::shared_ptr<const Bag> results() const;

  /// Total number of result rows (with duplicates) at the last committed
  /// epoch. Safe from any thread; does not build the sorted rendering.
  int64_t size() const { return production_->PinSnapshot()->results.total_count(); }

  /// Change notifications; listeners receive normalized deltas.
  void AddListener(ViewChangeListener* listener) {
    production_->AddListener(listener);
  }
  void RemoveListener(ViewChangeListener* listener) {
    production_->RemoveListener(listener);
  }

  const std::string& query() const { return query_; }

  /// Compiled plans, for inspection/tests: the GRA tree (paper step 1) and
  /// the lowered FRA plan (steps 2–3) the network implements.
  const OpPtr& gra_plan() const { return gra_; }
  const OpPtr& fra_plan() const { return fra_; }

  /// Runtime propagation strategy of the underlying network (from
  /// EngineOptions::network at registration time).
  PropagationStrategy propagation() const { return network_->propagation(); }

  /// Wave executor of the underlying network (after the PGIVM_THREADS
  /// environment override; see NetworkOptions::executor).
  ExecutorKind executor() const { return network_->executor(); }

  /// Memory held by the Rete node memories this view references. Under
  /// sharing, nodes serving sibling views too are counted in full; the
  /// catalog's Stats().memory_bytes deduplicates and
  /// MarginalMemoryBytes() isolates this view's exclusive slice.
  size_t ApproxMemoryBytes() const;

  /// How this view's registration was primed: tuples replayed from
  /// sibling-primed node memories vs. tuples read from the graph by fresh
  /// source nodes, plus the fresh-node/replay-edge partition. A fully
  /// shared registration into a live catalog reports
  /// `graph_primed_entries == 0` — its cost is independent of both the
  /// graph and the catalog size.
  const ReteNetwork::PrimeStats& prime_stats() const { return prime_stats_; }

  /// Per-node diagnostics of the underlying network (under sharing: the
  /// whole catalog network this view lives in).
  std::string NetworkDebugString() const { return network_->DebugString(); }

  const ReteNetwork& network() const { return *network_; }

 private:
  friend class QueryEngine;
  friend class ViewCatalog;
  View() = default;

  std::string query_;
  OpPtr gra_;
  OpPtr fra_;
  /// Keeps the catalog — and with it the shared network — alive even if
  /// the engine is destroyed first. ~View deregisters through it.
  std::shared_ptr<ViewCatalog> catalog_;
  /// Sharing disabled: the view's private network (seed behaviour).
  std::unique_ptr<ReteNetwork> owned_network_;
  /// The network the view's nodes live in (owned_network_.get() or the
  /// catalog's shared network).
  ReteNetwork* network_ = nullptr;
  /// This view's root; never shared between views.
  ProductionNode* production_ = nullptr;
  std::vector<std::string> columns_;
  int64_t skip_ = 0;
  int64_t limit_ = -1;
  /// Replayed-vs-graph-primed accounting of this view's registration.
  ReteNetwork::PrimeStats prime_stats_;

  /// Serving-path instrumentation, wired by ViewCatalog::Install. When the
  /// catalog's runtime profiling flag is on, Pin() records its latency into
  /// the engine-wide "serving.pin_ns" histogram. Both point into the
  /// catalog, which catalog_ keeps alive; null only for hand-constructed
  /// test views.
  const std::atomic<bool>* profiling_flag_ = nullptr;
  LatencyHistogram* pin_hist_ = nullptr;

  /// Pin()'s per-epoch cache: the immutable ViewSnapshot built for the
  /// most recently pinned epoch. Accessed only via atomic_load /
  /// atomic_store (any thread may read or refresh it).
  mutable std::shared_ptr<const ViewSnapshot> cache_;
};

}  // namespace pgivm

#endif  // PGIVM_ENGINE_VIEW_H_
