#ifndef PGIVM_RETE_ANTIJOIN_NODE_H_
#define PGIVM_RETE_ANTIJOIN_NODE_H_

#include "rete/join_node.h"
#include "rete/node.h"
#include "rete/sharded_map.h"

namespace pgivm {

/// ▷ — incremental anti semi-join: emits the left tuples that have *no*
/// partner in the right input (matching on shared column names). Used
/// directly for negative conditions and as a building block of the
/// OPTIONAL MATCH outer join.
///
/// State: the left memory (key → counted tuples) plus a per-key support
/// count of right rows; left tuples toggle in/out of the output when their
/// key's right support transitions 0 ↔ positive. Both maps are keyed (and
/// sharded) by the same join-key tuple, so a morsel partition's writes stay
/// within the shards it owns.
class AntiJoinNode : public ReteNode {
 public:
  AntiJoinNode(Schema schema, const Schema& left, const Schema& right);

  void OnDelta(int port, const Delta& delta) override;

  MorselKind morsel_kind() const override { return MorselKind::kKeyed; }
  void MorselPartitionMap(int port, const Delta& delta, uint32_t partitions,
                          size_t begin, size_t end,
                          uint32_t* map) const override;
  void OnDeltaMorsel(int port, const Delta& delta, const uint32_t* map,
                     uint32_t partition, uint32_t partitions,
                     Delta& out) override;

  /// Replays the currently unmatched left tuples (keys with zero right
  /// support).
  bool ReplayOutput(Delta& out) const override;

  void Reset() override {
    left_memory_.clear();
    right_support_.clear();
  }

  size_t ApproxMemoryBytes() const override;

  std::string DebugString() const override { return "AntiJoin"; }
  const char* KindName() const override { return "AntiJoin"; }

 private:
  void ProcessEntries(int port, const Delta& delta, const uint32_t* map,
                      uint32_t partition, Delta& out);

  JoinLayout layout_;
  ShardedTupleMap<Bag> left_memory_;
  ShardedTupleMap<int64_t> right_support_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_ANTIJOIN_NODE_H_
