// Differential (fuzz) tests: the Rete-maintained view and the independent
// baseline evaluator implement the same semantics, so after every random
// update their results must coincide — across plan/runtime ablations too.

#include <gtest/gtest.h>

#include "baseline/baseline_evaluator.h"
#include "engine/query_engine.h"
#include "workload/random_graph.h"

namespace pgivm {
namespace {

struct DifferentialCase {
  const char* name;
  const char* query;
  uint64_t seed;
  bool naive_maps;
  bool coarse_unnest;
};

class DifferentialTest : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(DifferentialTest, ViewMatchesBaselineAfterEveryUpdate) {
  const DifferentialCase& param = GetParam();

  EngineOptions options;
  options.plan.naive_property_maps = param.naive_maps;
  if (param.coarse_unnest) {
    options.plan.narrow_unnest_outputs = false;
    options.network.fine_grained_unnest = false;
  }

  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = param.seed;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph, options);
  Result<std::shared_ptr<View>> view = engine.Register(param.query);
  ASSERT_TRUE(view.ok()) << view.status();
  Result<OpPtr> plan = engine.Compile(param.query);
  ASSERT_TRUE(plan.ok());

  BaselineEvaluator baseline(&graph);
  constexpr int kUpdates = 120;
  for (int step = 0; step < kUpdates; ++step) {
    generator.ApplyRandomUpdate(&graph);
    Result<Bag> expected = baseline.Evaluate(plan.value());
    ASSERT_TRUE(expected.ok()) << expected.status();
    std::vector<Tuple> expected_rows =
        BaselineEvaluator::SortedRows(expected.value());
    std::vector<Tuple> actual_rows = (*view)->Snapshot();
    ASSERT_EQ(actual_rows.size(), expected_rows.size())
        << param.name << " diverged at step " << step;
    for (size_t i = 0; i < actual_rows.size(); ++i) {
      ASSERT_EQ(Tuple::Compare(actual_rows[i], expected_rows[i]), 0)
          << param.name << " step " << step << " row " << i << ": "
          << actual_rows[i].ToString() << " vs "
          << expected_rows[i].ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, DifferentialTest,
    ::testing::Values(
        DifferentialCase{"label_scan", "MATCH (n:A) RETURN n", 11, false,
                         false},
        DifferentialCase{"property_filter",
                         "MATCH (n:A) WHERE n.x > 1 RETURN n, n.x AS x", 12,
                         false, false},
        DifferentialCase{"edge_join",
                         "MATCH (a:A)-[r:R]->(b:B) RETURN a, r, b", 13,
                         false, false},
        DifferentialCase{"two_hops",
                         "MATCH (a:A)-[:R]->(b)-[:S]->(c) RETURN a, b, c",
                         14, false, false},
        DifferentialCase{"undirected",
                         "MATCH (a:A)-[r:R]-(b) RETURN a, b", 15, false,
                         false},
        DifferentialCase{"cross_property_join",
                         "MATCH (a:A), (b:B) WHERE a.x = b.y RETURN a, b",
                         16, false, false},
        DifferentialCase{"distinct",
                         "MATCH (a:A)-[:R]->(b) RETURN DISTINCT b", 17,
                         false, false},
        DifferentialCase{"aggregation",
                         "MATCH (a:A)-[:R]->(b) RETURN b AS t, count(*) "
                         "AS c, sum(a.x) AS s",
                         18, false, false},
        DifferentialCase{"optional_match",
                         "MATCH (a:A) OPTIONAL MATCH (a)-[r:R]->(b:B) "
                         "RETURN a, b",
                         19, false, false},
        DifferentialCase{"unwind_tags",
                         "MATCH (n:B) UNWIND n.tags AS t RETURN t, "
                         "count(*) AS c",
                         20, false, false},
        DifferentialCase{"var_length",
                         "MATCH (a:A)-[:R*1..3]->(b) RETURN a, b", 21,
                         false, false},
        DifferentialCase{"var_length_path",
                         "MATCH t = (a:A)-[:R*1..2]->(b:B) RETURN t", 22,
                         false, false},
        DifferentialCase{"labels_fn",
                         "MATCH (n:A) RETURN n, size(labels(n)) AS l", 23,
                         false, false},
        DifferentialCase{"naive_maps_filter",
                         "MATCH (n:A) WHERE n.x > 1 RETURN n, n.y AS y",
                         24, true, false},
        DifferentialCase{"naive_maps_join",
                         "MATCH (a:A)-[r:R]->(b:B) WHERE a.x = b.x "
                         "RETURN a, b",
                         25, true, false},
        DifferentialCase{"coarse_unwind",
                         "MATCH (n:B) UNWIND n.tags AS t RETURN t, "
                         "count(*) AS c",
                         26, false, true},
        DifferentialCase{"where_in_list",
                         "MATCH (n:A) WHERE n.x IN [1, 3] RETURN n", 27,
                         false, false},
        DifferentialCase{"with_pipeline",
                         "MATCH (a:A)-[:R]->(b) WITH b, count(*) AS c "
                         "WHERE c > 1 RETURN b, c",
                         28, false, false},
        DifferentialCase{"exists_positive",
                         "MATCH (a:A) WHERE exists((a)-[:R]->(:B)) "
                         "RETURN a",
                         29, false, false},
        DifferentialCase{"exists_negated",
                         "MATCH (a:A) WHERE NOT exists((a)-[:S]->()) "
                         "RETURN a",
                         30, false, false},
        DifferentialCase{"exists_mixed",
                         "MATCH (a:A) WHERE a.x > 0 AND "
                         "NOT exists((a)-[:R]->(:C)) RETURN a, a.x AS x",
                         31, false, false},
        DifferentialCase{"union_all",
                         "MATCH (a:A) RETURN a AS n UNION ALL "
                         "MATCH (b:B) RETURN b AS n",
                         32, false, false},
        DifferentialCase{"union_distinct",
                         "MATCH (a:A) RETURN a AS n UNION "
                         "MATCH (b:B) RETURN b AS n",
                         33, false, false},
        DifferentialCase{"case_expression",
                         "MATCH (n:A) RETURN CASE WHEN n.x > 2 THEN 'hi' "
                         "WHEN n.x > 0 THEN 'mid' ELSE 'lo' END AS bucket, "
                         "count(*) AS c",
                         34, false, false},
        DifferentialCase{"self_loop_churn",
                         "MATCH (a:A)-[r:R]->(a) RETURN a, r", 35, false,
                         false},
        DifferentialCase{"optional_var_length",
                         "MATCH (a:A) OPTIONAL MATCH (a)-[:R*1..2]->(b:B) "
                         "RETURN a, b",
                         36, false, false}),
    [](const ::testing::TestParamInfo<DifferentialCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace pgivm
