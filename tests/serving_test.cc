// Serving-path tests: epoch-published snapshots under concurrent readers.
//
// The contract under test (see the View class comment): Pin(), Snapshot(),
// results() and size() are safe from any number of reader threads while
// the writer thread propagates changes, and every pinned snapshot is the
// bit-exact state of some committed epoch — never a torn or mid-drain
// state. The differential harness here drives a serial reference engine
// over the same graph and requires each concurrently pinned snapshot to
// equal the reference rows recorded at that snapshot's commit epoch.
//
// Run these under the TSAN configuration (-DPGIVM_SANITIZE_THREAD=ON) to
// turn the regression tests into data-race proofs; they are labelled
// `serving` in CMake so CI's TSAN job picks them up.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "scoped_threads_env.h"
#include "workload/random_graph.h"

namespace pgivm {
namespace {

/// The harness query pool: scans, a two-hop join, aggregation, an
/// undirected pattern and DISTINCT — enough operator coverage that a
/// publication bug anywhere in the network surfaces as a mismatch.
const std::vector<const char*>& ServingQueries() {
  static const std::vector<const char*> queries = {
      "MATCH (a:A)-[r:R]->(b:B) RETURN a, r, b",
      "MATCH (a:A)-[:R]->(b)-[:S]->(c) RETURN a, b, c",
      "MATCH (a:A)-[:R]->(b) RETURN b AS t, count(*) AS c, sum(a.x) AS s",
      "MATCH (a:A)-[r:R]-(b) RETURN a, b",
      "MATCH (a:A)-[:R]->(b) RETURN DISTINCT b",
  };
  return queries;
}

/// Regression for the original reader race: Snapshot() used to rebuild a
/// mutable per-view sort cache without synchronization, so two concurrent
/// Snapshot() calls on one view raced on the cache members. Under TSAN
/// this test is a proof that the epoch-pinned rendering cache is safe.
TEST(ServingSnapshot, ConcurrentSnapshotsOnOneViewAreSafe) {
  ScopedThreadsEnv no_env(nullptr);
  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = 7;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  auto view = engine.Register("MATCH (a:A)-[r:R]->(b:B) RETURN a, r, b");
  ASSERT_TRUE(view.ok()) << view.status();
  const std::vector<Tuple> expected = (*view)->Snapshot();

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&view, &expected] {
      for (int i = 0; i < 500; ++i) {
        EXPECT_EQ((*view)->Snapshot(), expected);
        EXPECT_EQ((*view)->size(),
                  static_cast<int64_t>(expected.size()));
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
}

/// Readers pin while the writer churns: every snapshot must be internally
/// consistent (the sorted rendering matches its own bag) and frozen (two
/// reads of one pinned object agree), even though commits land between
/// and during the reads.
TEST(ServingSnapshot, ReadersStayConsistentDuringWriterChurn) {
  ScopedThreadsEnv no_env(nullptr);
  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = 21;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  std::vector<std::shared_ptr<View>> views;
  for (const char* query : ServingQueries()) {
    auto view = engine.Register(query);
    ASSERT_TRUE(view.ok()) << query << ": " << view.status();
    views.push_back(*view);
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&views, &done, t] {
      size_t i = static_cast<size_t>(t);
      while (!done.load(std::memory_order_acquire)) {
        const View& view = *views[i++ % views.size()];
        std::shared_ptr<const ViewSnapshot> snap = view.Pin();
        // No SKIP/LIMIT registered, so the rendering covers the bag.
        EXPECT_EQ(static_cast<int64_t>(snap->rows().size()),
                  snap->total_rows());
        EXPECT_EQ(snap->total_rows(), snap->bag().total_count());
        // Two pins of the same epoch agree, whichever thread built the
        // cached rendering first.
        std::shared_ptr<const ViewSnapshot> again = view.Pin();
        if (again->epoch() == snap->epoch()) {
          EXPECT_EQ(again->rows(), snap->rows());
        }
        std::shared_ptr<const Bag> bag = view.results();
        EXPECT_GE(bag->total_count(), 0);
      }
    });
  }

  for (int step = 0; step < 200; ++step) {
    if (step % 4 == 0) {
      graph.BeginBatch();
      for (int i = 0; i < 3; ++i) generator.ApplyRandomUpdate(&graph);
      graph.CommitBatch();
    } else {
      generator.ApplyRandomUpdate(&graph);
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
}

/// One reader's record of a concurrently pinned state.
struct PinnedState {
  size_t view = 0;
  uint64_t epoch = 0;
  std::vector<Tuple> rows;
};

/// The concurrent-reader differential harness. A serial reference engine
/// shares the graph with the engine under test; the writer records the
/// reference rows for every view keyed by the test view's published epoch
/// after each commit, while reader threads pin snapshots concurrently.
/// After the run, every pinned (view, epoch, rows) triple must equal the
/// reference rows recorded for that epoch — i.e. every concurrently
/// observed state is a committed serial state, bit for bit.
void RunConcurrentReaderHarness(const EngineOptions& options, uint64_t seed,
                                int reader_count, bool typed_columns) {
  ScopedThreadsEnv no_env(nullptr);
  // Storage is a harness dimension: the epoch-publication contract must
  // hold over both the typed columnar layout and the legacy row maps
  // (readers pin snapshots while the writer mutates either layout).
  StorageOptions storage;
  storage.typed_columns = typed_columns;
  PropertyGraph graph(storage);
  RandomGraphConfig config;
  config.seed = seed;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine test_engine(&graph, options);
  QueryEngine reference_engine(&graph);  // default: batched, serial
  std::vector<std::shared_ptr<View>> test_views;
  std::vector<std::shared_ptr<View>> reference_views;
  for (const char* query : ServingQueries()) {
    auto test_view = test_engine.Register(query);
    ASSERT_TRUE(test_view.ok()) << query << ": " << test_view.status();
    test_views.push_back(*test_view);
    auto reference_view = reference_engine.Register(query);
    ASSERT_TRUE(reference_view.ok())
        << query << ": " << reference_view.status();
    reference_views.push_back(*reference_view);
  }

  // history[v][epoch] = the serial reference rows when the test view's
  // published epoch was `epoch`. Written only by the writer (this)
  // thread; readers never touch it until after they are joined.
  std::vector<std::map<uint64_t, std::vector<Tuple>>> history(
      test_views.size());
  auto record_commit = [&](int step) {
    for (size_t v = 0; v < test_views.size(); ++v) {
      std::shared_ptr<const ViewSnapshot> pin = test_views[v]->Pin();
      std::vector<Tuple> reference = reference_views[v]->Snapshot();
      ASSERT_EQ(pin->rows(), reference)
          << ServingQueries()[v] << " diverged from the serial reference"
          << " at step " << step;
      history[v][pin->epoch()] = std::move(reference);
    }
  };
  record_commit(-1);  // the post-registration (primed) state

  std::atomic<bool> done{false};
  std::atomic<int> readers_pinned{0};
  constexpr size_t kMaxPinsPerReader = 300;
  std::vector<std::vector<PinnedState>> pinned(
      static_cast<size_t>(reader_count));
  std::vector<std::thread> readers;
  for (int t = 0; t < reader_count; ++t) {
    readers.emplace_back([&test_views, &done, &pinned, &readers_pinned, t] {
      std::vector<PinnedState>& mine = pinned[static_cast<size_t>(t)];
      size_t i = static_cast<size_t>(t);
      while (!done.load(std::memory_order_acquire)) {
        size_t v = i++ % test_views.size();
        std::shared_ptr<const ViewSnapshot> snap = test_views[v]->Pin();
        if (mine.size() < kMaxPinsPerReader) {
          mine.push_back({v, snap->epoch(), snap->rows()});
          if (mine.size() == 1) {
            readers_pinned.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // Exercise the other reader entry points too.
        (void)test_views[v]->size();
        (void)test_views[v]->results();
      }
    });
  }

  for (int step = 0; step < 30; ++step) {
    graph.BeginBatch();
    for (int i = 0; i < 3; ++i) generator.ApplyRandomUpdate(&graph);
    graph.CommitBatch();
    record_commit(step);
  }
  // On an oversubscribed machine (ctest -j on few cores) the readers may
  // not have been scheduled at all yet; the race being tested needs them
  // to actually overlap some committed state, so wait until every reader
  // has recorded at least one pin before stopping them.
  while (readers_pinned.load(std::memory_order_relaxed) < reader_count) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  // Every concurrently pinned state is some committed serial state.
  size_t verified = 0;
  for (const std::vector<PinnedState>& mine : pinned) {
    for (const PinnedState& pin : mine) {
      auto it = history[pin.view].find(pin.epoch);
      ASSERT_NE(it, history[pin.view].end())
          << ServingQueries()[pin.view] << ": pinned epoch " << pin.epoch
          << " was never recorded at a commit";
      EXPECT_EQ(pin.rows, it->second)
          << ServingQueries()[pin.view] << ": pinned epoch " << pin.epoch
          << " differs from the committed serial state";
      ++verified;
    }
  }
  EXPECT_GT(verified, 0u);
}

struct HarnessConfig {
  const char* name;
  PropagationStrategy propagation;
  ExecutorKind executor;
  int num_threads;
  /// Graph storage under the engines (typed columns vs legacy row maps).
  bool typed_columns = true;
};

class ServingDifferentialTest
    : public ::testing::TestWithParam<HarnessConfig> {};

TEST_P(ServingDifferentialTest, PinnedSnapshotsMatchCommittedEpochs) {
  const HarnessConfig& harness = GetParam();
  EngineOptions options;
  options.network.propagation = harness.propagation;
  options.network.executor = harness.executor;
  options.network.num_threads = harness.num_threads;
  // Parallelize every wave, however small, to maximize barrier traffic.
  options.network.parallel_min_wave_entries = 0;
  // Exercise the retention path (readers hold pins anyway; retention only
  // delays retirement of unpinned epochs).
  options.network.epoch_retention = 4;
  for (uint64_t seed : {uint64_t{101}, uint64_t{202}, uint64_t{303}}) {
    RunConcurrentReaderHarness(options, seed, /*reader_count=*/8,
                               harness.typed_columns);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ServingDifferentialTest,
    ::testing::Values(
        HarnessConfig{"eager", PropagationStrategy::kEager,
                      ExecutorKind::kSerial, 0},
        HarnessConfig{"batched_serial", PropagationStrategy::kBatched,
                      ExecutorKind::kSerial, 0},
        HarnessConfig{"batched_parallel2", PropagationStrategy::kBatched,
                      ExecutorKind::kParallel, 2},
        HarnessConfig{"batched_parallel8", PropagationStrategy::kBatched,
                      ExecutorKind::kParallel, 8},
        // Row-storage ablation rows: the serial + most-parallel shapes
        // again over the legacy layout (the dual-mode CI run flips the
        // rest via PGIVM_TYPED_COLUMNS=0; these two stay pinned even in
        // default runs).
        HarnessConfig{"eager_row", PropagationStrategy::kEager,
                      ExecutorKind::kSerial, 0, /*typed_columns=*/false},
        HarnessConfig{"batched_parallel8_row", PropagationStrategy::kBatched,
                      ExecutorKind::kParallel, 8, /*typed_columns=*/false}),
    [](const auto& info) { return std::string(info.param.name); });

/// SubmitAsync: mutations from several producer threads are coalesced by
/// the ingest thread into BeginBatch/CommitBatch batches; StopIngest
/// drains everything still queued. The tiny queue depth forces the
/// backpressure path (producers block until the ingest thread catches up).
TEST(ServingIngest, SubmitAsyncCoalescesAndDrains) {
  ScopedThreadsEnv no_env(nullptr);
  PropertyGraph graph;
  EngineOptions options;
  options.ingest_queue_depth = 2;
  QueryEngine engine(&graph, options);
  auto view = engine.Register("MATCH (n:A) RETURN count(*) AS c");
  ASSERT_TRUE(view.ok()) << view.status();

  EXPECT_FALSE(engine.ingest_running());
  // Not running yet: submissions are refused, not queued.
  EXPECT_FALSE(engine.SubmitAsync(
      [](PropertyGraph& g) { g.AddVertex({"A"}); }));

  engine.StartIngest();
  EXPECT_TRUE(engine.ingest_running());

  constexpr int kProducers = 2;
  constexpr int kPerProducer = 100;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(engine.SubmitAsync([](PropertyGraph& g) {
          g.AddVertex({"A"}, {{"x", Value::Int(1)}});
        }));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  engine.StopIngest();
  EXPECT_FALSE(engine.ingest_running());

  constexpr int64_t kTotal = kProducers * kPerProducer;
  EXPECT_EQ(engine.ingest_mutations(), kTotal);
  EXPECT_GE(engine.ingest_batches(), 1);
  EXPECT_LE(engine.ingest_batches(), kTotal);

  // The maintained view agrees with one-shot evaluation of the final
  // graph: nothing was lost or double-applied.
  std::vector<Tuple> expected =
      engine.EvaluateOnce("MATCH (n:A) RETURN count(*) AS c").value();
  EXPECT_EQ((*view)->Snapshot(), expected);
  ASSERT_EQ(expected.size(), 1u);
  EXPECT_EQ(expected[0].at(0), Value::Int(kTotal));

  // After StopIngest the session is over: submissions are refused again.
  EXPECT_FALSE(engine.SubmitAsync(
      [](PropertyGraph& g) { g.AddVertex({"A"}); }));
}

/// Destroying an engine with a live ingest session stops it cleanly and
/// applies everything already queued (views outlive the engine).
TEST(ServingIngest, DestructorStopsIngestAndDrains) {
  ScopedThreadsEnv no_env(nullptr);
  PropertyGraph graph;
  std::shared_ptr<View> view;
  {
    QueryEngine engine(&graph);
    auto registered = engine.Register("MATCH (n:A) RETURN count(*) AS c");
    ASSERT_TRUE(registered.ok()) << registered.status();
    view = *registered;
    engine.StartIngest();
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(engine.SubmitAsync(
          [](PropertyGraph& g) { g.AddVertex({"A"}); }));
    }
  }  // ~QueryEngine → StopIngest: drains the queue, joins the thread.
  std::vector<Tuple> rows = view->Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at(0), Value::Int(25));
}

/// Regression for the lifetime-counter races: ingest_mutations()/
/// ingest_batches() (engine) and the network's diagnostic counters
/// (TotalEmittedEntries, SourceEmittedEntries, commit_epoch,
/// deltas_processed, changes_processed, parallel_waves_dispatched,
/// epochs_published) used to be plain int64 fields written by the
/// ingest/draining thread — reading them from a monitoring thread
/// mid-session was a data race. They are atomics now; under TSAN this
/// test is the proof.
TEST(ServingIngest, CounterReadsDuringIngestAreRaceFree) {
  ScopedThreadsEnv no_env(nullptr);
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine.Register("MATCH (n:A) RETURN count(*) AS c");
  ASSERT_TRUE(view.ok()) << view.status();
  const ReteNetwork* network = engine.catalog().shared_network();
  ASSERT_NE(network, nullptr);

  engine.StartIngest();
  constexpr int kProducers = 2;
  constexpr int kPerProducer = 150;
  std::atomic<bool> done{false};

  std::vector<std::thread> monitors;
  for (int t = 0; t < 4; ++t) {
    monitors.emplace_back([&engine, network, &done] {
      int64_t last_mutations = 0;
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        // Engine counters: monotone while the session runs.
        int64_t mutations = engine.ingest_mutations();
        EXPECT_GE(mutations, last_mutations);
        last_mutations = mutations;
        EXPECT_GE(engine.ingest_batches(), 0);
        // Network counters, racing the ingest thread's drains.
        EXPECT_GE(network->TotalEmittedEntries(), 0);
        EXPECT_GE(network->SourceEmittedEntries(), 0);
        EXPECT_GE(network->deltas_processed(), 0);
        EXPECT_GE(network->changes_processed(), 0);
        EXPECT_GE(network->parallel_waves_dispatched(), 0);
        EXPECT_GE(network->epochs_published(), 0);
        uint64_t epoch = network->commit_epoch();
        EXPECT_GE(epoch, last_epoch);
        last_epoch = epoch;
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(engine.SubmitAsync(
            [](PropertyGraph& g) { g.AddVertex({"A"}); }));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  engine.StopIngest();
  done.store(true, std::memory_order_release);
  for (std::thread& monitor : monitors) monitor.join();

  constexpr int64_t kTotal = kProducers * kPerProducer;
  EXPECT_EQ(engine.ingest_mutations(), kTotal);
  EXPECT_GE(engine.ingest_batches(), 1);
  EXPECT_EQ((*view)->size(), 1);
  EXPECT_EQ((*view)->Snapshot()[0].at(0), Value::Int(kTotal));
}

}  // namespace
}  // namespace pgivm
