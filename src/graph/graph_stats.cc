#include "graph/graph_stats.h"

#include <algorithm>
#include <sstream>

namespace pgivm {

GraphStats ComputeGraphStats(const PropertyGraph& graph) {
  GraphStats stats;
  stats.vertex_count = graph.vertex_count();
  stats.edge_count = graph.edge_count();

  size_t degree_sum = 0;
  graph.ForEachVertex([&](VertexId v) {
    for (const std::string& label : graph.VertexLabels(v)) {
      ++stats.vertices_per_label[label];
    }
    for (const auto& [key, value] : graph.VertexProperties(v)) {
      ++stats.vertex_property_keys[key];
      (void)value;
    }
    size_t out = graph.OutEdges(v).size();
    size_t in = graph.InEdges(v).size();
    stats.max_out_degree = std::max(stats.max_out_degree, out);
    stats.max_in_degree = std::max(stats.max_in_degree, in);
    degree_sum += out + in;
  });
  graph.ForEachEdge([&](EdgeId e) {
    ++stats.edges_per_type[graph.EdgeType(e)];
    for (const auto& [key, value] : graph.EdgeProperties(e)) {
      ++stats.edge_property_keys[key];
      (void)value;
    }
  });
  if (stats.vertex_count > 0) {
    stats.avg_degree = static_cast<double>(degree_sum) /
                       (2.0 * static_cast<double>(stats.vertex_count));
  }
  return stats;
}

std::string GraphStats::ToString() const {
  std::ostringstream os;
  os << "vertices: " << vertex_count << ", edges: " << edge_count
     << ", avg degree: " << avg_degree << ", max out/in degree: "
     << max_out_degree << "/" << max_in_degree << "\n";
  os << "labels:";
  for (const auto& [label, n] : vertices_per_label) {
    os << " " << label << "=" << n;
  }
  os << "\ntypes:";
  for (const auto& [type, n] : edges_per_type) {
    os << " " << type << "=" << n;
  }
  os << "\nvertex keys:";
  for (const auto& [key, n] : vertex_property_keys) {
    os << " " << key << "=" << n;
  }
  os << "\nedge keys:";
  for (const auto& [key, n] : edge_property_keys) {
    os << " " << key << "=" << n;
  }
  os << "\n";
  return os.str();
}

namespace {

uint64_t FingerprintMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h * 1099511628211ULL;
}

uint64_t FingerprintString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h = (h ^ static_cast<uint64_t>(static_cast<unsigned char>(c))) *
        1099511628211ULL;
  }
  return h;
}

// Values hash through their canonical rendering: ToString is deterministic
// (lists in order, maps sorted by key) and covers every nested shape.
uint64_t FingerprintValue(const Value& v) {
  return FingerprintString(v.ToString());
}

uint64_t FingerprintProperties(uint64_t h, const ValueMap& properties) {
  for (const auto& [key, value] : properties) {  // std::map: sorted keys
    h = FingerprintMix(h, FingerprintString(key));
    h = FingerprintMix(h, FingerprintValue(value));
  }
  return h;
}

}  // namespace

uint64_t GraphFingerprint(const PropertyGraph& graph) {
  uint64_t h = 0x5eed5eed5eed5eedULL;
  graph.ForEachVertex([&](VertexId v) {
    h = FingerprintMix(h, 0x11);
    h = FingerprintMix(h, static_cast<uint64_t>(v));
    for (const std::string& label : graph.VertexLabels(v)) {  // sorted
      h = FingerprintMix(h, FingerprintString(label));
    }
    h = FingerprintProperties(h, graph.VertexProperties(v));
  });
  graph.ForEachEdge([&](EdgeId e) {
    h = FingerprintMix(h, 0x22);
    h = FingerprintMix(h, static_cast<uint64_t>(e));
    h = FingerprintMix(h, static_cast<uint64_t>(graph.EdgeSource(e)));
    h = FingerprintMix(h, static_cast<uint64_t>(graph.EdgeTarget(e)));
    h = FingerprintMix(h, FingerprintString(graph.EdgeType(e)));
    h = FingerprintProperties(h, graph.EdgeProperties(e));
  });
  return h;
}

}  // namespace pgivm
