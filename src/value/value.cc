#include "value/value.h"

#include <cassert>
#include <cmath>
#include <ostream>
#include <sstream>

#include "support/string_util.h"

namespace pgivm {

namespace {

/// Rank shared by kInt and kDouble so numbers form one comparison class.
int TypeRank(Value::Type t) {
  switch (t) {
    case Value::Type::kNull:
      return 0;
    case Value::Type::kBool:
      return 1;
    case Value::Type::kInt:
    case Value::Type::kDouble:
      return 2;
    case Value::Type::kString:
      return 3;
    case Value::Type::kList:
      return 4;
    case Value::Type::kMap:
      return 5;
    case Value::Type::kVertex:
      return 6;
    case Value::Type::kEdge:
      return 7;
    case Value::Type::kPath:
      return 8;
  }
  return 9;
}

int CompareNumbers(const Value& a, const Value& b) {
  if (a.is_int() && b.is_int()) {
    int64_t x = a.AsInt(), y = b.AsInt();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  double x = a.NumericAsDouble(), y = b.NumericAsDouble();
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

template <typename T>
int ThreeWay(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

Value Value::List(ValueList elements) {
  return Value(Rep(std::make_shared<const ValueList>(std::move(elements))));
}

Value Value::Map(ValueMap entries) {
  return Value(Rep(std::make_shared<const ValueMap>(std::move(entries))));
}

Value Value::MakePath(Path p) {
  return Value(Rep(std::make_shared<const Path>(std::move(p))));
}

Value::Type Value::type() const {
  switch (rep_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kBool;
    case 2:
      return Type::kInt;
    case 3:
      return Type::kDouble;
    case 4:
      return Type::kString;
    case 5:
      return Type::kList;
    case 6:
      return Type::kMap;
    case 7:
      return Type::kVertex;
    case 8:
      return Type::kEdge;
    case 9:
      return Type::kPath;
  }
  return Type::kNull;
}

const char* Value::TypeName(Type t) {
  switch (t) {
    case Type::kNull:
      return "Null";
    case Type::kBool:
      return "Bool";
    case Type::kInt:
      return "Int";
    case Type::kDouble:
      return "Double";
    case Type::kString:
      return "String";
    case Type::kList:
      return "List";
    case Type::kMap:
      return "Map";
    case Type::kVertex:
      return "Vertex";
    case Type::kEdge:
      return "Edge";
    case Type::kPath:
      return "Path";
  }
  return "Unknown";
}

const ValueList& Value::AsList() const { return *std::get<ListPtr>(rep_); }

const ValueMap& Value::AsMap() const { return *std::get<MapPtr>(rep_); }

const Path& Value::AsPath() const { return *std::get<PathPtr>(rep_); }

double Value::NumericAsDouble() const {
  assert(is_numeric());
  return is_int() ? static_cast<double>(AsInt()) : AsDouble();
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (type()) {
    case Type::kNull:
      os << "null";
      break;
    case Type::kBool:
      os << (AsBool() ? "true" : "false");
      break;
    case Type::kInt:
      os << AsInt();
      break;
    case Type::kDouble:
      os << AsDouble();
      break;
    case Type::kString:
      os << '\'' << AsString() << '\'';
      break;
    case Type::kList: {
      os << '[';
      const ValueList& list = AsList();
      for (size_t i = 0; i < list.size(); ++i) {
        if (i > 0) os << ", ";
        os << list[i].ToString();
      }
      os << ']';
      break;
    }
    case Type::kMap: {
      os << '{';
      bool first = true;
      for (const auto& [k, v] : AsMap()) {
        if (!first) os << ", ";
        first = false;
        os << k << ": " << v.ToString();
      }
      os << '}';
      break;
    }
    case Type::kVertex:
      os << "(#" << AsVertex() << ")";
      break;
    case Type::kEdge:
      os << "[#" << AsEdge() << "]";
      break;
    case Type::kPath:
      os << AsPath().ToString();
      break;
  }
  return os.str();
}

size_t Value::ApproxMemoryBytes() const {
  size_t bytes = sizeof(Value);
  switch (type()) {
    case Type::kString:
      bytes += AsString().capacity();
      break;
    case Type::kList:
      for (const Value& v : AsList()) bytes += v.ApproxMemoryBytes();
      break;
    case Type::kMap:
      for (const auto& [k, v] : AsMap()) {
        bytes += k.capacity() + 48 /* map node overhead */ +
                 v.ApproxMemoryBytes();
      }
      break;
    case Type::kPath:
      bytes += AsPath().vertices().size() * sizeof(VertexId) +
               AsPath().edges().size() * sizeof(EdgeId);
      break;
    default:
      break;
  }
  return bytes;
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(TypeRank(type())) * 0x9e3779b9u;
  switch (type()) {
    case Type::kNull:
      break;
    case Type::kBool:
      HashCombine(seed, AsBool() ? 1u : 2u);
      break;
    case Type::kInt:
      HashCombine(seed, std::hash<int64_t>{}(AsInt()));
      break;
    case Type::kDouble: {
      // Hash integral doubles identically to the equal Int so hashing stays
      // consistent with Compare (Int(1) == Double(1.0)).
      double d = AsDouble();
      double rounded = std::nearbyint(d);
      if (rounded == d && std::abs(d) < 9.0e18) {
        HashCombine(seed, std::hash<int64_t>{}(static_cast<int64_t>(d)));
      } else {
        HashCombine(seed, std::hash<double>{}(d));
      }
      break;
    }
    case Type::kString:
      HashCombine(seed, std::hash<std::string>{}(AsString()));
      break;
    case Type::kList:
      for (const Value& v : AsList()) HashCombine(seed, v.Hash());
      break;
    case Type::kMap:
      for (const auto& [k, v] : AsMap()) {
        HashCombine(seed, std::hash<std::string>{}(k));
        HashCombine(seed, v.Hash());
      }
      break;
    case Type::kVertex:
      HashCombine(seed, std::hash<int64_t>{}(AsVertex()));
      break;
    case Type::kEdge:
      HashCombine(seed, std::hash<int64_t>{}(AsEdge()));
      break;
    case Type::kPath:
      HashCombine(seed, AsPath().Hash());
      break;
  }
  return seed;
}

int Value::Compare(const Value& a, const Value& b) {
  int ra = TypeRank(a.type()), rb = TypeRank(b.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a.type()) {
    case Type::kNull:
      return 0;
    case Type::kBool:
      return ThreeWay(a.AsBool(), b.AsBool());
    case Type::kInt:
    case Type::kDouble:
      return CompareNumbers(a, b);
    case Type::kString:
      return ThreeWay(a.AsString(), b.AsString());
    case Type::kList: {
      const ValueList& x = a.AsList();
      const ValueList& y = b.AsList();
      size_t n = std::min(x.size(), y.size());
      for (size_t i = 0; i < n; ++i) {
        int c = Compare(x[i], y[i]);
        if (c != 0) return c;
      }
      return ThreeWay(x.size(), y.size());
    }
    case Type::kMap: {
      const ValueMap& x = a.AsMap();
      const ValueMap& y = b.AsMap();
      auto ix = x.begin(), iy = y.begin();
      for (; ix != x.end() && iy != y.end(); ++ix, ++iy) {
        int c = ThreeWay(ix->first, iy->first);
        if (c != 0) return c;
        c = Compare(ix->second, iy->second);
        if (c != 0) return c;
      }
      return ThreeWay(x.size(), y.size());
    }
    case Type::kVertex:
      return ThreeWay(a.AsVertex(), b.AsVertex());
    case Type::kEdge:
      return ThreeWay(a.AsEdge(), b.AsEdge());
    case Type::kPath:
      return Path::Compare(a.AsPath(), b.AsPath());
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace pgivm
