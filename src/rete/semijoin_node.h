#ifndef PGIVM_RETE_SEMIJOIN_NODE_H_
#define PGIVM_RETE_SEMIJOIN_NODE_H_

#include "rete/join_node.h"
#include "rete/node.h"
#include "rete/sharded_map.h"

namespace pgivm {

/// ⋉ — incremental semi-join: emits the left tuples that have at least one
/// partner in the right input (matching on shared column names), each with
/// its own multiplicity (no fan-out). Realizes positive `exists(pattern)`
/// predicates; the dual of AntiJoinNode.
///
/// Both memories are keyed (and sharded) by the same join-key tuple, so a
/// morsel partition's updates to the left memory and support lookups on
/// the right stay within the shards it owns.
class SemiJoinNode : public ReteNode {
 public:
  SemiJoinNode(Schema schema, const Schema& left, const Schema& right);

  void OnDelta(int port, const Delta& delta) override;

  MorselKind morsel_kind() const override { return MorselKind::kKeyed; }
  void MorselPartitionMap(int port, const Delta& delta, uint32_t partitions,
                          size_t begin, size_t end,
                          uint32_t* map) const override;
  void OnDeltaMorsel(int port, const Delta& delta, const uint32_t* map,
                     uint32_t partition, uint32_t partitions,
                     Delta& out) override;

  /// Replays the currently matched left tuples (keys with positive right
  /// support), each with its own multiplicity.
  bool ReplayOutput(Delta& out) const override;

  void Reset() override {
    left_memory_.clear();
    right_support_.clear();
  }

  size_t ApproxMemoryBytes() const override;

  std::string DebugString() const override { return "SemiJoin"; }
  const char* KindName() const override { return "SemiJoin"; }

 private:
  void ProcessEntries(int port, const Delta& delta, const uint32_t* map,
                      uint32_t partition, Delta& out);

  JoinLayout layout_;
  ShardedTupleMap<Bag> left_memory_;
  ShardedTupleMap<int64_t> right_support_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_SEMIJOIN_NODE_H_
