#include "rete/union_node.h"

// UnionNode is header-only; this translation unit anchors the vtable.

namespace pgivm {}  // namespace pgivm
