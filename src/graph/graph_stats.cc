#include "graph/graph_stats.h"

#include <algorithm>
#include <sstream>

namespace pgivm {

GraphStats ComputeGraphStats(const PropertyGraph& graph) {
  GraphStats stats;
  stats.vertex_count = graph.vertex_count();
  stats.edge_count = graph.edge_count();

  size_t degree_sum = 0;
  graph.ForEachVertex([&](VertexId v) {
    for (const std::string& label : graph.VertexLabels(v)) {
      ++stats.vertices_per_label[label];
    }
    for (const auto& [key, value] : graph.VertexProperties(v)) {
      ++stats.vertex_property_keys[key];
      (void)value;
    }
    size_t out = graph.OutEdges(v).size();
    size_t in = graph.InEdges(v).size();
    stats.max_out_degree = std::max(stats.max_out_degree, out);
    stats.max_in_degree = std::max(stats.max_in_degree, in);
    degree_sum += out + in;
  });
  graph.ForEachEdge([&](EdgeId e) {
    ++stats.edges_per_type[graph.EdgeType(e)];
    for (const auto& [key, value] : graph.EdgeProperties(e)) {
      ++stats.edge_property_keys[key];
      (void)value;
    }
  });
  if (stats.vertex_count > 0) {
    stats.avg_degree = static_cast<double>(degree_sum) /
                       (2.0 * static_cast<double>(stats.vertex_count));
  }
  return stats;
}

std::string GraphStats::ToString() const {
  std::ostringstream os;
  os << "vertices: " << vertex_count << ", edges: " << edge_count
     << ", avg degree: " << avg_degree << ", max out/in degree: "
     << max_out_degree << "/" << max_in_degree << "\n";
  os << "labels:";
  for (const auto& [label, n] : vertices_per_label) {
    os << " " << label << "=" << n;
  }
  os << "\ntypes:";
  for (const auto& [type, n] : edges_per_type) {
    os << " " << type << "=" << n;
  }
  os << "\nvertex keys:";
  for (const auto& [key, n] : vertex_property_keys) {
    os << " " << key << "=" << n;
  }
  os << "\nedge keys:";
  for (const auto& [key, n] : edge_property_keys) {
    os << " " << key << "=" << n;
  }
  os << "\n";
  return os.str();
}

}  // namespace pgivm
