#include "cypher/lexer.h"

#include <gtest/gtest.h>

namespace pgivm {
namespace {

std::vector<TokenKind> Kinds(const std::string& input) {
  Result<std::vector<Token>> tokens = Tokenize(input);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens.value()) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  EXPECT_EQ(Kinds("MATCH match MaTcH"),
            (std::vector<TokenKind>{TokenKind::kMatch, TokenKind::kMatch,
                                    TokenKind::kMatch, TokenKind::kEnd}));
}

TEST(LexerTest, IdentifiersKeepCase) {
  Result<std::vector<Token>> tokens = Tokenize("myVar _x a1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].text, "myVar");
  EXPECT_EQ(tokens.value()[1].text, "_x");
  EXPECT_EQ(tokens.value()[2].text, "a1");
}

TEST(LexerTest, NumbersIntAndFloat) {
  Result<std::vector<Token>> tokens = Tokenize("42 3.5 1e3 2.5e-1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens.value()[0].int_value, 42);
  EXPECT_EQ(tokens.value()[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens.value()[1].double_value, 3.5);
  EXPECT_EQ(tokens.value()[2].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens.value()[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens.value()[3].double_value, 0.25);
}

TEST(LexerTest, RangeDotsDoNotEatIntegers) {
  // `1..3` must lex as INT DOTDOT INT for variable-length patterns.
  EXPECT_EQ(Kinds("*1..3"),
            (std::vector<TokenKind>{TokenKind::kStar, TokenKind::kInteger,
                                    TokenKind::kDotDot, TokenKind::kInteger,
                                    TokenKind::kEnd}));
}

TEST(LexerTest, StringsWithBothQuotesAndEscapes) {
  Result<std::vector<Token>> tokens = Tokenize("'it' \"x\\n\" 'a\\'b'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].string_value, "it");
  EXPECT_EQ(tokens.value()[1].string_value, "x\n");
  EXPECT_EQ(tokens.value()[2].string_value, "a'b");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, ArrowsAndComparisons) {
  EXPECT_EQ(Kinds("-> <- <> <= >= < >"),
            (std::vector<TokenKind>{
                TokenKind::kArrowRight, TokenKind::kArrowLeft,
                TokenKind::kNeq, TokenKind::kLe, TokenKind::kGe,
                TokenKind::kLt, TokenKind::kGt, TokenKind::kEnd}));
}

TEST(LexerTest, PatternArrowSequences) {
  // (a)-[r]->(b) and (a)<-[r]-(b)
  EXPECT_EQ(Kinds(")-[" ), (std::vector<TokenKind>{
      TokenKind::kRParen, TokenKind::kMinus, TokenKind::kLBracket,
      TokenKind::kEnd}));
  EXPECT_EQ(Kinds("]->("), (std::vector<TokenKind>{
      TokenKind::kRBracket, TokenKind::kArrowRight, TokenKind::kLParen,
      TokenKind::kEnd}));
  EXPECT_EQ(Kinds(")<-["), (std::vector<TokenKind>{
      TokenKind::kRParen, TokenKind::kArrowLeft, TokenKind::kLBracket,
      TokenKind::kEnd}));
  // `-->` is MINUS ARROW; `<--` is ARROWLEFT MINUS.
  EXPECT_EQ(Kinds("-->"), (std::vector<TokenKind>{
      TokenKind::kMinus, TokenKind::kArrowRight, TokenKind::kEnd}));
  EXPECT_EQ(Kinds("<--"), (std::vector<TokenKind>{
      TokenKind::kArrowLeft, TokenKind::kMinus, TokenKind::kEnd}));
}

TEST(LexerTest, CommentsAreSkipped) {
  EXPECT_EQ(Kinds("MATCH // line comment\n RETURN /* block */ 1"),
            (std::vector<TokenKind>{TokenKind::kMatch, TokenKind::kReturn,
                                    TokenKind::kInteger, TokenKind::kEnd}));
}

TEST(LexerTest, UnterminatedBlockCommentFails) {
  EXPECT_FALSE(Tokenize("MATCH /* oops").ok());
}

TEST(LexerTest, BackquotedIdentifiers) {
  Result<std::vector<Token>> tokens = Tokenize("`weird name`");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens.value()[0].text, "weird name");
}

TEST(LexerTest, PositionsAreTracked) {
  Result<std::vector<Token>> tokens = Tokenize("MATCH\n  RETURN");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].line, 1);
  EXPECT_EQ(tokens.value()[0].column, 1);
  EXPECT_EQ(tokens.value()[1].line, 2);
  EXPECT_EQ(tokens.value()[1].column, 3);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  Result<std::vector<Token>> tokens = Tokenize("MATCH @");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("unexpected character"),
            std::string::npos);
}

}  // namespace
}  // namespace pgivm
