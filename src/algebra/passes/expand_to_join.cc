#include <cassert>

#include "algebra/passes/pass_manager.h"

namespace pgivm {

namespace {

OpPtr Rewrite(const OpPtr& op) {
  std::vector<OpPtr> children;
  children.reserve(op->children.size());
  for (const OpPtr& child : op->children) children.push_back(Rewrite(child));

  if (op->kind != OpKind::kExpand) {
    auto copy = std::make_shared<LogicalOp>(*op);
    copy->children = std::move(children);
    return copy;
  }

  // ↑(src)-[e:T]->(dst)(input)  ≡  input ⋈ ⇑(src)-[e:T]->(dst).
  // The kIn orientation is normalized away here: get-edges always emits the
  // graph-direction (source, edge, target) triple, so an incoming pattern
  // edge just swaps which pattern variable names which column.
  OpPtr edges = MakeOp(OpKind::kGetEdges);
  edges->edge_var = op->edge_var;
  edges->edge_types = op->edge_types;
  switch (op->direction) {
    case EdgeDirection::kOut:
      edges->src_var = op->src_var;
      edges->dst_var = op->dst_var;
      edges->direction = EdgeDirection::kOut;
      break;
    case EdgeDirection::kIn:
      edges->src_var = op->dst_var;
      edges->dst_var = op->src_var;
      edges->direction = EdgeDirection::kOut;
      break;
    case EdgeDirection::kBoth:
      edges->src_var = op->src_var;
      edges->dst_var = op->dst_var;
      edges->direction = EdgeDirection::kBoth;
      break;
  }
  return MakeOp(OpKind::kJoin, {children[0], std::move(edges)});
}

}  // namespace

OpPtr RewriteExpandToJoin(const OpPtr& root) { return Rewrite(root); }

}  // namespace pgivm
