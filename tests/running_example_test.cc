// Reproduction of the paper's Section-2 running example (experiment E1):
//
//   Graph: (1:Post {lang:'en'}) -[:REPLY]-> (2:Comm {lang:'en'})
//                               -[:REPLY]-> (3:Comm {lang:'en'})
//   Query: MATCH t = (p:Post)-[:REPLY*]->(c:Comm)
//          WHERE p.lang = c.lang RETURN p, t
//   Result: { (1, [1,2]), (1, [1,2,3]) }
//
// plus incremental maintenance of that result under updates.

#include <gtest/gtest.h>

#include "engine/query_engine.h"

namespace pgivm {
namespace {

constexpr char kQuery[] =
    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) "
    "WHERE p.lang = c.lang RETURN p, t";

/// Renders a result row as "(post, [vertex ids of t])" for readable asserts.
std::string RowString(const Tuple& row) {
  std::string out = "(" + std::to_string(row.at(0).AsVertex()) + ", [";
  const Path& path = row.at(1).AsPath();
  for (size_t i = 0; i < path.vertices().size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(path.vertices()[i]);
  }
  return out + "])";
}

std::vector<std::string> Rows(const View& view) {
  std::vector<std::string> out;
  for (const Tuple& row : view.Snapshot()) out.push_back(RowString(row));
  return out;
}

class RunningExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    post_ = graph_.AddVertex({"Post"}, {{"lang", Value::String("en")}});
    comm2_ = graph_.AddVertex({"Comm"}, {{"lang", Value::String("en")}});
    comm3_ = graph_.AddVertex({"Comm"}, {{"lang", Value::String("en")}});
    reply12_ = graph_.AddEdge(post_, comm2_, "REPLY").value();
    reply23_ = graph_.AddEdge(comm2_, comm3_, "REPLY").value();
  }

  PropertyGraph graph_;
  VertexId post_, comm2_, comm3_;
  EdgeId reply12_, reply23_;
};

TEST_F(RunningExampleTest, PaperResultTable) {
  QueryEngine engine(&graph_);
  Result<std::shared_ptr<View>> view = engine.Register(kQuery);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ((*view)->column_names(),
            (std::vector<std::string>{"p", "t"}));
  EXPECT_EQ(Rows(**view),
            (std::vector<std::string>{"(0, [0, 1])", "(0, [0, 1, 2])"}));
}

TEST_F(RunningExampleTest, LanguageFlipRetractsLongPath) {
  QueryEngine engine(&graph_);
  auto view = engine.Register(kQuery).value();

  // Comment 3 switches language: only the short path remains.
  ASSERT_TRUE(
      graph_.SetVertexProperty(comm3_, "lang", Value::String("de")).ok());
  EXPECT_EQ(Rows(*view), (std::vector<std::string>{"(0, [0, 1])"}));

  // Flip it back: the paper's result is restored.
  ASSERT_TRUE(
      graph_.SetVertexProperty(comm3_, "lang", Value::String("en")).ok());
  EXPECT_EQ(Rows(*view),
            (std::vector<std::string>{"(0, [0, 1])", "(0, [0, 1, 2])"}));
}

TEST_F(RunningExampleTest, NewReplyExtendsThread) {
  QueryEngine engine(&graph_);
  auto view = engine.Register(kQuery).value();

  VertexId comm4 =
      graph_.AddVertex({"Comm"}, {{"lang", Value::String("en")}});
  (void)graph_.AddEdge(comm3_, comm4, "REPLY").value();
  EXPECT_EQ(Rows(*view),
            (std::vector<std::string>{"(0, [0, 1])", "(0, [0, 1, 2])",
                                      "(0, [0, 1, 2, 3])"}));
}

TEST_F(RunningExampleTest, EdgeDeletionIsAtomicPathDeletion) {
  QueryEngine engine(&graph_);
  auto view = engine.Register(kQuery).value();

  // Deleting the middle edge removes every path through it as a unit —
  // the paper's atomic-path semantics.
  ASSERT_TRUE(graph_.RemoveEdge(reply12_).ok());
  EXPECT_TRUE(Rows(*view).empty());

  // Re-adding restores both rows (new edge id, same vertices).
  (void)graph_.AddEdge(post_, comm2_, "REPLY").value();
  EXPECT_EQ(Rows(*view),
            (std::vector<std::string>{"(0, [0, 1])", "(0, [0, 1, 2])"}));
}

TEST_F(RunningExampleTest, ViewRegisteredBeforeDataSeesIt) {
  PropertyGraph fresh;
  QueryEngine engine(&fresh);
  auto view = engine.Register(kQuery).value();
  EXPECT_TRUE(view->Snapshot().empty());

  fresh.BeginBatch();
  VertexId p = fresh.AddVertex({"Post"}, {{"lang", Value::String("hu")}});
  VertexId c = fresh.AddVertex({"Comm"}, {{"lang", Value::String("hu")}});
  (void)fresh.AddEdge(p, c, "REPLY").value();
  fresh.CommitBatch();
  EXPECT_EQ(view->Snapshot().size(), 1u);
}

TEST_F(RunningExampleTest, PathUnwindingWorks) {
  // The paper highlights that the fragment still allows path unwinding.
  QueryEngine engine(&graph_);
  auto view = engine
                  .Register(
                      "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) "
                      "WHERE p.lang = c.lang "
                      "UNWIND nodes(t) AS n RETURN n.lang AS l")
                  .value();
  // Paths [0,1] and [0,1,2] unwind to 5 vertices, all lang 'en'.
  std::vector<Tuple> rows = view->Snapshot();
  ASSERT_EQ(rows.size(), 5u);
  for (const Tuple& row : rows) {
    EXPECT_EQ(row.at(0), Value::String("en"));
  }
  // Property updates on unnested vertices are maintained too (the dynamic
  // get-vertices leaf inserted by pushdown).
  ASSERT_TRUE(
      graph_.SetVertexProperty(comm3_, "lang", Value::String("de")).ok());
  // Path [0,1,2] is itself gone now (WHERE p.lang=c.lang fails for c=3),
  // leaving the nodes of [0,1]: two rows.
  EXPECT_EQ(view->Snapshot().size(), 2u);
}

TEST_F(RunningExampleTest, MatchesBaselineEvaluation) {
  QueryEngine engine(&graph_);
  auto view = engine.Register(kQuery).value();
  Result<std::vector<Tuple>> baseline = engine.EvaluateOnce(kQuery);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  EXPECT_EQ(view->Snapshot(), baseline.value());
}

}  // namespace
}  // namespace pgivm
