#ifndef PGIVM_GRAPH_GRAPH_IO_H_
#define PGIVM_GRAPH_GRAPH_IO_H_

#include <string>
#include <string_view>

#include "graph/property_graph.h"
#include "support/status.h"

namespace pgivm {

/// Serializes a Value as a JSON-like literal: null, true/false, integers,
/// doubles (round-trip precision), "strings" (with \" \\ \n \t escapes),
/// [lists] and {"key": value} maps. Vertex/edge references and paths are
/// not serializable as property values (they are graph-topology, not data)
/// and render as null.
std::string WriteValueText(const Value& value);

/// Parses the WriteValueText format.
Result<Value> ParseValueText(std::string_view text);

/// Dumps the whole graph in a line-based text format:
///
///   pgivm-graph 1
///   vertex <id> :Label1:Label2 {"key": value, ...}
///   edge <id> <src> <dst> <type> {"key": value, ...}
///
/// Labels and types must not contain whitespace (enforced on write).
std::string WriteGraphText(const PropertyGraph& graph);

/// Loads a WriteGraphText dump into `graph` (which is typically fresh but
/// may already hold elements). Ids are re-assigned densely in file order;
/// edge endpoints are remapped accordingly. Emits regular change
/// notifications (one batch per load), so attached views stay consistent.
Status ReadGraphText(std::string_view text, PropertyGraph* graph);

}  // namespace pgivm

#endif  // PGIVM_GRAPH_GRAPH_IO_H_
