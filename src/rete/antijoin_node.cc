#include "rete/antijoin_node.h"

#include <cassert>

namespace pgivm {

AntiJoinNode::AntiJoinNode(Schema schema, const Schema& left,
                           const Schema& right)
    : ReteNode(std::move(schema)), layout_(JoinLayout::Make(left, right)) {}

void AntiJoinNode::OnDelta(int port, const Delta& delta) {
  Delta out;
  for (const DeltaEntry& entry : delta) {
    if (port == 0) {
      Tuple key = entry.tuple.Project(layout_.left_key);
      Bag& bag = left_memory_[key];
      bag.Apply(entry.tuple, entry.multiplicity);
      if (bag.total_count() == 0) left_memory_.erase(key);
      auto it = right_support_.find(key);
      if (it == right_support_.end() || it->second == 0) {
        out.push_back(entry);
      }
    } else {
      Tuple key = entry.tuple.Project(layout_.right_key);
      int64_t& support = right_support_[key];
      int64_t old_support = support;
      support += entry.multiplicity;
      assert(support >= 0 && "anti-join right support went negative");
      if (support == 0) right_support_.erase(key);
      bool was_absent = old_support == 0;
      bool is_absent = old_support + entry.multiplicity == 0;
      if (was_absent == is_absent) continue;
      auto it = left_memory_.find(key);
      if (it == left_memory_.end()) continue;
      // Key gained its first partner: retract the lefts; lost its last
      // partner: re-assert them.
      int64_t sign = was_absent ? -1 : 1;
      for (const auto& [left_tuple, count] : it->second.counts()) {
        out.push_back({left_tuple, sign * count});
      }
    }
  }
  Emit(std::move(out));
}

bool AntiJoinNode::ReplayOutput(Delta& out) const {
  for (const auto& [key, bag] : left_memory_) {
    auto it = right_support_.find(key);
    if (it != right_support_.end() && it->second > 0) continue;
    for (const auto& [left_tuple, count] : bag.counts()) {
      out.push_back({left_tuple, count});
    }
  }
  return true;
}

size_t AntiJoinNode::ApproxMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [key, bag] : left_memory_) {
    bytes += sizeof(Tuple) + key.size() * sizeof(Value);
    bytes += bag.ApproxMemoryBytes();
  }
  bytes += right_support_.size() * (sizeof(Tuple) + sizeof(int64_t));
  return bytes;
}

}  // namespace pgivm
