#ifndef PGIVM_SUPPORT_STATUS_H_
#define PGIVM_SUPPORT_STATUS_H_

#include <cassert>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace pgivm {

/// Canonical error space for the library. The project does not use C++
/// exceptions; every fallible operation reports through Status / Result<T>.
enum class StatusCode {
  kOk,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

/// Returns a stable, human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Value-semantic error carrier. An OK status has no message.
///
/// Example:
///   Status s = graph.RemoveVertex(id);
///   if (!s.ok()) { ... s.message() ... }
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or a non-OK Status. Mirrors absl::StatusOr.
///
/// Accessing value() on an error Result is a programming error and asserts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error is intentional: it lets
  /// functions `return value;` or `return Status::...;` uniformly.
  Result(T value) : rep_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() &&
           "Result<T> must not be built from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace pgivm

/// Propagates a non-OK Status to the caller.
#define PGIVM_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::pgivm::Status pgivm_status__ = (expr);   \
    if (!pgivm_status__.ok()) return pgivm_status__; \
  } while (false)

/// Evaluates `rexpr` (a Result<T>), propagating errors; on success binds the
/// value to `lhs`.
#define PGIVM_ASSIGN_OR_RETURN(lhs, rexpr)                    \
  PGIVM_ASSIGN_OR_RETURN_IMPL_(                               \
      PGIVM_STATUS_CONCAT_(pgivm_result__, __LINE__), lhs, rexpr)

#define PGIVM_STATUS_CONCAT_INNER_(x, y) x##y
#define PGIVM_STATUS_CONCAT_(x, y) PGIVM_STATUS_CONCAT_INNER_(x, y)
#define PGIVM_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

#endif  // PGIVM_SUPPORT_STATUS_H_
