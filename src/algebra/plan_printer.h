#ifndef PGIVM_ALGEBRA_PLAN_PRINTER_H_
#define PGIVM_ALGEBRA_PLAN_PRINTER_H_

#include <functional>
#include <string>

#include "algebra/operator.h"

namespace pgivm {

struct PlanPrintOptions {
  /// Append each operator's canonical fingerprint — `fp=<16 hex digits>`
  /// of CanonicalPlanKey's 64-bit hash, or `fp=-` for a sub-plan the
  /// fingerprint does not cover (never shared). Two dumps of logically
  /// equal views line up fingerprint-by-fingerprint, so a registry sharing
  /// miss is visible as the first line where the tags diverge. Requires
  /// schemas computed (always true for compiled plans).
  bool fingerprints = false;

  /// Per-operator annotation callback: whatever it returns is appended to
  /// the operator's line (after the fingerprint tag). EXPLAIN ANALYZE uses
  /// it to splice live Rete-node statistics into the plan rendering; an
  /// empty return adds nothing.
  std::function<std::string(const LogicalOp&)> annotate;
};

/// Renders the operator tree as an indented multi-line string, one operator
/// per line with its output schema, children indented below:
///
///   Produce p AS p, t AS t (p:V, t:P)
///     Selection (#c.lang = #p.lang) (...)
///       ...
///
/// With `options.fingerprints`, each line gains the operator's canonical
/// fingerprint tag:
///
///   Produce p AS p, t AS t (p:V, t:P)  fp=91f3b2...
std::string PrintPlan(const OpPtr& root);
std::string PrintPlan(const OpPtr& root, const PlanPrintOptions& options);

}  // namespace pgivm

#endif  // PGIVM_ALGEBRA_PLAN_PRINTER_H_
