#include "value/value.h"

#include <gtest/gtest.h>

namespace pgivm {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), Value::Type::kNull);
}

TEST(ValueTest, ScalarAccessors) {
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-3).AsInt(), -3);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_EQ(Value::Vertex(7).AsVertex(), 7);
  EXPECT_EQ(Value::Edge(9).AsEdge(), 9);
}

TEST(ValueTest, NumericEqualityAcrossIntAndDouble) {
  EXPECT_EQ(Value::Int(1), Value::Double(1.0));
  EXPECT_NE(Value::Int(1), Value::Double(1.5));
  EXPECT_LT(Value::Int(1), Value::Double(1.5));
  EXPECT_LT(Value::Double(0.5), Value::Int(1));
}

TEST(ValueTest, HashConsistentWithNumericEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Double(42.0).Hash());
}

TEST(ValueTest, TotalOrderAcrossTypes) {
  // null < bool < number < string < list < map < vertex < edge < path.
  std::vector<Value> ordered = {
      Value::Null(),
      Value::Bool(false),
      Value::Int(100),
      Value::String("a"),
      Value::List({Value::Int(1)}),
      Value::Map({{"k", Value::Int(1)}}),
      Value::Vertex(0),
      Value::Edge(0),
      Value::MakePath(Path::Single(1)),
  };
  for (size_t i = 0; i + 1 < ordered.size(); ++i) {
    EXPECT_LT(ordered[i], ordered[i + 1])
        << ordered[i].ToString() << " vs " << ordered[i + 1].ToString();
  }
}

TEST(ValueTest, ListComparisonIsLexicographic) {
  Value a = Value::List({Value::Int(1), Value::Int(2)});
  Value b = Value::List({Value::Int(1), Value::Int(3)});
  Value c = Value::List({Value::Int(1)});
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);  // Shorter prefix sorts first.
  EXPECT_EQ(a, Value::List({Value::Int(1), Value::Int(2)}));
}

TEST(ValueTest, MapComparisonByKeysThenValues) {
  Value a = Value::Map({{"a", Value::Int(1)}});
  Value b = Value::Map({{"b", Value::Int(1)}});
  Value c = Value::Map({{"a", Value::Int(2)}});
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(5).ToString(), "5");
  EXPECT_EQ(Value::String("x").ToString(), "'x'");
  EXPECT_EQ(Value::List({Value::Int(1), Value::Int(2)}).ToString(), "[1, 2]");
  EXPECT_EQ(Value::Map({{"k", Value::Int(1)}}).ToString(), "{k: 1}");
  EXPECT_EQ(Value::Vertex(3).ToString(), "(#3)");
  EXPECT_EQ(Value::Edge(4).ToString(), "[#4]");
}

TEST(ValueTest, NestedValuesCompareDeep) {
  Value nested1 = Value::List({Value::Map({{"k", Value::List({})}})});
  Value nested2 = Value::List({Value::Map({{"k", Value::List({})}})});
  EXPECT_EQ(nested1, nested2);
  EXPECT_EQ(nested1.Hash(), nested2.Hash());
}

TEST(ValueTest, CopyIsCheapAndShared) {
  ValueList big(1000, Value::Int(7));
  Value a = Value::List(big);
  Value b = a;  // Shares the payload.
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.AsList().size(), 1000u);
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(Value::TypeName(Value::Type::kNull), "Null");
  EXPECT_STREQ(Value::TypeName(Value::Type::kPath), "Path");
}

class ValueCompareSymmetryTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ValueCompareSymmetryTest, AntisymmetricOverSamples) {
  // Property: Compare(a, b) == -Compare(b, a) over a sample grid.
  auto make = [](int i) -> Value {
    switch (i % 6) {
      case 0:
        return Value::Null();
      case 1:
        return Value::Int(i);
      case 2:
        return Value::Double(i / 2.0);
      case 3:
        return Value::String(std::string(1, static_cast<char>('a' + i % 26)));
      case 4:
        return Value::List({Value::Int(i % 3)});
      default:
        return Value::Vertex(i);
    }
  };
  Value a = make(GetParam().first);
  Value b = make(GetParam().second);
  EXPECT_EQ(Value::Compare(a, b), -Value::Compare(b, a));
  if (Value::Compare(a, b) == 0) {
    EXPECT_EQ(a.Hash(), b.Hash());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ValueCompareSymmetryTest,
    ::testing::Values(std::make_pair(0, 0), std::make_pair(0, 1),
                      std::make_pair(1, 2), std::make_pair(2, 3),
                      std::make_pair(3, 4), std::make_pair(4, 5),
                      std::make_pair(5, 6), std::make_pair(6, 7),
                      std::make_pair(7, 13), std::make_pair(2, 8)));

}  // namespace
}  // namespace pgivm
