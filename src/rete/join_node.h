#ifndef PGIVM_RETE_JOIN_NODE_H_
#define PGIVM_RETE_JOIN_NODE_H_

#include <vector>

#include "rete/node.h"
#include "rete/sharded_map.h"

namespace pgivm {

/// Key extraction / tuple combination plan shared by the binary nodes.
/// Computed once from the two input schemas: natural join on the columns
/// whose names match; output = left columns + right-only columns.
struct JoinLayout {
  std::vector<int> left_key;    // key column indices in the left schema
  std::vector<int> right_key;   // matching indices in the right schema
  std::vector<int> right_rest;  // right columns appended to the output

  static JoinLayout Make(const Schema& left, const Schema& right);
};

/// ⋈ — incremental natural join with bag semantics. Both sides keep a
/// key-indexed counted memory; Δ(L⋈R) = ΔL⋈R ∪ L'⋈ΔR is realized by
/// updating the arriving side's memory first and probing the opposite
/// memory, so each delta entry joins against the correct snapshot.
///
/// Both memories are sharded by key hash (kMorselShards), so a morsel
/// partition — which owns a disjoint key set — updates its side and probes
/// the opposite side entirely within shards no other partition touches.
class JoinNode : public ReteNode {
 public:
  JoinNode(Schema schema, const Schema& left, const Schema& right);

  void OnDelta(int port, const Delta& delta) override;

  MorselKind morsel_kind() const override { return MorselKind::kKeyed; }
  void MorselPartitionMap(int port, const Delta& delta, uint32_t partitions,
                          size_t begin, size_t end,
                          uint32_t* map) const override;
  void OnDeltaMorsel(int port, const Delta& delta, const uint32_t* map,
                     uint32_t partition, uint32_t partitions,
                     Delta& out) override;

  /// Replays L ⋈ R by probing the two memories — one output entry per
  /// matching (left, right) pair, so replay work is proportional to the
  /// join's current result size, not to its input sizes.
  bool ReplayOutput(Delta& out) const override;

  void Reset() override {
    left_memory_.clear();
    right_memory_.clear();
  }

  size_t ApproxMemoryBytes() const override;

  std::string DebugString() const override;
  const char* KindName() const override { return "Join"; }

 private:
  /// key tuple -> (full tuple -> count), sharded by key hash.
  using Memory = ShardedTupleMap<Bag>;

  static void Apply(Memory& memory, const Tuple& key, const Tuple& tuple,
                    int64_t multiplicity);

  /// Shared body of OnDelta and OnDeltaMorsel: processes the entries this
  /// caller owns (all of them when `map` is null) and appends to `out`.
  void ProcessEntries(int port, const Delta& delta, const uint32_t* map,
                      uint32_t partition, Delta& out);

  Tuple Combine(const Tuple& left, const Tuple& right) const;

  JoinLayout layout_;
  Memory left_memory_;
  Memory right_memory_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_JOIN_NODE_H_
