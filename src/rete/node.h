#ifndef PGIVM_RETE_NODE_H_
#define PGIVM_RETE_NODE_H_

#include <string>
#include <utility>
#include <vector>

#include "algebra/schema.h"
#include "rete/delta.h"

namespace pgivm {

/// Base class of all Rete dataflow nodes.
///
/// A node receives bag deltas on numbered input ports (0 for unary nodes,
/// 0/1 for binary ones), updates its internal memory, and emits the derived
/// delta to its downstream subscribers. Propagation is synchronous and
/// depth-first; networks are fan-in trees (no shared sub-networks), so no
/// glitch handling is needed.
class ReteNode {
 public:
  explicit ReteNode(Schema schema) : schema_(std::move(schema)) {}
  virtual ~ReteNode() = default;

  ReteNode(const ReteNode&) = delete;
  ReteNode& operator=(const ReteNode&) = delete;

  /// Handles an incoming delta on `port`. The delta's tuples conform to the
  /// upstream node's schema.
  virtual void OnDelta(int port, const Delta& delta) = 0;

  /// Publishes structurally-initial output (e.g. the single row of a
  /// key-less aggregation over empty input). The network calls this once,
  /// in topological order, before feeding any graph state.
  virtual void EmitInitial() {}

  /// Subscribes `node` to this node's output, delivering to its `port`.
  void AddOutput(ReteNode* node, int port) {
    outputs_.emplace_back(node, port);
  }

  const Schema& schema() const { return schema_; }

  /// Bytes held by this node's memories (0 for stateless nodes).
  virtual size_t ApproxMemoryBytes() const { return 0; }

  /// Short human-readable identity for diagnostics ("Join[p]", ...).
  virtual std::string DebugString() const = 0;

  /// Lifetime count of tuple-delta entries this node has emitted.
  int64_t emitted_entries() const { return emitted_entries_; }

 protected:
  /// Forwards `delta` to every subscriber (no-op for empty deltas).
  void Emit(const Delta& delta) {
    if (delta.empty()) return;
    emitted_entries_ += static_cast<int64_t>(delta.size());
    for (auto& [node, port] : outputs_) node->OnDelta(port, delta);
  }

 private:
  Schema schema_;
  std::vector<std::pair<ReteNode*, int>> outputs_;
  int64_t emitted_entries_ = 0;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_NODE_H_
