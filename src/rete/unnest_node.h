#ifndef PGIVM_RETE_UNNEST_NODE_H_
#define PGIVM_RETE_UNNEST_NODE_H_

#include <vector>

#include "rete/expression_eval.h"
#include "rete/node.h"

namespace pgivm {

/// μ — unnest (Cypher UNWIND): one output row per element of the collection
/// expression. Output = the kept input columns + the element column; columns
/// used only by the collection expression can be dropped from the output
/// (see kUnnest's drop list), which enables fine-grained maintenance.
///
/// FGN (the paper's fine-granularity property): with `fine_grained` set, a
/// delta batch is first folded per kept-column projection — the retract/
/// assert pair produced by an element-level collection update meets here,
/// and only the *multiset difference* of the elements is emitted. A one-
/// element append to a 512-element list then costs one output entry instead
/// of 1024. With `fine_grained` false the node expands every entry naively
/// (the E4 ablation baseline).
class UnnestNode : public ReteNode {
 public:
  UnnestNode(Schema schema, BoundExpression collection,
             std::vector<int> kept_columns, bool fine_grained)
      : ReteNode(std::move(schema)),
        collection_(std::move(collection)),
        kept_columns_(std::move(kept_columns)),
        fine_grained_(fine_grained) {}

  void OnDelta(int port, const Delta& delta) override;

  /// Naive expansion is stateless per-entry (chunked); fine-grained folds
  /// per kept projection, so partitioning must keep equal projections in
  /// one partition (keyed by the kept-projection hash) for the fold to see
  /// every entry of its group.
  MorselKind morsel_kind() const override {
    return fine_grained_ ? MorselKind::kKeyed : MorselKind::kChunked;
  }
  void MorselPartitionMap(int port, const Delta& delta, uint32_t partitions,
                          size_t begin, size_t end,
                          uint32_t* map) const override;
  void OnDeltaMorsel(int port, const Delta& delta, const uint32_t* map,
                     uint32_t partition, uint32_t partitions,
                     Delta& out) override;

  std::string DebugString() const override;
  const char* KindName() const override { return "Unnest"; }

 private:
  void ProcessNaive(const Delta& delta, size_t begin, size_t end, Delta& out);
  void ProcessFolded(const Delta& delta, const uint32_t* map,
                     uint32_t partition, Delta& out);

  /// Appends the elements of `tuple`'s collection (list → elements, null →
  /// nothing, scalar → itself) to `out` with the given multiplicity.
  void ExpandInto(const Tuple& tuple, int64_t multiplicity,
                  std::vector<std::pair<Value, int64_t>>& out) const;

  BoundExpression collection_;
  std::vector<int> kept_columns_;
  bool fine_grained_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_UNNEST_NODE_H_
