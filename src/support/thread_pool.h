#ifndef PGIVM_SUPPORT_THREAD_POOL_H_
#define PGIVM_SUPPORT_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pgivm {

/// A persistent pool of worker threads for fork-join data parallelism.
///
/// The pool is built once and reused for many (typically very many, short)
/// parallel regions — the Rete wave scheduler dispatches one region per
/// topological level, so dispatch latency per region matters more than raw
/// throughput. Workers spin briefly on the region generation counter before
/// parking on a condition variable, which makes back-to-back waves (the
/// steady state of batched propagation) dispatch without a futex round
/// trip.
///
/// Work distribution is dynamic: tasks are claimed index-at-a-time from a
/// shared atomic cursor, so a region with one expensive task and many cheap
/// ones still balances. The calling thread participates as a claimant, which
/// both avoids an idle core and makes the pool usable with zero workers
/// (`threads == 1` degenerates to a serial loop with no synchronization).
///
/// Run() must not be called concurrently from several threads and must not
/// be re-entered from inside a task.
class ThreadPool {
 public:
  /// `threads` is the total parallelism including the calling thread, so
  /// `threads - 1` workers are spawned. Values below 1 are clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Invokes `task(i)` exactly once for every i in [0, n), distributed over
  /// the workers and the calling thread; returns when all n invocations
  /// have completed. Tasks must not throw.
  void Run(size_t n, const std::function<void(size_t)>& task);

  /// Total parallelism (workers + the calling thread).
  int parallelism() const { return static_cast<int>(workers_.size()) + 1; }

  /// `num_threads` resolved against the machine: 0 (or negative) means
  /// "use the hardware concurrency", everything else is taken as-is.
  static int ResolveThreadCount(int num_threads);

 private:
  void WorkerLoop();
  /// Claims and runs tasks of the current region until the cursor passes n.
  void Drain();

  std::vector<std::thread> workers_;
  /// Spin budget before parking: kSpinIterations when the pool fits the
  /// machine, 0 when oversubscribed (spinning would steal the cores the
  /// actual work needs).
  int spin_iterations_ = 0;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers park here between regions
  std::condition_variable done_cv_;  // Run() parks here for stragglers
  std::atomic<bool> stopping_{false};
  /// Bumped (under mu_, so cv waits can't miss it) to publish a region;
  /// the release store also publishes n_/task_ to spinning workers.
  std::atomic<uint64_t> generation_{0};
  /// Workers still inside the current region.
  std::atomic<int> active_workers_{0};

  // Region state: written by Run() before the generation bump, read by
  // workers after they observe the bump (acquire).
  size_t n_ = 0;
  const std::function<void(size_t)>* task_ = nullptr;
  std::atomic<size_t> next_{0};
};

}  // namespace pgivm

#endif  // PGIVM_SUPPORT_THREAD_POOL_H_
