#include "rete/input_node.h"

#include <algorithm>
#include <cassert>

#include "support/string_util.h"

namespace pgivm {

namespace {

Value LabelsValue(const std::vector<std::string>& labels) {
  ValueList out;
  out.reserve(labels.size());
  for (const std::string& label : labels) out.push_back(Value::String(label));
  return Value::List(std::move(out));
}

Value PropertyValue(const ValueMap& properties, const std::string& key) {
  auto it = properties.find(key);
  return it == properties.end() ? Value::Null() : it->second;
}

/// True when `partition` (of `partitions`) owns entity `id` — the same
/// shard-granular ownership the ShardedIdMap asserted-state uses, so an
/// owning partition's map writes stay within its own shards.
template <typename Id>
bool OwnsEntity(Id id, uint32_t partition, uint32_t partitions) {
  return partitions <= 1 ||
         MorselPartitionOfHash(static_cast<size_t>(id), partitions) ==
             partition;
}

}  // namespace

// ---- VertexInputNode -------------------------------------------------------

VertexInputNode::VertexInputNode(Schema schema, const PropertyGraph* graph,
                                 std::vector<std::string> required_labels,
                                 std::vector<PropertyExtract> extracts)
    : ReteNode(std::move(schema)),
      graph_(graph),
      required_labels_(std::move(required_labels)),
      extracts_(std::move(extracts)) {
  std::sort(required_labels_.begin(), required_labels_.end());
  required_label_refs_.reserve(required_labels_.size());
  for (const std::string& label : required_labels_) {
    required_label_refs_.emplace_back(label);
  }
  extract_key_refs_.reserve(extracts_.size());
  for (const PropertyExtract& extract : extracts_) {
    extract_key_refs_.emplace_back(
        extract.what == PropertyExtract::What::kProperty ? extract.key
                                                         : std::string());
  }
}

void VertexInputNode::OnDelta(int port, const Delta& delta) {
  (void)port;
  (void)delta;
  assert(false && "input nodes have no upstream");
}

bool VertexInputNode::Matches(const std::vector<std::string>& labels) const {
  // Both sides sorted: subset test by inclusion.
  return std::includes(labels.begin(), labels.end(),
                       required_labels_.begin(), required_labels_.end());
}

bool VertexInputNode::MatchesGraph(VertexId v) const {
  const SymbolTable& symbols = graph_->symbols();
  for (const SymbolRef& ref : required_label_refs_) {
    SymbolId label = ref.Resolve(symbols);
    // Unresolved: the label name has never been interned, so no vertex
    // carries it.
    if (label == kNoSymbol || !graph_->VertexHasLabel(v, label)) return false;
  }
  return true;
}

Value VertexInputNode::ExtractValue(const PropertyExtract& extract,
                                    const std::vector<std::string>& labels,
                                    const ValueMap& properties) {
  switch (extract.what) {
    case PropertyExtract::What::kProperty:
      return PropertyValue(properties, extract.key);
    case PropertyExtract::What::kLabels:
      return LabelsValue(labels);
    case PropertyExtract::What::kPropertyMap:
      return Value::Map(properties);
    case PropertyExtract::What::kType:
      return Value::Null();  // Vertices have no type.
  }
  return Value::Null();
}

Tuple VertexInputNode::BuildTuple(VertexId v,
                                  const std::vector<std::string>& labels,
                                  const ValueMap& properties) const {
  std::vector<Value> values;
  values.reserve(1 + extracts_.size());
  values.push_back(Value::Vertex(v));
  for (const PropertyExtract& extract : extracts_) {
    values.push_back(ExtractValue(extract, labels, properties));
  }
  return Tuple(std::move(values));
}

Tuple VertexInputNode::BuildTupleFromGraph(VertexId v) const {
  const SymbolTable& symbols = graph_->symbols();
  std::vector<Value> values;
  values.reserve(1 + extracts_.size());
  values.push_back(Value::Vertex(v));
  for (size_t i = 0; i < extracts_.size(); ++i) {
    switch (extracts_[i].what) {
      case PropertyExtract::What::kProperty:
        values.push_back(graph_->GetVertexProperty(
            v, extract_key_refs_[i].Resolve(symbols)));
        break;
      case PropertyExtract::What::kLabels:
        values.push_back(LabelsValue(graph_->VertexLabels(v)));
        break;
      case PropertyExtract::What::kPropertyMap:
        values.push_back(Value::Map(graph_->VertexProperties(v)));
        break;
      case PropertyExtract::What::kType:
        values.push_back(Value::Null());  // Vertices have no type.
        break;
    }
  }
  return Tuple(std::move(values));
}

void VertexInputNode::TranslateChange(const GraphChange& change,
                                      uint32_t partition, uint32_t partitions,
                                      Delta& out) {
  // Every kind handled below is keyed by change.vertex; kinds that fall
  // through to `default` return regardless of ownership.
  if (!OwnsEntity(change.vertex, partition, partitions)) return;
  switch (change.kind) {
    case GraphChange::Kind::kAddVertex: {
      if (!Matches(change.labels)) return;
      Tuple tuple = BuildTuple(change.vertex, change.labels,
                               change.properties);
      asserted_.shard(change.vertex).emplace(change.vertex, tuple);
      out.push_back({std::move(tuple), 1});
      return;
    }
    case GraphChange::Kind::kRemoveVertex: {
      auto& shard = asserted_.shard(change.vertex);
      auto it = shard.find(change.vertex);
      if (it == shard.end()) return;
      Tuple old = it->second;
      shard.erase(it);
      out.push_back({std::move(old), -1});
      return;
    }
    case GraphChange::Kind::kSetVertexProperty: {
      auto& shard = asserted_.shard(change.vertex);
      auto it = shard.find(change.vertex);
      if (it == shard.end()) return;
      const Tuple& old = it->second;
      // Rebuild only the columns the changed key touches, against the
      // *stored* tuple: correct even mid-batch.
      Tuple updated = old;
      for (size_t i = 0; i < extracts_.size(); ++i) {
        const PropertyExtract& extract = extracts_[i];
        if (extract.what == PropertyExtract::What::kProperty &&
            extract.key == change.property_key) {
          updated = updated.WithColumn(i + 1, change.new_value);
        } else if (extract.what == PropertyExtract::What::kPropertyMap) {
          ValueMap map = updated.at(i + 1).is_map() ? updated.at(i + 1).AsMap()
                                                    : ValueMap{};
          if (change.new_value.is_null()) {
            map.erase(change.property_key);
          } else {
            map[change.property_key] = change.new_value;
          }
          updated = updated.WithColumn(i + 1, Value::Map(std::move(map)));
        }
      }
      if (updated == old) return;
      out.push_back({old, -1});
      out.push_back({updated, 1});
      it->second = std::move(updated);
      return;
    }
    case GraphChange::Kind::kAddVertexLabel:
    case GraphChange::Kind::kRemoveVertexLabel: {
      VertexId v = change.vertex;
      bool matched_now = graph_->HasVertex(v) && MatchesGraph(v);
      auto& shard = asserted_.shard(v);
      auto it = shard.find(v);
      if (it == shard.end()) {
        if (!matched_now) return;
        Tuple tuple = BuildTupleFromGraph(v);
        shard.emplace(v, tuple);
        out.push_back({std::move(tuple), 1});
        return;
      }
      if (!matched_now) {
        Tuple old = it->second;
        shard.erase(it);
        out.push_back({std::move(old), -1});
        return;
      }
      // Still matching: refresh labels() columns if any.
      Tuple updated = it->second;
      for (size_t i = 0; i < extracts_.size(); ++i) {
        if (extracts_[i].what == PropertyExtract::What::kLabels) {
          updated = updated.WithColumn(i + 1,
                                       LabelsValue(graph_->VertexLabels(v)));
        }
      }
      if (updated == it->second) return;
      out.push_back({it->second, -1});
      out.push_back({updated, 1});
      it->second = std::move(updated);
      return;
    }
    default:
      return;
  }
}

void VertexInputNode::HandleChange(const GraphChange& change) {
  Delta out;
  TranslateChange(change, /*partition=*/0, /*partitions=*/1, out);
  Emit(std::move(out));
}

void VertexInputNode::HandleChangePartition(const GraphChange& change,
                                            uint32_t partition,
                                            uint32_t partitions, Delta& out) {
  TranslateChange(change, partition, partitions, out);
}

void VertexInputNode::EmitInitialFromGraph() {
  Delta delta;
  auto consider = [this, &delta](VertexId v) {
    if (!MatchesGraph(v)) return;
    Tuple tuple = BuildTupleFromGraph(v);
    asserted_.shard(v).emplace(v, tuple);
    delta.push_back({std::move(tuple), 1});
  };
  // One entry per matching vertex: reserve the candidate count up front so
  // priming a large graph does not grow the delta step by step.
  if (!required_labels_.empty()) {
    // The posting list is already sorted ascending by id — scan in place.
    const std::vector<VertexId>& candidates = graph_->VerticesWithLabelId(
        required_label_refs_[0].Resolve(graph_->symbols()));
    delta.reserve(candidates.size());
    for (VertexId v : candidates) consider(v);
  } else {
    delta.reserve(graph_->vertex_count());
    graph_->ForEachVertex(consider);
  }
  Emit(std::move(delta));
}

bool VertexInputNode::ReplayOutput(Delta& out) const {
  out.reserve(out.size() + asserted_.size());
  asserted_.ForEach([&](VertexId v, const Tuple& tuple) {
    (void)v;
    out.push_back({tuple, 1});
  });
  return true;
}

size_t VertexInputNode::ApproxMemoryBytes() const {
  size_t bytes = 0;
  asserted_.ForEach([&](VertexId v, const Tuple& tuple) {
    (void)v;
    bytes += sizeof(VertexId) + sizeof(Tuple) + tuple.size() * sizeof(Value);
  });
  return bytes;
}

std::string VertexInputNode::DebugString() const {
  return StrCat("Vertices[:", StrJoin(required_labels_, ":"), "]");
}

// ---- EdgeInputNode ---------------------------------------------------------

EdgeInputNode::EdgeInputNode(Schema schema, const PropertyGraph* graph,
                             std::vector<std::string> types, bool undirected,
                             std::string src_var, std::string edge_var,
                             std::string dst_var,
                             std::vector<PropertyExtract> extracts)
    : ReteNode(std::move(schema)),
      graph_(graph),
      types_(std::move(types)),
      undirected_(undirected),
      src_var_(std::move(src_var)),
      edge_var_(std::move(edge_var)),
      dst_var_(std::move(dst_var)),
      extracts_(std::move(extracts)) {
  type_refs_.reserve(types_.size());
  for (const std::string& type : types_) type_refs_.emplace_back(type);
  extract_key_refs_.reserve(extracts_.size());
  for (const PropertyExtract& extract : extracts_) {
    if (extract.element_var != edge_var_) depends_on_vertices_ = true;
    extract_key_refs_.emplace_back(
        extract.what == PropertyExtract::What::kProperty ? extract.key
                                                         : std::string());
  }
}

void EdgeInputNode::OnDelta(int port, const Delta& delta) {
  (void)port;
  (void)delta;
  assert(false && "input nodes have no upstream");
}

bool EdgeInputNode::TypeMatches(const std::string& type) const {
  if (types_.empty()) return true;
  return std::find(types_.begin(), types_.end(), type) != types_.end();
}

bool EdgeInputNode::TypeMatchesId(SymbolId type) const {
  if (types_.empty()) return true;
  const SymbolTable& symbols = graph_->symbols();
  for (const SymbolRef& ref : type_refs_) {
    // An unresolved ref (name never interned) cannot equal a live type id.
    if (ref.Resolve(symbols) == type) return true;
  }
  return false;
}

Value EdgeInputNode::ExtractValue(size_t i, VertexId a, VertexId b,
                                  const std::string& type,
                                  const ValueMap& edge_properties) const {
  const PropertyExtract& extract = extracts_[i];
  if (extract.element_var == edge_var_) {
    switch (extract.what) {
      case PropertyExtract::What::kProperty:
        return PropertyValue(edge_properties, extract.key);
      case PropertyExtract::What::kType:
        return Value::String(type);
      case PropertyExtract::What::kPropertyMap:
        return Value::Map(edge_properties);
      case PropertyExtract::What::kLabels:
        return Value::Null();
    }
    return Value::Null();
  }
  // Endpoint extracts read live graph state through the resolved key
  // symbol: O(1) column probe, no string hashing.
  VertexId subject = extract.element_var == src_var_ ? a : b;
  switch (extract.what) {
    case PropertyExtract::What::kProperty:
      return graph_->GetVertexProperty(
          subject, extract_key_refs_[i].Resolve(graph_->symbols()));
    case PropertyExtract::What::kLabels:
      return LabelsValue(graph_->VertexLabels(subject));
    case PropertyExtract::What::kPropertyMap:
      return Value::Map(graph_->VertexProperties(subject));
    case PropertyExtract::What::kType:
      return Value::Null();
  }
  return Value::Null();
}

Tuple EdgeInputNode::BuildTuple(VertexId a, VertexId b, EdgeId e,
                                const std::string& type,
                                const ValueMap& edge_properties) const {
  std::vector<Value> values;
  values.reserve(3 + extracts_.size());
  values.push_back(Value::Vertex(a));
  values.push_back(Value::Edge(e));
  values.push_back(Value::Vertex(b));
  for (size_t i = 0; i < extracts_.size(); ++i) {
    values.push_back(ExtractValue(i, a, b, type, edge_properties));
  }
  return Tuple(std::move(values));
}

Tuple EdgeInputNode::BuildTupleFromGraph(VertexId a, VertexId b,
                                         EdgeId e) const {
  const SymbolTable& symbols = graph_->symbols();
  std::vector<Value> values;
  values.reserve(3 + extracts_.size());
  values.push_back(Value::Vertex(a));
  values.push_back(Value::Edge(e));
  values.push_back(Value::Vertex(b));
  for (size_t i = 0; i < extracts_.size(); ++i) {
    const PropertyExtract& extract = extracts_[i];
    if (extract.element_var == edge_var_) {
      switch (extract.what) {
        case PropertyExtract::What::kProperty:
          values.push_back(graph_->GetEdgeProperty(
              e, extract_key_refs_[i].Resolve(symbols)));
          break;
        case PropertyExtract::What::kType:
          values.push_back(Value::String(graph_->EdgeType(e)));
          break;
        case PropertyExtract::What::kPropertyMap:
          values.push_back(Value::Map(graph_->EdgeProperties(e)));
          break;
        case PropertyExtract::What::kLabels:
          values.push_back(Value::Null());
          break;
      }
      continue;
    }
    VertexId subject = extract.element_var == src_var_ ? a : b;
    switch (extract.what) {
      case PropertyExtract::What::kProperty:
        values.push_back(graph_->GetVertexProperty(
            subject, extract_key_refs_[i].Resolve(symbols)));
        break;
      case PropertyExtract::What::kLabels:
        values.push_back(LabelsValue(graph_->VertexLabels(subject)));
        break;
      case PropertyExtract::What::kPropertyMap:
        values.push_back(Value::Map(graph_->VertexProperties(subject)));
        break;
      case PropertyExtract::What::kType:
        values.push_back(Value::Null());
        break;
    }
  }
  return Tuple(std::move(values));
}

void EdgeInputNode::AssertEdge(EdgeId e, VertexId src, VertexId dst,
                               const std::string& type,
                               const ValueMap& edge_properties, Delta& out) {
  std::vector<Tuple>& tuples = asserted_.shard(e)[e];
  tuples.push_back(BuildTuple(src, dst, e, type, edge_properties));
  out.push_back({tuples.back(), 1});
  if (undirected_ && src != dst) {
    tuples.push_back(BuildTuple(dst, src, e, type, edge_properties));
    out.push_back({tuples.back(), 1});
  }
}

void EdgeInputNode::AssertEdgeFromGraph(EdgeId e, Delta& out) {
  VertexId src = graph_->EdgeSource(e);
  VertexId dst = graph_->EdgeTarget(e);
  std::vector<Tuple>& tuples = asserted_.shard(e)[e];
  tuples.push_back(BuildTupleFromGraph(src, dst, e));
  out.push_back({tuples.back(), 1});
  if (undirected_ && src != dst) {
    tuples.push_back(BuildTupleFromGraph(dst, src, e));
    out.push_back({tuples.back(), 1});
  }
}

void EdgeInputNode::RefreshIncident(VertexId v, uint32_t partition,
                                    uint32_t partitions, Delta& out) {
  std::vector<EdgeId> incident = graph_->OutEdges(v);
  const std::vector<EdgeId>& in = graph_->InEdges(v);
  incident.insert(incident.end(), in.begin(), in.end());
  std::sort(incident.begin(), incident.end());
  incident.erase(std::unique(incident.begin(), incident.end()),
                 incident.end());
  // Worst case every incident stored orientation flips: one retract/assert
  // pair per tuple.
  out.reserve(out.size() + 2 * incident.size() * (undirected_ ? 2 : 1));
  for (EdgeId e : incident) {
    // Edge ownership, not vertex ownership: every partition scans the
    // incident list but refreshes only its own edges, so an edge touched
    // via both endpoints in one batch still has a single writer.
    if (!OwnsEntity(e, partition, partitions)) continue;
    std::vector<Tuple>* stored = asserted_.Find(e);
    if (stored == nullptr) continue;
    VertexId src = graph_->EdgeSource(e);
    VertexId dst = graph_->EdgeTarget(e);
    // Interned fast path: tight typed reads per extract, no per-edge
    // property-map materialization or string hashing.
    std::vector<Tuple> fresh;
    fresh.push_back(BuildTupleFromGraph(src, dst, e));
    if (undirected_ && src != dst) {
      fresh.push_back(BuildTupleFromGraph(dst, src, e));
    }
    for (size_t i = 0; i < stored->size(); ++i) {
      if (!((*stored)[i] == fresh[i])) {
        out.push_back({(*stored)[i], -1});
        out.push_back({fresh[i], 1});
      }
    }
    *stored = std::move(fresh);
  }
}

void EdgeInputNode::TranslateChange(const GraphChange& change,
                                    uint32_t partition, uint32_t partitions,
                                    Delta& out) {
  switch (change.kind) {
    case GraphChange::Kind::kAddEdge:
      if (!OwnsEntity(change.edge, partition, partitions)) return;
      if (!TypeMatches(change.edge_type)) return;
      // A later change in the same batch may have removed this edge again
      // (possibly detach-removing an endpoint, whose properties the vertex
      // extracts would read from the post-batch graph). Skip the assert; the
      // matching kRemoveEdge later in this delta then finds nothing stored.
      if (!graph_->HasEdge(change.edge)) return;
      AssertEdge(change.edge, change.src, change.dst, change.edge_type,
                 change.properties, out);
      return;
    case GraphChange::Kind::kRemoveEdge: {
      if (!OwnsEntity(change.edge, partition, partitions)) return;
      auto& shard = asserted_.shard(change.edge);
      auto it = shard.find(change.edge);
      if (it == shard.end()) return;
      out.reserve(out.size() + it->second.size());
      for (const Tuple& tuple : it->second) out.push_back({tuple, -1});
      shard.erase(it);
      return;
    }
    case GraphChange::Kind::kSetEdgeProperty: {
      if (!OwnsEntity(change.edge, partition, partitions)) return;
      std::vector<Tuple>* stored_tuples = asserted_.Find(change.edge);
      if (stored_tuples == nullptr) return;
      for (Tuple& stored : *stored_tuples) {
        Tuple updated = stored;
        for (size_t i = 0; i < extracts_.size(); ++i) {
          const PropertyExtract& extract = extracts_[i];
          if (extract.element_var != edge_var_) continue;
          size_t col = 3 + i;
          if (extract.what == PropertyExtract::What::kProperty &&
              extract.key == change.property_key) {
            updated = updated.WithColumn(col, change.new_value);
          } else if (extract.what == PropertyExtract::What::kPropertyMap) {
            ValueMap map = updated.at(col).is_map() ? updated.at(col).AsMap()
                                                    : ValueMap{};
            if (change.new_value.is_null()) {
              map.erase(change.property_key);
            } else {
              map[change.property_key] = change.new_value;
            }
            updated = updated.WithColumn(col, Value::Map(std::move(map)));
          }
        }
        if (updated == stored) continue;
        out.push_back({stored, -1});
        out.push_back({updated, 1});
        stored = std::move(updated);
      }
      return;
    }
    case GraphChange::Kind::kSetVertexProperty:
    case GraphChange::Kind::kAddVertexLabel:
    case GraphChange::Kind::kRemoveVertexLabel:
      if (!depends_on_vertices_) return;
      if (!graph_->HasVertex(change.vertex)) return;
      RefreshIncident(change.vertex, partition, partitions, out);
      return;
    default:
      return;
  }
}

void EdgeInputNode::HandleChange(const GraphChange& change) {
  Delta out;
  TranslateChange(change, /*partition=*/0, /*partitions=*/1, out);
  Emit(std::move(out));
}

void EdgeInputNode::HandleChangePartition(const GraphChange& change,
                                          uint32_t partition,
                                          uint32_t partitions, Delta& out) {
  TranslateChange(change, partition, partitions, out);
}

void EdgeInputNode::EmitInitialFromGraph() {
  Delta delta;
  auto consider = [this, &delta](EdgeId e) {
    if (!TypeMatchesId(graph_->EdgeTypeId(e))) return;
    AssertEdgeFromGraph(e, delta);
  };
  // Reserve against the *filtered* candidate count (one entry per
  // orientation), not the whole edge store — a selective type over a huge
  // graph must not transiently allocate O(all edges), and priming repeats
  // on every catalog registration.
  if (!types_.empty()) {
    const SymbolTable& symbols = graph_->symbols();
    std::vector<EdgeId> candidates;
    for (const SymbolRef& ref : type_refs_) {
      const std::vector<EdgeId>& of_type =
          graph_->EdgesWithTypeId(ref.Resolve(symbols));
      candidates.insert(candidates.end(), of_type.begin(), of_type.end());
    }
    // Each posting list is sorted; merging several still needs a sort, and
    // a multi-type pattern could list one edge twice only if types_ held
    // duplicates — keep the unique pass for safety.
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    delta.reserve(candidates.size() * (undirected_ ? 2 : 1));
    for (EdgeId e : candidates) consider(e);
  } else {
    delta.reserve(graph_->edge_count() * (undirected_ ? 2 : 1));
    graph_->ForEachEdge(consider);
  }
  Emit(std::move(delta));
}

bool EdgeInputNode::ReplayOutput(Delta& out) const {
  asserted_.ForEach([&](EdgeId e, const std::vector<Tuple>& tuples) {
    (void)e;
    for (const Tuple& tuple : tuples) out.push_back({tuple, 1});
  });
  return true;
}

size_t EdgeInputNode::ApproxMemoryBytes() const {
  size_t bytes = 0;
  asserted_.ForEach([&](EdgeId e, const std::vector<Tuple>& tuples) {
    (void)e;
    bytes += sizeof(EdgeId);
    for (const Tuple& tuple : tuples) {
      bytes += sizeof(Tuple) + tuple.size() * sizeof(Value);
    }
  });
  return bytes;
}

std::string EdgeInputNode::DebugString() const {
  return StrCat("Edges[:", StrJoin(types_, "|"), undirected_ ? " undir" : "",
                "]");
}

// ---- UnitInputNode ---------------------------------------------------------

void UnitInputNode::OnDelta(int port, const Delta& delta) {
  (void)port;
  (void)delta;
  assert(false && "input nodes have no upstream");
}

}  // namespace pgivm
