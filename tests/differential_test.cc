// Differential (fuzz) tests: the Rete-maintained view and the independent
// baseline evaluator implement the same semantics, so after every random
// update their results must coincide — across plan/runtime ablations too.

#include <gtest/gtest.h>

#include "baseline/baseline_evaluator.h"
#include "engine/query_engine.h"
#include "graph/graph_stats.h"
#include "scoped_threads_env.h"
#include "support/repro.h"
#include "workload/random_graph.h"

namespace pgivm {
namespace {

struct DifferentialCase {
  const char* name;
  const char* query;
  uint64_t seed;
  bool naive_maps;
  bool coarse_unnest;
};

class DifferentialTest : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(DifferentialTest, ViewMatchesBaselineAfterEveryUpdate) {
  const DifferentialCase& param = GetParam();

  EngineOptions options;
  options.plan.naive_property_maps = param.naive_maps;
  if (param.coarse_unnest) {
    options.plan.narrow_unnest_outputs = false;
    options.network.fine_grained_unnest = false;
  }

  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = param.seed;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph, options);
  Result<std::shared_ptr<View>> view = engine.Register(param.query);
  ASSERT_TRUE(view.ok()) << view.status();
  Result<OpPtr> plan = engine.Compile(param.query);
  ASSERT_TRUE(plan.ok());

  BaselineEvaluator baseline(&graph);
  constexpr int kUpdates = 120;
  for (int step = 0; step < kUpdates; ++step) {
    generator.ApplyRandomUpdate(&graph);
    Result<Bag> expected = baseline.Evaluate(plan.value());
    ASSERT_TRUE(expected.ok()) << expected.status();
    std::vector<Tuple> expected_rows =
        BaselineEvaluator::SortedRows(expected.value());
    std::vector<Tuple> actual_rows = (*view)->Snapshot();
    ASSERT_EQ(actual_rows.size(), expected_rows.size())
        << param.name << " diverged at step " << step;
    for (size_t i = 0; i < actual_rows.size(); ++i) {
      ASSERT_EQ(Tuple::Compare(actual_rows[i], expected_rows[i]), 0)
          << param.name << " step " << step << " row " << i << ": "
          << actual_rows[i].ToString() << " vs "
          << expected_rows[i].ToString();
    }
  }
}

// ---- Randomized harness ----------------------------------------------------
//
// For several RNG seeds × both propagation strategies × {1, 2, 8} wave
// threads, drive a mixed stream of single-change updates and
// BeginBatch/CommitBatch bursts through a pool of standing views covering
// joins, anti-joins, aggregation, DISTINCT, unnest and variable-length
// paths. A serial reference engine maintains the same views over the same
// graph: after *every* delta each view's Snapshot() must be bit-identical
// to the reference (the parallel determinism contract), and periodically
// both are checked against a fresh EvaluateOnce() so the pair can't drift
// together.
//
// Registrations into the engine under test are *staggered*: half the views
// are registered up front, the rest one at a time between deltas, so every
// late registration exercises incremental priming (memory replay) into a
// live, mid-churn catalog — while the reference registers everything up
// front (graph-primed). The bit-identity assertions therefore also prove
// that a replay-primed catalog equals a freshly built one, across seeds ×
// strategies × thread counts; a final fresh engine built after the stream
// re-checks the same equivalence end-state against graph priming alone.
//
// Storage ablation: the reference engine runs over its OWN graph, pinned
// to legacy row storage and driven in lockstep by a same-seed twin
// generator (the generator tracks element ids itself and ids are assigned
// densely, so twin streams are identical mutation-for-mutation). Every
// per-step bit-identity assertion therefore also proves the typed
// columnar storage computes exactly what the row layout does, and a
// per-step GraphFingerprint comparison locks the two graphs themselves —
// labels, types, properties, endpoints — to symbol-id-independent
// equality.

const char* const kHarnessQueries[] = {
    "MATCH (a:A)-[r:R]->(b:B) RETURN a, r, b",
    "MATCH (a:A)-[:R]->(b)-[:S]->(c) RETURN a, b, c",
    "MATCH (a:A) WHERE exists((a)-[:R]->(:B)) RETURN a",
    "MATCH (a:A) WHERE NOT exists((a)-[:S]->()) RETURN a",
    "MATCH (a:A)-[:R]->(b) RETURN b AS t, count(*) AS c, sum(a.x) AS s",
    "MATCH (a:A)-[:R]->(b) RETURN DISTINCT b",
    "MATCH (n:B) UNWIND n.tags AS t RETURN t, count(*) AS c",
    "MATCH (a:A)-[:R*1..3]->(b) RETURN a, b",
    "MATCH (a:A) OPTIONAL MATCH (a)-[r:R]->(b:B) RETURN a, b",
    "MATCH (n:A) WHERE n.x > 1 RETURN n, n.x AS x",
};

struct HarnessCase {
  uint64_t seed;
  PropagationStrategy strategy;
  int threads;  // 1 = serial executor, otherwise kParallel with n threads
  /// Force morsel-style partitioned delivery (node-entry gate = 0) in the
  /// engine under test — every hot node splits by key every wave.
  bool morsel = false;
};

class RandomizedDifferentialTest
    : public ::testing::TestWithParam<HarnessCase> {};

TEST_P(RandomizedDifferentialTest, AllViewsMatchSerialReferenceAndBaseline) {
  const HarnessCase& param = GetParam();

  // Replay filter: exporting the PGIVM_REPRO recipe a parity failure
  // prints makes the harness run *only* the recorded case — one
  // `ctest -R Randomized` reruns exactly the flake.
  ReproSpec this_case;
  this_case.seed = param.seed;
  this_case.strategy = param.strategy;
  this_case.threads = param.threads;
  this_case.morsel = param.morsel;
  if (std::optional<ReproSpec> filter = ReproSpec::FromEnv()) {
    if (!filter->SameCase(this_case)) {
      GTEST_SKIP() << "PGIVM_REPRO pins " << filter->Format();
    }
  }
  // One-line replay recipe stamped into every divergence message below.
  auto recipe = [&this_case](int step) {
    ReproSpec spec = this_case;
    spec.step = step;
    return spec.EnvLine();
  };

  EngineOptions options;
  options.network.propagation = param.strategy;
  if (param.threads > 1) {
    options.network.executor = ExecutorKind::kParallel;
    options.network.num_threads = param.threads;
    // The harness exists to race the parallel machinery (and is what the
    // TSAN job runs), so the work-size gate must not quietly turn small
    // waves serial here; WaveGating covers the gate's own parity.
    options.network.parallel_min_wave_entries = 0;
  }
  if (param.morsel) {
    // Morsel cases additionally force key-partitioned intra-node delivery
    // on every non-empty node (and parallel source translation for every
    // batch): the full partitioned path races under the baseline checks.
    // The gate is deliberately NOT pinned via PGIVM_MORSEL here, so the
    // TSAN job's PGIVM_MORSEL=0 also forces it for the plain t2/t8 cases.
    options.network.morsel_min_node_entries = 0;
  }
  // The engine under test runs fully profiled while the reference does
  // not: every bit-identity assertion below then also proves profiling
  // changes no result, across seeds × strategies × thread counts — and
  // the TSAN cases race the profile/histogram writes for free.
  options.network.profiling = true;

  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = param.seed;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  // The reference's twin: same seed, legacy row storage (regardless of
  // the ambient PGIVM_TYPED_COLUMNS — the explicit constructor ignores
  // the environment), driven by its own generator in lockstep below.
  StorageOptions row_storage;
  row_storage.typed_columns = false;
  PropertyGraph row_graph(row_storage);
  RandomGraphGenerator row_generator(config);
  row_generator.Populate(&row_graph);
  ASSERT_FALSE(row_graph.storage_options().typed_columns);
  ASSERT_EQ(GraphFingerprint(graph), GraphFingerprint(row_graph));

  // Both engines are constructed with PGIVM_THREADS pinned away (the
  // override is read at construction): the engine under test must really
  // run the case's executor — an ambient PGIVM_THREADS=1 would silently
  // turn the t2/t8 cases serial — and the reference must really be the
  // serial baseline even under the TSAN job's PGIVM_THREADS=8.
  //
  // The reference additionally runs with plan canonicalization *disabled*:
  // every per-step bit-identity assertion below therefore also proves the
  // canonical normal form computes exactly what the un-normalized plan
  // does, across seeds × strategies × thread counts.
  ScopedThreadsEnv no_env(nullptr);
  QueryEngine engine(&graph, options);
  EngineOptions reference_options;
  reference_options.plan.canonicalize = false;
  QueryEngine reference_engine(&row_graph, reference_options);
  constexpr size_t kNumQueries =
      sizeof(kHarnessQueries) / sizeof(kHarnessQueries[0]);
  constexpr size_t kUpfront = kNumQueries / 2;
  std::vector<std::shared_ptr<View>> views;
  std::vector<std::shared_ptr<View>> reference_views;
  for (const char* query : kHarnessQueries) {
    Result<std::shared_ptr<View>> reference = reference_engine.Register(query);
    ASSERT_TRUE(reference.ok()) << query << ": " << reference.status();
    reference_views.push_back(*reference);
  }
  for (size_t q = 0; q < kUpfront; ++q) {
    Result<std::shared_ptr<View>> view = engine.Register(kHarnessQueries[q]);
    ASSERT_TRUE(view.ok()) << kHarnessQueries[q] << ": " << view.status();
    views.push_back(*view);
  }

  Rng control(param.seed * 7919 + 13);
  constexpr int kDeltas = 40;
  for (int step = 0; step < kDeltas; ++step) {
    // Alternate randomly between single-change deltas and bursts of 2–8
    // changes committed as one atomic batch. The row-storage twin sees the
    // identical stream with identical batch boundaries.
    if (control.NextBool(0.4)) {
      int burst = static_cast<int>(control.NextInRange(2, 8));
      graph.BeginBatch();
      row_graph.BeginBatch();
      for (int i = 0; i < burst; ++i) {
        generator.ApplyRandomUpdate(&graph);
        row_generator.ApplyRandomUpdate(&row_graph);
      }
      graph.CommitBatch();
      row_graph.CommitBatch();
    } else {
      generator.ApplyRandomUpdate(&graph);
      row_generator.ApplyRandomUpdate(&row_graph);
    }
    // The graphs themselves must agree before any view is compared: the
    // fingerprint walks labels, types, endpoints and properties through
    // the string API, so it is symbol-id-independent by construction.
    ASSERT_EQ(GraphFingerprint(graph), GraphFingerprint(row_graph))
        << "typed/row twin graphs diverged at step " << step
        << "\n  replay with: " << recipe(step);
    // Stagger the remaining registrations through the stream: each one
    // replay-primes into the live catalog and must land bit-identical to
    // the reference's graph-primed twin immediately.
    if (step % 3 == 1 && views.size() < kNumQueries) {
      const char* query = kHarnessQueries[views.size()];
      Result<std::shared_ptr<View>> view = engine.Register(query);
      ASSERT_TRUE(view.ok()) << query << ": " << view.status();
      views.push_back(*view);
    }
    const bool check_baseline = step % 8 == 7 || step == kDeltas - 1;
    for (size_t q = 0; q < views.size(); ++q) {
      std::vector<Tuple> actual = views[q]->Snapshot();
      std::vector<Tuple> reference = reference_views[q]->Snapshot();
      ASSERT_EQ(actual.size(), reference.size())
          << kHarnessQueries[q] << " diverged from serial at step " << step
          << "\n  replay with: " << recipe(step);
      for (size_t i = 0; i < actual.size(); ++i) {
        ASSERT_EQ(Tuple::Compare(actual[i], reference[i]), 0)
            << kHarnessQueries[q] << " step " << step << " row " << i
            << ": " << actual[i].ToString() << " vs "
            << reference[i].ToString()
            << "\n  replay with: " << recipe(step);
      }
      if (!check_baseline) continue;
      Result<std::vector<Tuple>> expected =
          engine.EvaluateOnce(kHarnessQueries[q]);
      ASSERT_TRUE(expected.ok()) << expected.status();
      ASSERT_EQ(actual.size(), expected.value().size())
          << kHarnessQueries[q] << " diverged from baseline at step " << step
          << "\n  replay with: " << recipe(step);
      for (size_t i = 0; i < actual.size(); ++i) {
        ASSERT_EQ(Tuple::Compare(actual[i], expected.value()[i]), 0)
            << kHarnessQueries[q] << " step " << step << " row " << i
            << ": " << actual[i].ToString() << " vs "
            << expected.value()[i].ToString()
            << "\n  replay with: " << recipe(step);
      }
    }
  }
  ASSERT_EQ(views.size(), kNumQueries) << "stagger schedule exhausted early";

  // End state: a brand-new engine built over the final graph (pure graph
  // priming, no replay anywhere) must agree bit-for-bit with the engine
  // whose catalog grew by staggered replay-primed registrations.
  QueryEngine fresh_engine(&graph, options);
  for (size_t q = 0; q < kNumQueries; ++q) {
    Result<std::shared_ptr<View>> fresh =
        fresh_engine.Register(kHarnessQueries[q]);
    ASSERT_TRUE(fresh.ok()) << kHarnessQueries[q] << ": " << fresh.status();
    std::vector<Tuple> actual = views[q]->Snapshot();
    std::vector<Tuple> rebuilt = (*fresh)->Snapshot();
    ASSERT_EQ(actual.size(), rebuilt.size())
        << kHarnessQueries[q] << ": replay-primed catalog != fresh build"
        << "\n  replay with: " << recipe(-1);
    for (size_t i = 0; i < actual.size(); ++i) {
      ASSERT_EQ(Tuple::Compare(actual[i], rebuilt[i]), 0)
          << kHarnessQueries[q] << " row " << i
          << "\n  replay with: " << recipe(-1);
    }
  }
}

std::vector<HarnessCase> HarnessCases() {
  std::vector<HarnessCase> cases;
  for (uint64_t seed : {101u, 202u, 303u, 404u, 505u}) {
    // The executor only applies to batched propagation (the eager cascade
    // is inherently sequential), so sweeping threads under kEager would
    // run the identical configuration three times.
    cases.push_back({seed, PropagationStrategy::kEager, 1});
    for (int threads : {1, 2, 8}) {
      cases.push_back({seed, PropagationStrategy::kBatched, threads});
    }
    // Morsel-forced engines under test: every wave splits hot nodes into
    // key partitions and translates sources in parallel, and must still
    // be bit-identical to the serial reference and the baseline.
    for (int threads : {2, 8}) {
      cases.push_back(
          {seed, PropagationStrategy::kBatched, threads, /*morsel=*/true});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndStrategies, RandomizedDifferentialTest,
    ::testing::ValuesIn(HarnessCases()),
    [](const ::testing::TestParamInfo<HarnessCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_" +
             PropagationStrategyName(info.param.strategy) + "_t" +
             std::to_string(info.param.threads) +
             (info.param.morsel ? "_morsel" : "");
    });

INSTANTIATE_TEST_SUITE_P(
    Queries, DifferentialTest,
    ::testing::Values(
        DifferentialCase{"label_scan", "MATCH (n:A) RETURN n", 11, false,
                         false},
        DifferentialCase{"property_filter",
                         "MATCH (n:A) WHERE n.x > 1 RETURN n, n.x AS x", 12,
                         false, false},
        DifferentialCase{"edge_join",
                         "MATCH (a:A)-[r:R]->(b:B) RETURN a, r, b", 13,
                         false, false},
        DifferentialCase{"two_hops",
                         "MATCH (a:A)-[:R]->(b)-[:S]->(c) RETURN a, b, c",
                         14, false, false},
        DifferentialCase{"undirected",
                         "MATCH (a:A)-[r:R]-(b) RETURN a, b", 15, false,
                         false},
        DifferentialCase{"cross_property_join",
                         "MATCH (a:A), (b:B) WHERE a.x = b.y RETURN a, b",
                         16, false, false},
        DifferentialCase{"distinct",
                         "MATCH (a:A)-[:R]->(b) RETURN DISTINCT b", 17,
                         false, false},
        DifferentialCase{"aggregation",
                         "MATCH (a:A)-[:R]->(b) RETURN b AS t, count(*) "
                         "AS c, sum(a.x) AS s",
                         18, false, false},
        DifferentialCase{"optional_match",
                         "MATCH (a:A) OPTIONAL MATCH (a)-[r:R]->(b:B) "
                         "RETURN a, b",
                         19, false, false},
        DifferentialCase{"unwind_tags",
                         "MATCH (n:B) UNWIND n.tags AS t RETURN t, "
                         "count(*) AS c",
                         20, false, false},
        DifferentialCase{"var_length",
                         "MATCH (a:A)-[:R*1..3]->(b) RETURN a, b", 21,
                         false, false},
        DifferentialCase{"var_length_path",
                         "MATCH t = (a:A)-[:R*1..2]->(b:B) RETURN t", 22,
                         false, false},
        DifferentialCase{"labels_fn",
                         "MATCH (n:A) RETURN n, size(labels(n)) AS l", 23,
                         false, false},
        DifferentialCase{"naive_maps_filter",
                         "MATCH (n:A) WHERE n.x > 1 RETURN n, n.y AS y",
                         24, true, false},
        DifferentialCase{"naive_maps_join",
                         "MATCH (a:A)-[r:R]->(b:B) WHERE a.x = b.x "
                         "RETURN a, b",
                         25, true, false},
        DifferentialCase{"coarse_unwind",
                         "MATCH (n:B) UNWIND n.tags AS t RETURN t, "
                         "count(*) AS c",
                         26, false, true},
        DifferentialCase{"where_in_list",
                         "MATCH (n:A) WHERE n.x IN [1, 3] RETURN n", 27,
                         false, false},
        DifferentialCase{"with_pipeline",
                         "MATCH (a:A)-[:R]->(b) WITH b, count(*) AS c "
                         "WHERE c > 1 RETURN b, c",
                         28, false, false},
        DifferentialCase{"exists_positive",
                         "MATCH (a:A) WHERE exists((a)-[:R]->(:B)) "
                         "RETURN a",
                         29, false, false},
        DifferentialCase{"exists_negated",
                         "MATCH (a:A) WHERE NOT exists((a)-[:S]->()) "
                         "RETURN a",
                         30, false, false},
        DifferentialCase{"exists_mixed",
                         "MATCH (a:A) WHERE a.x > 0 AND "
                         "NOT exists((a)-[:R]->(:C)) RETURN a, a.x AS x",
                         31, false, false},
        DifferentialCase{"union_all",
                         "MATCH (a:A) RETURN a AS n UNION ALL "
                         "MATCH (b:B) RETURN b AS n",
                         32, false, false},
        DifferentialCase{"union_distinct",
                         "MATCH (a:A) RETURN a AS n UNION "
                         "MATCH (b:B) RETURN b AS n",
                         33, false, false},
        DifferentialCase{"case_expression",
                         "MATCH (n:A) RETURN CASE WHEN n.x > 2 THEN 'hi' "
                         "WHEN n.x > 0 THEN 'mid' ELSE 'lo' END AS bucket, "
                         "count(*) AS c",
                         34, false, false},
        DifferentialCase{"self_loop_churn",
                         "MATCH (a:A)-[r:R]->(a) RETURN a, r", 35, false,
                         false},
        DifferentialCase{"optional_var_length",
                         "MATCH (a:A) OPTIONAL MATCH (a)-[:R*1..2]->(b:B) "
                         "RETURN a, b",
                         36, false, false}),
    [](const ::testing::TestParamInfo<DifferentialCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace pgivm
