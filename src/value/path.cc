#include "value/path.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "support/string_util.h"

namespace pgivm {

Path::Path(std::vector<VertexId> vertices, std::vector<EdgeId> edges)
    : vertices_(std::move(vertices)), edges_(std::move(edges)) {
  assert(!vertices_.empty());
  assert(vertices_.size() == edges_.size() + 1);
}

Path Path::Single(VertexId v) { return Path({v}, {}); }

bool Path::ContainsEdge(EdgeId e) const {
  return std::find(edges_.begin(), edges_.end(), e) != edges_.end();
}

bool Path::ContainsVertex(VertexId v) const {
  return std::find(vertices_.begin(), vertices_.end(), v) != vertices_.end();
}

Path Path::Extended(EdgeId e, VertexId v) const {
  Path out = *this;
  out.edges_.push_back(e);
  out.vertices_.push_back(v);
  return out;
}

std::string Path::ToString() const {
  std::ostringstream os;
  os << "<" << vertices_[0];
  for (size_t i = 0; i < edges_.size(); ++i) {
    os << "-[e" << edges_[i] << "]->" << vertices_[i + 1];
  }
  os << ">";
  return os.str();
}

size_t Path::Hash() const {
  size_t seed = 0x70617468;  // "path"
  for (VertexId v : vertices_) HashCombine(seed, std::hash<int64_t>{}(v));
  for (EdgeId e : edges_) HashCombine(seed, std::hash<int64_t>{}(e));
  return seed;
}

int Path::Compare(const Path& a, const Path& b) {
  if (a.length() != b.length()) return a.length() < b.length() ? -1 : 1;
  if (a.vertices_ != b.vertices_) return a.vertices_ < b.vertices_ ? -1 : 1;
  if (a.edges_ != b.edges_) return a.edges_ < b.edges_ ? -1 : 1;
  return 0;
}

}  // namespace pgivm
