#include "rete/path_node.h"

#include <gtest/gtest.h>

namespace pgivm {
namespace {

class SinkNode : public ReteNode {
 public:
  SinkNode() : ReteNode(Schema{}) {}
  void OnDelta(int port, const Delta& delta) override {
    (void)port;
    for (const DeltaEntry& entry : delta) {
      bag.Apply(entry.tuple, entry.multiplicity);
    }
  }
  std::string DebugString() const override { return "Sink"; }
  Bag bag;
};

Schema PathSchema(bool with_path) {
  Schema schema({{"a", Attribute::Kind::kVertex},
                 {"b", Attribute::Kind::kVertex}});
  if (with_path) schema.Add({"p", Attribute::Kind::kPath});
  return schema;
}

Tuple Pair(VertexId a, VertexId b) {
  return Tuple({Value::Vertex(a), Value::Vertex(b)});
}

struct Fixture {
  Fixture(int64_t min_hops, int64_t max_hops, bool emit_path = false,
          bool reversed = false)
      : node(PathSchema(emit_path), &graph, {"T"}, reversed, min_hops,
             max_hops, emit_path) {
    node.AddOutput(&sink, 0);
    graph.AddListener(&adapter);
  }

  /// Routes graph changes into the node like a network would.
  struct Adapter : GraphListener {
    explicit Adapter(PathInputNode* n) : node(n) {}
    void OnGraphDelta(const GraphDelta& delta) override {
      for (const GraphChange& change : delta.changes) {
        node->HandleChange(change);
      }
    }
    PathInputNode* node;
  };

  PropertyGraph graph;
  SinkNode sink;
  PathInputNode node;
  Adapter adapter{&node};
};

TEST(PathNodeTest, ChainPathsMaterialized) {
  Fixture f(1, -1);
  VertexId v1 = f.graph.AddVertex({});
  VertexId v2 = f.graph.AddVertex({});
  VertexId v3 = f.graph.AddVertex({});
  (void)f.graph.AddEdge(v1, v2, "T").value();
  EXPECT_EQ(f.sink.bag.Count(Pair(v1, v2)), 1);

  (void)f.graph.AddEdge(v2, v3, "T").value();
  // New trails through the new edge: v2->v3 and v1->v2->v3.
  EXPECT_EQ(f.sink.bag.Count(Pair(v2, v3)), 1);
  EXPECT_EQ(f.sink.bag.Count(Pair(v1, v3)), 1);
  EXPECT_EQ(f.sink.bag.total_count(), 3);
  EXPECT_EQ(f.node.path_count(), 3u);
}

TEST(PathNodeTest, EdgeRemovalRetractsContainingPaths) {
  Fixture f(1, -1);
  VertexId v1 = f.graph.AddVertex({});
  VertexId v2 = f.graph.AddVertex({});
  VertexId v3 = f.graph.AddVertex({});
  EdgeId e1 = f.graph.AddEdge(v1, v2, "T").value();
  (void)f.graph.AddEdge(v2, v3, "T").value();
  EXPECT_EQ(f.sink.bag.total_count(), 3);

  ASSERT_TRUE(f.graph.RemoveEdge(e1).ok());
  // v1->v2 and v1->v3 gone; v2->v3 stays.
  EXPECT_EQ(f.sink.bag.total_count(), 1);
  EXPECT_EQ(f.sink.bag.Count(Pair(v2, v3)), 1);
}

TEST(PathNodeTest, TypeFilteringIgnoresOtherEdges) {
  Fixture f(1, -1);
  VertexId v1 = f.graph.AddVertex({});
  VertexId v2 = f.graph.AddVertex({});
  (void)f.graph.AddEdge(v1, v2, "OTHER").value();
  EXPECT_EQ(f.sink.bag.total_count(), 0);
}

TEST(PathNodeTest, HopBoundsRespected) {
  Fixture f(2, 3);
  std::vector<VertexId> v;
  for (int i = 0; i < 5; ++i) v.push_back(f.graph.AddVertex({}));
  for (int i = 0; i + 1 < 5; ++i) {
    (void)f.graph.AddEdge(v[i], v[i + 1], "T").value();
  }
  // Chain of 4 edges: length-2 paths: 3; length-3 paths: 2. No 1s or 4s.
  EXPECT_EQ(f.sink.bag.total_count(), 5);
  EXPECT_EQ(f.sink.bag.Count(Pair(v[0], v[1])), 0);
  EXPECT_EQ(f.sink.bag.Count(Pair(v[0], v[2])), 1);
  EXPECT_EQ(f.sink.bag.Count(Pair(v[0], v[3])), 1);
  EXPECT_EQ(f.sink.bag.Count(Pair(v[0], v[4])), 0);
}

TEST(PathNodeTest, ZeroLengthPathsTrackVertices) {
  Fixture f(0, 1);
  VertexId v1 = f.graph.AddVertex({});
  EXPECT_EQ(f.sink.bag.Count(Pair(v1, v1)), 1);
  ASSERT_TRUE(f.graph.RemoveVertex(v1).ok());
  EXPECT_EQ(f.sink.bag.total_count(), 0);
}

TEST(PathNodeTest, CycleTerminatesViaTrailSemantics) {
  Fixture f(1, -1);
  VertexId v1 = f.graph.AddVertex({});
  VertexId v2 = f.graph.AddVertex({});
  (void)f.graph.AddEdge(v1, v2, "T").value();
  (void)f.graph.AddEdge(v2, v1, "T").value();
  // Trails (no repeated edge): v1->v2, v2->v1, v1->v2->v1, v2->v1->v2.
  EXPECT_EQ(f.sink.bag.total_count(), 4);
  EXPECT_EQ(f.sink.bag.Count(Pair(v1, v1)), 1);
  EXPECT_EQ(f.sink.bag.Count(Pair(v2, v2)), 1);
}

TEST(PathNodeTest, DiamondCountsDistinctPaths) {
  Fixture f(1, -1);
  VertexId s = f.graph.AddVertex({});
  VertexId a = f.graph.AddVertex({});
  VertexId b = f.graph.AddVertex({});
  VertexId t = f.graph.AddVertex({});
  (void)f.graph.AddEdge(s, a, "T").value();
  (void)f.graph.AddEdge(s, b, "T").value();
  (void)f.graph.AddEdge(a, t, "T").value();
  (void)f.graph.AddEdge(b, t, "T").value();
  // Two distinct s->t paths (bag semantics: multiplicity 2).
  EXPECT_EQ(f.sink.bag.Count(Pair(s, t)), 2);
}

TEST(PathNodeTest, PathValuesEmittedInPatternOrder) {
  Fixture f(1, -1, /*emit_path=*/true);
  VertexId v1 = f.graph.AddVertex({});
  VertexId v2 = f.graph.AddVertex({});
  EdgeId e = f.graph.AddEdge(v1, v2, "T").value();

  bool found = false;
  for (const auto& [tuple, count] : f.sink.bag.counts()) {
    if (count <= 0) continue;
    ASSERT_EQ(tuple.size(), 3u);
    const Path& path = tuple.at(2).AsPath();
    EXPECT_EQ(path.vertices(), (std::vector<VertexId>{v1, v2}));
    EXPECT_EQ(path.edges(), std::vector<EdgeId>{e});
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PathNodeTest, ReversedFollowsIncomingEdges) {
  // Pattern (a)<-[:T*]-(b): edges run b->a in the graph, while the emitted
  // pair is (a, b) in pattern order.
  Fixture f(1, -1, /*emit_path=*/false, /*reversed=*/true);
  VertexId a = f.graph.AddVertex({});
  VertexId b = f.graph.AddVertex({});
  (void)f.graph.AddEdge(b, a, "T").value();
  EXPECT_EQ(f.sink.bag.Count(Pair(a, b)), 1);
}

TEST(PathNodeTest, InitialStateFromExistingGraph) {
  PropertyGraph graph;
  VertexId v1 = graph.AddVertex({});
  VertexId v2 = graph.AddVertex({});
  VertexId v3 = graph.AddVertex({});
  (void)graph.AddEdge(v1, v2, "T").value();
  (void)graph.AddEdge(v2, v3, "T").value();

  PathInputNode node(PathSchema(false), &graph, {"T"}, false, 1, -1, false);
  SinkNode sink;
  node.AddOutput(&sink, 0);
  node.EmitInitialFromGraph();
  EXPECT_EQ(sink.bag.total_count(), 3);
  EXPECT_EQ(sink.bag.Count(Pair(v1, v3)), 1);
}

TEST(PathNodeTest, InsertInMiddleCreatesCrossPaths) {
  Fixture f(1, -1);
  VertexId v1 = f.graph.AddVertex({});
  VertexId v2 = f.graph.AddVertex({});
  VertexId v3 = f.graph.AddVertex({});
  VertexId v4 = f.graph.AddVertex({});
  (void)f.graph.AddEdge(v1, v2, "T").value();
  (void)f.graph.AddEdge(v3, v4, "T").value();
  EXPECT_EQ(f.sink.bag.total_count(), 2);

  // Bridge the two chains: all prefix x suffix combinations appear.
  (void)f.graph.AddEdge(v2, v3, "T").value();
  // New: v2->v3, v1->v3, v2->v4, v1->v4.
  EXPECT_EQ(f.sink.bag.total_count(), 6);
  EXPECT_EQ(f.sink.bag.Count(Pair(v1, v4)), 1);
}

}  // namespace
}  // namespace pgivm
