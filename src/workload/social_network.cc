#include "workload/social_network.h"

#include <algorithm>

#include "support/string_util.h"

namespace pgivm {

const std::vector<std::string>& SocialNetworkGenerator::Languages() {
  static const auto* langs = new std::vector<std::string>{
      "en", "de", "fr", "hu", "es", "nl", "pt", "it"};
  return *langs;
}

std::string SocialNetworkGenerator::RandomLanguage() {
  return Languages()[rng_.NextBelow(Languages().size())];
}

VertexId SocialNetworkGenerator::RandomMessage() {
  size_t total = posts_.size() + comments_.size();
  size_t i = rng_.NextBelow(total);
  return i < posts_.size() ? posts_[i] : comments_[i - posts_.size()];
}

VertexId SocialNetworkGenerator::AddReply(PropertyGraph* graph,
                                          VertexId parent) {
  VertexId comment = graph->AddVertex(
      {"Comm"},
      {{"lang", Value::String(RandomLanguage())},
       {"length", Value::Int(rng_.NextInRange(5, 500))}});
  comments_.push_back(comment);
  (void)graph->AddEdge(parent, comment, "REPLY").value();
  if (!persons_.empty()) {
    VertexId author = persons_[rng_.NextBelow(persons_.size())];
    (void)graph->AddEdge(comment, author, "HAS_CREATOR").value();
  }
  return comment;
}

void SocialNetworkGenerator::Populate(PropertyGraph* graph) {
  graph->BeginBatch();
  for (int64_t i = 0; i < config_.persons; ++i) {
    ValueList speaks;
    size_t language_count = 1 + rng_.NextBelow(3);
    for (size_t l = 0; l < language_count; ++l) {
      speaks.push_back(Value::String(RandomLanguage()));
    }
    std::sort(speaks.begin(), speaks.end());
    speaks.erase(std::unique(speaks.begin(), speaks.end()), speaks.end());
    persons_.push_back(graph->AddVertex(
        {"Person"},
        {{"name", Value::String(StrCat("person", i))},
         {"country",
          Value::Int(static_cast<int64_t>(rng_.NextBelow(20)))},
         {"speaks", Value::List(std::move(speaks))}}));
  }
  graph->CommitBatch();

  graph->BeginBatch();
  for (VertexId person : persons_) {
    for (int64_t k = 0; k < config_.knows_per_person; ++k) {
      VertexId other = persons_[rng_.NextBelow(persons_.size())];
      if (other == person) continue;
      (void)graph->AddEdge(person, other, "KNOWS").value();
    }
  }
  graph->CommitBatch();

  graph->BeginBatch();
  for (VertexId person : persons_) {
    for (int64_t p = 0; p < config_.posts_per_person; ++p) {
      VertexId post = graph->AddVertex(
          {"Post"},
          {{"lang", Value::String(RandomLanguage())},
           {"length", Value::Int(rng_.NextInRange(10, 2000))}});
      posts_.push_back(post);
      (void)graph->AddEdge(post, person, "HAS_CREATOR").value();
    }
  }
  graph->CommitBatch();

  graph->BeginBatch();
  for (VertexId post : posts_) {
    // Grow a reply tree below the post: each comment replies either to the
    // post or to an earlier comment in the same tree (bounded depth).
    std::vector<std::pair<VertexId, int64_t>> frontier{{post, 0}};
    for (int64_t c = 0; c < config_.comments_per_post; ++c) {
      auto [parent, depth] = frontier[rng_.NextBelow(frontier.size())];
      if (depth >= config_.max_reply_depth) continue;
      VertexId comment = AddReply(graph, parent);
      frontier.emplace_back(comment, depth + 1);
    }
  }
  graph->CommitBatch();

  graph->BeginBatch();
  for (VertexId person : persons_) {
    for (VertexId post : posts_) {
      if (rng_.NextBool(config_.like_probability /
                        static_cast<double>(config_.persons))) {
        (void)graph->AddEdge(person, post, "LIKES").value();
      }
    }
  }
  graph->CommitBatch();
}

void SocialNetworkGenerator::ApplyRandomUpdate(PropertyGraph* graph) {
  uint64_t pick = rng_.NextBelow(100);
  // Open a batch only when the caller has not: callers compose several
  // updates into one atomic delta by wrapping calls in BeginBatch/
  // CommitBatch themselves (batches do not nest).
  const bool own_batch = !graph->in_batch();
  if (own_batch) graph->BeginBatch();
  if (pick < 35) {
    // New reply comment under a random message.
    AddReply(graph, RandomMessage());
  } else if (pick < 50) {
    // Language flip on a random message (touches maintained predicates).
    VertexId message = RandomMessage();
    (void)graph->SetVertexProperty(message, "lang",
                                   Value::String(RandomLanguage()));
  } else if (pick < 65 && !persons_.empty()) {
    // New like.
    VertexId person = persons_[rng_.NextBelow(persons_.size())];
    (void)graph->AddEdge(person, RandomMessage(), "LIKES");
  } else if (pick < 75 && persons_.size() >= 2) {
    // New knows edge.
    VertexId a = persons_[rng_.NextBelow(persons_.size())];
    VertexId b = persons_[rng_.NextBelow(persons_.size())];
    if (a != b) (void)graph->AddEdge(a, b, "KNOWS");
  } else if (pick < 85 && !persons_.empty()) {
    // Fine-grained profile update: append or remove a spoken language.
    VertexId person = persons_[rng_.NextBelow(persons_.size())];
    std::string lang = RandomLanguage();
    Value speaks = graph->GetVertexProperty(person, "speaks");
    bool has = false;
    if (speaks.is_list()) {
      for (const Value& v : speaks.AsList()) {
        if (v.is_string() && v.AsString() == lang) has = true;
      }
    }
    if (has && speaks.AsList().size() > 1) {
      (void)graph->ListRemoveFirst(person, "speaks", Value::String(lang));
    } else if (!has) {
      (void)graph->ListAppend(person, "speaks", Value::String(lang));
    }
  } else if (!comments_.empty()) {
    // Delete a random leaf comment (no replies below it).
    for (int attempt = 0; attempt < 8; ++attempt) {
      size_t i = rng_.NextBelow(comments_.size());
      VertexId comment = comments_[i];
      if (!graph->HasVertex(comment)) continue;
      bool leaf = true;
      for (EdgeId e : graph->OutEdges(comment)) {
        if (graph->EdgeType(e) == "REPLY") leaf = false;
      }
      if (!leaf) continue;
      (void)graph->DetachRemoveVertex(comment);
      comments_.erase(comments_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  if (own_batch) graph->CommitBatch();
}

}  // namespace pgivm
