#ifndef PGIVM_ALGEBRA_PLAN_PRINTER_H_
#define PGIVM_ALGEBRA_PLAN_PRINTER_H_

#include <string>

#include "algebra/operator.h"

namespace pgivm {

/// Renders the operator tree as an indented multi-line string, one operator
/// per line with its output schema, children indented below:
///
///   Produce p AS p, t AS t (p:V, t:P)
///     Selection (#c.lang = #p.lang) (...)
///       ...
std::string PrintPlan(const OpPtr& root);

}  // namespace pgivm

#endif  // PGIVM_ALGEBRA_PLAN_PRINTER_H_
