#include "rete/aggregate_node.h"

#include <cassert>

#include "support/string_util.h"

namespace pgivm {

Result<AggregateSpec> AggregateSpec::Make(const ExprPtr& call,
                                          const Schema& input,
                                          const PropertyGraph* graph) {
  AggregateSpec spec;
  spec.distinct = call->distinct;
  if (call->name == "count" && call->star) {
    spec.kind = Kind::kCountStar;
    return spec;
  }
  if (call->children.size() != 1) {
    return Status::InvalidArgument(
        StrCat("aggregate ", call->name, "() expects exactly one argument"));
  }
  if (call->name == "count") {
    spec.kind = Kind::kCount;
  } else if (call->name == "sum") {
    spec.kind = Kind::kSum;
  } else if (call->name == "min") {
    spec.kind = Kind::kMin;
  } else if (call->name == "max") {
    spec.kind = Kind::kMax;
  } else if (call->name == "avg") {
    spec.kind = Kind::kAvg;
  } else if (call->name == "collect") {
    spec.kind = Kind::kCollect;
  } else {
    return Status::InvalidArgument(
        StrCat("unknown aggregate function '", call->name, "'"));
  }
  PGIVM_ASSIGN_OR_RETURN(BoundExpression arg,
                         BoundExpression::Bind(call->children[0], input,
                                               graph));
  spec.arg = std::move(arg);
  return spec;
}

void AggregateNode::AggState::Apply(const Value& v, int64_t multiplicity) {
  if (v.is_null()) return;  // Aggregates skip null arguments.
  non_null_count += multiplicity;
  auto [it, inserted] = values.emplace(v, 0);
  it->second += multiplicity;
  assert(it->second >= 0 && "aggregate multiset count went negative");
  if (it->second == 0) values.erase(it);
  if (v.is_int()) {
    int_sum += multiplicity * v.AsInt();
  } else if (v.is_double()) {
    double_sum += static_cast<double>(multiplicity) * v.AsDouble();
    double_count += multiplicity;
  }
}

Value AggregateNode::AggState::Render(const AggregateSpec& spec,
                                      int64_t group_rows) const {
  switch (spec.kind) {
    case AggregateSpec::Kind::kCountStar:
      return Value::Int(group_rows);
    case AggregateSpec::Kind::kCount:
      if (spec.distinct) {
        return Value::Int(static_cast<int64_t>(values.size()));
      }
      return Value::Int(non_null_count);
    case AggregateSpec::Kind::kSum: {
      if (spec.distinct) {
        // Recompute over the distinct values; DISTINCT sums are rare and
        // the multiset is already materialized.
        int64_t isum = 0;
        double dsum = 0.0;
        bool saw_double = false;
        for (const auto& [v, count] : values) {
          if (v.is_int()) {
            isum += v.AsInt();
          } else if (v.is_double()) {
            dsum += v.AsDouble();
            saw_double = true;
          }
        }
        return saw_double ? Value::Double(dsum + static_cast<double>(isum))
                          : Value::Int(isum);
      }
      if (double_count != 0) {
        return Value::Double(double_sum + static_cast<double>(int_sum));
      }
      return Value::Int(int_sum);
    }
    case AggregateSpec::Kind::kMin:
      return values.empty() ? Value::Null() : values.begin()->first;
    case AggregateSpec::Kind::kMax:
      return values.empty() ? Value::Null() : values.rbegin()->first;
    case AggregateSpec::Kind::kAvg: {
      int64_t n = spec.distinct ? static_cast<int64_t>(values.size())
                                : non_null_count;
      if (n == 0) return Value::Null();
      double total;
      if (spec.distinct) {
        total = 0.0;
        for (const auto& [v, count] : values) {
          if (v.is_numeric()) total += v.NumericAsDouble();
        }
      } else {
        total = double_sum + static_cast<double>(int_sum);
      }
      return Value::Double(total / static_cast<double>(n));
    }
    case AggregateSpec::Kind::kCollect: {
      // Deterministic order: sorted by value (Cypher leaves it unspecified).
      ValueList out;
      for (const auto& [v, count] : values) {
        int64_t copies = spec.distinct ? 1 : count;
        for (int64_t i = 0; i < copies; ++i) out.push_back(v);
      }
      return Value::List(std::move(out));
    }
  }
  return Value::Null();
}

AggregateNode::AggregateNode(Schema schema, std::vector<BoundExpression> keys,
                             std::vector<AggregateSpec> aggregates)
    : ReteNode(std::move(schema)),
      keys_(std::move(keys)),
      aggregates_(std::move(aggregates)) {}

Tuple AggregateNode::KeyOf(const Tuple& input) const {
  std::vector<Value> values;
  values.reserve(keys_.size());
  for (const BoundExpression& key : keys_) values.push_back(key.Eval(input));
  return Tuple(std::move(values));
}

Tuple AggregateNode::RenderRow(const Tuple& key,
                               const GroupState& group) const {
  std::vector<Value> values = key.values();
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    values.push_back(group.aggs[i].Render(aggregates_[i], group.total_rows));
  }
  return Tuple(std::move(values));
}

void AggregateNode::EmitInitial() {
  if (!keys_.empty()) return;
  GroupState& group = groups_.shard(Tuple())[Tuple()];
  group.aggs.resize(aggregates_.size());
  Emit({{RenderRow(Tuple(), group), 1}});
}

void AggregateNode::ProcessEntries(const Delta& delta, const uint32_t* map,
                                   uint32_t partition, Delta& out) {
  // Phase 1: capture each touched group's pre-batch row, apply all updates.
  std::unordered_map<Tuple, std::optional<Tuple>, TupleHash> old_rows;
  for (size_t i = 0; i < delta.size(); ++i) {
    if (map != nullptr && map[i] != partition) continue;
    const DeltaEntry& entry = delta[i];
    Tuple key = KeyOf(entry.tuple);
    auto& shard = groups_.shard(key);
    auto it = shard.find(key);
    if (old_rows.find(key) == old_rows.end()) {
      if (it != shard.end()) {
        old_rows.emplace(key, RenderRow(key, it->second));
      } else {
        old_rows.emplace(key, std::nullopt);
      }
    }
    if (it == shard.end()) {
      it = shard.emplace(key, GroupState{}).first;
      it->second.aggs.resize(aggregates_.size());
    }
    GroupState& group = it->second;
    group.total_rows += entry.multiplicity;
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      const AggregateSpec& spec = aggregates_[a];
      if (spec.kind == AggregateSpec::Kind::kCountStar) continue;
      group.aggs[a].Apply(spec.arg->Eval(entry.tuple), entry.multiplicity);
    }
  }

  // Phase 2: emit row transitions per touched group. A key-less aggregation
  // keeps its single row alive even at zero input rows. Distinct groups
  // never render equal rows (the key values prefix the row), so emission
  // order across groups is irrelevant — the scheduler's consolidation
  // restores canonical order regardless of partitioning.
  for (const auto& [key, old_row] : old_rows) {
    auto& shard = groups_.shard(key);
    auto it = shard.find(key);
    assert(it != shard.end());
    GroupState& group = it->second;
    assert(group.total_rows >= 0 && "group row count went negative");
    bool group_alive = group.total_rows > 0 || keys_.empty();
    std::optional<Tuple> new_row;
    if (group_alive) new_row = RenderRow(key, group);
    if (old_row.has_value() && new_row.has_value()) {
      if (!(*old_row == *new_row)) {
        out.push_back({*old_row, -1});
        out.push_back({*new_row, 1});
      }
    } else if (old_row.has_value()) {
      out.push_back({*old_row, -1});
    } else if (new_row.has_value()) {
      out.push_back({*new_row, 1});
    }
    if (group.total_rows == 0 && !keys_.empty()) shard.erase(it);
  }
}

void AggregateNode::OnDelta(int port, const Delta& delta) {
  (void)port;
  Delta out;
  ProcessEntries(delta, /*map=*/nullptr, /*partition=*/0, out);
  Emit(std::move(out));
}

void AggregateNode::MorselPartitionMap(int port, const Delta& delta,
                                       uint32_t partitions, size_t begin,
                                       size_t end, uint32_t* map) const {
  (void)port;
  for (size_t i = begin; i < end; ++i) {
    map[i] = MorselPartitionOfHash(KeyOf(delta[i].tuple).Hash(), partitions);
  }
}

void AggregateNode::OnDeltaMorsel(int port, const Delta& delta,
                                  const uint32_t* map, uint32_t partition,
                                  uint32_t partitions, Delta& out) {
  (void)port;
  (void)partitions;
  ProcessEntries(delta, map, partition, out);
}

bool AggregateNode::ReplayOutput(Delta& out) const {
  groups_.ForEach([&](const Tuple& key, const GroupState& group) {
    if (group.total_rows <= 0 && !keys_.empty()) return;
    out.push_back({RenderRow(key, group), 1});
  });
  // A key-less aggregation that was never attached (EmitInitial pending)
  // has no group yet; its current output is still the empty-input row.
  if (keys_.empty() && groups_.size() == 0) {
    GroupState empty;
    empty.aggs.resize(aggregates_.size());
    out.push_back({RenderRow(Tuple(), empty), 1});
  }
  return true;
}

size_t AggregateNode::ApproxMemoryBytes() const {
  size_t bytes = 0;
  groups_.ForEach([&](const Tuple& key, const GroupState& group) {
    bytes += sizeof(Tuple) + key.size() * sizeof(Value) + sizeof(GroupState);
    for (const AggState& agg : group.aggs) {
      bytes += agg.values.size() * (sizeof(Value) + sizeof(int64_t) + 48);
    }
  });
  return bytes;
}

}  // namespace pgivm
