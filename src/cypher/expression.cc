#include "cypher/expression.h"

#include <sstream>

#include "support/string_util.h"

namespace pgivm {

namespace {

bool IsAggregateName(const std::string& name) {
  return name == "count" || name == "sum" || name == "min" ||
         name == "max" || name == "avg" || name == "collect";
}

}  // namespace

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kXor:
      return "XOR";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kIn:
      return "IN";
    case BinaryOp::kStartsWith:
      return "STARTS WITH";
    case BinaryOp::kEndsWith:
      return "ENDS WITH";
    case BinaryOp::kContains:
      return "CONTAINS";
    case BinaryOp::kSubscript:
      return "[]";
  }
  return "?";
}

const char* UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot:
      return "NOT";
    case UnaryOp::kMinus:
      return "-";
    case UnaryOp::kIsNull:
      return "IS NULL";
    case UnaryOp::kIsNotNull:
      return "IS NOT NULL";
  }
  return "?";
}

std::string Expression::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case ExprKind::kLiteral:
      os << literal.ToString();
      break;
    case ExprKind::kVariable:
      os << name;
      break;
    case ExprKind::kColumnRef:
      os << "$" << column << (name.empty() ? "" : StrCat("(", name, ")"));
      break;
    case ExprKind::kProperty:
      os << children[0]->ToString() << "." << name;
      break;
    case ExprKind::kUnary:
      if (unary_op == UnaryOp::kIsNull || unary_op == UnaryOp::kIsNotNull) {
        os << children[0]->ToString() << " " << UnaryOpName(unary_op);
      } else {
        os << UnaryOpName(unary_op) << "(" << children[0]->ToString() << ")";
      }
      break;
    case ExprKind::kBinary:
      if (binary_op == BinaryOp::kSubscript) {
        os << children[0]->ToString() << "[" << children[1]->ToString() << "]";
      } else {
        os << "(" << children[0]->ToString() << " " << BinaryOpName(binary_op)
           << " " << children[1]->ToString() << ")";
      }
      break;
    case ExprKind::kFunctionCall: {
      os << name << "(";
      if (star) os << "*";
      if (distinct) os << "DISTINCT ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) os << ", ";
        os << children[i]->ToString();
      }
      os << ")";
      break;
    }
    case ExprKind::kListLiteral: {
      os << "[";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) os << ", ";
        os << children[i]->ToString();
      }
      os << "]";
      break;
    }
    case ExprKind::kMapLiteral: {
      os << "{";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) os << ", ";
        os << map_keys[i] << ": " << children[i]->ToString();
      }
      os << "}";
      break;
    }
    case ExprKind::kCase: {
      os << "CASE";
      size_t i = 0;
      if (star) os << " " << children[i++]->ToString();
      size_t pairs_end = children.size() - (distinct ? 1 : 0);
      while (i + 2 <= pairs_end) {
        os << " WHEN " << children[i]->ToString() << " THEN "
           << children[i + 1]->ToString();
        i += 2;
      }
      if (distinct) os << " ELSE " << children.back()->ToString();
      os << " END";
      break;
    }
    case ExprKind::kPatternPredicate:
      os << "exists(#pattern" << column << ")";
      break;
    case ExprKind::kParameter:
      os << "$" << name;
      break;
    case ExprKind::kComprehension: {
      const std::string& mode = map_keys[0];
      os << (mode == "list" ? "[" : mode + "(");
      os << name << " IN " << children[0]->ToString() << " WHERE "
         << children[1]->ToString();
      if (mode == "list") {
        os << " | " << children[2]->ToString() << "]";
      } else {
        os << ")";
      }
      break;
    }
  }
  return os.str();
}

bool Expression::Equal(const Expression& a, const Expression& b) {
  if (a.kind != b.kind || a.name != b.name || a.column != b.column ||
      a.star != b.star || a.distinct != b.distinct ||
      a.unary_op != b.unary_op || a.binary_op != b.binary_op ||
      a.map_keys != b.map_keys || a.children.size() != b.children.size()) {
    return false;
  }
  if (a.kind == ExprKind::kLiteral && a.literal != b.literal) return false;
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!Equal(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

size_t Expression::Hash() const {
  size_t seed = static_cast<size_t>(kind) * 0x9e3779b9u;
  HashCombine(seed, std::hash<std::string>{}(name));
  HashCombine(seed, static_cast<size_t>(column) + 7);
  HashCombine(seed, static_cast<size_t>(unary_op));
  HashCombine(seed, static_cast<size_t>(binary_op));
  HashCombine(seed, star ? 11u : 13u);
  HashCombine(seed, distinct ? 17u : 19u);
  if (kind == ExprKind::kLiteral) HashCombine(seed, literal.Hash());
  for (const std::string& k : map_keys) {
    HashCombine(seed, std::hash<std::string>{}(k));
  }
  for (const ExprPtr& c : children) HashCombine(seed, c->Hash());
  return seed;
}

bool Expression::IsAggregateCall() const {
  return kind == ExprKind::kFunctionCall && IsAggregateName(name);
}

bool Expression::ContainsAggregate() const {
  if (IsAggregateCall()) return true;
  for (const ExprPtr& c : children) {
    if (c->ContainsAggregate()) return true;
  }
  return false;
}

void Expression::CollectVariables(std::vector<std::string>& out) const {
  if (kind == ExprKind::kVariable) {
    for (const std::string& existing : out) {
      if (existing == name) return;
    }
    out.push_back(name);
    return;
  }
  if (kind == ExprKind::kComprehension) {
    // The local variable is bound here, not free: collect the body's
    // variables separately and drop the local one.
    children[0]->CollectVariables(out);
    std::vector<std::string> inner;
    children[1]->CollectVariables(inner);
    children[2]->CollectVariables(inner);
    for (const std::string& var : inner) {
      if (var == name) continue;
      bool seen = false;
      for (const std::string& existing : out) {
        if (existing == var) seen = true;
      }
      if (!seen) out.push_back(var);
    }
    return;
  }
  for (const ExprPtr& c : children) c->CollectVariables(out);
}

namespace {

std::shared_ptr<Expression> NewExpr(ExprKind kind) {
  auto e = std::make_shared<Expression>();
  e->kind = kind;
  return e;
}

}  // namespace

ExprPtr MakeLiteral(Value v) {
  auto e = NewExpr(ExprKind::kLiteral);
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeVariable(std::string name) {
  auto e = NewExpr(ExprKind::kVariable);
  e->name = std::move(name);
  return e;
}

ExprPtr MakeColumnRef(int column, std::string debug_name) {
  auto e = NewExpr(ExprKind::kColumnRef);
  e->column = column;
  e->name = std::move(debug_name);
  return e;
}

ExprPtr MakeProperty(ExprPtr subject, std::string key) {
  auto e = NewExpr(ExprKind::kProperty);
  e->children.push_back(std::move(subject));
  e->name = std::move(key);
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = NewExpr(ExprKind::kUnary);
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = NewExpr(ExprKind::kBinary);
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeFunctionCall(std::string lowercase_name, std::vector<ExprPtr> args,
                         bool distinct) {
  auto e = NewExpr(ExprKind::kFunctionCall);
  e->name = std::move(lowercase_name);
  e->children = std::move(args);
  e->distinct = distinct;
  return e;
}

ExprPtr MakeCountStar() {
  auto e = NewExpr(ExprKind::kFunctionCall);
  e->name = "count";
  e->star = true;
  return e;
}

ExprPtr MakeListLiteral(std::vector<ExprPtr> elements) {
  auto e = NewExpr(ExprKind::kListLiteral);
  e->children = std::move(elements);
  return e;
}

ExprPtr MakeMapLiteral(std::vector<std::string> keys,
                       std::vector<ExprPtr> values) {
  auto e = NewExpr(ExprKind::kMapLiteral);
  e->map_keys = std::move(keys);
  e->children = std::move(values);
  return e;
}

ExprPtr MakeCase(ExprPtr operand_or_null,
                 std::vector<std::pair<ExprPtr, ExprPtr>> when_then,
                 ExprPtr else_or_null) {
  auto e = NewExpr(ExprKind::kCase);
  e->star = operand_or_null != nullptr;      // operand present
  e->distinct = else_or_null != nullptr;     // else present
  if (operand_or_null) e->children.push_back(std::move(operand_or_null));
  for (auto& [when, then] : when_then) {
    e->children.push_back(std::move(when));
    e->children.push_back(std::move(then));
  }
  if (else_or_null) e->children.push_back(std::move(else_or_null));
  return e;
}

ExprPtr MakePatternPredicate(int index) {
  auto e = NewExpr(ExprKind::kPatternPredicate);
  e->column = index;
  return e;
}

ExprPtr MakeComprehension(std::string mode, std::string variable,
                          ExprPtr list, ExprPtr where, ExprPtr map) {
  auto e = NewExpr(ExprKind::kComprehension);
  e->name = std::move(variable);
  e->map_keys.push_back(std::move(mode));
  if (!where) where = MakeLiteral(Value::Bool(true));
  if (!map) map = MakeVariable(e->name);
  e->children.push_back(std::move(list));
  e->children.push_back(std::move(where));
  e->children.push_back(std::move(map));
  return e;
}

ExprPtr MakeParameter(std::string name) {
  auto e = NewExpr(ExprKind::kParameter);
  e->name = std::move(name);
  return e;
}

Result<ExprPtr> SubstituteParameters(const ExprPtr& expr,
                                     const ValueMap& parameters) {
  Status failure = Status::Ok();
  ExprPtr out = RewriteExpression(expr, [&](const ExprPtr& e) -> ExprPtr {
    if (e->kind != ExprKind::kParameter) return e;
    auto it = parameters.find(e->name);
    if (it == parameters.end()) {
      failure = Status::InvalidArgument(
          StrCat("missing value for parameter $", e->name));
      return e;
    }
    return MakeLiteral(it->second);
  });
  if (!failure.ok()) return failure;
  return out;
}

ExprPtr RewriteExpression(const ExprPtr& expr,
                          const std::function<ExprPtr(const ExprPtr&)>& fn) {
  bool changed = false;
  std::vector<ExprPtr> new_children;
  new_children.reserve(expr->children.size());
  for (const ExprPtr& c : expr->children) {
    ExprPtr rewritten = RewriteExpression(c, fn);
    changed |= rewritten != c;
    new_children.push_back(std::move(rewritten));
  }
  ExprPtr current = expr;
  if (changed) {
    auto copy = std::make_shared<Expression>(*expr);
    copy->children = std::move(new_children);
    current = copy;
  }
  return fn(current);
}

ExprPtr ConjoinAll(std::vector<ExprPtr> terms) {
  if (terms.empty()) return MakeLiteral(Value::Bool(true));
  ExprPtr out = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) {
    out = MakeBinary(BinaryOp::kAnd, out, terms[i]);
  }
  return out;
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred) {
  std::vector<ExprPtr> out;
  if (pred->kind == ExprKind::kBinary && pred->binary_op == BinaryOp::kAnd) {
    for (const ExprPtr& side : pred->children) {
      std::vector<ExprPtr> sub = SplitConjuncts(side);
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  out.push_back(pred);
  return out;
}

}  // namespace pgivm
