#ifndef PGIVM_ENGINE_QUERY_ENGINE_H_
#define PGIVM_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/passes/pass_manager.h"
#include "catalog/view_catalog.h"
#include "engine/view.h"
#include "graph/property_graph.h"
#include "rete/network_builder.h"
#include "support/status.h"

namespace pgivm {

/// Engine-wide configuration: plan lowering and runtime flags. Defaults are
/// the paper's full pipeline; the ablation benchmarks flip individual flags.
struct EngineOptions {
  PlanOptions plan;
  NetworkOptions network;
  CatalogOptions catalog;

  /// Capacity of the serving ingest queue (see QueryEngine::SubmitAsync):
  /// mutations queued beyond this block their submitter until the ingest
  /// thread catches up — bounded-queue backpressure instead of unbounded
  /// buffering. Values below 1 are clamped to 1.
  size_t ingest_queue_depth = 256;
};

/// Front door of the library: compiles openCypher queries and keeps their
/// results incrementally maintained against one PropertyGraph.
///
/// Example:
///   PropertyGraph graph;
///   QueryEngine engine(&graph);
///   auto view = engine.Register(
///       "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) "
///       "WHERE p.lang = c.lang RETURN p, t");
///   ...mutate graph; (*view)->Snapshot() is always current...
///
/// The engine compiles queries and delegates view lifecycle to its
/// ViewCatalog: with operator-state sharing enabled (the default) all
/// registered views live inside one shared Rete network whose structurally
/// identical sub-plans are instantiated once; with sharing disabled each
/// View owns a private network (the seed behaviour). Views keep the catalog
/// alive, so they outlive the engine safely.
class QueryEngine {
 public:
  // Constructor and destructor are out of line: the ingest session member
  // is an incomplete type here.
  explicit QueryEngine(PropertyGraph* graph, EngineOptions options = {});

  /// Stops a running ingest session.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Compiles `cypher` through the paper's pipeline (parse → GRA → NRA →
  /// FRA → Rete) and attaches the resulting view to the graph, priming it
  /// with the current graph content. `$name` parameters are substituted
  /// from `parameters` at compile time (a view is specific to one binding).
  Result<std::shared_ptr<View>> Register(std::string_view cypher,
                                         const ValueMap& parameters = {});

  /// One-shot, non-incremental evaluation (the baseline strategy): compiles
  /// the same plan and interprets it against the current graph. Returns
  /// sorted rows with SKIP/LIMIT applied.
  Result<std::vector<Tuple>> EvaluateOnce(
      std::string_view cypher, const ValueMap& parameters = {}) const;

  /// Compiles without instantiating a network; returns the FRA plan (for
  /// plan inspection, tests and the baseline benchmarks).
  Result<OpPtr> Compile(std::string_view cypher,
                        const ValueMap& parameters = {}) const;

  /// Human-readable compilation report: the GRA tree (paper step 1) and the
  /// lowered FRA plan (steps 2–3) side by side.
  Result<std::string> Explain(std::string_view cypher,
                              const ValueMap& parameters = {}) const;

  /// One graph mutation submitted through the ingest queue; runs on the
  /// ingest thread, inside a BeginBatch/CommitBatch bracket, against the
  /// engine's graph.
  using GraphMutation = std::function<void(PropertyGraph&)>;

  /// Starts the serving ingest thread: mutations submitted via
  /// SubmitAsync — from any number of threads — are coalesced into
  /// batches (everything queued when the thread comes around) and each
  /// batch is applied under one BeginBatch/CommitBatch, i.e. one graph
  /// delta, one propagation drain, one committed epoch. While ingest is
  /// running the ingest thread *is* the writer thread: the caller must
  /// not mutate the graph or register/deregister views directly until
  /// StopIngest() returns. Readers (View::Pin/Snapshot/size) are
  /// unaffected and free on any thread. No-op if already running.
  void StartIngest();

  /// Closes the queue, applies whatever is still queued, and joins the
  /// ingest thread. After it returns the calling thread is the writer
  /// thread again. No-op if not running. Called from the destructor.
  void StopIngest();

  bool ingest_running() const { return ingest_ != nullptr; }

  /// Queues `mutation` for the ingest thread, blocking while the queue is
  /// at EngineOptions::ingest_queue_depth (backpressure). Safe from any
  /// number of threads *within* an ingest session; submitters must be
  /// quiesced (joined or otherwise done) before StopIngest() or engine
  /// destruction tears the session down. Returns false — without running
  /// the mutation — when ingest is not running or is shutting down.
  bool SubmitAsync(GraphMutation mutation);

  /// Lifetime counts across ingest sessions: mutations applied, and the
  /// BeginBatch/CommitBatch batches they were coalesced into.
  int64_t ingest_mutations() const;
  int64_t ingest_batches() const;

  PropertyGraph* graph() const { return graph_; }
  const EngineOptions& options() const { return options_; }

  /// The view catalog: registered-view bookkeeping, node-sharing registry
  /// statistics and per-view memory attribution.
  ViewCatalog& catalog() { return *catalog_; }
  const ViewCatalog& catalog() const { return *catalog_; }

 private:
  /// Live ingest state (queue + thread + counters); null while not
  /// serving. Defined in query_engine.cc.
  struct Ingest;

  PropertyGraph* graph_;
  EngineOptions options_;
  std::shared_ptr<ViewCatalog> catalog_;
  std::unique_ptr<Ingest> ingest_;
  /// Counter totals of finished ingest sessions (accumulated at Stop).
  int64_t ingest_mutations_done_ = 0;
  int64_t ingest_batches_done_ = 0;
};

}  // namespace pgivm

#endif  // PGIVM_ENGINE_QUERY_ENGINE_H_
