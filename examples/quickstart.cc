// Quickstart: build the paper's running example graph, register the
// running-example query as an incrementally maintained view, and watch it
// update as the graph changes.
//
//   MATCH t = (p:Post)-[:REPLY*]->(c:Comm)
//   WHERE p.lang = c.lang RETURN p, t

#include <iostream>

#include "engine/query_engine.h"

namespace {

void PrintView(const pgivm::View& view, const std::string& heading) {
  std::cout << heading << "\n";
  std::cout << "  columns:";
  for (const std::string& name : view.column_names()) {
    std::cout << " " << name;
  }
  std::cout << "\n";
  for (const pgivm::Tuple& row : view.Snapshot()) {
    std::cout << "  " << row.ToString() << "\n";
  }
  if (view.Snapshot().empty()) std::cout << "  (empty)\n";
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace pgivm;

  // 1. Build the example graph from Section 2 of the paper.
  PropertyGraph graph;
  VertexId post = graph.AddVertex({"Post"}, {{"lang", Value::String("en")}});
  VertexId comm2 = graph.AddVertex({"Comm"}, {{"lang", Value::String("en")}});
  VertexId comm3 = graph.AddVertex({"Comm"}, {{"lang", Value::String("en")}});
  (void)graph.AddEdge(post, comm2, "REPLY").value();
  (void)graph.AddEdge(comm2, comm3, "REPLY").value();

  // 2. Register the query: it is parsed, compiled through
  //    GRA -> NRA -> FRA, and instantiated as a Rete network.
  QueryEngine engine(&graph);
  auto view_or = engine.Register(
      "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) "
      "WHERE p.lang = c.lang RETURN p, t");
  if (!view_or.ok()) {
    std::cerr << "registration failed: " << view_or.status() << "\n";
    return 1;
  }
  std::shared_ptr<View> view = view_or.value();

  PrintView(*view, "Initial result (the paper's table: two rows):");

  // 3. Updates propagate automatically.
  std::cout << "Comment 3 switches to German...\n";
  (void)graph.SetVertexProperty(comm3, "lang", Value::String("de"));
  PrintView(*view, "After the language flip (long path retracted):");

  std::cout << "A new English reply appears under comment 2...\n";
  VertexId comm4 = graph.AddVertex({"Comm"}, {{"lang", Value::String("en")}});
  (void)graph.AddEdge(comm2, comm4, "REPLY").value();
  PrintView(*view, "After the new reply:");

  // 4. Inspect the compiled plan and the live network.
  std::cout << "FRA plan schema: " << view->fra_plan()->schema.ToString()
            << "\n";
  std::cout << "Rete network (" << view->network().node_count()
            << " nodes):\n"
            << view->NetworkDebugString();
  return 0;
}
