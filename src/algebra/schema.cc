#include "algebra/schema.h"

#include <sstream>

namespace pgivm {

int Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> Schema::CommonNames(const Schema& a,
                                             const Schema& b) {
  std::vector<std::string> out;
  for (const Attribute& attr : a.attrs_) {
    if (b.Contains(attr.name)) out.push_back(attr.name);
  }
  return out;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) os << ", ";
    os << attrs_[i].name;
    switch (attrs_[i].kind) {
      case Attribute::Kind::kVertex:
        os << ":V";
        break;
      case Attribute::Kind::kEdge:
        os << ":E";
        break;
      case Attribute::Kind::kPath:
        os << ":P";
        break;
      case Attribute::Kind::kValue:
        break;
    }
  }
  os << ")";
  return os.str();
}

}  // namespace pgivm
