#include "graph/property_graph.h"

#include <gtest/gtest.h>

namespace pgivm {
namespace {

/// Captures emitted deltas for inspection.
class RecordingListener : public GraphListener {
 public:
  void OnGraphDelta(const GraphDelta& delta) override {
    deltas.push_back(delta);
  }
  std::vector<GraphDelta> deltas;
};

TEST(PropertyGraphTest, AddAndReadVertex) {
  PropertyGraph graph;
  VertexId v = graph.AddVertex({"Post", "Message"},
                               {{"lang", Value::String("en")}});
  EXPECT_TRUE(graph.HasVertex(v));
  EXPECT_EQ(graph.vertex_count(), 1u);
  EXPECT_TRUE(graph.VertexHasLabel(v, "Post"));
  EXPECT_TRUE(graph.VertexHasLabel(v, "Message"));
  EXPECT_FALSE(graph.VertexHasLabel(v, "Comm"));
  EXPECT_EQ(graph.GetVertexProperty(v, "lang"), Value::String("en"));
  EXPECT_TRUE(graph.GetVertexProperty(v, "missing").is_null());
}

TEST(PropertyGraphTest, LabelsAreSortedAndDeduplicated) {
  PropertyGraph graph;
  VertexId v = graph.AddVertex({"B", "A", "B"});
  EXPECT_EQ(graph.VertexLabels(v), (std::vector<std::string>{"A", "B"}));
}

TEST(PropertyGraphTest, NullPropertiesDroppedOnAdd) {
  PropertyGraph graph;
  VertexId v = graph.AddVertex({}, {{"x", Value::Null()}});
  EXPECT_TRUE(graph.VertexProperties(v).empty());
}

TEST(PropertyGraphTest, AddEdgeRequiresEndpoints) {
  PropertyGraph graph;
  VertexId v = graph.AddVertex({});
  EXPECT_FALSE(graph.AddEdge(v, 999, "T").ok());
  EXPECT_FALSE(graph.AddEdge(999, v, "T").ok());
  Result<EdgeId> e = graph.AddEdge(v, v, "T");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(graph.EdgeSource(*e), v);
  EXPECT_EQ(graph.EdgeTarget(*e), v);
  EXPECT_EQ(graph.EdgeType(*e), "T");
}

TEST(PropertyGraphTest, AdjacencyListsTrackEdges) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({});
  VertexId b = graph.AddVertex({});
  EdgeId e = graph.AddEdge(a, b, "T").value();
  EXPECT_EQ(graph.OutEdges(a), std::vector<EdgeId>{e});
  EXPECT_EQ(graph.InEdges(b), std::vector<EdgeId>{e});
  EXPECT_TRUE(graph.OutEdges(b).empty());
  ASSERT_TRUE(graph.RemoveEdge(e).ok());
  EXPECT_TRUE(graph.OutEdges(a).empty());
  EXPECT_TRUE(graph.InEdges(b).empty());
  EXPECT_FALSE(graph.HasEdge(e));
}

TEST(PropertyGraphTest, RemoveVertexRefusesWithIncidentEdges) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({});
  VertexId b = graph.AddVertex({});
  (void)graph.AddEdge(a, b, "T").value();
  EXPECT_EQ(graph.RemoveVertex(a).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(graph.DetachRemoveVertex(a).ok());
  EXPECT_FALSE(graph.HasVertex(a));
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(PropertyGraphTest, IdsAreNeverReused) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({});
  ASSERT_TRUE(graph.RemoveVertex(a).ok());
  VertexId b = graph.AddVertex({});
  EXPECT_NE(a, b);
}

TEST(PropertyGraphTest, LabelIndexFollowsLabelChanges) {
  PropertyGraph graph;
  VertexId v = graph.AddVertex({"A"});
  EXPECT_EQ(graph.VerticesWithLabel("A").size(), 1u);
  ASSERT_TRUE(graph.AddVertexLabel(v, "B").ok());
  EXPECT_EQ(graph.VerticesWithLabel("B").size(), 1u);
  ASSERT_TRUE(graph.RemoveVertexLabel(v, "A").ok());
  EXPECT_TRUE(graph.VerticesWithLabel("A").empty());
}

TEST(PropertyGraphTest, SetPropertyEmitsOldAndNewValue) {
  PropertyGraph graph;
  RecordingListener listener;
  VertexId v = graph.AddVertex({});
  graph.AddListener(&listener);
  ASSERT_TRUE(graph.SetVertexProperty(v, "x", Value::Int(1)).ok());
  ASSERT_TRUE(graph.SetVertexProperty(v, "x", Value::Int(2)).ok());
  ASSERT_TRUE(graph.SetVertexProperty(v, "x", Value::Null()).ok());  // erase

  ASSERT_EQ(listener.deltas.size(), 3u);
  const GraphChange& first = listener.deltas[0].changes[0];
  EXPECT_TRUE(first.old_value.is_null());
  EXPECT_EQ(first.new_value, Value::Int(1));
  const GraphChange& second = listener.deltas[1].changes[0];
  EXPECT_EQ(second.old_value, Value::Int(1));
  EXPECT_EQ(second.new_value, Value::Int(2));
  const GraphChange& third = listener.deltas[2].changes[0];
  EXPECT_EQ(third.old_value, Value::Int(2));
  EXPECT_TRUE(third.new_value.is_null());
  EXPECT_TRUE(graph.GetVertexProperty(v, "x").is_null());
}

TEST(PropertyGraphTest, NoOpWritesEmitNothing) {
  PropertyGraph graph;
  VertexId v = graph.AddVertex({}, {{"x", Value::Int(1)}});
  RecordingListener listener;
  graph.AddListener(&listener);
  ASSERT_TRUE(graph.SetVertexProperty(v, "x", Value::Int(1)).ok());
  ASSERT_TRUE(graph.AddVertexLabel(v, "L").ok());
  ASSERT_TRUE(graph.AddVertexLabel(v, "L").ok());  // duplicate: no-op
  ASSERT_TRUE(graph.RemoveVertexLabel(v, "Missing").ok());
  EXPECT_EQ(listener.deltas.size(), 1u);  // only the first label add
}

TEST(PropertyGraphTest, BatchEmitsOneDelta) {
  PropertyGraph graph;
  RecordingListener listener;
  graph.AddListener(&listener);
  graph.BeginBatch();
  VertexId a = graph.AddVertex({"A"});
  VertexId b = graph.AddVertex({"B"});
  (void)graph.AddEdge(a, b, "T").value();
  graph.CommitBatch();
  ASSERT_EQ(listener.deltas.size(), 1u);
  EXPECT_EQ(listener.deltas[0].size(), 3u);
}

TEST(PropertyGraphTest, DetachRemoveEmitsEdgeRemovalsFirst) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({});
  VertexId b = graph.AddVertex({});
  (void)graph.AddEdge(a, b, "T").value();
  (void)graph.AddEdge(b, a, "T").value();
  RecordingListener listener;
  graph.AddListener(&listener);
  graph.BeginBatch();
  ASSERT_TRUE(graph.DetachRemoveVertex(a).ok());
  graph.CommitBatch();
  const GraphDelta& delta = listener.deltas[0];
  ASSERT_EQ(delta.size(), 3u);
  EXPECT_EQ(delta.changes[0].kind, GraphChange::Kind::kRemoveEdge);
  EXPECT_EQ(delta.changes[1].kind, GraphChange::Kind::kRemoveEdge);
  EXPECT_EQ(delta.changes[2].kind, GraphChange::Kind::kRemoveVertex);
}

TEST(PropertyGraphTest, ListAppendAndRemove) {
  PropertyGraph graph;
  VertexId v = graph.AddVertex({});
  ASSERT_TRUE(graph.ListAppend(v, "tags", Value::Int(1)).ok());
  ASSERT_TRUE(graph.ListAppend(v, "tags", Value::Int(2)).ok());
  ASSERT_TRUE(graph.ListAppend(v, "tags", Value::Int(1)).ok());
  Value tags = graph.GetVertexProperty(v, "tags");
  ASSERT_TRUE(tags.is_list());
  EXPECT_EQ(tags.AsList().size(), 3u);

  ASSERT_TRUE(graph.ListRemoveFirst(v, "tags", Value::Int(1)).ok());
  tags = graph.GetVertexProperty(v, "tags");
  EXPECT_EQ(tags.AsList().size(), 2u);
  EXPECT_EQ(tags.AsList()[0], Value::Int(2));  // First occurrence removed.

  EXPECT_EQ(graph.ListRemoveFirst(v, "tags", Value::Int(9)).code(),
            StatusCode::kNotFound);
}

TEST(PropertyGraphTest, ListAppendRejectsNonListProperty) {
  PropertyGraph graph;
  VertexId v = graph.AddVertex({}, {{"x", Value::Int(1)}});
  EXPECT_EQ(graph.ListAppend(v, "x", Value::Int(2)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PropertyGraphTest, MapPutAndErase) {
  PropertyGraph graph;
  VertexId v = graph.AddVertex({});
  ASSERT_TRUE(graph.MapPut(v, "attrs", "color", Value::String("red")).ok());
  ASSERT_TRUE(graph.MapPut(v, "attrs", "size", Value::Int(3)).ok());
  Value attrs = graph.GetVertexProperty(v, "attrs");
  ASSERT_TRUE(attrs.is_map());
  EXPECT_EQ(attrs.AsMap().size(), 2u);
  ASSERT_TRUE(graph.MapErase(v, "attrs", "color").ok());
  EXPECT_EQ(graph.GetVertexProperty(v, "attrs").AsMap().size(), 1u);
  ASSERT_TRUE(graph.MapErase(v, "attrs", "missing").ok());  // no-op
}

TEST(PropertyGraphTest, EdgePropertiesWork) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({});
  VertexId b = graph.AddVertex({});
  EdgeId e = graph.AddEdge(a, b, "T", {{"w", Value::Int(5)}}).value();
  EXPECT_EQ(graph.GetEdgeProperty(e, "w"), Value::Int(5));
  ASSERT_TRUE(graph.SetEdgeProperty(e, "w", Value::Int(6)).ok());
  EXPECT_EQ(graph.GetEdgeProperty(e, "w"), Value::Int(6));
}

TEST(PropertyGraphTest, TypeIndex) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({});
  VertexId b = graph.AddVertex({});
  (void)graph.AddEdge(a, b, "X").value();
  EdgeId e2 = graph.AddEdge(a, b, "Y").value();
  EXPECT_EQ(graph.EdgesWithType("X").size(), 1u);
  EXPECT_EQ(graph.EdgesWithType("Y").size(), 1u);
  ASSERT_TRUE(graph.RemoveEdge(e2).ok());
  EXPECT_TRUE(graph.EdgesWithType("Y").empty());
}

TEST(PropertyGraphTest, RemovedListenerStopsReceiving) {
  PropertyGraph graph;
  RecordingListener listener;
  graph.AddListener(&listener);
  graph.AddVertex({});
  graph.RemoveListener(&listener);
  graph.AddVertex({});
  EXPECT_EQ(listener.deltas.size(), 1u);
}

TEST(PropertyGraphTest, ApproxMemoryGrowsWithContent) {
  PropertyGraph graph;
  size_t empty = graph.ApproxMemoryBytes();
  for (int i = 0; i < 100; ++i) {
    graph.AddVertex({"Label"}, {{"k", Value::String("some value here")}});
  }
  EXPECT_GT(graph.ApproxMemoryBytes(), empty);
}

}  // namespace
}  // namespace pgivm
