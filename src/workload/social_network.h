#ifndef PGIVM_WORKLOAD_SOCIAL_NETWORK_H_
#define PGIVM_WORKLOAD_SOCIAL_NETWORK_H_

#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "support/rng.h"

namespace pgivm {

/// Configuration of the LDBC-SNB-flavoured social network generator.
///
/// The LDBC Social Network Benchmark (paper ref [17]) is not redistributable
/// here; this generator synthesizes a graph with the same schema flavour —
/// Persons who know each other, Posts and transitive Comment reply trees,
/// likes, languages, and collection-valued profile properties — and an
/// update stream with SNB-like operation mix. That preserves what the
/// experiments measure: propagation cost under realistic graph shapes.
struct SocialNetworkConfig {
  int64_t persons = 50;
  int64_t posts_per_person = 2;
  /// Expected number of (transitive) comments below each post.
  int64_t comments_per_post = 4;
  int64_t max_reply_depth = 4;
  int64_t knows_per_person = 3;
  /// Fraction of persons whose KNOWS degree is multiplied by
  /// `hub_degree_multiplier` — the heavy tail of the SNB friendship
  /// distribution (a few celebrities, many ordinary profiles).
  double hub_fraction = 0.05;
  int64_t hub_degree_multiplier = 4;
  /// Expected LIKES edges per message (fractional part drawn per post).
  double like_probability = 0.3;
  uint64_t seed = 42;
  /// Informational: the scale factor this config was derived from by
  /// AtScale(), 0 when hand-built. The SNB driver carries it into reports.
  double scale_factor = 0.0;

  /// SF-style sizing, LDBC-flavoured: SF 1.0 ≈ 1000 persons, with degree,
  /// reply-tree fan-out and reply depth growing logarithmically in SF (the
  /// SNB datagen's densification shape, scaled down to in-memory tests).
  /// Deterministic: equal (sf, seed) pairs produce identical configs.
  static SocialNetworkConfig AtScale(double sf, uint64_t seed = 42);
};

/// Builds and evolves the social graph.
///
/// Vertices: (:Person {name, country, speaks: [lang...]}),
///           (:Post {lang, length}), (:Comm {lang, length}).
/// Edges:    (:Person)-[:KNOWS]->(:Person),
///           (message)-[:REPLY]->(:Comm)        — parent to reply,
///           (:Person)-[:LIKES]->(message),
///           (message)-[:HAS_CREATOR]->(:Person).
///
/// Determinism contract (the SNB driver's validation mode depends on it):
/// Populate and every ApplyUpdate/ApplyRandomUpdate sequence are pure
/// functions of (config, call order, op seeds) — no iteration over
/// unordered containers, no wall-clock, no thread-dependent state — so a
/// fixed seed replays to a bit-identical graph (see GraphFingerprint in
/// graph/graph_stats.h) on every run and under every engine thread setting.
class SocialNetworkGenerator {
 public:
  explicit SocialNetworkGenerator(const SocialNetworkConfig& config)
      : config_(config), rng_(config.seed) {}

  /// Populates `graph` (one batch per entity family). Call once.
  void Populate(PropertyGraph* graph);

  /// Applies one random update drawn from the SNB-like operation mix:
  /// new reply comment, new like, new knows edge, language flip, profile
  /// language append/removal, or leaf-comment deletion. Emits one delta
  /// per call, unless the caller is composing a larger batch (then the
  /// changes join it). Consumes the generator's own RNG stream.
  void ApplyRandomUpdate(PropertyGraph* graph);

  /// Same operation mix, but drawn from a throwaway RNG seeded with
  /// `op_seed` instead of the generator's stream — the SNB driver's
  /// replayable update: the op's content is a pure function of
  /// (op_seed, generator state), so a recorded operation stream applied in
  /// the same order reproduces the same graph, while a timed run may apply
  /// the very same ops in whatever order its clients submitted them.
  void ApplyUpdate(PropertyGraph* graph, uint64_t op_seed);

  const std::vector<VertexId>& persons() const { return persons_; }
  const std::vector<VertexId>& posts() const { return posts_; }
  const std::vector<VertexId>& comments() const { return comments_; }

  /// Languages used by the generator.
  static const std::vector<std::string>& Languages();

 private:
  std::string RandomLanguage(Rng& rng);
  VertexId RandomMessage(Rng& rng);

  /// Adds one reply comment under `parent` and returns it.
  VertexId AddReply(Rng& rng, PropertyGraph* graph, VertexId parent);

  /// The shared operation-mix body behind ApplyRandomUpdate/ApplyUpdate.
  void ApplyUpdateWith(Rng& rng, PropertyGraph* graph);

  SocialNetworkConfig config_;
  Rng rng_;
  std::vector<VertexId> persons_;
  std::vector<VertexId> posts_;
  std::vector<VertexId> comments_;
};

}  // namespace pgivm

#endif  // PGIVM_WORKLOAD_SOCIAL_NETWORK_H_
