#ifndef PGIVM_RETE_DELTA_H_
#define PGIVM_RETE_DELTA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rete/tuple.h"

namespace pgivm {

/// One signed bag update: `multiplicity` copies of `tuple` are inserted
/// (positive) or deleted (negative). Never zero.
struct DeltaEntry {
  Tuple tuple;
  int64_t multiplicity;
};

/// An ordered batch of bag updates flowing along a Rete edge. Entries may
/// partially cancel; Normalize() coalesces them.
using Delta = std::vector<DeltaEntry>;

/// Coalesces entries with equal tuples and drops zero-multiplicity entries.
/// The result is in canonical order (tuple hash, ties lexicographic), not
/// arrival order — a normalized delta carries each tuple once, so order is
/// semantically irrelevant.
Delta Normalize(const Delta& delta);

/// Default `small_cutoff` for Consolidate: payloads of 1–2 entries — by far
/// the most common case under single-change graph deltas — skip the
/// sort-based path entirely. NetworkOptions::consolidation_cutoff overrides
/// this per network.
inline constexpr size_t kDefaultConsolidationCutoff = 2;

/// In-place Normalize: merges entries by tuple and drops zero-multiplicity
/// residue, without allocating. The batched propagation scheduler applies
/// this to every queued delta between waves, so inverse pairs (+t/−t)
/// cancel before they are ever delivered downstream.
///
/// Payloads of `small_cutoff` entries or fewer take a pairwise-merge fast
/// path instead of the sort machinery; the result is bit-identical to the
/// sort path (same canonical order), so the cutoff is purely a performance
/// knob — tiny waves don't amortize a sort.
void Consolidate(Delta& delta,
                 size_t small_cutoff = kDefaultConsolidationCutoff);

/// True if `delta` is already in Normalize's canonical form (strictly
/// ascending canonical order, no zero multiplicities) — lets consumers on
/// the hot path skip a redundant re-sort of scheduler-consolidated deltas.
bool IsConsolidated(const Delta& delta);

std::string DeltaToString(const Delta& delta);

/// Counted bag of tuples: the memory unit of stateful Rete nodes.
/// Counts are always positive; applying a change that would drive a count
/// negative is a propagation bug (asserted).
class Bag {
 public:
  using Map = std::unordered_map<Tuple, int64_t, TupleHash>;

  /// Adds `multiplicity` (may be negative) to `tuple`'s count. Returns
  /// {old_count, new_count}; erases the entry when it reaches zero.
  std::pair<int64_t, int64_t> Apply(const Tuple& tuple, int64_t multiplicity);

  int64_t Count(const Tuple& tuple) const;

  /// Number of distinct tuples.
  size_t distinct_size() const { return counts_.size(); }

  /// Sum of all multiplicities.
  int64_t total_count() const { return total_; }

  const Map& counts() const { return counts_; }

  /// Drops all contents (used when a network is reset for re-attachment).
  void Clear() {
    counts_.clear();
    total_ = 0;
  }

  size_t ApproxMemoryBytes() const;

 private:
  Map counts_;
  int64_t total_ = 0;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_DELTA_H_
