// Serving a live view to concurrent readers while writes stream in.
//
// One engine, one graph. The writer side runs through the ingest queue
// (StartIngest + SubmitAsync): mutations submitted from this thread are
// coalesced into batches and applied by the ingest thread — one batch,
// one propagation drain, one committed epoch. Four reader threads poll
// the views the whole time via the epoch-pinned reader API (Pin /
// Snapshot / size), which never blocks propagation and never observes a
// mid-drain state. CI runs this under TSAN as an end-to-end race check.
//
// The whole session runs with profiling on: on exit it prints the unified
// metrics snapshot (per-drain histograms, ingest latency, per-node
// profiles) and writes serve_concurrent_trace.json — load it in
// chrome://tracing or https://ui.perfetto.dev to see the drains, waves
// and ingest batches on a timeline. CI validates the file parses as JSON.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "graph/property_graph.h"

using namespace pgivm;

int main() {
  PropertyGraph graph;
  EngineOptions options;
  options.ingest_queue_depth = 64;
  options.network.profiling = true;  // observe the whole session
  QueryEngine engine(&graph, options);

  auto replies = engine.Register(
      "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c");
  auto counts = engine.Register(
      "MATCH (p:Post)-[:REPLY]->(c:Comm) "
      "RETURN p AS post, count(*) AS replies");
  if (!replies.ok() || !counts.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 (!replies.ok() ? replies : counts).status()
                     .ToString()
                     .c_str());
    return 1;
  }
  std::vector<std::shared_ptr<View>> views = {*replies, *counts};

  engine.StartIngest();

  // Readers: poll every view until the writer is done. Each Pin() is an
  // immutable committed epoch — rows and size always agree.
  std::atomic<bool> done{false};
  std::atomic<int64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&views, &done, &reads] {
      int64_t mine = 0;
      while (!done.load(std::memory_order_acquire)) {
        for (const std::shared_ptr<View>& view : views) {
          std::shared_ptr<const ViewSnapshot> snap = view->Pin();
          if (static_cast<int64_t>(snap->rows().size()) !=
              snap->total_rows()) {
            std::fprintf(stderr, "torn snapshot at epoch %llu\n",
                         static_cast<unsigned long long>(snap->epoch()));
            std::abort();
          }
          ++mine;
        }
      }
      reads.fetch_add(mine, std::memory_order_relaxed);
    });
  }

  // Writer: stream a growing reply graph through the ingest queue. Each
  // post is one mutation; each reply another — the ingest thread batches
  // whatever has piled up.
  constexpr int kPosts = 200;
  constexpr int kRepliesPerPost = 5;
  for (int p = 0; p < kPosts; ++p) {
    engine.SubmitAsync([](PropertyGraph& g) {
      VertexId post = g.AddVertex({"Post"});
      for (int r = 0; r < kRepliesPerPost; ++r) {
        VertexId comment = g.AddVertex({"Comm"});
        (void)g.AddEdge(post, comment, "REPLY");
      }
    });
  }
  engine.StopIngest();  // drains the queue, joins the ingest thread
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  const int64_t expected = int64_t{kPosts} * kRepliesPerPost;
  if (views[0]->size() != expected) {
    std::fprintf(stderr, "expected %lld reply rows, got %lld\n",
                 static_cast<long long>(expected),
                 static_cast<long long>(views[0]->size()));
    return 1;
  }
  std::printf(
      "served %lld snapshot reads across 4 readers while ingesting %lld "
      "mutations in %lld batches; final view: %lld rows\n",
      static_cast<long long>(reads.load()),
      static_cast<long long>(engine.ingest_mutations()),
      static_cast<long long>(engine.ingest_batches()),
      static_cast<long long>(views[0]->size()));

  // The observability surface: one coherent snapshot of everything the
  // session measured, then the Chrome/Perfetto trace of its drains and
  // ingest batches.
  std::printf("\n-- metrics snapshot --\n%s",
              engine.MetricsSnapshot().ToString().c_str());
  Status trace = engine.DumpTrace("serve_concurrent_trace.json");
  if (!trace.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n",
                 trace.ToString().c_str());
    return 1;
  }
  std::printf("trace written to serve_concurrent_trace.json\n");
  return 0;
}
