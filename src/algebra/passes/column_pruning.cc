#include <unordered_set>

#include "algebra/passes/pass_manager.h"

namespace pgivm {

namespace {

void CollectReferenced(const OpPtr& op,
                       std::unordered_set<std::string>& referenced) {
  auto collect = [&referenced](const ExprPtr& expr) {
    if (!expr) return;
    std::vector<std::string> vars;
    expr->CollectVariables(vars);
    referenced.insert(vars.begin(), vars.end());
  };
  collect(op->predicate);
  collect(op->unnest_expr);
  for (const auto& [name, expr] : op->projections) collect(expr);
  for (const auto& [name, expr] : op->group_by) collect(expr);
  for (const auto& [name, expr] : op->aggregates) collect(expr);
  for (const OpPtr& child : op->children) CollectReferenced(child, referenced);
}

void Prune(const OpPtr& op,
           const std::unordered_set<std::string>& referenced) {
  if (op->kind == OpKind::kGetVertices || op->kind == OpKind::kGetEdges) {
    auto& extracts = op->extracts;
    extracts.erase(
        std::remove_if(extracts.begin(), extracts.end(),
                       [&referenced](const PropertyExtract& extract) {
                         return referenced.count(extract.column_name) == 0;
                       }),
        extracts.end());
  }
  for (const OpPtr& child : op->children) Prune(child, referenced);
}

/// Collects natural-join key names of every binary operator (they never
/// appear in expressions, so the referenced-name scan misses them).
void CollectJoinKeys(const OpPtr& op,
                     std::unordered_set<std::string>& keys) {
  if (op->kind == OpKind::kJoin || op->kind == OpKind::kLeftOuterJoin ||
      op->kind == OpKind::kAntiJoin || op->kind == OpKind::kSemiJoin) {
    for (const std::string& name : Schema::CommonNames(
             op->children[0]->schema, op->children[1]->schema)) {
      keys.insert(name);
    }
  }
  for (const OpPtr& child : op->children) CollectJoinKeys(child, keys);
}

/// Collects variables referenced by every expression except `skip_expr`.
void CollectReferencedExcept(const OpPtr& op, const Expression* skip_expr,
                             std::unordered_set<std::string>& referenced) {
  auto collect = [&referenced, skip_expr](const ExprPtr& expr) {
    if (!expr || expr.get() == skip_expr) return;
    std::vector<std::string> vars;
    expr->CollectVariables(vars);
    referenced.insert(vars.begin(), vars.end());
  };
  collect(op->predicate);
  collect(op->unnest_expr);
  for (const auto& [name, expr] : op->projections) collect(expr);
  for (const auto& [name, expr] : op->group_by) collect(expr);
  for (const auto& [name, expr] : op->aggregates) collect(expr);
  for (const OpPtr& child : op->children) {
    CollectReferencedExcept(child, skip_expr, referenced);
  }
}

/// Finds the element variable whose leaf extract produces column `name`
/// somewhere under `op` (empty if `name` is not an extracted column).
std::string ExtractElementVar(const OpPtr& op, const std::string& name) {
  if (op->kind == OpKind::kGetVertices || op->kind == OpKind::kGetEdges) {
    for (const PropertyExtract& extract : op->extracts) {
      if (extract.column_name == name) return extract.element_var;
    }
  }
  for (const OpPtr& child : op->children) {
    std::string found = ExtractElementVar(child, name);
    if (!found.empty()) return found;
  }
  return "";
}

void NarrowRec(const OpPtr& root, const OpPtr& op, bool unsafe_above,
               const std::unordered_set<std::string>& join_keys) {
  bool child_unsafe = unsafe_above || op->kind == OpKind::kDistinct ||
                      op->kind == OpKind::kAggregate;
  for (const OpPtr& child : op->children) {
    NarrowRec(root, child, child_unsafe, join_keys);
  }
  if (op->kind != OpKind::kUnnest) return;

  std::unordered_set<std::string> referenced;
  CollectReferencedExcept(root, op->unnest_expr.get(), referenced);

  std::vector<std::string> expr_vars;
  op->unnest_expr->CollectVariables(expr_vars);
  for (const std::string& var : expr_vars) {
    if (referenced.count(var) > 0 || join_keys.count(var) > 0) continue;
    const Schema& child_schema = op->children[0]->schema;
    if (!child_schema.Contains(var)) continue;
    if (unsafe_above) {
      // Under DISTINCT/aggregation, dropping a column may merge rows, which
      // changes those operators' results — unless the column is
      // functionally dependent on a column that stays: extracted property
      // columns are determined by their element variable. Require that.
      std::string element = ExtractElementVar(op->children[0], var);
      if (element.empty() || element == var ||
          !child_schema.Contains(element)) {
        continue;
      }
      bool element_dropped = false;
      for (const std::string& dropped : op->unnest_drop_columns) {
        if (dropped == element) element_dropped = true;
      }
      if (element_dropped) continue;
    }
    op->unnest_drop_columns.push_back(var);
  }
}

}  // namespace

void NarrowUnnestOutputs(const OpPtr& root) {
  std::unordered_set<std::string> join_keys;
  CollectJoinKeys(root, join_keys);
  NarrowRec(root, root, /*unsafe_above=*/false, join_keys);
}

void PruneUnusedExtracts(const OpPtr& root) {
  // A name dropped here is dropped from *every* leaf that extracts it, so
  // natural-join key sets stay symmetric; extracts are functionally
  // dependent columns, so bag multiplicities are unaffected.
  std::unordered_set<std::string> referenced;
  CollectReferenced(root, referenced);
  Prune(root, referenced);
}

}  // namespace pgivm
