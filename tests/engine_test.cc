#include "engine/query_engine.h"

#include <gtest/gtest.h>

namespace pgivm {
namespace {

std::shared_ptr<View> MustRegister(QueryEngine& engine,
                                   const std::string& query) {
  Result<std::shared_ptr<View>> view = engine.Register(query);
  EXPECT_TRUE(view.ok()) << query << " -> " << view.status();
  return view.ok() ? view.value() : nullptr;
}

TEST(EngineTest, SimpleLabelScanMaintained) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(engine, "MATCH (n:Person) RETURN n");
  EXPECT_EQ(view->size(), 0);

  VertexId a = graph.AddVertex({"Person"});
  graph.AddVertex({"Robot"});
  EXPECT_EQ(view->size(), 1);
  EXPECT_EQ(view->Snapshot()[0].at(0), Value::Vertex(a));

  ASSERT_TRUE(graph.RemoveVertex(a).ok());
  EXPECT_EQ(view->size(), 0);
}

TEST(EngineTest, LabelChangesEnterAndLeaveView) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(engine, "MATCH (n:Hot) RETURN n");
  VertexId v = graph.AddVertex({"Item"});
  EXPECT_EQ(view->size(), 0);
  ASSERT_TRUE(graph.AddVertexLabel(v, "Hot").ok());
  EXPECT_EQ(view->size(), 1);
  ASSERT_TRUE(graph.RemoveVertexLabel(v, "Hot").ok());
  EXPECT_EQ(view->size(), 0);
}

TEST(EngineTest, PropertyPredicateMaintained) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view =
      MustRegister(engine, "MATCH (s:Segment) WHERE s.length <= 0 RETURN s");
  VertexId good = graph.AddVertex({"Segment"}, {{"length", Value::Int(5)}});
  VertexId bad = graph.AddVertex({"Segment"}, {{"length", Value::Int(-1)}});
  EXPECT_EQ(view->size(), 1);
  EXPECT_EQ(view->Snapshot()[0].at(0), Value::Vertex(bad));

  // Repair and break.
  ASSERT_TRUE(graph.SetVertexProperty(bad, "length", Value::Int(3)).ok());
  EXPECT_EQ(view->size(), 0);
  ASSERT_TRUE(graph.SetVertexProperty(good, "length", Value::Int(0)).ok());
  EXPECT_EQ(view->size(), 1);
}

TEST(EngineTest, EdgePatternJoin) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(
      engine, "MATCH (a:P)-[k:KNOWS]->(b:P) RETURN a, b");
  VertexId x = graph.AddVertex({"P"});
  VertexId y = graph.AddVertex({"P"});
  VertexId z = graph.AddVertex({"Q"});
  EdgeId e = graph.AddEdge(x, y, "KNOWS").value();
  (void)graph.AddEdge(x, z, "KNOWS").value();  // Wrong target label.
  (void)graph.AddEdge(x, y, "LIKES").value();  // Wrong type.
  EXPECT_EQ(view->size(), 1);

  ASSERT_TRUE(graph.RemoveEdge(e).ok());
  EXPECT_EQ(view->size(), 0);
}

TEST(EngineTest, UndirectedPattern) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(engine, "MATCH (a:P)-[:REL]-(b:P) RETURN a, b");
  VertexId x = graph.AddVertex({"P"});
  VertexId y = graph.AddVertex({"P"});
  (void)graph.AddEdge(x, y, "REL").value();
  EXPECT_EQ(view->size(), 2);  // Both orientations.
}

TEST(EngineTest, EdgePropertyFilter) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(
      engine, "MATCH (a)-[r:RATED]->(b) WHERE r.stars >= 4 RETURN a, b");
  VertexId u = graph.AddVertex({});
  VertexId m = graph.AddVertex({});
  EdgeId e = graph.AddEdge(u, m, "RATED", {{"stars", Value::Int(3)}}).value();
  EXPECT_EQ(view->size(), 0);
  ASSERT_TRUE(graph.SetEdgeProperty(e, "stars", Value::Int(5)).ok());
  EXPECT_EQ(view->size(), 1);
  ASSERT_TRUE(graph.SetEdgeProperty(e, "stars", Value::Int(2)).ok());
  EXPECT_EQ(view->size(), 0);
}

TEST(EngineTest, CrossPatternPropertyJoin) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(
      engine, "MATCH (a:L), (b:R) WHERE a.k = b.k RETURN a, b");
  VertexId a1 = graph.AddVertex({"L"}, {{"k", Value::Int(1)}});
  VertexId b1 = graph.AddVertex({"R"}, {{"k", Value::Int(1)}});
  VertexId b2 = graph.AddVertex({"R"}, {{"k", Value::Int(2)}});
  EXPECT_EQ(view->size(), 1);

  // Property updates re-join.
  ASSERT_TRUE(graph.SetVertexProperty(b2, "k", Value::Int(1)).ok());
  EXPECT_EQ(view->size(), 2);
  ASSERT_TRUE(graph.SetVertexProperty(a1, "k", Value::Int(9)).ok());
  EXPECT_EQ(view->size(), 0);
  (void)b1;
}

TEST(EngineTest, DistinctCollapsesDuplicates) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(
      engine, "MATCH (p:Person)-[:LIKES]->(m) RETURN DISTINCT p");
  VertexId p = graph.AddVertex({"Person"});
  VertexId m1 = graph.AddVertex({});
  VertexId m2 = graph.AddVertex({});
  EdgeId e1 = graph.AddEdge(p, m1, "LIKES").value();
  (void)graph.AddEdge(p, m2, "LIKES").value();
  EXPECT_EQ(view->size(), 1);
  ASSERT_TRUE(graph.RemoveEdge(e1).ok());
  EXPECT_EQ(view->size(), 1);  // Still liked by m2.
}

TEST(EngineTest, AggregationMaintained) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(
      engine,
      "MATCH (p:Person)-[:LIKES]->(m:Msg) RETURN m AS msg, count(*) AS c");
  VertexId p1 = graph.AddVertex({"Person"});
  VertexId p2 = graph.AddVertex({"Person"});
  VertexId m = graph.AddVertex({"Msg"});
  (void)graph.AddEdge(p1, m, "LIKES").value();
  EXPECT_EQ(view->Snapshot()[0].at(1), Value::Int(1));
  EdgeId e2 = graph.AddEdge(p2, m, "LIKES").value();
  EXPECT_EQ(view->Snapshot()[0].at(1), Value::Int(2));
  ASSERT_TRUE(graph.RemoveEdge(e2).ok());
  EXPECT_EQ(view->Snapshot()[0].at(1), Value::Int(1));
}

TEST(EngineTest, KeylessCountOverEmptyGraph) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(engine, "MATCH (n:X) RETURN count(*) AS c");
  ASSERT_EQ(view->size(), 1);
  EXPECT_EQ(view->Snapshot()[0].at(0), Value::Int(0));
  graph.AddVertex({"X"});
  EXPECT_EQ(view->Snapshot()[0].at(0), Value::Int(1));
}

TEST(EngineTest, OptionalMatchMaintained) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(
      engine,
      "MATCH (sw:Switch) OPTIONAL MATCH (sw)-[m:monitoredBy]->(:Sensor) "
      "WITH sw, m WHERE m IS NULL RETURN sw");
  VertexId sw = graph.AddVertex({"Switch"});
  VertexId sensor = graph.AddVertex({"Sensor"});
  EXPECT_EQ(view->size(), 1);  // Unmonitored: a violation row.

  EdgeId e = graph.AddEdge(sw, sensor, "monitoredBy").value();
  EXPECT_EQ(view->size(), 0);  // Monitored now.

  ASSERT_TRUE(graph.RemoveEdge(e).ok());
  EXPECT_EQ(view->size(), 1);  // Violation returns.
}

TEST(EngineTest, UnwindCollectionProperty) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(
      engine, "MATCH (p:Person) UNWIND p.speaks AS lang "
              "RETURN lang, count(*) AS c");
  VertexId p1 = graph.AddVertex(
      {"Person"},
      {{"speaks", Value::List({Value::String("en"), Value::String("de")})}});
  graph.AddVertex(
      {"Person"}, {{"speaks", Value::List({Value::String("en")})}});
  {
    std::vector<Tuple> rows = view->Snapshot();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].at(0), Value::String("de"));
    EXPECT_EQ(rows[0].at(1), Value::Int(1));
    EXPECT_EQ(rows[1].at(0), Value::String("en"));
    EXPECT_EQ(rows[1].at(1), Value::Int(2));
  }

  // Fine-grained collection update flows through.
  ASSERT_TRUE(graph.ListAppend(p1, "speaks", Value::String("fr")).ok());
  {
    std::vector<Tuple> rows = view->Snapshot();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[1].at(0), Value::String("en"));
  }
  ASSERT_TRUE(
      graph.ListRemoveFirst(p1, "speaks", Value::String("en")).ok());
  {
    std::vector<Tuple> rows = view->Snapshot();
    ASSERT_EQ(rows.size(), 3u);
    // en count dropped to 1.
    EXPECT_EQ(rows[2].at(0), Value::String("fr"));
  }
}

TEST(EngineTest, ViewChangeListenerReceivesDeltas) {
  class Recorder : public ViewChangeListener {
   public:
    void OnViewDelta(const Delta& delta) override {
      for (const DeltaEntry& entry : delta) {
        log.push_back(entry.multiplicity);
      }
    }
    std::vector<int64_t> log;
  };

  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(engine, "MATCH (n:A) RETURN n");
  Recorder recorder;
  view->AddListener(&recorder);

  VertexId v = graph.AddVertex({"A"});
  ASSERT_TRUE(graph.RemoveVertex(v).ok());
  EXPECT_EQ(recorder.log, (std::vector<int64_t>{1, -1}));
}

TEST(EngineTest, SkipLimitAppliedOnSnapshots) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view =
      MustRegister(engine, "MATCH (n:A) RETURN n SKIP 1 LIMIT 2");
  for (int i = 0; i < 5; ++i) graph.AddVertex({"A"});
  EXPECT_EQ(view->size(), 5);  // Bag holds everything...
  EXPECT_EQ(view->Snapshot().size(), 2u);  // ...snapshot applies SKIP/LIMIT.
}

TEST(EngineTest, DestroyedViewStopsMaintaining) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  {
    auto view = MustRegister(engine, "MATCH (n:A) RETURN n");
    graph.AddVertex({"A"});
    EXPECT_EQ(view->size(), 1);
  }
  // View destroyed: further updates must not crash.
  graph.AddVertex({"A"});
}

TEST(EngineTest, MultipleIndependentViews) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto v1 = MustRegister(engine, "MATCH (n:A) RETURN n");
  auto v2 = MustRegister(engine, "MATCH (n:B) RETURN n");
  auto v3 = MustRegister(engine, "MATCH (a:A)-[:T]->(b:B) RETURN a, b");
  VertexId a = graph.AddVertex({"A"});
  VertexId b = graph.AddVertex({"B"});
  (void)graph.AddEdge(a, b, "T").value();
  EXPECT_EQ(v1->size(), 1);
  EXPECT_EQ(v2->size(), 1);
  EXPECT_EQ(v3->size(), 1);
}

TEST(EngineTest, SelfLoopPattern) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(engine, "MATCH (a:A)-[:T]->(a) RETURN a");
  VertexId a = graph.AddVertex({"A"});
  VertexId b = graph.AddVertex({"A"});
  (void)graph.AddEdge(a, a, "T").value();   // Self loop: matches.
  (void)graph.AddEdge(a, b, "T").value();   // Not a loop: no match.
  EXPECT_EQ(view->size(), 1);
  EXPECT_EQ(view->Snapshot()[0].at(0), Value::Vertex(a));
}

TEST(EngineTest, EdgeUniquenessInOneMatch) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  // Two edges of one MATCH must be distinct edges.
  auto view = MustRegister(
      engine, "MATCH (a)-[r1:T]->(b)-[r2:T]->(c) RETURN a, b, c");
  VertexId x = graph.AddVertex({});
  VertexId y = graph.AddVertex({});
  (void)graph.AddEdge(x, y, "T").value();
  (void)graph.AddEdge(y, x, "T").value();
  // x->y->x and y->x->y both use two distinct edges: 2 rows. A single edge
  // cannot be used twice (no r1 == r2 rows).
  EXPECT_EQ(view->size(), 2);
}

TEST(EngineTest, TypeAlternativesMatchEither) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(engine, "MATCH (a)-[r:X|Y]->(b) RETURN r");
  VertexId u = graph.AddVertex({});
  VertexId w = graph.AddVertex({});
  (void)graph.AddEdge(u, w, "X").value();
  (void)graph.AddEdge(u, w, "Y").value();
  (void)graph.AddEdge(u, w, "Z").value();
  EXPECT_EQ(view->size(), 2);
}

TEST(EngineTest, CompileErrorsSurface) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  EXPECT_FALSE(engine.Register("MATCH (n RETURN n").ok());
  EXPECT_FALSE(engine.Register("MATCH (n:A) RETURN m").ok());
  EXPECT_FALSE(engine.Register("MATCH (n:A) RETURN n ORDER BY n.x").ok());
}

TEST(EngineTest, WithAggregationPipeline) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(
      engine,
      "MATCH (p:Person)-[:LIKES]->(m:Msg) "
      "WITH p, count(*) AS likes WHERE likes >= 2 RETURN p, likes");
  VertexId p = graph.AddVertex({"Person"});
  VertexId m1 = graph.AddVertex({"Msg"});
  VertexId m2 = graph.AddVertex({"Msg"});
  (void)graph.AddEdge(p, m1, "LIKES").value();
  EXPECT_EQ(view->size(), 0);
  (void)graph.AddEdge(p, m2, "LIKES").value();
  EXPECT_EQ(view->size(), 1);
  EXPECT_EQ(view->Snapshot()[0].at(1), Value::Int(2));
}

TEST(EngineTest, NetworkDiagnosticsAvailable) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = MustRegister(engine, "MATCH (a:A)-[:T]->(b:B) RETURN a, b");
  graph.AddVertex({"A"});
  EXPECT_GT(view->network().node_count(), 0u);
  EXPECT_FALSE(view->NetworkDebugString().empty());
  EXPECT_GT(view->ApproxMemoryBytes(), 0u);
}

}  // namespace
}  // namespace pgivm
