// Tests of incremental priming (memory replay on live-catalog
// registration): replay-vs-graph accounting, registration cost independent
// of catalog size, register-mid-churn parity, re-sharing nodes freed by a
// prior drop, listener silence during replay, and the engine-wide thread
// pool shared across networks.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "scoped_threads_env.h"
#include "workload/social_network.h"

namespace pgivm {
namespace {

const char* kLikesQuery = "MATCH (u:Person)-[:LIKES]->(m:Post) RETURN u, m";
const char* kLikesAlias = "MATCH (x:Person)-[:LIKES]->(y:Post) RETURN x, y";

TEST(IncrementalPriming, FullySharedRegistrationReplaysWithoutGraphReads) {
  SocialNetworkConfig config;
  config.persons = 40;
  SocialNetworkGenerator generator(config);
  PropertyGraph graph;
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  auto first = engine.Register(kLikesQuery);
  ASSERT_TRUE(first.ok()) << first.status();
  ReteNetwork::PrimeStats boot = engine.catalog().last_prime_stats();
  EXPECT_EQ(boot.replayed_entries, 0);
  EXPECT_GT(boot.graph_primed_entries, 0);
  EXPECT_GT(boot.primed_sources, 0u);

  for (int i = 0; i < 30; ++i) generator.ApplyRandomUpdate(&graph);

  // An alias-renamed duplicate hits the registry for the whole plan: the
  // only fresh node is the production, primed by one replay edge, and the
  // graph is never read.
  auto second = engine.Register(kLikesAlias);
  ASSERT_TRUE(second.ok()) << second.status();
  ReteNetwork::PrimeStats replay = engine.catalog().last_prime_stats();
  EXPECT_EQ(replay.graph_primed_entries, 0);
  EXPECT_EQ(replay.primed_sources, 0u);
  EXPECT_EQ(replay.fresh_nodes, 1u);  // just the production
  EXPECT_EQ(replay.replay_edges, 1u);
  // Replay work is the new view's result size — every row once.
  EXPECT_EQ(replay.replayed_entries, (*second)->size());
  EXPECT_EQ((*second)->prime_stats().replayed_entries,
            replay.replayed_entries);

  // And the replay-primed view is correct, now and after further churn.
  auto expected = engine.EvaluateOnce(kLikesQuery);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ((*second)->Snapshot().size(), expected.value().size());
  for (int i = 0; i < 10; ++i) generator.ApplyRandomUpdate(&graph);
  expected = engine.EvaluateOnce(kLikesQuery);
  ASSERT_TRUE(expected.ok());
  std::vector<Tuple> rows = (*second)->Snapshot();
  ASSERT_EQ(rows.size(), expected.value().size());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(Tuple::Compare(rows[i], expected.value()[i]), 0) << "row " << i;
  }
}

// The acceptance criterion: registering a fully sharing view into a live
// catalog costs the same whether the catalog holds 2 views or 10 — replay
// work tracks the *new view's* result size, never the catalog's.
TEST(IncrementalPriming, RegistrationCostIsIndependentOfCatalogSize) {
  SocialNetworkConfig config;
  config.persons = 40;
  SocialNetworkGenerator generator_small(config);
  PropertyGraph small_graph;
  generator_small.Populate(&small_graph);
  SocialNetworkGenerator generator_large(config);
  PropertyGraph large_graph;
  generator_large.Populate(&large_graph);

  std::vector<std::string> extra = {
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.country = b.country "
      "RETURN a, b",
      "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
      "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS posts",
      "MATCH (c:Comm)-[:HAS_CREATOR]->(u:Person) RETURN u, count(*) AS m",
      "MATCH (m:Comm) RETURN m.lang AS lang, count(*) AS n",
      "MATCH (m:Post) WHERE m.length > 1000 RETURN m",
      "MATCH (u:Person)-[:LIKES]->(m:Post)-[:REPLY]->(c:Comm) RETURN u, c",
      "MATCH (a:Person)-[:KNOWS]-(b:Person) RETURN a, count(*) AS degree",
  };

  QueryEngine small_engine(&small_graph);
  QueryEngine large_engine(&large_graph);
  std::vector<std::shared_ptr<View>> keep;
  keep.push_back(*small_engine.Register(kLikesQuery));
  keep.push_back(*large_engine.Register(kLikesQuery));
  for (const std::string& query : extra) {
    keep.push_back(*large_engine.Register(query));
  }
  ASSERT_EQ(large_engine.catalog().view_count(), extra.size() + 1);

  const ReteNetwork* small_net = small_engine.catalog().shared_network();
  const ReteNetwork* large_net = large_engine.catalog().shared_network();
  int64_t small_emitted_before = small_net->TotalEmittedEntries();
  int64_t large_emitted_before = large_net->TotalEmittedEntries();

  keep.push_back(*small_engine.Register(kLikesAlias));
  keep.push_back(*large_engine.Register(kLikesAlias));
  ReteNetwork::PrimeStats small_stats =
      small_engine.catalog().last_prime_stats();
  ReteNetwork::PrimeStats large_stats =
      large_engine.catalog().last_prime_stats();

  // Identical registration work despite the 9-view difference in catalog
  // size: same replay volume, zero graph reads in both.
  EXPECT_EQ(small_stats.replayed_entries, large_stats.replayed_entries);
  EXPECT_EQ(small_stats.graph_primed_entries, 0);
  EXPECT_EQ(large_stats.graph_primed_entries, 0);
  EXPECT_EQ(small_stats.fresh_nodes, large_stats.fresh_nodes);

  // Delivery stats agree: the only node that emitted during registration
  // is the new production (replay bypasses reused nodes' Emit paths), so
  // the network-wide emission delta is the new view's result size — in a
  // 10-view catalog just as in a 2-view one.
  int64_t small_emitted =
      small_net->TotalEmittedEntries() - small_emitted_before;
  int64_t large_emitted =
      large_net->TotalEmittedEntries() - large_emitted_before;
  EXPECT_EQ(small_emitted, large_emitted);
  EXPECT_LE(large_emitted, keep.back()->size());
}

// Registering between update bursts must splice the new consumers into a
// warm, mid-churn network without corrupting it — under either propagation
// strategy, with and without incremental priming (bit-identical results).
class MidChurnTest : public ::testing::TestWithParam<
                         std::pair<PropagationStrategy, bool>> {};

TEST_P(MidChurnTest, RegisterBetweenBurstsStaysConsistent) {
  auto [strategy, incremental] = GetParam();
  EngineOptions options;
  options.network.propagation = strategy;
  options.catalog.incremental_priming = incremental;

  SocialNetworkConfig config;
  config.persons = 30;
  SocialNetworkGenerator generator(config);
  PropertyGraph graph;
  generator.Populate(&graph);

  QueryEngine engine(&graph, options);
  std::vector<std::string> queries = {
      kLikesQuery,
      "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c",
      kLikesAlias,
      "MATCH (u:Person)-[:LIKES]->(m:Post) RETURN m AS msg, count(*) AS l",
      "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) "
      "RETURN a, b, c",
      "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS posts",
  };
  std::vector<std::shared_ptr<View>> views;
  for (size_t next = 0; next < queries.size(); ++next) {
    // Burst of churn, then a registration into the live catalog.
    graph.BeginBatch();
    for (int i = 0; i < 6; ++i) generator.ApplyRandomUpdate(&graph);
    graph.CommitBatch();
    auto view = engine.Register(queries[next]);
    ASSERT_TRUE(view.ok()) << queries[next] << ": " << view.status();
    views.push_back(*view);

    for (size_t q = 0; q <= next; ++q) {
      auto expected = engine.EvaluateOnce(queries[q]);
      ASSERT_TRUE(expected.ok());
      std::vector<Tuple> rows = views[q]->Snapshot();
      ASSERT_EQ(rows.size(), expected.value().size())
          << queries[q] << " after registration " << next;
      for (size_t i = 0; i < rows.size(); ++i) {
        ASSERT_EQ(Tuple::Compare(rows[i], expected.value()[i]), 0)
            << queries[q] << " row " << i;
      }
    }
  }

  // One more burst: everything keeps maintaining together.
  graph.BeginBatch();
  for (int i = 0; i < 6; ++i) generator.ApplyRandomUpdate(&graph);
  graph.CommitBatch();
  for (size_t q = 0; q < queries.size(); ++q) {
    auto expected = engine.EvaluateOnce(queries[q]);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(views[q]->Snapshot().size(), expected.value().size())
        << queries[q];
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndPriming, MidChurnTest,
    ::testing::Values(
        std::make_pair(PropagationStrategy::kEager, true),
        std::make_pair(PropagationStrategy::kEager, false),
        std::make_pair(PropagationStrategy::kBatched, true),
        std::make_pair(PropagationStrategy::kBatched, false)),
    [](const auto& info) {
      return std::string(PropagationStrategyName(info.param.first)) +
             (info.param.second ? "_replay" : "_reprime");
    });

// A dropped view's exclusive nodes are freed and leave the registry; a
// later registration of the same plan must rebuild them fresh (graph-
// primed) without perturbing surviving siblings.
TEST(IncrementalPriming, ReRegisteringAfterDropRebuildsFreedNodes) {
  SocialNetworkConfig config;
  config.persons = 30;
  SocialNetworkGenerator generator(config);
  PropertyGraph graph;
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  auto doomed = engine.Register(kLikesQuery);
  auto survivor = engine.Register(
      "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c");
  ASSERT_TRUE(doomed.ok() && survivor.ok());

  for (int i = 0; i < 15; ++i) generator.ApplyRandomUpdate(&graph);
  doomed->reset();  // frees the LIKES sub-network (survivor shares none)

  size_t survivor_bytes = (*survivor)->ApproxMemoryBytes();
  auto back = engine.Register(kLikesAlias);
  ASSERT_TRUE(back.ok());
  ReteNetwork::PrimeStats stats = engine.catalog().last_prime_stats();
  // The freed sub-plan is a registry miss again: primed from the graph
  // through fresh sources, nothing to replay from.
  EXPECT_GT(stats.graph_primed_entries, 0);
  EXPECT_GT(stats.primed_sources, 0u);
  EXPECT_GT(stats.fresh_nodes, 1u);

  auto expected = engine.EvaluateOnce(kLikesQuery);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ((*back)->Snapshot().size(), expected.value().size());

  // The survivor was neither re-primed nor perturbed: same memories, same
  // (still correct) rows.
  EXPECT_EQ((*survivor)->ApproxMemoryBytes(), survivor_bytes);
  auto survivor_expected = engine.EvaluateOnce((*survivor)->query());
  ASSERT_TRUE(survivor_expected.ok());
  EXPECT_EQ((*survivor)->Snapshot().size(), survivor_expected.value().size());
}

class RecordingListener : public ViewChangeListener {
 public:
  void OnViewDelta(const Delta& delta) override {
    ++calls;
    entries += static_cast<int64_t>(delta.size());
  }
  int calls = 0;
  int64_t entries = 0;
};

// Replay rebuilds the new consumers to steady state; it is not a change to
// any existing view, so listeners — on old views *and* on the freshly
// returned one — stay silent, mid-churn included.
TEST(IncrementalPriming, ListenersStaySilentDuringReplay) {
  SocialNetworkConfig config;
  config.persons = 30;
  SocialNetworkGenerator generator(config);
  PropertyGraph graph;
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  // Watch a view every vertex insertion visibly changes, plus the join the
  // replayed registrations actually share.
  auto watched = engine.Register("MATCH (n:Person) RETURN n");
  auto join_view = engine.Register(kLikesQuery);
  ASSERT_TRUE(watched.ok() && join_view.ok());
  RecordingListener listener;
  RecordingListener join_listener;
  (*watched)->AddListener(&listener);
  (*join_view)->AddListener(&join_listener);

  for (int i = 0; i < 10; ++i) generator.ApplyRandomUpdate(&graph);
  int calls_after_churn = listener.calls;
  int join_calls_after_churn = join_listener.calls;

  // Fully shared (pure replay), partially shared (replay + fresh suffix)
  // and disjoint (pure graph prime) registrations: none of them may leak a
  // delta to the existing views' listeners.
  auto dup = engine.Register(kLikesAlias);
  auto partial = engine.Register(
      "MATCH (u:Person)-[:LIKES]->(m:Post) RETURN m AS msg, count(*) AS l");
  auto disjoint = engine.Register(
      "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c");
  ASSERT_TRUE(dup.ok() && partial.ok() && disjoint.ok());
  EXPECT_EQ(listener.calls, calls_after_churn);
  EXPECT_EQ(join_listener.calls, join_calls_after_churn);

  // A real change still notifies exactly once.
  graph.AddVertex({"Person"});
  EXPECT_EQ(listener.calls, calls_after_churn + 1);
  (*watched)->RemoveListener(&listener);
  (*join_view)->RemoveListener(&join_listener);
}

// The engine-wide pool: disabling operator-state sharing used to spawn one
// worker pool per view's private network; now every network an engine
// creates runs its parallel waves on a single shared pool.
TEST(EnginePool, PrivateNetworksShareOneThreadPool) {
  ScopedThreadsEnv no_env(nullptr);  // pin: the case needs exactly kParallel
  SocialNetworkConfig config;
  config.persons = 15;
  SocialNetworkGenerator generator(config);
  PropertyGraph graph;
  generator.Populate(&graph);

  EngineOptions options;
  options.catalog.share_operator_state = false;
  options.network.executor = ExecutorKind::kParallel;
  options.network.num_threads = 2;
  QueryEngine engine(&graph, options);
  auto a = engine.Register(kLikesQuery);
  auto b = engine.Register(
      "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang RETURN p, c");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_NE(&(*a)->network(), &(*b)->network());
  const ThreadPool* pool = (*a)->network().thread_pool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->parallelism(), 2);
  EXPECT_EQ((*b)->network().thread_pool(), pool);

  // Both private networks keep maintaining correctly on the shared pool.
  for (int i = 0; i < 10; ++i) generator.ApplyRandomUpdate(&graph);
  for (const auto& view : {*a, *b}) {
    auto expected = engine.EvaluateOnce(view->query());
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(view->Snapshot().size(), expected.value().size())
        << view->query();
  }
}

TEST(EnginePool, SharedCatalogNetworkUsesTheEnginePoolToo) {
  ScopedThreadsEnv no_env(nullptr);
  PropertyGraph graph;
  graph.AddVertex({"A"});
  EngineOptions options;
  options.network.executor = ExecutorKind::kParallel;
  options.network.num_threads = 2;
  QueryEngine engine(&graph, options);
  auto view = engine.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(view.ok());
  ASSERT_NE((*view)->network().thread_pool(), nullptr);
  EXPECT_EQ((*view)->network().thread_pool()->parallelism(), 2);
  EXPECT_EQ((*view)->size(), 1);
}

// Replay priming under the parallel executor: registrations into a live
// parallel catalog go through the same barrier/deferred-notification
// machinery as graph deltas (the TSAN CI job re-runs this at 8 threads).
TEST(IncrementalPriming, ReplayUnderParallelExecutorStaysCorrect) {
  ScopedThreadsEnv no_env(nullptr);
  SocialNetworkConfig config;
  config.persons = 30;
  SocialNetworkGenerator generator(config);
  PropertyGraph graph;
  generator.Populate(&graph);

  EngineOptions options;
  options.network.executor = ExecutorKind::kParallel;
  options.network.num_threads = 4;
  QueryEngine engine(&graph, options);
  auto first = engine.Register(kLikesQuery);
  ASSERT_TRUE(first.ok());
  RecordingListener listener;
  (*first)->AddListener(&listener);
  for (int i = 0; i < 10; ++i) generator.ApplyRandomUpdate(&graph);
  int calls_before = listener.calls;

  auto second = engine.Register(kLikesAlias);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(listener.calls, calls_before);
  EXPECT_EQ(engine.catalog().last_prime_stats().graph_primed_entries, 0);

  for (int i = 0; i < 10; ++i) generator.ApplyRandomUpdate(&graph);
  auto expected = engine.EvaluateOnce(kLikesQuery);
  ASSERT_TRUE(expected.ok());
  std::vector<Tuple> rows = (*second)->Snapshot();
  ASSERT_EQ(rows.size(), expected.value().size());
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(Tuple::Compare(rows[i], expected.value()[i]), 0) << "row " << i;
  }
  (*first)->RemoveListener(&listener);
}

}  // namespace
}  // namespace pgivm
