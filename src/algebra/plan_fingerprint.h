#ifndef PGIVM_ALGEBRA_PLAN_FINGERPRINT_H_
#define PGIVM_ALGEBRA_PLAN_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "algebra/operator.h"

namespace pgivm {

/// Canonical structural fingerprint of an FRA sub-plan: operator kind +
/// parameters + child fingerprints, with every variable reference rewritten
/// to a schema *position* so the key is insensitive to query aliases
/// (`MATCH (p:Post)` and `MATCH (x:Post)` fingerprint identically). Two
/// sub-plans with equal keys compute positionally identical tuple streams,
/// so one Rete node (and its memories) can serve both — downstream
/// consumers bind their expressions positionally anyway.
///
/// The key is computed on the plan exactly as given; it does not normalize
/// structure. Run CanonicalizePlan (algebra/passes/pass_manager.h) first so
/// logically equal plans that would lower to different join orders, filter
/// splits or operand spellings reach the fingerprint in one normal form.
///
/// Returns "" when the sub-plan contains a construct the canonicalizer does
/// not cover (unbound variable, compile-time-only placeholder); such
/// sub-plans are simply built privately, never shared. Requires schemas
/// computed.
std::string CanonicalPlanKey(const LogicalOp& op);

/// Canonical alias-insensitive rendering of `expr` evaluated against
/// `scope`: scope variables become positions (#i), comprehension locals
/// become depth references. Returns "" when the expression cannot be
/// canonicalized. This is the expression fragment of CanonicalPlanKey,
/// exposed so plan passes can order sub-expressions by a key that is
/// stable under alias renames.
std::string CanonicalExprKey(const ExprPtr& expr, const Schema& scope);

/// Rewrites `expr` into its canonical form: operands of commutative
/// operators are ordered by canonical key — AND/OR chains are flattened,
/// sorted and rebuilt left-deep; XOR/=/<>/* operand pairs are swapped into
/// key order. (`+` is excluded: it concatenates strings and lists.)
/// `scope` only feeds the ordering keys; expressions that cannot be keyed
/// keep their original operand order. Semantics are unchanged — Cypher's
/// three-valued AND/OR are commutative and associative, and evaluation
/// here never short-circuits observable effects.
ExprPtr CanonicalizeExpr(const ExprPtr& expr, const Schema& scope);

/// The strict-weak ordering every canonical re-ordering (conjunct sites,
/// projection/aggregate items, union branches, join-region leaves,
/// AND/OR chains) sorts by: keyable entries first in lexicographic key
/// order, unkeyable ("") entries last. One shared rule, so the
/// canonicalize pass can never drift from the fingerprint's notion of
/// order. Callers preserve the original relative order of ties with
/// stable_sort.
bool CanonicalKeyLess(const std::string& a, const std::string& b);

/// 64-bit FNV-1a of a canonical key — the compact form used when a full
/// key would be unwieldy (plan dumps, logs). Not collision-free; equality
/// decisions must use the full key.
uint64_t FingerprintHash(const std::string& key);

/// Human-readable fingerprint tag for plan dumps: "fp=<16 hex digits>" of
/// FingerprintHash, or "fp=-" for the empty (unshareable) key.
std::string FormatFingerprint(const std::string& key);

/// The mirrored spelling of an undirected edge leaf: a copy of `op` with
/// src_var and dst_var swapped, extracts re-sorted into the canonical
/// (role, what, key) order and the schema recomputed. An undirected
/// (kBoth) scan emits both orientations of every edge, so the mirror binds
/// the *same* set of rows — swapping the endpoint roles is a pure renaming
/// of the leaf's internals, and the canonicalizer is free to pick
/// whichever of the two spellings fingerprints smaller (or, when the two
/// keys tie, whichever orientation renders the enclosing join region
/// smaller). Returns nullptr when `op` is not a childless kBoth kGetEdges
/// leaf. Lives next to the fingerprint because the choice must agree with
/// its rendering: the mirror is "the other spelling of the same key
/// space", not a semantic rewrite.
OpPtr MirrorUndirectedLeaf(const LogicalOp& op);

}  // namespace pgivm

#endif  // PGIVM_ALGEBRA_PLAN_FINGERPRINT_H_
