#include "rete/network_builder.h"

#include "rete/aggregate_node.h"
#include "rete/antijoin_node.h"
#include "rete/distinct_node.h"
#include "rete/filter_node.h"
#include "rete/join_node.h"
#include "rete/path_node.h"
#include "rete/project_node.h"
#include "rete/semijoin_node.h"
#include "rete/union_node.h"
#include "rete/unnest_node.h"
#include "support/string_util.h"

namespace pgivm {

namespace {

class Builder {
 public:
  Builder(ReteNetwork* network, const PropertyGraph* graph,
          const NetworkOptions& options)
      : network_(network), graph_(graph), options_(options) {}

  Result<ReteNode*> Build(const OpPtr& op) {
    switch (op->kind) {
      case OpKind::kUnit: {
        auto* node = network_->Add(std::make_unique<UnitInputNode>());
        network_->RegisterSource(node);
        return node;
      }

      case OpKind::kGetVertices: {
        auto* node = network_->Add(std::make_unique<VertexInputNode>(
            op->schema, graph_, op->labels, op->extracts));
        network_->RegisterSource(node);
        return node;
      }

      case OpKind::kGetEdges: {
        auto* node = network_->Add(std::make_unique<EdgeInputNode>(
            op->schema, graph_, op->edge_types,
            op->direction == EdgeDirection::kBoth, op->src_var, op->edge_var,
            op->dst_var, op->extracts));
        network_->RegisterSource(node);
        return node;
      }

      case OpKind::kPathJoin: {
        PGIVM_ASSIGN_OR_RETURN(ReteNode* input, Build(op->children[0]));
        Schema path_schema;
        path_schema.Add({op->src_var, Attribute::Kind::kVertex});
        path_schema.Add({op->dst_var, Attribute::Kind::kVertex});
        bool emit_path = !op->path_var.empty();
        if (emit_path) {
          path_schema.Add({op->path_var, Attribute::Kind::kPath});
        }
        auto* paths = network_->Add(std::make_unique<PathInputNode>(
            path_schema, graph_, op->edge_types,
            op->direction == EdgeDirection::kIn, op->min_hops, op->max_hops,
            emit_path));
        network_->RegisterSource(paths);
        auto* join = network_->Add(std::make_unique<JoinNode>(
            op->schema, input->schema(), paths->schema()));
        input->AddOutput(join, 0);
        paths->AddOutput(join, 1);
        return join;
      }

      case OpKind::kSelection: {
        PGIVM_ASSIGN_OR_RETURN(ReteNode* input, Build(op->children[0]));
        PGIVM_ASSIGN_OR_RETURN(
            BoundExpression predicate,
            BoundExpression::Bind(op->predicate, input->schema()));
        auto* node = network_->Add(std::make_unique<FilterNode>(
            op->schema, std::move(predicate)));
        input->AddOutput(node, 0);
        return node;
      }

      case OpKind::kProjection:
      case OpKind::kProduce: {
        PGIVM_ASSIGN_OR_RETURN(ReteNode* input, Build(op->children[0]));
        std::vector<BoundExpression> columns;
        for (const auto& [name, expr] : op->projections) {
          PGIVM_ASSIGN_OR_RETURN(
              BoundExpression bound,
              BoundExpression::Bind(expr, input->schema()));
          columns.push_back(std::move(bound));
        }
        auto* node = network_->Add(std::make_unique<ProjectNode>(
            op->schema, std::move(columns)));
        input->AddOutput(node, 0);
        return node;
      }

      case OpKind::kJoin: {
        PGIVM_ASSIGN_OR_RETURN(ReteNode* left, Build(op->children[0]));
        PGIVM_ASSIGN_OR_RETURN(ReteNode* right, Build(op->children[1]));
        auto* node = network_->Add(std::make_unique<JoinNode>(
            op->schema, left->schema(), right->schema()));
        left->AddOutput(node, 0);
        right->AddOutput(node, 1);
        return node;
      }

      case OpKind::kAntiJoin: {
        PGIVM_ASSIGN_OR_RETURN(ReteNode* left, Build(op->children[0]));
        PGIVM_ASSIGN_OR_RETURN(ReteNode* right, Build(op->children[1]));
        auto* node = network_->Add(std::make_unique<AntiJoinNode>(
            op->schema, left->schema(), right->schema()));
        left->AddOutput(node, 0);
        right->AddOutput(node, 1);
        return node;
      }

      case OpKind::kSemiJoin: {
        PGIVM_ASSIGN_OR_RETURN(ReteNode* left, Build(op->children[0]));
        PGIVM_ASSIGN_OR_RETURN(ReteNode* right, Build(op->children[1]));
        auto* node = network_->Add(std::make_unique<SemiJoinNode>(
            op->schema, left->schema(), right->schema()));
        left->AddOutput(node, 0);
        right->AddOutput(node, 1);
        return node;
      }

      case OpKind::kLeftOuterJoin: {
        // L ⟕ R  =  (L ⋈ R)  ∪  π_null-pad(L ▷ R).
        PGIVM_ASSIGN_OR_RETURN(ReteNode* left, Build(op->children[0]));
        PGIVM_ASSIGN_OR_RETURN(ReteNode* right, Build(op->children[1]));
        auto* join = network_->Add(std::make_unique<JoinNode>(
            op->schema, left->schema(), right->schema()));
        left->AddOutput(join, 0);
        right->AddOutput(join, 1);
        auto* anti = network_->Add(std::make_unique<AntiJoinNode>(
            left->schema(), left->schema(), right->schema()));
        left->AddOutput(anti, 0);
        right->AddOutput(anti, 1);
        std::vector<BoundExpression> pad;
        for (const Attribute& attr : op->schema.attributes()) {
          ExprPtr expr = left->schema().Contains(attr.name)
                             ? MakeVariable(attr.name)
                             : MakeLiteral(Value::Null());
          PGIVM_ASSIGN_OR_RETURN(BoundExpression bound,
                                 BoundExpression::Bind(expr, left->schema()));
          pad.push_back(std::move(bound));
        }
        auto* padder = network_->Add(std::make_unique<ProjectNode>(
            op->schema, std::move(pad)));
        anti->AddOutput(padder, 0);
        auto* merge = network_->Add(std::make_unique<UnionNode>(op->schema));
        join->AddOutput(merge, 0);
        padder->AddOutput(merge, 1);
        return merge;
      }

      case OpKind::kUnion: {
        PGIVM_ASSIGN_OR_RETURN(ReteNode* left, Build(op->children[0]));
        PGIVM_ASSIGN_OR_RETURN(ReteNode* right, Build(op->children[1]));
        // Align the right input's column order with the left's.
        ReteNode* aligned = right;
        if (!(right->schema() == left->schema())) {
          std::vector<BoundExpression> reorder;
          for (const Attribute& attr : left->schema().attributes()) {
            PGIVM_ASSIGN_OR_RETURN(
                BoundExpression bound,
                BoundExpression::Bind(MakeVariable(attr.name),
                                      right->schema()));
            reorder.push_back(std::move(bound));
          }
          aligned = network_->Add(std::make_unique<ProjectNode>(
              left->schema(), std::move(reorder)));
          right->AddOutput(aligned, 0);
        }
        auto* node = network_->Add(std::make_unique<UnionNode>(op->schema));
        left->AddOutput(node, 0);
        aligned->AddOutput(node, 1);
        return node;
      }

      case OpKind::kDistinct: {
        PGIVM_ASSIGN_OR_RETURN(ReteNode* input, Build(op->children[0]));
        auto* node = network_->Add(std::make_unique<DistinctNode>(
            op->schema));
        input->AddOutput(node, 0);
        return node;
      }

      case OpKind::kAggregate: {
        PGIVM_ASSIGN_OR_RETURN(ReteNode* input, Build(op->children[0]));
        std::vector<BoundExpression> keys;
        for (const auto& [name, expr] : op->group_by) {
          PGIVM_ASSIGN_OR_RETURN(
              BoundExpression bound,
              BoundExpression::Bind(expr, input->schema()));
          keys.push_back(std::move(bound));
        }
        std::vector<AggregateSpec> specs;
        for (const auto& [name, expr] : op->aggregates) {
          PGIVM_ASSIGN_OR_RETURN(
              AggregateSpec spec,
              AggregateSpec::Make(expr, input->schema(), nullptr));
          specs.push_back(std::move(spec));
        }
        auto* node = network_->Add(std::make_unique<AggregateNode>(
            op->schema, std::move(keys), std::move(specs)));
        input->AddOutput(node, 0);
        return node;
      }

      case OpKind::kUnnest: {
        PGIVM_ASSIGN_OR_RETURN(ReteNode* input, Build(op->children[0]));
        PGIVM_ASSIGN_OR_RETURN(
            BoundExpression collection,
            BoundExpression::Bind(op->unnest_expr, input->schema()));
        std::vector<int> kept;
        for (size_t i = 0; i < input->schema().size(); ++i) {
          const std::string& name = input->schema().at(i).name;
          bool dropped = false;
          for (const std::string& d : op->unnest_drop_columns) {
            if (d == name) dropped = true;
          }
          if (!dropped) kept.push_back(static_cast<int>(i));
        }
        auto* node = network_->Add(std::make_unique<UnnestNode>(
            op->schema, std::move(collection), std::move(kept),
            options_.fine_grained_unnest));
        input->AddOutput(node, 0);
        return node;
      }

      case OpKind::kExpand:
        return Status::Internal(
            "Expand reached the network builder; run LowerToFra first");
    }
    return Status::Internal(
        StrCat("unhandled operator ", OpKindName(op->kind)));
  }

 private:
  ReteNetwork* network_;
  const PropertyGraph* graph_;
  NetworkOptions options_;
};

}  // namespace

Result<std::unique_ptr<ReteNetwork>> BuildNetwork(
    const OpPtr& plan, const PropertyGraph* graph,
    const NetworkOptions& options) {
  auto network = std::make_unique<ReteNetwork>();
  network->set_propagation(options.propagation);
  Builder builder(network.get(), graph, options);
  PGIVM_ASSIGN_OR_RETURN(ReteNode* root, builder.Build(plan));
  auto* production =
      network->Add(std::make_unique<ProductionNode>(root->schema()));
  root->AddOutput(production, 0);
  network->SetProduction(production);
  return network;
}

}  // namespace pgivm
