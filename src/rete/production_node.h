#ifndef PGIVM_RETE_PRODUCTION_NODE_H_
#define PGIVM_RETE_PRODUCTION_NODE_H_

#include <cstdint>
#include <vector>

#include "rete/node.h"

namespace pgivm {

/// Observer of a materialized view's changes. `delta` is normalized (tuples
/// coalesced, zero entries dropped) and describes the net effect of one
/// graph delta on the result bag.
class ViewChangeListener {
 public:
  virtual ~ViewChangeListener() = default;
  virtual void OnViewDelta(const Delta& delta) = 0;
};

/// Network root: materializes the result bag of the view and fans change
/// notifications out to listeners. Snapshot() exposes the current rows.
class ProductionNode : public ReteNode {
 public:
  explicit ProductionNode(Schema schema) : ReteNode(std::move(schema)) {}

  void OnDelta(int port, const Delta& delta) override;

  /// Flushes notifications buffered while defer_notifications() was on:
  /// one OnViewDelta call per buffered delivery, in delivery order, on the
  /// calling (draining) thread.
  void OnWaveBarrier() override;

  void Reset() override {
    results_.Clear();
    ++version_;
  }

  /// Replays the materialized result bag (chained-view priming).
  bool ReplayOutput(Delta& out) const override {
    out.reserve(out.size() + results_.counts().size());
    for (const auto& [tuple, count] : results_.counts()) {
      out.push_back({tuple, count});
    }
    return true;
  }

  /// Current result bag (tuple -> multiplicity).
  const Bag& results() const { return results_; }

  /// Monotonic change counter: bumped whenever `results()` may have changed
  /// (non-empty delta applied, or Reset). Lets readers cache derived state
  /// (View::Snapshot's sorted rows) and skip recomputation while unchanged.
  uint64_t version() const { return version_; }

  /// Temporarily silences listener fan-out. The network disables
  /// notifications while (re-)priming an attachment: priming replays the
  /// whole graph content, which is not an observable *change* to a view
  /// that sharing-induced re-priming rebuilds to the same rows. Results are
  /// still applied and chained emissions still happen.
  void set_notify_listeners(bool on) { notify_listeners_ = on; }

  /// Under parallel wave execution several productions' OnDelta calls run
  /// concurrently; with this flag set (by the network at a parallel
  /// Attach) listener notifications are buffered instead of fired inline
  /// and delivered from OnWaveBarrier() — serially, in ready order — so
  /// user listener code keeps the serial executor's threading contract.
  /// Result application and chained emissions are unaffected.
  ///
  /// One visible difference from inline delivery: the barrier runs after
  /// the whole wave's deltas are applied, so a listener that reads a
  /// *sibling* view mid-callback may observe same-wave siblings already
  /// updated where the serial executor would still show their previous
  /// rows — never stale and never torn, just at-least-as-fresh. Payload
  /// sequences and final snapshots are identical either way.
  void set_defer_notifications(bool on) { defer_notifications_ = on; }

  /// Rows with multiplicities expanded, sorted for determinism.
  std::vector<Tuple> SortedSnapshot() const;

  void AddListener(ViewChangeListener* listener) {
    listeners_.push_back(listener);
  }
  void RemoveListener(ViewChangeListener* listener);

  size_t ApproxMemoryBytes() const override {
    return results_.ApproxMemoryBytes();
  }

  std::string DebugString() const override { return "Production"; }

 private:
  Bag results_;
  std::vector<ViewChangeListener*> listeners_;
  /// Deliveries whose notification is deferred to the wave barrier (one
  /// element per OnDelta, so listeners see the same call granularity as
  /// under inline notification).
  std::vector<Delta> deferred_notifications_;
  uint64_t version_ = 0;
  bool notify_listeners_ = true;
  bool defer_notifications_ = false;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_PRODUCTION_NODE_H_
