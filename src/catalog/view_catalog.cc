#include "catalog/view_catalog.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "support/string_util.h"

namespace pgivm {

namespace {

/// Runs `attach` (a full Attach-based prime of `network`) and reports it in
/// PrimeStats terms: every primed tuple came from the graph, none from
/// replay. Used for the first registration, the incremental_priming=false
/// ablation, and private (unshared) networks.
template <typename AttachFn>
ReteNetwork::PrimeStats MeasureFullPrime(const ReteNetwork& network,
                                         size_t fresh_nodes,
                                         AttachFn&& attach) {
  ReteNetwork::PrimeStats stats;
  stats.fresh_nodes = fresh_nodes;
  int64_t before = network.SourceEmittedEntries();
  attach();
  stats.graph_primed_entries = network.SourceEmittedEntries() - before;
  stats.primed_sources = network.source_count();
  return stats;
}

}  // namespace

std::string CatalogStats::ToString() const {
  std::ostringstream os;
  os << "views=" << views << " nodes=" << total_nodes
     << " shared=" << shared_nodes << " (" << static_cast<int>(
            SharingRatio() * 100.0 + 0.5)
     << "%) registry hits=" << registry_hits << " misses=" << registry_misses
     << " mem=" << memory_bytes << "B primed replay=" << replayed_entries
     << "/graph=" << graph_primed_entries;
  return os.str();
}

std::shared_ptr<ViewCatalog> ViewCatalog::Create(
    PropertyGraph* graph, NetworkOptions network_options,
    CatalogOptions options) {
  // PGIVM_THREADS / PGIVM_PROFILE / PGIVM_MORSEL win over programmatic
  // configuration for every network this catalog creates (shared or
  // per-view).
  return std::shared_ptr<ViewCatalog>(new ViewCatalog(
      graph,
      ApplyEnvMorselOverride(ApplyEnvProfilingOverride(
          ApplyEnvExecutorOverride(network_options))),
      options));
}

Result<std::shared_ptr<View>> ViewCatalog::Install(std::string query,
                                                   OpPtr gra, OpPtr fra,
                                                   int64_t skip,
                                                   int64_t limit) {
  auto view = std::shared_ptr<View>(new View());
  view->query_ = std::move(query);
  view->gra_ = std::move(gra);
  view->fra_ = std::move(fra);
  for (const auto& [name, expr] : view->fra_->projections) {
    view->columns_.push_back(name);
    (void)expr;
  }
  view->skip_ = skip;
  view->limit_ = limit;

  if (options_.share_operator_state) {
    const bool live = network_ != nullptr && network_->attached();
    if (network_ == nullptr) {
      network_ = std::make_unique<ReteNetwork>();
      network_->set_propagation(network_options_.propagation);
      network_->set_executor(network_options_.executor,
                             network_options_.num_threads);
      network_->set_consolidation_cutoff(
          network_options_.consolidation_cutoff);
      network_->set_parallel_min_wave_entries(
          network_options_.parallel_min_wave_entries);
      network_->set_morsel_min_node_entries(
          network_options_.morsel_min_node_entries);
      network_->set_morsel_partitions(network_options_.morsel_partitions);
      network_->set_epoch_retention(network_options_.epoch_retention);
      network_->set_thread_pool(EnginePool());
      network_->set_metrics(metrics_.get());
      network_->set_trace_capacity(network_options_.trace_capacity);
      network_->set_profiling(
          profiling_flag_.load(std::memory_order_relaxed));
    }
    Result<BuiltView> built = BuildViewInto(network_.get(), view->fra_,
                                            graph_, network_options_,
                                            &registry_);
    if (!built.ok()) return built.status();

    Entry entry;
    entry.view = view.get();
    entry.network = network_.get();
    entry.production = built->production;
    entry.nodes = std::move(built->nodes);
    for (ReteNode* node : entry.nodes) ++refcounts_[node];
    entries_.push_back(std::move(entry));

    view->catalog_ = shared_from_this();
    view->network_ = network_.get();
    view->production_ = entries_.back().production;

    if (live && options_.incremental_priming) {
      // Incremental priming: the registry partitioned the plan into hits
      // (live nodes, already primed by sibling views) and misses (the
      // `created` nodes, empty). Each reused node that gained a consumer
      // replays its materialized memory into just that consumer; only the
      // genuinely new sub-plans read the graph, through their own fresh
      // source nodes. Work is proportional to the new view's own state —
      // the rest of the catalog is neither re-primed nor even visited.
      std::unordered_set<const ReteNode*> fresh(built->created.begin(),
                                                built->created.end());
      std::vector<ReteNetwork::ReplayEdge> replays;
      for (ReteNode* node : entries_.back().nodes) {
        if (fresh.count(node) > 0) continue;  // registry miss: built now
        for (const auto& [down, port] : node->outputs()) {
          // Any reused → fresh subscription was wired by this
          // registration (the consumer did not exist before it).
          if (fresh.count(down) > 0) replays.push_back({node, down, port});
        }
      }
      last_prime_ = network_->PrimeNewNodes(built->created, replays,
                                            entries_.back().nodes);
    } else if (live) {
      // Ablation baseline (incremental_priming = false): the PR-2 full
      // re-prime — every memory in the shared network is rebuilt from the
      // graph, O(catalog) per registration, listeners suppressed by
      // Attach.
      last_prime_ =
          MeasureFullPrime(*network_, built->created.size(), [this] {
            network_->Detach();
            network_->Attach(graph_);
          });
    } else {
      // First registration: the network attaches and primes as a whole.
      last_prime_ =
          MeasureFullPrime(*network_, built->created.size(),
                           [this] { network_->Attach(graph_); });
    }
  } else {
    PGIVM_ASSIGN_OR_RETURN(
        std::unique_ptr<ReteNetwork> network,
        BuildNetwork(view->fra_, graph_, network_options_));
    network->set_thread_pool(EnginePool());
    network->set_metrics(metrics_.get());
    // BuildNetwork applied the configured default; the runtime switch may
    // have moved since (SetProfiling flips every network, even ones not
    // built yet).
    network->set_profiling(profiling_flag_.load(std::memory_order_relaxed));

    Entry entry;
    entry.view = view.get();
    entry.network = network.get();
    entry.production = network->production();
    entries_.push_back(std::move(entry));

    view->catalog_ = shared_from_this();
    view->network_ = network.get();
    view->production_ = network->production();
    view->owned_network_ = std::move(network);

    // Private network: every node is fresh and graph-primed.
    last_prime_ = MeasureFullPrime(
        *view->owned_network_, view->owned_network_->node_count(),
        [&] { view->owned_network_->Attach(graph_); });
  }
  replayed_entries_ += last_prime_.replayed_entries;
  graph_primed_entries_ += last_prime_.graph_primed_entries;
  view->prime_stats_ = last_prime_;
  // Serving-path instrumentation: Pin() samples its latency into the
  // engine-wide registry when profiling is on. The view holds the catalog
  // alive (catalog_), so both pointers outlive it.
  view->profiling_flag_ = &profiling_flag_;
  view->pin_hist_ = &metrics_->GetHistogram("serving.pin_ns");
  return view;
}

std::vector<const ReteNetwork*> ViewCatalog::Networks() const {
  std::vector<const ReteNetwork*> networks;
  if (options_.share_operator_state) {
    if (network_ != nullptr) networks.push_back(network_.get());
  } else {
    for (const Entry& entry : entries_) networks.push_back(entry.network);
  }
  return networks;
}

void ViewCatalog::SetProfiling(bool on) {
  profiling_flag_.store(on, std::memory_order_relaxed);
  if (options_.share_operator_state) {
    if (network_ != nullptr) network_->set_profiling(on);
  } else {
    for (const Entry& entry : entries_) entry.network->set_profiling(on);
  }
}

std::shared_ptr<ThreadPool> ViewCatalog::EnginePool() {
  if (pool_ != nullptr) return pool_;
  // The executor only applies to batched wave scheduling; a serial (or
  // single-thread-resolved) configuration never needs workers.
  if (network_options_.propagation != PropagationStrategy::kBatched ||
      network_options_.executor != ExecutorKind::kParallel) {
    return nullptr;
  }
  int threads = ThreadPool::ResolveThreadCount(network_options_.num_threads);
  if (threads <= 1) return nullptr;
  pool_ = std::make_shared<ThreadPool>(threads);
  return pool_;
}

void ViewCatalog::Deregister(View* view) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [view](const Entry& entry) {
                           return entry.view == view;
                         });
  if (it == entries_.end()) return;
  Entry entry = std::move(*it);
  entries_.erase(it);
  if (!options_.share_operator_state) {
    // The view owns its private network; it detaches in its destructor.
    return;
  }

  std::vector<ReteNode*> victims;
  for (ReteNode* node : entry.nodes) {
    auto rc = refcounts_.find(node);
    if (rc == refcounts_.end()) continue;
    if (--rc->second == 0) {
      victims.push_back(node);
      refcounts_.erase(rc);
    }
  }
  registry_.RemoveNodes(victims);
  // In shared mode every entry lives in network_, so survivors exist iff
  // any entry remains.
  if (!entries_.empty()) {
    network_->RemoveNodes(victims);
  } else {
    // Last view gone: drop the whole shared network. Registry entries are
    // all rooted at victims by now; Clear() keeps the lifetime hit/miss
    // counters.
    network_.reset();
    registry_.Clear();
    refcounts_.clear();
  }
}

CatalogStats ViewCatalog::Stats() const {
  CatalogStats stats;
  stats.views = entries_.size();
  stats.registry_hits = registry_.hits();
  stats.registry_misses = registry_.misses();
  stats.replayed_entries = replayed_entries_;
  stats.graph_primed_entries = graph_primed_entries_;
  if (options_.share_operator_state) {
    if (network_ != nullptr) {
      stats.total_nodes = network_->node_count();
      stats.memory_bytes = network_->ApproxMemoryBytes();
    }
    for (const auto& [node, refcount] : refcounts_) {
      (void)node;
      if (refcount >= 2) ++stats.shared_nodes;
    }
  } else {
    for (const Entry& entry : entries_) {
      stats.total_nodes += entry.network->node_count();
      stats.memory_bytes += entry.network->ApproxMemoryBytes();
    }
  }
  return stats;
}

size_t ViewCatalog::ViewMemoryBytes(const View* view) const {
  for (const Entry& entry : entries_) {
    if (entry.view != view) continue;
    if (!options_.share_operator_state) {
      return entry.network->ApproxMemoryBytes();
    }
    size_t bytes = 0;
    for (const ReteNode* node : entry.nodes) {
      bytes += node->ApproxMemoryBytes();
    }
    return bytes;
  }
  return 0;
}

size_t ViewCatalog::MarginalMemoryBytes(const View* view) const {
  for (const Entry& entry : entries_) {
    if (entry.view != view) continue;
    if (!options_.share_operator_state) {
      return entry.network->ApproxMemoryBytes();
    }
    size_t bytes = 0;
    for (ReteNode* node : entry.nodes) {
      auto rc = refcounts_.find(node);
      if (rc != refcounts_.end() && rc->second == 1) {
        bytes += node->ApproxMemoryBytes();
      }
    }
    return bytes;
  }
  return 0;
}

std::string ViewCatalog::DebugString() const {
  std::ostringstream os;
  os << Stats().ToString() << "\n";
  for (const Entry& entry : entries_) {
    os << "  view[" << entry.view->query() << "] nodes="
       << entry.nodes.size() << " mem=" << ViewMemoryBytes(entry.view)
       << "B marginal=" << MarginalMemoryBytes(entry.view) << "B\n";
  }
  return os.str();
}

}  // namespace pgivm
