// Canonical plan normalization (PlanOptions::canonicalize): logically equal
// query spellings — alias renames, MATCH clause/part permutations, commuted
// WHERE conjuncts, swapped UNION branches, flipped commutative operands —
// must lower to plans with identical canonical fingerprints, so a live
// catalog resolves them onto the same shared Rete sub-network (registry
// hits only; the per-view production is the single new node). And the
// normal form must be purely structural: snapshots are bit-identical to
// the un-canonicalized plan under both propagation strategies.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/passes/pass_manager.h"
#include "algebra/plan_fingerprint.h"
#include "algebra/plan_printer.h"
#include "engine/query_engine.h"
#include "workload/random_graph.h"
#include "workload/social_network.h"

namespace pgivm {
namespace {

EngineOptions CanonicalizeDisabled() {
  EngineOptions options;
  options.plan.canonicalize = false;
  return options;
}

/// One logical query in several spellings. `same_aliases` marks groups
/// whose variants keep every variable name, where canonicalization must
/// produce *byte-identical* plans (PlanEqual), not just equal fingerprints.
struct VariantGroup {
  const char* name;
  bool same_aliases;
  std::vector<const char*> variants;
};

std::vector<VariantGroup> Groups() {
  return {
      {"alias_rename",
       false,
       {"MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang = c.lang "
        "RETURN p, c",
        "MATCH (x:Post)-[:REPLY]->(y:Comm) WHERE x.lang = y.lang "
        "RETURN x, y"}},
      {"conjunct_commute",
       true,
       {"MATCH (p:Post)-[:REPLY]->(c:Comm) "
        "WHERE p.lang = c.lang AND p.length > 10 RETURN p, c",
        "MATCH (p:Post)-[:REPLY]->(c:Comm) "
        "WHERE p.length > 10 AND p.lang = c.lang RETURN p, c"}},
      {"operand_commute",
       true,
       {"MATCH (p:Post) WHERE p.lang = 'en' RETURN p",
        "MATCH (p:Post) WHERE 'en' = p.lang RETURN p"}},
      // Edges named explicitly: anonymous elements would draw
      // fresh-counter names in part order and spoil byte-identity.
      {"part_permutation",
       true,
       {"MATCH (u:Person)-[l:LIKES]->(m:Post), (m)-[r:REPLY]->(c:Comm) "
        "RETURN u, c",
        "MATCH (m)-[r:REPLY]->(c:Comm), (u:Person)-[l:LIKES]->(m:Post) "
        "RETURN u, c"}},
      {"clause_permutation",
       true,
       {"MATCH (a:Person) MATCH (b:Comm) WHERE a.country = 'de' "
        "RETURN a, b",
        "MATCH (b:Comm) MATCH (a:Person) WHERE a.country = 'de' "
        "RETURN a, b"}},
      {"cross_join_permutation",
       false,
       {"MATCH (a:Person), (b:Post) WHERE a.country = b.lang RETURN a, b",
        "MATCH (b:Post), (a:Person) WHERE b.lang = a.country RETURN a, b"}},
      {"union_branch_swap",
       true,
       {"MATCH (a:Post) RETURN a AS n UNION MATCH (b:Comm) RETURN b AS n",
        "MATCH (b:Comm) RETURN b AS n UNION MATCH (a:Post) RETURN a AS n"}},
      // Not byte-identical: anonymous pattern elements draw fresh-counter
      // names in conjunct order, so only the (alias-insensitive)
      // fingerprints coincide.
      {"exists_commute",
       false,
       {"MATCH (a:Person) WHERE exists((a)-[:KNOWS]->(:Person)) AND "
        "NOT exists((a)-[:LIKES]->(:Post)) RETURN a",
        "MATCH (a:Person) WHERE NOT exists((a)-[:LIKES]->(:Post)) AND "
        "exists((a)-[:KNOWS]->(:Person)) RETURN a"}},
      // Two same-shaped pattern elements (equal leaf fingerprints): the
      // ordering must fall back to the Weisfeiler–Leman-refined
      // attachment colors, never to clause position.
      {"duplicate_shape_permutation",
       true,
       {"MATCH (a:Post)-[r1:REPLY]->(b), (c:Post)-[r2:REPLY]->(d), "
        "(b)-[s:LIKES]->(c) RETURN a, d",
        "MATCH (c:Post)-[r2:REPLY]->(d), (a:Post)-[r1:REPLY]->(b), "
        "(b)-[s:LIKES]->(c) RETURN a, d"}},
      {"extract_order",
       true,
       {"MATCH (p:Post) WHERE p.lang = 'en' AND p.length > 5 "
        "RETURN p, p.lang AS l, p.length AS n",
        "MATCH (p:Post) WHERE p.length > 5 AND p.lang = 'en' "
        "RETURN p, p.lang AS l, p.length AS n"}},
      // An undirected scan emits both orientations of every edge, so the
      // two endpoint spellings bind identical rows; the canonicalizer
      // pins one orientation per leaf. Not byte-identical: the variants
      // disagree on which variable is src.
      {"undirected_endpoint_swap",
       false,
       {"MATCH (p:Post)-[r:REPLY]-(c:Comm) RETURN p, c",
        "MATCH (c:Comm)-[r:REPLY]-(p:Post) RETURN p, c"}},
      // Same with an asymmetric predicate: the extract for p.lang rides
      // on a different endpoint role in each spelling, which is exactly
      // the shape that made fingerprint-level orientation merging
      // unsound — the fix must rewrite the plan, not just the key.
      {"undirected_endpoint_swap_filtered",
       false,
       {"MATCH (p:Post)-[r:REPLY]-(c:Comm) WHERE p.lang = 'en' "
        "RETURN p, c",
        "MATCH (c:Comm)-[r:REPLY]-(p:Post) WHERE p.lang = 'en' "
        "RETURN p, c"}},
      // Two undirected legs through a shared middle: each leaf picks its
      // orientation inside the join region.
      {"undirected_two_hop_swap",
       false,
       {"MATCH (a:Person)-[k:KNOWS]-(b:Person), (b)-[l:LIKES]->(m:Post) "
        "RETURN a, m",
        "MATCH (b:Person)-[k:KNOWS]-(a:Person), (b)-[l:LIKES]->(m:Post) "
        "RETURN a, m"}},
  };
}

TEST(Canonicalize, LogicallyEqualSpellingsFingerprintIdentically) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  for (const VariantGroup& group : Groups()) {
    std::vector<std::string> keys;
    for (const char* variant : group.variants) {
      Result<OpPtr> plan = engine.Compile(variant);
      ASSERT_TRUE(plan.ok()) << group.name << ": " << plan.status();
      keys.push_back(CanonicalPlanKey(**plan));
      ASSERT_FALSE(keys.back().empty()) << group.name << ": " << variant;
    }
    for (size_t i = 1; i < keys.size(); ++i) {
      EXPECT_EQ(keys[0], keys[i])
          << group.name << " variant " << i << " fingerprints differently:\n"
          << group.variants[0] << "\nvs\n" << group.variants[i];
    }
  }
}

TEST(Canonicalize, SameAliasSpellingsProduceByteIdenticalPlans) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  PlanPrintOptions with_fp;
  with_fp.fingerprints = true;
  for (const VariantGroup& group : Groups()) {
    if (!group.same_aliases) continue;
    Result<OpPtr> first = engine.Compile(group.variants[0]);
    ASSERT_TRUE(first.ok()) << group.name;
    for (size_t i = 1; i < group.variants.size(); ++i) {
      Result<OpPtr> other = engine.Compile(group.variants[i]);
      ASSERT_TRUE(other.ok()) << group.name;
      EXPECT_TRUE(PlanEqual(*first, *other))
          << group.name << ":\n" << PrintPlan(*first, with_fp) << "vs\n"
          << PrintPlan(*other, with_fp);
      EXPECT_EQ(PlanHash(*first), PlanHash(*other)) << group.name;
    }
  }
}

TEST(Canonicalize, PermutedReregistrationIsAllRegistryHits) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 25;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  for (const VariantGroup& group : Groups()) {
    QueryEngine engine(&graph);
    std::vector<std::shared_ptr<View>> views;
    auto first = engine.Register(group.variants[0]);
    ASSERT_TRUE(first.ok()) << group.name << ": " << first.status();
    views.push_back(*first);
    size_t nodes_before = engine.catalog().Stats().total_nodes;
    int64_t misses_before = engine.catalog().Stats().registry_misses;

    for (size_t i = 1; i < group.variants.size(); ++i) {
      auto view = engine.Register(group.variants[i]);
      ASSERT_TRUE(view.ok()) << group.name << ": " << view.status();
      views.push_back(*view);
    }

    CatalogStats stats = engine.catalog().Stats();
    // Zero new Rete nodes per re-registration beyond the per-view
    // production root (productions are never shared), and zero registry
    // misses: the permuted spellings resolved entirely onto live nodes.
    EXPECT_EQ(stats.total_nodes,
              nodes_before + (group.variants.size() - 1))
        << group.name;
    EXPECT_EQ(stats.registry_misses, misses_before) << group.name;
    // Fully-shared registration reads nothing from the graph.
    EXPECT_EQ(engine.catalog().last_prime_stats().graph_primed_entries, 0)
        << group.name;

    // All spellings maintain the same live result.
    for (int step = 0; step < 10; ++step) {
      generator.ApplyRandomUpdate(&graph);
      std::vector<Tuple> reference = views[0]->Snapshot();
      for (size_t i = 1; i < views.size(); ++i) {
        ASSERT_EQ(views[i]->Snapshot(), reference)
            << group.name << " variant " << i << " diverged at step "
            << step;
      }
    }
  }
}

TEST(Canonicalize, OffKeepsPermutedSpellingsPrivate) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 10;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  // The ablation baseline: without the pass, a clause permutation lowers to
  // a different join shape and builds more than just a production.
  QueryEngine engine(&graph, CanonicalizeDisabled());
  auto first = engine.Register(
      "MATCH (u:Person)-[:LIKES]->(m:Post), (m)-[:REPLY]->(c:Comm) "
      "RETURN u, c");
  ASSERT_TRUE(first.ok()) << first.status();
  size_t nodes_before = engine.catalog().Stats().total_nodes;
  auto second = engine.Register(
      "MATCH (m)-[:REPLY]->(c:Comm), (u:Person)-[:LIKES]->(m:Post) "
      "RETURN u, c");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_GT(engine.catalog().Stats().total_nodes, nodes_before + 1);
}

/// The normal form must not change what any view computes: identical
/// update streams through a canonicalize-on and a canonicalize-off engine
/// yield bit-identical snapshots after every delta, under both propagation
/// strategies.
class CanonicalizeParityTest
    : public ::testing::TestWithParam<PropagationStrategy> {};

TEST_P(CanonicalizeParityTest, SnapshotsMatchUncanonicalizedPlans) {
  const std::vector<const char*> queries = {
      "MATCH (a:A)-[r:R]->(b:B) RETURN a, r, b",
      "MATCH (a:A)-[:R]->(b)-[:S]->(c) RETURN a, b, c",
      "MATCH (a:A), (b:B) WHERE a.x = b.y AND a.x > 0 RETURN a, b",
      "MATCH (a:A)-[:R]->(b) RETURN b AS t, count(*) AS c, sum(a.x) AS s",
      "MATCH (a:A) WHERE NOT exists((a)-[:S]->()) AND "
      "exists((a)-[:R]->()) RETURN a",
      "MATCH (a:A) RETURN a AS n UNION MATCH (b:B) RETURN b AS n",
      "MATCH (n:B) UNWIND n.tags AS t RETURN t, count(*) AS c",
      "MATCH (a:A)-[:R*1..3]->(b) RETURN a, b",
      "MATCH (a:A)-[r:R]-(b) RETURN a, b",
  };

  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = 911;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  EngineOptions on;
  on.network.propagation = GetParam();
  EngineOptions off = on;
  off.plan.canonicalize = false;
  QueryEngine engine_on(&graph, on);
  QueryEngine engine_off(&graph, off);
  std::vector<std::shared_ptr<View>> views_on;
  std::vector<std::shared_ptr<View>> views_off;
  for (const char* query : queries) {
    auto view_on = engine_on.Register(query);
    ASSERT_TRUE(view_on.ok()) << query << ": " << view_on.status();
    views_on.push_back(*view_on);
    auto view_off = engine_off.Register(query);
    ASSERT_TRUE(view_off.ok()) << query << ": " << view_off.status();
    views_off.push_back(*view_off);
  }

  for (int step = 0; step < 60; ++step) {
    if (step % 3 == 0) {
      graph.BeginBatch();
      for (int i = 0; i < 5; ++i) generator.ApplyRandomUpdate(&graph);
      graph.CommitBatch();
    } else {
      generator.ApplyRandomUpdate(&graph);
    }
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_EQ(views_on[q]->Snapshot(), views_off[q]->Snapshot())
          << queries[q] << " diverged at step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothStrategies, CanonicalizeParityTest,
                         ::testing::Values(PropagationStrategy::kEager,
                                           PropagationStrategy::kBatched),
                         [](const auto& info) {
                           return std::string(
                               PropagationStrategyName(info.param));
                         });

/// A conjunct whose variables the region does not bind must surface as a
/// validation error — never be silently dropped (a vanished filter is the
/// worst possible failure mode for a normalization pass).
TEST(Canonicalize, UnboundConjunctSurfacesValidationError) {
  OpPtr leaf = MakeOp(OpKind::kGetVertices);
  leaf->vertex_var = "a";
  ASSERT_TRUE(ComputeSchemaShallow(leaf).ok());
  OpPtr selection = MakeOp(OpKind::kSelection, {leaf});
  selection->predicate = MakeBinary(BinaryOp::kEq, MakeVariable("zz"),
                                    MakeLiteral(Value::Int(1)));
  selection->schema = leaf->schema;  // bypass validation, as a bug would
  Result<OpPtr> canon = CanonicalizePlan(selection);
  EXPECT_FALSE(canon.ok());
}

/// Fingerprint coverage: every sub-plan of every pool query must render a
/// non-empty canonical key — an empty key silently forfeits sharing for
/// the whole ancestor chain, so regressions here are invisible without
/// this lock.
TEST(Canonicalize, FingerprintCoversEveryPoolSubPlan) {
  const std::vector<const char*> queries = {
      "MATCH (a:A)-[r:R]->(b:B) RETURN a, r, b",
      "MATCH (a:A) OPTIONAL MATCH (a)-[r:R]->(b:B) RETURN a, b",
      "MATCH (a:A) WHERE NOT exists((a)-[:S]->()) RETURN a",
      "MATCH (n:B) UNWIND n.tags AS t RETURN t, count(*) AS c",
      "MATCH t = (a:A)-[:R*1..2]->(b:B) RETURN t",
      "MATCH (a:A) RETURN a AS n UNION MATCH (b:B) RETURN b AS n",
      "MATCH (n:A) RETURN CASE WHEN n.x > 2 THEN 'hi' ELSE 'lo' END AS b, "
      "count(*) AS c",
      "MATCH (n:A) WHERE any(v IN n.tags WHERE v = 1) RETURN n",
      "MATCH (a:A)-[:R]->(b) WITH b, count(*) AS c WHERE c > 1 RETURN b, c",
  };
  PropertyGraph graph;
  QueryEngine engine(&graph);
  for (const char* query : queries) {
    Result<OpPtr> plan = engine.Compile(query);
    ASSERT_TRUE(plan.ok()) << query << ": " << plan.status();
    std::vector<OpPtr> nodes;
    CollectPostOrder(*plan, nodes);
    for (const OpPtr& node : nodes) {
      EXPECT_FALSE(CanonicalPlanKey(*node).empty())
          << query << " has an unshareable sub-plan: "
          << node->DebugString();
    }
  }
}

}  // namespace
}  // namespace pgivm
