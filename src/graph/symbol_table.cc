#include "graph/symbol_table.h"

#include <cassert>

namespace pgivm {

SymbolId SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  assert(names_.size() < kNoSymbol && "symbol table full");
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

std::optional<SymbolId> SymbolTable::Lookup(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

size_t SymbolTable::ApproxMemoryBytes() const {
  size_t bytes = 0;
  for (const std::string& name : names_) {
    bytes += sizeof(std::string) + name.size();
  }
  // Index buckets + nodes (string_view key, id, hash, next pointer).
  bytes += index_.bucket_count() * sizeof(void*) +
           index_.size() * (sizeof(std::string_view) + sizeof(SymbolId) + 16);
  return bytes;
}

}  // namespace pgivm
