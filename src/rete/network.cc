#include "rete/network.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_set>

#include "support/string_util.h"

namespace pgivm {

const char* PropagationStrategyName(PropagationStrategy strategy) {
  switch (strategy) {
    case PropagationStrategy::kEager:
      return "eager";
    case PropagationStrategy::kBatched:
      return "batched";
  }
  return "?";
}

const char* ExecutorKindName(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kSerial:
      return "serial";
    case ExecutorKind::kParallel:
      return "parallel";
  }
  return "?";
}

ReteNetwork::~ReteNetwork() { Detach(); }

void ReteNetwork::SetProduction(ProductionNode* production) {
  production_ = production;
  if (production != nullptr &&
      std::find(productions_.begin(), productions_.end(), production) ==
          productions_.end()) {
    productions_.push_back(production);
  }
}

void ReteNetwork::set_propagation(PropagationStrategy strategy) {
  assert(attached_graph_ == nullptr &&
         "change the propagation strategy before Attach");
  if (attached_graph_ != nullptr) return;  // sinks are installed per Attach
  propagation_ = strategy;
}

void ReteNetwork::set_executor(ExecutorKind kind, int num_threads) {
  assert(attached_graph_ == nullptr && "change the executor before Attach");
  if (attached_graph_ != nullptr) return;  // the pool is built per Attach
  executor_ = kind;
  executor_threads_ = num_threads;
}

void ReteNetwork::set_thread_pool(std::shared_ptr<ThreadPool> pool) {
  assert(attached_graph_ == nullptr && "lend the pool before Attach");
  if (attached_graph_ != nullptr) return;
  shared_pool_ = std::move(pool);
}

void ReteNetwork::set_profiling(bool on) {
  profiling_ = on;
  // Nodes carry their own copy of the flag for the eager fan-out path;
  // nodes added later inherit it at Attach/PrimeNewNodes.
  for (const auto& node : nodes_) node->set_profiling(on);
  if (on && trace_ == nullptr) {
    trace_ = std::make_unique<TraceBuffer>(trace_capacity_);
  }
}

void ReteNetwork::set_metrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics == nullptr) {
    h_drain_ns_ = nullptr;
    h_translate_ns_ = nullptr;
    h_wave_ns_ = nullptr;
    h_barrier_ns_ = nullptr;
    h_drain_entries_ = nullptr;
    return;
  }
  // Resolved once so the profiling paths never take the registry mutex.
  h_drain_ns_ = &metrics->GetHistogram("propagation.drain_ns");
  h_translate_ns_ = &metrics->GetHistogram("propagation.translate_ns");
  h_wave_ns_ = &metrics->GetHistogram("propagation.wave_ns");
  h_barrier_ns_ = &metrics->GetHistogram("propagation.barrier_ns");
  h_drain_entries_ = &metrics->GetHistogram("propagation.drain_entries");
}

void ReteNetwork::Attach(PropertyGraph* graph) {
  assert(graph != nullptr);
  if (graph == nullptr) return;
  assert(production_ != nullptr && "Attach requires a production node");
  if (production_ == nullptr) return;
  if (attached_graph_ == graph) return;  // double-attach: no-op
  // The source nodes read the graph they were constructed over; attaching
  // the network to any other graph would prime from one store while
  // subscribing to another. Rejected before touching the current
  // attachment, so a bad call leaves the network in its previous state.
  assert((primed_graph_ == nullptr || primed_graph_ == graph) &&
         "a network can only be (re-)attached to the graph it was built "
         "over");
  if (primed_graph_ != nullptr && primed_graph_ != graph) return;
  if (attached_graph_ != nullptr) Detach();

  // A re-attach re-primes from scratch: wipe whatever the previous
  // attachment left in the node memories.
  if (primed_graph_ != nullptr) {
    for (const auto& node : nodes_) node->Reset();
  }
  primed_graph_ = graph;

  const bool batched = propagation_ == PropagationStrategy::kBatched;
  // The executor only affects batched wave scheduling; the eager cascade is
  // a depth-first recursion with no parallel unit. A resolved parallelism
  // of 1 keeps the serial fast path (no pool, no dispatch).
  if (batched && executor_ == ExecutorKind::kParallel) {
    int threads = ThreadPool::ResolveThreadCount(executor_threads_);
    if (threads > 1) {
      if (shared_pool_ != nullptr) {
        // The engine-wide pool (one per catalog, shared by every network
        // of the engine — sibling networks never drain concurrently, so
        // one pool serves them all).
        assert(shared_pool_->parallelism() == threads &&
               "lent pool sized differently from the resolved executor");
        pool_ = shared_pool_;
      } else if (pool_ == nullptr || pool_->parallelism() != threads) {
        pool_ = std::make_shared<ThreadPool>(threads);
      }
    } else {
      pool_.reset();
    }
  } else {
    pool_.reset();
  }
  if (batched) {
    PrepareScheduler();
  } else {
    // Drop any scheduler state a previous batched attachment left behind,
    // so node_level()/DebugString() don't report defunct levels.
    states_.clear();
    ready_by_level_.clear();
  }
  for (const auto& node : nodes_) {
    node->set_emit_sink(batched ? this : nullptr);
    node->set_profiling(profiling_);
  }
  // Under parallel waves, listener callbacks must not run on pool workers
  // (user code; two productions in one wave would fire concurrently) —
  // productions buffer them and the barrier flushes serially, in ready
  // order, preserving the serial executor's threading contract.
  for (ProductionNode* production : productions_) {
    production->set_defer_notifications(pool_ != nullptr);
  }

  attached_graph_ = graph;
  // Priming replays the whole graph content; it rebuilds every production
  // to its correct rows but is not an observable *change*, so listener
  // fan-out is silenced for the duration (results and chained emissions
  // are unaffected). This matters for catalog networks running with
  // incremental_priming disabled, where registering one more view
  // re-primes the views already being observed.
  for (ProductionNode* production : productions_) {
    production->set_notify_listeners(false);
  }
  buffering_ = true;
  for (const auto& node : nodes_) node->EmitInitial();
  for (GraphSourceNode* source : sources_) source->EmitInitialFromGraph();
  buffering_ = false;
  if (batched) {
    DrainWaves();  // publishes the primed state as a commit epoch
  } else {
    PublishEpochs();
  }
  for (ProductionNode* production : productions_) {
    production->set_notify_listeners(true);
  }
  graph->AddListener(this);
}

void ReteNetwork::Detach() {
  if (attached_graph_ == nullptr) return;
  attached_graph_->RemoveListener(this);
  attached_graph_ = nullptr;
}

void ReteNetwork::RemoveNodes(const std::vector<ReteNode*>& victims) {
  if (victims.empty()) return;
  assert(!draining_ && "cannot remove nodes mid-wave");
  std::unordered_set<const ReteNode*> gone(victims.begin(), victims.end());

  // Surviving upstream nodes must stop fanning out into freed memory.
  for (const auto& node : nodes_) {
    if (gone.count(node.get()) == 0) node->RemoveOutputsTo(gone);
  }

  auto is_gone = [&gone](const auto* ptr) { return gone.count(ptr) > 0; };
  sources_.erase(
      std::remove_if(sources_.begin(), sources_.end(),
                     [&](GraphSourceNode* source) {
                       // Sources are also ReteNodes; match via dynamic
                       // identity by scanning the victim set of node
                       // pointers (every registered source was Add()ed).
                       return gone.count(dynamic_cast<ReteNode*>(source)) > 0;
                     }),
      sources_.end());
  productions_.erase(std::remove_if(productions_.begin(), productions_.end(),
                                    [&](ProductionNode* p) {
                                      return is_gone(p);
                                    }),
                     productions_.end());
  if (production_ != nullptr && is_gone(production_)) {
    production_ = productions_.empty() ? nullptr : productions_.back();
  }
  for (const ReteNode* victim : gone) states_.erase(victim);
  nodes_.erase(std::remove_if(nodes_.begin(), nodes_.end(),
                              [&](const std::unique_ptr<ReteNode>& node) {
                                return is_gone(node.get());
                              }),
               nodes_.end());

  // Levels / scheduler state reference the old shape; recompute while the
  // network keeps maintaining (survivor memories are untouched).
  if (attached_graph_ != nullptr &&
      propagation_ == PropagationStrategy::kBatched) {
    PrepareScheduler();
  }
}

void ReteNetwork::OnGraphDelta(const GraphDelta& delta) {
  deltas_processed_.fetch_add(1, std::memory_order_relaxed);
  changes_processed_.fetch_add(static_cast<int64_t>(delta.changes.size()),
                               std::memory_order_relaxed);
  const bool prof = profiling_;
  const int64_t start_ns = prof ? MonotonicNowNs() : 0;
  // Eager: each HandleChange cascades depth-first on its own. Batched: the
  // emit sinks buffer the sources' relational deltas while the *entire*
  // graph delta is translated, and DrainWaves then moves them through the
  // network level by level, one consolidated delta per (node, port).
  buffering_ = true;
  for (const GraphChange& change : delta.changes) {
    for (GraphSourceNode* source : sources_) {
      source->HandleChange(change);
    }
  }
  buffering_ = false;
  if (prof) {
    // Under kBatched this span is pure source translation (delivery is
    // deferred to DrainWaves); under kEager the depth-first cascades run
    // inside HandleChange, so it covers the whole propagation.
    const int64_t end_ns = MonotonicNowNs();
    const bool eager = propagation_ == PropagationStrategy::kEager;
    if (h_translate_ns_ != nullptr && !eager) {
      h_translate_ns_->Record(end_ns - start_ns);
    }
    if (eager && h_drain_ns_ != nullptr) h_drain_ns_->Record(end_ns - start_ns);
    if (trace_ != nullptr) {
      TraceEvent event;
      event.name = eager ? "cascade" : "translate";
      event.start_ns = start_ns;
      event.dur_ns = end_ns - start_ns;
      event.args = StrCat("\"changes\":", delta.changes.size());
      trace_->Append(std::move(event));
    }
  }
  if (propagation_ == PropagationStrategy::kBatched) {
    DrainWaves();  // publishes the commit epoch at its end
  } else {
    PublishEpochs();  // eager cascade already ran to quiescence
  }
}

void ReteNetwork::OnEmit(ReteNode* from, Delta delta) {
  NodeState& state = states_.at(from);
  if (state.out.empty()) {
    state.out = std::move(delta);
  } else {
    state.out.insert(state.out.end(),
                     std::make_move_iterator(delta.begin()),
                     std::make_move_iterator(delta.end()));
  }
  EnqueueReady(from, state);
  // An emission outside this network's own translate/drain cycle means one
  // of our nodes was fed externally (chained views: another network
  // delivering into us). Drain immediately so chained results never go
  // stale waiting for our next graph delta.
  if (!buffering_ && !draining_) DrainWaves();
}

ReteNetwork::PendingDelta& ReteNetwork::PendingFor(NodeState& state,
                                                   int port) {
  auto it = state.pending.begin();
  while (it != state.pending.end() && it->first < port) ++it;
  if (it == state.pending.end() || it->first != port) {
    it = state.pending.emplace(it, port, PendingDelta{});
  }
  return it->second;
}

void ReteNetwork::PrepareScheduler() {
  states_.clear();
  states_.reserve(nodes_.size());
  // Every node reachable through the output wiring gets scheduler state —
  // including subscribers the network does not own (chained views, test
  // probes), discovered transitively: they have no sink installed, so what
  // they emit cascades eagerly, but the nodes *they* feed must still be
  // levelled above them or a wave could enqueue into an already-drained
  // level bucket.
  std::vector<ReteNode*> reachable;
  reachable.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    states_[node.get()].owned = true;
    reachable.push_back(node.get());
  }
  for (size_t i = 0; i < reachable.size(); ++i) {
    for (const auto& [down, port] : reachable[i]->outputs()) {
      (void)port;
      if (states_.emplace(down, NodeState{}).second) reachable.push_back(down);
    }
  }
  // Relax levels to a fixpoint: level(downstream) > level(upstream). Nodes
  // are added bottom-up so one pass normally suffices; the loop guards
  // against exotic wiring orders (and rejects cycles without hanging).
  int max_level = 0;
  bool changed = true;
  size_t rounds = 0;
  while (changed) {
    changed = false;
    ++rounds;
    assert(rounds <= reachable.size() + 1 && "cycle in the Rete network");
    if (rounds > reachable.size() + 1) break;  // cycle: fail bounded
    for (ReteNode* node : reachable) {
      int level = states_.at(node).level;
      for (const auto& [down, port] : node->outputs()) {
        (void)port;
        NodeState& dst = states_.at(down);
        if (dst.level < level + 1) {
          dst.level = level + 1;
          max_level = std::max(max_level, dst.level);
          changed = true;
        }
      }
    }
  }
  ready_by_level_.assign(static_cast<size_t>(max_level) + 1, {});
}

void ReteNetwork::EnqueueReady(ReteNode* node, NodeState& state) {
  if (state.queued) return;
  state.queued = true;
  ready_by_level_[static_cast<size_t>(state.level)].push_back(node);
}

void ReteNetwork::DeliverPending(ReteNode* node, NodeState& state) {
  // With profiling on, the node's own wall time and consolidated in/out
  // volumes are sampled right here — the single place every batched
  // delivery funnels through, whether it runs on the draining thread or on
  // one pool worker (single writer per node either way, so the NodeState
  // scratch fields need no synchronization; the pool join is the barrier).
  const bool prof = profiling_;
  const int64_t start_ns = prof ? MonotonicNowNs() : 0;
  int64_t in_entries = 0;
  for (auto& [port, pending] : state.pending) {
    if (!pending.clean) Consolidate(pending.delta, consolidation_cutoff_);
    if (prof) in_entries += static_cast<int64_t>(pending.delta.size());
    if (!pending.delta.empty()) node->OnDelta(port, pending.delta);
    // Empty in place (not pending.clear()): the slots and their Delta
    // buffers survive, so steady-state waves do not re-allocate.
    pending.delta.clear();
    pending.clean = false;
  }
  // Consolidating the response here (rather than in FlushNode) puts the
  // sort inside the parallel phase when the wave runs on the pool.
  Consolidate(state.out, consolidation_cutoff_);
  if (prof) {
    const int64_t dur_ns = MonotonicNowNs() - start_ns;
    state.prof_start_ns = start_ns;
    state.prof_dur_ns = dur_ns;
    state.prof_in_entries = in_entries;
    node->profile().RecordDelivery(
        in_entries, static_cast<int64_t>(state.out.size()), dur_ns);
  }
}

void ReteNetwork::FlushNode(ReteNode* node, NodeState& state) {
  if (state.out.empty()) return;
  node->AddEmittedEntries(static_cast<int64_t>(state.out.size()));
  const auto& outputs = node->outputs();
  for (size_t i = 0; i < outputs.size(); ++i) {
    const auto& [down, port] = outputs[i];
    auto dst_it = states_.find(down);
    if (dst_it == states_.end()) {
      // Subscriber wired after Attach (no scheduler state): deliver
      // directly, eager-style.
      down->OnDelta(port, state.out);
      continue;
    }
    NodeState& dst = dst_it->second;
    PendingDelta& pending = PendingFor(dst, port);
    if (pending.delta.empty()) {
      // Single consolidated flush: swap (for the last subscriber) and mark
      // clean so delivery skips re-consolidation. A swap rather than a
      // move, so the pending slot's previous-wave buffer comes back as the
      // node's staging buffer instead of being freed — steady-state waves
      // recycle capacity in both directions.
      if (i + 1 == outputs.size()) {
        std::swap(pending.delta, state.out);
      } else {
        pending.delta = state.out;
      }
      pending.clean = true;
    } else {
      pending.delta.insert(pending.delta.end(), state.out.begin(),
                           state.out.end());
      pending.clean = false;
    }
    EnqueueReady(down, dst);
  }
  state.out.clear();
}

size_t ReteNetwork::WaveQueuedEntries(
    const std::vector<ReteNode*>& ready) const {
  size_t entries = 0;
  for (const ReteNode* node : ready) {
    const NodeState& state = states_.at(node);
    for (const auto& [port, pending] : state.pending) {
      (void)port;
      entries += pending.delta.size();
    }
  }
  return entries;
}

void ReteNetwork::DrainWaves() {
  draining_ = true;
  const bool parallel = pool_ != nullptr;
  const bool prof = profiling_;
  const int64_t drain_start_ns = prof ? MonotonicNowNs() : 0;
  int64_t drain_waves = 0;
  int64_t drain_entries = 0;
  for (size_t level = 0; level < ready_by_level_.size(); ++level) {
    std::vector<ReteNode*>& ready = ready_by_level_[level];
    // Appends only target strictly higher levels, so iterating by index
    // while lower levels flush into this one is safe; a level never grows
    // while it is being drained.
    if (ready.empty()) continue;
    //
    // Work-size gate: near-empty waves (single-change steady state) run
    // inline — waking the pool costs more than delivering a handful of
    // entries. Bit-parity is unaffected; only *where* delivery runs moves.
    // (With profiling on, the queue depth is measured for every wave — it
    // is also the wave's trace annotation.)
    const bool gate_needs_entries =
        parallel && ready.size() > 1 && parallel_min_wave_entries_ > 0;
    const size_t queued_entries = (prof || gate_needs_entries)
                                      ? WaveQueuedEntries(ready)
                                      : 0;
    const bool wave_parallel =
        parallel && ready.size() > 1 &&
        (parallel_min_wave_entries_ == 0 ||
         queued_entries >= parallel_min_wave_entries_);
    const int64_t wave_start_ns = prof ? MonotonicNowNs() : 0;
    if (wave_parallel) {
      // Phase 1 — the wave's owned nodes run data-parallel. Each node is
      // claimed by exactly one worker, so node memories and the per-node
      // staging slot (state.out) are single-writer; OnEmit under a live
      // wave only appends to the emitting node's own slot (the node is
      // already queued, so no ready-list mutation). Foreign subscribers
      // (no sink) would cascade eagerly into other nodes, so they stay
      // out of this phase and run at the barrier below.
      wave_scratch_.clear();
      for (ReteNode* node : ready) {
        if (states_.at(node).owned) wave_scratch_.push_back(node);
      }
      if (wave_scratch_.size() > 1) {
        parallel_waves_dispatched_.fetch_add(1, std::memory_order_relaxed);
        pool_->Run(wave_scratch_.size(), [this](size_t i) {
          ReteNode* node = wave_scratch_[i];
          DeliverPending(node, states_.at(node));
        });
      } else if (!wave_scratch_.empty()) {
        DeliverPending(wave_scratch_[0], states_.at(wave_scratch_[0]));
      }
    }
    // Phase 2 — the barrier merge: flush every node's staged output
    // downstream in ready order, exactly the sequence the serial drain
    // produces, so pending queues (and with them every delivered delta)
    // are bit-identical regardless of thread count. Nodes phase 1 did not
    // deliver (serial waves; foreign nodes, whose eager cascade must not
    // run on a worker) run their delivery here, in their ready position.
    const int64_t barrier_start_ns = prof ? MonotonicNowNs() : 0;
    const size_t wave_nodes = ready.size();
    for (size_t i = 0; i < ready.size(); ++i) {
      ReteNode* node = ready[i];
      NodeState& state = states_.at(node);
      if (!wave_parallel || !state.owned) DeliverPending(node, state);
      if (prof && trace_ != nullptr &&
          (state.prof_in_entries > 0 || !state.out.empty())) {
        // One slice per node that did work this wave. Under a parallel
        // wave the slices of one level overlap in time (they ran on
        // different workers); they are appended here, at the serial
        // barrier, so the buffer itself stays single-writer.
        TraceEvent event;
        event.name = node->KindName();
        event.category = "node";
        event.start_ns = state.prof_start_ns;
        event.dur_ns = state.prof_dur_ns;
        event.tid = 2;
        event.args = StrCat("\"in\":", state.prof_in_entries,
                            ",\"out\":", state.out.size(),
                            ",\"level\":", state.level);
        trace_->Append(std::move(event));
      }
      FlushNode(node, state);
      node->OnWaveBarrier();  // deferred listener notifications etc.
      // Cleared only after the flush: emissions from the node's own wave
      // must not re-enqueue it (nothing new can arrive at this level).
      state.queued = false;
    }
    ready.clear();
    if (prof) {
      const int64_t wave_end_ns = MonotonicNowNs();
      ++drain_waves;
      drain_entries += static_cast<int64_t>(queued_entries);
      if (h_wave_ns_ != nullptr) {
        h_wave_ns_->Record(wave_end_ns - wave_start_ns);
      }
      if (h_barrier_ns_ != nullptr) {
        h_barrier_ns_->Record(wave_end_ns - barrier_start_ns);
      }
      if (trace_ != nullptr) {
        TraceEvent event;
        event.name = "wave";
        event.start_ns = wave_start_ns;
        event.dur_ns = wave_end_ns - wave_start_ns;
        event.args = StrCat("\"level\":", level, ",\"nodes\":", wave_nodes,
                            ",\"queued\":", queued_entries,
                            ",\"parallel\":", wave_parallel ? 1 : 0);
        trace_->Append(std::move(event));
      }
    }
  }
  // Safety net for productions fed through FlushNode's direct (non-
  // scheduled) delivery branch: they buffer notifications without ever
  // entering a ready list, so no per-wave barrier reaches them. No-op for
  // productions with nothing buffered.
  if (parallel) {
    for (ProductionNode* production : productions_) {
      production->OnWaveBarrier();
    }
  }
  draining_ = false;
  if (prof) {
    const int64_t drain_end_ns = MonotonicNowNs();
    if (h_drain_ns_ != nullptr) {
      h_drain_ns_->Record(drain_end_ns - drain_start_ns);
    }
    if (h_drain_entries_ != nullptr) h_drain_entries_->Record(drain_entries);
    if (trace_ != nullptr) {
      TraceEvent event;
      event.name = "drain";
      event.start_ns = drain_start_ns;
      event.dur_ns = drain_end_ns - drain_start_ns;
      event.args = StrCat("\"waves\":", drain_waves,
                          ",\"entries\":", drain_entries);
      trace_->Append(std::move(event));
    }
  }
  // The network is quiescent and every result bag is consistent: commit.
  PublishEpochs();
}

void ReteNetwork::PublishEpochs() {
  const uint64_t epoch =
      commit_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  int64_t published = 0;
  for (ProductionNode* production : productions_) {
    if (production->PublishSnapshot(epoch, epoch_retention_)) ++published;
  }
  if (published > 0) {
    epochs_published_.fetch_add(published, std::memory_order_relaxed);
  }
}

namespace {

/// Collects everything a node emits while its output is reconstructed for
/// replay (stateless transforms pushed through OnDelta).
class CapturingSink : public EmitSink {
 public:
  explicit CapturingSink(Delta* out) : out_(out) {}
  void OnEmit(ReteNode* from, Delta delta) override {
    (void)from;
    out_->insert(out_->end(), std::make_move_iterator(delta.begin()),
                 std::make_move_iterator(delta.end()));
  }

 private:
  Delta* out_;
};

/// Swaps a node's emit sink for the capture and restores the original on
/// scope exit (nested reconstructions each save their own).
class ScopedSink {
 public:
  ScopedSink(ReteNode* node, EmitSink* sink)
      : node_(node), saved_(node->emit_sink()) {
    node_->set_emit_sink(sink);
  }
  ~ScopedSink() { node_->set_emit_sink(saved_); }

 private:
  ReteNode* node_;
  EmitSink* saved_;
};

}  // namespace

ReteNetwork::InputsMap ReteNetwork::BuildInputsMap(
    const std::vector<ReteNode*>& scope) const {
  InputsMap inputs;
  for (ReteNode* node : scope) {
    for (const auto& [down, port] : node->outputs()) {
      inputs[down].emplace_back(node, port);
    }
  }
  return inputs;
}

const Delta& ReteNetwork::CurrentOutputOf(
    ReteNode* node, const std::vector<ReteNode*>& scope, InputsMap& inputs,
    bool& inputs_built, std::unordered_map<ReteNode*, Delta>& memo) {
  auto it = memo.find(node);
  if (it != memo.end()) return it->second;
  Delta out;
  if (!node->ReplayOutput(out)) {
    // Stateless transform: its output is not materialized anywhere, so
    // reconstruct it by pulling each input's current content (recursively;
    // every upstream of a reused node is itself reused and thus primed)
    // and pushing it through OnDelta under a capturing sink. Safe because
    // stateless nodes mutate no memory and the capture keeps the emission
    // away from the node's real consumers.
    if (!inputs_built) {
      inputs = BuildInputsMap(scope);
      inputs_built = true;
    }
    auto in_it = inputs.find(node);
    if (in_it != inputs.end()) {
      // Copied so the iteration doesn't alias `inputs` across recursion.
      std::vector<std::pair<ReteNode*, int>> ports = in_it->second;
      for (const auto& [upstream, port] : ports) {
        const Delta& content =
            CurrentOutputOf(upstream, scope, inputs, inputs_built, memo);
        CapturingSink capture(&out);
        ScopedSink scoped(node, &capture);
        node->OnDelta(port, content);
      }
    }
  }
  // unordered_map mapped references are stable across rehashes, so the
  // returned reference survives later insertions by the caller's loop.
  return memo.emplace(node, std::move(out)).first->second;
}

Delta ReteNetwork::ReplayOutputOf(ReteNode* node) {
  // Diagnostics entry point: no view scope in hand, so allow the walk to
  // consult the whole network's wiring.
  std::vector<ReteNode*> scope;
  scope.reserve(nodes_.size());
  for (const auto& owned : nodes_) scope.push_back(owned.get());
  InputsMap inputs;
  bool inputs_built = false;
  std::unordered_map<ReteNode*, Delta> memo;
  return CurrentOutputOf(node, scope, inputs, inputs_built, memo);
}

ReteNetwork::PrimeStats ReteNetwork::PrimeNewNodes(
    const std::vector<ReteNode*>& fresh_nodes,
    const std::vector<ReplayEdge>& replay_edges,
    const std::vector<ReteNode*>& replay_scope) {
  PrimeStats stats;
  stats.fresh_nodes = fresh_nodes.size();
  stats.replay_edges = replay_edges.size();
  assert(attached_graph_ != nullptr &&
         "PrimeNewNodes requires an attached, maintaining network");
  if (attached_graph_ == nullptr) return stats;
  assert(!buffering_ && !draining_ && "prime only between graph deltas");

  const bool batched = propagation_ == PropagationStrategy::kBatched;
  // The fresh nodes were wired after the last Attach: give them the same
  // runtime setup Attach gives every node (emit sink; deferred listener
  // notifications under a parallel pool) and rebuild the scheduler so they
  // have levels and state. The network is quiescent — every pending queue
  // is empty — so rebuilding cannot drop sibling deltas.
  for (ReteNode* node : fresh_nodes) {
    node->set_emit_sink(batched ? this : nullptr);
    node->set_profiling(profiling_);
  }
  for (ProductionNode* production : productions_) {
    production->set_defer_notifications(pool_ != nullptr);
  }
  if (batched) PrepareScheduler();

  std::vector<GraphSourceNode*> fresh_sources;
  std::vector<std::pair<ReteNode*, int64_t>> source_baseline;
  for (ReteNode* node : fresh_nodes) {
    if (auto* source = dynamic_cast<GraphSourceNode*>(node)) {
      fresh_sources.push_back(source);
      source_baseline.emplace_back(node, node->emitted_entries());
    }
  }
  stats.primed_sources = fresh_sources.size();

  // Priming rebuilds the new consumers to their steady state; it is not an
  // observable *change* to any view, so listener fan-out stays silent —
  // same contract as Attach priming. (Reused nodes emit nothing here, so
  // sibling productions receive no deltas anyway; the suppression is the
  // defense against replay reaching a production through a chained view.)
  for (ProductionNode* production : productions_) {
    production->set_notify_listeners(false);
  }
  buffering_ = true;
  // Structural initial output, then graph content — the Attach order, but
  // restricted to the registration's own nodes. Fresh nodes only feed
  // fresh nodes (a consumer wired now cannot be older than its wiring), so
  // the cascade/drain below never touches a sibling's memories.
  for (ReteNode* node : fresh_nodes) node->EmitInitial();
  for (GraphSourceNode* source : fresh_sources) {
    source->EmitInitialFromGraph();
  }

  // Memory replay: each reused node delivers its materialized output into
  // just the newly attached consumer — the graph is never re-read for
  // sub-plans another view already primed.
  InputsMap inputs;
  bool inputs_built = false;
  std::unordered_map<ReteNode*, Delta> memo;
  for (const ReplayEdge& edge : replay_edges) {
    const Delta& delta =
        CurrentOutputOf(edge.from, replay_scope, inputs, inputs_built, memo);
    stats.replayed_entries += static_cast<int64_t>(delta.size());
    if (delta.empty()) continue;
    if (batched) {
      NodeState& dst = states_.at(edge.to);
      PendingDelta& pending = PendingFor(dst, edge.port);
      pending.delta.insert(pending.delta.end(), delta.begin(), delta.end());
      pending.clean = false;  // replay order is not canonical
      EnqueueReady(edge.to, dst);
    } else {
      edge.to->OnDelta(edge.port, delta);
    }
  }
  buffering_ = false;
  if (batched) {
    DrainWaves();  // publishes the newly primed view's first epoch
  } else {
    PublishEpochs();
  }
  for (ProductionNode* production : productions_) {
    production->set_notify_listeners(true);
  }
  for (const auto& [node, before] : source_baseline) {
    stats.graph_primed_entries += node->emitted_entries() - before;
  }
  return stats;
}

int ReteNetwork::node_level(const ReteNode* node) const {
  auto it = states_.find(node);
  return it == states_.end() ? -1 : it->second.level;
}

int64_t ReteNetwork::TotalEmittedEntries() const {
  int64_t total = 0;
  for (const auto& node : nodes_) total += node->emitted_entries();
  return total;
}

int64_t ReteNetwork::SourceEmittedEntries() const {
  int64_t total = 0;
  for (const GraphSourceNode* source : sources_) {
    if (const auto* node = dynamic_cast<const ReteNode*>(source)) {
      total += node->emitted_entries();
    }
  }
  return total;
}

size_t ReteNetwork::ApproxMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& node : nodes_) bytes += node->ApproxMemoryBytes();
  return bytes;
}

std::vector<ReteNetwork::NodeMetrics> ReteNetwork::NodeMetricsSnapshot()
    const {
  std::vector<NodeMetrics> rows;
  rows.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    NodeMetrics row;
    row.name = node->DebugString();
    row.kind = node->KindName();
    row.level = node_level(node.get());
    row.emitted_entries = node->emitted_entries();
    const NodeProfile& profile = node->profile();
    row.activations = profile.activations.load(std::memory_order_relaxed);
    row.input_entries = profile.input_entries.load(std::memory_order_relaxed);
    row.output_entries =
        profile.output_entries.load(std::memory_order_relaxed);
    row.busy_ns = profile.busy_ns.load(std::memory_order_relaxed);
    row.last_ns = profile.last_ns.load(std::memory_order_relaxed);
    row.memory_bytes = node->ApproxMemoryBytes();
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string ReteNetwork::DebugString() const {
  std::ostringstream os;
  os << "propagation=" << PropagationStrategyName(propagation_)
     << " executor=" << ExecutorKindName(executor_);
  if (pool_ != nullptr) os << "(" << pool_->parallelism() << ")";
  os << "\n";
  for (const auto& node : nodes_) {
    os << node->DebugString();
    int level = node_level(node.get());
    if (level >= 0) os << "  level=" << level;
    os << "  mem=" << node->ApproxMemoryBytes()
       << "B emitted=" << node->emitted_entries() << "\n";
  }
  return os.str();
}

}  // namespace pgivm
