#include "workload/social_network.h"

#include <algorithm>
#include <cmath>

#include "support/string_util.h"

namespace pgivm {

SocialNetworkConfig SocialNetworkConfig::AtScale(double sf, uint64_t seed) {
  if (sf < 0.0) sf = 0.0;
  SocialNetworkConfig config;
  config.scale_factor = sf;
  config.seed = seed;
  config.persons =
      std::max<int64_t>(10, static_cast<int64_t>(std::llround(1000.0 * sf)));
  const int64_t log_term =
      static_cast<int64_t>(std::llround(std::log2(1.0 + sf)));
  config.posts_per_person = 2;
  config.comments_per_post = 4 + 2 * log_term;
  config.max_reply_depth = 4 + log_term;
  config.knows_per_person = 3 + 2 * log_term;
  return config;
}

const std::vector<std::string>& SocialNetworkGenerator::Languages() {
  static const auto* langs = new std::vector<std::string>{
      "en", "de", "fr", "hu", "es", "nl", "pt", "it"};
  return *langs;
}

std::string SocialNetworkGenerator::RandomLanguage(Rng& rng) {
  return Languages()[rng.NextBelow(Languages().size())];
}

VertexId SocialNetworkGenerator::RandomMessage(Rng& rng) {
  size_t total = posts_.size() + comments_.size();
  size_t i = rng.NextBelow(total);
  return i < posts_.size() ? posts_[i] : comments_[i - posts_.size()];
}

VertexId SocialNetworkGenerator::AddReply(Rng& rng, PropertyGraph* graph,
                                          VertexId parent) {
  VertexId comment = graph->AddVertex(
      {"Comm"},
      {{"lang", Value::String(RandomLanguage(rng))},
       {"length", Value::Int(rng.NextInRange(5, 500))}});
  comments_.push_back(comment);
  (void)graph->AddEdge(parent, comment, "REPLY").value();
  if (!persons_.empty()) {
    VertexId author = persons_[rng.NextBelow(persons_.size())];
    (void)graph->AddEdge(comment, author, "HAS_CREATOR").value();
  }
  return comment;
}

void SocialNetworkGenerator::Populate(PropertyGraph* graph) {
  graph->BeginBatch();
  for (int64_t i = 0; i < config_.persons; ++i) {
    ValueList speaks;
    size_t language_count = 1 + rng_.NextBelow(3);
    for (size_t l = 0; l < language_count; ++l) {
      speaks.push_back(Value::String(RandomLanguage(rng_)));
    }
    std::sort(speaks.begin(), speaks.end());
    speaks.erase(std::unique(speaks.begin(), speaks.end()), speaks.end());
    persons_.push_back(graph->AddVertex(
        {"Person"},
        {{"name", Value::String(StrCat("person", i))},
         {"country",
          Value::Int(static_cast<int64_t>(rng_.NextBelow(20)))},
         {"speaks", Value::List(std::move(speaks))}}));
  }
  graph->CommitBatch();

  graph->BeginBatch();
  for (VertexId person : persons_) {
    // Heavy-tailed friendship degree: most persons get the base degree, a
    // hub_fraction slice gets hub_degree_multiplier times as many — the
    // celebrity shape a Zipf-ish social graph has.
    int64_t degree = config_.knows_per_person;
    if (rng_.NextBool(config_.hub_fraction)) {
      degree *= std::max<int64_t>(1, config_.hub_degree_multiplier);
    }
    for (int64_t k = 0; k < degree; ++k) {
      VertexId other = persons_[rng_.NextBelow(persons_.size())];
      if (other == person) continue;
      (void)graph->AddEdge(person, other, "KNOWS").value();
    }
  }
  graph->CommitBatch();

  graph->BeginBatch();
  for (VertexId person : persons_) {
    for (int64_t p = 0; p < config_.posts_per_person; ++p) {
      VertexId post = graph->AddVertex(
          {"Post"},
          {{"lang", Value::String(RandomLanguage(rng_))},
           {"length", Value::Int(rng_.NextInRange(10, 2000))}});
      posts_.push_back(post);
      (void)graph->AddEdge(post, person, "HAS_CREATOR").value();
    }
  }
  graph->CommitBatch();

  graph->BeginBatch();
  for (VertexId post : posts_) {
    // Grow a reply tree below the post: each comment replies either to the
    // post or to an earlier comment in the same tree (bounded depth).
    std::vector<std::pair<VertexId, int64_t>> frontier{{post, 0}};
    for (int64_t c = 0; c < config_.comments_per_post; ++c) {
      auto [parent, depth] = frontier[rng_.NextBelow(frontier.size())];
      if (depth >= config_.max_reply_depth) continue;
      VertexId comment = AddReply(rng_, graph, parent);
      frontier.emplace_back(comment, depth + 1);
    }
  }
  graph->CommitBatch();

  graph->BeginBatch();
  for (VertexId post : posts_) {
    // like_probability is the expected LIKES per message: draw the integer
    // part outright and the fractional part as one Bernoulli trial, so
    // population cost is O(posts), not O(persons x posts).
    double expected = std::max(0.0, config_.like_probability);
    int64_t likes = static_cast<int64_t>(expected);
    if (rng_.NextBool(expected - static_cast<double>(likes))) ++likes;
    for (int64_t l = 0; l < likes && !persons_.empty(); ++l) {
      VertexId person = persons_[rng_.NextBelow(persons_.size())];
      (void)graph->AddEdge(person, post, "LIKES").value();
    }
  }
  graph->CommitBatch();
}

void SocialNetworkGenerator::ApplyRandomUpdate(PropertyGraph* graph) {
  ApplyUpdateWith(rng_, graph);
}

void SocialNetworkGenerator::ApplyUpdate(PropertyGraph* graph,
                                         uint64_t op_seed) {
  Rng rng(op_seed);
  ApplyUpdateWith(rng, graph);
}

void SocialNetworkGenerator::ApplyUpdateWith(Rng& rng, PropertyGraph* graph) {
  uint64_t pick = rng.NextBelow(100);
  // Open a batch only when the caller has not: callers compose several
  // updates into one atomic delta by wrapping calls in BeginBatch/
  // CommitBatch themselves (batches do not nest).
  const bool own_batch = !graph->in_batch();
  if (own_batch) graph->BeginBatch();
  if (pick < 35) {
    // New reply comment under a random message.
    AddReply(rng, graph, RandomMessage(rng));
  } else if (pick < 50) {
    // Language flip on a random message (touches maintained predicates).
    VertexId message = RandomMessage(rng);
    (void)graph->SetVertexProperty(message, "lang",
                                   Value::String(RandomLanguage(rng)));
  } else if (pick < 65 && !persons_.empty()) {
    // New like.
    VertexId person = persons_[rng.NextBelow(persons_.size())];
    (void)graph->AddEdge(person, RandomMessage(rng), "LIKES");
  } else if (pick < 75 && persons_.size() >= 2) {
    // New knows edge.
    VertexId a = persons_[rng.NextBelow(persons_.size())];
    VertexId b = persons_[rng.NextBelow(persons_.size())];
    if (a != b) (void)graph->AddEdge(a, b, "KNOWS");
  } else if (pick < 85 && !persons_.empty()) {
    // Fine-grained profile update: append or remove a spoken language.
    VertexId person = persons_[rng.NextBelow(persons_.size())];
    std::string lang = RandomLanguage(rng);
    Value speaks = graph->GetVertexProperty(person, "speaks");
    bool has = false;
    if (speaks.is_list()) {
      for (const Value& v : speaks.AsList()) {
        if (v.is_string() && v.AsString() == lang) has = true;
      }
    }
    if (has && speaks.AsList().size() > 1) {
      (void)graph->ListRemoveFirst(person, "speaks", Value::String(lang));
    } else if (!has) {
      (void)graph->ListAppend(person, "speaks", Value::String(lang));
    }
  } else if (!comments_.empty()) {
    // Delete a random leaf comment (no replies below it).
    for (int attempt = 0; attempt < 8; ++attempt) {
      size_t i = rng.NextBelow(comments_.size());
      VertexId comment = comments_[i];
      if (!graph->HasVertex(comment)) continue;
      bool leaf = true;
      for (EdgeId e : graph->OutEdges(comment)) {
        if (graph->EdgeType(e) == "REPLY") leaf = false;
      }
      if (!leaf) continue;
      (void)graph->DetachRemoveVertex(comment);
      comments_.erase(comments_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  if (own_batch) graph->CommitBatch();
}

}  // namespace pgivm
