#include "rete/expression_eval.h"

#include <algorithm>
#include <cmath>

#include "support/string_util.h"
#include "value/path.h"

namespace pgivm {

namespace {

/// Three-valued logic values.
enum class Tri { kFalse, kTrue, kNull };

Tri ToTri(const Value& v) {
  if (v.is_null()) return Tri::kNull;
  if (v.is_bool()) return v.AsBool() ? Tri::kTrue : Tri::kFalse;
  // Non-boolean in a boolean position: treated as null (no exceptions).
  return Tri::kNull;
}

Value NumericBinary(BinaryOp op, const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    // `+` also concatenates strings and lists.
    if (op == BinaryOp::kAdd) {
      if (a.is_string() && b.is_string()) {
        return Value::String(a.AsString() + b.AsString());
      }
      if (a.is_list() && b.is_list()) {
        ValueList out = a.AsList();
        const ValueList& rhs = b.AsList();
        out.insert(out.end(), rhs.begin(), rhs.end());
        return Value::List(std::move(out));
      }
    }
    return Value::Null();
  }
  bool both_int = a.is_int() && b.is_int();
  if (both_int) {
    int64_t x = a.AsInt(), y = b.AsInt();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int(x + y);
      case BinaryOp::kSub:
        return Value::Int(x - y);
      case BinaryOp::kMul:
        return Value::Int(x * y);
      case BinaryOp::kDiv:
        if (y == 0) return Value::Null();
        return Value::Int(x / y);
      case BinaryOp::kMod:
        if (y == 0) return Value::Null();
        return Value::Int(x % y);
      default:
        return Value::Null();
    }
  }
  double x = a.NumericAsDouble(), y = b.NumericAsDouble();
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Double(x + y);
    case BinaryOp::kSub:
      return Value::Double(x - y);
    case BinaryOp::kMul:
      return Value::Double(x * y);
    case BinaryOp::kDiv:
      if (y == 0.0) return Value::Null();
      return Value::Double(x / y);
    case BinaryOp::kMod:
      if (y == 0.0) return Value::Null();
      return Value::Double(std::fmod(x, y));
    default:
      return Value::Null();
  }
}

/// Comparable type classes: comparisons across classes yield null (Cypher
/// leaves cross-type ordering to ORDER BY, which we do not maintain).
int TypeClass(const Value& v) {
  switch (v.type()) {
    case Value::Type::kBool:
      return 1;
    case Value::Type::kInt:
    case Value::Type::kDouble:
      return 2;
    case Value::Type::kString:
      return 3;
    case Value::Type::kList:
      return 4;
    case Value::Type::kMap:
      return 5;
    case Value::Type::kVertex:
      return 6;
    case Value::Type::kEdge:
      return 7;
    case Value::Type::kPath:
      return 8;
    case Value::Type::kNull:
      return 0;
  }
  return 0;
}

Value CompareValues(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  bool equality = op == BinaryOp::kEq || op == BinaryOp::kNe;
  if (TypeClass(a) != TypeClass(b)) {
    // Different classes: unequal under =/<>; incomparable under ordering.
    if (op == BinaryOp::kEq) return Value::Bool(false);
    if (op == BinaryOp::kNe) return Value::Bool(true);
    return Value::Null();
  }
  int c = Value::Compare(a, b);
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(c == 0);
    case BinaryOp::kNe:
      return Value::Bool(c != 0);
    case BinaryOp::kLt:
      return Value::Bool(c < 0);
    case BinaryOp::kLe:
      return Value::Bool(c <= 0);
    case BinaryOp::kGt:
      return Value::Bool(c > 0);
    case BinaryOp::kGe:
      return Value::Bool(c >= 0);
    default:
      break;
  }
  (void)equality;
  return Value::Null();
}

Value StringPredicate(BinaryOp op, const Value& a, const Value& b) {
  if (!a.is_string() || !b.is_string()) return Value::Null();
  switch (op) {
    case BinaryOp::kStartsWith:
      return Value::Bool(StartsWith(a.AsString(), b.AsString()));
    case BinaryOp::kEndsWith:
      return Value::Bool(EndsWith(a.AsString(), b.AsString()));
    case BinaryOp::kContains:
      return Value::Bool(Contains(a.AsString(), b.AsString()));
    default:
      return Value::Null();
  }
}

}  // namespace

namespace {

/// Scoped variable resolution: schema columns first, then comprehension
/// locals, which live in appended tuple slots (slot = schema width + depth).
ExprPtr BindRec(const ExprPtr& e, const Schema& schema,
                std::vector<std::string>& locals, Status& failure) {
  switch (e->kind) {
    case ExprKind::kVariable: {
      for (size_t i = locals.size(); i-- > 0;) {
        if (locals[i] == e->name) {
          return MakeColumnRef(static_cast<int>(schema.size() + i),
                               e->name);
        }
      }
      int idx = schema.IndexOf(e->name);
      if (idx < 0) {
        failure = Status::InvalidArgument(
            StrCat("unbound variable '", e->name, "' (scope ",
                   schema.ToString(), ")"));
        return e;
      }
      return MakeColumnRef(idx, e->name);
    }
    case ExprKind::kComprehension: {
      auto copy = std::make_shared<Expression>(*e);
      copy->children[0] = BindRec(e->children[0], schema, locals, failure);
      locals.push_back(e->name);
      copy->children[1] = BindRec(e->children[1], schema, locals, failure);
      copy->children[2] = BindRec(e->children[2], schema, locals, failure);
      locals.pop_back();
      return copy;
    }
    case ExprKind::kPatternPredicate:
      failure = Status::InvalidArgument(
          "exists(pattern) is only supported as a top-level WHERE "
          "condition (optionally under NOT)");
      return e;
    case ExprKind::kParameter:
      failure = Status::InvalidArgument(
          StrCat("unsubstituted parameter $", e->name,
                 "; pass parameter values at registration"));
      return e;
    default:
      break;
  }
  if (e->IsAggregateCall()) {
    failure = Status::Internal(StrCat("aggregate call '", e->ToString(),
                                      "' reached per-tuple evaluation"));
    return e;
  }
  if (e->children.empty()) return e;
  auto copy = std::make_shared<Expression>(*e);
  for (size_t i = 0; i < e->children.size(); ++i) {
    copy->children[i] = BindRec(e->children[i], schema, locals, failure);
  }
  return copy;
}

}  // namespace

Result<BoundExpression> BoundExpression::Bind(const ExprPtr& expr,
                                              const Schema& schema,
                                              const PropertyGraph* graph) {
  Status failure = Status::Ok();
  std::vector<std::string> locals;
  ExprPtr bound = BindRec(expr, schema, locals, failure);
  if (!failure.ok()) return failure;
  return BoundExpression(std::move(bound), &schema, graph);
}

Value BoundExpression::Eval(const Tuple& tuple) const {
  return EvalNode(*expr_, tuple);
}

Value BoundExpression::EvalNode(const Expression& e,
                                const Tuple& tuple) const {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef:
      return tuple.at(static_cast<size_t>(e.column));
    case ExprKind::kVariable:
      // Unresolved variable should not survive Bind; treat as null.
      return Value::Null();
    case ExprKind::kProperty: {
      Value subject = EvalNode(*e.children[0], tuple);
      if (subject.is_map()) {
        const ValueMap& map = subject.AsMap();
        auto it = map.find(e.name);
        return it == map.end() ? Value::Null() : it->second;
      }
      if (graph_ != nullptr) {
        // Baseline-evaluator path only (incremental plans push property
        // reads into source extracts). The string shim is one symbol
        // lookup + an O(1) column probe — allocation-free.
        if (subject.is_vertex() && graph_->HasVertex(subject.AsVertex())) {
          return graph_->GetVertexProperty(subject.AsVertex(), e.name);
        }
        if (subject.is_edge() && graph_->HasEdge(subject.AsEdge())) {
          return graph_->GetEdgeProperty(subject.AsEdge(), e.name);
        }
      }
      return Value::Null();
    }
    case ExprKind::kUnary:
      return EvalUnary(e, tuple);
    case ExprKind::kBinary:
      return EvalBinary(e, tuple);
    case ExprKind::kFunctionCall:
      return EvalFunction(e, tuple);
    case ExprKind::kListLiteral: {
      ValueList elements;
      elements.reserve(e.children.size());
      for (const ExprPtr& c : e.children) {
        elements.push_back(EvalNode(*c, tuple));
      }
      return Value::List(std::move(elements));
    }
    case ExprKind::kMapLiteral: {
      ValueMap entries;
      for (size_t i = 0; i < e.children.size(); ++i) {
        entries[e.map_keys[i]] = EvalNode(*e.children[i], tuple);
      }
      return Value::Map(std::move(entries));
    }
    case ExprKind::kCase: {
      // Children: [operand?] (when, then)* [else?]; operand presence in
      // `star`, else presence in `distinct` (see MakeCase).
      size_t i = 0;
      Value operand;
      if (e.star) operand = EvalNode(*e.children[i++], tuple);
      size_t pairs_end = e.children.size() - (e.distinct ? 1 : 0);
      while (i + 2 <= pairs_end) {
        Value when = EvalNode(*e.children[i], tuple);
        bool hit = e.star ? (!when.is_null() && !operand.is_null() &&
                             Value::Compare(when, operand) == 0)
                          : IsTrue(when);
        if (hit) return EvalNode(*e.children[i + 1], tuple);
        i += 2;
      }
      if (e.distinct) return EvalNode(*e.children.back(), tuple);
      return Value::Null();
    }
    case ExprKind::kPatternPredicate:
      // Rewritten into semi/anti-joins during compilation; unreachable at
      // evaluation time (Bind rejects it).
      return Value::Null();
    case ExprKind::kParameter:
      // Substituted at registration; unreachable (Bind rejects it).
      return Value::Null();
    case ExprKind::kComprehension: {
      Value list = EvalNode(*e.children[0], tuple);
      if (!list.is_list()) return Value::Null();
      const std::string& mode = e.map_keys[0];
      // The local variable occupies the next appended tuple slot; nested
      // comprehensions extend further, matching BindRec's slot numbering.
      if (mode == "list") {
        ValueList out;
        for (const Value& element : list.AsList()) {
          Tuple extended = tuple.Append(element);
          if (IsTrue(EvalNode(*e.children[1], extended))) {
            out.push_back(EvalNode(*e.children[2], extended));
          }
        }
        return Value::List(std::move(out));
      }
      int64_t trues = 0, falses = 0, nulls = 0;
      for (const Value& element : list.AsList()) {
        Tuple extended = tuple.Append(element);
        Value verdict = EvalNode(*e.children[1], extended);
        if (verdict.is_null()) {
          ++nulls;
        } else if (IsTrue(verdict)) {
          ++trues;
        } else {
          ++falses;
        }
      }
      // Three-valued quantifier semantics: null verdicts are "unknown".
      if (mode == "any") {
        if (trues > 0) return Value::Bool(true);
        return nulls > 0 ? Value::Null() : Value::Bool(false);
      }
      if (mode == "all") {
        if (falses > 0) return Value::Bool(false);
        return nulls > 0 ? Value::Null() : Value::Bool(true);
      }
      if (mode == "none") {
        if (trues > 0) return Value::Bool(false);
        return nulls > 0 ? Value::Null() : Value::Bool(true);
      }
      if (mode == "single") {
        if (trues > 1) return Value::Bool(false);
        if (nulls > 0) return Value::Null();
        return Value::Bool(trues == 1);
      }
      return Value::Null();
    }
  }
  return Value::Null();
}

Value BoundExpression::EvalUnary(const Expression& e,
                                 const Tuple& tuple) const {
  Value operand = EvalNode(*e.children[0], tuple);
  switch (e.unary_op) {
    case UnaryOp::kNot: {
      Tri t = ToTri(operand);
      if (t == Tri::kNull) return Value::Null();
      return Value::Bool(t == Tri::kFalse);
    }
    case UnaryOp::kMinus:
      if (operand.is_int()) return Value::Int(-operand.AsInt());
      if (operand.is_double()) return Value::Double(-operand.AsDouble());
      return Value::Null();
    case UnaryOp::kIsNull:
      return Value::Bool(operand.is_null());
    case UnaryOp::kIsNotNull:
      return Value::Bool(!operand.is_null());
  }
  return Value::Null();
}

Value BoundExpression::EvalBinary(const Expression& e,
                                  const Tuple& tuple) const {
  // Short-circuiting three-valued AND/OR.
  if (e.binary_op == BinaryOp::kAnd) {
    Tri a = ToTri(EvalNode(*e.children[0], tuple));
    if (a == Tri::kFalse) return Value::Bool(false);
    Tri b = ToTri(EvalNode(*e.children[1], tuple));
    if (b == Tri::kFalse) return Value::Bool(false);
    if (a == Tri::kNull || b == Tri::kNull) return Value::Null();
    return Value::Bool(true);
  }
  if (e.binary_op == BinaryOp::kOr) {
    Tri a = ToTri(EvalNode(*e.children[0], tuple));
    if (a == Tri::kTrue) return Value::Bool(true);
    Tri b = ToTri(EvalNode(*e.children[1], tuple));
    if (b == Tri::kTrue) return Value::Bool(true);
    if (a == Tri::kNull || b == Tri::kNull) return Value::Null();
    return Value::Bool(false);
  }
  if (e.binary_op == BinaryOp::kXor) {
    Tri a = ToTri(EvalNode(*e.children[0], tuple));
    Tri b = ToTri(EvalNode(*e.children[1], tuple));
    if (a == Tri::kNull || b == Tri::kNull) return Value::Null();
    return Value::Bool(a != b);
  }

  Value lhs = EvalNode(*e.children[0], tuple);
  Value rhs = EvalNode(*e.children[1], tuple);
  switch (e.binary_op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return CompareValues(e.binary_op, lhs, rhs);
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return NumericBinary(e.binary_op, lhs, rhs);
    case BinaryOp::kIn: {
      if (lhs.is_null() || !rhs.is_list()) return Value::Null();
      bool saw_null = false;
      for (const Value& element : rhs.AsList()) {
        if (element.is_null()) {
          saw_null = true;
        } else if (TypeClass(element) == TypeClass(lhs) &&
                   Value::Compare(element, lhs) == 0) {
          return Value::Bool(true);
        }
      }
      return saw_null ? Value::Null() : Value::Bool(false);
    }
    case BinaryOp::kStartsWith:
    case BinaryOp::kEndsWith:
    case BinaryOp::kContains:
      return StringPredicate(e.binary_op, lhs, rhs);
    case BinaryOp::kSubscript: {
      if (lhs.is_list() && rhs.is_int()) {
        int64_t i = rhs.AsInt();
        const ValueList& list = lhs.AsList();
        if (i < 0) i += static_cast<int64_t>(list.size());
        if (i < 0 || i >= static_cast<int64_t>(list.size())) {
          return Value::Null();
        }
        return list[static_cast<size_t>(i)];
      }
      if (lhs.is_map() && rhs.is_string()) {
        auto it = lhs.AsMap().find(rhs.AsString());
        return it == lhs.AsMap().end() ? Value::Null() : it->second;
      }
      return Value::Null();
    }
    default:
      return Value::Null();
  }
}

Value BoundExpression::EvalFunction(const Expression& e,
                                    const Tuple& tuple) const {
  std::vector<Value> args;
  args.reserve(e.children.size());
  for (const ExprPtr& c : e.children) args.push_back(EvalNode(*c, tuple));
  auto arg = [&args](size_t i) -> const Value& { return args[i]; };

  if (e.name == "id" && args.size() == 1) {
    if (arg(0).is_vertex()) return Value::Int(arg(0).AsVertex());
    if (arg(0).is_edge()) return Value::Int(arg(0).AsEdge());
    return Value::Null();
  }
  if (e.name == "coalesce") {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (e.name == "size" && args.size() == 1) {
    if (arg(0).is_list()) {
      return Value::Int(static_cast<int64_t>(arg(0).AsList().size()));
    }
    if (arg(0).is_map()) {
      return Value::Int(static_cast<int64_t>(arg(0).AsMap().size()));
    }
    if (arg(0).is_string()) {
      return Value::Int(static_cast<int64_t>(arg(0).AsString().size()));
    }
    return Value::Null();
  }
  if (e.name == "length" && args.size() == 1) {
    if (arg(0).is_path()) {
      return Value::Int(static_cast<int64_t>(arg(0).AsPath().length()));
    }
    if (arg(0).is_list()) {
      return Value::Int(static_cast<int64_t>(arg(0).AsList().size()));
    }
    if (arg(0).is_string()) {
      return Value::Int(static_cast<int64_t>(arg(0).AsString().size()));
    }
    return Value::Null();
  }
  if (e.name == "nodes" && args.size() == 1) {
    if (!arg(0).is_path()) return Value::Null();
    ValueList out;
    for (VertexId v : arg(0).AsPath().vertices()) {
      out.push_back(Value::Vertex(v));
    }
    return Value::List(std::move(out));
  }
  if (e.name == "relationships" && args.size() == 1) {
    if (!arg(0).is_path()) return Value::Null();
    ValueList out;
    for (EdgeId edge : arg(0).AsPath().edges()) {
      out.push_back(Value::Edge(edge));
    }
    return Value::List(std::move(out));
  }
  if (e.name == "head" && args.size() == 1) {
    if (!arg(0).is_list() || arg(0).AsList().empty()) return Value::Null();
    return arg(0).AsList().front();
  }
  if (e.name == "last" && args.size() == 1) {
    if (!arg(0).is_list() || arg(0).AsList().empty()) return Value::Null();
    return arg(0).AsList().back();
  }
  if (e.name == "abs" && args.size() == 1) {
    if (arg(0).is_int()) return Value::Int(std::abs(arg(0).AsInt()));
    if (arg(0).is_double()) return Value::Double(std::fabs(arg(0).AsDouble()));
    return Value::Null();
  }
  if (e.name == "tostring" && args.size() == 1) {
    if (arg(0).is_null()) return Value::Null();
    if (arg(0).is_string()) return arg(0);
    return Value::String(arg(0).ToString());
  }
  if (e.name == "tolower" && args.size() == 1) {
    if (!arg(0).is_string()) return Value::Null();
    return Value::String(AsciiLower(arg(0).AsString()));
  }
  if (e.name == "toupper" && args.size() == 1) {
    if (!arg(0).is_string()) return Value::Null();
    std::string s = arg(0).AsString();
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
      return static_cast<char>(std::toupper(c));
    });
    return Value::String(std::move(s));
  }
  if (e.name == "keys" && args.size() == 1) {
    if (!arg(0).is_map()) return Value::Null();
    ValueList out;
    for (const auto& [k, v] : arg(0).AsMap()) {
      out.push_back(Value::String(k));
      (void)v;
    }
    return Value::List(std::move(out));
  }
  if (e.name == "tail" && args.size() == 1) {
    if (!arg(0).is_list() || arg(0).AsList().empty()) return Value::Null();
    const ValueList& list = arg(0).AsList();
    return Value::List(ValueList(list.begin() + 1, list.end()));
  }
  if (e.name == "reverse" && args.size() == 1) {
    if (arg(0).is_string()) {
      std::string s = arg(0).AsString();
      std::reverse(s.begin(), s.end());
      return Value::String(std::move(s));
    }
    if (arg(0).is_list()) {
      ValueList list = arg(0).AsList();
      std::reverse(list.begin(), list.end());
      return Value::List(std::move(list));
    }
    return Value::Null();
  }
  if (e.name == "range" && (args.size() == 2 || args.size() == 3)) {
    if (!arg(0).is_int() || !arg(1).is_int()) return Value::Null();
    int64_t step = 1;
    if (args.size() == 3) {
      if (!arg(2).is_int() || arg(2).AsInt() == 0) return Value::Null();
      step = arg(2).AsInt();
    }
    ValueList out;
    int64_t lo = arg(0).AsInt(), hi = arg(1).AsInt();
    if (step > 0) {
      for (int64_t i = lo; i <= hi; i += step) out.push_back(Value::Int(i));
    } else {
      for (int64_t i = lo; i >= hi; i += step) out.push_back(Value::Int(i));
    }
    return Value::List(std::move(out));
  }
  if (e.name == "trim" && args.size() == 1) {
    if (!arg(0).is_string()) return Value::Null();
    std::string_view s = arg(0).AsString();
    while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
    while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
    return Value::String(std::string(s));
  }
  if (e.name == "ltrim" && args.size() == 1) {
    if (!arg(0).is_string()) return Value::Null();
    std::string_view s = arg(0).AsString();
    while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
    return Value::String(std::string(s));
  }
  if (e.name == "rtrim" && args.size() == 1) {
    if (!arg(0).is_string()) return Value::Null();
    std::string_view s = arg(0).AsString();
    while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
    return Value::String(std::string(s));
  }
  if (e.name == "replace" && args.size() == 3) {
    if (!arg(0).is_string() || !arg(1).is_string() || !arg(2).is_string()) {
      return Value::Null();
    }
    const std::string& needle = arg(1).AsString();
    if (needle.empty()) return arg(0);
    std::string out;
    std::string_view s = arg(0).AsString();
    size_t pos = 0;
    while (true) {
      size_t hit = s.find(needle, pos);
      if (hit == std::string_view::npos) break;
      out.append(s.substr(pos, hit - pos));
      out.append(arg(2).AsString());
      pos = hit + needle.size();
    }
    out.append(s.substr(pos));
    return Value::String(std::move(out));
  }
  if (e.name == "substring" && (args.size() == 2 || args.size() == 3)) {
    if (!arg(0).is_string() || !arg(1).is_int()) return Value::Null();
    const std::string& s = arg(0).AsString();
    int64_t start = arg(1).AsInt();
    if (start < 0 || start > static_cast<int64_t>(s.size())) {
      return Value::Null();
    }
    size_t len = std::string::npos;
    if (args.size() == 3) {
      if (!arg(2).is_int() || arg(2).AsInt() < 0) return Value::Null();
      len = static_cast<size_t>(arg(2).AsInt());
    }
    return Value::String(s.substr(static_cast<size_t>(start), len));
  }
  if (e.name == "left" && args.size() == 2) {
    if (!arg(0).is_string() || !arg(1).is_int() || arg(1).AsInt() < 0) {
      return Value::Null();
    }
    const std::string& s = arg(0).AsString();
    return Value::String(s.substr(0, static_cast<size_t>(arg(1).AsInt())));
  }
  if (e.name == "right" && args.size() == 2) {
    if (!arg(0).is_string() || !arg(1).is_int() || arg(1).AsInt() < 0) {
      return Value::Null();
    }
    const std::string& s = arg(0).AsString();
    size_t n = std::min<size_t>(static_cast<size_t>(arg(1).AsInt()),
                                s.size());
    return Value::String(s.substr(s.size() - n));
  }
  if (e.name == "split" && args.size() == 2) {
    if (!arg(0).is_string() || !arg(1).is_string() ||
        arg(1).AsString().empty()) {
      return Value::Null();
    }
    const std::string& sep = arg(1).AsString();
    std::string_view s = arg(0).AsString();
    ValueList out;
    size_t pos = 0;
    while (true) {
      size_t hit = s.find(sep, pos);
      if (hit == std::string_view::npos) break;
      out.push_back(Value::String(std::string(s.substr(pos, hit - pos))));
      pos = hit + sep.size();
    }
    out.push_back(Value::String(std::string(s.substr(pos))));
    return Value::List(std::move(out));
  }
  if (e.name == "tointeger" && args.size() == 1) {
    if (arg(0).is_int()) return arg(0);
    if (arg(0).is_double()) {
      return Value::Int(static_cast<int64_t>(arg(0).AsDouble()));
    }
    if (arg(0).is_string()) {
      errno = 0;
      char* end = nullptr;
      const std::string& s = arg(0).AsString();
      long long parsed = std::strtoll(s.c_str(), &end, 10);
      if (end == s.c_str() || (end != nullptr && *end != '\0')) {
        return Value::Null();
      }
      return Value::Int(parsed);
    }
    return Value::Null();
  }
  if (e.name == "tofloat" && args.size() == 1) {
    if (arg(0).is_double()) return arg(0);
    if (arg(0).is_int()) {
      return Value::Double(static_cast<double>(arg(0).AsInt()));
    }
    if (arg(0).is_string()) {
      char* end = nullptr;
      const std::string& s = arg(0).AsString();
      double parsed = std::strtod(s.c_str(), &end);
      if (end == s.c_str() || (end != nullptr && *end != '\0')) {
        return Value::Null();
      }
      return Value::Double(parsed);
    }
    return Value::Null();
  }
  if (e.name == "round" && args.size() == 1) {
    if (arg(0).is_int()) return Value::Double(
        static_cast<double>(arg(0).AsInt()));
    if (!arg(0).is_double()) return Value::Null();
    return Value::Double(std::round(arg(0).AsDouble()));
  }
  if (e.name == "floor" && args.size() == 1) {
    if (!arg(0).is_numeric()) return Value::Null();
    return Value::Double(std::floor(arg(0).NumericAsDouble()));
  }
  if (e.name == "ceil" && args.size() == 1) {
    if (!arg(0).is_numeric()) return Value::Null();
    return Value::Double(std::ceil(arg(0).NumericAsDouble()));
  }
  if (e.name == "sqrt" && args.size() == 1) {
    if (!arg(0).is_numeric() || arg(0).NumericAsDouble() < 0) {
      return Value::Null();
    }
    return Value::Double(std::sqrt(arg(0).NumericAsDouble()));
  }
  if (e.name == "sign" && args.size() == 1) {
    if (!arg(0).is_numeric()) return Value::Null();
    double d = arg(0).NumericAsDouble();
    return Value::Int(d > 0 ? 1 : (d < 0 ? -1 : 0));
  }
  if (e.name == "#path") {
    // Internal path constructor: vertex, then (edge, vertex) pairs and/or
    // path sections whose first vertex is the current endpoint.
    if (args.empty() || !args[0].is_vertex()) return Value::Null();
    std::vector<VertexId> vertices{args[0].AsVertex()};
    std::vector<EdgeId> edges;
    size_t i = 1;
    while (i < args.size()) {
      if (args[i].is_null()) return Value::Null();
      if (args[i].is_path()) {
        const Path& section = args[i].AsPath();
        if (section.source() != vertices.back()) return Value::Null();
        vertices.insert(vertices.end(), section.vertices().begin() + 1,
                        section.vertices().end());
        edges.insert(edges.end(), section.edges().begin(),
                     section.edges().end());
        ++i;
        continue;
      }
      if (args[i].is_edge() && i + 1 < args.size() &&
          args[i + 1].is_vertex()) {
        edges.push_back(args[i].AsEdge());
        vertices.push_back(args[i + 1].AsVertex());
        i += 2;
        continue;
      }
      return Value::Null();
    }
    return Value::MakePath(Path(std::move(vertices), std::move(edges)));
  }

  // Graph-dependent functions; resolvable only with a graph (the baseline
  // evaluator). Incremental plans rewrite these away via pushdown.
  if (graph_ != nullptr && args.size() == 1) {
    if (e.name == "labels" && arg(0).is_vertex() &&
        graph_->HasVertex(arg(0).AsVertex())) {
      ValueList out;
      for (const std::string& label :
           graph_->VertexLabels(arg(0).AsVertex())) {
        out.push_back(Value::String(label));
      }
      return Value::List(std::move(out));
    }
    if (e.name == "type" && arg(0).is_edge() &&
        graph_->HasEdge(arg(0).AsEdge())) {
      return Value::String(graph_->EdgeType(arg(0).AsEdge()));
    }
    if (e.name == "properties") {
      if (arg(0).is_vertex() && graph_->HasVertex(arg(0).AsVertex())) {
        return Value::Map(graph_->VertexProperties(arg(0).AsVertex()));
      }
      if (arg(0).is_edge() && graph_->HasEdge(arg(0).AsEdge())) {
        return Value::Map(graph_->EdgeProperties(arg(0).AsEdge()));
      }
      return Value::Null();
    }
    if (e.name == "startnode" && arg(0).is_edge() &&
        graph_->HasEdge(arg(0).AsEdge())) {
      return Value::Vertex(graph_->EdgeSource(arg(0).AsEdge()));
    }
    if (e.name == "endnode" && arg(0).is_edge() &&
        graph_->HasEdge(arg(0).AsEdge())) {
      return Value::Vertex(graph_->EdgeTarget(arg(0).AsEdge()));
    }
  }
  return Value::Null();
}

}  // namespace pgivm
