#include "rete/filter_node.h"

#include "support/string_util.h"

namespace pgivm {

void FilterNode::ProcessRange(const Delta& delta, size_t begin, size_t end,
                              Delta& out) {
  for (size_t i = begin; i < end; ++i) {
    const DeltaEntry& entry = delta[i];
    if (IsTrue(predicate_.Eval(entry.tuple))) out.push_back(entry);
  }
}

void FilterNode::OnDelta(int port, const Delta& delta) {
  (void)port;
  Delta out;
  ProcessRange(delta, 0, delta.size(), out);
  Emit(std::move(out));
}

void FilterNode::OnDeltaMorsel(int port, const Delta& delta,
                               const uint32_t* map, uint32_t partition,
                               uint32_t partitions, Delta& out) {
  (void)port;
  (void)map;
  const size_t n = delta.size();
  ProcessRange(delta, n * partition / partitions,
               n * (partition + 1) / partitions, out);
}

std::string FilterNode::DebugString() const {
  return StrCat("Filter[", predicate_.expr()->ToString(), "]");
}

}  // namespace pgivm
