#include "algebra/compiler.h"

#include <unordered_map>
#include <unordered_set>

#include "support/string_util.h"

namespace pgivm {

namespace {

/// Pattern-derived facts about a (directed) relationship variable, used to
/// rewrite startNode()/endNode() calls.
struct EdgeEndpoints {
  std::string source;  // graph-direction source variable
  std::string target;
  bool directed = true;
};

bool ContainsPatternPredicate(const ExprPtr& expr) {
  if (expr->kind == ExprKind::kPatternPredicate) return true;
  for (const ExprPtr& child : expr->children) {
    if (ContainsPatternPredicate(child)) return true;
  }
  return false;
}

class Compiler {
 public:
  Result<OpPtr> Run(const Query& query) {
    PGIVM_ASSIGN_OR_RETURN(OpPtr plan, RunSingle(query));
    if (query.unions.empty()) {
      PGIVM_RETURN_IF_ERROR(ComputeSchemas(plan));
      return plan;
    }

    // UNION [ALL] continuation: parts compile independently (fresh variable
    // scopes) and must agree on column names; plain UNION deduplicates.
    PGIVM_RETURN_IF_ERROR(ComputeSchemas(plan));
    bool first_all = query.unions[0].first;
    for (const auto& [all, part] : query.unions) {
      if (all != first_all) {
        return Status::InvalidArgument(
            "cannot mix UNION and UNION ALL in one query");
      }
      PGIVM_ASSIGN_OR_RETURN(OpPtr part_plan, Compiler().RunSingle(*part));
      PGIVM_RETURN_IF_ERROR(ComputeSchemas(part_plan));
      for (const Attribute& attr : plan->schema.attributes()) {
        if (!part_plan->schema.Contains(attr.name)) {
          return Status::InvalidArgument(
              StrCat("UNION parts must return the same columns; '",
                     attr.name, "' is missing from a part"));
        }
      }
      plan = MakeOp(OpKind::kUnion, {std::move(plan), std::move(part_plan)});
    }
    if (!first_all) plan = MakeOp(OpKind::kDistinct, {std::move(plan)});

    PGIVM_RETURN_IF_ERROR(ComputeSchemas(plan));
    OpPtr produce = MakeOp(OpKind::kProduce, {plan});
    for (const Attribute& attr : plan->schema.attributes()) {
      produce->projections.emplace_back(attr.name, MakeVariable(attr.name));
    }
    PGIVM_RETURN_IF_ERROR(ComputeSchemas(produce));
    return produce;
  }

 private:
  Result<OpPtr> RunSingle(const Query& query) {
    OpPtr plan;  // null until the first clause produces one
    for (const Clause& clause : query.clauses) {
      if (const auto* match = std::get_if<MatchClause>(&clause)) {
        PGIVM_ASSIGN_OR_RETURN(plan, CompileMatch(*match, plan));
      } else if (const auto* unwind = std::get_if<UnwindClause>(&clause)) {
        PGIVM_ASSIGN_OR_RETURN(plan, CompileUnwind(*unwind, plan));
      } else if (const auto* with = std::get_if<WithClause>(&clause)) {
        PGIVM_ASSIGN_OR_RETURN(plan,
                               CompileProjectionLike(with->items, plan,
                                                     with->distinct,
                                                     with->where,
                                                     /*is_return=*/false));
      }
    }
    return CompileProjectionLike(query.return_clause.items, plan,
                                 query.return_clause.distinct,
                                 /*where=*/nullptr, /*is_return=*/true);
  }
  std::string Fresh(const std::string& base) {
    return StrCat(base, "#", ++fresh_counter_);
  }

  /// Rewrites startNode()/endNode() into the pattern variables they denote.
  Result<ExprPtr> RewriteEndpointFunctions(const ExprPtr& expr) {
    Status failure = Status::Ok();
    ExprPtr out = RewriteExpression(expr, [&](const ExprPtr& e) -> ExprPtr {
      if (e->kind != ExprKind::kFunctionCall ||
          (e->name != "startnode" && e->name != "endnode")) {
        return e;
      }
      if (e->children.size() != 1 ||
          e->children[0]->kind != ExprKind::kVariable) {
        failure = Status::InvalidArgument(
            StrCat(e->name, "() expects a relationship variable"));
        return e;
      }
      auto it = edge_endpoints_.find(e->children[0]->name);
      if (it == edge_endpoints_.end()) {
        failure = Status::InvalidArgument(
            StrCat(e->name, "(): '", e->children[0]->name,
                   "' is not a known relationship variable"));
        return e;
      }
      if (!it->second.directed) {
        failure = Status::InvalidArgument(
            StrCat(e->name, "() on an undirected pattern edge is ambiguous"));
        return e;
      }
      return MakeVariable(e->name == "startnode" ? it->second.source
                                                 : it->second.target);
    });
    if (!failure.ok()) return failure;
    return out;
  }

  static OpPtr GetVerticesOp(const std::string& var,
                             std::vector<std::string> labels) {
    OpPtr op = MakeOp(OpKind::kGetVertices);
    op->vertex_var = var;
    op->labels = std::move(labels);
    return op;
  }

  static OpPtr JoinOps(OpPtr left, OpPtr right) {
    if (!left) return right;
    return MakeOp(OpKind::kJoin, {std::move(left), std::move(right)});
  }

  /// Property predicates of `(v {k: expr})` become `v.k = expr` conjuncts.
  Status AddPropertySelections(
      const std::string& var,
      const std::vector<std::pair<std::string, ExprPtr>>& props,
      std::vector<ExprPtr>& selections) {
    for (const auto& [key, expr] : props) {
      PGIVM_ASSIGN_OR_RETURN(ExprPtr value, RewriteEndpointFunctions(expr));
      selections.push_back(MakeBinary(
          BinaryOp::kEq, MakeProperty(MakeVariable(var), key), value));
    }
    return Status::Ok();
  }

  /// Compiles one linear pattern part into a plan. Returns the plan;
  /// selections/pending path columns are appended to the output params.
  Result<OpPtr> CompilePart(const PatternPart& part,
                            std::vector<ExprPtr>& selections,
                            std::vector<std::string>& clause_edge_vars,
                            std::vector<std::pair<std::string, ExprPtr>>&
                                pending_path_columns) {
    std::unordered_set<std::string> part_vars;

    OpPtr plan = GetVerticesOp(part.first.variable, part.first.labels);
    part_vars.insert(part.first.variable);
    PGIVM_RETURN_IF_ERROR(AddPropertySelections(part.first.variable,
                                                part.first.properties,
                                                selections));

    // Arguments of the #path(...) constructor for a named path.
    std::vector<ExprPtr> path_args;
    path_args.push_back(MakeVariable(part.first.variable));

    std::string prev = part.first.variable;
    for (const auto& [rel, node] : part.chain) {
      if (edge_endpoints_.count(rel.variable) > 0) {
        return Status::InvalidArgument(
            StrCat("relationship variable '", rel.variable,
                   "' is bound more than once"));
      }

      // Chain-internal node rebinding: expand to a fresh column, then
      // equate it with the earlier occurrence.
      std::string dst = node.variable;
      if (part_vars.count(dst) > 0) {
        dst = Fresh(node.variable);
        selections.push_back(MakeBinary(BinaryOp::kEq, MakeVariable(dst),
                                        MakeVariable(node.variable)));
      }
      part_vars.insert(dst);

      OpPtr expand = MakeOp(
          rel.variable_length ? OpKind::kPathJoin : OpKind::kExpand,
          {std::move(plan)});
      expand->src_var = prev;
      expand->dst_var = dst;
      expand->edge_types = rel.types;
      switch (rel.direction) {
        case RelPattern::Direction::kOut:
          expand->direction = EdgeDirection::kOut;
          break;
        case RelPattern::Direction::kIn:
          expand->direction = EdgeDirection::kIn;
          break;
        case RelPattern::Direction::kBoth:
          expand->direction = EdgeDirection::kBoth;
          break;
      }
      if (rel.variable_length) {
        expand->variable_length = true;
        expand->min_hops = rel.min_hops;
        expand->max_hops = rel.max_hops;
        if (!part.path_variable.empty()) {
          expand->path_var = Fresh("#section");
          path_args.push_back(MakeVariable(expand->path_var));
        }
      } else {
        expand->edge_var = rel.variable;
        clause_edge_vars.push_back(rel.variable);
        bool directed = rel.direction != RelPattern::Direction::kBoth;
        std::string source =
            rel.direction == RelPattern::Direction::kIn ? dst : prev;
        std::string target =
            rel.direction == RelPattern::Direction::kIn ? prev : dst;
        edge_endpoints_[rel.variable] = {source, target, directed};
        path_args.push_back(MakeVariable(rel.variable));
        path_args.push_back(MakeVariable(dst));
        PGIVM_RETURN_IF_ERROR(
            AddPropertySelections(rel.variable, rel.properties, selections));
      }
      plan = std::move(expand);

      // Every node variable gets a get-vertices leaf: it enforces the label
      // constraint and gives the pushdown pass a defining leaf. Variable
      // -length targets always need one (the path join itself is
      // unconstrained); fixed targets only when labelled — their dst column
      // already comes from get-edges after lowering.
      if (!node.labels.empty() || rel.variable_length) {
        plan = JoinOps(std::move(plan), GetVerticesOp(dst, node.labels));
      }
      PGIVM_RETURN_IF_ERROR(
          AddPropertySelections(dst, node.properties, selections));
      prev = dst;
    }

    if (!part.path_variable.empty()) {
      pending_path_columns.emplace_back(
          part.path_variable,
          MakeFunctionCall("#path", std::move(path_args)));
    }
    return plan;
  }

  Result<OpPtr> CompileMatch(const MatchClause& match, OpPtr current) {
    std::vector<ExprPtr> selections;
    std::vector<std::string> clause_edge_vars;
    std::vector<std::pair<std::string, ExprPtr>> pending_path_columns;

    OpPtr match_plan;
    for (const PatternPart& part : match.parts) {
      PGIVM_ASSIGN_OR_RETURN(
          OpPtr part_plan,
          CompilePart(part, selections, clause_edge_vars,
                      pending_path_columns));
      match_plan = JoinOps(std::move(match_plan), std::move(part_plan));
    }

    // Cypher relationship-uniqueness: distinct relationship variables of one
    // MATCH bind distinct edges. (Paths enforce trail semantics internally;
    // cross-constraints between paths and single edges are not enforced —
    // a documented simplification.)
    for (size_t i = 0; i < clause_edge_vars.size(); ++i) {
      for (size_t j = i + 1; j < clause_edge_vars.size(); ++j) {
        selections.push_back(MakeBinary(BinaryOp::kNe,
                                        MakeVariable(clause_edge_vars[i]),
                                        MakeVariable(clause_edge_vars[j])));
      }
    }

    // Split WHERE into plain conjuncts and exists(pattern) predicates;
    // the latter become semi-joins (positive) / anti-joins (negated).
    std::vector<std::pair<bool, int>> pattern_conjuncts;  // (negated, index)
    if (match.where) {
      PGIVM_ASSIGN_OR_RETURN(ExprPtr where,
                             RewriteEndpointFunctions(match.where));
      for (const ExprPtr& conjunct : SplitConjuncts(where)) {
        if (conjunct->kind == ExprKind::kPatternPredicate) {
          pattern_conjuncts.emplace_back(false, conjunct->column);
        } else if (conjunct->kind == ExprKind::kUnary &&
                   conjunct->unary_op == UnaryOp::kNot &&
                   conjunct->children[0]->kind ==
                       ExprKind::kPatternPredicate) {
          pattern_conjuncts.emplace_back(true,
                                         conjunct->children[0]->column);
        } else if (ContainsPatternPredicate(conjunct)) {
          return Status::Unimplemented(
              "exists(pattern) must be a top-level WHERE conjunct, "
              "optionally under a single NOT");
        } else {
          selections.push_back(conjunct);
        }
      }
    }

    if (match.optional && current) {
      // WHERE and property predicates evaluate inside the optional side;
      // they may reference optional-pattern variables (including the shared
      // join columns). ComputeSchemas rejects references to outer-only vars.
      PGIVM_ASSIGN_OR_RETURN(
          OpPtr optional_side,
          ApplySelectionsAndPaths(std::move(match_plan), selections,
                                  pending_path_columns));
      PGIVM_ASSIGN_OR_RETURN(
          optional_side,
          ApplyPatternPredicates(std::move(optional_side), match,
                                 pattern_conjuncts));
      return MakeOp(OpKind::kLeftOuterJoin,
                    {std::move(current), std::move(optional_side)});
    }

    OpPtr plan = JoinOps(std::move(current), std::move(match_plan));
    PGIVM_ASSIGN_OR_RETURN(plan,
                           ApplySelectionsAndPaths(std::move(plan),
                                                   selections,
                                                   pending_path_columns));
    return ApplyPatternPredicates(std::move(plan), match, pattern_conjuncts);
  }

  /// Attaches one semi-/anti-join per exists(pattern) conjunct. The pattern
  /// compiles like a pattern part; shared variables with the outer plan
  /// become the join keys, its own predicates become an inner selection.
  Result<OpPtr> ApplyPatternPredicates(
      OpPtr plan, const MatchClause& match,
      const std::vector<std::pair<bool, int>>& pattern_conjuncts) {
    for (const auto& [negated, index] : pattern_conjuncts) {
      if (index < 0 ||
          static_cast<size_t>(index) >= match.pattern_predicates.size()) {
        return Status::Internal("dangling exists() pattern reference");
      }
      std::vector<ExprPtr> sub_selections;
      std::vector<std::string> sub_edge_vars;
      std::vector<std::pair<std::string, ExprPtr>> sub_paths;
      PGIVM_ASSIGN_OR_RETURN(
          OpPtr sub_plan,
          CompilePart(match.pattern_predicates[static_cast<size_t>(index)],
                      sub_selections, sub_edge_vars, sub_paths));
      for (size_t i = 0; i < sub_edge_vars.size(); ++i) {
        for (size_t j = i + 1; j < sub_edge_vars.size(); ++j) {
          sub_selections.push_back(
              MakeBinary(BinaryOp::kNe, MakeVariable(sub_edge_vars[i]),
                         MakeVariable(sub_edge_vars[j])));
        }
      }
      if (!sub_selections.empty()) {
        OpPtr sel = MakeOp(OpKind::kSelection, {std::move(sub_plan)});
        sel->predicate = ConjoinAll(sub_selections);
        sub_plan = std::move(sel);
      }
      plan = MakeOp(negated ? OpKind::kAntiJoin : OpKind::kSemiJoin,
                    {std::move(plan), std::move(sub_plan)});
    }
    return plan;
  }

  /// Wraps `plan` with the accumulated selection conjuncts, then (for named
  /// paths) a projection that keeps every column and adds the `#path(...)`
  /// columns.
  Result<OpPtr> ApplySelectionsAndPaths(
      OpPtr plan, std::vector<ExprPtr>& selections,
      std::vector<std::pair<std::string, ExprPtr>>& pending_path_columns) {
    if (!selections.empty()) {
      OpPtr sel = MakeOp(OpKind::kSelection, {std::move(plan)});
      sel->predicate = ConjoinAll(selections);
      plan = std::move(sel);
    }
    if (!pending_path_columns.empty()) {
      OpPtr proj = MakeOp(OpKind::kProjection, {plan});
      // The identity part of the projection needs the child's column list.
      PGIVM_RETURN_IF_ERROR(ComputeSchemas(proj->children[0]));
      for (const Attribute& attr : proj->children[0]->schema.attributes()) {
        proj->projections.emplace_back(attr.name, MakeVariable(attr.name));
      }
      for (auto& [name, expr] : pending_path_columns) {
        proj->projections.emplace_back(name, expr);
      }
      plan = std::move(proj);
    }
    return plan;
  }

  Result<OpPtr> CompileUnwind(const UnwindClause& unwind, OpPtr current) {
    if (!current) current = MakeOp(OpKind::kUnit);
    PGIVM_ASSIGN_OR_RETURN(ExprPtr expr,
                           RewriteEndpointFunctions(unwind.expr));
    OpPtr op = MakeOp(OpKind::kUnnest, {std::move(current)});
    op->unnest_expr = std::move(expr);
    op->unnest_alias = unwind.alias;
    return op;
  }

  /// Shared lowering of WITH and RETURN: aggregation or projection, then
  /// DISTINCT, then (for WITH) a post-selection; RETURN adds the Produce
  /// root carrying the final column names.
  Result<OpPtr> CompileProjectionLike(const std::vector<ReturnItem>& items,
                                      OpPtr current, bool distinct,
                                      const ExprPtr& where, bool is_return) {
    if (!current) current = MakeOp(OpKind::kUnit);

    bool any_aggregate = false;
    for (const ReturnItem& item : items) {
      if (item.expr->ContainsAggregate()) any_aggregate = true;
    }

    OpPtr plan;
    if (any_aggregate) {
      OpPtr agg = MakeOp(OpKind::kAggregate, {std::move(current)});
      for (const ReturnItem& item : items) {
        PGIVM_ASSIGN_OR_RETURN(ExprPtr expr,
                               RewriteEndpointFunctions(item.expr));
        if (expr->ContainsAggregate()) {
          if (!expr->IsAggregateCall()) {
            return Status::Unimplemented(
                StrCat("aggregates must be top-level calls; rewrite '",
                       expr->ToString(), "' using WITH"));
          }
          agg->aggregates.emplace_back(item.alias, std::move(expr));
        } else {
          agg->group_by.emplace_back(item.alias, std::move(expr));
        }
      }
      plan = std::move(agg);
    } else {
      OpPtr proj = MakeOp(OpKind::kProjection, {std::move(current)});
      for (const ReturnItem& item : items) {
        PGIVM_ASSIGN_OR_RETURN(ExprPtr expr,
                               RewriteEndpointFunctions(item.expr));
        proj->projections.emplace_back(item.alias, std::move(expr));
      }
      plan = std::move(proj);
    }

    if (distinct) plan = MakeOp(OpKind::kDistinct, {std::move(plan)});

    if (where) {
      PGIVM_ASSIGN_OR_RETURN(ExprPtr pred, RewriteEndpointFunctions(where));
      OpPtr sel = MakeOp(OpKind::kSelection, {std::move(plan)});
      sel->predicate = std::move(pred);
      plan = std::move(sel);
    }

    if (is_return) {
      OpPtr produce = MakeOp(OpKind::kProduce, {std::move(plan)});
      for (const ReturnItem& item : items) {
        produce->projections.emplace_back(item.alias,
                                          MakeVariable(item.alias));
      }
      plan = std::move(produce);
    }
    return plan;
  }

  int fresh_counter_ = 0;
  std::unordered_map<std::string, EdgeEndpoints> edge_endpoints_;
};

}  // namespace

Result<OpPtr> CompileToGra(const Query& query) {
  return Compiler().Run(query);
}

}  // namespace pgivm
