#ifndef PGIVM_SUPPORT_STRING_UTIL_H_
#define PGIVM_SUPPORT_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace pgivm {

/// Concatenates the streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// True iff `s` starts with / ends with / contains `affix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool Contains(std::string_view s, std::string_view needle);

/// ASCII-lowercases a copy of `s`.
std::string AsciiLower(std::string_view s);

/// Combines a hash value into a running seed (boost::hash_combine recipe).
inline void HashCombine(size_t& seed, size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

}  // namespace pgivm

#endif  // PGIVM_SUPPORT_STRING_UTIL_H_
