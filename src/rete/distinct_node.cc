#include "rete/distinct_node.h"

namespace pgivm {

void DistinctNode::ProcessEntries(const Delta& delta, const uint32_t* map,
                                  uint32_t partition, Delta& out) {
  for (size_t i = 0; i < delta.size(); ++i) {
    if (map != nullptr && map[i] != partition) continue;
    const DeltaEntry& entry = delta[i];
    auto [old_count, new_count] =
        support_.shard(entry.tuple).Apply(entry.tuple, entry.multiplicity);
    if (old_count == 0 && new_count > 0) {
      out.push_back({entry.tuple, 1});
    } else if (old_count > 0 && new_count == 0) {
      out.push_back({entry.tuple, -1});
    }
  }
}

void DistinctNode::OnDelta(int port, const Delta& delta) {
  (void)port;
  Delta out;
  ProcessEntries(delta, /*map=*/nullptr, /*partition=*/0, out);
  Emit(std::move(out));
}

void DistinctNode::MorselPartitionMap(int port, const Delta& delta,
                                      uint32_t partitions, size_t begin,
                                      size_t end, uint32_t* map) const {
  (void)port;
  for (size_t i = begin; i < end; ++i) {
    map[i] = MorselPartitionOfHash(delta[i].tuple.Hash(), partitions);
  }
}

void DistinctNode::OnDeltaMorsel(int port, const Delta& delta,
                                 const uint32_t* map, uint32_t partition,
                                 uint32_t partitions, Delta& out) {
  (void)port;
  (void)partitions;
  ProcessEntries(delta, map, partition, out);
}

}  // namespace pgivm
