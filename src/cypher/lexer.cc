#include "cypher/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "support/string_util.h"

namespace pgivm {

namespace {

const std::unordered_map<std::string, TokenKind>& KeywordTable() {
  static const auto* table = new std::unordered_map<std::string, TokenKind>{
      {"match", TokenKind::kMatch},       {"optional", TokenKind::kOptional},
      {"where", TokenKind::kWhere},       {"return", TokenKind::kReturn},
      {"with", TokenKind::kWith},         {"unwind", TokenKind::kUnwind},
      {"as", TokenKind::kAs},             {"distinct", TokenKind::kDistinct},
      {"and", TokenKind::kAnd},           {"or", TokenKind::kOr},
      {"xor", TokenKind::kXor},           {"not", TokenKind::kNot},
      {"in", TokenKind::kIn},             {"is", TokenKind::kIs},
      {"null", TokenKind::kNull},         {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},       {"starts", TokenKind::kStarts},
      {"ends", TokenKind::kEnds},         {"contains", TokenKind::kContains},
      {"skip", TokenKind::kSkip},         {"limit", TokenKind::kLimit},
      {"order", TokenKind::kOrder},       {"by", TokenKind::kBy},
      {"case", TokenKind::kCase},         {"when", TokenKind::kWhen},
      {"then", TokenKind::kThen},         {"else", TokenKind::kElse},
      {"end", TokenKind::kEnd_},          {"union", TokenKind::kUnion},
      {"all", TokenKind::kAll},           {"exists", TokenKind::kExists},
  };
  return *table;
}

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      PGIVM_RETURN_IF_ERROR(SkipTrivia());
      Token token;
      token.line = line_;
      token.column = column_;
      if (AtEnd()) {
        token.kind = TokenKind::kEnd;
        tokens.push_back(std::move(token));
        return tokens;
      }
      char c = Peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        LexIdentifier(token);
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        PGIVM_RETURN_IF_ERROR(LexNumber(token));
      } else if (c == '\'' || c == '"') {
        PGIVM_RETURN_IF_ERROR(LexString(token));
      } else if (c == '`') {
        PGIVM_RETURN_IF_ERROR(LexBackquotedIdentifier(token));
      } else if (c == '$') {
        PGIVM_RETURN_IF_ERROR(LexParameter(token));
      } else {
        PGIVM_RETURN_IF_ERROR(LexOperator(token));
      }
      tokens.push_back(std::move(token));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrCat("lex error at ", line_, ":", column_, ": ", message));
  }

  Status SkipTrivia() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
        if (AtEnd()) return Error("unterminated block comment");
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::Ok();
  }

  void LexIdentifier(Token& token) {
    std::string text;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      text.push_back(Advance());
    }
    auto it = KeywordTable().find(AsciiLower(text));
    if (it != KeywordTable().end()) {
      token.kind = it->second;
    } else {
      token.kind = TokenKind::kIdentifier;
    }
    token.text = std::move(text);
  }

  Status LexParameter(Token& token) {
    Advance();  // consume '$'
    std::string name;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      name.push_back(Advance());
    }
    if (name.empty()) return Error("'$' must be followed by a parameter name");
    token.kind = TokenKind::kParameter;
    token.text = std::move(name);
    return Status::Ok();
  }

  Status LexBackquotedIdentifier(Token& token) {
    Advance();  // consume opening backquote
    std::string text;
    while (!AtEnd() && Peek() != '`') text.push_back(Advance());
    if (AtEnd()) return Error("unterminated backquoted identifier");
    Advance();  // closing backquote
    token.kind = TokenKind::kIdentifier;
    token.text = std::move(text);
    return Status::Ok();
  }

  Status LexNumber(Token& token) {
    std::string text;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      text.push_back(Advance());
    }
    bool is_float = false;
    // A '.' only belongs to the number if followed by a digit; `1..3` must
    // lex as INTEGER DOTDOT INTEGER for variable-length patterns.
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      text.push_back(Advance());
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        text.push_back(Advance());
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t ahead = 1;
      if (Peek(1) == '+' || Peek(1) == '-') ahead = 2;
      if (std::isdigit(static_cast<unsigned char>(Peek(ahead)))) {
        is_float = true;
        text.push_back(Advance());  // e
        if (Peek() == '+' || Peek() == '-') text.push_back(Advance());
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          text.push_back(Advance());
        }
      }
    }
    if (is_float) {
      token.kind = TokenKind::kFloat;
      token.double_value = std::strtod(text.c_str(), nullptr);
    } else {
      token.kind = TokenKind::kInteger;
      token.int_value = std::strtoll(text.c_str(), nullptr, 10);
    }
    token.text = std::move(text);
    return Status::Ok();
  }

  Status LexString(Token& token) {
    char quote = Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      char c = Advance();
      if (c == '\\') {
        if (AtEnd()) return Error("unterminated escape in string literal");
        char esc = Advance();
        switch (esc) {
          case 'n':
            value.push_back('\n');
            break;
          case 't':
            value.push_back('\t');
            break;
          case 'r':
            value.push_back('\r');
            break;
          case '\\':
          case '\'':
          case '"':
            value.push_back(esc);
            break;
          default:
            return Error(StrCat("unknown escape '\\", std::string(1, esc),
                                "' in string literal"));
        }
      } else {
        value.push_back(c);
      }
    }
    if (AtEnd()) return Error("unterminated string literal");
    Advance();  // closing quote
    token.kind = TokenKind::kString;
    token.text = value;
    token.string_value = std::move(value);
    return Status::Ok();
  }

  Status LexOperator(Token& token) {
    char c = Advance();
    switch (c) {
      case '(':
        token.kind = TokenKind::kLParen;
        return Status::Ok();
      case ')':
        token.kind = TokenKind::kRParen;
        return Status::Ok();
      case '[':
        token.kind = TokenKind::kLBracket;
        return Status::Ok();
      case ']':
        token.kind = TokenKind::kRBracket;
        return Status::Ok();
      case '{':
        token.kind = TokenKind::kLBrace;
        return Status::Ok();
      case '}':
        token.kind = TokenKind::kRBrace;
        return Status::Ok();
      case ',':
        token.kind = TokenKind::kComma;
        return Status::Ok();
      case ':':
        token.kind = TokenKind::kColon;
        return Status::Ok();
      case ';':
        token.kind = TokenKind::kSemicolon;
        return Status::Ok();
      case '|':
        token.kind = TokenKind::kPipe;
        return Status::Ok();
      case '+':
        token.kind = TokenKind::kPlus;
        return Status::Ok();
      case '*':
        token.kind = TokenKind::kStar;
        return Status::Ok();
      case '/':
        token.kind = TokenKind::kSlash;
        return Status::Ok();
      case '%':
        token.kind = TokenKind::kPercent;
        return Status::Ok();
      case '=':
        token.kind = TokenKind::kEq;
        return Status::Ok();
      case '.':
        if (Peek() == '.') {
          Advance();
          token.kind = TokenKind::kDotDot;
        } else {
          token.kind = TokenKind::kDot;
        }
        return Status::Ok();
      case '-':
        if (Peek() == '>') {
          // Lexed as '-' then '>' pair is ambiguous with comparison; emit a
          // dedicated arrow token for the pattern grammar.
          Advance();
          token.kind = TokenKind::kArrowRight;
        } else {
          token.kind = TokenKind::kMinus;
        }
        return Status::Ok();
      case '<':
        if (Peek() == '-') {
          Advance();
          token.kind = TokenKind::kArrowLeft;
        } else if (Peek() == '>') {
          Advance();
          token.kind = TokenKind::kNeq;
        } else if (Peek() == '=') {
          Advance();
          token.kind = TokenKind::kLe;
        } else {
          token.kind = TokenKind::kLt;
        }
        return Status::Ok();
      case '>':
        if (Peek() == '=') {
          Advance();
          token.kind = TokenKind::kGe;
        } else {
          token.kind = TokenKind::kGt;
        }
        return Status::Ok();
      default:
        return Error(StrCat("unexpected character '", std::string(1, c), "'"));
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view query) {
  return Lexer(query).Run();
}

}  // namespace pgivm
