#include "rete/node.h"

// ReteNode is header-only; this translation unit anchors the vtable.

namespace pgivm {}  // namespace pgivm
