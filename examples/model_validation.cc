// Continuous model validation — the Train-Benchmark-style use case the
// paper cites (§1: "checking integrity (or well-formedness) constraints").
// Four constraint views stay registered while a repair loop fixes the
// violations they report; validation is "free" after every transaction
// because the views are incrementally maintained.

#include <iostream>

#include "engine/query_engine.h"
#include "workload/railway.h"

int main() {
  using namespace pgivm;

  PropertyGraph graph;
  RailwayConfig config;
  config.routes = 15;
  config.fault_rate = 0.25;
  RailwayGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  struct Constraint {
    const char* name;
    std::shared_ptr<View> view;
  };
  std::vector<Constraint> constraints = {
      {"PosLength",
       engine.Register(RailwayGenerator::PosLengthQuery()).value()},
      {"SwitchMonitored",
       engine.Register(RailwayGenerator::SwitchMonitoredQuery()).value()},
      {"RouteSensor",
       engine.Register(RailwayGenerator::RouteSensorQuery()).value()},
      {"SwitchSet",
       engine.Register(RailwayGenerator::SwitchSetQuery()).value()},
  };

  auto report = [&](const std::string& heading) {
    std::cout << heading << "\n";
    for (const Constraint& c : constraints) {
      std::cout << "  " << c.name << ": " << c.view->size()
                << " violation(s)\n";
    }
  };
  report("Initial validation (faults injected by the generator):");

  // Repair loop: fix PosLength violations directly from the view.
  int repaired = 0;
  while (constraints[0].view->size() > 0) {
    Tuple violation = constraints[0].view->Snapshot().front();
    VertexId segment = violation.at(0).AsVertex();
    (void)graph.SetVertexProperty(segment, "length", Value::Int(100));
    ++repaired;
  }
  std::cout << "Repaired " << repaired << " segment lengths.\n";

  // Fix unmonitored switches by attaching sensors.
  repaired = 0;
  while (constraints[1].view->size() > 0) {
    Tuple violation = constraints[1].view->Snapshot().front();
    VertexId sw = violation.at(0).AsVertex();
    VertexId sensor = graph.AddVertex({"Sensor"});
    (void)graph.AddEdge(sw, sensor, "monitoredBy").value();
    ++repaired;
  }
  std::cout << "Attached sensors to " << repaired << " switches.\n";

  // Fix RouteSensor: add the missing requires edges.
  repaired = 0;
  while (constraints[2].view->size() > 0) {
    Tuple violation = constraints[2].view->Snapshot().front();
    VertexId route = violation.at(0).AsVertex();
    VertexId sensor = violation.at(2).AsVertex();
    (void)graph.AddEdge(route, sensor, "requires").value();
    ++repaired;
  }
  std::cout << "Added " << repaired << " requires edges.\n";

  // Fix SwitchSet: align actual switch positions with the prescription.
  repaired = 0;
  while (constraints[3].view->size() > 0) {
    Tuple violation = constraints[3].view->Snapshot().front();
    VertexId sw = violation.at(1).AsVertex();
    VertexId swp = violation.at(2).AsVertex();
    (void)graph.SetVertexProperty(sw, "position",
                                  graph.GetVertexProperty(swp, "position"));
    ++repaired;
  }
  std::cout << "Realigned " << repaired << " switches.\n";

  report("After repairs (a well-formed model):");

  // Keep operating: the update stream re-breaks and re-fixes the model;
  // the views track every transition without re-evaluation.
  for (int i = 0; i < 50; ++i) generator.ApplyRandomUpdate(&graph);
  report("After 50 random operations:");
  return 0;
}
