#include "algebra/passes/pass_manager.h"

#include <gtest/gtest.h>

#include "algebra/compiler.h"
#include "algebra/plan_printer.h"
#include "cypher/parser.h"

namespace pgivm {
namespace {

OpPtr Gra(const std::string& text) {
  Result<Query> query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status();
  Result<OpPtr> plan = CompileToGra(query.value());
  EXPECT_TRUE(plan.ok()) << plan.status();
  return plan.value();
}

OpPtr Fra(const std::string& text, PlanOptions options = {}) {
  Result<OpPtr> plan = LowerToFra(Gra(text), options);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return plan.value();
}

int CountKind(const OpPtr& op, OpKind kind) {
  int n = op->kind == kind ? 1 : 0;
  for (const OpPtr& child : op->children) n += CountKind(child, kind);
  return n;
}

const LogicalOp* FindKind(const OpPtr& op, OpKind kind) {
  if (op->kind == kind) return op.get();
  for (const OpPtr& child : op->children) {
    if (const LogicalOp* found = FindKind(child, kind)) return found;
  }
  return nullptr;
}

std::vector<const LogicalOp*> FindAll(const OpPtr& op, OpKind kind) {
  std::vector<const LogicalOp*> out;
  if (op->kind == kind) out.push_back(op.get());
  for (const OpPtr& child : op->children) {
    std::vector<const LogicalOp*> sub = FindAll(child, kind);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

// ---- Expand-to-join (paper step 2) ----------------------------------------

TEST(ExpandToJoinTest, ExpandReplacedByJoinWithGetEdges) {
  OpPtr gra = Gra("MATCH (a:A)-[r:T]->(b) RETURN a");
  EXPECT_EQ(CountKind(gra, OpKind::kExpand), 1);
  EXPECT_EQ(CountKind(gra, OpKind::kGetEdges), 0);

  OpPtr nra = RewriteExpandToJoin(gra);
  EXPECT_EQ(CountKind(nra, OpKind::kExpand), 0);
  const LogicalOp* edges = FindKind(nra, OpKind::kGetEdges);
  ASSERT_NE(edges, nullptr);
  EXPECT_EQ(edges->src_var, "a");
  EXPECT_EQ(edges->edge_var, "r");
  EXPECT_EQ(edges->dst_var, "b");
  EXPECT_EQ(edges->direction, EdgeDirection::kOut);
}

TEST(ExpandToJoinTest, IncomingEdgeNormalizedToGraphDirection) {
  OpPtr nra = RewriteExpandToJoin(Gra("MATCH (a)<-[r:T]-(b) RETURN a"));
  const LogicalOp* edges = FindKind(nra, OpKind::kGetEdges);
  ASSERT_NE(edges, nullptr);
  // Graph-direction source is `b`.
  EXPECT_EQ(edges->src_var, "b");
  EXPECT_EQ(edges->dst_var, "a");
  EXPECT_EQ(edges->direction, EdgeDirection::kOut);
}

TEST(ExpandToJoinTest, UndirectedKeepsBothDirection) {
  OpPtr nra = RewriteExpandToJoin(Gra("MATCH (a)-[r:T]-(b) RETURN a"));
  const LogicalOp* edges = FindKind(nra, OpKind::kGetEdges);
  ASSERT_NE(edges, nullptr);
  EXPECT_EQ(edges->direction, EdgeDirection::kBoth);
}

TEST(ExpandToJoinTest, PathJoinSurvives) {
  OpPtr nra = RewriteExpandToJoin(Gra("MATCH (a:A)-[:T*]->(b) RETURN a"));
  EXPECT_EQ(CountKind(nra, OpKind::kPathJoin), 1);
}

// ---- Property pushdown (paper step 3: minimal schema inference) -----------

TEST(PropertyPushdownTest, RunningExamplePushesLangToLeaves) {
  // The paper's §4 example: both p.lang and c.lang become leaf extracts.
  OpPtr fra = Fra(
      "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) "
      "WHERE p.lang = c.lang RETURN p, t");
  std::vector<const LogicalOp*> leaves = FindAll(fra, OpKind::kGetVertices);
  int extract_count = 0;
  for (const LogicalOp* leaf : leaves) {
    extract_count += static_cast<int>(leaf->extracts.size());
  }
  EXPECT_EQ(extract_count, 2) << PrintPlan(fra);
  // The selection now references the extracted columns, not raw properties.
  const LogicalOp* sel = FindKind(fra, OpKind::kSelection);
  ASSERT_NE(sel, nullptr);
  EXPECT_NE(sel->predicate->ToString().find("#p.lang"), std::string::npos);
  EXPECT_NE(sel->predicate->ToString().find("#c.lang"), std::string::npos);
}

TEST(PropertyPushdownTest, SharedAccessesShareOneExtract) {
  OpPtr fra = Fra("MATCH (n:A) WHERE n.x > 1 RETURN n.x AS x");
  const LogicalOp* leaf = FindKind(fra, OpKind::kGetVertices);
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->extracts.size(), 1u);
  EXPECT_EQ(leaf->extracts[0].column_name, "#n.x");
}

TEST(PropertyPushdownTest, EdgePropertiesExtractAtGetEdges) {
  OpPtr fra = Fra("MATCH (a)-[r:T]->(b) WHERE r.w > 1 RETURN a");
  const LogicalOp* edges = FindKind(fra, OpKind::kGetEdges);
  ASSERT_NE(edges, nullptr);
  ASSERT_EQ(edges->extracts.size(), 1u);
  EXPECT_EQ(edges->extracts[0].column_name, "#r.w");
}

TEST(PropertyPushdownTest, LabelsAndTypeExtracted) {
  OpPtr fra = Fra("MATCH (a)-[r:T]->(b) RETURN labels(a) AS la, "
                  "type(r) AS tr");
  bool found_labels = false, found_type = false;
  for (const LogicalOp* leaf : FindAll(fra, OpKind::kGetVertices)) {
    for (const PropertyExtract& extract : leaf->extracts) {
      if (extract.what == PropertyExtract::What::kLabels) found_labels = true;
    }
  }
  for (const LogicalOp* leaf : FindAll(fra, OpKind::kGetEdges)) {
    for (const PropertyExtract& extract : leaf->extracts) {
      if (extract.what == PropertyExtract::What::kType) found_type = true;
    }
  }
  EXPECT_TRUE(found_labels);
  EXPECT_TRUE(found_type);
}

TEST(PropertyPushdownTest, AccessAboveProjectionThreadsThrough) {
  // b aliases a across the WITH; the pushdown must thread #a.name through
  // the projection.
  OpPtr fra = Fra("MATCH (a:A) WITH a AS b RETURN b.name AS n");
  const LogicalOp* leaf = FindKind(fra, OpKind::kGetVertices);
  ASSERT_NE(leaf, nullptr);
  ASSERT_EQ(leaf->extracts.size(), 1u);
  bool threaded = false;
  for (const LogicalOp* proj : FindAll(fra, OpKind::kProjection)) {
    for (const auto& [name, expr] : proj->projections) {
      if (name == "#a.name") threaded = true;
    }
  }
  EXPECT_TRUE(threaded) << PrintPlan(fra);
}

TEST(PropertyPushdownTest, UnnestedPathVerticesGetDynamicLeaf) {
  // n comes out of the path at runtime: pushdown joins a fresh ◯(n) leaf
  // with the lang extract so the view stays incremental.
  OpPtr fra = Fra(
      "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) "
      "UNWIND nodes(t) AS n RETURN n.lang AS l");
  bool found = false;
  for (const LogicalOp* leaf : FindAll(fra, OpKind::kGetVertices)) {
    if (leaf->vertex_var == "n" && !leaf->extracts.empty()) found = true;
  }
  EXPECT_TRUE(found) << PrintPlan(fra);
}

TEST(PropertyPushdownTest, ComprehensionShadowingBlocksPushdown) {
  // The comprehension local `x` shadows the pattern variable `x` inside the
  // body: `x.k` there reads the list element (a map), not the vertex. Only
  // the list expression `x.tags` (unshadowed) is pushed down.
  OpPtr fra = Fra(
      "MATCH (x:A) WHERE any(x IN x.tags WHERE x.k = 1) RETURN x");
  const LogicalOp* leaf = FindKind(fra, OpKind::kGetVertices);
  ASSERT_NE(leaf, nullptr);
  ASSERT_EQ(leaf->extracts.size(), 1u);
  EXPECT_EQ(leaf->extracts[0].column_name, "#x.tags");
}

TEST(PropertyPushdownTest, NaiveModeShipsWholeMaps) {
  PlanOptions naive;
  naive.naive_property_maps = true;
  OpPtr fra = Fra("MATCH (n:A) WHERE n.x > 1 RETURN n.y AS y", naive);
  const LogicalOp* leaf = FindKind(fra, OpKind::kGetVertices);
  ASSERT_NE(leaf, nullptr);
  ASSERT_EQ(leaf->extracts.size(), 1u);
  EXPECT_EQ(leaf->extracts[0].what, PropertyExtract::What::kPropertyMap);
  // Accesses become map lookups on the map column.
  const LogicalOp* sel = FindKind(fra, OpKind::kSelection);
  ASSERT_NE(sel, nullptr);
  EXPECT_NE(sel->predicate->ToString().find("#props(n).x"),
            std::string::npos);
}

// ---- Filter pushdown --------------------------------------------------------

TEST(FilterPushdownTest, ConjunctsSplitAcrossJoinSides) {
  OpPtr fra = Fra("MATCH (a:A), (b:B) WHERE a.x = 1 AND b.y = 2 "
                  "RETURN a, b");
  // Each conjunct lands below the join, directly above its leaf.
  const LogicalOp* join = FindKind(fra, OpKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->children[0]->kind, OpKind::kSelection);
  EXPECT_EQ(join->children[1]->kind, OpKind::kSelection);
}

TEST(FilterPushdownTest, CrossSideConjunctStaysAboveJoin) {
  OpPtr fra = Fra("MATCH (a:A), (b:B) WHERE a.x = b.y RETURN a, b");
  const LogicalOp* sel = FindKind(fra, OpKind::kSelection);
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->children[0]->kind, OpKind::kJoin);
}

TEST(FilterPushdownTest, DisabledKeepsSelectionAtTop) {
  PlanOptions options;
  options.filter_pushdown = false;
  // Canonicalization re-pushes every region conjunct to its deepest
  // binding site (the normal form is placement-deterministic), which would
  // mask exactly the ablation this test observes.
  options.canonicalize = false;
  OpPtr fra = Fra("MATCH (a:A), (b:B) WHERE a.x = 1 RETURN a, b", options);
  const LogicalOp* join = FindKind(fra, OpKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_NE(join->children[0]->kind, OpKind::kSelection);
}

// ---- Column pruning ---------------------------------------------------------

TEST(ColumnPruningTest, UnreferencedExtractRemoved) {
  // Lower manually so we can observe the pre-pruning state.
  OpPtr plan = RewriteExpandToJoin(Gra("MATCH (n:A) RETURN n"));
  ASSERT_TRUE(ComputeSchemas(plan).ok());
  ASSERT_TRUE(PushDownProperties(plan, false).ok());
  // Inject a stray extract.
  LogicalOp* leaf = const_cast<LogicalOp*>(FindKind(plan,
                                                    OpKind::kGetVertices));
  leaf->extracts.push_back(
      {PropertyExtract::What::kProperty, "n", "junk", "#n.junk"});
  ASSERT_TRUE(ComputeSchemas(plan).ok());
  PruneUnusedExtracts(plan);
  EXPECT_TRUE(leaf->extracts.empty());
}

// ---- Unnest narrowing (FGN prerequisite) -----------------------------------

TEST(NarrowUnnestTest, CollectionColumnDroppedFromUnnestOutput) {
  OpPtr fra = Fra("MATCH (n:A) UNWIND n.tags AS tag RETURN n, tag");
  const LogicalOp* unnest = FindKind(fra, OpKind::kUnnest);
  ASSERT_NE(unnest, nullptr);
  EXPECT_EQ(unnest->unnest_drop_columns,
            std::vector<std::string>{"#n.tags"});
  EXPECT_FALSE(unnest->schema.Contains("#n.tags"));
}

TEST(NarrowUnnestTest, ColumnKeptWhenReferencedAbove) {
  OpPtr fra = Fra("MATCH (n:A) UNWIND n.tags AS tag "
                  "RETURN n.tags AS whole, tag");
  const LogicalOp* unnest = FindKind(fra, OpKind::kUnnest);
  ASSERT_NE(unnest, nullptr);
  EXPECT_TRUE(unnest->unnest_drop_columns.empty());
}

TEST(NarrowUnnestTest, DistinctAboveAllowsDependentColumnDrop) {
  // #n.tags is functionally dependent on n (which stays), so dropping it
  // cannot merge rows — narrowing is allowed even under DISTINCT.
  OpPtr fra = Fra("MATCH (n:A) UNWIND n.tags AS tag RETURN DISTINCT tag");
  const LogicalOp* unnest = FindKind(fra, OpKind::kUnnest);
  ASSERT_NE(unnest, nullptr);
  EXPECT_EQ(unnest->unnest_drop_columns,
            std::vector<std::string>{"#n.tags"});
}

TEST(NarrowUnnestTest, DistinctAboveBlocksNonDependentDrop) {
  // Unnesting a computed list (not a leaf extract): under DISTINCT the
  // collection column must stay, since nothing kept determines it.
  OpPtr fra = Fra("UNWIND [1,2] AS a WITH [a, a] AS pair "
                  "UNWIND pair AS x RETURN DISTINCT x");
  std::vector<const LogicalOp*> unnests = FindAll(fra, OpKind::kUnnest);
  ASSERT_EQ(unnests.size(), 2u);
  // The inner UNWIND (over `pair`) keeps its collection column.
  EXPECT_TRUE(unnests[1]->unnest_drop_columns.empty());
}

TEST(NarrowUnnestTest, DisabledByOption) {
  PlanOptions options;
  options.narrow_unnest_outputs = false;
  OpPtr fra = Fra("MATCH (n:A) UNWIND n.tags AS tag RETURN n, tag", options);
  const LogicalOp* unnest = FindKind(fra, OpKind::kUnnest);
  ASSERT_NE(unnest, nullptr);
  EXPECT_TRUE(unnest->unnest_drop_columns.empty());
}

// ---- Full pipeline invariants ----------------------------------------------

TEST(LowerToFraTest, NoExpandRemainsAndSchemasValid) {
  for (const char* query : {
           "MATCH (a:A)-[r:T]->(b:B) WHERE a.x = b.y RETURN a, r, b",
           "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) RETURN t",
           "MATCH (a:A) OPTIONAL MATCH (a)-[r:T]->(b) RETURN a, b",
           "MATCH (n:A) RETURN n.x AS x, count(*) AS c",
           "UNWIND [1,2] AS x RETURN x",
       }) {
    OpPtr fra = Fra(query);
    EXPECT_EQ(CountKind(fra, OpKind::kExpand), 0) << query;
    EXPECT_TRUE(ComputeSchemas(fra).ok()) << query;
  }
}

}  // namespace
}  // namespace pgivm
