#ifndef PGIVM_CYPHER_TOKEN_H_
#define PGIVM_CYPHER_TOKEN_H_

#include <cstdint>
#include <string>

namespace pgivm {

/// Lexical token kinds of the supported openCypher fragment. Keywords are
/// case-insensitive per the openCypher grammar; identifiers keep their case.
enum class TokenKind {
  kEnd,
  kIdentifier,
  kParameter,  // $name
  kInteger,
  kFloat,
  kString,
  // Keywords.
  kMatch,
  kOptional,
  kWhere,
  kReturn,
  kWith,
  kUnwind,
  kAs,
  kDistinct,
  kAnd,
  kOr,
  kXor,
  kNot,
  kIn,
  kIs,
  kNull,
  kTrue,
  kFalse,
  kStarts,
  kEnds,
  kContains,
  kSkip,
  kLimit,
  kOrder,
  kBy,
  kCase,
  kWhen,
  kThen,
  kElse,
  kEnd_,  // END keyword (kEnd is end-of-input)
  kUnion,
  kAll,
  kExists,
  // Punctuation and operators.
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kColon,
  kSemicolon,
  kDot,
  kDotDot,
  kPipe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  kArrowRight,  // ->
  kArrowLeft,   // <-
};

/// Returns a printable name for diagnostics ("MATCH", "'('", ...).
const char* TokenKindName(TokenKind kind);

/// One lexical token with its source position (1-based line/column).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // Identifier/keyword text or literal spelling.
  int64_t int_value = 0;  // kInteger
  double double_value = 0.0;  // kFloat
  std::string string_value;   // kString (unescaped)
  int line = 1;
  int column = 1;

  std::string ToString() const;
};

}  // namespace pgivm

#endif  // PGIVM_CYPHER_TOKEN_H_
