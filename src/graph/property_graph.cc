#include "graph/property_graph.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "support/string_util.h"

namespace pgivm {

namespace {

void SortUnique(std::vector<std::string>& labels) {
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
}

void EraseId(std::vector<int64_t>& ids, int64_t id) {
  auto it = std::find(ids.begin(), ids.end(), id);
  if (it != ids.end()) ids.erase(it);
}

/// Sorted posting-list maintenance. Most inserts are of a brand-new
/// maximal id (element creation), so probe the tail before binary search.
void InsertSorted(std::vector<int64_t>& ids, int64_t id) {
  if (ids.empty() || ids.back() < id) {
    ids.push_back(id);
    return;
  }
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) ids.insert(it, id);
}

void EraseSorted(std::vector<int64_t>& ids, int64_t id) {
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it != ids.end() && *it == id) ids.erase(it);
}

/// The PGIVM_TYPED_COLUMNS environment override, applied only by the
/// default constructor (the explicit one takes options as-given, matching
/// the PGIVM_THREADS discipline in network_builder.cc). Strict parse: a
/// malformed value is ignored with a warning, never silently coerced.
StorageOptions ApplyEnvStorageOverride(StorageOptions options) {
  const char* env = std::getenv("PGIVM_TYPED_COLUMNS");
  if (env == nullptr || *env == '\0') return options;
  errno = 0;
  char* end = nullptr;
  long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') {
    std::fprintf(stderr,
                 "pgivm: ignoring PGIVM_TYPED_COLUMNS=\"%s\" (not an "
                 "integer)\n",
                 env);
    return options;
  }
  if (errno == ERANGE || value > std::numeric_limits<int>::max() ||
      value < std::numeric_limits<int>::min()) {
    std::fprintf(stderr,
                 "pgivm: ignoring PGIVM_TYPED_COLUMNS=\"%s\" (out of "
                 "range)\n",
                 env);
    return options;
  }
  options.typed_columns = value != 0;
  return options;
}

}  // namespace

StorageOptions AmbientStorageOptions() {
  return ApplyEnvStorageOverride(StorageOptions{});
}

PropertyGraph::PropertyGraph() : PropertyGraph(AmbientStorageOptions()) {}

PropertyGraph::PropertyGraph(StorageOptions storage)
    : storage_(storage),
      vertex_props_(&symbols_, storage.typed_columns),
      edge_props_(&symbols_, storage.typed_columns) {}

PropertyGraph::VertexData& PropertyGraph::MutableVertex(VertexId id) {
  assert(HasVertex(id));
  return vertices_[static_cast<size_t>(id)];
}

const PropertyGraph::VertexData& PropertyGraph::GetVertex(VertexId id) const {
  assert(HasVertex(id));
  return vertices_[static_cast<size_t>(id)];
}

PropertyGraph::EdgeData& PropertyGraph::MutableEdge(EdgeId id) {
  assert(HasEdge(id));
  return edges_[static_cast<size_t>(id)];
}

const PropertyGraph::EdgeData& PropertyGraph::GetEdge(EdgeId id) const {
  assert(HasEdge(id));
  return edges_[static_cast<size_t>(id)];
}

std::vector<std::string> PropertyGraph::LabelNames(
    const std::vector<SymbolId>& ids) const {
  std::vector<std::string> names;
  names.reserve(ids.size());
  for (SymbolId id : ids) names.push_back(symbols_.Name(id));
  std::sort(names.begin(), names.end());
  return names;
}

VertexId PropertyGraph::AddVertex(std::vector<std::string> labels,
                                  ValueMap properties) {
  SortUnique(labels);
  // Null-valued entries mean "absent" everywhere in the API; normalize here.
  for (auto it = properties.begin(); it != properties.end();) {
    it = it->second.is_null() ? properties.erase(it) : std::next(it);
  }

  VertexId id = static_cast<VertexId>(vertices_.size());
  VertexData data;
  data.alive = true;
  data.labels.reserve(labels.size());
  for (const std::string& label : labels) {
    data.labels.push_back(symbols_.Intern(label));
  }
  std::sort(data.labels.begin(), data.labels.end());
  // New id is maximal, so push_back keeps every posting list sorted.
  for (SymbolId label : data.labels) {
    if (label >= label_index_.size()) label_index_.resize(label + 1);
    label_index_[label].push_back(id);
  }
  vertices_.push_back(std::move(data));
  ++live_vertex_count_;
  for (const auto& [key, value] : properties) {
    vertex_props_.Set(id, symbols_.Intern(key), value);
  }

  GraphChange change;
  change.kind = GraphChange::Kind::kAddVertex;
  change.vertex = id;
  change.labels = std::move(labels);
  change.properties = std::move(properties);
  Record(std::move(change));
  return id;
}

Result<EdgeId> PropertyGraph::AddEdge(VertexId src, VertexId dst,
                                      std::string type, ValueMap properties) {
  if (!HasVertex(src)) {
    return Status::NotFound(StrCat("source vertex ", src, " does not exist"));
  }
  if (!HasVertex(dst)) {
    return Status::NotFound(StrCat("target vertex ", dst, " does not exist"));
  }
  for (auto it = properties.begin(); it != properties.end();) {
    it = it->second.is_null() ? properties.erase(it) : std::next(it);
  }

  EdgeId id = static_cast<EdgeId>(edges_.size());
  EdgeData data;
  data.alive = true;
  data.src = src;
  data.dst = dst;
  data.type = symbols_.Intern(type);
  if (data.type >= type_index_.size()) type_index_.resize(data.type + 1);
  type_index_[data.type].push_back(id);  // new id is maximal: stays sorted
  edges_.push_back(data);
  ++live_edge_count_;
  for (const auto& [key, value] : properties) {
    edge_props_.Set(id, symbols_.Intern(key), value);
  }
  vertices_[static_cast<size_t>(src)].out_edges.push_back(id);
  vertices_[static_cast<size_t>(dst)].in_edges.push_back(id);

  GraphChange change;
  change.kind = GraphChange::Kind::kAddEdge;
  change.edge = id;
  change.src = src;
  change.dst = dst;
  change.edge_type = std::move(type);
  change.properties = std::move(properties);
  Record(std::move(change));
  return id;
}

Status PropertyGraph::RemoveEdge(EdgeId edge) {
  if (!HasEdge(edge)) {
    return Status::NotFound(StrCat("edge ", edge, " does not exist"));
  }
  EdgeData& data = MutableEdge(edge);

  GraphChange change;
  change.kind = GraphChange::Kind::kRemoveEdge;
  change.edge = edge;
  change.src = data.src;
  change.dst = data.dst;
  change.edge_type = symbols_.Name(data.type);
  change.properties = edge_props_.Collect(edge);

  EraseId(vertices_[static_cast<size_t>(data.src)].out_edges, edge);
  EraseId(vertices_[static_cast<size_t>(data.dst)].in_edges, edge);
  EraseSorted(type_index_[data.type], edge);
  data.alive = false;
  edge_props_.ClearElement(edge);
  --live_edge_count_;

  Record(std::move(change));
  return Status::Ok();
}

Status PropertyGraph::RemoveVertex(VertexId vertex) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  VertexData& data = MutableVertex(vertex);
  if (!data.out_edges.empty() || !data.in_edges.empty()) {
    return Status::FailedPrecondition(
        StrCat("vertex ", vertex,
               " still has incident edges; use DetachRemoveVertex"));
  }

  GraphChange change;
  change.kind = GraphChange::Kind::kRemoveVertex;
  change.vertex = vertex;
  change.labels = LabelNames(data.labels);
  change.properties = vertex_props_.Collect(vertex);

  for (SymbolId label : data.labels) {
    EraseSorted(label_index_[label], vertex);
  }
  data.alive = false;
  data.labels.clear();
  vertex_props_.ClearElement(vertex);
  --live_vertex_count_;

  Record(std::move(change));
  return Status::Ok();
}

Status PropertyGraph::DetachRemoveVertex(VertexId vertex) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  // Copy: RemoveEdge mutates the incident lists while we iterate.
  std::vector<EdgeId> incident = GetVertex(vertex).out_edges;
  const std::vector<EdgeId>& in = GetVertex(vertex).in_edges;
  incident.insert(incident.end(), in.begin(), in.end());
  // Self-loops appear in both lists; deduplicate.
  std::sort(incident.begin(), incident.end());
  incident.erase(std::unique(incident.begin(), incident.end()),
                 incident.end());
  for (EdgeId e : incident) PGIVM_RETURN_IF_ERROR(RemoveEdge(e));
  return RemoveVertex(vertex);
}

Status PropertyGraph::SetPropertyImpl(bool is_vertex, int64_t id,
                                      std::string key, Value value) {
  PropertyStore* store = nullptr;
  GraphChange change;
  if (is_vertex) {
    if (!HasVertex(id)) {
      return Status::NotFound(StrCat("vertex ", id, " does not exist"));
    }
    store = &vertex_props_;
    change.kind = GraphChange::Kind::kSetVertexProperty;
    change.vertex = id;
    change.labels = LabelNames(GetVertex(id).labels);
  } else {
    if (!HasEdge(id)) {
      return Status::NotFound(StrCat("edge ", id, " does not exist"));
    }
    const EdgeData& data = GetEdge(id);
    store = &edge_props_;
    change.kind = GraphChange::Kind::kSetEdgeProperty;
    change.edge = id;
    change.src = data.src;
    change.dst = data.dst;
    change.edge_type = symbols_.Name(data.type);
  }

  SymbolId key_symbol = symbols_.Intern(key);
  Value old_value = store->Get(id, key_symbol);
  if (old_value == value) return Status::Ok();  // No-op write.

  store->Set(id, key_symbol, value);

  change.property_key = std::move(key);
  change.old_value = std::move(old_value);
  change.new_value = std::move(value);
  Record(std::move(change));
  return Status::Ok();
}

Status PropertyGraph::SetVertexProperty(VertexId vertex, std::string key,
                                        Value value) {
  return SetPropertyImpl(/*is_vertex=*/true, vertex, std::move(key),
                         std::move(value));
}

Status PropertyGraph::SetEdgeProperty(EdgeId edge, std::string key,
                                      Value value) {
  return SetPropertyImpl(/*is_vertex=*/false, edge, std::move(key),
                         std::move(value));
}

Status PropertyGraph::AddVertexLabel(VertexId vertex, std::string label) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  VertexData& data = MutableVertex(vertex);
  SymbolId symbol = symbols_.Intern(label);
  auto it = std::lower_bound(data.labels.begin(), data.labels.end(), symbol);
  if (it != data.labels.end() && *it == symbol) return Status::Ok();
  data.labels.insert(it, symbol);
  if (symbol >= label_index_.size()) label_index_.resize(symbol + 1);
  InsertSorted(label_index_[symbol], vertex);

  GraphChange change;
  change.kind = GraphChange::Kind::kAddVertexLabel;
  change.vertex = vertex;
  change.labels = {std::move(label)};
  Record(std::move(change));
  return Status::Ok();
}

Status PropertyGraph::RemoveVertexLabel(VertexId vertex,
                                        const std::string& label) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  VertexData& data = MutableVertex(vertex);
  std::optional<SymbolId> symbol = symbols_.Lookup(label);
  if (!symbol) return Status::Ok();  // Never interned: no vertex has it.
  auto it = std::lower_bound(data.labels.begin(), data.labels.end(), *symbol);
  if (it == data.labels.end() || *it != *symbol) return Status::Ok();
  data.labels.erase(it);
  EraseSorted(label_index_[*symbol], vertex);

  GraphChange change;
  change.kind = GraphChange::Kind::kRemoveVertexLabel;
  change.vertex = vertex;
  change.labels = {label};
  Record(std::move(change));
  return Status::Ok();
}

Status PropertyGraph::ListAppend(VertexId vertex, const std::string& key,
                                 Value element) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  Value current = GetVertexProperty(vertex, std::string_view(key));
  ValueList elements;
  if (current.is_list()) {
    elements = current.AsList();
  } else if (!current.is_null()) {
    return Status::FailedPrecondition(
        StrCat("property '", key, "' of vertex ", vertex, " is not a list"));
  }
  elements.push_back(std::move(element));
  return SetVertexProperty(vertex, key, Value::List(std::move(elements)));
}

Status PropertyGraph::ListRemoveFirst(VertexId vertex, const std::string& key,
                                      const Value& element) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  Value current = GetVertexProperty(vertex, std::string_view(key));
  if (!current.is_list()) {
    return Status::FailedPrecondition(
        StrCat("property '", key, "' of vertex ", vertex, " is not a list"));
  }
  ValueList elements = current.AsList();
  auto it = std::find(elements.begin(), elements.end(), element);
  if (it == elements.end()) {
    return Status::NotFound(StrCat("element ", element.ToString(),
                                   " not present in list property '", key,
                                   "'"));
  }
  elements.erase(it);
  return SetVertexProperty(vertex, key, Value::List(std::move(elements)));
}

Status PropertyGraph::MapPut(VertexId vertex, const std::string& key,
                             const std::string& entry_key, Value value) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  Value current = GetVertexProperty(vertex, std::string_view(key));
  ValueMap entries;
  if (current.is_map()) {
    entries = current.AsMap();
  } else if (!current.is_null()) {
    return Status::FailedPrecondition(
        StrCat("property '", key, "' of vertex ", vertex, " is not a map"));
  }
  entries[entry_key] = std::move(value);
  return SetVertexProperty(vertex, key, Value::Map(std::move(entries)));
}

Status PropertyGraph::MapErase(VertexId vertex, const std::string& key,
                               const std::string& entry_key) {
  if (!HasVertex(vertex)) {
    return Status::NotFound(StrCat("vertex ", vertex, " does not exist"));
  }
  Value current = GetVertexProperty(vertex, std::string_view(key));
  if (!current.is_map()) {
    return Status::FailedPrecondition(
        StrCat("property '", key, "' of vertex ", vertex, " is not a map"));
  }
  ValueMap entries = current.AsMap();
  if (entries.erase(entry_key) == 0) return Status::Ok();
  return SetVertexProperty(vertex, key, Value::Map(std::move(entries)));
}

void PropertyGraph::BeginBatch() {
  assert(!in_batch_ && "batches do not nest");
  in_batch_ = true;
  pending_.changes.clear();
}

void PropertyGraph::CommitBatch() {
  assert(in_batch_);
  in_batch_ = false;
  if (pending_.empty()) return;
  GraphDelta delta;
  delta.changes.swap(pending_.changes);
  Emit(std::move(delta));
}

void PropertyGraph::AddListener(GraphListener* listener) {
  listeners_.push_back(listener);
}

void PropertyGraph::RemoveListener(GraphListener* listener) {
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

void PropertyGraph::Record(GraphChange change) {
  if (in_batch_) {
    pending_.changes.push_back(std::move(change));
    return;
  }
  GraphDelta delta;
  delta.changes.push_back(std::move(change));
  Emit(std::move(delta));
}

void PropertyGraph::Emit(GraphDelta delta) {
  for (GraphListener* listener : listeners_) {
    listener->OnGraphDelta(delta);
  }
}

bool PropertyGraph::HasVertex(VertexId vertex) const {
  return vertex >= 0 && static_cast<size_t>(vertex) < vertices_.size() &&
         vertices_[static_cast<size_t>(vertex)].alive;
}

bool PropertyGraph::HasEdge(EdgeId edge) const {
  return edge >= 0 && static_cast<size_t>(edge) < edges_.size() &&
         edges_[static_cast<size_t>(edge)].alive;
}

std::vector<std::string> PropertyGraph::VertexLabels(VertexId vertex) const {
  return LabelNames(GetVertex(vertex).labels);
}

bool PropertyGraph::VertexHasLabel(VertexId vertex,
                                   std::string_view label) const {
  std::optional<SymbolId> symbol = symbols_.Lookup(label);
  return symbol && VertexHasLabel(vertex, *symbol);
}

Value PropertyGraph::GetVertexProperty(VertexId vertex,
                                       std::string_view key) const {
  assert(HasVertex(vertex));
  std::optional<SymbolId> symbol = symbols_.Lookup(key);
  return symbol ? vertex_props_.Get(vertex, *symbol) : Value::Null();
}

Value PropertyGraph::GetEdgeProperty(EdgeId edge, std::string_view key) const {
  assert(HasEdge(edge));
  std::optional<SymbolId> symbol = symbols_.Lookup(key);
  return symbol ? edge_props_.Get(edge, *symbol) : Value::Null();
}

ValueMap PropertyGraph::VertexProperties(VertexId vertex) const {
  assert(HasVertex(vertex));
  return vertex_props_.Collect(vertex);
}

ValueMap PropertyGraph::EdgeProperties(EdgeId edge) const {
  assert(HasEdge(edge));
  return edge_props_.Collect(edge);
}

VertexId PropertyGraph::EdgeSource(EdgeId edge) const {
  return GetEdge(edge).src;
}

VertexId PropertyGraph::EdgeTarget(EdgeId edge) const {
  return GetEdge(edge).dst;
}

const std::string& PropertyGraph::EdgeType(EdgeId edge) const {
  return symbols_.Name(GetEdge(edge).type);
}

const std::vector<EdgeId>& PropertyGraph::OutEdges(VertexId vertex) const {
  return GetVertex(vertex).out_edges;
}

const std::vector<EdgeId>& PropertyGraph::InEdges(VertexId vertex) const {
  return GetVertex(vertex).in_edges;
}

std::vector<VertexId> PropertyGraph::VerticesWithLabel(
    std::string_view label) const {
  std::optional<SymbolId> symbol = symbols_.Lookup(label);
  if (!symbol) return {};
  return VerticesWithLabelId(*symbol);
}

std::vector<EdgeId> PropertyGraph::EdgesWithType(std::string_view type) const {
  std::optional<SymbolId> symbol = symbols_.Lookup(type);
  if (!symbol) return {};
  return EdgesWithTypeId(*symbol);
}

const std::vector<SymbolId>& PropertyGraph::VertexLabelIds(
    VertexId vertex) const {
  return GetVertex(vertex).labels;
}

bool PropertyGraph::VertexHasLabel(VertexId vertex, SymbolId label) const {
  const std::vector<SymbolId>& labels = GetVertex(vertex).labels;
  return std::binary_search(labels.begin(), labels.end(), label);
}

Value PropertyGraph::GetVertexProperty(VertexId vertex, SymbolId key) const {
  assert(HasVertex(vertex));
  if (key == kNoSymbol) return Value::Null();
  return vertex_props_.Get(vertex, key);
}

Value PropertyGraph::GetEdgeProperty(EdgeId edge, SymbolId key) const {
  assert(HasEdge(edge));
  if (key == kNoSymbol) return Value::Null();
  return edge_props_.Get(edge, key);
}

SymbolId PropertyGraph::EdgeTypeId(EdgeId edge) const {
  return GetEdge(edge).type;
}

const std::vector<VertexId>& PropertyGraph::VerticesWithLabelId(
    SymbolId label) const {
  static const std::vector<VertexId> kEmpty;
  if (label >= label_index_.size()) return kEmpty;  // covers kNoSymbol
  return label_index_[label];
}

const std::vector<EdgeId>& PropertyGraph::EdgesWithTypeId(
    SymbolId type) const {
  static const std::vector<EdgeId> kEmpty;
  if (type >= type_index_.size()) return kEmpty;  // covers kNoSymbol
  return type_index_[type];
}

void PropertyGraph::ForEachVertex(
    const std::function<void(VertexId)>& fn) const {
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (vertices_[i].alive) fn(static_cast<VertexId>(i));
  }
}

void PropertyGraph::ForEachEdge(const std::function<void(EdgeId)>& fn) const {
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].alive) fn(static_cast<EdgeId>(i));
  }
}

size_t PropertyGraph::ApproxMemoryBytes() const {
  size_t bytes = vertices_.capacity() * sizeof(VertexData) +
                 edges_.capacity() * sizeof(EdgeData);
  for (const VertexData& v : vertices_) {
    bytes += v.labels.capacity() * sizeof(SymbolId);
    bytes += (v.out_edges.capacity() + v.in_edges.capacity()) * sizeof(EdgeId);
  }
  bytes += symbols_.ApproxMemoryBytes();
  bytes += vertex_props_.ApproxMemoryBytes();
  bytes += edge_props_.ApproxMemoryBytes();
  for (const std::vector<VertexId>& ids : label_index_) {
    bytes += ids.capacity() * sizeof(VertexId);
  }
  for (const std::vector<EdgeId>& ids : type_index_) {
    bytes += ids.capacity() * sizeof(EdgeId);
  }
  return bytes;
}

}  // namespace pgivm
