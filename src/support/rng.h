#ifndef PGIVM_SUPPORT_RNG_H_
#define PGIVM_SUPPORT_RNG_H_

#include <cstdint>

namespace pgivm {

/// Deterministic, seedable pseudo-random generator (splitmix64 + xoshiro-ish
/// mixing). Used by workload generators and property tests so runs are
/// reproducible across platforms, unlike std::mt19937 distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ^ 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

 private:
  uint64_t state_;
};

}  // namespace pgivm

#endif  // PGIVM_SUPPORT_RNG_H_
