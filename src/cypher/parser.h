#ifndef PGIVM_CYPHER_PARSER_H_
#define PGIVM_CYPHER_PARSER_H_

#include <string_view>

#include "cypher/ast.h"
#include "support/status.h"

namespace pgivm {

/// Parses `query` (one openCypher read query) into an AST.
///
/// Grammar (fragment): `[OPTIONAL] MATCH ... [WHERE ...]`, `UNWIND ... AS x`,
/// `WITH [DISTINCT] items [WHERE ...]`, terminated by
/// `RETURN [DISTINCT] items [SKIP n] [LIMIT n]`.
/// Anonymous pattern elements get generated `#anonN` variables; return items
/// without `AS` get their source text as alias (made unique if needed).
Result<Query> ParseQuery(std::string_view query);

}  // namespace pgivm

#endif  // PGIVM_CYPHER_PARSER_H_
