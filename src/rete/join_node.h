#ifndef PGIVM_RETE_JOIN_NODE_H_
#define PGIVM_RETE_JOIN_NODE_H_

#include <unordered_map>
#include <vector>

#include "rete/node.h"

namespace pgivm {

/// Key extraction / tuple combination plan shared by the binary nodes.
/// Computed once from the two input schemas: natural join on the columns
/// whose names match; output = left columns + right-only columns.
struct JoinLayout {
  std::vector<int> left_key;    // key column indices in the left schema
  std::vector<int> right_key;   // matching indices in the right schema
  std::vector<int> right_rest;  // right columns appended to the output

  static JoinLayout Make(const Schema& left, const Schema& right);
};

/// ⋈ — incremental natural join with bag semantics. Both sides keep a
/// key-indexed counted memory; Δ(L⋈R) = ΔL⋈R ∪ L'⋈ΔR is realized by
/// updating the arriving side's memory first and probing the opposite
/// memory, so each delta entry joins against the correct snapshot.
class JoinNode : public ReteNode {
 public:
  JoinNode(Schema schema, const Schema& left, const Schema& right);

  void OnDelta(int port, const Delta& delta) override;

  /// Replays L ⋈ R by probing the two memories — one output entry per
  /// matching (left, right) pair, so replay work is proportional to the
  /// join's current result size, not to its input sizes.
  bool ReplayOutput(Delta& out) const override;

  void Reset() override {
    left_memory_.clear();
    right_memory_.clear();
  }

  size_t ApproxMemoryBytes() const override;

  std::string DebugString() const override;
  const char* KindName() const override { return "Join"; }

 private:
  /// key tuple -> (full tuple -> count).
  using Memory = std::unordered_map<Tuple, Bag, TupleHash>;

  void Apply(Memory& memory, const Tuple& key, const Tuple& tuple,
             int64_t multiplicity);

  Tuple Combine(const Tuple& left, const Tuple& right) const;

  JoinLayout layout_;
  Memory left_memory_;
  Memory right_memory_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_JOIN_NODE_H_
