// E3 (serving) — reader throughput against epoch-published snapshots.
//
// Three angles on the serving path this library now exposes: the cost of
// pinning an unchanged view (the polling fast path — one atomic
// shared_ptr load), the cost of Snapshot()'s row copy on top of it, and
// reader throughput while a sustained writer churns the graph through
// the ingest queue (the contended path: every commit publishes new
// epochs while readers pin concurrently).

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <atomic>
#include <memory>
#include <thread>

#include "engine/query_engine.h"

namespace pgivm {
namespace {

constexpr char kQuery[] = "MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p, c";

struct ServingFixture {
  explicit ServingFixture(int posts = 50, int replies = 4)
      : engine(&graph, Options()) {
    for (int p = 0; p < posts; ++p) {
      VertexId post = graph.AddVertex({"Post"});
      for (int r = 0; r < replies; ++r) {
        VertexId comment = graph.AddVertex({"Comm"});
        (void)graph.AddEdge(post, comment, "REPLY").value();
      }
    }
    view = engine.Register(kQuery).value();
  }

  static EngineOptions Options() {
    EngineOptions options;
    options.ingest_queue_depth = 128;
    return options;
  }

  PropertyGraph graph;
  QueryEngine engine;
  std::shared_ptr<View> view;
};

/// The polling fast path: Pin() on a view whose epoch has not moved is
/// one atomic load of the cached ViewSnapshot.
void BM_E3_PinUnchangedView(benchmark::State& state) {
  ServingFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.view->Pin());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_E3_PinUnchangedView);

/// Snapshot() = Pin() + copying the sorted rows out (the seed API shape,
/// kept for convenience). The gap to PinUnchangedView is the copy.
void BM_E3_SnapshotUnchangedView(benchmark::State& state) {
  ServingFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.view->Snapshot());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_E3_SnapshotUnchangedView);

/// Reader throughput while the ingest thread applies a sustained stream
/// of mutations: every batch commit publishes fresh epochs, so Pin()
/// alternates between the cached-epoch fast path and rebuilding the
/// rendering for a new epoch. items_per_second is pins per second seen
/// by one reader under full writer pressure.
void BM_E3_PinUnderIngestChurn(benchmark::State& state) {
  ServingFixture f;
  f.engine.StartIngest();
  std::atomic<bool> stop{false};
  std::thread writer([&f, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      f.engine.SubmitAsync([](PropertyGraph& g) {
        VertexId post = g.AddVertex({"Post"});
        VertexId comment = g.AddVertex({"Comm"});
        (void)g.AddEdge(post, comment, "REPLY");
      });
    }
  });
  int64_t rows = 0;
  for (auto _ : state) {
    std::shared_ptr<const ViewSnapshot> snap = f.view->Pin();
    rows += snap->total_rows();
    benchmark::DoNotOptimize(snap);
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  f.engine.StopIngest();
  state.SetItemsProcessed(state.iterations());
  state.counters["ingest_batches"] =
      static_cast<double>(f.engine.ingest_batches());
  state.counters["ingest_mutations"] =
      static_cast<double>(f.engine.ingest_mutations());
  benchmark::DoNotOptimize(rows);
}
BENCHMARK(BM_E3_PinUnderIngestChurn)->Iterations(20000);

}  // namespace
}  // namespace pgivm

PGIVM_BENCHMARK_MAIN();
