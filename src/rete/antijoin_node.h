#ifndef PGIVM_RETE_ANTIJOIN_NODE_H_
#define PGIVM_RETE_ANTIJOIN_NODE_H_

#include <unordered_map>

#include "rete/join_node.h"
#include "rete/node.h"

namespace pgivm {

/// ▷ — incremental anti semi-join: emits the left tuples that have *no*
/// partner in the right input (matching on shared column names). Used
/// directly for negative conditions and as a building block of the
/// OPTIONAL MATCH outer join.
///
/// State: the left memory (key → counted tuples) plus a per-key support
/// count of right rows; left tuples toggle in/out of the output when their
/// key's right support transitions 0 ↔ positive.
class AntiJoinNode : public ReteNode {
 public:
  AntiJoinNode(Schema schema, const Schema& left, const Schema& right);

  void OnDelta(int port, const Delta& delta) override;

  /// Replays the currently unmatched left tuples (keys with zero right
  /// support).
  bool ReplayOutput(Delta& out) const override;

  void Reset() override {
    left_memory_.clear();
    right_support_.clear();
  }

  size_t ApproxMemoryBytes() const override;

  std::string DebugString() const override { return "AntiJoin"; }
  const char* KindName() const override { return "AntiJoin"; }

 private:
  JoinLayout layout_;
  std::unordered_map<Tuple, Bag, TupleHash> left_memory_;
  std::unordered_map<Tuple, int64_t, TupleHash> right_support_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_ANTIJOIN_NODE_H_
