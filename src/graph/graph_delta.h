#ifndef PGIVM_GRAPH_GRAPH_DELTA_H_
#define PGIVM_GRAPH_GRAPH_DELTA_H_

#include <string>
#include <vector>

#include "value/ids.h"
#include "value/value.h"

namespace pgivm {

/// One elementary, self-contained graph mutation. "Self-contained" means a
/// consumer can translate the change into relational deltas without reading
/// the pre-state of the graph: removal records carry the removed payload and
/// property updates carry both old and new value.
struct GraphChange {
  enum class Kind {
    kAddVertex,
    kRemoveVertex,
    kAddEdge,
    kRemoveEdge,
    kSetVertexProperty,
    kSetEdgeProperty,
    kAddVertexLabel,
    kRemoveVertexLabel,
  };

  Kind kind;

  /// Subject element. Exactly one of vertex/edge is meaningful per kind.
  VertexId vertex = kInvalidId;
  EdgeId edge = kInvalidId;

  /// Edge endpoints and type (edge kinds and edge-property kinds).
  VertexId src = kInvalidId;
  VertexId dst = kInvalidId;
  std::string edge_type;

  /// Vertex labels: the full label set at add/remove time, or the single
  /// label added/removed for the label kinds. For property kinds, the
  /// subject's current labels (vertex) — lets consumers filter by label.
  std::vector<std::string> labels;

  /// Full property snapshot for add/remove kinds.
  ValueMap properties;

  /// Property-update payload (kSet*Property). A null Value means "absent",
  /// so set-from-absent has null old_value and erase has null new_value.
  std::string property_key;
  Value old_value;
  Value new_value;

  std::string ToString() const;
};

/// An ordered batch of changes emitted atomically (one listener call). The
/// changes have already been applied to the graph when listeners run, in
/// the order recorded here.
struct GraphDelta {
  std::vector<GraphChange> changes;

  bool empty() const { return changes.empty(); }
  size_t size() const { return changes.size(); }
  std::string ToString() const;
};

/// Observer interface for live graph consumers (the IVM engine, logs, ...).
class GraphListener {
 public:
  virtual ~GraphListener() = default;

  /// Called after `delta` has been fully applied to the graph.
  virtual void OnGraphDelta(const GraphDelta& delta) = 0;
};

}  // namespace pgivm

#endif  // PGIVM_GRAPH_GRAPH_DELTA_H_
