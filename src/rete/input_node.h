#ifndef PGIVM_RETE_INPUT_NODE_H_
#define PGIVM_RETE_INPUT_NODE_H_

#include <string>
#include <vector>

#include "algebra/operator.h"
#include "graph/property_graph.h"
#include "rete/node.h"
#include "rete/sharded_map.h"

namespace pgivm {

/// Mixin for nodes at the graph boundary: the network forwards every
/// GraphChange to them, and asks once for the pre-existing graph state when
/// a view is registered on a non-empty graph.
class GraphSourceNode {
 public:
  virtual ~GraphSourceNode() = default;

  /// Translates one (already applied) graph change into relational deltas.
  virtual void HandleChange(const GraphChange& change) = 0;

  /// True when HandleChange factorizes over graph entities, i.e. the node
  /// supports HandleChangePartition. Sources whose translation has
  /// cross-entity state (path enumeration, the Unit relation) stay serial.
  virtual bool translation_partitionable() const { return false; }

  /// Partitioned translation: handles `change` restricted to the entities
  /// partition `partition` (of `partitions`) owns, appending relational
  /// deltas to `out` instead of emitting. Entity ownership is
  /// MorselPartitionOfHash over the vertex/edge id, so each entity is
  /// translated by exactly one partition and a partition's writes to the
  /// node's sharded asserted-state stay within the shards it owns. Within
  /// a partition, changes keep their batch order; equal emitted tuples
  /// always carry the entity id, so they originate from one entity — one
  /// partition — and the scheduler's consolidation is order-insensitive
  /// across partitions. Only called when translation_partitionable().
  virtual void HandleChangePartition(const GraphChange& change,
                                     uint32_t partition, uint32_t partitions,
                                     Delta& out) {
    (void)change;
    (void)partition;
    (void)partitions;
    (void)out;
  }

  /// Asserts the tuples for the current graph content.
  virtual void EmitInitialFromGraph() = 0;
};

/// ◯ — the get-vertices base relation: one tuple [v, extracts...] per live
/// vertex carrying all required labels.
///
/// The node keeps the currently asserted tuple per vertex, so updates are
/// translated into exact retract/assert pairs even inside multi-change
/// batches (each change is applied to the stored tuple, never re-read from
/// intermediate graph state). The asserted map is sharded by vertex id so
/// parallel translation partitions write disjoint shards.
class VertexInputNode : public ReteNode, public GraphSourceNode {
 public:
  VertexInputNode(Schema schema, const PropertyGraph* graph,
                  std::vector<std::string> required_labels,
                  std::vector<PropertyExtract> extracts);

  void OnDelta(int port, const Delta& delta) override;
  void HandleChange(const GraphChange& change) override;
  bool translation_partitionable() const override { return true; }
  void HandleChangePartition(const GraphChange& change, uint32_t partition,
                             uint32_t partitions, Delta& out) override;
  void EmitInitialFromGraph() override;

  /// Replays the asserted tuple of every live matching vertex.
  bool ReplayOutput(Delta& out) const override;

  void Reset() override { asserted_.clear(); }

  size_t ApproxMemoryBytes() const override;
  std::string DebugString() const override;
  const char* KindName() const override { return "VertexInput"; }

 private:
  bool Matches(const std::vector<std::string>& labels) const;
  /// Label test against live graph state: resolved symbols + binary search
  /// over the vertex's sorted label-id set — no string handling.
  bool MatchesGraph(VertexId v) const;
  Tuple BuildTuple(VertexId v, const std::vector<std::string>& labels,
                   const ValueMap& properties) const;
  /// Builds the tuple from live graph state via the interned fast path:
  /// property extracts are O(1) column probes through the resolved key
  /// symbols (strings are materialized only for labels()/property-map
  /// extracts). Must produce exactly what BuildTuple produces from a
  /// change record of the same state — the asserted map mixes both.
  Tuple BuildTupleFromGraph(VertexId v) const;
  static Value ExtractValue(const PropertyExtract& extract,
                            const std::vector<std::string>& labels,
                            const ValueMap& properties);
  /// Shared body of HandleChange (partition 0 of 1) and
  /// HandleChangePartition: every handled change kind is keyed by
  /// change.vertex, so a partition simply skips vertices it doesn't own.
  void TranslateChange(const GraphChange& change, uint32_t partition,
                       uint32_t partitions, Delta& out);

  const PropertyGraph* graph_;
  std::vector<std::string> required_labels_;  // sorted
  std::vector<PropertyExtract> extracts_;
  // Plan-time name→symbol resolution (lazy, cached): one ref per required
  // label, and one per extract (meaningful for kProperty only).
  std::vector<SymbolRef> required_label_refs_;
  std::vector<SymbolRef> extract_key_refs_;
  ShardedIdMap<VertexId, Tuple> asserted_;
};

/// ⇑ — the get-edges base relation: one tuple [src, e, dst, extracts...]
/// per live edge of a matching type (two orientation tuples for undirected
/// patterns). Extracts may read the edge's own properties/type or the
/// endpoint vertices' properties/labels — the node reacts to endpoint
/// updates via the incident-edge lists. The asserted map is sharded by
/// edge id; partitioned translation owns edges (vertex-side updates are
/// scanned by every partition, each refreshing only the incident edges it
/// owns).
class EdgeInputNode : public ReteNode, public GraphSourceNode {
 public:
  EdgeInputNode(Schema schema, const PropertyGraph* graph,
                std::vector<std::string> types, bool undirected,
                std::string src_var, std::string edge_var,
                std::string dst_var, std::vector<PropertyExtract> extracts);

  void OnDelta(int port, const Delta& delta) override;
  void HandleChange(const GraphChange& change) override;
  bool translation_partitionable() const override { return true; }
  void HandleChangePartition(const GraphChange& change, uint32_t partition,
                             uint32_t partitions, Delta& out) override;
  void EmitInitialFromGraph() override;

  /// Replays the asserted orientation tuples of every live matching edge.
  bool ReplayOutput(Delta& out) const override;

  void Reset() override { asserted_.clear(); }

  size_t ApproxMemoryBytes() const override;
  std::string DebugString() const override;
  const char* KindName() const override { return "EdgeInput"; }

 private:
  bool TypeMatches(const std::string& type) const;
  /// Type test against an interned type symbol (live graph state).
  bool TypeMatchesId(SymbolId type) const;
  /// Builds the tuple for orientation (a -> b) of edge `e` from a change
  /// record's type/properties. Extract `i` reads through extracts_[i] /
  /// extract_key_refs_[i].
  Tuple BuildTuple(VertexId a, VertexId b, EdgeId e, const std::string& type,
                   const ValueMap& edge_properties) const;
  /// Builds the same tuple from live graph state via the interned fast
  /// path: edge/endpoint property extracts are O(1) column probes, no
  /// per-tuple string hashing or property-map materialization. Must agree
  /// with BuildTuple on identical state — the asserted map mixes both.
  Tuple BuildTupleFromGraph(VertexId a, VertexId b, EdgeId e) const;
  Value ExtractValue(size_t i, VertexId a, VertexId b,
                     const std::string& type,
                     const ValueMap& edge_properties) const;
  void AssertEdge(EdgeId e, VertexId src, VertexId dst,
                  const std::string& type, const ValueMap& edge_properties,
                  Delta& out);
  /// AssertEdge reading live graph state (priming path).
  void AssertEdgeFromGraph(EdgeId e, Delta& out);
  /// Recomputes stored tuples of every incident edge of `v` that
  /// `partition` owns after a vertex-side update.
  void RefreshIncident(VertexId v, uint32_t partition, uint32_t partitions,
                       Delta& out);
  void TranslateChange(const GraphChange& change, uint32_t partition,
                       uint32_t partitions, Delta& out);

  const PropertyGraph* graph_;
  std::vector<std::string> types_;
  bool undirected_;
  std::string src_var_;
  std::string edge_var_;
  std::string dst_var_;
  std::vector<PropertyExtract> extracts_;
  // Plan-time name→symbol resolution (lazy, cached): one ref per allowed
  // type, and one per extract (meaningful for kProperty only).
  std::vector<SymbolRef> type_refs_;
  std::vector<SymbolRef> extract_key_refs_;
  bool depends_on_vertices_ = false;
  ShardedIdMap<EdgeId, std::vector<Tuple>> asserted_;
};

/// The Unit relation: exactly one empty tuple, asserted at startup. Base of
/// pattern-free queries (`UNWIND [1,2] AS x RETURN x`).
class UnitInputNode : public ReteNode, public GraphSourceNode {
 public:
  UnitInputNode() : ReteNode(Schema{}) {}

  void OnDelta(int port, const Delta& delta) override;
  void HandleChange(const GraphChange& /*change*/) override {}
  void EmitInitialFromGraph() override { Emit({{Tuple(), 1}}); }

  /// The Unit relation's content is constant: the single empty tuple.
  bool ReplayOutput(Delta& out) const override {
    out.push_back({Tuple(), 1});
    return true;
  }

  std::string DebugString() const override { return "Unit"; }
  const char* KindName() const override { return "UnitInput"; }
};

}  // namespace pgivm

#endif  // PGIVM_RETE_INPUT_NODE_H_
