#ifndef PGIVM_GRAPH_GRAPH_STATS_H_
#define PGIVM_GRAPH_GRAPH_STATS_H_

#include <map>
#include <string>

#include "graph/property_graph.h"

namespace pgivm {

/// Snapshot statistics of a property graph: cardinalities per label/type,
/// degree aggregates, and property-key usage. Used by the workload
/// generators' reports and handy for sizing experiments.
struct GraphStats {
  size_t vertex_count = 0;
  size_t edge_count = 0;
  std::map<std::string, size_t> vertices_per_label;
  std::map<std::string, size_t> edges_per_type;
  std::map<std::string, size_t> vertex_property_keys;  // key -> #vertices
  std::map<std::string, size_t> edge_property_keys;    // key -> #edges
  size_t max_out_degree = 0;
  size_t max_in_degree = 0;
  double avg_degree = 0.0;  // (in+out)/2 per vertex

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Computes statistics by one pass over the graph.
GraphStats ComputeGraphStats(const PropertyGraph& graph);

/// Order-stable 64-bit fingerprint of the full graph content: every live
/// vertex (id, labels, properties) and edge (id, endpoints, type,
/// properties), visited in increasing id order with sorted property maps —
/// no unordered-container iteration anywhere, so equal graphs hash equal on
/// every run, platform and thread setting. Two graphs built by the same
/// deterministic mutation sequence must fingerprint identically; this is
/// the bit-parity anchor of the SNB driver's validation mode and the
/// generator determinism tests.
uint64_t GraphFingerprint(const PropertyGraph& graph);

}  // namespace pgivm

#endif  // PGIVM_GRAPH_GRAPH_STATS_H_
