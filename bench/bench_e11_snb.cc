// E11 — LDBC-SNB-style interactive mix: latency percentiles under load.
//
// The SNB driver (workload/snb_driver.h) replays a deterministic weighted
// read/write stream — complex reads pin standing IC-style views, short
// reads do point lookups against pinned profile snapshots, updates flow
// through the serving ingest queue — from N concurrent client threads.
// This benchmark sweeps scale factor × client threads × morsel delivery
// and reports the per-op-class p50/p95/p99 (microseconds) as counters,
// which is what BENCH_bench_e11_snb.json carries into the results table.
//
// BM_E11_SnbValidationSweep additionally replays the stream in validation
// mode (single-threaded, serial reference engine, bit-parity checks) for
// each engine shape, so the numbers above are backed by a correctness
// proof on the same workload: parity_ok=1 means every check passed.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cstdint>

#include "workload/snb_driver.h"

namespace pgivm {
namespace {

/// sf is passed in hundredths (benchmark args are integers): 5 -> SF 0.05.
SnbDriverConfig DriverConfig(int sf_hundredths, int clients, bool morsel) {
  SnbDriverConfig config;
  config.scale_factor = static_cast<double>(sf_hundredths) / 100.0;
  config.seed = 42;
  config.client_threads = clients;
  config.operations = 2000;
  config.engine.network.propagation = PropagationStrategy::kBatched;
  if (clients > 1) {
    // Concurrent clients get a parallel drain to push against.
    config.engine.network.executor = ExecutorKind::kParallel;
    config.engine.network.num_threads = 4;
    config.engine.network.parallel_min_wave_entries = 0;
  }
  if (morsel) {
    config.engine.network.morsel_min_node_entries = 0;
  } else {
    config.engine.network.morsel_partitions = 1;
  }
  return config;
}

void ExportClass(benchmark::State& state, const char* prefix,
                 const SnbClassStats& stats) {
  const HistogramSnapshot& h = stats.latency_ns;
  state.counters[std::string(prefix) + "_ops"] =
      static_cast<double>(stats.operations);
  state.counters[std::string(prefix) + "_p50_us"] =
      static_cast<double>(h.P50()) / 1000.0;
  state.counters[std::string(prefix) + "_p95_us"] =
      static_cast<double>(h.P95()) / 1000.0;
  state.counters[std::string(prefix) + "_p99_us"] =
      static_cast<double>(h.P99()) / 1000.0;
}

/// Timed interactive mix. Manual time: one iteration is one full stream
/// replay, clocked by the driver itself (excludes population/registration).
void BM_E11_SnbInteractive(benchmark::State& state) {
  const int sf_hundredths = static_cast<int>(state.range(0));
  const int clients = static_cast<int>(state.range(1));
  const bool morsel = state.range(2) != 0;
  SnbReport last;
  for (auto _ : state) {
    SnbDriver driver(DriverConfig(sf_hundredths, clients, morsel));
    Result<SnbReport> report = driver.RunTimed();
    if (!report.ok()) {
      state.SkipWithError(report.status().message().c_str());
      return;
    }
    last = *report;
    state.SetIterationTime(static_cast<double>(last.elapsed_ns) / 1e9);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
  ExportClass(state, "complex", last.complex_read);
  ExportClass(state, "short", last.short_read);
  ExportClass(state, "update", last.update);
  state.counters["ops_per_s"] = last.operations_per_second;
  state.counters["ingest_batches"] = static_cast<double>(last.ingest_batches);
}
BENCHMARK(BM_E11_SnbInteractive)
    ->ArgNames({"sf", "clients", "morsel"})
    ->Args({5, 1, 0})
    ->Args({5, 8, 0})
    ->Args({5, 8, 1})
    ->Args({20, 1, 0})
    ->Args({20, 8, 0})
    ->Args({20, 8, 1})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// Validation replay of the same workload shapes: parity_ok=1 means the
/// maintained views stayed bit-identical to the serial reference across
/// the whole stream. One iteration is plenty — the stream is deterministic.
void BM_E11_SnbValidationSweep(benchmark::State& state) {
  const int sf_hundredths = static_cast<int>(state.range(0));
  const bool morsel = state.range(1) != 0;
  SnbDriverConfig config = DriverConfig(sf_hundredths, /*clients=*/1, morsel);
  config.operations = 500;
  config.validate_every = 4;  // full cross-view sweep every 4th update
  double parity_ok = 1.0;
  double parity_checks = 0.0;
  for (auto _ : state) {
    SnbDriver driver(config);
    Result<SnbReport> report = driver.RunValidation();
    if (!report.ok()) {
      parity_ok = 0.0;
      state.SkipWithError(report.status().message().c_str());
      return;
    }
    parity_checks = static_cast<double>(report->parity_checks);
  }
  state.counters["parity_ok"] = parity_ok;
  state.counters["parity_checks"] = parity_checks;
}
BENCHMARK(BM_E11_SnbValidationSweep)
    ->ArgNames({"sf", "morsel"})
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({20, 0})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pgivm

PGIVM_BENCHMARK_MAIN();
