#include "algebra/operator.h"

#include <functional>
#include <sstream>
#include <unordered_set>

#include "support/string_util.h"

namespace pgivm {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kUnit:
      return "Unit";
    case OpKind::kGetVertices:
      return "GetVertices";
    case OpKind::kGetEdges:
      return "GetEdges";
    case OpKind::kExpand:
      return "Expand";
    case OpKind::kPathJoin:
      return "PathJoin";
    case OpKind::kSelection:
      return "Selection";
    case OpKind::kProjection:
      return "Projection";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kLeftOuterJoin:
      return "LeftOuterJoin";
    case OpKind::kAntiJoin:
      return "AntiJoin";
    case OpKind::kSemiJoin:
      return "SemiJoin";
    case OpKind::kUnion:
      return "Union";
    case OpKind::kDistinct:
      return "Distinct";
    case OpKind::kAggregate:
      return "Aggregate";
    case OpKind::kUnnest:
      return "Unnest";
    case OpKind::kProduce:
      return "Produce";
  }
  return "Unknown";
}

std::string PropertyExtract::ToString() const {
  switch (what) {
    case What::kProperty:
      return StrCat(element_var, ".", key, " -> ", column_name);
    case What::kLabels:
      return StrCat("labels(", element_var, ") -> ", column_name);
    case What::kType:
      return StrCat("type(", element_var, ") -> ", column_name);
    case What::kPropertyMap:
      return StrCat("properties(", element_var, ") -> ", column_name);
  }
  return "?";
}

std::string LogicalOp::DebugString() const {
  std::ostringstream os;
  os << OpKindName(kind);
  auto print_extracts = [&os](const std::vector<PropertyExtract>& ex) {
    if (ex.empty()) return;
    os << " {";
    for (size_t i = 0; i < ex.size(); ++i) {
      if (i > 0) os << ", ";
      os << ex[i].ToString();
    }
    os << "}";
  };
  switch (kind) {
    case OpKind::kUnit:
      break;
    case OpKind::kGetVertices:
      os << " " << vertex_var;
      for (const std::string& l : labels) os << ":" << l;
      print_extracts(extracts);
      break;
    case OpKind::kGetEdges: {
      const char* arrow_in = direction == EdgeDirection::kIn ? "<-" : "-";
      const char* arrow_out = direction == EdgeDirection::kOut ? "->" : "-";
      os << " (" << src_var << ")" << arrow_in << "[" << edge_var;
      for (size_t i = 0; i < edge_types.size(); ++i) {
        os << (i == 0 ? ":" : "|") << edge_types[i];
      }
      os << "]" << arrow_out << "(" << dst_var << ")";
      print_extracts(extracts);
      break;
    }
    case OpKind::kExpand:
    case OpKind::kPathJoin: {
      const char* arrow_in = direction == EdgeDirection::kIn ? "<-" : "-";
      const char* arrow_out = direction == EdgeDirection::kOut ? "->" : "-";
      os << " (" << src_var << ")" << arrow_in << "[";
      if (!edge_var.empty()) os << edge_var;
      for (size_t i = 0; i < edge_types.size(); ++i) {
        os << (i == 0 ? ":" : "|") << edge_types[i];
      }
      if (variable_length) {
        os << "*" << min_hops << "..";
        if (max_hops >= 0) os << max_hops;
      }
      os << "]" << arrow_out << "(" << dst_var << ")";
      if (!path_var.empty()) os << " path=" << path_var;
      break;
    }
    case OpKind::kSelection:
      os << " " << predicate->ToString();
      break;
    case OpKind::kProjection:
    case OpKind::kProduce: {
      os << " ";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i > 0) os << ", ";
        os << projections[i].second->ToString() << " AS "
           << projections[i].first;
      }
      break;
    }
    case OpKind::kJoin:
    case OpKind::kLeftOuterJoin:
    case OpKind::kAntiJoin:
    case OpKind::kSemiJoin:
    case OpKind::kUnion:
    case OpKind::kDistinct:
      break;
    case OpKind::kAggregate: {
      os << " group[";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i > 0) os << ", ";
        os << group_by[i].second->ToString() << " AS " << group_by[i].first;
      }
      os << "] agg[";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) os << ", ";
        os << aggregates[i].second->ToString() << " AS "
           << aggregates[i].first;
      }
      os << "]";
      break;
    }
    case OpKind::kUnnest:
      os << " " << unnest_expr->ToString() << " AS " << unnest_alias;
      break;
  }
  return os.str();
}

OpPtr MakeOp(OpKind kind, std::vector<OpPtr> children) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = kind;
  op->children = std::move(children);
  return op;
}

OpPtr CloneTree(const OpPtr& op) {
  auto copy = std::make_shared<LogicalOp>(*op);
  for (OpPtr& child : copy->children) child = CloneTree(child);
  return copy;
}

void CollectPostOrder(const OpPtr& root, std::vector<OpPtr>& out) {
  for (const OpPtr& child : root->children) CollectPostOrder(child, out);
  out.push_back(root);
}

namespace {

Status CheckArity(const LogicalOp& op, size_t want) {
  if (op.children.size() != want) {
    return Status::Internal(StrCat(OpKindName(op.kind), " expects ", want,
                                   " children, has ", op.children.size()));
  }
  return Status::Ok();
}

Status AddUnique(Schema& schema, Attribute attr, const LogicalOp& op) {
  if (schema.Contains(attr.name)) {
    return Status::InvalidArgument(
        StrCat(OpKindName(op.kind), ": duplicate column '", attr.name, "'"));
  }
  schema.Add(std::move(attr));
  return Status::Ok();
}

Status AddExtracts(Schema& schema, const LogicalOp& op) {
  for (const PropertyExtract& extract : op.extracts) {
    if (!schema.Contains(extract.element_var)) {
      return Status::InvalidArgument(
          StrCat("extract refers to unknown column '", extract.element_var,
                 "' in ", OpKindName(op.kind)));
    }
    PGIVM_RETURN_IF_ERROR(AddUnique(
        schema, {extract.column_name, Attribute::Kind::kValue}, op));
  }
  return Status::Ok();
}

/// Verifies every free variable of `expr` is a column of `schema`.
Status CheckBound(const ExprPtr& expr, const Schema& schema,
                  const char* where) {
  std::vector<std::string> vars;
  expr->CollectVariables(vars);
  for (const std::string& var : vars) {
    if (!schema.Contains(var)) {
      return Status::InvalidArgument(StrCat("variable '", var, "' in ", where,
                                            " is not in scope ",
                                            schema.ToString()));
    }
  }
  return Status::Ok();
}

/// Output column kind for a projected expression: variables inherit their
/// source kind, the internal #path constructor yields a path.
Attribute::Kind ProjectedKind(const ExprPtr& expr, const Schema& input) {
  if (expr->kind == ExprKind::kVariable) {
    int idx = input.IndexOf(expr->name);
    if (idx >= 0) return input.at(static_cast<size_t>(idx)).kind;
  }
  if (expr->kind == ExprKind::kFunctionCall && expr->name == "#path") {
    return Attribute::Kind::kPath;
  }
  return Attribute::Kind::kValue;
}

Status ComputeOne(const OpPtr& op) {
  Schema schema;
  switch (op->kind) {
    case OpKind::kUnit:
      PGIVM_RETURN_IF_ERROR(CheckArity(*op, 0));
      break;

    case OpKind::kGetVertices:
      PGIVM_RETURN_IF_ERROR(CheckArity(*op, 0));
      PGIVM_RETURN_IF_ERROR(AddUnique(
          schema, {op->vertex_var, Attribute::Kind::kVertex}, *op));
      PGIVM_RETURN_IF_ERROR(AddExtracts(schema, *op));
      break;

    case OpKind::kGetEdges:
      PGIVM_RETURN_IF_ERROR(CheckArity(*op, 0));
      PGIVM_RETURN_IF_ERROR(
          AddUnique(schema, {op->src_var, Attribute::Kind::kVertex}, *op));
      PGIVM_RETURN_IF_ERROR(
          AddUnique(schema, {op->edge_var, Attribute::Kind::kEdge}, *op));
      PGIVM_RETURN_IF_ERROR(
          AddUnique(schema, {op->dst_var, Attribute::Kind::kVertex}, *op));
      PGIVM_RETURN_IF_ERROR(AddExtracts(schema, *op));
      break;

    case OpKind::kExpand:
    case OpKind::kPathJoin: {
      PGIVM_RETURN_IF_ERROR(CheckArity(*op, 1));
      schema = op->children[0]->schema;
      if (!schema.Contains(op->src_var)) {
        return Status::InvalidArgument(
            StrCat(OpKindName(op->kind), ": source variable '", op->src_var,
                   "' is not bound by the input"));
      }
      if (!op->variable_length) {
        PGIVM_RETURN_IF_ERROR(
            AddUnique(schema, {op->edge_var, Attribute::Kind::kEdge}, *op));
      }
      PGIVM_RETURN_IF_ERROR(
          AddUnique(schema, {op->dst_var, Attribute::Kind::kVertex}, *op));
      if (!op->path_var.empty()) {
        PGIVM_RETURN_IF_ERROR(
            AddUnique(schema, {op->path_var, Attribute::Kind::kPath}, *op));
      }
      break;
    }

    case OpKind::kSelection:
      PGIVM_RETURN_IF_ERROR(CheckArity(*op, 1));
      schema = op->children[0]->schema;
      PGIVM_RETURN_IF_ERROR(CheckBound(op->predicate, schema, "WHERE"));
      break;

    case OpKind::kProjection:
    case OpKind::kProduce: {
      PGIVM_RETURN_IF_ERROR(CheckArity(*op, 1));
      const Schema& input = op->children[0]->schema;
      for (const auto& [name, expr] : op->projections) {
        PGIVM_RETURN_IF_ERROR(CheckBound(expr, input, "projection"));
        PGIVM_RETURN_IF_ERROR(
            AddUnique(schema, {name, ProjectedKind(expr, input)}, *op));
      }
      break;
    }

    case OpKind::kJoin:
    case OpKind::kLeftOuterJoin: {
      PGIVM_RETURN_IF_ERROR(CheckArity(*op, 2));
      schema = op->children[0]->schema;
      const Schema& right = op->children[1]->schema;
      for (const Attribute& attr : right.attributes()) {
        if (!schema.Contains(attr.name)) schema.Add(attr);
      }
      break;
    }

    case OpKind::kAntiJoin:
    case OpKind::kSemiJoin:
      PGIVM_RETURN_IF_ERROR(CheckArity(*op, 2));
      schema = op->children[0]->schema;
      break;

    case OpKind::kUnion: {
      PGIVM_RETURN_IF_ERROR(CheckArity(*op, 2));
      schema = op->children[0]->schema;
      const Schema& right = op->children[1]->schema;
      if (schema.size() != right.size()) {
        return Status::InvalidArgument("UNION inputs have different widths");
      }
      for (const Attribute& attr : schema.attributes()) {
        if (!right.Contains(attr.name)) {
          return Status::InvalidArgument(
              StrCat("UNION right input lacks column '", attr.name, "'"));
        }
      }
      break;
    }

    case OpKind::kDistinct:
      PGIVM_RETURN_IF_ERROR(CheckArity(*op, 1));
      schema = op->children[0]->schema;
      break;

    case OpKind::kAggregate: {
      PGIVM_RETURN_IF_ERROR(CheckArity(*op, 1));
      const Schema& input = op->children[0]->schema;
      for (const auto& [name, expr] : op->group_by) {
        PGIVM_RETURN_IF_ERROR(CheckBound(expr, input, "group key"));
        PGIVM_RETURN_IF_ERROR(
            AddUnique(schema, {name, ProjectedKind(expr, input)}, *op));
      }
      for (const auto& [name, expr] : op->aggregates) {
        if (!expr->IsAggregateCall()) {
          return Status::InvalidArgument(
              StrCat("aggregate item '", name,
                     "' is not a plain aggregate call: ", expr->ToString()));
        }
        PGIVM_RETURN_IF_ERROR(CheckBound(expr, input, "aggregate"));
        PGIVM_RETURN_IF_ERROR(
            AddUnique(schema, {name, Attribute::Kind::kValue}, *op));
      }
      break;
    }

    case OpKind::kUnnest: {
      PGIVM_RETURN_IF_ERROR(CheckArity(*op, 1));
      const Schema& input = op->children[0]->schema;
      PGIVM_RETURN_IF_ERROR(CheckBound(op->unnest_expr, input, "UNWIND"));
      for (const std::string& dropped : op->unnest_drop_columns) {
        if (!input.Contains(dropped)) {
          return Status::Internal(
              StrCat("unnest drops unknown column '", dropped, "'"));
        }
      }
      for (const Attribute& attr : input.attributes()) {
        bool dropped = false;
        for (const std::string& name : op->unnest_drop_columns) {
          if (name == attr.name) dropped = true;
        }
        if (!dropped) schema.Add(attr);
      }
      // Unnesting nodes()/relationships() of a path yields graph elements;
      // the kind lets property pushdown treat the alias as such (the
      // paper's path-unwinding feature).
      Attribute::Kind alias_kind = Attribute::Kind::kValue;
      if (op->unnest_expr->kind == ExprKind::kFunctionCall) {
        if (op->unnest_expr->name == "nodes") {
          alias_kind = Attribute::Kind::kVertex;
        } else if (op->unnest_expr->name == "relationships") {
          alias_kind = Attribute::Kind::kEdge;
        }
      }
      PGIVM_RETURN_IF_ERROR(
          AddUnique(schema, {op->unnest_alias, alias_kind}, *op));
      break;
    }
  }
  op->schema = std::move(schema);
  return Status::Ok();
}

}  // namespace

Status ComputeSchemas(const OpPtr& root) {
  for (const OpPtr& child : root->children) {
    PGIVM_RETURN_IF_ERROR(ComputeSchemas(child));
  }
  return ComputeOne(root);
}

Status ComputeSchemaShallow(const OpPtr& op) { return ComputeOne(op); }

namespace {

bool ExprEqual(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return Expression::Equal(*a, *b);
}

bool NamedExprsEqual(
    const std::vector<std::pair<std::string, ExprPtr>>& a,
    const std::vector<std::pair<std::string, ExprPtr>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first || !ExprEqual(a[i].second, b[i].second)) {
      return false;
    }
  }
  return true;
}

size_t HashString(const std::string& s) {
  return std::hash<std::string>{}(s);
}

}  // namespace

bool PlanEqual(const OpPtr& a, const OpPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind || a->children.size() != b->children.size()) {
    return false;
  }
  if (a->vertex_var != b->vertex_var || a->labels != b->labels ||
      a->src_var != b->src_var || a->edge_var != b->edge_var ||
      a->dst_var != b->dst_var || a->edge_types != b->edge_types ||
      a->direction != b->direction ||
      a->variable_length != b->variable_length ||
      a->min_hops != b->min_hops || a->max_hops != b->max_hops ||
      a->path_var != b->path_var || a->extracts != b->extracts ||
      a->unnest_alias != b->unnest_alias ||
      a->unnest_drop_columns != b->unnest_drop_columns) {
    return false;
  }
  if (!ExprEqual(a->predicate, b->predicate) ||
      !ExprEqual(a->unnest_expr, b->unnest_expr) ||
      !NamedExprsEqual(a->projections, b->projections) ||
      !NamedExprsEqual(a->group_by, b->group_by) ||
      !NamedExprsEqual(a->aggregates, b->aggregates)) {
    return false;
  }
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!PlanEqual(a->children[i], b->children[i])) return false;
  }
  return true;
}

size_t PlanHash(const OpPtr& op) {
  if (op == nullptr) return 0;
  size_t seed = static_cast<size_t>(op->kind) * 0x9e3779b97f4a7c15ull;
  HashCombine(seed, HashString(op->vertex_var));
  for (const std::string& label : op->labels) {
    HashCombine(seed, HashString(label));
  }
  HashCombine(seed, HashString(op->src_var));
  HashCombine(seed, HashString(op->edge_var));
  HashCombine(seed, HashString(op->dst_var));
  for (const std::string& type : op->edge_types) {
    HashCombine(seed, HashString(type));
  }
  HashCombine(seed, static_cast<size_t>(op->direction));
  HashCombine(seed, static_cast<size_t>(op->min_hops));
  HashCombine(seed, static_cast<size_t>(op->max_hops));
  HashCombine(seed, HashString(op->path_var));
  for (const PropertyExtract& extract : op->extracts) {
    HashCombine(seed, static_cast<size_t>(extract.what));
    HashCombine(seed, HashString(extract.element_var));
    HashCombine(seed, HashString(extract.key));
    HashCombine(seed, HashString(extract.column_name));
  }
  if (op->predicate != nullptr) HashCombine(seed, op->predicate->Hash());
  if (op->unnest_expr != nullptr) HashCombine(seed, op->unnest_expr->Hash());
  HashCombine(seed, HashString(op->unnest_alias));
  for (const std::string& dropped : op->unnest_drop_columns) {
    HashCombine(seed, HashString(dropped));
  }
  for (const auto* named :
       {&op->projections, &op->group_by, &op->aggregates}) {
    for (const auto& [name, expr] : *named) {
      HashCombine(seed, HashString(name));
      if (expr != nullptr) HashCombine(seed, expr->Hash());
    }
  }
  for (const OpPtr& child : op->children) {
    HashCombine(seed, PlanHash(child));
  }
  return seed;
}

}  // namespace pgivm
