#include "rete/path_node.h"

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "scoped_threads_env.h"
#include "workload/social_network.h"

namespace pgivm {
namespace {

class SinkNode : public ReteNode {
 public:
  SinkNode() : ReteNode(Schema{}) {}
  void OnDelta(int port, const Delta& delta) override {
    (void)port;
    for (const DeltaEntry& entry : delta) {
      bag.Apply(entry.tuple, entry.multiplicity);
    }
  }
  std::string DebugString() const override { return "Sink"; }
  Bag bag;
};

Schema PathSchema(bool with_path) {
  Schema schema({{"a", Attribute::Kind::kVertex},
                 {"b", Attribute::Kind::kVertex}});
  if (with_path) schema.Add({"p", Attribute::Kind::kPath});
  return schema;
}

Tuple Pair(VertexId a, VertexId b) {
  return Tuple({Value::Vertex(a), Value::Vertex(b)});
}

struct Fixture {
  Fixture(int64_t min_hops, int64_t max_hops, bool emit_path = false,
          bool reversed = false)
      : node(PathSchema(emit_path), &graph, {"T"}, reversed, min_hops,
             max_hops, emit_path) {
    node.AddOutput(&sink, 0);
    graph.AddListener(&adapter);
  }

  /// Routes graph changes into the node like a network would.
  struct Adapter : GraphListener {
    explicit Adapter(PathInputNode* n) : node(n) {}
    void OnGraphDelta(const GraphDelta& delta) override {
      for (const GraphChange& change : delta.changes) {
        node->HandleChange(change);
      }
    }
    PathInputNode* node;
  };

  PropertyGraph graph;
  SinkNode sink;
  PathInputNode node;
  Adapter adapter{&node};
};

TEST(PathNodeTest, ChainPathsMaterialized) {
  Fixture f(1, -1);
  VertexId v1 = f.graph.AddVertex({});
  VertexId v2 = f.graph.AddVertex({});
  VertexId v3 = f.graph.AddVertex({});
  (void)f.graph.AddEdge(v1, v2, "T").value();
  EXPECT_EQ(f.sink.bag.Count(Pair(v1, v2)), 1);

  (void)f.graph.AddEdge(v2, v3, "T").value();
  // New trails through the new edge: v2->v3 and v1->v2->v3.
  EXPECT_EQ(f.sink.bag.Count(Pair(v2, v3)), 1);
  EXPECT_EQ(f.sink.bag.Count(Pair(v1, v3)), 1);
  EXPECT_EQ(f.sink.bag.total_count(), 3);
  EXPECT_EQ(f.node.path_count(), 3u);
}

TEST(PathNodeTest, EdgeRemovalRetractsContainingPaths) {
  Fixture f(1, -1);
  VertexId v1 = f.graph.AddVertex({});
  VertexId v2 = f.graph.AddVertex({});
  VertexId v3 = f.graph.AddVertex({});
  EdgeId e1 = f.graph.AddEdge(v1, v2, "T").value();
  (void)f.graph.AddEdge(v2, v3, "T").value();
  EXPECT_EQ(f.sink.bag.total_count(), 3);

  ASSERT_TRUE(f.graph.RemoveEdge(e1).ok());
  // v1->v2 and v1->v3 gone; v2->v3 stays.
  EXPECT_EQ(f.sink.bag.total_count(), 1);
  EXPECT_EQ(f.sink.bag.Count(Pair(v2, v3)), 1);
}

TEST(PathNodeTest, TypeFilteringIgnoresOtherEdges) {
  Fixture f(1, -1);
  VertexId v1 = f.graph.AddVertex({});
  VertexId v2 = f.graph.AddVertex({});
  (void)f.graph.AddEdge(v1, v2, "OTHER").value();
  EXPECT_EQ(f.sink.bag.total_count(), 0);
}

TEST(PathNodeTest, HopBoundsRespected) {
  Fixture f(2, 3);
  std::vector<VertexId> v;
  for (int i = 0; i < 5; ++i) v.push_back(f.graph.AddVertex({}));
  for (int i = 0; i + 1 < 5; ++i) {
    (void)f.graph.AddEdge(v[i], v[i + 1], "T").value();
  }
  // Chain of 4 edges: length-2 paths: 3; length-3 paths: 2. No 1s or 4s.
  EXPECT_EQ(f.sink.bag.total_count(), 5);
  EXPECT_EQ(f.sink.bag.Count(Pair(v[0], v[1])), 0);
  EXPECT_EQ(f.sink.bag.Count(Pair(v[0], v[2])), 1);
  EXPECT_EQ(f.sink.bag.Count(Pair(v[0], v[3])), 1);
  EXPECT_EQ(f.sink.bag.Count(Pair(v[0], v[4])), 0);
}

TEST(PathNodeTest, ZeroLengthPathsTrackVertices) {
  Fixture f(0, 1);
  VertexId v1 = f.graph.AddVertex({});
  EXPECT_EQ(f.sink.bag.Count(Pair(v1, v1)), 1);
  ASSERT_TRUE(f.graph.RemoveVertex(v1).ok());
  EXPECT_EQ(f.sink.bag.total_count(), 0);
}

TEST(PathNodeTest, CycleTerminatesViaTrailSemantics) {
  Fixture f(1, -1);
  VertexId v1 = f.graph.AddVertex({});
  VertexId v2 = f.graph.AddVertex({});
  (void)f.graph.AddEdge(v1, v2, "T").value();
  (void)f.graph.AddEdge(v2, v1, "T").value();
  // Trails (no repeated edge): v1->v2, v2->v1, v1->v2->v1, v2->v1->v2.
  EXPECT_EQ(f.sink.bag.total_count(), 4);
  EXPECT_EQ(f.sink.bag.Count(Pair(v1, v1)), 1);
  EXPECT_EQ(f.sink.bag.Count(Pair(v2, v2)), 1);
}

TEST(PathNodeTest, DiamondCountsDistinctPaths) {
  Fixture f(1, -1);
  VertexId s = f.graph.AddVertex({});
  VertexId a = f.graph.AddVertex({});
  VertexId b = f.graph.AddVertex({});
  VertexId t = f.graph.AddVertex({});
  (void)f.graph.AddEdge(s, a, "T").value();
  (void)f.graph.AddEdge(s, b, "T").value();
  (void)f.graph.AddEdge(a, t, "T").value();
  (void)f.graph.AddEdge(b, t, "T").value();
  // Two distinct s->t paths (bag semantics: multiplicity 2).
  EXPECT_EQ(f.sink.bag.Count(Pair(s, t)), 2);
}

TEST(PathNodeTest, PathValuesEmittedInPatternOrder) {
  Fixture f(1, -1, /*emit_path=*/true);
  VertexId v1 = f.graph.AddVertex({});
  VertexId v2 = f.graph.AddVertex({});
  EdgeId e = f.graph.AddEdge(v1, v2, "T").value();

  bool found = false;
  for (const auto& [tuple, count] : f.sink.bag.counts()) {
    if (count <= 0) continue;
    ASSERT_EQ(tuple.size(), 3u);
    const Path& path = tuple.at(2).AsPath();
    EXPECT_EQ(path.vertices(), (std::vector<VertexId>{v1, v2}));
    EXPECT_EQ(path.edges(), std::vector<EdgeId>{e});
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PathNodeTest, ReversedFollowsIncomingEdges) {
  // Pattern (a)<-[:T*]-(b): edges run b->a in the graph, while the emitted
  // pair is (a, b) in pattern order.
  Fixture f(1, -1, /*emit_path=*/false, /*reversed=*/true);
  VertexId a = f.graph.AddVertex({});
  VertexId b = f.graph.AddVertex({});
  (void)f.graph.AddEdge(b, a, "T").value();
  EXPECT_EQ(f.sink.bag.Count(Pair(a, b)), 1);
}

TEST(PathNodeTest, InitialStateFromExistingGraph) {
  PropertyGraph graph;
  VertexId v1 = graph.AddVertex({});
  VertexId v2 = graph.AddVertex({});
  VertexId v3 = graph.AddVertex({});
  (void)graph.AddEdge(v1, v2, "T").value();
  (void)graph.AddEdge(v2, v3, "T").value();

  PathInputNode node(PathSchema(false), &graph, {"T"}, false, 1, -1, false);
  SinkNode sink;
  node.AddOutput(&sink, 0);
  node.EmitInitialFromGraph();
  EXPECT_EQ(sink.bag.total_count(), 3);
  EXPECT_EQ(sink.bag.Count(Pair(v1, v3)), 1);
}

TEST(PathNodeTest, InsertInMiddleCreatesCrossPaths) {
  Fixture f(1, -1);
  VertexId v1 = f.graph.AddVertex({});
  VertexId v2 = f.graph.AddVertex({});
  VertexId v3 = f.graph.AddVertex({});
  VertexId v4 = f.graph.AddVertex({});
  (void)f.graph.AddEdge(v1, v2, "T").value();
  (void)f.graph.AddEdge(v3, v4, "T").value();
  EXPECT_EQ(f.sink.bag.total_count(), 2);

  // Bridge the two chains: all prefix x suffix combinations appear.
  (void)f.graph.AddEdge(v2, v3, "T").value();
  // New: v2->v3, v1->v3, v2->v4, v1->v4.
  EXPECT_EQ(f.sink.bag.total_count(), 6);
  EXPECT_EQ(f.sink.bag.Count(Pair(v1, v4)), 1);
}

// ---- forced morsel delivery (PGIVM_MORSEL=0) --------------------------------

TEST(PathNodeMorselTest, PathSourceDeclaresNoMorselKind) {
  // The morsel scheduler only partitions nodes that opt in via
  // morsel_kind(); PathInputNode keeps the base kNone — its transitive
  // expansion is stateful across entries and must stay serial even when
  // the gate forces every eligible node to split.
  Fixture f(1, -1);
  EXPECT_EQ(f.node.morsel_kind(), MorselKind::kNone);
}

TEST(PathNodeMorselTest, ForcedMorselBitIdenticalOnPathHeavyWorkload) {
  // PGIVM_MORSEL=0 (the TSAN job's setting) forces key-partitioned
  // delivery on every opted-in node of every wave. On a reply-tree-heavy
  // social workload the kNone path source must stay serial and the
  // path views bit-identical to an unforced serial reference.
  ScopedThreadsEnv pin_threads(nullptr);

  PropertyGraph graph;
  SocialNetworkConfig config = SocialNetworkConfig::AtScale(0.02, 5);
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  const char* kPathQueries[] = {
      "MATCH (p:Post)-[:REPLY*]->(c:Comm) RETURN p, c",
      "MATCH (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang "
      "RETURN p, c",
      "MATCH t = (p:Post)-[:REPLY*1..3]->(c:Comm) RETURN t",
  };

  // Engine under test: parallel waves with the morsel gate forced via the
  // env override (read at engine construction), exactly how the TSAN CI
  // job sees every engine. The override scope only needs to cover the
  // constructor.
  std::unique_ptr<QueryEngine> forced;
  {
    ScopedEnvVar force_morsel("PGIVM_MORSEL", "0");
    EngineOptions options;
    options.network.executor = ExecutorKind::kParallel;
    options.network.num_threads = 4;
    options.network.parallel_min_wave_entries = 0;
    forced = std::make_unique<QueryEngine>(&graph, options);
  }
  // Reference: plain serial engine, morsel pinned away.
  ScopedEnvVar no_morsel("PGIVM_MORSEL", nullptr);
  QueryEngine reference(&graph, EngineOptions{});

  std::vector<std::shared_ptr<View>> forced_views;
  std::vector<std::shared_ptr<View>> reference_views;
  for (const char* query : kPathQueries) {
    Result<std::shared_ptr<View>> forced_view = forced->Register(query);
    ASSERT_TRUE(forced_view.ok()) << forced_view.status();
    forced_views.push_back(*forced_view);
    Result<std::shared_ptr<View>> reference_view = reference.Register(query);
    ASSERT_TRUE(reference_view.ok()) << reference_view.status();
    reference_views.push_back(*reference_view);
  }

  Rng op_seeds(123);
  for (int step = 0; step < 60; ++step) {
    generator.ApplyUpdate(&graph, op_seeds.Next());
    for (size_t q = 0; q < forced_views.size(); ++q) {
      std::vector<Tuple> actual = forced_views[q]->Snapshot();
      std::vector<Tuple> expected = reference_views[q]->Snapshot();
      ASSERT_EQ(actual.size(), expected.size())
          << kPathQueries[q] << " diverged at step " << step;
      for (size_t i = 0; i < actual.size(); ++i) {
        ASSERT_EQ(Tuple::Compare(actual[i], expected[i]), 0)
            << kPathQueries[q] << " step " << step << " row " << i;
      }
    }
  }
  // The engine under test really ran forced-morsel parallel waves.
  EXPECT_EQ(forced->options().network.executor, ExecutorKind::kParallel);
}

}  // namespace
}  // namespace pgivm
