// E7 — the Rete trade-off: memory for latency.
//
// Incremental maintenance materializes node memories proportional to the
// relations flowing through the network. We report, across graph scales:
// graph-store bytes, per-view network bytes, and the ratio — the price of
// low-latency maintenance the paper's approach implies.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "engine/query_engine.h"
#include "workload/social_network.h"

namespace pgivm {
namespace {

void BM_E7_ViewMemory(benchmark::State& state) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = state.range(0);
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  auto threads = engine
                     .Register(
                         "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) "
                         "WHERE p.lang = c.lang RETURN p, t")
                     .value();
  auto stats = engine
                   .Register("MATCH (m:Comm) RETURN m.lang AS lang, "
                             "count(*) AS n")
                   .value();
  auto likes = engine
                   .Register("MATCH (u:Person)-[:LIKES]->(m:Post) "
                             "RETURN m AS msg, count(*) AS l")
                   .value();

  for (auto _ : state) {
    // The measured operation: one streamed update against all views.
    generator.ApplyRandomUpdate(&graph);
  }

  double graph_bytes = static_cast<double>(graph.ApproxMemoryBytes());
  double view_bytes =
      static_cast<double>(threads->ApproxMemoryBytes() +
                          stats->ApproxMemoryBytes() +
                          likes->ApproxMemoryBytes());
  state.counters["graph_kb"] = graph_bytes / 1024.0;
  state.counters["views_kb"] = view_bytes / 1024.0;
  state.counters["ratio"] =
      graph_bytes > 0 ? view_bytes / graph_bytes : 0.0;
  state.counters["elements"] =
      static_cast<double>(graph.vertex_count() + graph.edge_count());
}
BENCHMARK(BM_E7_ViewMemory)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Iterations(100);

void BM_E7_PerNodeBreakdown(benchmark::State& state) {
  // One representative view; DebugString carries the per-node breakdown,
  // printed once for the report.
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 50;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  auto view = engine
                  .Register(
                      "MATCH (a:Person)-[:KNOWS]->(b:Person) "
                      "WHERE a.country = b.country RETURN a, b")
                  .value();
  for (auto _ : state) {
    generator.ApplyRandomUpdate(&graph);
  }
  static bool printed = false;
  if (!printed) {
    printed = true;
    std::string breakdown = view->NetworkDebugString();
    benchmark::DoNotOptimize(breakdown);
    state.SetLabel("see stdout");
    std::fputs("E7 per-node memory breakdown:\n", stdout);
    std::fputs(breakdown.c_str(), stdout);
  }
}
BENCHMARK(BM_E7_PerNodeBreakdown)->Iterations(100);

}  // namespace
}  // namespace pgivm

PGIVM_BENCHMARK_MAIN();
