#include "workload/railway.h"

namespace pgivm {

std::string RailwayGenerator::PosLengthQuery() {
  return "MATCH (s:Segment) WHERE s.length <= 0 RETURN s";
}

std::string RailwayGenerator::SwitchMonitoredQuery() {
  return "MATCH (sw:Switch) "
         "OPTIONAL MATCH (sw)-[m:monitoredBy]->(:Sensor) "
         "WITH sw, m WHERE m IS NULL RETURN sw";
}

std::string RailwayGenerator::RouteSensorQuery() {
  return "MATCH (r:Route)-[:follows]->(swp:SwitchPosition)"
         "-[:target]->(sw:Switch)-[:monitoredBy]->(s:Sensor) "
         "OPTIONAL MATCH (r)-[req:requires]->(s) "
         "WITH r, sw, s, req WHERE req IS NULL "
         "RETURN r, sw, s";
}

std::string RailwayGenerator::SwitchSetQuery() {
  return "MATCH (r:Route)-[:follows]->(swp:SwitchPosition)"
         "-[:target]->(sw:Switch) "
         "WHERE swp.position <> sw.position "
         "RETURN r, sw, swp";
}

void RailwayGenerator::Populate(PropertyGraph* graph) {
  graph->BeginBatch();
  for (int64_t r = 0; r < config_.routes; ++r) {
    VertexId route = graph->AddVertex({"Route"});
    routes_.push_back(route);
    VertexId semaphore = graph->AddVertex(
        {"Semaphore"}, {{"signal", Value::String("GO")}});
    (void)graph->AddEdge(route, semaphore, "entry").value();

    for (int64_t s = 0; s < config_.switches_per_route; ++s) {
      int64_t prescribed = rng_.NextInRange(0, 3);
      bool switch_fault = rng_.NextBool(config_.fault_rate);
      VertexId sw = graph->AddVertex(
          {"Switch"},
          {{"position", Value::Int(switch_fault ? (prescribed + 1) % 4
                                                : prescribed)}});
      switches_.push_back(sw);
      VertexId swp = graph->AddVertex(
          {"SwitchPosition"}, {{"position", Value::Int(prescribed)}});
      switch_positions_.push_back(swp);
      (void)graph->AddEdge(route, swp, "follows").value();
      (void)graph->AddEdge(swp, sw, "target").value();

      VertexId sensor = graph->AddVertex({"Sensor"});
      sensors_.push_back(sensor);
      // Fault: unmonitored switch.
      if (!rng_.NextBool(config_.fault_rate)) {
        (void)graph->AddEdge(sw, sensor, "monitoredBy").value();
      }
      // Fault: route does not require the sensor of a followed switch.
      if (!rng_.NextBool(config_.fault_rate)) {
        (void)graph->AddEdge(route, sensor, "requires").value();
      }

      VertexId previous_segment = kInvalidId;
      for (int64_t g = 0; g < config_.segments_per_sensor; ++g) {
        bool length_fault = rng_.NextBool(config_.fault_rate);
        VertexId segment = graph->AddVertex(
            {"Segment"},
            {{"length",
              Value::Int(length_fault ? -rng_.NextInRange(0, 10)
                                      : rng_.NextInRange(1, 1000))}});
        segments_.push_back(segment);
        (void)graph->AddEdge(sensor, segment, "monitors").value();
        if (previous_segment != kInvalidId) {
          (void)graph->AddEdge(previous_segment, segment, "connectsTo")
              .value();
        }
        previous_segment = segment;
      }
    }
  }
  graph->CommitBatch();
}

void RailwayGenerator::ApplyRandomUpdate(PropertyGraph* graph) {
  uint64_t pick = rng_.NextBelow(100);
  // Open a batch only when the caller has not: callers compose several
  // updates into one atomic delta by wrapping calls in BeginBatch/
  // CommitBatch themselves (batches do not nest).
  const bool own_batch = !graph->in_batch();
  if (own_batch) graph->BeginBatch();
  if (pick < 30 && !segments_.empty()) {
    // Repair or break a segment length.
    VertexId segment = segments_[rng_.NextBelow(segments_.size())];
    bool brk = rng_.NextBool(0.4);
    (void)graph->SetVertexProperty(
        segment, "length",
        Value::Int(brk ? -rng_.NextInRange(0, 10)
                       : rng_.NextInRange(1, 1000)));
  } else if (pick < 55 && !switches_.empty()) {
    // Flip a switch's actual position (SwitchSet repair/break).
    VertexId sw = switches_[rng_.NextBelow(switches_.size())];
    (void)graph->SetVertexProperty(sw, "position",
                                   Value::Int(rng_.NextInRange(0, 3)));
  } else if (pick < 75 && !switches_.empty() && !sensors_.empty()) {
    // Toggle a monitoredBy edge (SwitchMonitored repair/break).
    VertexId sw = switches_[rng_.NextBelow(switches_.size())];
    bool removed = false;
    for (EdgeId e : graph->OutEdges(sw)) {
      if (graph->EdgeType(e) == "monitoredBy") {
        (void)graph->RemoveEdge(e);
        removed = true;
        break;
      }
    }
    if (!removed) {
      VertexId sensor = sensors_[rng_.NextBelow(sensors_.size())];
      (void)graph->AddEdge(sw, sensor, "monitoredBy");
    }
  } else if (!routes_.empty() && !sensors_.empty()) {
    // Toggle a requires edge (RouteSensor repair/break).
    VertexId route = routes_[rng_.NextBelow(routes_.size())];
    std::vector<EdgeId> requires_edges;
    for (EdgeId e : graph->OutEdges(route)) {
      if (graph->EdgeType(e) == "requires") requires_edges.push_back(e);
    }
    if (!requires_edges.empty() && rng_.NextBool(0.5)) {
      (void)graph->RemoveEdge(
          requires_edges[rng_.NextBelow(requires_edges.size())]);
    } else {
      VertexId sensor = sensors_[rng_.NextBelow(sensors_.size())];
      (void)graph->AddEdge(route, sensor, "requires");
    }
  }
  if (own_batch) graph->CommitBatch();
}

}  // namespace pgivm
