#ifndef PGIVM_RETE_FILTER_NODE_H_
#define PGIVM_RETE_FILTER_NODE_H_

#include "rete/expression_eval.h"
#include "rete/node.h"

namespace pgivm {

/// σ — stateless selection: forwards entries whose predicate evaluates to
/// exactly true. A tuple's verdict is deterministic, so assertions and
/// retractions of the same tuple always take the same branch.
class FilterNode : public ReteNode {
 public:
  FilterNode(Schema schema, BoundExpression predicate)
      : ReteNode(std::move(schema)), predicate_(std::move(predicate)) {}

  void OnDelta(int port, const Delta& delta) override;

  std::string DebugString() const override;
  const char* KindName() const override { return "Filter"; }

 private:
  BoundExpression predicate_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_FILTER_NODE_H_
