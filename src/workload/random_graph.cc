#include "workload/random_graph.h"

#include <algorithm>

namespace pgivm {

Value RandomGraphGenerator::RandomScalar() {
  return Value::Int(rng_.NextInRange(0, config_.value_range - 1));
}

VertexId RandomGraphGenerator::RandomVertex() {
  return vertices_[rng_.NextBelow(vertices_.size())];
}

void RandomGraphGenerator::Populate(PropertyGraph* graph) {
  graph->BeginBatch();
  for (int64_t i = 0; i < config_.initial_vertices; ++i) {
    std::vector<std::string> labels;
    for (const std::string& label : config_.labels) {
      if (rng_.NextBool(0.4)) labels.push_back(label);
    }
    ValueMap props;
    for (const std::string& key : config_.keys) {
      if (key == "tags") {
        ValueList tags;
        size_t n = rng_.NextBelow(4);
        for (size_t t = 0; t < n; ++t) tags.push_back(RandomScalar());
        props[key] = Value::List(std::move(tags));
      } else if (rng_.NextBool(0.6)) {
        props[key] = RandomScalar();
      }
    }
    vertices_.push_back(graph->AddVertex(std::move(labels), std::move(props)));
  }
  for (int64_t i = 0; i < config_.initial_edges && !vertices_.empty(); ++i) {
    VertexId src = RandomVertex();
    VertexId dst = RandomVertex();
    const std::string& type = config_.types[rng_.NextBelow(
        config_.types.size())];
    ValueMap props;
    if (rng_.NextBool(0.5)) props["w"] = RandomScalar();
    Result<EdgeId> edge = graph->AddEdge(src, dst, type, std::move(props));
    if (edge.ok()) edges_.push_back(edge.value());
  }
  graph->CommitBatch();
}

void RandomGraphGenerator::ApplyRandomUpdate(PropertyGraph* graph) {
  uint64_t pick = rng_.NextBelow(100);
  // Open a batch only when the caller has not: callers compose several
  // updates into one atomic delta by wrapping calls in BeginBatch/
  // CommitBatch themselves (batches do not nest).
  const bool own_batch = !graph->in_batch();
  if (own_batch) graph->BeginBatch();
  if (pick < 12) {
    // Add a vertex.
    std::vector<std::string> labels;
    for (const std::string& label : config_.labels) {
      if (rng_.NextBool(0.4)) labels.push_back(label);
    }
    vertices_.push_back(graph->AddVertex(std::move(labels)));
  } else if (pick < 22 && !vertices_.empty()) {
    // Detach-remove a vertex.
    size_t i = rng_.NextBelow(vertices_.size());
    (void)graph->DetachRemoveVertex(vertices_[i]);
    vertices_.erase(vertices_.begin() + static_cast<ptrdiff_t>(i));
  } else if (pick < 42 && !vertices_.empty()) {
    // Add an edge.
    const std::string& type =
        config_.types[rng_.NextBelow(config_.types.size())];
    Result<EdgeId> edge =
        graph->AddEdge(RandomVertex(), RandomVertex(), type);
    if (edge.ok()) edges_.push_back(edge.value());
  } else if (pick < 57 && !edges_.empty()) {
    // Remove an edge (skip already-gone ids).
    size_t i = rng_.NextBelow(edges_.size());
    (void)graph->RemoveEdge(edges_[i]);
    edges_.erase(edges_.begin() + static_cast<ptrdiff_t>(i));
  } else if (pick < 72 && !vertices_.empty()) {
    // Scalar property write or erase.
    VertexId v = RandomVertex();
    const std::string& key =
        config_.keys[rng_.NextBelow(config_.keys.size() - 1)];  // not tags
    Value value = rng_.NextBool(0.2) ? Value::Null() : RandomScalar();
    (void)graph->SetVertexProperty(v, key, std::move(value));
  } else if (pick < 85 && !vertices_.empty()) {
    // List element append/remove on the "tags" collection.
    VertexId v = RandomVertex();
    Value tags = graph->GetVertexProperty(v, "tags");
    if (tags.is_list() && !tags.AsList().empty() && rng_.NextBool(0.5)) {
      const ValueList& list = tags.AsList();
      (void)graph->ListRemoveFirst(v, "tags",
                                   list[rng_.NextBelow(list.size())]);
    } else if (tags.is_list() || tags.is_null()) {
      (void)graph->ListAppend(v, "tags", RandomScalar());
    }
  } else if (!vertices_.empty()) {
    // Label add/remove.
    VertexId v = RandomVertex();
    const std::string& label =
        config_.labels[rng_.NextBelow(config_.labels.size())];
    if (graph->VertexHasLabel(v, label)) {
      (void)graph->RemoveVertexLabel(v, label);
    } else {
      (void)graph->AddVertexLabel(v, label);
    }
  }
  if (own_batch) graph->CommitBatch();

  // Compact dead ids occasionally so random picks stay mostly live.
  if (rng_.NextBelow(32) == 0) {
    vertices_.erase(std::remove_if(vertices_.begin(), vertices_.end(),
                                   [graph](VertexId v) {
                                     return !graph->HasVertex(v);
                                   }),
                    vertices_.end());
    edges_.erase(std::remove_if(
                     edges_.begin(), edges_.end(),
                     [graph](EdgeId e) { return !graph->HasEdge(e); }),
                 edges_.end());
  }
}

}  // namespace pgivm
