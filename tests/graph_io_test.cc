#include "graph/graph_io.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "graph/graph_stats.h"
#include "workload/random_graph.h"

namespace pgivm {
namespace {

Value Roundtrip(const Value& v) {
  Result<Value> parsed = ParseValueText(WriteValueText(v));
  EXPECT_TRUE(parsed.ok()) << parsed.status() << " for " << v.ToString();
  return parsed.ok() ? parsed.value() : Value::Null();
}

TEST(ValueTextTest, ScalarsRoundtrip) {
  EXPECT_EQ(Roundtrip(Value::Null()), Value::Null());
  EXPECT_EQ(Roundtrip(Value::Bool(true)), Value::Bool(true));
  EXPECT_EQ(Roundtrip(Value::Bool(false)), Value::Bool(false));
  EXPECT_EQ(Roundtrip(Value::Int(-42)), Value::Int(-42));
  EXPECT_EQ(Roundtrip(Value::Int(0)), Value::Int(0));
}

TEST(ValueTextTest, DoublesKeepTypeAndPrecision) {
  Value d = Roundtrip(Value::Double(3.0));
  EXPECT_TRUE(d.is_double());  // "3.0", not the integer 3.
  EXPECT_EQ(Roundtrip(Value::Double(0.1)), Value::Double(0.1));
  EXPECT_EQ(Roundtrip(Value::Double(1e300)), Value::Double(1e300));
  EXPECT_EQ(Roundtrip(Value::Double(-2.5e-7)), Value::Double(-2.5e-7));
}

TEST(ValueTextTest, StringsWithEscapes) {
  Value s = Value::String("line\nwith \"quotes\" and \\slashes\t!");
  EXPECT_EQ(Roundtrip(s), s);
  EXPECT_EQ(Roundtrip(Value::String("")), Value::String(""));
}

TEST(ValueTextTest, NestedCollections) {
  Value nested = Value::Map(
      {{"list", Value::List({Value::Int(1), Value::String("x"),
                             Value::List({})})},
       {"map", Value::Map({{"inner", Value::Bool(true)}})},
       {"scalar", Value::Double(2.5)}});
  EXPECT_EQ(Roundtrip(nested), nested);
}

TEST(ValueTextTest, MalformedInputsRejected) {
  EXPECT_FALSE(ParseValueText("").ok());
  EXPECT_FALSE(ParseValueText("[1, 2").ok());
  EXPECT_FALSE(ParseValueText("{\"k\" 1}").ok());
  EXPECT_FALSE(ParseValueText("\"unterminated").ok());
  EXPECT_FALSE(ParseValueText("1 2").ok());
  EXPECT_FALSE(ParseValueText("{k: 1}").ok());  // Unquoted key.
}

TEST(ValueTextTest, MalformedNumbersRejectedNotZeroed) {
  // Regression: these used to parse as Int(0)/garbage because the number
  // scanner never validated strtoll/strtod's end pointer or errno.
  EXPECT_FALSE(ParseValueText("-").ok());        // Sign with no digits.
  EXPECT_FALSE(ParseValueText("+").ok());
  EXPECT_FALSE(ParseValueText("1e").ok());       // Dangling exponent.
  EXPECT_FALSE(ParseValueText("[1, -]").ok());
  // Integer overflow surfaces as an error instead of saturating.
  EXPECT_FALSE(ParseValueText("99999999999999999999999").ok());
  Result<Value> overflow = ParseValueText("99999999999999999999999");
  EXPECT_NE(overflow.status().message().find("out of range"),
            std::string::npos)
      << overflow.status();
  // In-range values near the boundary still parse.
  EXPECT_EQ(ParseValueText("9223372036854775807").value(),
            Value::Int(9223372036854775807LL));
  EXPECT_EQ(ParseValueText("-9223372036854775808").value(),
            Value::Int(INT64_MIN));
}

TEST(GraphTextTest, MalformedPropertyNumberFailsLoad) {
  // A malformed numeric literal inside a record's property map must fail
  // the whole load (previously it silently loaded as Int(0)).
  PropertyGraph graph;
  Status bad =
      ReadGraphText("pgivm-graph 1\nvertex 0 :X {\"w\": -}\n", &graph);
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("malformed number"), std::string::npos)
      << bad;
  // The well-formed spelling of the same record still loads.
  PropertyGraph good;
  ASSERT_TRUE(
      ReadGraphText("pgivm-graph 1\nvertex 0 :X {\"w\": -1}\n", &good).ok());
  EXPECT_EQ(good.GetVertexProperty(0, "w"), Value::Int(-1));
}

TEST(GraphTextTest, EmptyGraphRoundtrip) {
  PropertyGraph graph;
  std::string dump = WriteGraphText(graph);
  PropertyGraph loaded;
  ASSERT_TRUE(ReadGraphText(dump, &loaded).ok());
  EXPECT_EQ(loaded.vertex_count(), 0u);
  EXPECT_EQ(loaded.edge_count(), 0u);
}

TEST(GraphTextTest, SmallGraphRoundtrip) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({"Post"}, {{"lang", Value::String("en")}});
  VertexId b = graph.AddVertex(
      {"Comm", "Msg"},
      {{"lang", Value::String("de")},
       {"tags", Value::List({Value::Int(1), Value::Int(2)})}});
  (void)graph.AddEdge(a, b, "REPLY", {{"w", Value::Double(0.5)}}).value();

  std::string dump = WriteGraphText(graph);
  PropertyGraph loaded;
  ASSERT_TRUE(ReadGraphText(dump, &loaded).ok());
  EXPECT_EQ(loaded.vertex_count(), 2u);
  EXPECT_EQ(loaded.edge_count(), 1u);
  EXPECT_EQ(loaded.VerticesWithLabel("Post").size(), 1u);
  EXPECT_EQ(loaded.VerticesWithLabel("Msg").size(), 1u);
  EdgeId e = loaded.EdgesWithType("REPLY")[0];
  EXPECT_EQ(loaded.GetEdgeProperty(e, "w"), Value::Double(0.5));
  VertexId lb = loaded.EdgeTarget(e);
  EXPECT_EQ(loaded.GetVertexProperty(lb, "tags"),
            Value::List({Value::Int(1), Value::Int(2)}));

  // Dense dumps are stable: dump(load(dump)) == dump.
  EXPECT_EQ(WriteGraphText(loaded), dump);
}

TEST(GraphTextTest, IdsRemappedAfterDeletions) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({"A"});
  VertexId b = graph.AddVertex({"B"});
  VertexId c = graph.AddVertex({"C"});
  (void)graph.AddEdge(a, c, "T").value();
  ASSERT_TRUE(graph.RemoveVertex(b).ok());  // Leaves an id gap.

  PropertyGraph loaded;
  ASSERT_TRUE(ReadGraphText(WriteGraphText(graph), &loaded).ok());
  EXPECT_EQ(loaded.vertex_count(), 2u);
  EXPECT_EQ(loaded.edge_count(), 1u);
  EdgeId e = loaded.EdgesWithType("T")[0];
  EXPECT_TRUE(loaded.VertexHasLabel(loaded.EdgeSource(e), "A"));
  EXPECT_TRUE(loaded.VertexHasLabel(loaded.EdgeTarget(e), "C"));
}

TEST(GraphTextTest, RandomGraphRoundtripPreservesQueryResults) {
  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = 99;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);
  for (int i = 0; i < 50; ++i) generator.ApplyRandomUpdate(&graph);

  PropertyGraph loaded;
  ASSERT_TRUE(ReadGraphText(WriteGraphText(graph), &loaded).ok());
  EXPECT_EQ(loaded.vertex_count(), graph.vertex_count());
  EXPECT_EQ(loaded.edge_count(), graph.edge_count());

  // Id-independent queries agree between original and loaded graph.
  QueryEngine original(&graph);
  QueryEngine copy(&loaded);
  for (const char* query :
       {"MATCH (n:A) RETURN count(*) AS c",
        "MATCH (a:A)-[:R]->(b:B) RETURN count(*) AS c",
        "MATCH (n:B) UNWIND n.tags AS t RETURN t, count(*) AS c"}) {
    EXPECT_EQ(original.EvaluateOnce(query).value(),
              copy.EvaluateOnce(query).value())
        << query;
  }
}

TEST(GraphTextTest, LoadFeedsRegisteredViews) {
  // Loading emits one batch; attached views must pick everything up.
  PropertyGraph source;
  VertexId a = source.AddVertex({"Post"}, {{"lang", Value::String("en")}});
  VertexId b = source.AddVertex({"Comm"}, {{"lang", Value::String("en")}});
  (void)source.AddEdge(a, b, "REPLY").value();

  PropertyGraph target;
  QueryEngine engine(&target);
  auto view = engine
                  .Register("MATCH (p:Post)-[:REPLY]->(c:Comm) "
                            "WHERE p.lang = c.lang RETURN p, c")
                  .value();
  ASSERT_TRUE(ReadGraphText(WriteGraphText(source), &target).ok());
  EXPECT_EQ(view->size(), 1);
}

TEST(GraphTextTest, BadHeaderRejected) {
  PropertyGraph graph;
  EXPECT_FALSE(ReadGraphText("not a dump", &graph).ok());
  EXPECT_FALSE(ReadGraphText("", &graph).ok());
}

TEST(GraphTextTest, MalformedRecordsRejected) {
  PropertyGraph graph;
  EXPECT_FALSE(
      ReadGraphText("pgivm-graph 1\nvertex oops : {}", &graph).ok());
  EXPECT_FALSE(
      ReadGraphText("pgivm-graph 1\nedge 0 5 6 T {}", &graph).ok());
  EXPECT_FALSE(
      ReadGraphText("pgivm-graph 1\nwidget 1 2 3", &graph).ok());
  EXPECT_FALSE(ReadGraphText(
                   "pgivm-graph 1\nvertex 0 : {}\nvertex 0 : {}", &graph)
                   .ok());
}

TEST(GraphTextTest, RoundtripFingerprintIsSymbolIdIndependent) {
  // The original graph interns scaffolding symbols FIRST — a label and a
  // property key that are later retracted. Intern ids are append-only, so
  // every symbol the dump DOES contain sits at a shifted id; a reload
  // interns in file order and assigns different ids to the same names.
  // The fingerprint compares strings, never ids, so it must not move.
  PropertyGraph graph;
  VertexId a = graph.AddVertex({"A"});
  ASSERT_TRUE(graph.AddVertexLabel(a, "Scaffold").ok());
  ASSERT_TRUE(graph.SetVertexProperty(a, "temp", Value::Int(1)).ok());
  ASSERT_TRUE(graph.SetVertexProperty(a, "temp", Value::Null()).ok());
  ASSERT_TRUE(graph.RemoveVertexLabel(a, "Scaffold").ok());
  ASSERT_TRUE(graph.SetVertexProperty(a, "x", Value::Int(5)).ok());
  VertexId b = graph.AddVertex({"B"}, {{"y", Value::Double(2.5)}});
  (void)graph.AddEdge(a, b, "R", {{"w", Value::Int(3)}}).value();

  const std::string dump = WriteGraphText(graph);
  StorageOptions typed_storage;  // typed_columns = true, env-independent
  StorageOptions row_storage;
  row_storage.typed_columns = false;
  PropertyGraph typed(typed_storage);
  PropertyGraph row(row_storage);
  ASSERT_TRUE(ReadGraphText(dump, &typed).ok());
  ASSERT_TRUE(ReadGraphText(dump, &row).ok());

  // Sanity: the ids really did shift ("Scaffold"/"temp" never reach the
  // dump), so equality below is not vacuous.
  ASSERT_TRUE(graph.symbols().Lookup("x").has_value());
  ASSERT_TRUE(typed.symbols().Lookup("x").has_value());
  ASSERT_NE(*graph.symbols().Lookup("x"), *typed.symbols().Lookup("x"));

  // No deletions above, so element ids are dense and survive the reload:
  // original and both reloads fingerprint identically.
  EXPECT_EQ(GraphFingerprint(typed), GraphFingerprint(graph));
  EXPECT_EQ(GraphFingerprint(row), GraphFingerprint(graph));
  EXPECT_EQ(WriteGraphText(typed), dump);
  EXPECT_EQ(WriteGraphText(row), dump);
}

TEST(GraphTextTest, RandomRoundtripIsBitIdenticalAcrossStorageModes) {
  // A churned random graph (deletions included, so ids get remapped on
  // load) dumped once and loaded into both storage layouts: the two
  // reloads must be indistinguishable — same fingerprint, same re-dump.
  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = 1234;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);
  for (int i = 0; i < 60; ++i) generator.ApplyRandomUpdate(&graph);

  const std::string dump = WriteGraphText(graph);
  StorageOptions typed_storage;  // typed_columns = true, env-independent
  StorageOptions row_storage;
  row_storage.typed_columns = false;
  PropertyGraph typed(typed_storage);
  PropertyGraph row(row_storage);
  ASSERT_TRUE(ReadGraphText(dump, &typed).ok());
  ASSERT_TRUE(ReadGraphText(dump, &row).ok());
  ASSERT_TRUE(typed.storage_options().typed_columns);
  ASSERT_FALSE(row.storage_options().typed_columns);

  EXPECT_EQ(GraphFingerprint(typed), GraphFingerprint(row));
  EXPECT_EQ(WriteGraphText(typed), WriteGraphText(row));
  EXPECT_EQ(typed.vertex_count(), row.vertex_count());
  EXPECT_EQ(typed.edge_count(), row.edge_count());
}

TEST(GraphTextTest, CommentsAndBlankLinesSkipped) {
  PropertyGraph graph;
  ASSERT_TRUE(ReadGraphText(
                  "pgivm-graph 1\n# a comment\n\nvertex 0 :X {}\n", &graph)
                  .ok());
  EXPECT_EQ(graph.VerticesWithLabel("X").size(), 1u);
}

}  // namespace
}  // namespace pgivm
