#ifndef PGIVM_RETE_SEMIJOIN_NODE_H_
#define PGIVM_RETE_SEMIJOIN_NODE_H_

#include <unordered_map>

#include "rete/join_node.h"
#include "rete/node.h"

namespace pgivm {

/// ⋉ — incremental semi-join: emits the left tuples that have at least one
/// partner in the right input (matching on shared column names), each with
/// its own multiplicity (no fan-out). Realizes positive `exists(pattern)`
/// predicates; the dual of AntiJoinNode.
class SemiJoinNode : public ReteNode {
 public:
  SemiJoinNode(Schema schema, const Schema& left, const Schema& right);

  void OnDelta(int port, const Delta& delta) override;

  /// Replays the currently matched left tuples (keys with positive right
  /// support), each with its own multiplicity.
  bool ReplayOutput(Delta& out) const override;

  void Reset() override {
    left_memory_.clear();
    right_support_.clear();
  }

  size_t ApproxMemoryBytes() const override;

  std::string DebugString() const override { return "SemiJoin"; }
  const char* KindName() const override { return "SemiJoin"; }

 private:
  JoinLayout layout_;
  std::unordered_map<Tuple, Bag, TupleHash> left_memory_;
  std::unordered_map<Tuple, int64_t, TupleHash> right_support_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_SEMIJOIN_NODE_H_
