#include "support/status.h"

#include <gtest/gtest.h>

namespace pgivm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PGIVM_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> outer_fail = Quarter(6);  // 6/2 = 3, then odd
  EXPECT_FALSE(outer_fail.ok());
  EXPECT_EQ(outer_fail.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusCodeNameTest, StableNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

}  // namespace
}  // namespace pgivm
