#ifndef PGIVM_GRAPH_PROPERTY_GRAPH_H_
#define PGIVM_GRAPH_PROPERTY_GRAPH_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/graph_delta.h"
#include "support/status.h"
#include "value/ids.h"
#include "value/value.h"

namespace pgivm {

/// In-memory property graph per the paper's data model
/// G = (V, E, st, L, T, labels, types, Pv, Pe):
///  * vertices carry a *set* of labels and a schema-free property map;
///  * edges carry exactly one type, a property map, and source/target;
///  * property values are pgivm::Value (atomic, list, map — nested data).
///
/// Mutations are observable: every applied change is delivered to registered
/// GraphListeners as a self-contained GraphDelta (see graph_delta.h). Calls
/// outside a batch emit one single-change delta each; BeginBatch/CommitBatch
/// groups many changes into one atomic delta — the unit of IVM propagation
/// ("transaction" in the paper's sense).
///
/// Identifier discipline: ids are dense, monotonically increasing and never
/// reused, so downstream state keyed by id stays unambiguous.
///
/// Thread-compatibility: const methods are safe to call concurrently;
/// mutations require external synchronization (single-writer model).
class PropertyGraph {
 public:
  PropertyGraph() = default;

  // Not copyable or movable: listeners hold stable pointers to the graph.
  PropertyGraph(const PropertyGraph&) = delete;
  PropertyGraph& operator=(const PropertyGraph&) = delete;

  // ---- Mutations ---------------------------------------------------------

  /// Adds a vertex with `labels` (deduplicated) and `properties` (entries
  /// with null values are dropped). Returns its id.
  VertexId AddVertex(std::vector<std::string> labels,
                     ValueMap properties = {});

  /// Adds an edge of `type` from `src` to `dst`. Fails if an endpoint does
  /// not exist.
  Result<EdgeId> AddEdge(VertexId src, VertexId dst, std::string type,
                         ValueMap properties = {});

  /// Removes an edge. Fails if it does not exist.
  Status RemoveEdge(EdgeId edge);

  /// Removes a vertex. Fails if it still has incident edges (use
  /// DetachRemoveVertex for cascade semantics).
  Status RemoveVertex(VertexId vertex);

  /// Removes a vertex after removing all incident edges (Cypher's
  /// DETACH DELETE). Each edge removal is its own change in the delta.
  Status DetachRemoveVertex(VertexId vertex);

  /// Sets (or, when `value` is null, erases) a vertex/edge property.
  /// A no-op write (old == new) emits no change.
  Status SetVertexProperty(VertexId vertex, std::string key, Value value);
  Status SetEdgeProperty(EdgeId edge, std::string key, Value value);

  /// Adds/removes a single label. Adding an existing or removing a missing
  /// label is a no-op (OK, no change emitted).
  Status AddVertexLabel(VertexId vertex, std::string label);
  Status RemoveVertexLabel(VertexId vertex, const std::string& label);

  // ---- Fine-grained collection updates (FGN) -----------------------------
  // These express element-level edits of collection properties. They are
  // recorded as SetProperty changes carrying both old and new collection, so
  // incremental consumers (the unnest node) can diff them element-wise
  // instead of recomputing — the paper's FGN property.

  /// Appends `element` to the list property `key` (absent property becomes a
  /// one-element list). Fails if the property exists and is not a list.
  Status ListAppend(VertexId vertex, const std::string& key, Value element);

  /// Removes one occurrence of `element` from the list property `key`.
  /// Fails if the property is not a list or the element is absent.
  Status ListRemoveFirst(VertexId vertex, const std::string& key,
                         const Value& element);

  /// Inserts/overwrites `entry_key` in the map property `key` (absent
  /// property becomes a one-entry map).
  Status MapPut(VertexId vertex, const std::string& key,
                const std::string& entry_key, Value value);

  /// Erases `entry_key` from the map property `key`. Fails if the property
  /// is not a map; erasing a missing entry is a no-op.
  Status MapErase(VertexId vertex, const std::string& key,
                  const std::string& entry_key);

  // ---- Batching ----------------------------------------------------------

  /// Starts accumulating changes instead of emitting per-mutation deltas.
  /// Batches do not nest.
  void BeginBatch();

  /// Emits every change recorded since BeginBatch as one delta.
  void CommitBatch();

  bool in_batch() const { return in_batch_; }

  // ---- Listeners ---------------------------------------------------------

  /// Registers/unregisters an observer. The graph does not own listeners;
  /// they must outlive their registration.
  void AddListener(GraphListener* listener);
  void RemoveListener(GraphListener* listener);

  // ---- Reads -------------------------------------------------------------

  bool HasVertex(VertexId vertex) const;
  bool HasEdge(EdgeId edge) const;

  /// Label set of `vertex` (sorted). Requires existence.
  const std::vector<std::string>& VertexLabels(VertexId vertex) const;
  bool VertexHasLabel(VertexId vertex, std::string_view label) const;

  /// Property value, or null Value if absent. Requires element existence.
  Value GetVertexProperty(VertexId vertex, std::string_view key) const;
  Value GetEdgeProperty(EdgeId edge, std::string_view key) const;
  const ValueMap& VertexProperties(VertexId vertex) const;
  const ValueMap& EdgeProperties(EdgeId edge) const;

  VertexId EdgeSource(EdgeId edge) const;
  VertexId EdgeTarget(EdgeId edge) const;
  const std::string& EdgeType(EdgeId edge) const;

  /// Incident edge lists (ids of live edges).
  const std::vector<EdgeId>& OutEdges(VertexId vertex) const;
  const std::vector<EdgeId>& InEdges(VertexId vertex) const;

  /// All live vertices carrying `label`, in unspecified order (label index).
  std::vector<VertexId> VerticesWithLabel(std::string_view label) const;

  /// All live edges of `type`, in unspecified order (type index).
  std::vector<EdgeId> EdgesWithType(std::string_view type) const;

  /// Visits every live vertex/edge id in increasing id order.
  void ForEachVertex(const std::function<void(VertexId)>& fn) const;
  void ForEachEdge(const std::function<void(EdgeId)>& fn) const;

  size_t vertex_count() const { return live_vertex_count_; }
  size_t edge_count() const { return live_edge_count_; }

  /// Rough heap usage of the store (elements, properties, indexes), for the
  /// memory experiments.
  size_t ApproxMemoryBytes() const;

 private:
  struct VertexData {
    bool alive = false;
    std::vector<std::string> labels;  // sorted, unique
    ValueMap properties;
    std::vector<EdgeId> out_edges;
    std::vector<EdgeId> in_edges;
  };

  struct EdgeData {
    bool alive = false;
    VertexId src = kInvalidId;
    VertexId dst = kInvalidId;
    std::string type;
    ValueMap properties;
  };

  VertexData& MutableVertex(VertexId id);
  const VertexData& GetVertex(VertexId id) const;
  EdgeData& MutableEdge(EdgeId id);
  const EdgeData& GetEdge(EdgeId id) const;

  /// Records one applied change: appended to the open batch, or emitted as a
  /// singleton delta.
  void Record(GraphChange change);
  void Emit(GraphDelta delta);

  /// Shared implementation of vertex/edge property writes.
  Status SetPropertyImpl(bool is_vertex, int64_t id, std::string key,
                         Value value);

  std::vector<VertexData> vertices_;
  std::vector<EdgeData> edges_;
  size_t live_vertex_count_ = 0;
  size_t live_edge_count_ = 0;

  std::unordered_map<std::string, std::unordered_set<VertexId>> label_index_;
  std::unordered_map<std::string, std::unordered_set<EdgeId>> type_index_;

  bool in_batch_ = false;
  GraphDelta pending_;

  std::vector<GraphListener*> listeners_;
};

}  // namespace pgivm

#endif  // PGIVM_GRAPH_PROPERTY_GRAPH_H_
