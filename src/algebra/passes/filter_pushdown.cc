#include "algebra/passes/pass_manager.h"

namespace pgivm {

namespace {

bool AllBound(const ExprPtr& expr, const Schema& schema) {
  std::vector<std::string> vars;
  expr->CollectVariables(vars);
  for (const std::string& var : vars) {
    if (!schema.Contains(var)) return false;
  }
  return true;
}

OpPtr Rewrite(const OpPtr& op);

/// Pushes one conjunct into `op` as deep as its variables allow; returns the
/// (possibly rewrapped) operator.
OpPtr PushConjunct(OpPtr op, const ExprPtr& pred) {
  switch (op->kind) {
    case OpKind::kJoin: {
      if (AllBound(pred, op->children[0]->schema)) {
        op->children[0] = PushConjunct(op->children[0], pred);
        return op;
      }
      if (AllBound(pred, op->children[1]->schema)) {
        op->children[1] = PushConjunct(op->children[1], pred);
        return op;
      }
      break;
    }
    case OpKind::kSelection:
      // Merge into the existing selection's child; keeps one σ per site.
      op->children[0] = PushConjunct(op->children[0], pred);
      return op;
    case OpKind::kDistinct:
      // σ(δ(r)) == δ(σ(r)) for deterministic predicates.
      op->children[0] = PushConjunct(op->children[0], pred);
      return op;
    case OpKind::kUnnest:
      if (AllBound(pred, op->children[0]->schema)) {
        op->children[0] = PushConjunct(op->children[0], pred);
        return op;
      }
      break;
    case OpKind::kPathJoin:
      if (AllBound(pred, op->children[0]->schema)) {
        op->children[0] = PushConjunct(op->children[0], pred);
        return op;
      }
      break;
    default:
      // Projections/aggregates rename columns; outer-join variants change
      // semantics under filtering. Stop above them.
      break;
  }
  OpPtr sel = MakeOp(OpKind::kSelection, {op});
  sel->predicate = pred;
  sel->schema = op->schema;
  return sel;
}

OpPtr Rewrite(const OpPtr& op) {
  auto copy = std::make_shared<LogicalOp>(*op);
  for (OpPtr& child : copy->children) child = Rewrite(child);

  if (copy->kind != OpKind::kSelection) return copy;

  OpPtr body = copy->children[0];
  for (const ExprPtr& conjunct : SplitConjuncts(copy->predicate)) {
    body = PushConjunct(body, conjunct);
  }
  return body;
}

}  // namespace

OpPtr PushDownFilters(const OpPtr& root) { return Rewrite(root); }

}  // namespace pgivm
