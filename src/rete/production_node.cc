#include "rete/production_node.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace pgivm {

void ProductionNode::OnDelta(int port, const Delta& delta) {
  (void)port;
  // The batched scheduler delivers already-consolidated deltas; only
  // re-normalize the eager path's raw ones.
  Delta normalized;
  const Delta* net = &delta;
  if (!IsConsolidated(delta)) {
    normalized = Normalize(delta);
    net = &normalized;
  }
  if (net->empty()) return;
  ++version_;
  for (const DeltaEntry& entry : *net) {
    results_.Apply(entry.tuple, entry.multiplicity);
  }
  if (notify_listeners_ && !listeners_.empty()) {
    if (defer_notifications_) {
      // Mid-parallel-wave: listener code must not run on a pool worker.
      // Buffered here (single writer: one worker owns this node) and
      // flushed from OnWaveBarrier on the draining thread.
      deferred_notifications_.push_back(*net);
    } else {
      for (ViewChangeListener* listener : listeners_) {
        listener->OnViewDelta(*net);
      }
    }
  }
  Emit(*net);  // Views can be chained (used by tests).
}

void ProductionNode::OnWaveBarrier() {
  if (deferred_notifications_.empty()) return;
  for (const Delta& delta : deferred_notifications_) {
    for (ViewChangeListener* listener : listeners_) {
      listener->OnViewDelta(delta);
    }
  }
  deferred_notifications_.clear();
}

bool ProductionNode::PublishSnapshot(uint64_t epoch, size_t retention) {
  // Unchanged since the last commit: keep the previous epoch object.
  if (published_version_ == version_) return false;
  auto next = std::make_shared<PublishedEpoch>();
  next->epoch = epoch;
  next->version = version_;
  next->results = results_;
  published_version_ = version_;
  if (retention > 0) {
    retained_.push_back(
        std::atomic_load_explicit(&published_, std::memory_order_relaxed));
    while (retained_.size() > retention) retained_.pop_front();
  }
  std::atomic_store_explicit(&published_, EpochPtr(std::move(next)),
                             std::memory_order_release);
  return true;
}

ProductionNode::EpochPtr ProductionNode::PinSnapshot() const {
  return std::atomic_load_explicit(&published_, std::memory_order_acquire);
}

std::vector<Tuple> ProductionNode::SortedRows(const Bag& bag) {
  std::vector<Tuple> rows;
  rows.reserve(static_cast<size_t>(bag.total_count()));
  for (const auto& [tuple, count] : bag.counts()) {
    for (int64_t i = 0; i < count; ++i) rows.push_back(tuple);
  }
  std::sort(rows.begin(), rows.end(), [](const Tuple& a, const Tuple& b) {
    return Tuple::Compare(a, b) < 0;
  });
  return rows;
}

std::vector<Tuple> ProductionNode::SortedSnapshot() const {
  return SortedRows(results_);
}

void ProductionNode::RemoveListener(ViewChangeListener* listener) {
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

}  // namespace pgivm
