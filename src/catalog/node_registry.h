#ifndef PGIVM_CATALOG_NODE_REGISTRY_H_
#define PGIVM_CATALOG_NODE_REGISTRY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/operator.h"
// CanonicalPlanKey — the fingerprint this registry is keyed by. It moved to
// the algebra layer so the canonicalize pass (which must order sub-plans by
// the exact rendering the registry fingerprints with) can share it; the
// include keeps every registry client compiling unchanged.
#include "algebra/plan_fingerprint.h"

namespace pgivm {

class ReteNode;

/// Fingerprint → instantiated Rete sub-network. Owned by a ViewCatalog; the
/// network builder consults it before constructing a node so that views
/// whose plans share a prefix reuse the same nodes. The registry stores,
/// per entry, the sub-plan root and its full *support* (the root plus every
/// transitive upstream node): a view reusing the root must take a reference
/// on the whole sub-network, or tearing down the first owner would free
/// nodes the reuser still depends on.
///
/// A Lookup hit is also the incremental-priming partition point: the hit's
/// nodes are live and primed (their memories replay into the new view's
/// consumers), while misses are built fresh and primed from the graph.
///
/// Thread-safety: none — mutated only from the catalog's registration/
/// teardown path, which runs on the engine-owning thread.
///
/// Lifecycle: entries never outlive their nodes. RemoveNodes must be
/// called whenever refcount-zero roots are destroyed; Clear() drops all
/// entries (when the last view tears the shared network down) but keeps
/// the lifetime hit/miss counters for CatalogStats.
class NodeRegistry {
 public:
  struct Entry {
    ReteNode* node = nullptr;        // sub-plan root
    std::vector<ReteNode*> support;  // root + transitive upstream nodes
  };

  /// Returns the entry for `key`, or nullptr. Counts a hit / miss — the
  /// catalog's sharing statistics.
  const Entry* Lookup(const std::string& key);

  /// Non-counting lookup for diagnostics (ExplainAnalyze resolves plan
  /// operators to live nodes without skewing the hit/miss statistics).
  const Entry* Find(const std::string& key) const;

  /// Registers a freshly built sub-plan root. `key` must not be present.
  void Insert(const std::string& key, ReteNode* node,
              std::vector<ReteNode*> support);

  /// Drops every entry rooted at one of `nodes` (no-op for nodes that are
  /// not entry roots). Called when refcount-zero nodes are torn down; a
  /// surviving entry can never reference a removed node (any view that hit
  /// the entry also held references on its whole support).
  void RemoveNodes(const std::vector<ReteNode*>& nodes);

  void Clear();

  size_t size() const { return by_key_.size(); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  std::unordered_map<std::string, Entry> by_key_;
  std::unordered_map<const ReteNode*, std::string> key_of_root_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace pgivm

#endif  // PGIVM_CATALOG_NODE_REGISTRY_H_
