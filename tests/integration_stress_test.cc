// End-to-end stress: a portfolio of views spanning every engine feature is
// maintained across a long randomized SNB-style update stream, with exact
// differential verification against the from-scratch evaluator at
// checkpoints. This is the closest thing to the paper's envisioned
// deployment: many concurrent standing queries over a living social graph.

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "scoped_threads_env.h"
#include "workload/social_network.h"

namespace pgivm {
namespace {

std::vector<std::string> ViewPortfolio() {
  return {
      // The running example (transitive paths + property join).
      "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang "
      "RETURN p, t",
      // Aggregation with grouping.
      "MATCH (m:Comm) RETURN m.lang AS lang, count(*) AS n, "
      "min(m.length) AS shortest, max(m.length) AS longest",
      // OPTIONAL MATCH with IS NULL (negative constraint).
      "MATCH (p:Post) OPTIONAL MATCH (p)-[r:REPLY]->(:Comm) "
      "WITH p, r WHERE r IS NULL RETURN p",
      // exists() pattern predicate.
      "MATCH (u:Person) WHERE exists((u)-[:LIKES]->(:Post)) RETURN u",
      // NOT exists() pattern predicate.
      "MATCH (u:Person) WHERE NOT exists((u)-[:KNOWS]->(:Person)) "
      "RETURN u",
      // UNWIND of a collection property with aggregation (FGN path).
      "MATCH (u:Person) UNWIND u.speaks AS lang "
      "RETURN lang, count(*) AS speakers",
      // Quantifier over a collection property.
      "MATCH (u:Person) WHERE any(l IN u.speaks WHERE l = 'en') RETURN u",
      // CASE bucketing with aggregation.
      "MATCH (m:Post) RETURN CASE WHEN m.length > 1000 THEN 'long' "
      "WHEN m.length > 100 THEN 'mid' ELSE 'short' END AS bucket, "
      "count(*) AS n",
      // UNION ALL across labels.
      "MATCH (p:Post) RETURN p AS msg UNION ALL "
      "MATCH (c:Comm) RETURN c AS msg",
      // Two-hop friend-of-friend with property equality.
      "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) "
      "WHERE a.country = c.country RETURN a, c",
      // DISTINCT projection through joins.
      "MATCH (u:Person)-[:LIKES]->(m:Post)-[:REPLY]->(c:Comm) "
      "RETURN DISTINCT u",
      // Bounded variable-length with named path and path function.
      "MATCH t = (p:Post)-[:REPLY*1..3]->(c:Comm) "
      "RETURN p, length(t) AS hops, c",
  };
}

TEST(IntegrationStressTest, PortfolioStaysExactUnderLongStream) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 25;
  config.posts_per_person = 2;
  config.comments_per_post = 3;
  config.seed = 1234;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  std::vector<std::string> queries = ViewPortfolio();
  std::vector<std::shared_ptr<View>> views;
  for (const std::string& query : queries) {
    Result<std::shared_ptr<View>> view = engine.Register(query);
    ASSERT_TRUE(view.ok()) << query << " -> " << view.status();
    views.push_back(view.value());
  }

  constexpr int kSteps = 400;
  constexpr int kCheckEvery = 40;
  for (int step = 1; step <= kSteps; ++step) {
    generator.ApplyRandomUpdate(&graph);
    if (step % kCheckEvery != 0) continue;
    for (size_t q = 0; q < queries.size(); ++q) {
      Result<std::vector<Tuple>> expected = engine.EvaluateOnce(queries[q]);
      ASSERT_TRUE(expected.ok()) << queries[q];
      ASSERT_EQ(views[q]->Snapshot(), expected.value())
          << "view " << q << " (" << queries[q] << ") diverged at step "
          << step;
    }
  }
}

TEST(IntegrationStressTest, ViewsSurviveChurnOfEverything) {
  // Aggressive delete-heavy stream: every person's content is repeatedly
  // torn down; bag counts must never go negative (asserted inside nodes)
  // and views must come back exact.
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 12;
  config.seed = 77;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  auto threads = engine
                     .Register("MATCH (p:Post)-[:REPLY*]->(c:Comm) "
                               "RETURN p, c")
                     .value();
  auto stats = engine
                   .Register("MATCH (c:Comm) RETURN c.lang AS l, "
                             "count(*) AS n")
                   .value();

  // Tear down every comment (leaves first), then verify empty views.
  bool removed_any = true;
  while (removed_any) {
    removed_any = false;
    std::vector<VertexId> comments = graph.VerticesWithLabel("Comm");
    for (VertexId c : comments) {
      bool leaf = true;
      for (EdgeId e : graph.OutEdges(c)) {
        if (graph.EdgeType(e) == "REPLY") leaf = false;
      }
      if (leaf) {
        ASSERT_TRUE(graph.DetachRemoveVertex(c).ok());
        removed_any = true;
      }
    }
  }
  EXPECT_EQ(threads->size(), 0);
  EXPECT_EQ(stats->size(), 0);

  // Rebuild some threads; views must resume exact maintenance.
  std::vector<VertexId> posts = graph.VerticesWithLabel("Post");
  ASSERT_FALSE(posts.empty());
  VertexId parent = posts[0];
  for (int i = 0; i < 5; ++i) {
    VertexId c = graph.AddVertex({"Comm"}, {{"lang", Value::String("en")}});
    (void)graph.AddEdge(parent, c, "REPLY").value();
    parent = c;
  }
  EXPECT_EQ(threads->size(), 5);  // Chain of 5 below one post.
  EXPECT_EQ(stats->Snapshot()[0].at(1), Value::Int(5));

  EXPECT_EQ(threads->Snapshot(),
            engine.EvaluateOnce("MATCH (p:Post)-[:REPLY*]->(c:Comm) "
                                "RETURN p, c")
                .value());
}

// The multi-view serving regime the parallel executor targets: the whole
// portfolio shares one catalog network, every wave is fanned out over a
// worker pool, and views keep registering/dropping mid-stream (scheduler
// state is rebuilt around a live pool). Checkpoints are exact differential
// verification, plus a serial twin engine that must stay bit-identical
// after every delta.
TEST(IntegrationStressTest, SharedCatalogStaysExactUnderParallelWaves) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 20;
  config.seed = 4321;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  EngineOptions parallel_options;
  parallel_options.network.executor = ExecutorKind::kParallel;
  parallel_options.network.num_threads = 8;
  // Both engines are constructed with PGIVM_THREADS pinned away (the
  // override is read at construction), so this is a real parallel-8 vs
  // serial comparison in every environment, including the TSAN job's
  // PGIVM_THREADS=8 and a developer's PGIVM_THREADS=1.
  std::unique_ptr<QueryEngine> engine_holder;
  std::unique_ptr<QueryEngine> twin_holder;
  {
    ScopedThreadsEnv no_env(nullptr);
    engine_holder = std::make_unique<QueryEngine>(&graph, parallel_options);
    twin_holder = std::make_unique<QueryEngine>(&graph);
  }
  QueryEngine& engine = *engine_holder;
  QueryEngine& twin = *twin_holder;

  std::vector<std::string> queries = ViewPortfolio();
  std::vector<std::shared_ptr<View>> views;
  std::vector<std::shared_ptr<View>> twin_views;
  for (const std::string& query : queries) {
    views.push_back(engine.Register(query).value());
    twin_views.push_back(twin.Register(query).value());
  }
  ASSERT_TRUE(engine.catalog().sharing());
  ASSERT_NE(engine.catalog().shared_network(), nullptr);
  EXPECT_EQ(engine.catalog().shared_network()->executor(),
            ExecutorKind::kParallel);

  Rng rng(31337);
  std::vector<std::shared_ptr<View>> churn;
  constexpr int kSteps = 250;
  for (int step = 1; step <= kSteps; ++step) {
    if (rng.NextBool(0.3)) {
      graph.BeginBatch();
      int burst = static_cast<int>(rng.NextInRange(2, 10));
      for (int i = 0; i < burst; ++i) generator.ApplyRandomUpdate(&graph);
      graph.CommitBatch();
    } else {
      generator.ApplyRandomUpdate(&graph);
    }
    // Register/drop extra copies mid-stream: registration re-primes the
    // live shared network (and recomputes wave levels) around the pool.
    if (rng.NextBool(0.1)) {
      const std::string& query = queries[rng.NextBelow(queries.size())];
      auto view = engine.Register(query).value();
      EXPECT_EQ(view->Snapshot(), engine.EvaluateOnce(query).value())
          << query;
      churn.push_back(std::move(view));
    }
    if (!churn.empty() && rng.NextBool(0.08)) {
      churn.erase(churn.begin() +
                  static_cast<ptrdiff_t>(rng.NextBelow(churn.size())));
    }
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_EQ(views[q]->Snapshot(), twin_views[q]->Snapshot())
          << queries[q] << " diverged from the serial twin at step " << step;
    }
    if (step % 50 != 0) continue;
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_EQ(views[q]->Snapshot(), engine.EvaluateOnce(queries[q]).value())
          << "view " << q << " (" << queries[q] << ") diverged at step "
          << step;
    }
  }
}

TEST(IntegrationStressTest, RegisterAndDropViewsMidStream) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 15;
  config.seed = 5;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  std::vector<std::string> queries = ViewPortfolio();
  std::vector<std::shared_ptr<View>> active;
  Rng rng(99);
  for (int step = 0; step < 150; ++step) {
    generator.ApplyRandomUpdate(&graph);
    if (rng.NextBool(0.15)) {
      // Register a random view mid-stream: it must prime correctly from
      // live state.
      const std::string& query = queries[rng.NextBelow(queries.size())];
      auto view = engine.Register(query).value();
      EXPECT_EQ(view->Snapshot(), engine.EvaluateOnce(query).value())
          << query;
      active.push_back(std::move(view));
    }
    if (!active.empty() && rng.NextBool(0.1)) {
      // Drop one: later updates must not crash or leak into it.
      active.erase(active.begin() +
                   static_cast<ptrdiff_t>(rng.NextBelow(active.size())));
    }
  }
  // Whatever survived is still exact.
  for (const auto& view : active) {
    EXPECT_EQ(view->Snapshot(), engine.EvaluateOnce(view->query()).value());
  }
}

}  // namespace
}  // namespace pgivm
