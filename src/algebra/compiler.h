#ifndef PGIVM_ALGEBRA_COMPILER_H_
#define PGIVM_ALGEBRA_COMPILER_H_

#include "algebra/operator.h"
#include "cypher/ast.h"
#include "support/status.h"

namespace pgivm {

/// Lowers a parsed query to a GRA operator tree (step 1 of the paper's
/// workflow, following the Marton–Szárnyas–Varró mapping):
///
///  * every pattern node variable becomes a get-vertices leaf (labels act as
///    the leaf's filter) joined into the plan, so the property-pushdown pass
///    always finds a defining leaf;
///  * every relationship becomes an expand-out (transitive for `*`), later
///    rewritten to (transitive) joins by the NRA passes;
///  * inline property predicates, WHERE, relationship-uniqueness constraints
///    and chain-internal variable rebindings become selections;
///  * named paths become projections over the internal `#path(...)`
///    constructor, whose arguments alternate vertex/edge variables and
///    variable-length path sections;
///  * WITH/RETURN become projection/aggregation (+ distinct), UNWIND becomes
///    the unnest operator, OPTIONAL MATCH a left outer join.
///
/// The resulting tree has schemas computed and validated.
Result<OpPtr> CompileToGra(const Query& query);

}  // namespace pgivm

#endif  // PGIVM_ALGEBRA_COMPILER_H_
