// E12 — storage-layer ablation: interned symbols + typed columns vs the
// legacy row maps (stage 1 of the vectorized-propagation refactor).
//
// Three sweeps, each over graph size × property mix:
//   * BM_E12_Load — bulk population, typed vs row. `storage_bytes`
//     (PropertyGraph::ApproxMemoryBytes) rides alongside the timing so the
//     memory win of columnar lanes is tracked per PR, not just speed.
//   * BM_E12_UpdateBurst — batched mutation bursts over a populated graph
//     (the IVM ingest shape: BeginBatch / k updates / CommitBatch).
//   * BM_E12_FilterSweep — the filter-heavy read loop, string path
//     (per-read symbol lookup, the shim API) vs symbol path (resolve once,
//     SymbolId overloads). This is the pair CI diffs: the symbol path must
//     not be slower than the string path on any (size, mix) point.
//
// Property mixes: mix=0 is int-only (one packed Int64 lane per key — the
// columnar best case); mix=1 is mixed-type (ints + doubles + strings, and a
// per-key type flip on some elements to force the Value overflow map).

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cstdint>
#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "support/rng.h"
#include "value/value.h"

namespace pgivm {
namespace {

constexpr int kMixIntOnly = 0;
constexpr int kMixMixed = 1;

Value MixedScalar(Rng& rng, int mix) {
  if (mix == kMixIntOnly) return Value::Int(rng.NextInRange(0, 99));
  switch (rng.NextBelow(4)) {
    case 0:
      return Value::Int(rng.NextInRange(0, 99));
    case 1:
      return Value::Double(rng.NextDouble() * 100.0);
    case 2:
      return Value::String("s" + std::to_string(rng.NextBelow(64)));
    default:
      // Same key, different scalar type than the Int most elements carry:
      // in typed mode this lands in the column's overflow map.
      return Value::Bool(rng.NextBool(0.5));
  }
}

/// Deterministic loader: `vertices` vertices over three labels, each with
/// an always-Int64 "age" plus two mix-controlled keys, and ~2x edges over
/// two types with one mix-controlled key. Same stream for every storage
/// mode (the bit-identity harnesses prove the modes agree; here we only
/// need comparable work).
void PopulateGraph(PropertyGraph* graph, int64_t vertices, int mix) {
  Rng rng(/*seed=*/42);
  static const char* kLabels[] = {"Person", "Post", "Comment"};
  std::vector<VertexId> ids;
  ids.reserve(static_cast<size_t>(vertices));
  graph->BeginBatch();
  for (int64_t i = 0; i < vertices; ++i) {
    ValueMap props;
    props["age"] = Value::Int(rng.NextInRange(0, 99));
    props["score"] = MixedScalar(rng, mix);
    props["flag"] = MixedScalar(rng, mix);
    ids.push_back(graph->AddVertex({kLabels[i % 3]}, std::move(props)));
  }
  for (int64_t i = 0; i < vertices * 2; ++i) {
    VertexId src = ids[rng.NextBelow(ids.size())];
    VertexId dst = ids[rng.NextBelow(ids.size())];
    ValueMap props;
    props["w"] = MixedScalar(rng, mix);
    benchmark::DoNotOptimize(
        graph->AddEdge(src, dst, i % 2 == 0 ? "KNOWS" : "LIKES",
                       std::move(props)));
  }
  graph->CommitBatch();
}

StorageOptions PinnedStorage(bool typed) {
  StorageOptions storage;
  storage.typed_columns = typed;
  return storage;
}

/// Bulk load, typed vs row. storage_bytes is the post-load footprint.
void BM_E12_Load(benchmark::State& state) {
  const int64_t vertices = state.range(0);
  const int mix = static_cast<int>(state.range(1));
  const bool typed = state.range(2) != 0;
  size_t bytes = 0;
  for (auto _ : state) {
    PropertyGraph graph(PinnedStorage(typed));
    PopulateGraph(&graph, vertices, mix);
    bytes = graph.ApproxMemoryBytes();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() * vertices * 3);  // elements
  state.counters["storage_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_E12_Load)
    ->ArgNames({"vertices", "mix", "typed"})
    ->Args({2000, kMixIntOnly, 0})
    ->Args({2000, kMixIntOnly, 1})
    ->Args({2000, kMixMixed, 0})
    ->Args({2000, kMixMixed, 1})
    ->Args({20000, kMixIntOnly, 0})
    ->Args({20000, kMixIntOnly, 1})
    ->Args({20000, kMixMixed, 0})
    ->Args({20000, kMixMixed, 1})
    ->Unit(benchmark::kMillisecond);

/// Batched mutation bursts against a populated graph: property overwrites,
/// label churn, and edge churn — the shapes the ingest queue delivers.
void BM_E12_UpdateBurst(benchmark::State& state) {
  const int64_t vertices = state.range(0);
  const int mix = static_cast<int>(state.range(1));
  const bool typed = state.range(2) != 0;
  PropertyGraph graph(PinnedStorage(typed));
  PopulateGraph(&graph, vertices, mix);
  std::vector<VertexId> ids;
  graph.ForEachVertex([&ids](VertexId v) { ids.push_back(v); });
  Rng rng(/*seed=*/7);
  constexpr int kBurst = 256;
  for (auto _ : state) {
    graph.BeginBatch();
    for (int i = 0; i < kBurst; ++i) {
      VertexId v = ids[rng.NextBelow(ids.size())];
      switch (rng.NextBelow(3)) {
        case 0:
          benchmark::DoNotOptimize(
              graph.SetVertexProperty(v, "score", MixedScalar(rng, mix)));
          break;
        case 1:
          benchmark::DoNotOptimize(graph.AddVertexLabel(v, "Hot"));
          break;
        default:
          benchmark::DoNotOptimize(graph.RemoveVertexLabel(v, "Hot"));
          break;
      }
    }
    graph.CommitBatch();
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
  state.counters["storage_bytes"] =
      static_cast<double>(graph.ApproxMemoryBytes());
}
BENCHMARK(BM_E12_UpdateBurst)
    ->ArgNames({"vertices", "mix", "typed"})
    ->Args({2000, kMixIntOnly, 0})
    ->Args({2000, kMixIntOnly, 1})
    ->Args({20000, kMixMixed, 0})
    ->Args({20000, kMixMixed, 1})
    ->Unit(benchmark::kMicrosecond);

/// The filter-heavy loop: scan every Person, read two properties, count
/// matches. symbol=0 goes through the string shims (hash + symbol lookup
/// per read); symbol=1 resolves each name once and runs on SymbolIds —
/// the per-tuple discipline input/path nodes use. Typed storage for both:
/// this sweep isolates the API path, not the column layout.
void BM_E12_FilterSweep(benchmark::State& state) {
  const int64_t vertices = state.range(0);
  const int mix = static_cast<int>(state.range(1));
  const bool symbol_path = state.range(2) != 0;
  PropertyGraph graph(PinnedStorage(/*typed=*/true));
  PopulateGraph(&graph, vertices, mix);
  int64_t matched = 0;
  if (symbol_path) {
    const SymbolId person = graph.symbols().Lookup("Person").value();
    const SymbolId age = graph.symbols().Lookup("age").value();
    const SymbolId score = graph.symbols().Lookup("score").value();
    for (auto _ : state) {
      matched = 0;
      for (VertexId v : graph.VerticesWithLabelId(person)) {
        Value a = graph.GetVertexProperty(v, age);
        if (a.is_int() && a.AsInt() < 40) {
          benchmark::DoNotOptimize(graph.GetVertexProperty(v, score));
          ++matched;
        }
      }
      benchmark::DoNotOptimize(matched);
    }
  } else {
    for (auto _ : state) {
      matched = 0;
      for (VertexId v : graph.VerticesWithLabel("Person")) {
        Value a = graph.GetVertexProperty(v, "age");
        if (a.is_int() && a.AsInt() < 40) {
          benchmark::DoNotOptimize(graph.GetVertexProperty(v, "score"));
          ++matched;
        }
      }
      benchmark::DoNotOptimize(matched);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(
                              graph.VerticesWithLabel("Person").size()));
  state.counters["matched"] = static_cast<double>(matched);
  state.counters["storage_bytes"] =
      static_cast<double>(graph.ApproxMemoryBytes());
}
BENCHMARK(BM_E12_FilterSweep)
    ->ArgNames({"vertices", "mix", "symbol"})
    ->Args({2000, kMixIntOnly, 0})
    ->Args({2000, kMixIntOnly, 1})
    ->Args({2000, kMixMixed, 0})
    ->Args({2000, kMixMixed, 1})
    ->Args({20000, kMixIntOnly, 0})
    ->Args({20000, kMixIntOnly, 1})
    ->Args({20000, kMixMixed, 0})
    ->Args({20000, kMixMixed, 1})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pgivm

PGIVM_BENCHMARK_MAIN();
