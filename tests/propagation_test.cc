// Tests of the batched, topologically scheduled propagation pipeline:
// eager/batched parity, consolidation (inverse pairs cancel before they
// reach the production), per-(node, port) queue ordering across the binary
// node types, and the Attach/Detach lifecycle guards.

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "scoped_threads_env.h"
#include "rete/antijoin_node.h"
#include "rete/distinct_node.h"
#include "rete/join_node.h"
#include "rete/network.h"
#include "rete/semijoin_node.h"
#include "rete/union_node.h"
#include "workload/random_graph.h"

namespace pgivm {
namespace {

class RecordingListener : public ViewChangeListener {
 public:
  void OnViewDelta(const Delta& delta) override {
    ++calls;
    for (const DeltaEntry& entry : delta) {
      (void)entry;
      ++entries;
    }
  }
  int calls = 0;
  int64_t entries = 0;
};

EngineOptions WithStrategy(PropagationStrategy strategy) {
  EngineOptions options;
  options.network.propagation = strategy;
  return options;
}

// ---- strategy threading ----------------------------------------------------

TEST(PropagationOptions, DefaultIsBatchedAndFlagThreadsThrough) {
  PropertyGraph graph;
  QueryEngine batched_engine(&graph);
  auto batched = batched_engine.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(batched.ok()) << batched.status();
  EXPECT_EQ((*batched)->propagation(), PropagationStrategy::kBatched);

  QueryEngine eager_engine(&graph, WithStrategy(PropagationStrategy::kEager));
  auto eager = eager_engine.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(eager.ok()) << eager.status();
  EXPECT_EQ((*eager)->propagation(), PropagationStrategy::kEager);
}

// ---- parity: batched and eager maintain identical views --------------------

TEST(PropagationParity, SnapshotsMatchUnderMixedSingleAndBatchUpdates) {
  const std::vector<std::string> queries = {
      "MATCH (a:A)-[r:R]->(b:B) RETURN a, r, b",
      "MATCH (a:A)-[:R]->(b)-[:S]->(c) RETURN a, b, c",
      "MATCH (a:A) WHERE NOT exists((a)-[:S]->()) RETURN a",
      "MATCH (a:A)-[:R]->(b) RETURN b AS t, count(*) AS c, sum(a.x) AS s",
      "MATCH (a:A)-[:R]->(b) RETURN DISTINCT b",
      "MATCH (n:B) UNWIND n.tags AS t RETURN t, count(*) AS c",
      "MATCH (a:A)-[:R*1..3]->(b) RETURN a, b",
      "MATCH (a:A) OPTIONAL MATCH (a)-[r:R]->(b:B) RETURN a, b",
  };

  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = 77;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine eager_engine(&graph, WithStrategy(PropagationStrategy::kEager));
  QueryEngine batched_engine(&graph);
  std::vector<std::shared_ptr<View>> eager_views;
  std::vector<std::shared_ptr<View>> batched_views;
  for (const std::string& query : queries) {
    auto eager = eager_engine.Register(query);
    ASSERT_TRUE(eager.ok()) << query << ": " << eager.status();
    eager_views.push_back(*eager);
    auto batched = batched_engine.Register(query);
    ASSERT_TRUE(batched.ok()) << query << ": " << batched.status();
    batched_views.push_back(*batched);
  }

  for (int step = 0; step < 60; ++step) {
    if (step % 3 == 2) {
      graph.BeginBatch();
      for (int i = 0; i < 5; ++i) generator.ApplyRandomUpdate(&graph);
      graph.CommitBatch();
    } else {
      generator.ApplyRandomUpdate(&graph);
    }
    for (size_t q = 0; q < queries.size(); ++q) {
      std::vector<Tuple> eager_rows = eager_views[q]->Snapshot();
      std::vector<Tuple> batched_rows = batched_views[q]->Snapshot();
      ASSERT_EQ(eager_rows.size(), batched_rows.size())
          << queries[q] << " diverged at step " << step;
      for (size_t i = 0; i < eager_rows.size(); ++i) {
        ASSERT_EQ(Tuple::Compare(eager_rows[i], batched_rows[i]), 0)
            << queries[q] << " step " << step << " row " << i << ": "
            << eager_rows[i].ToString() << " vs "
            << batched_rows[i].ToString();
      }
    }
  }

  // Consolidation can only shrink the propagation volume.
  int64_t eager_entries = 0;
  int64_t batched_entries = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    eager_entries += eager_views[q]->network().TotalEmittedEntries();
    batched_entries += batched_views[q]->network().TotalEmittedEntries();
  }
  EXPECT_LE(batched_entries, eager_entries);
}

// ---- consolidation: inverse pairs cancel -----------------------------------

TEST(Consolidation, AddRemoveEdgeBatchReachesProductionAsEmptyDelta) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({"A"});
  VertexId b = graph.AddVertex({"B"});
  QueryEngine engine(&graph);
  auto view = engine.Register("MATCH (a:A)-[r:R]->(b:B) RETURN a, b");
  ASSERT_TRUE(view.ok()) << view.status();

  RecordingListener listener;
  (*view)->AddListener(&listener);
  int64_t before = (*view)->network().TotalEmittedEntries();

  graph.BeginBatch();
  EdgeId e = graph.AddEdge(a, b, "R").value();
  ASSERT_TRUE(graph.RemoveEdge(e).ok());
  graph.CommitBatch();

  // The +tuple/−tuple pair cancels at the source: nothing propagates.
  EXPECT_EQ((*view)->network().TotalEmittedEntries(), before);
  EXPECT_EQ(listener.calls, 0);
  EXPECT_EQ((*view)->size(), 0);
  (*view)->RemoveListener(&listener);
}

TEST(Consolidation, AddRemoveVertexBatchPropagatesNothing) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(view.ok()) << view.status();
  int64_t before = (*view)->network().TotalEmittedEntries();

  graph.BeginBatch();
  VertexId v = graph.AddVertex({"A"});
  ASSERT_TRUE(graph.RemoveVertex(v).ok());
  graph.CommitBatch();

  EXPECT_EQ((*view)->network().TotalEmittedEntries(), before);
  EXPECT_EQ((*view)->size(), 0);
}

TEST(Consolidation, PropertyFlipFlopInBatchPropagatesNothing) {
  PropertyGraph graph;
  VertexId v = graph.AddVertex({"A"}, {{"x", Value::Int(1)}});
  QueryEngine engine(&graph);
  auto view = engine.Register("MATCH (n:A) RETURN n, n.x AS x");
  ASSERT_TRUE(view.ok()) << view.status();
  int64_t before = (*view)->network().TotalEmittedEntries();

  graph.BeginBatch();
  ASSERT_TRUE(graph.SetVertexProperty(v, "x", Value::Int(2)).ok());
  ASSERT_TRUE(graph.SetVertexProperty(v, "x", Value::Int(1)).ok());
  graph.CommitBatch();

  EXPECT_EQ((*view)->network().TotalEmittedEntries(), before);
  EXPECT_EQ((*view)->size(), 1);
}

TEST(Consolidation, BatchOfInsertsCoalescesToOneListenerCall) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(view.ok()) << view.status();
  RecordingListener listener;
  (*view)->AddListener(&listener);

  graph.BeginBatch();
  for (int i = 0; i < 10; ++i) graph.AddVertex({"A"});
  graph.CommitBatch();

  EXPECT_EQ(listener.calls, 1);
  EXPECT_EQ(listener.entries, 10);
  EXPECT_EQ((*view)->size(), 10);
  (*view)->RemoveListener(&listener);
}

TEST(Consolidation, EagerPropagatesEveryChangeSeparately) {
  PropertyGraph graph;
  QueryEngine engine(&graph, WithStrategy(PropagationStrategy::kEager));
  auto view = engine.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(view.ok()) << view.status();
  RecordingListener listener;
  (*view)->AddListener(&listener);

  graph.BeginBatch();
  for (int i = 0; i < 10; ++i) graph.AddVertex({"A"});
  graph.CommitBatch();

  // The seed behaviour, kept as ablation baseline: one cascade per change.
  EXPECT_EQ(listener.calls, 10);
  EXPECT_EQ((*view)->size(), 10);
  (*view)->RemoveListener(&listener);
}

// ---- per-(node, port) queues across the binary node types ------------------

/// A two-source network: [:A] vertices feed port 0 and [:B] vertices feed
/// port 1 of one binary node, whose output is materialized by a production.
/// Both input schemas are [v], so the natural-join key is the vertex itself
/// — a vertex labelled both :A and :B reaches both ports in the same wave.
struct BinaryFixture {
  static Schema VSchema() {
    return Schema({{"v", Attribute::Kind::kVertex}});
  }

  void Build(std::unique_ptr<ReteNode> node, PropagationStrategy strategy) {
    Schema vs = VSchema();
    auto* left = network.Add(std::make_unique<VertexInputNode>(
        vs, &graph, std::vector<std::string>{"A"},
        std::vector<PropertyExtract>{}));
    network.RegisterSource(left);
    auto* right = network.Add(std::make_unique<VertexInputNode>(
        vs, &graph, std::vector<std::string>{"B"},
        std::vector<PropertyExtract>{}));
    network.RegisterSource(right);
    binary = network.Add(std::move(node));
    left->AddOutput(binary, 0);
    right->AddOutput(binary, 1);
    production = network.Add(std::make_unique<ProductionNode>(vs));
    binary->AddOutput(production, 0);
    network.SetProduction(production);
    network.set_propagation(strategy);
    network.Attach(&graph);
    left_node = left;
    right_node = right;
  }

  PropertyGraph graph;
  ReteNetwork network;
  ReteNode* left_node = nullptr;
  ReteNode* right_node = nullptr;
  ReteNode* binary = nullptr;
  ProductionNode* production = nullptr;
};

TEST(QueueOrdering, SchedulerAssignsTopologicalLevels) {
  BinaryFixture fixture;
  Schema vs = BinaryFixture::VSchema();
  fixture.Build(std::make_unique<JoinNode>(vs, vs, vs),
                PropagationStrategy::kBatched);
  EXPECT_EQ(fixture.network.node_level(fixture.left_node), 0);
  EXPECT_EQ(fixture.network.node_level(fixture.right_node), 0);
  EXPECT_EQ(fixture.network.node_level(fixture.binary), 1);
  EXPECT_EQ(fixture.network.node_level(fixture.production), 2);
}

TEST(QueueOrdering, JoinReceivesBothPortsOnceAndProducesOneRow) {
  BinaryFixture fixture;
  Schema vs = BinaryFixture::VSchema();
  fixture.Build(std::make_unique<JoinNode>(vs, vs, vs),
                PropagationStrategy::kBatched);
  RecordingListener listener;
  fixture.production->AddListener(&listener);

  // One wave delivers port 0 (ΔL ⋈ R_old) then port 1 (L_new ⋈ ΔR): the
  // new row must be produced exactly once, not zero or two times.
  fixture.graph.BeginBatch();
  VertexId v = fixture.graph.AddVertex({"A", "B"});
  fixture.graph.CommitBatch();

  EXPECT_EQ(fixture.production->results().total_count(), 1);
  EXPECT_EQ(listener.calls, 1);
  EXPECT_EQ(listener.entries, 1);

  fixture.graph.BeginBatch();
  ASSERT_TRUE(fixture.graph.RemoveVertex(v).ok());
  fixture.graph.CommitBatch();
  EXPECT_EQ(fixture.production->results().total_count(), 0);
  fixture.production->RemoveListener(&listener);
}

TEST(QueueOrdering, AntiJoinCancelsTransientAssertAcrossPorts) {
  BinaryFixture fixture;
  Schema vs = BinaryFixture::VSchema();
  fixture.Build(std::make_unique<AntiJoinNode>(vs, vs, vs),
                PropagationStrategy::kBatched);

  // Port 0 (left insert, no right support yet) asserts +v; port 1 (right
  // insert) retracts it in the same wave. The node's flush consolidates the
  // pair away, so the anti-join emits nothing at all.
  fixture.graph.BeginBatch();
  fixture.graph.AddVertex({"A", "B"});
  fixture.graph.CommitBatch();

  EXPECT_EQ(fixture.binary->emitted_entries(), 0);
  EXPECT_EQ(fixture.production->results().total_count(), 0);

  // A left-only vertex must still pass through.
  fixture.graph.AddVertex({"A"});
  EXPECT_EQ(fixture.production->results().total_count(), 1);
}

TEST(QueueOrdering, AntiJoinEagerEmitsTheTransientPair) {
  BinaryFixture fixture;
  Schema vs = BinaryFixture::VSchema();
  fixture.Build(std::make_unique<AntiJoinNode>(vs, vs, vs),
                PropagationStrategy::kEager);

  fixture.graph.BeginBatch();
  fixture.graph.AddVertex({"A", "B"});
  fixture.graph.CommitBatch();

  // Same final state, but the eager cascade pushed +v and −v through.
  EXPECT_EQ(fixture.binary->emitted_entries(), 2);
  EXPECT_EQ(fixture.production->results().total_count(), 0);
}

TEST(QueueOrdering, SemiJoinTogglesOnWithinOneWave) {
  BinaryFixture fixture;
  Schema vs = BinaryFixture::VSchema();
  fixture.Build(std::make_unique<SemiJoinNode>(vs, vs, vs),
                PropagationStrategy::kBatched);

  fixture.graph.BeginBatch();
  VertexId v = fixture.graph.AddVertex({"A", "B"});
  fixture.graph.CommitBatch();

  // Port 0 inserts the left row (no support yet, no emission); port 1's
  // support toggle then asserts it exactly once.
  EXPECT_EQ(fixture.binary->emitted_entries(), 1);
  EXPECT_EQ(fixture.production->results().total_count(), 1);

  fixture.graph.BeginBatch();
  ASSERT_TRUE(fixture.graph.RemoveVertexLabel(v, "B").ok());
  fixture.graph.CommitBatch();
  EXPECT_EQ(fixture.production->results().total_count(), 0);
}

TEST(QueueOrdering, UnionCoalescesBothPortsIntoOneDelta) {
  BinaryFixture fixture;
  fixture.Build(std::make_unique<UnionNode>(BinaryFixture::VSchema()),
                PropagationStrategy::kBatched);
  RecordingListener listener;
  fixture.production->AddListener(&listener);

  fixture.graph.BeginBatch();
  fixture.graph.AddVertex({"A"});
  fixture.graph.AddVertex({"B"});
  fixture.graph.CommitBatch();

  // Two sources, one wave, one consolidated delta at the production.
  EXPECT_EQ(listener.calls, 1);
  EXPECT_EQ(listener.entries, 2);
  EXPECT_EQ(fixture.production->results().total_count(), 2);
  fixture.production->RemoveListener(&listener);
}

// A sink-less foreign pass-through wired *between* two owned nodes: the
// owned downstream must still be levelled above the foreign hop, or its
// flushed output lands in an already-drained level bucket and the view
// runs one transaction behind.
TEST(QueueOrdering, ForeignPassThroughBetweenOwnedNodesStaysCurrent) {
  class PassThrough : public ReteNode {
   public:
    explicit PassThrough(Schema schema) : ReteNode(std::move(schema)) {}
    void OnDelta(int port, const Delta& delta) override {
      (void)port;
      Emit(delta);
    }
    std::string DebugString() const override { return "PassThrough"; }
  };

  PropertyGraph graph;
  Schema vs = BinaryFixture::VSchema();
  ReteNetwork network;
  auto* source = network.Add(std::make_unique<VertexInputNode>(
      vs, &graph, std::vector<std::string>{"A"},
      std::vector<PropertyExtract>{}));
  network.RegisterSource(source);
  auto* distinct = network.Add(std::make_unique<DistinctNode>(vs));
  auto* production = network.Add(std::make_unique<ProductionNode>(vs));
  distinct->AddOutput(production, 0);
  network.SetProduction(production);

  PassThrough probe(vs);  // not owned by the network, no emit sink
  source->AddOutput(&probe, 0);
  probe.AddOutput(distinct, 0);

  network.Attach(&graph);
  EXPECT_GT(network.node_level(distinct), network.node_level(&probe));

  for (int i = 1; i <= 4; ++i) {
    graph.AddVertex({"A"});
    ASSERT_EQ(production->results().total_count(), i)
        << "view ran behind after delta " << i;
  }
}

// Chained *batched* networks: a node of network B subscribes to network
// A's production. B buffers externally fed emissions through its own emit
// sink; it must drain them immediately instead of waiting for its next
// graph delta, or its results go stale by one transaction.
TEST(QueueOrdering, ChainedBatchedNetworksStayCurrent) {
  PropertyGraph graph;
  Schema vs = BinaryFixture::VSchema();

  ReteNetwork upstream;
  auto* source = upstream.Add(std::make_unique<VertexInputNode>(
      vs, &graph, std::vector<std::string>{"A"},
      std::vector<PropertyExtract>{}));
  upstream.RegisterSource(source);
  auto* upstream_prod = upstream.Add(std::make_unique<ProductionNode>(vs));
  source->AddOutput(upstream_prod, 0);
  upstream.SetProduction(upstream_prod);

  ReteNetwork downstream;
  auto* distinct = downstream.Add(std::make_unique<DistinctNode>(vs));
  auto* downstream_prod =
      downstream.Add(std::make_unique<ProductionNode>(vs));
  distinct->AddOutput(downstream_prod, 0);
  downstream.SetProduction(downstream_prod);
  upstream_prod->AddOutput(distinct, 0);

  // Registered (attached) before the upstream network: its OnGraphDelta
  // fires first and finds nothing — the chained delivery happens later,
  // inside the upstream network's drain.
  downstream.Attach(&graph);
  upstream.Attach(&graph);

  graph.BeginBatch();
  VertexId v = graph.AddVertex({"A"});
  graph.AddVertex({"A"});
  graph.CommitBatch();
  EXPECT_EQ(upstream_prod->results().total_count(), 2);
  EXPECT_EQ(downstream_prod->results().total_count(), 2);

  graph.BeginBatch();
  ASSERT_TRUE(graph.RemoveVertex(v).ok());
  graph.CommitBatch();
  EXPECT_EQ(downstream_prod->results().total_count(), 1);
}

// "Views can be chained": a node the network does not own may subscribe to
// the production. Batched propagation must still deliver to it — via the
// wave scheduler when wired before Attach, and by direct (eager-style)
// delivery when wired afterwards.
TEST(QueueOrdering, ForeignSubscribersReceiveDeltasUnderBatched) {
  class ForeignSink : public ReteNode {
   public:
    ForeignSink() : ReteNode(Schema{}) {}
    void OnDelta(int port, const Delta& delta) override {
      (void)port;
      entries += static_cast<int64_t>(delta.size());
    }
    std::string DebugString() const override { return "ForeignSink"; }
    int64_t entries = 0;
  };

  PropertyGraph graph;
  ReteNetwork network;
  Schema vs({{"v", Attribute::Kind::kVertex}});
  auto* source = network.Add(std::make_unique<VertexInputNode>(
      vs, &graph, std::vector<std::string>{"A"},
      std::vector<PropertyExtract>{}));
  network.RegisterSource(source);
  auto* production = network.Add(std::make_unique<ProductionNode>(vs));
  source->AddOutput(production, 0);
  network.SetProduction(production);

  ForeignSink wired_before;
  production->AddOutput(&wired_before, 0);
  network.Attach(&graph);

  graph.BeginBatch();
  graph.AddVertex({"A"});
  graph.AddVertex({"A"});
  graph.CommitBatch();
  EXPECT_EQ(wired_before.entries, 2);

  ForeignSink wired_after;
  production->AddOutput(&wired_after, 0);
  graph.AddVertex({"A"});
  EXPECT_EQ(wired_before.entries, 3);
  EXPECT_EQ(wired_after.entries, 1);
}

// A trail running through several edges added in the same graph delta is
// enumerated once per such edge (each kAddEdge translates against the final
// graph state); the path store must assert it exactly once. Regression test
// for the double-count this caused under multi-change batches.
class PathBatchTest : public ::testing::TestWithParam<PropagationStrategy> {};

TEST_P(PathBatchTest, ChainedEdgesAddedInOneBatchAssertTrailsOnce) {
  PropertyGraph graph;
  VertexId a = graph.AddVertex({"A"});
  VertexId b = graph.AddVertex({"B"});
  VertexId c = graph.AddVertex({"B"});
  QueryEngine engine(&graph, WithStrategy(GetParam()));
  auto view = engine.Register("MATCH (x:A)-[:R*1..3]->(y) RETURN x, y");
  ASSERT_TRUE(view.ok()) << view.status();

  graph.BeginBatch();
  ASSERT_TRUE(graph.AddEdge(a, b, "R").ok());
  ASSERT_TRUE(graph.AddEdge(b, c, "R").ok());
  graph.CommitBatch();

  // Trails from the :A anchor: a→b and a→b→c — exactly two rows.
  EXPECT_EQ((*view)->size(), 2);
  auto expected = engine.EvaluateOnce("MATCH (x:A)-[:R*1..3]->(y) RETURN x, y");
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ((*view)->Snapshot().size(), expected.value().size());

  // And the batch removal retracts both trails.
  graph.BeginBatch();
  for (EdgeId e : graph.OutEdges(b)) {
    ASSERT_TRUE(graph.RemoveEdge(e).ok());
    break;
  }
  graph.CommitBatch();
  EXPECT_EQ((*view)->size(), 1);
}

INSTANTIATE_TEST_SUITE_P(BothStrategies, PathBatchTest,
                         ::testing::Values(PropagationStrategy::kEager,
                                           PropagationStrategy::kBatched),
                         [](const auto& info) {
                           return std::string(
                               PropagationStrategyName(info.param));
                         });

// ---- wave executor ---------------------------------------------------------

TEST(WaveExecutor, OptionsThreadThroughTheEngineStack) {
  ScopedThreadsEnv env(nullptr);  // isolate from the ambient environment
  PropertyGraph graph;

  QueryEngine serial_engine(&graph);
  auto serial = serial_engine.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ((*serial)->executor(), ExecutorKind::kSerial);
  EXPECT_EQ((*serial)->network().executor_parallelism(), 1);

  EngineOptions options;
  options.network.executor = ExecutorKind::kParallel;
  options.network.num_threads = 3;
  QueryEngine parallel_engine(&graph, options);
  auto parallel = parallel_engine.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ((*parallel)->executor(), ExecutorKind::kParallel);
  EXPECT_EQ((*parallel)->network().executor_parallelism(), 3);
}

TEST(WaveExecutor, EnvOverrideWinsOverProgrammaticConfiguration) {
  PropertyGraph graph;
  {
    ScopedThreadsEnv env("4");
    QueryEngine engine(&graph);  // default-serial options
    auto view = engine.Register("MATCH (n:A) RETURN n");
    ASSERT_TRUE(view.ok()) << view.status();
    EXPECT_EQ((*view)->executor(), ExecutorKind::kParallel);
    EXPECT_EQ((*view)->network().executor_parallelism(), 4);
  }
  {
    ScopedThreadsEnv env("1");
    EngineOptions options;
    options.network.executor = ExecutorKind::kParallel;
    options.network.num_threads = 8;
    QueryEngine engine(&graph, options);
    auto view = engine.Register("MATCH (n:A) RETURN n");
    ASSERT_TRUE(view.ok()) << view.status();
    EXPECT_EQ((*view)->executor(), ExecutorKind::kSerial);
  }
  {
    ScopedThreadsEnv env("not-a-number");
    QueryEngine engine(&graph);
    auto view = engine.Register("MATCH (n:A) RETURN n");
    ASSERT_TRUE(view.ok()) << view.status();
    EXPECT_EQ((*view)->executor(), ExecutorKind::kSerial);  // ignored
  }
}

/// Regression: PGIVM_THREADS used to accept trailing garbage ("8abc" read
/// as 8) and silently saturate out-of-range values. Malformed or
/// out-of-range settings must now leave the programmatic configuration
/// untouched; in-range values — including 0 and negatives — still apply.
TEST(WaveExecutor, EnvOverrideRejectsMalformedValues) {
  NetworkOptions programmatic;
  programmatic.executor = ExecutorKind::kParallel;
  programmatic.num_threads = 3;

  auto with_env = [&programmatic](const char* value) {
    ScopedThreadsEnv env(value);
    return ApplyEnvExecutorOverride(programmatic);
  };

  for (const char* rejected : {"", "abc", "8abc", "99999999999"}) {
    NetworkOptions applied = with_env(rejected);
    EXPECT_EQ(applied.executor, ExecutorKind::kParallel)
        << "PGIVM_THREADS=\"" << rejected << "\"";
    EXPECT_EQ(applied.num_threads, 3)
        << "PGIVM_THREADS=\"" << rejected << "\"";
  }

  for (const char* serial : {"0", "-1", "1"}) {
    NetworkOptions applied = with_env(serial);
    EXPECT_EQ(applied.executor, ExecutorKind::kSerial)
        << "PGIVM_THREADS=\"" << serial << "\"";
  }

  NetworkOptions applied = with_env("8");
  EXPECT_EQ(applied.executor, ExecutorKind::kParallel);
  EXPECT_EQ(applied.num_threads, 8);
}

/// Drives identical random update streams through a serial and a parallel
/// engine over the same graph and requires bit-identical snapshots after
/// every delta — the wave barrier's determinism contract, at the unit
/// level (the differential harness covers the full query pool).
TEST(WaveExecutor, ParallelWavesAreBitIdenticalToSerial) {
  const std::vector<std::string> queries = {
      "MATCH (a:A)-[r:R]->(b:B) RETURN a, r, b",
      "MATCH (a:A)-[:R]->(b)-[:S]->(c) RETURN a, b, c",
      "MATCH (a:A)-[:R]->(b) RETURN b AS t, count(*) AS c, sum(a.x) AS s",
      "MATCH (a:A) WHERE NOT exists((a)-[:S]->()) RETURN a",
      "MATCH (a:A)-[:R*1..3]->(b) RETURN a, b",
  };

  ScopedThreadsEnv env(nullptr);
  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = 4242;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  EngineOptions parallel_options;
  parallel_options.network.executor = ExecutorKind::kParallel;
  parallel_options.network.num_threads = 4;
  QueryEngine serial_engine(&graph);
  QueryEngine parallel_engine(&graph, parallel_options);
  std::vector<std::shared_ptr<View>> serial_views;
  std::vector<std::shared_ptr<View>> parallel_views;
  // One listener object shared by all of an engine's views: under the
  // parallel executor notifications are deferred to the wave barrier, so
  // even a shared (thread-unsafe) listener is safe and sees exactly the
  // serial executor's call sequence.
  RecordingListener serial_listener;
  RecordingListener parallel_listener;
  for (const std::string& query : queries) {
    auto serial = serial_engine.Register(query);
    ASSERT_TRUE(serial.ok()) << query << ": " << serial.status();
    (*serial)->AddListener(&serial_listener);
    serial_views.push_back(*serial);
    auto parallel = parallel_engine.Register(query);
    ASSERT_TRUE(parallel.ok()) << query << ": " << parallel.status();
    (*parallel)->AddListener(&parallel_listener);
    parallel_views.push_back(*parallel);
  }

  for (int step = 0; step < 50; ++step) {
    if (step % 2 == 0) {
      graph.BeginBatch();
      for (int i = 0; i < 6; ++i) generator.ApplyRandomUpdate(&graph);
      graph.CommitBatch();
    } else {
      generator.ApplyRandomUpdate(&graph);
    }
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_EQ(serial_views[q]->Snapshot(), parallel_views[q]->Snapshot())
          << queries[q] << " diverged at step " << step;
    }
  }

  // Consolidated emission counts are part of the determinism contract too:
  // the barrier merge must not change what is delivered, only when.
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(serial_views[q]->network().TotalEmittedEntries(),
              parallel_views[q]->network().TotalEmittedEntries())
        << queries[q];
  }
  // And so are listener notifications (same calls, same total entries).
  EXPECT_EQ(parallel_listener.calls, serial_listener.calls);
  EXPECT_EQ(parallel_listener.entries, serial_listener.entries);
  for (size_t q = 0; q < queries.size(); ++q) {
    serial_views[q]->RemoveListener(&serial_listener);
    parallel_views[q]->RemoveListener(&parallel_listener);
  }
}

// A sink-less foreign hop wired between owned nodes must keep working when
// the owned part of the wave runs on the pool: foreign nodes are deferred
// to the (serial) barrier phase.
TEST(WaveExecutor, ForeignPassThroughSurvivesParallelWaves) {
  class PassThrough : public ReteNode {
   public:
    explicit PassThrough(Schema schema) : ReteNode(std::move(schema)) {}
    void OnDelta(int port, const Delta& delta) override {
      (void)port;
      Emit(delta);
    }
    std::string DebugString() const override { return "PassThrough"; }
  };

  PropertyGraph graph;
  Schema vs = BinaryFixture::VSchema();
  ReteNetwork network;
  auto* source_a = network.Add(std::make_unique<VertexInputNode>(
      vs, &graph, std::vector<std::string>{"A"},
      std::vector<PropertyExtract>{}));
  network.RegisterSource(source_a);
  auto* source_b = network.Add(std::make_unique<VertexInputNode>(
      vs, &graph, std::vector<std::string>{"B"},
      std::vector<PropertyExtract>{}));
  network.RegisterSource(source_b);
  auto* join = network.Add(std::make_unique<JoinNode>(vs, vs, vs));
  source_b->AddOutput(join, 1);
  auto* production = network.Add(std::make_unique<ProductionNode>(vs));
  join->AddOutput(production, 0);
  network.SetProduction(production);

  PassThrough probe(vs);  // not owned, no emit sink
  source_a->AddOutput(&probe, 0);
  probe.AddOutput(join, 0);

  network.set_executor(ExecutorKind::kParallel, 4);
  network.Attach(&graph);
  EXPECT_GT(network.node_level(join), network.node_level(&probe));

  // The natural-join key is the vertex itself, so each dual-labelled
  // vertex joins exactly itself: i rows after i deltas. A deferred-foreign
  // bug would leave the join a transaction behind (port 0 arrives through
  // the probe's eager cascade).
  for (int i = 1; i <= 4; ++i) {
    graph.BeginBatch();
    graph.AddVertex({"A", "B"});
    graph.CommitBatch();
    ASSERT_EQ(production->results().total_count(), i)
        << "join ran behind after delta " << i;
  }
}

// ---- work-size-aware wave gating -------------------------------------------

/// A prohibitive gate must keep every wave inline (zero pool dispatches)
/// and a zero gate must dispatch — while both deliver exactly the serial
/// executor's results. The knob moves only *where* delivery runs.
TEST(WaveGating, GateDecidesDispatchWithoutChangingResults) {
  const std::vector<std::string> queries = {
      "MATCH (a:A)-[r:R]->(b:B) RETURN a, r, b",
      "MATCH (a:A)-[:R]->(b)-[:S]->(c) RETURN a, b, c",
      "MATCH (a:A)-[:R]->(b) RETURN b AS t, count(*) AS c, sum(a.x) AS s",
  };

  ScopedThreadsEnv env(nullptr);
  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = 6161;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  auto parallel_options = [](size_t min_wave_entries) {
    EngineOptions options;
    options.network.executor = ExecutorKind::kParallel;
    options.network.num_threads = 4;
    options.network.parallel_min_wave_entries = min_wave_entries;
    // This test isolates the *wave* gate's dispatch decision; a PGIVM_MORSEL
    // forcing in the environment (the TSAN job) would add morsel dispatches
    // of its own, so morsel execution is pinned off. (The env override only
    // rewrites morsel_min_node_entries, never a programmatic partitions=1.)
    options.network.morsel_partitions = 1;
    return options;
  };
  QueryEngine serial_engine(&graph);
  QueryEngine eager_dispatch_engine(&graph, parallel_options(0));
  QueryEngine gated_engine(&graph,
                           parallel_options(1u << 30));  // prohibitive
  std::vector<std::vector<std::shared_ptr<View>>> views(3);
  for (const std::string& query : queries) {
    for (auto* engine :
         {&serial_engine, &eager_dispatch_engine, &gated_engine}) {
      size_t slot = engine == &serial_engine          ? 0
                    : engine == &eager_dispatch_engine ? 1
                                                       : 2;
      auto view = engine->Register(query);
      ASSERT_TRUE(view.ok()) << query << ": " << view.status();
      views[slot].push_back(*view);
    }
  }

  for (int step = 0; step < 30; ++step) {
    graph.BeginBatch();
    for (int i = 0; i < 6; ++i) generator.ApplyRandomUpdate(&graph);
    graph.CommitBatch();
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_EQ(views[1][q]->Snapshot(), views[0][q]->Snapshot())
          << queries[q] << " (gate 0) diverged at step " << step;
      ASSERT_EQ(views[2][q]->Snapshot(), views[0][q]->Snapshot())
          << queries[q] << " (prohibitive gate) diverged at step " << step;
    }
  }

  const ReteNetwork* eager_net =
      eager_dispatch_engine.catalog().shared_network();
  const ReteNetwork* gated_net = gated_engine.catalog().shared_network();
  ASSERT_NE(eager_net, nullptr);
  ASSERT_NE(gated_net, nullptr);
  EXPECT_GT(eager_net->parallel_waves_dispatched(), 0)
      << "gate 0 never reached the pool";
  EXPECT_EQ(gated_net->parallel_waves_dispatched(), 0)
      << "prohibitive gate still dispatched";
  // Emission counts are part of the bit-parity contract.
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(views[1][q]->network().TotalEmittedEntries(),
              views[0][q]->network().TotalEmittedEntries());
    EXPECT_EQ(views[2][q]->network().TotalEmittedEntries(),
              views[0][q]->network().TotalEmittedEntries());
  }
}

TEST(WaveGating, OptionThreadsThroughEngineAndDefaultsNonZero) {
  ScopedThreadsEnv env(nullptr);
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(view.ok()) << view.status();
  // The default gate keeps single-change waves (the steady state this
  // knob exists for) off the pool.
  EXPECT_GT((*view)->network().parallel_min_wave_entries(), 0u);

  EngineOptions options;
  options.network.parallel_min_wave_entries = 123;
  QueryEngine tuned(&graph, options);
  auto tuned_view = tuned.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(tuned_view.ok()) << tuned_view.status();
  EXPECT_EQ((*tuned_view)->network().parallel_min_wave_entries(), 123u);
}

// ---- morsel-style intra-node parallelism -----------------------------------

/// Serial reference vs. morsel-forced engines across thread × partition
/// combinations: snapshots must stay bit-identical after every delta and
/// consolidated emission counts must match — the partitioned-delivery
/// determinism contract (disjoint key ownership per partition; partition-
/// order merge canonicalized by consolidation).
TEST(Morsel, PartitionedDeliveryIsBitIdenticalToSerial) {
  const std::vector<std::string> queries = {
      "MATCH (a:A)-[r:R]->(b:B) RETURN a, r, b",
      "MATCH (a:A)-[:R]->(b)-[:S]->(c) RETURN a, b, c",
      "MATCH (a:A)-[:R]->(b) RETURN b AS t, count(*) AS c, sum(a.x) AS s",
      "MATCH (a:A) WHERE NOT exists((a)-[:S]->()) RETURN a",
      "MATCH (a:A)-[:R*1..3]->(b) RETURN a, b",
  };

  ScopedThreadsEnv env(nullptr);
  ScopedEnvVar morsel_env("PGIVM_MORSEL", nullptr);
  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = 8181;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  struct Variant {
    int threads;
    uint32_t partitions;  // 0 = auto (pool parallelism)
  };
  const std::vector<Variant> variants = {{2, 0}, {8, 0}, {8, 3}};

  QueryEngine serial_engine(&graph);
  std::vector<std::unique_ptr<QueryEngine>> morsel_engines;
  for (const Variant& variant : variants) {
    EngineOptions options;
    options.network.executor = ExecutorKind::kParallel;
    options.network.num_threads = variant.threads;
    options.network.parallel_min_wave_entries = 0;
    options.network.morsel_min_node_entries = 0;  // force the morsel path
    options.network.morsel_partitions = variant.partitions;
    morsel_engines.push_back(std::make_unique<QueryEngine>(&graph, options));
  }

  std::vector<std::shared_ptr<View>> serial_views;
  std::vector<std::vector<std::shared_ptr<View>>> morsel_views(
      variants.size());
  for (const std::string& query : queries) {
    auto serial = serial_engine.Register(query);
    ASSERT_TRUE(serial.ok()) << query << ": " << serial.status();
    serial_views.push_back(*serial);
    for (size_t v = 0; v < variants.size(); ++v) {
      auto view = morsel_engines[v]->Register(query);
      ASSERT_TRUE(view.ok()) << query << ": " << view.status();
      morsel_views[v].push_back(*view);
    }
  }

  for (int step = 0; step < 40; ++step) {
    if (step % 2 == 0) {
      graph.BeginBatch();
      for (int i = 0; i < 8; ++i) generator.ApplyRandomUpdate(&graph);
      graph.CommitBatch();
    } else {
      generator.ApplyRandomUpdate(&graph);
    }
    for (size_t q = 0; q < queries.size(); ++q) {
      for (size_t v = 0; v < variants.size(); ++v) {
        ASSERT_EQ(morsel_views[v][q]->Snapshot(), serial_views[q]->Snapshot())
            << queries[q] << " diverged at step " << step
            << " (threads=" << variants[v].threads
            << " partitions=" << variants[v].partitions << ")";
      }
    }
  }

  // Consolidated emission counts are part of the contract too: splitting a
  // node's delivery must not change what it emits, only who computes it.
  for (size_t q = 0; q < queries.size(); ++q) {
    for (size_t v = 0; v < variants.size(); ++v) {
      EXPECT_EQ(morsel_views[v][q]->network().TotalEmittedEntries(),
                serial_views[q]->network().TotalEmittedEntries())
          << queries[q];
    }
  }
  // And the forced gate must actually have exercised partitioned delivery.
  for (size_t v = 0; v < variants.size(); ++v) {
    const ReteNetwork& network = morsel_views[v][0]->network();
    EXPECT_GT(network.morsel_waves_dispatched(), 0)
        << "variant " << v << " never split a node";
    EXPECT_GE(network.morsel_partitions_resolved(), 2u);
  }
}

/// The per-node entry gate decides whether a delivery is morsel-split: a
/// prohibitive threshold must never partition (counter stays zero), a
/// forced one must — with identical results either way. partitions=1 is
/// the off switch regardless of the gate.
TEST(Morsel, GateAndPartitionCapDecideDispatch) {
  ScopedThreadsEnv env(nullptr);
  ScopedEnvVar morsel_env("PGIVM_MORSEL", nullptr);
  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = 2727;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  auto engine_options = [](size_t min_node_entries, uint32_t partitions) {
    EngineOptions options;
    options.network.executor = ExecutorKind::kParallel;
    options.network.num_threads = 4;
    options.network.morsel_min_node_entries = min_node_entries;
    options.network.morsel_partitions = partitions;
    return options;
  };
  QueryEngine serial_engine(&graph);
  QueryEngine forced_engine(&graph, engine_options(0, 0));
  QueryEngine gated_engine(&graph, engine_options(1u << 30, 0));
  QueryEngine capped_engine(&graph, engine_options(0, 1));

  const std::string query =
      "MATCH (a:A)-[:R]->(b) RETURN b AS t, count(*) AS c";
  std::vector<std::shared_ptr<View>> views;
  for (auto* engine :
       {&serial_engine, &forced_engine, &gated_engine, &capped_engine}) {
    auto view = engine->Register(query);
    ASSERT_TRUE(view.ok()) << view.status();
    views.push_back(*view);
  }

  for (int step = 0; step < 20; ++step) {
    graph.BeginBatch();
    for (int i = 0; i < 6; ++i) generator.ApplyRandomUpdate(&graph);
    graph.CommitBatch();
    for (size_t v = 1; v < views.size(); ++v) {
      ASSERT_EQ(views[v]->Snapshot(), views[0]->Snapshot())
          << "engine " << v << " diverged at step " << step;
    }
  }

  EXPECT_GT(views[1]->network().morsel_waves_dispatched(), 0)
      << "forced gate never split a node";
  EXPECT_EQ(views[2]->network().morsel_waves_dispatched(), 0)
      << "prohibitive gate still split";
  EXPECT_EQ(views[3]->network().morsel_waves_dispatched(), 0)
      << "partitions=1 still split";
  EXPECT_EQ(views[3]->network().morsel_partitions_resolved(), 1u);
}

/// PGIVM_MORSEL is validated exactly like PGIVM_THREADS: malformed or
/// out-of-range values are rejected with the programmatic options passing
/// through untouched; n >= 0 rewrites the node-entry gate, negative n pins
/// partitions to 1 (morsel execution off).
TEST(Morsel, EnvOverrideValidatesStrictly) {
  NetworkOptions programmatic;
  programmatic.morsel_min_node_entries = 777;
  programmatic.morsel_partitions = 5;

  auto with_env = [&programmatic](const char* value) {
    ScopedEnvVar env("PGIVM_MORSEL", value);
    return ApplyEnvMorselOverride(programmatic);
  };

  for (const char* rejected : {"", "abc", "8abc", "99999999999"}) {
    NetworkOptions applied = with_env(rejected);
    EXPECT_EQ(applied.morsel_min_node_entries, 777u)
        << "PGIVM_MORSEL=\"" << rejected << "\"";
    EXPECT_EQ(applied.morsel_partitions, 5u)
        << "PGIVM_MORSEL=\"" << rejected << "\"";
  }

  NetworkOptions forced = with_env("0");
  EXPECT_EQ(forced.morsel_min_node_entries, 0u);
  EXPECT_EQ(forced.morsel_partitions, 5u);  // gate override leaves the cap

  NetworkOptions raised = with_env("5000");
  EXPECT_EQ(raised.morsel_min_node_entries, 5000u);

  NetworkOptions disabled = with_env("-1");
  EXPECT_EQ(disabled.morsel_partitions, 1u);
  EXPECT_EQ(disabled.morsel_min_node_entries, 777u);

  ScopedEnvVar unset("PGIVM_MORSEL", nullptr);
  NetworkOptions untouched = ApplyEnvMorselOverride(programmatic);
  EXPECT_EQ(untouched.morsel_min_node_entries, 777u);
  EXPECT_EQ(untouched.morsel_partitions, 5u);
}

/// The morsel knobs thread from EngineOptions through the catalog to the
/// network, and the partition count resolves against the executor: a
/// serial engine always resolves to 1 (off).
TEST(Morsel, OptionsThreadThroughEngine) {
  ScopedThreadsEnv env(nullptr);
  ScopedEnvVar morsel_env("PGIVM_MORSEL", nullptr);
  PropertyGraph graph;
  EngineOptions options;
  options.network.executor = ExecutorKind::kParallel;
  options.network.num_threads = 4;
  options.network.morsel_min_node_entries = 321;
  options.network.morsel_partitions = 2;
  QueryEngine engine(&graph, options);
  auto view = engine.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ((*view)->network().morsel_min_node_entries(), 321u);
  EXPECT_EQ((*view)->network().morsel_partitions_resolved(), 2u);

  QueryEngine serial(&graph);
  auto serial_view = serial.Register("MATCH (n:A) RETURN n");
  ASSERT_TRUE(serial_view.ok()) << serial_view.status();
  EXPECT_EQ((*serial_view)->network().morsel_partitions_resolved(), 1u);
}

// ---- consolidation cutoff --------------------------------------------------

TEST(ConsolidationCutoff, SmallPathMatchesSortPathExactly) {
  // Mixed-sign payloads over a small tuple pool, every size around the
  // cutoff: the fast path must produce byte-identical canonical output
  // (same entries, same order) as the sort path.
  std::vector<Tuple> pool;
  for (int64_t i = 0; i < 4; ++i) {
    pool.push_back(Tuple({Value::Int(i), Value::String("p")}));
  }
  uint64_t lcg = 12345;
  auto next = [&lcg](uint64_t bound) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return (lcg >> 33) % bound;
  };
  for (size_t size = 0; size <= 6; ++size) {
    for (int round = 0; round < 50; ++round) {
      Delta original;
      for (size_t i = 0; i < size; ++i) {
        int64_t multiplicity = static_cast<int64_t>(next(5)) - 2;
        original.push_back({pool[next(pool.size())], multiplicity});
      }
      Delta sorted = original;
      Consolidate(sorted, /*small_cutoff=*/0);
      for (size_t cutoff : {size_t{1}, size_t{2}, size_t{6}, size_t{64}}) {
        Delta fast = original;
        Consolidate(fast, cutoff);
        ASSERT_TRUE(IsConsolidated(fast))
            << "size=" << size << " cutoff=" << cutoff;
        ASSERT_EQ(fast.size(), sorted.size())
            << "size=" << size << " cutoff=" << cutoff;
        for (size_t i = 0; i < fast.size(); ++i) {
          ASSERT_EQ(Tuple::Compare(fast[i].tuple, sorted[i].tuple), 0);
          ASSERT_EQ(fast[i].multiplicity, sorted[i].multiplicity);
        }
      }
    }
  }
}

TEST(ConsolidationCutoff, EqualRepresentationsMergeToFirstArrivalOnBothPaths) {
  // Int(1) and Double(1.0) compare (and hash) equal, so they merge into
  // one entry — and *which representation survives* must not depend on
  // the consolidation path, or the cutoff would change stored view rows.
  // Both paths keep the first arrival.
  const Tuple as_double({Value::Double(1.0)});
  const Tuple as_int({Value::Int(1)});
  for (bool double_first : {true, false}) {
    Delta original{{double_first ? as_double : as_int, 1},
                   {double_first ? as_int : as_double, 1}};
    for (size_t cutoff : {size_t{0}, size_t{2}}) {
      Delta delta = original;
      Consolidate(delta, cutoff);
      ASSERT_EQ(delta.size(), 1u);
      EXPECT_EQ(delta[0].multiplicity, 2);
      EXPECT_EQ(delta[0].tuple.at(0).is_double(), double_first)
          << "cutoff=" << cutoff << " double_first=" << double_first;
    }
  }
}

TEST(ConsolidationCutoff, DefaultSkipsSortForTinyPayloadsOnly) {
  EXPECT_EQ(NetworkOptions{}.consolidation_cutoff,
            kDefaultConsolidationCutoff);
  EXPECT_EQ(kDefaultConsolidationCutoff, 2u);
}

TEST(ConsolidationCutoff, ThresholdIsAPurePerformanceKnob) {
  // The same random stream under cutoff 0 (always sort), the default, and
  // an absurdly large cutoff (always pairwise) maintains identical views
  // and identical propagation volume.
  PropertyGraph graph;
  RandomGraphConfig config;
  config.seed = 99;
  RandomGraphGenerator generator(config);
  generator.Populate(&graph);

  auto with_cutoff = [](size_t cutoff) {
    EngineOptions options;
    options.network.consolidation_cutoff = cutoff;
    return options;
  };
  QueryEngine sort_engine(&graph, with_cutoff(0));
  QueryEngine default_engine(&graph);
  QueryEngine pairwise_engine(&graph, with_cutoff(1 << 20));

  const char* query = "MATCH (a:A)-[:R]->(b) RETURN b, count(*) AS c";
  auto sorted = sort_engine.Register(query);
  auto defaulted = default_engine.Register(query);
  auto pairwise = pairwise_engine.Register(query);
  ASSERT_TRUE(sorted.ok() && defaulted.ok() && pairwise.ok());

  for (int step = 0; step < 60; ++step) {
    if (step % 4 == 0) {
      graph.BeginBatch();
      for (int i = 0; i < 3; ++i) generator.ApplyRandomUpdate(&graph);
      graph.CommitBatch();
    } else {
      generator.ApplyRandomUpdate(&graph);
    }
    ASSERT_EQ((*sorted)->Snapshot(), (*defaulted)->Snapshot())
        << "step " << step;
    ASSERT_EQ((*sorted)->Snapshot(), (*pairwise)->Snapshot())
        << "step " << step;
  }
  EXPECT_EQ((*sorted)->network().TotalEmittedEntries(),
            (*defaulted)->network().TotalEmittedEntries());
  EXPECT_EQ((*sorted)->network().TotalEmittedEntries(),
            (*pairwise)->network().TotalEmittedEntries());
}

// ---- Attach/Detach lifecycle -----------------------------------------------

struct SingleSourceFixture {
  void Build(PropagationStrategy strategy) {
    Schema vs({{"v", Attribute::Kind::kVertex}});
    auto* source = network.Add(std::make_unique<VertexInputNode>(
        vs, &graph, std::vector<std::string>{"A"},
        std::vector<PropertyExtract>{}));
    network.RegisterSource(source);
    production = network.Add(std::make_unique<ProductionNode>(vs));
    source->AddOutput(production, 0);
    network.SetProduction(production);
    network.set_propagation(strategy);
  }

  PropertyGraph graph;
  ReteNetwork network;
  ProductionNode* production = nullptr;
};

class AttachLifecycleTest
    : public ::testing::TestWithParam<PropagationStrategy> {};

TEST_P(AttachLifecycleTest, DoubleAttachIsANoOp) {
  SingleSourceFixture fixture;
  fixture.Build(GetParam());
  fixture.network.Attach(&fixture.graph);
  fixture.network.Attach(&fixture.graph);  // must not double-subscribe

  fixture.graph.AddVertex({"A"});
  EXPECT_EQ(fixture.network.deltas_processed(), 1);
  EXPECT_EQ(fixture.production->results().total_count(), 1);
}

TEST_P(AttachLifecycleTest, ReattachAfterDetachReprimesFromCurrentGraph) {
  SingleSourceFixture fixture;
  fixture.Build(GetParam());
  fixture.network.Attach(&fixture.graph);
  fixture.graph.AddVertex({"A"});
  ASSERT_EQ(fixture.production->results().total_count(), 1);

  fixture.network.Detach();
  EXPECT_FALSE(fixture.network.attached());
  // Mutations while detached are invisible...
  fixture.graph.AddVertex({"A"});
  fixture.graph.AddVertex({"B"});
  EXPECT_EQ(fixture.production->results().total_count(), 1);

  // ...until re-attach re-primes node memories from the current content.
  fixture.network.Attach(&fixture.graph);
  EXPECT_TRUE(fixture.network.attached());
  EXPECT_EQ(fixture.production->results().total_count(), 2);

  // And incremental maintenance resumes.
  fixture.graph.AddVertex({"A"});
  EXPECT_EQ(fixture.production->results().total_count(), 3);
}

INSTANTIATE_TEST_SUITE_P(BothStrategies, AttachLifecycleTest,
                         ::testing::Values(PropagationStrategy::kEager,
                                           PropagationStrategy::kBatched),
                         [](const auto& info) {
                           return std::string(
                               PropagationStrategyName(info.param));
                         });

}  // namespace
}  // namespace pgivm
