#include "workload/snb_driver.h"

#include <atomic>
#include <cstdio>
#include <sstream>
#include <thread>

#include "graph/graph_stats.h"
#include "support/string_util.h"

namespace pgivm {

namespace {

constexpr char kComplexHistogram[] = "snb.complex_read_ns";
constexpr char kShortHistogram[] = "snb.short_read_ns";
constexpr char kUpdateHistogram[] = "snb.update_ns";

/// Cap on rows a complex read touches per pin: interactive clients page,
/// they do not scan the whole result.
constexpr size_t kComplexReadRows = 64;

std::string RenderClass(const char* name, const SnbClassStats& stats) {
  std::ostringstream os;
  const HistogramSnapshot& h = stats.latency_ns;
  auto us = [](double ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", ns / 1000.0);
    return std::string(buf);
  };
  os << "  " << name << ": ops=" << stats.operations << " p50="
     << us(static_cast<double>(h.P50())) << "us p95="
     << us(static_cast<double>(h.P95())) << "us p99="
     << us(static_cast<double>(h.P99())) << "us mean=" << us(h.Mean())
     << "us max=" << us(static_cast<double>(h.max)) << "us";
  return os.str();
}

/// The graph's storage options for this run: ambient defaults unless the
/// config pins a mode.
StorageOptions DriverStorageOptions(const SnbDriverConfig& config) {
  StorageOptions storage = AmbientStorageOptions();
  if (config.typed_columns.has_value()) {
    storage.typed_columns = *config.typed_columns;
  }
  return storage;
}

}  // namespace

const char* SnbOpClassName(SnbOpClass op_class) {
  switch (op_class) {
    case SnbOpClass::kComplexRead:
      return "complex_read";
    case SnbOpClass::kShortRead:
      return "short_read";
    case SnbOpClass::kUpdate:
      return "update";
  }
  return "?";
}

std::string SnbReport::ToString() const {
  std::ostringstream os;
  os << "SNB interactive report: "
     << complex_read.operations + short_read.operations + update.operations
     << " ops in " << elapsed_ns / 1000000 << "ms ("
     << static_cast<int64_t>(operations_per_second) << " ops/s)\n";
  os << RenderClass("complex_read", complex_read) << "\n";
  os << RenderClass("short_read", short_read) << "\n";
  os << RenderClass("update", update) << "\n";
  os << "  ingest_batches=" << ingest_batches
     << " parity_checks=" << parity_checks << " fingerprint=" << std::hex
     << graph_fingerprint << std::dec << "\n";
  return os.str();
}

const std::vector<std::string>& SnbDriver::ComplexReadQueries() {
  // IC-flavoured standing views: a friend-feed join, the reply-tree
  // transitive path with a language predicate, posts-per-creator and
  // likes-per-author aggregates.
  static const auto* queries = new std::vector<std::string>{
      "MATCH (p:Person)-[:KNOWS]->(f:Person)<-[:HAS_CREATOR]-(m:Post) "
      "RETURN p, f, m",
      "MATCH (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang "
      "RETURN p, c",
      "MATCH (m:Post)-[:HAS_CREATOR]->(p:Person) "
      "RETURN p AS person, count(*) AS posts",
      "MATCH (pe:Person)-[:LIKES]->(m:Post)-[:HAS_CREATOR]->(a:Person) "
      "RETURN a, count(*) AS likes",
  };
  return *queries;
}

const std::vector<std::string>& SnbDriver::ShortReadQueries() {
  // IS-flavoured point-lookup views: person profiles and message bodies.
  static const auto* queries = new std::vector<std::string>{
      "MATCH (p:Person) RETURN p, p.name AS name, p.country AS country",
      "MATCH (m:Post) RETURN m, m.lang AS lang, m.length AS len",
  };
  return *queries;
}

SnbDriver::SnbDriver(const SnbDriverConfig& config) : config_(config) {
  const int64_t total_weight = config_.complex_read_weight +
                               config_.short_read_weight +
                               config_.update_weight;
  // The stream is a pure function of (seed, weights, operations): the mix
  // RNG picks the class, a second draw becomes the op's own seed.
  Rng rng(config_.seed * 0x9e3779b97f4a7c15ULL + 1);
  stream_.reserve(static_cast<size_t>(std::max<int64_t>(0, config_.operations)));
  for (int64_t i = 0; i < config_.operations && total_weight > 0; ++i) {
    int64_t pick =
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(total_weight)));
    SnbOpClass op_class;
    if (pick < config_.complex_read_weight) {
      op_class = SnbOpClass::kComplexRead;
    } else if (pick < config_.complex_read_weight + config_.short_read_weight) {
      op_class = SnbOpClass::kShortRead;
    } else {
      op_class = SnbOpClass::kUpdate;
    }
    stream_.push_back({op_class, rng.Next()});
  }
}

ReproSpec SnbDriver::ReproCase() const {
  ReproSpec spec;
  spec.seed = config_.seed;
  spec.strategy = config_.engine.network.propagation;
  spec.threads = config_.engine.network.executor == ExecutorKind::kParallel
                     ? config_.engine.network.num_threads
                     : 1;
  spec.morsel = config_.engine.network.morsel_min_node_entries == 0;
  return spec;
}

SnbDriverConfig SnbDriver::WithRepro(SnbDriverConfig config,
                                     const ReproSpec& spec) {
  config.seed = spec.seed;
  config.engine.network.propagation = spec.strategy;
  if (spec.threads > 1) {
    config.engine.network.executor = ExecutorKind::kParallel;
    config.engine.network.num_threads = spec.threads;
    config.engine.network.parallel_min_wave_entries = 0;
  } else {
    config.engine.network.executor = ExecutorKind::kSerial;
  }
  if (spec.morsel) config.engine.network.morsel_min_node_entries = 0;
  return config;
}

Result<SnbReport> SnbDriver::RunTimed() {
  if (stream_.empty()) {
    return Status::InvalidArgument("SNB driver: empty operation stream");
  }
  const int threads = std::max(1, config_.client_threads);

  PropertyGraph graph(DriverStorageOptions(config_));
  SocialNetworkGenerator generator(
      SocialNetworkConfig::AtScale(config_.scale_factor, config_.seed));
  generator.Populate(&graph);
  QueryEngine engine(&graph, config_.engine);

  std::vector<std::shared_ptr<View>> complex_views;
  for (const std::string& query : ComplexReadQueries()) {
    Result<std::shared_ptr<View>> view = engine.Register(query);
    if (!view.ok()) return view.status();
    complex_views.push_back(*view);
  }
  std::vector<std::shared_ptr<View>> short_views;
  for (const std::string& query : ShortReadQueries()) {
    Result<std::shared_ptr<View>> view = engine.Register(query);
    if (!view.ok()) return view.status();
    short_views.push_back(*view);
  }

  // Instruments resolved once; recording from client threads is lock-free.
  LatencyHistogram& complex_hist =
      engine.metrics().GetHistogram(kComplexHistogram);
  LatencyHistogram& short_hist = engine.metrics().GetHistogram(kShortHistogram);
  LatencyHistogram& update_hist =
      engine.metrics().GetHistogram(kUpdateHistogram);

  engine.StartIngest();
  std::atomic<int64_t> rejected{0};
  std::atomic<uint64_t> read_checksum{0};
  const int64_t start_ns = MonotonicNowNs();

  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      uint64_t checksum = 0;
      for (size_t i = static_cast<size_t>(t); i < stream_.size();
           i += static_cast<size_t>(threads)) {
        const SnbOp& op = stream_[i];
        switch (op.op_class) {
          case SnbOpClass::kComplexRead: {
            const std::shared_ptr<View>& view =
                complex_views[op.seed % complex_views.size()];
            const int64_t t0 = MonotonicNowNs();
            std::shared_ptr<const ViewSnapshot> snap = view->Pin();
            const std::vector<Tuple>& rows = snap->rows();
            const size_t limit = std::min(rows.size(), kComplexReadRows);
            for (size_t r = 0; r < limit; ++r) checksum += rows[r].size();
            complex_hist.Record(MonotonicNowNs() - t0);
            break;
          }
          case SnbOpClass::kShortRead: {
            const std::shared_ptr<View>& view =
                short_views[op.seed % short_views.size()];
            const int64_t t0 = MonotonicNowNs();
            std::shared_ptr<const ViewSnapshot> snap = view->Pin();
            const std::vector<Tuple>& rows = snap->rows();
            if (!rows.empty()) {
              const Tuple& row = rows[(op.seed >> 8) % rows.size()];
              checksum += row.size() + static_cast<size_t>(row.Hash() & 0xff);
            }
            short_hist.Record(MonotonicNowNs() - t0);
            break;
          }
          case SnbOpClass::kUpdate: {
            const int64_t t0 = MonotonicNowNs();
            const uint64_t seed = op.seed;
            // The mutation runs on the ingest thread — the only thread
            // that touches the generator after setup — and records
            // enqueue-to-applied latency: queueing, coalescing and
            // backpressure are all part of what the client experiences.
            const bool accepted = engine.SubmitAsync(
                [&generator, &update_hist, seed, t0](PropertyGraph& g) {
                  generator.ApplyUpdate(&g, seed);
                  update_hist.Record(MonotonicNowNs() - t0);
                });
            if (!accepted) rejected.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
      read_checksum.fetch_add(checksum, std::memory_order_relaxed);
    });
  }
  for (std::thread& client : clients) client.join();
  engine.StopIngest();
  const int64_t elapsed_ns = MonotonicNowNs() - start_ns;
  if (rejected.load() != 0) {
    return Status::Internal(
        StrCat("SNB driver: ", rejected.load(),
               " updates rejected by a closed ingest queue"));
  }

  // Read the per-class latencies back through the unified snapshot surface
  // (the same numbers any monitoring client would fetch).
  const EngineMetricsSnapshot metrics = engine.MetricsSnapshot();
  SnbReport report;
  auto fill = [&metrics](const char* name, SnbClassStats* stats) {
    if (const HistogramSnapshot* h = metrics.FindHistogram(name)) {
      stats->latency_ns = *h;
      stats->operations = h->count;
    }
  };
  fill(kComplexHistogram, &report.complex_read);
  fill(kShortHistogram, &report.short_read);
  fill(kUpdateHistogram, &report.update);
  report.elapsed_ns = elapsed_ns;
  report.operations_per_second =
      elapsed_ns > 0 ? static_cast<double>(stream_.size()) * 1e9 /
                           static_cast<double>(elapsed_ns)
                     : 0.0;
  report.ingest_batches = metrics.ingest_batches;
  report.graph_fingerprint = GraphFingerprint(graph);
  return report;
}

Result<SnbReport> SnbDriver::RunValidation() {
  if (stream_.empty()) {
    return Status::InvalidArgument("SNB driver: empty operation stream");
  }

  PropertyGraph graph(DriverStorageOptions(config_));
  SocialNetworkGenerator generator(
      SocialNetworkConfig::AtScale(config_.scale_factor, config_.seed));
  generator.Populate(&graph);

  QueryEngine engine(&graph, config_.engine);
  // The reference engine is the serial twin with canonicalization off:
  // every parity assertion below then also proves the canonical normal
  // form and the configured executor/strategy/morsel setting change no
  // result (same discipline as the randomized differential harness).
  EngineOptions reference_options;
  reference_options.plan.canonicalize = false;
  QueryEngine reference(&graph, reference_options);

  std::vector<std::string> queries = ComplexReadQueries();
  for (const std::string& query : ShortReadQueries()) {
    queries.push_back(query);
  }
  std::vector<std::shared_ptr<View>> views;
  std::vector<std::shared_ptr<View>> reference_views;
  for (const std::string& query : queries) {
    Result<std::shared_ptr<View>> view = engine.Register(query);
    if (!view.ok()) return view.status();
    views.push_back(*view);
    Result<std::shared_ptr<View>> ref = reference.Register(query);
    if (!ref.ok()) return ref.status();
    reference_views.push_back(*ref);
  }

  SnbReport report;
  int64_t update_index = 0;

  auto parity_failure = [&](size_t q, int64_t step,
                            const std::string& detail) -> Status {
    ReproSpec spec = ReproCase();
    spec.step = step;
    std::string recipe = spec.EnvLine();
    std::fprintf(stderr,
                 "pgivm SNB parity FAILURE at update %lld, view '%s': %s\n"
                 "  replay with: %s\n",
                 static_cast<long long>(step), queries[q].c_str(),
                 detail.c_str(), recipe.c_str());
    return Status::Internal(StrCat("SNB validation parity failure (", recipe,
                                   ") view '", queries[q], "': ", detail));
  };

  auto check_view = [&](size_t q, int64_t step) -> Status {
    std::vector<Tuple> actual = views[q]->Snapshot();
    std::vector<Tuple> expected = reference_views[q]->Snapshot();
    if (actual.size() != expected.size()) {
      return parity_failure(
          q, step,
          StrCat("row count ", actual.size(), " vs ", expected.size()));
    }
    for (size_t i = 0; i < actual.size(); ++i) {
      if (Tuple::Compare(actual[i], expected[i]) != 0) {
        return parity_failure(q, step,
                              StrCat("row ", i, ": ", actual[i].ToString(),
                                     " vs ", expected[i].ToString()));
      }
    }
    ++report.parity_checks;
    return Status::Ok();
  };

  auto check_all = [&](int64_t step) -> Status {
    for (size_t q = 0; q < views.size(); ++q) {
      Status status = check_view(q, step);
      if (!status.ok()) return status;
    }
    return Status::Ok();
  };

  const int64_t start_ns = MonotonicNowNs();
  for (const SnbOp& op : stream_) {
    switch (op.op_class) {
      case SnbOpClass::kComplexRead:
      case SnbOpClass::kShortRead: {
        // Reads replay as parity probes: the pinned view must equal its
        // reference twin at this same committed point.
        const bool complex = op.op_class == SnbOpClass::kComplexRead;
        const size_t base = complex ? 0 : ComplexReadQueries().size();
        const size_t count = complex ? ComplexReadQueries().size()
                                     : ShortReadQueries().size();
        Status status = check_view(base + op.seed % count, update_index);
        if (!status.ok()) return status;
        if (complex) {
          ++report.complex_read.operations;
        } else {
          ++report.short_read.operations;
        }
        break;
      }
      case SnbOpClass::kUpdate: {
        generator.ApplyUpdate(&graph, op.seed);
        ++update_index;
        ++report.update.operations;
        if (config_.validate_every > 0 &&
            update_index % config_.validate_every == 0) {
          Status status = check_all(update_index);
          if (!status.ok()) return status;
        }
        if (config_.baseline_every > 0 &&
            update_index % config_.baseline_every == 0) {
          // Rotating EvaluateOnce cross-check: maintained state vs a fresh
          // one-shot evaluation of the same plan.
          const size_t q =
              static_cast<size_t>(update_index / config_.baseline_every) %
              queries.size();
          Result<std::vector<Tuple>> once = engine.EvaluateOnce(queries[q]);
          if (!once.ok()) return once.status();
          std::vector<Tuple> actual = views[q]->Snapshot();
          if (actual.size() != once.value().size()) {
            return parity_failure(q, update_index,
                                  StrCat("EvaluateOnce row count ",
                                         actual.size(), " vs ",
                                         once.value().size()));
          }
          for (size_t i = 0; i < actual.size(); ++i) {
            if (Tuple::Compare(actual[i], once.value()[i]) != 0) {
              return parity_failure(
                  q, update_index,
                  StrCat("EvaluateOnce row ", i, ": ",
                         actual[i].ToString(), " vs ",
                         once.value()[i].ToString()));
            }
          }
          ++report.parity_checks;
        }
        break;
      }
    }
  }
  Status final_check = check_all(-1);
  if (!final_check.ok()) return final_check;

  report.elapsed_ns = MonotonicNowNs() - start_ns;
  report.operations_per_second =
      report.elapsed_ns > 0 ? static_cast<double>(stream_.size()) * 1e9 /
                                  static_cast<double>(report.elapsed_ns)
                            : 0.0;
  report.graph_fingerprint = GraphFingerprint(graph);
  return report;
}

}  // namespace pgivm
