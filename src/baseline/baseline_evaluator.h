#ifndef PGIVM_BASELINE_BASELINE_EVALUATOR_H_
#define PGIVM_BASELINE_BASELINE_EVALUATOR_H_

#include <vector>

#include "algebra/operator.h"
#include "graph/property_graph.h"
#include "rete/delta.h"
#include "support/status.h"

namespace pgivm {

/// Pull-based, from-scratch interpreter of FRA plans — the "re-evaluate on
/// every change" strategy that incremental view maintenance replaces.
///
/// It is an *independent* implementation of the same plan semantics as the
/// Rete network (hash joins, DFS trail enumeration for transitive joins,
/// grouped aggregation), used as:
///  * the comparator in every IVM-vs-reevaluation experiment (E2/E3), and
///  * the oracle in differential tests (random update streams must leave
///    the Rete view equal to a fresh evaluation).
class BaselineEvaluator {
 public:
  explicit BaselineEvaluator(const PropertyGraph* graph) : graph_(graph) {}

  /// Evaluates `plan` against the current graph; returns the result bag.
  Result<Bag> Evaluate(const OpPtr& plan) const;

  /// Expands a bag to sorted rows (same shape as View snapshots).
  static std::vector<Tuple> SortedRows(const Bag& bag);

 private:
  Result<Bag> Eval(const OpPtr& op) const;
  Result<Bag> EvalGetVertices(const OpPtr& op) const;
  Result<Bag> EvalGetEdges(const OpPtr& op) const;
  Result<Bag> EvalPathJoin(const OpPtr& op) const;
  Result<Bag> EvalJoinLike(const OpPtr& op) const;
  Result<Bag> EvalAggregate(const OpPtr& op) const;
  Result<Bag> EvalUnnest(const OpPtr& op) const;

  // `key` is the extract's property key resolved to a symbol once per
  // operator evaluation (kNoSymbol for non-property extracts or names the
  // graph has never seen — both read as null/ignored).
  Value VertexExtract(const PropertyExtract& extract, SymbolId key,
                      VertexId v) const;
  Value EdgeExtract(const PropertyExtract& extract, SymbolId key, VertexId a,
                    VertexId b,
                    EdgeId e) const;

  const PropertyGraph* graph_;
};

}  // namespace pgivm

#endif  // PGIVM_BASELINE_BASELINE_EVALUATOR_H_
