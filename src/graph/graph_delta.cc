#include "graph/graph_delta.h"

#include <sstream>

#include "support/string_util.h"

namespace pgivm {

namespace {

const char* KindName(GraphChange::Kind kind) {
  switch (kind) {
    case GraphChange::Kind::kAddVertex:
      return "AddVertex";
    case GraphChange::Kind::kRemoveVertex:
      return "RemoveVertex";
    case GraphChange::Kind::kAddEdge:
      return "AddEdge";
    case GraphChange::Kind::kRemoveEdge:
      return "RemoveEdge";
    case GraphChange::Kind::kSetVertexProperty:
      return "SetVertexProperty";
    case GraphChange::Kind::kSetEdgeProperty:
      return "SetEdgeProperty";
    case GraphChange::Kind::kAddVertexLabel:
      return "AddVertexLabel";
    case GraphChange::Kind::kRemoveVertexLabel:
      return "RemoveVertexLabel";
  }
  return "Unknown";
}

}  // namespace

std::string GraphChange::ToString() const {
  std::ostringstream os;
  os << KindName(kind);
  switch (kind) {
    case Kind::kAddVertex:
    case Kind::kRemoveVertex:
      os << " v" << vertex << " :" << StrJoin(labels, ":");
      break;
    case Kind::kAddEdge:
    case Kind::kRemoveEdge:
      os << " e" << edge << " (" << src << ")-[:" << edge_type << "]->(" << dst
         << ")";
      break;
    case Kind::kSetVertexProperty:
      os << " v" << vertex << "." << property_key << " "
         << old_value.ToString() << " -> " << new_value.ToString();
      break;
    case Kind::kSetEdgeProperty:
      os << " e" << edge << "." << property_key << " " << old_value.ToString()
         << " -> " << new_value.ToString();
      break;
    case Kind::kAddVertexLabel:
    case Kind::kRemoveVertexLabel:
      os << " v" << vertex << " :" << StrJoin(labels, ":");
      break;
  }
  return os.str();
}

std::string GraphDelta::ToString() const {
  std::ostringstream os;
  os << "GraphDelta{";
  for (size_t i = 0; i < changes.size(); ++i) {
    if (i > 0) os << "; ";
    os << changes[i].ToString();
  }
  os << "}";
  return os.str();
}

}  // namespace pgivm
