// E8 — operator-level delta throughput of the Rete substrate: how many
// delta entries per second each node kind absorbs. Grounds the macro
// results (E2/E3) in the per-operator costs.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "graph/property_graph.h"
#include "rete/aggregate_node.h"
#include "rete/distinct_node.h"
#include "rete/filter_node.h"
#include "rete/join_node.h"
#include "rete/network.h"
#include "rete/project_node.h"
#include "support/rng.h"

namespace pgivm {
namespace {

class NullSink : public ReteNode {
 public:
  NullSink() : ReteNode(Schema{}) {}
  void OnDelta(int port, const Delta& delta) override {
    (void)port;
    consumed += static_cast<int64_t>(delta.size());
  }
  std::string DebugString() const override { return "NullSink"; }
  int64_t consumed = 0;
};

Schema TwoCols(const char* a, const char* b) {
  return Schema({{a, Attribute::Kind::kValue},
                 {b, Attribute::Kind::kValue}});
}

Delta MakeBatch(Rng& rng, int64_t n, int64_t key_range) {
  Delta delta;
  delta.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    delta.push_back(
        {Tuple({Value::Int(static_cast<int64_t>(rng.NextBelow(
              static_cast<uint64_t>(key_range)))),
                Value::Int(i)}),
         1});
  }
  return delta;
}

BoundExpression MustBind(const ExprPtr& expr, const Schema& schema) {
  Result<BoundExpression> bound = BoundExpression::Bind(expr, schema);
  return std::move(bound).value();
}

void BM_E8_Filter(benchmark::State& state) {
  Schema schema = TwoCols("k", "v");
  FilterNode node(schema,
                  MustBind(MakeBinary(BinaryOp::kGt, MakeVariable("v"),
                                      MakeLiteral(Value::Int(50))),
                           schema));
  NullSink sink;
  node.AddOutput(&sink, 0);
  Rng rng(1);
  Delta batch = MakeBatch(rng, 100, 1000);
  for (auto _ : state) {
    node.OnDelta(0, batch);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_E8_Filter)->Iterations(2000);

void BM_E8_Project(benchmark::State& state) {
  Schema in = TwoCols("k", "v");
  std::vector<BoundExpression> columns;
  columns.push_back(MustBind(
      MakeBinary(BinaryOp::kAdd, MakeVariable("k"), MakeVariable("v")), in));
  ProjectNode node(Schema({{"s", Attribute::Kind::kValue}}),
                   std::move(columns));
  NullSink sink;
  node.AddOutput(&sink, 0);
  Rng rng(2);
  Delta batch = MakeBatch(rng, 100, 1000);
  for (auto _ : state) {
    node.OnDelta(0, batch);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_E8_Project)->Iterations(2000);

void BM_E8_JoinProbe(benchmark::State& state) {
  // Right memory pre-loaded with `fanout` rows per key; measure left-side
  // probe throughput (insert + matching retraction keeps state stable).
  int64_t fanout = state.range(0);
  Schema left = TwoCols("k", "a");
  Schema right = TwoCols("k", "b");
  Schema out({{"k", Attribute::Kind::kValue},
              {"a", Attribute::Kind::kValue},
              {"b", Attribute::Kind::kValue}});
  JoinNode node(out, left, right);
  NullSink sink;
  node.AddOutput(&sink, 0);

  Delta preload;
  for (int64_t k = 0; k < 100; ++k) {
    for (int64_t f = 0; f < fanout; ++f) {
      preload.push_back({Tuple({Value::Int(k), Value::Int(f)}), 1});
    }
  }
  node.OnDelta(1, preload);

  Rng rng(3);
  Delta add = MakeBatch(rng, 100, 100);
  Delta remove = add;
  for (DeltaEntry& entry : remove) entry.multiplicity = -1;
  for (auto _ : state) {
    node.OnDelta(0, add);
    node.OnDelta(0, remove);
  }
  state.SetItemsProcessed(state.iterations() * 200);
  state.counters["fanout"] = static_cast<double>(fanout);
}
BENCHMARK(BM_E8_JoinProbe)->Arg(1)->Arg(4)->Arg(16)->Iterations(500);

void BM_E8_Distinct(benchmark::State& state) {
  DistinctNode node(TwoCols("k", "v"));
  NullSink sink;
  node.AddOutput(&sink, 0);
  Rng rng(4);
  Delta add = MakeBatch(rng, 100, 20);
  Delta remove = add;
  for (DeltaEntry& entry : remove) entry.multiplicity = -1;
  for (auto _ : state) {
    node.OnDelta(0, add);
    node.OnDelta(0, remove);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_E8_Distinct)->Iterations(1000);

void BM_E8_Aggregate(benchmark::State& state) {
  Schema in = TwoCols("k", "v");
  Schema out({{"k", Attribute::Kind::kValue},
              {"c", Attribute::Kind::kValue},
              {"s", Attribute::Kind::kValue}});
  std::vector<BoundExpression> keys;
  keys.push_back(MustBind(MakeVariable("k"), in));
  std::vector<AggregateSpec> specs;
  specs.push_back(AggregateSpec::Make(MakeCountStar(), in, nullptr).value());
  specs.push_back(
      AggregateSpec::Make(MakeFunctionCall("sum", {MakeVariable("v")}), in,
                          nullptr)
          .value());
  AggregateNode node(out, std::move(keys), std::move(specs));
  NullSink sink;
  node.AddOutput(&sink, 0);
  Rng rng(5);
  Delta add = MakeBatch(rng, 100, 10);
  Delta remove = add;
  for (DeltaEntry& entry : remove) entry.multiplicity = -1;
  for (auto _ : state) {
    node.OnDelta(0, add);
    node.OnDelta(0, remove);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_E8_Aggregate)->Iterations(1000);

// ---- tuple derivation micro-benchmarks -------------------------------------
//
// Join delivery manufactures one output tuple per matched pair via
// Concat/Project-style combination; these isolate the per-tuple cost of
// that path (exact-width reservation + incremental hash continuation vs
// the former rebuild-and-rehash).

void BM_E8_TupleConcat(benchmark::State& state) {
  int64_t width = state.range(0);
  std::vector<Value> left_values;
  std::vector<Value> right_values;
  for (int64_t i = 0; i < width; ++i) {
    left_values.push_back(Value::Int(i));
    right_values.push_back(Value::String("col" + std::to_string(i)));
  }
  Tuple left(left_values);
  Tuple right(right_values);
  for (auto _ : state) {
    Tuple out = left.Concat(right);
    benchmark::DoNotOptimize(out.Hash());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["width"] = static_cast<double>(2 * width);
}
BENCHMARK(BM_E8_TupleConcat)->Arg(2)->Arg(4)->Arg(8)->Iterations(200000);

void BM_E8_TupleProject(benchmark::State& state) {
  std::vector<Value> values;
  for (int64_t i = 0; i < 8; ++i) {
    values.push_back(Value::String("payload" + std::to_string(i)));
  }
  Tuple tuple(values);
  std::vector<int> indices{6, 4, 2, 0};
  for (auto _ : state) {
    Tuple out = tuple.Project(indices);
    benchmark::DoNotOptimize(out.Hash());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_E8_TupleProject)->Iterations(200000);

void BM_E8_TupleConcatProjected(benchmark::State& state) {
  // The exact join-delivery combination: left row + right-only columns.
  Tuple left({Value::Int(1), Value::String("k"), Value::Int(2)});
  Tuple right({Value::String("k"), Value::Int(7), Value::String("rest"),
               Value::Double(2.5)});
  std::vector<int> right_rest{1, 2, 3};
  for (auto _ : state) {
    Tuple out = left.ConcatProjected(right, right_rest);
    benchmark::DoNotOptimize(out.Hash());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_E8_TupleConcatProjected)->Iterations(200000);

// Tiny-payload consolidation: the (node, port) queues of single-change
// waves carry 1–2 entries; range(0) is the payload size, range(1) selects
// the sort path (0) or the pairwise fast path (1, the default cutoff).
void BM_E8_ConsolidateTiny(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t cutoff = state.range(1) == 0 ? 0 : kDefaultConsolidationCutoff;
  Rng rng(7);
  Delta base;
  for (size_t i = 0; i < n; ++i) {
    base.push_back({Tuple({Value::Int(static_cast<int64_t>(rng.NextBelow(4))),
                           Value::Int(static_cast<int64_t>(i))}),
                    rng.NextBool(0.5) ? 1 : -1});
  }
  Delta work;
  for (auto _ : state) {
    work = base;
    Consolidate(work, cutoff);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(cutoff == 0 ? "sort" : "fastpath");
}
BENCHMARK(BM_E8_ConsolidateTiny)
    ->ArgsProduct({{1, 2}, {0, 1}})
    ->Iterations(500000);

void BM_E8_Consolidate(benchmark::State& state) {
  // Throughput of the between-wave consolidation primitive on a delta with
  // heavy duplication (each tuple appears ~8 times with mixed signs).
  int64_t n = state.range(0);
  Rng rng(6);
  Delta base;
  base.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    base.push_back({Tuple({Value::Int(static_cast<int64_t>(
                        rng.NextBelow(static_cast<uint64_t>(n / 8 + 1))))}),
                    rng.NextBool(0.5) ? 1 : -1});
  }
  for (auto _ : state) {
    Delta work = base;
    Consolidate(work);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_E8_Consolidate)->Arg(100)->Arg(1000)->Arg(10000);

// ---- batch-size sweep through a minimal end-to-end network -----------------
//
// ◯[:A] ⋈ ◯[:B] → production, driven by graph-level batches of range(0)
// add/remove-vertex pairs; range(1) selects eager (0) or batched (1)
// propagation. Under batched propagation the inverse pairs cancel at the
// sources and the join is never probed; under eager every pair cascades.

void BM_E8_NetworkChurnSweep(benchmark::State& state) {
  int64_t batch_size = state.range(0);
  PropagationStrategy strategy = state.range(1) == 0
                                     ? PropagationStrategy::kEager
                                     : PropagationStrategy::kBatched;

  PropertyGraph graph;
  ReteNetwork network;
  Schema vs({{"v", Attribute::Kind::kVertex}});
  auto* left = network.Add(std::make_unique<VertexInputNode>(
      vs, &graph, std::vector<std::string>{"A"},
      std::vector<PropertyExtract>{}));
  network.RegisterSource(left);
  auto* right = network.Add(std::make_unique<VertexInputNode>(
      vs, &graph, std::vector<std::string>{"B"},
      std::vector<PropertyExtract>{}));
  network.RegisterSource(right);
  auto* join = network.Add(std::make_unique<JoinNode>(vs, vs, vs));
  left->AddOutput(join, 0);
  right->AddOutput(join, 1);
  auto* production = network.Add(std::make_unique<ProductionNode>(vs));
  join->AddOutput(production, 0);
  network.SetProduction(production);
  network.set_propagation(strategy);
  network.Attach(&graph);

  for (auto _ : state) {
    graph.BeginBatch();
    for (int64_t i = 0; i < batch_size; ++i) {
      VertexId v = graph.AddVertex({"A", "B"});
      (void)graph.RemoveVertex(v);
    }
    graph.CommitBatch();
  }

  state.SetItemsProcessed(state.iterations() * batch_size * 2);
  state.counters["batch"] = static_cast<double>(batch_size);
  state.counters["emitted_total"] =
      static_cast<double>(network.TotalEmittedEntries());
  state.SetLabel(PropagationStrategyName(strategy));
}
BENCHMARK(BM_E8_NetworkChurnSweep)
    ->ArgsProduct({{10, 100, 1000}, {0, 1}})
    ->Iterations(200);

}  // namespace
}  // namespace pgivm

PGIVM_BENCHMARK_MAIN();
