#include "rete/project_node.h"

namespace pgivm {

void ProjectNode::ProcessRange(const Delta& delta, size_t begin, size_t end,
                               Delta& out) {
  out.reserve(out.size() + (end - begin));
  for (size_t i = begin; i < end; ++i) {
    const DeltaEntry& entry = delta[i];
    std::vector<Value> values;
    values.reserve(columns_.size());
    for (const BoundExpression& column : columns_) {
      values.push_back(column.Eval(entry.tuple));
    }
    out.push_back({Tuple(std::move(values)), entry.multiplicity});
  }
}

void ProjectNode::OnDelta(int port, const Delta& delta) {
  (void)port;
  Delta out;
  ProcessRange(delta, 0, delta.size(), out);
  Emit(std::move(out));
}

void ProjectNode::OnDeltaMorsel(int port, const Delta& delta,
                                const uint32_t* map, uint32_t partition,
                                uint32_t partitions, Delta& out) {
  (void)port;
  (void)map;
  const size_t n = delta.size();
  ProcessRange(delta, n * partition / partitions,
               n * (partition + 1) / partitions, out);
}

}  // namespace pgivm
