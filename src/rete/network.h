#ifndef PGIVM_RETE_NETWORK_H_
#define PGIVM_RETE_NETWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "rete/input_node.h"
#include "rete/node.h"
#include "rete/production_node.h"

namespace pgivm {

/// One compiled Rete network: owns its nodes, routes graph deltas into the
/// source nodes, and exposes the production (view) root.
///
/// Lifecycle: the builder wires the nodes bottom-up; Attach() then (a) emits
/// structural initial output (key-less aggregates), (b) feeds the current
/// graph content through the source nodes, and (c) subscribes to the graph.
/// Detach() (or destruction) unsubscribes.
class ReteNetwork : public GraphListener {
 public:
  ReteNetwork() = default;
  ~ReteNetwork() override;

  ReteNetwork(const ReteNetwork&) = delete;
  ReteNetwork& operator=(const ReteNetwork&) = delete;

  /// Transfers ownership of `node` into the network; returns the raw
  /// pointer for wiring. Nodes must be added in topological (bottom-up)
  /// order — EmitInitial relies on it.
  template <typename NodeT>
  NodeT* Add(std::unique_ptr<NodeT> node) {
    NodeT* raw = node.get();
    nodes_.push_back(std::move(node));
    return raw;
  }

  void RegisterSource(GraphSourceNode* source) {
    sources_.push_back(source);
  }
  void SetProduction(ProductionNode* production) { production_ = production; }

  ProductionNode* production() const { return production_; }

  /// Starts maintaining against `graph` (see class comment).
  void Attach(PropertyGraph* graph);
  void Detach();

  // GraphListener:
  void OnGraphDelta(const GraphDelta& delta) override;

  /// Sum of all node memories.
  size_t ApproxMemoryBytes() const;

  /// Per-node memory/diagnostic summary, one node per line.
  std::string DebugString() const;

  size_t node_count() const { return nodes_.size(); }
  int64_t deltas_processed() const { return deltas_processed_; }
  int64_t changes_processed() const { return changes_processed_; }

  /// Lifetime sum of delta entries emitted by all nodes — the total
  /// propagation volume through this network (the FGN experiments' metric).
  int64_t TotalEmittedEntries() const;

 private:
  std::vector<std::unique_ptr<ReteNode>> nodes_;
  std::vector<GraphSourceNode*> sources_;
  ProductionNode* production_ = nullptr;
  PropertyGraph* attached_graph_ = nullptr;
  int64_t deltas_processed_ = 0;
  int64_t changes_processed_ = 0;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_NETWORK_H_
