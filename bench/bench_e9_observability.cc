// E9 — the observability layer's overhead contract and its profiled cost.
//
// The contract (NetworkOptions::profiling doc): with profiling *off* —
// the default — every hot path is free of clock reads, so the whole layer
// must cost under 2% on the e3 burst workload (8 standing views, 64-change
// BeginBatch/CommitBatch bursts). BM_E9_BurstLatency measures the off/on
// pair under google-benchmark timing; BM_E9_ProfilingOverhead computes the
// ratio explicitly in one process (manual timing, runtime toggle between
// halves, identical update streams) and reports it as the
// `profiling_overhead_ratio` counter, which CI's bench smoke uploads.
// Expect the *on* configuration to cost a few percent: two clock reads
// per node-wave plus histogram/trace appends at the barrier.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench_main.h"

#include "engine/query_engine.h"
#include "workload/social_network.h"

namespace pgivm {
namespace {

constexpr int kChangesPerBurst = 64;

/// The e3 standing-query deployment: joins, aggregation, filters, UNWIND,
/// a transitive pattern — every node kind the profiler instruments.
std::vector<std::string> StandingQueries() {
  return {
      "MATCH (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang "
      "RETURN p, c",
      "MATCH (m:Comm) RETURN m.lang AS lang, count(*) AS n",
      "MATCH (u:Person)-[:LIKES]->(m:Post) RETURN m AS msg, count(*) AS l",
      "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) "
      "WHERE a.country = c.country RETURN a, c",
      "MATCH (m:Post) WHERE m.length > 1000 RETURN m",
      "MATCH (u:Person) UNWIND u.speaks AS lang "
      "RETURN lang, count(*) AS speakers",
      "MATCH (c:Comm)-[:HAS_CREATOR]->(u:Person) RETURN u AS a, count(*) "
      "AS msgs",
      "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang <> c.lang "
      "RETURN p, c",
  };
}

struct BurstFixture {
  PropertyGraph graph;
  SocialNetworkGenerator generator;
  std::unique_ptr<QueryEngine> engine;
  std::vector<std::shared_ptr<View>> views;

  explicit BurstFixture(bool profiling)
      : generator([] {
          SocialNetworkConfig config;
          config.persons = 60;
          return config;
        }()) {
    generator.Populate(&graph);
    EngineOptions options;
    options.network.profiling = profiling;
    engine = std::make_unique<QueryEngine>(&graph, options);
    for (const std::string& query : StandingQueries()) {
      views.push_back(engine->Register(query).value());
    }
  }

  void ApplyBurst() {
    graph.BeginBatch();
    for (int i = 0; i < kChangesPerBurst; ++i) {
      generator.ApplyRandomUpdate(&graph);
    }
    graph.CommitBatch();
  }
};

// range(0): 0 = profiling off (the overhead-contract configuration),
// 1 = profiling on (the cost of actually observing).
void BM_E9_BurstLatency(benchmark::State& state) {
  BurstFixture fixture(state.range(0) == 1);
  for (auto _ : state) {
    fixture.ApplyBurst();
  }
  state.SetItemsProcessed(state.iterations() * kChangesPerBurst);
  int64_t rows = 0;
  for (const auto& view : fixture.views) rows += view->size();
  state.counters["total_rows"] = static_cast<double>(rows);
  state.SetLabel(state.range(0) == 1 ? "profiling_on" : "profiling_off");
}
BENCHMARK(BM_E9_BurstLatency)->Arg(0)->Arg(1)->Iterations(150);

/// The overhead numbers, computed in one process so machine noise between
/// runs cannot fake a regression: one engine, one update stream,
/// alternating off/on bursts interleaved per round to cancel graph-growth
/// drift. `off_ns_per_burst` is the <2% contract's number — it tracks the
/// instrumented-but-disabled hot path across PRs via the uploaded BENCH
/// json (the disabled checks are single relaxed bool loads, so it must sit
/// on top of the pre-observability e3 trajectory). The on/off ratio
/// (`profiling_overhead_ratio`) prices what actually observing costs.
void BM_E9_ProfilingOverhead(benchmark::State& state) {
  using Clock = std::chrono::steady_clock;
  BurstFixture fixture(false);
  // Warm both paths (first drains populate memories, first toggle
  // resolves histograms) before timing anything.
  fixture.ApplyBurst();
  fixture.engine->set_profiling(true);
  fixture.ApplyBurst();
  fixture.engine->set_profiling(false);

  int64_t off_ns = 0;
  int64_t on_ns = 0;
  int64_t bursts = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fixture.engine->set_profiling(false);
    state.ResumeTiming();
    Clock::time_point t0 = Clock::now();
    fixture.ApplyBurst();
    Clock::time_point t1 = Clock::now();
    state.PauseTiming();
    fixture.engine->set_profiling(true);
    state.ResumeTiming();
    Clock::time_point t2 = Clock::now();
    fixture.ApplyBurst();
    Clock::time_point t3 = Clock::now();
    off_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count();
    on_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(t3 - t2)
                 .count();
    ++bursts;
  }
  fixture.engine->set_profiling(false);
  state.SetItemsProcessed(state.iterations() * 2 * kChangesPerBurst);
  state.counters["off_ns_per_burst"] =
      static_cast<double>(off_ns) / static_cast<double>(bursts);
  state.counters["on_ns_per_burst"] =
      static_cast<double>(on_ns) / static_cast<double>(bursts);
  state.counters["profiling_overhead_ratio"] =
      off_ns == 0 ? 0.0
                  : static_cast<double>(on_ns) / static_cast<double>(off_ns);
}
BENCHMARK(BM_E9_ProfilingOverhead)->Iterations(150);

}  // namespace
}  // namespace pgivm

PGIVM_BENCHMARK_MAIN();
