#include "engine/query_engine.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "algebra/compiler.h"
#include "algebra/plan_printer.h"
#include "baseline/baseline_evaluator.h"
#include "cypher/parser.h"
#include "support/bounded_queue.h"
#include "support/string_util.h"

namespace pgivm {

/// Queue, thread and counters of one ingest session. The counters are
/// atomics so the owning thread can read them (ingest_mutations/batches)
/// while the ingest thread advances them.
struct QueryEngine::Ingest {
  explicit Ingest(size_t depth) : queue(depth) {}

  BoundedQueue<GraphMutation> queue;
  std::thread thread;
  std::atomic<int64_t> mutations{0};
  std::atomic<int64_t> batches{0};
};

QueryEngine::QueryEngine(PropertyGraph* graph, EngineOptions options)
    : graph_(graph),
      options_(std::move(options)),
      catalog_(ViewCatalog::Create(graph, options_.network,
                                   options_.catalog)) {}

QueryEngine::~QueryEngine() { StopIngest(); }

void QueryEngine::StartIngest() {
  if (ingest_ != nullptr) return;
  size_t depth = options_.ingest_queue_depth < 1 ? 1
                                                 : options_.ingest_queue_depth;
  ingest_ = std::make_unique<Ingest>(depth);
  Ingest* ingest = ingest_.get();
  PropertyGraph* graph = graph_;
  ingest->thread = std::thread([ingest, graph] {
    std::vector<GraphMutation> batch;
    // PopAll blocks until work arrives and hands over *everything* queued:
    // submissions that piled up while the previous batch propagated are
    // coalesced into one graph delta — one drain, one committed epoch —
    // instead of one drain each.
    while (ingest->queue.PopAll(batch) > 0) {
      graph->BeginBatch();
      for (GraphMutation& mutation : batch) mutation(*graph);
      graph->CommitBatch();
      ingest->mutations.fetch_add(static_cast<int64_t>(batch.size()),
                                  std::memory_order_relaxed);
      ingest->batches.fetch_add(1, std::memory_order_relaxed);
      batch.clear();
    }
  });
}

void QueryEngine::StopIngest() {
  if (ingest_ == nullptr) return;
  ingest_->queue.Close();  // drains what is queued, then the loop exits
  if (ingest_->thread.joinable()) ingest_->thread.join();
  ingest_mutations_done_ +=
      ingest_->mutations.load(std::memory_order_relaxed);
  ingest_batches_done_ += ingest_->batches.load(std::memory_order_relaxed);
  ingest_.reset();
}

bool QueryEngine::SubmitAsync(GraphMutation mutation) {
  if (ingest_ == nullptr || mutation == nullptr) return false;
  return ingest_->queue.Push(std::move(mutation));
}

int64_t QueryEngine::ingest_mutations() const {
  int64_t live = ingest_ == nullptr
                     ? 0
                     : ingest_->mutations.load(std::memory_order_relaxed);
  return ingest_mutations_done_ + live;
}

int64_t QueryEngine::ingest_batches() const {
  int64_t live = ingest_ == nullptr
                     ? 0
                     : ingest_->batches.load(std::memory_order_relaxed);
  return ingest_batches_done_ + live;
}

namespace {

Result<Query> ParseAndBind(std::string_view cypher,
                           const ValueMap& parameters) {
  PGIVM_ASSIGN_OR_RETURN(Query query, ParseQuery(cypher));
  PGIVM_RETURN_IF_ERROR(SubstituteQueryParameters(query, parameters));
  return query;
}

void ApplySkipLimit(std::vector<Tuple>& rows, int64_t skip, int64_t limit) {
  if (skip > 0) {
    size_t drop = std::min<size_t>(static_cast<size_t>(skip), rows.size());
    rows.erase(rows.begin(), rows.begin() + static_cast<ptrdiff_t>(drop));
  }
  if (limit >= 0 && rows.size() > static_cast<size_t>(limit)) {
    rows.resize(static_cast<size_t>(limit));
  }
}

}  // namespace

Result<std::shared_ptr<View>> QueryEngine::Register(
    std::string_view cypher, const ValueMap& parameters) {
  PGIVM_ASSIGN_OR_RETURN(Query query, ParseAndBind(cypher, parameters));
  PGIVM_ASSIGN_OR_RETURN(OpPtr gra, CompileToGra(query));
  PGIVM_ASSIGN_OR_RETURN(OpPtr fra, LowerToFra(gra, options_.plan));
  return catalog_->Install(std::string(cypher), std::move(gra),
                           std::move(fra), query.return_clause.skip,
                           query.return_clause.limit);
}

Result<std::vector<Tuple>> QueryEngine::EvaluateOnce(
    std::string_view cypher, const ValueMap& parameters) const {
  PGIVM_ASSIGN_OR_RETURN(Query query, ParseAndBind(cypher, parameters));
  PGIVM_ASSIGN_OR_RETURN(OpPtr gra, CompileToGra(query));
  PGIVM_ASSIGN_OR_RETURN(OpPtr fra, LowerToFra(gra, options_.plan));
  BaselineEvaluator evaluator(graph_);
  PGIVM_ASSIGN_OR_RETURN(Bag bag, evaluator.Evaluate(fra));
  std::vector<Tuple> rows = BaselineEvaluator::SortedRows(bag);
  ApplySkipLimit(rows, query.return_clause.skip, query.return_clause.limit);
  return rows;
}

Result<OpPtr> QueryEngine::Compile(std::string_view cypher,
                                   const ValueMap& parameters) const {
  PGIVM_ASSIGN_OR_RETURN(Query query, ParseAndBind(cypher, parameters));
  PGIVM_ASSIGN_OR_RETURN(OpPtr gra, CompileToGra(query));
  return LowerToFra(gra, options_.plan);
}

Result<std::string> QueryEngine::Explain(std::string_view cypher,
                                         const ValueMap& parameters) const {
  PGIVM_ASSIGN_OR_RETURN(Query query, ParseAndBind(cypher, parameters));
  PGIVM_ASSIGN_OR_RETURN(OpPtr gra, CompileToGra(query));
  PGIVM_ASSIGN_OR_RETURN(OpPtr fra, LowerToFra(gra, options_.plan));
  // The FRA dump carries each operator's canonical fingerprint — the key
  // the catalog's NodeRegistry shares by — so comparing two Explain
  // outputs shows exactly which sub-plans two views would share and where
  // sharing stops.
  PlanPrintOptions fra_print;
  fra_print.fingerprints = true;
  return StrCat("GRA (paper step 1):\n", PrintPlan(gra),
                "\nFRA (after steps 2-3):\n", PrintPlan(fra, fra_print));
}

}  // namespace pgivm
