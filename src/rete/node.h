#ifndef PGIVM_RETE_NODE_H_
#define PGIVM_RETE_NODE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "algebra/schema.h"
#include "rete/delta.h"
#include "support/metrics.h"

namespace pgivm {

class ReteNode;

/// How a node's queued delta may be split across morsel partitions during
/// a parallel wave (see ReteNetwork::DrainWaves and docs/ARCHITECTURE.md
/// "Partitioned delivery").
enum class MorselKind {
  /// The node must receive its whole delta in one OnDelta call (unions,
  /// productions, path sources — anything with cross-entry state that is
  /// not keyed).
  kNone,
  /// Stateless per-entry transform (filter/project/plain unnest): any
  /// contiguous chunking of the delta is valid; partition p owns the p-th
  /// equal chunk, so concatenating partition outputs in partition order
  /// reproduces the serial output order exactly.
  kChunked,
  /// Per-key state (join/semi/anti probe key, aggregate group key,
  /// distinct tuple): entries must be routed by MorselPartitionMap so that
  /// equal keys land in one partition and memory shards are written by
  /// exactly one partition.
  kKeyed,
};

/// Per-node propagation profile, populated only while the owning network's
/// profiling flag is on (NetworkOptions::profiling). Every field is a
/// relaxed atomic: written by whichever single thread processes the node
/// (the draining thread, or one pool worker during a parallel wave) and
/// readable from any thread at any time without tearing.
///
/// Semantics per propagation mode:
///  * kBatched — one RecordDelivery per wave the node participates in:
///    `input_entries` counts consolidated entries delivered across its
///    ports, `output_entries` its consolidated response, `busy_ns` the
///    node's own wall time (exclusive — downstream work is not included),
///    `last_ns` the most recent delivery's wall time (== the node's share
///    of the last drain it ran in).
///  * kEager — one RecordEagerDelivery per upstream Emit that reaches the
///    node. Depth-first recursion makes the timing *inclusive* of
///    everything downstream of the delivery; documented as such wherever
///    eager profiles are rendered.
struct NodeProfile {
  std::atomic<int64_t> activations{0};
  std::atomic<int64_t> input_entries{0};
  std::atomic<int64_t> output_entries{0};
  std::atomic<int64_t> busy_ns{0};
  std::atomic<int64_t> last_ns{0};

  void RecordDelivery(int64_t in, int64_t out, int64_t ns) {
    activations.fetch_add(1, std::memory_order_relaxed);
    input_entries.fetch_add(in, std::memory_order_relaxed);
    output_entries.fetch_add(out, std::memory_order_relaxed);
    busy_ns.fetch_add(ns, std::memory_order_relaxed);
    last_ns.store(ns, std::memory_order_relaxed);
  }

  void RecordEagerDelivery(int64_t in, int64_t ns) {
    activations.fetch_add(1, std::memory_order_relaxed);
    input_entries.fetch_add(in, std::memory_order_relaxed);
    busy_ns.fetch_add(ns, std::memory_order_relaxed);
    last_ns.store(ns, std::memory_order_relaxed);
  }

  void RecordOutput(int64_t out) {
    output_entries.fetch_add(out, std::memory_order_relaxed);
  }
};

/// Interception point for node emissions. When a sink is installed on a
/// node (batched propagation), Emit() hands the delta to the sink instead
/// of recursing into downstream OnDelta calls; the network's wave scheduler
/// buffers, consolidates and delivers it level by level.
class EmitSink {
 public:
  virtual ~EmitSink() = default;
  /// Takes the delta by value so rvalue emissions move instead of copying.
  virtual void OnEmit(ReteNode* from, Delta delta) = 0;
};

/// Base class of all Rete dataflow nodes.
///
/// A node receives bag deltas on numbered input ports (0 for unary nodes,
/// 0/1 for binary ones), updates its internal memory, and emits the derived
/// delta to its downstream subscribers. With no emit sink installed,
/// propagation is synchronous and depth-first; with a sink installed the
/// owning network schedules delivery instead. Within one network the
/// wiring forms a DAG (catalog sharing fans one node out to consumers of
/// several views); deliveries are per-(node, port) consolidated by the
/// batched scheduler, so no glitch handling is needed.
///
/// Thread-safety: a node's memories are single-writer by construction —
/// OnDelta runs either on the network's draining thread or, during a
/// parallel wave, on exactly one pool worker that has claimed the node;
/// nothing locks. Read accessors (ApproxMemoryBytes, emitted_entries,
/// ReplayOutput) are safe from the driving thread between drains.
///
/// Lifecycle: constructed bottom-up by the network builder, owned by the
/// ReteNetwork, wired via AddOutput before the network attaches or primes
/// the node (catalog registrations add nodes to live networks and prime
/// them via ReteNetwork::PrimeNewNodes). Reset() returns a node to its
/// pre-prime state; RemoveOutputsTo unsubscribes dying consumers without
/// touching this node's memories.
class ReteNode {
 public:
  explicit ReteNode(Schema schema) : schema_(std::move(schema)) {}
  virtual ~ReteNode() = default;

  ReteNode(const ReteNode&) = delete;
  ReteNode& operator=(const ReteNode&) = delete;

  /// Handles an incoming delta on `port`. The delta's tuples conform to the
  /// upstream node's schema.
  virtual void OnDelta(int port, const Delta& delta) = 0;

  /// Publishes structurally-initial output (e.g. the single row of a
  /// key-less aggregation over empty input). The network calls this once,
  /// in topological order, before feeding any graph state.
  virtual void EmitInitial() {}

  /// Clears all node memories, returning the node to its pre-Attach state
  /// so the network can be primed again (always against the same graph —
  /// graph-boundary nodes capture their graph at construction). Stateless
  /// nodes need not override.
  virtual void Reset() {}

  /// Called by the batched scheduler on the draining thread, in ready
  /// order, after this node's wave work has been flushed — the hook where
  /// work deferred out of a (possibly parallel) wave runs serially.
  /// ProductionNode uses it to fire listener notifications buffered during
  /// parallel delivery, so user listener code never runs concurrently.
  virtual void OnWaveBarrier() {}

  /// Memory replay — the incremental-priming hook. Appends this node's
  /// *current output* (the exact insert-only delta a fresh downstream
  /// consumer must receive to reach steady state) to `out` and returns
  /// true. Stateful nodes reconstruct it from their memories: an input
  /// node replays its asserted tuples, a join probes its two memories, an
  /// aggregate renders its live groups, a production replays its result
  /// bag. Stateless transforms (filter/project/union/unnest) return false
  /// without touching `out`; the network (ReteNetwork::PrimeNewNodes /
  /// ReplayOutputOf) then reconstructs their output by pulling the inputs
  /// and pushing them through OnDelta under a capturing sink (safe:
  /// stateless nodes mutate no memory).
  ///
  /// Contract: must not Emit, must not mutate any memory, and must be
  /// exact — ViewCatalog registration relies on replay-primed consumers
  /// being bit-identical to graph-primed ones (asserted by the
  /// differential harness). Entries carry positive multiplicities; order
  /// is irrelevant (the scheduler consolidates before delivery).
  virtual bool ReplayOutput(Delta& out) const {
    (void)out;
    return false;
  }

  /// How (if at all) this node's pending delta may be morsel-partitioned.
  /// Must be constant for the node's lifetime.
  virtual MorselKind morsel_kind() const { return MorselKind::kNone; }

  /// For kKeyed nodes: fills `map[i]` for i in [begin, end) with the
  /// partition owning `delta[i]` on `port`, i.e.
  /// MorselPartitionOfHash(key hash of delta[i], partitions). Pure and
  /// side-effect free — the scheduler computes maps for disjoint ranges
  /// concurrently. Default (kNone/kChunked nodes) is never called.
  virtual void MorselPartitionMap(int port, const Delta& delta,
                                  uint32_t partitions, size_t begin,
                                  size_t end, uint32_t* map) const {
    (void)port;
    (void)delta;
    (void)partitions;
    (void)begin;
    (void)end;
    (void)map;
  }

  /// Morsel delivery: processes this partition's share of `delta` on
  /// `port`, appending derived entries to `out` instead of Emit-ing (the
  /// scheduler merges partition outputs in partition order at the wave
  /// barrier). For kKeyed nodes `map` is the MorselPartitionMap result and
  /// the share is every entry with map[i] == partition; memory writes must
  /// stay within the shards this partition owns. For kChunked nodes `map`
  /// is null and the share is the `partition`-th of `partitions` equal
  /// contiguous chunks. Runs on one pool worker concurrently with the
  /// other partitions of the same node. Default (kNone) is never called.
  virtual void OnDeltaMorsel(int port, const Delta& delta,
                             const uint32_t* map, uint32_t partition,
                             uint32_t partitions, Delta& out) {
    (void)port;
    (void)delta;
    (void)map;
    (void)partition;
    (void)partitions;
    (void)out;
  }

  /// Subscribes `node` to this node's output, delivering to its `port`.
  void AddOutput(ReteNode* node, int port) {
    outputs_.emplace_back(node, port);
  }

  /// Downstream subscribers as (node, port) pairs, in subscription order.
  const std::vector<std::pair<ReteNode*, int>>& outputs() const {
    return outputs_;
  }

  /// Unsubscribes every (node, port) edge whose target is in `targets`.
  /// Used when a sharing consumer is torn down: the surviving upstream node
  /// keeps its memories and its other subscribers untouched.
  void RemoveOutputsTo(const std::unordered_set<const ReteNode*>& targets) {
    outputs_.erase(
        std::remove_if(outputs_.begin(), outputs_.end(),
                       [&targets](const std::pair<ReteNode*, int>& out) {
                         return targets.count(out.first) > 0;
                       }),
        outputs_.end());
  }

  /// Installs (or with nullptr removes) the emission interception sink.
  void set_emit_sink(EmitSink* sink) { sink_ = sink; }
  EmitSink* emit_sink() const { return sink_; }

  const Schema& schema() const { return schema_; }

  /// Bytes held by this node's memories (0 for stateless nodes).
  virtual size_t ApproxMemoryBytes() const { return 0; }

  /// Short human-readable identity for diagnostics ("Join[p]", ...).
  virtual std::string DebugString() const = 0;

  /// Static operator-kind label ("Join", "Aggregate", ...). Never
  /// allocates — safe to use in hot profiling paths and trace events.
  virtual const char* KindName() const { return "Node"; }

  /// Lifetime count of tuple-delta entries this node has emitted. Relaxed
  /// atomic: safe to read from any thread while the writer thread (or an
  /// ingest session's thread) keeps propagating.
  int64_t emitted_entries() const {
    return emitted_entries_.load(std::memory_order_relaxed);
  }

  /// The propagation profile (see NodeProfile). Counters only advance
  /// while the owning network's profiling flag is on; reads are safe from
  /// any thread.
  const NodeProfile& profile() const { return profile_; }
  NodeProfile& profile() { return profile_; }

  /// Set by the owning ReteNetwork (Attach/PrimeNewNodes/set_profiling):
  /// when on, Emit's eager fan-out records per-delivery profiles. Batched
  /// deliveries are profiled by the wave scheduler instead.
  void set_profiling(bool on) { profiling_ = on; }
  bool profiling() const { return profiling_; }

 protected:
  /// Forwards `delta` to every subscriber (no-op for empty deltas). When a
  /// sink is installed, the delta is buffered there instead and counted
  /// against emitted_entries() only after consolidation, so cancelled
  /// inverse pairs never show up in the propagation volume.
  void Emit(const Delta& delta) {
    if (delta.empty()) return;
    if (outputs_.empty()) {  // terminal node: account, skip buffering
      AddEmittedEntries(static_cast<int64_t>(delta.size()));
      if (profiling_) profile_.RecordOutput(static_cast<int64_t>(delta.size()));
      return;
    }
    if (sink_ != nullptr) {
      sink_->OnEmit(this, delta);
      return;
    }
    FanOut(delta);
  }

  /// Rvalue overload: hands the buffer to the sink without copying. Call
  /// with std::move when the delta is a dying local.
  void Emit(Delta&& delta) {
    if (delta.empty()) return;
    if (outputs_.empty()) {  // terminal node: account, skip buffering
      AddEmittedEntries(static_cast<int64_t>(delta.size()));
      if (profiling_) profile_.RecordOutput(static_cast<int64_t>(delta.size()));
      return;
    }
    if (sink_ != nullptr) {
      sink_->OnEmit(this, std::move(delta));
      return;
    }
    FanOut(delta);
  }

 private:
  friend class ReteNetwork;  // accounts consolidated emissions on flush

  void AddEmittedEntries(int64_t n) {
    emitted_entries_.fetch_add(n, std::memory_order_relaxed);
  }

  /// The eager (sink-less) fan-out: recurse into every subscriber. With
  /// profiling on, each delivery is timed around the downstream OnDelta —
  /// inclusive of everything it cascades into (see NodeProfile).
  void FanOut(const Delta& delta) {
    const int64_t entries = static_cast<int64_t>(delta.size());
    AddEmittedEntries(entries);
    if (!profiling_) {
      for (auto& [node, port] : outputs_) node->OnDelta(port, delta);
      return;
    }
    profile_.RecordOutput(entries);
    for (auto& [node, port] : outputs_) {
      const int64_t start = MonotonicNowNs();
      node->OnDelta(port, delta);
      node->profile_.RecordEagerDelivery(entries, MonotonicNowNs() - start);
    }
  }

  Schema schema_;
  std::vector<std::pair<ReteNode*, int>> outputs_;
  EmitSink* sink_ = nullptr;
  std::atomic<int64_t> emitted_entries_{0};
  NodeProfile profile_;
  bool profiling_ = false;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_NODE_H_
