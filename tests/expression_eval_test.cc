#include "rete/expression_eval.h"

#include <gtest/gtest.h>

#include "cypher/parser.h"

namespace pgivm {
namespace {

/// Parses a standalone expression by wrapping it in RETURN, then binds it
/// against a single-column schema {x} and evaluates with the given value.
Value EvalWith(const std::string& expr_text, Value x,
               const PropertyGraph* graph = nullptr) {
  Result<Query> query = ParseQuery("RETURN " + expr_text);
  EXPECT_TRUE(query.ok()) << query.status();
  Schema schema({{"x", Attribute::Kind::kValue}});
  Result<BoundExpression> bound = BoundExpression::Bind(
      query.value().return_clause.items[0].expr, schema, graph);
  EXPECT_TRUE(bound.ok()) << bound.status();
  return bound.value().Eval(Tuple({std::move(x)}));
}

Value Eval(const std::string& expr_text) {
  return EvalWith(expr_text, Value::Null());
}

TEST(ExpressionEvalTest, Arithmetic) {
  EXPECT_EQ(Eval("1 + 2 * 3"), Value::Int(7));
  EXPECT_EQ(Eval("(1 + 2) * 3"), Value::Int(9));
  EXPECT_EQ(Eval("7 / 2"), Value::Int(3));       // Integer division.
  EXPECT_EQ(Eval("7.0 / 2"), Value::Double(3.5));
  EXPECT_EQ(Eval("7 % 3"), Value::Int(1));
  EXPECT_EQ(Eval("-5"), Value::Int(-5));
  EXPECT_TRUE(Eval("1 / 0").is_null());  // No exceptions: null.
}

TEST(ExpressionEvalTest, StringAndListConcatenation) {
  EXPECT_EQ(Eval("'a' + 'b'"), Value::String("ab"));
  EXPECT_EQ(Eval("[1] + [2, 3]"),
            Value::List({Value::Int(1), Value::Int(2), Value::Int(3)}));
}

TEST(ExpressionEvalTest, Comparisons) {
  EXPECT_EQ(Eval("1 < 2"), Value::Bool(true));
  EXPECT_EQ(Eval("2 <= 2"), Value::Bool(true));
  EXPECT_EQ(Eval("1 = 1.0"), Value::Bool(true));
  EXPECT_EQ(Eval("1 <> 2"), Value::Bool(true));
  EXPECT_EQ(Eval("'a' < 'b'"), Value::Bool(true));
  // Cross-class equality is false, ordering is null.
  EXPECT_EQ(Eval("1 = 'a'"), Value::Bool(false));
  EXPECT_TRUE(Eval("1 < 'a'").is_null());
}

TEST(ExpressionEvalTest, NullPropagation) {
  EXPECT_TRUE(Eval("null + 1").is_null());
  EXPECT_TRUE(Eval("null = null").is_null());
  EXPECT_TRUE(Eval("null < 1").is_null());
  EXPECT_EQ(Eval("null IS NULL"), Value::Bool(true));
  EXPECT_EQ(Eval("1 IS NOT NULL"), Value::Bool(true));
}

TEST(ExpressionEvalTest, ThreeValuedLogic) {
  EXPECT_EQ(Eval("false AND null"), Value::Bool(false));
  EXPECT_TRUE(Eval("true AND null").is_null());
  EXPECT_EQ(Eval("true OR null"), Value::Bool(true));
  EXPECT_TRUE(Eval("false OR null").is_null());
  EXPECT_TRUE(Eval("null XOR true").is_null());
  EXPECT_EQ(Eval("true XOR false"), Value::Bool(true));
  EXPECT_EQ(Eval("NOT false"), Value::Bool(true));
  EXPECT_TRUE(Eval("NOT null").is_null());
}

TEST(ExpressionEvalTest, InOperator) {
  EXPECT_EQ(Eval("2 IN [1, 2, 3]"), Value::Bool(true));
  EXPECT_EQ(Eval("5 IN [1, 2, 3]"), Value::Bool(false));
  EXPECT_TRUE(Eval("5 IN [1, null]").is_null());  // Unknown membership.
  EXPECT_TRUE(Eval("null IN [1]").is_null());
}

TEST(ExpressionEvalTest, StringPredicates) {
  EXPECT_EQ(Eval("'hello' STARTS WITH 'he'"), Value::Bool(true));
  EXPECT_EQ(Eval("'hello' ENDS WITH 'lo'"), Value::Bool(true));
  EXPECT_EQ(Eval("'hello' CONTAINS 'ell'"), Value::Bool(true));
  EXPECT_EQ(Eval("'hello' CONTAINS 'xyz'"), Value::Bool(false));
  EXPECT_TRUE(Eval("1 CONTAINS 'x'").is_null());
}

TEST(ExpressionEvalTest, Subscripts) {
  EXPECT_EQ(Eval("[10, 20, 30][1]"), Value::Int(20));
  EXPECT_EQ(Eval("[10, 20, 30][-1]"), Value::Int(30));
  EXPECT_TRUE(Eval("[10][5]").is_null());
  EXPECT_EQ(Eval("{a: 1}['a']"), Value::Int(1));
  EXPECT_TRUE(Eval("{a: 1}['b']").is_null());
}

TEST(ExpressionEvalTest, MapPropertyAccess) {
  EXPECT_EQ(Eval("{a: 1}.a"), Value::Int(1));
  EXPECT_TRUE(Eval("{a: 1}.b").is_null());
}

TEST(ExpressionEvalTest, ListAndSizeFunctions) {
  EXPECT_EQ(Eval("size([1, 2, 3])"), Value::Int(3));
  EXPECT_EQ(Eval("size('abc')"), Value::Int(3));
  EXPECT_EQ(Eval("size({a: 1})"), Value::Int(1));
  EXPECT_EQ(Eval("head([7, 8])"), Value::Int(7));
  EXPECT_EQ(Eval("last([7, 8])"), Value::Int(8));
  EXPECT_TRUE(Eval("head([])").is_null());
  EXPECT_EQ(Eval("coalesce(null, null, 3)"), Value::Int(3));
  EXPECT_EQ(Eval("abs(-4)"), Value::Int(4));
  EXPECT_EQ(Eval("toString(12)"), Value::String("12"));
  EXPECT_EQ(Eval("toLower('AbC')"), Value::String("abc"));
  EXPECT_EQ(Eval("toUpper('AbC')"), Value::String("ABC"));
  EXPECT_EQ(Eval("keys({b: 1, a: 2})"),
            Value::List({Value::String("a"), Value::String("b")}));
}

TEST(ExpressionEvalTest, VariableBinding) {
  EXPECT_EQ(EvalWith("x + 1", Value::Int(41)), Value::Int(42));
}

TEST(ExpressionEvalTest, UnboundVariableFailsAtBind) {
  Result<Query> query = ParseQuery("RETURN y");
  ASSERT_TRUE(query.ok());
  Schema schema({{"x", Attribute::Kind::kValue}});
  Result<BoundExpression> bound = BoundExpression::Bind(
      query.value().return_clause.items[0].expr, schema);
  EXPECT_FALSE(bound.ok());
}

TEST(ExpressionEvalTest, PathFunctions) {
  Value path = Value::MakePath(Path({1, 2, 3}, {10, 11}));
  EXPECT_EQ(EvalWith("length(x)", path), Value::Int(2));
  EXPECT_EQ(EvalWith("nodes(x)", path),
            Value::List({Value::Vertex(1), Value::Vertex(2),
                         Value::Vertex(3)}));
  EXPECT_EQ(EvalWith("relationships(x)", path),
            Value::List({Value::Edge(10), Value::Edge(11)}));
}

TEST(ExpressionEvalTest, IdFunction) {
  EXPECT_EQ(EvalWith("id(x)", Value::Vertex(5)), Value::Int(5));
  EXPECT_EQ(EvalWith("id(x)", Value::Edge(6)), Value::Int(6));
  EXPECT_TRUE(EvalWith("id(x)", Value::Int(1)).is_null());
}

TEST(ExpressionEvalTest, GraphFunctionsNeedGraph) {
  PropertyGraph graph;
  VertexId v = graph.AddVertex({"Person"}, {{"name", Value::String("ada")}});
  // Without a graph, these evaluate to null (rete networks never need them
  // thanks to pushdown)...
  EXPECT_TRUE(EvalWith("labels(x)", Value::Vertex(v)).is_null());
  EXPECT_TRUE(EvalWith("x.name", Value::Vertex(v)).is_null());
  // ...with a graph (baseline evaluator), they resolve.
  EXPECT_EQ(EvalWith("labels(x)", Value::Vertex(v), &graph),
            Value::List({Value::String("Person")}));
  EXPECT_EQ(EvalWith("x.name", Value::Vertex(v), &graph),
            Value::String("ada"));
  EXPECT_EQ(EvalWith("properties(x)", Value::Vertex(v), &graph),
            Value::Map({{"name", Value::String("ada")}}));
}

TEST(ExpressionEvalTest, IsTrueHelper) {
  EXPECT_TRUE(IsTrue(Value::Bool(true)));
  EXPECT_FALSE(IsTrue(Value::Bool(false)));
  EXPECT_FALSE(IsTrue(Value::Null()));
  EXPECT_FALSE(IsTrue(Value::Int(1)));
}

}  // namespace
}  // namespace pgivm
