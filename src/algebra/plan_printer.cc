#include "algebra/plan_printer.h"

#include <sstream>

#include "algebra/plan_fingerprint.h"

namespace pgivm {

namespace {

void PrintRec(const OpPtr& op, int depth, const PlanPrintOptions& options,
              std::ostringstream& os) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << op->DebugString();
  if (!op->schema.empty() || op->kind == OpKind::kUnit) {
    os << "  " << op->schema.ToString();
  }
  if (options.fingerprints) {
    os << "  " << FormatFingerprint(CanonicalPlanKey(*op));
  }
  if (options.annotate) {
    std::string note = options.annotate(*op);
    if (!note.empty()) os << "  " << note;
  }
  os << "\n";
  for (const OpPtr& child : op->children) {
    PrintRec(child, depth + 1, options, os);
  }
}

}  // namespace

std::string PrintPlan(const OpPtr& root) {
  return PrintPlan(root, PlanPrintOptions{});
}

std::string PrintPlan(const OpPtr& root, const PlanPrintOptions& options) {
  std::ostringstream os;
  PrintRec(root, 0, options, os);
  return os.str();
}

}  // namespace pgivm
