#include "catalog/node_registry.h"

namespace pgivm {

// CanonicalPlanKey lives in algebra/plan_fingerprint.cc: the canonicalize
// pass orders sub-plans and expressions by the same rendering the registry
// fingerprints with, so the two must share one implementation.

const NodeRegistry::Entry* NodeRegistry::Lookup(const std::string& key) {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

const NodeRegistry::Entry* NodeRegistry::Find(const std::string& key) const {
  auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : &it->second;
}

void NodeRegistry::Insert(const std::string& key, ReteNode* node,
                          std::vector<ReteNode*> support) {
  key_of_root_.emplace(node, key);
  by_key_[key] = Entry{node, std::move(support)};
}

void NodeRegistry::RemoveNodes(const std::vector<ReteNode*>& nodes) {
  for (const ReteNode* node : nodes) {
    auto it = key_of_root_.find(node);
    if (it == key_of_root_.end()) continue;
    by_key_.erase(it->second);
    key_of_root_.erase(it);
  }
}

void NodeRegistry::Clear() {
  by_key_.clear();
  key_of_root_.clear();
}

}  // namespace pgivm
