#include "support/repro.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "support/string_util.h"

namespace pgivm {

namespace {

/// Strict full-string integer parse, same discipline as the PGIVM_THREADS
/// override: trailing garbage and out-of-range values are errors.
bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  *out = static_cast<int64_t>(value);
  return true;
}

}  // namespace

std::string ReproSpec::Format() const {
  std::ostringstream os;
  os << "seed=" << seed << ",strategy=" << PropagationStrategyName(strategy)
     << ",threads=" << threads << ",morsel=" << (morsel ? 1 : 0)
     << ",step=" << step;
  return os.str();
}

std::string ReproSpec::EnvLine() const {
  return StrCat("PGIVM_REPRO=\"", Format(), "\"");
}

bool ReproSpec::SameCase(const ReproSpec& other) const {
  return seed == other.seed && strategy == other.strategy &&
         threads == other.threads && morsel == other.morsel;
}

Result<ReproSpec> ReproSpec::Parse(const std::string& text) {
  ReproSpec spec;
  bool have_seed = false, have_strategy = false, have_threads = false,
       have_morsel = false;
  std::stringstream stream(text);
  std::string field;
  while (std::getline(stream, field, ',')) {
    size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrCat("PGIVM_REPRO field without '=': '", field, "'"));
    }
    std::string key = field.substr(0, eq);
    std::string value = field.substr(eq + 1);
    int64_t number = 0;
    if (key == "strategy") {
      if (value == "eager") {
        spec.strategy = PropagationStrategy::kEager;
      } else if (value == "batched") {
        spec.strategy = PropagationStrategy::kBatched;
      } else {
        return Status::InvalidArgument(
            StrCat("PGIVM_REPRO unknown strategy '", value, "'"));
      }
      have_strategy = true;
      continue;
    }
    if (!ParseInt64(value, &number)) {
      return Status::InvalidArgument(
          StrCat("PGIVM_REPRO malformed number in '", field, "'"));
    }
    if (key == "seed") {
      spec.seed = static_cast<uint64_t>(number);
      have_seed = true;
    } else if (key == "threads") {
      spec.threads = static_cast<int>(number);
      have_threads = true;
    } else if (key == "morsel") {
      spec.morsel = number != 0;
      have_morsel = true;
    } else if (key == "step") {
      spec.step = number;
    } else {
      return Status::InvalidArgument(
          StrCat("PGIVM_REPRO unknown key '", key, "'"));
    }
  }
  if (!have_seed || !have_strategy || !have_threads || !have_morsel) {
    return Status::InvalidArgument(
        "PGIVM_REPRO requires seed=, strategy=, threads= and morsel=");
  }
  return spec;
}

std::optional<ReproSpec> ReproSpec::FromEnv() {
  const char* raw = std::getenv("PGIVM_REPRO");
  if (raw == nullptr) return std::nullopt;
  // Tolerate the quotes EnvLine() prints, so the recipe is copy-paste-able
  // into shells that keep them.
  std::string text(raw);
  if (text.size() >= 2 && text.front() == '"' && text.back() == '"') {
    text = text.substr(1, text.size() - 2);
  }
  Result<ReproSpec> parsed = Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "pgivm: ignoring PGIVM_REPRO: %s\n",
                 parsed.status().message().c_str());
    return std::nullopt;
  }
  return parsed.value();
}

}  // namespace pgivm
