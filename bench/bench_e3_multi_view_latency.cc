// E3 — update latency as the number of registered views grows (the
// fraud-detection / monitoring deployment model from the paper's §1:
// many standing queries, every transaction must clear them all).
//
// Expected shape: latency grows roughly linearly with the number of views
// whose patterns the update touches, and stays near-flat for views it
// cannot affect (their input nodes filter the delta out immediately).

#include <benchmark/benchmark.h>

#include "engine/query_engine.h"
#include "workload/social_network.h"

namespace pgivm {
namespace {

std::vector<std::string> ViewCatalog() {
  return {
      "MATCH (p:Post)-[:REPLY*]->(c:Comm) WHERE p.lang = c.lang "
      "RETURN p, c",
      "MATCH (m:Comm) RETURN m.lang AS lang, count(*) AS n",
      "MATCH (u:Person)-[:LIKES]->(m:Post) RETURN m AS msg, count(*) AS l",
      "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person) "
      "WHERE a.country = c.country RETURN a, c",
      "MATCH (m:Post) WHERE m.length > 1000 RETURN m",
      "MATCH (u:Person) UNWIND u.speaks AS lang "
      "RETURN lang, count(*) AS speakers",
      "MATCH (c:Comm)-[:HAS_CREATOR]->(u:Person) RETURN u AS a, count(*) "
      "AS msgs",
      "MATCH (p:Post)-[:REPLY]->(c:Comm) WHERE p.lang <> c.lang "
      "RETURN p, c",
      "MATCH (u:Person)-[:LIKES]->(m:Post)-[:REPLY]->(c:Comm) "
      "RETURN u, c",
      "MATCH (a:Person)-[:KNOWS]-(b:Person) RETURN a, count(*) AS degree",
      "MATCH (m:Comm) WHERE m.length < 50 RETURN m",
      "MATCH (p:Post) RETURN p.lang AS lang, count(*) AS posts",
      "MATCH (a:Person)-[:KNOWS]->(b:Person) WHERE a.country = b.country "
      "RETURN a, b",
      "MATCH (c:Comm) WHERE c.lang IN ['en', 'de'] RETURN c",
      "MATCH (u:Person)-[:LIKES]->(m:Post) WHERE m.length > 500 "
      "RETURN u, m",
      "MATCH t = (p:Post)-[:REPLY*1..3]->(c:Comm) RETURN p, t",
  };
}

void BM_E3_UpdateWithViews(benchmark::State& state) {
  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 60;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);
  std::vector<std::shared_ptr<View>> views;
  std::vector<std::string> catalog = ViewCatalog();
  for (int64_t i = 0; i < state.range(0); ++i) {
    views.push_back(
        engine.Register(catalog[static_cast<size_t>(i) % catalog.size()])
            .value());
  }
  for (auto _ : state) {
    generator.ApplyRandomUpdate(&graph);
  }
  int64_t total_rows = 0;
  for (const auto& view : views) total_rows += view->size();
  state.counters["views"] = static_cast<double>(views.size());
  state.counters["total_rows"] = static_cast<double>(total_rows);
}
BENCHMARK(BM_E3_UpdateWithViews)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Iterations(300);

// ---- batch-size sweep across a fixed view catalog --------------------------
//
// Fixed 8-view deployment; updates arrive as bursts of range(0) changes and
// range(1) picks the propagation strategy (0 = eager, 1 = batched). This is
// the monitoring scenario where transactions are ingested in bulk: batched
// propagation translates each burst once per network instead of cascading
// per change.

void BM_E3_BatchSweep(benchmark::State& state) {
  int64_t batch_size = state.range(0);
  PropagationStrategy strategy = state.range(1) == 0
                                     ? PropagationStrategy::kEager
                                     : PropagationStrategy::kBatched;

  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 60;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  EngineOptions options;
  options.network.propagation = strategy;
  QueryEngine engine(&graph, options);
  std::vector<std::shared_ptr<View>> views;
  std::vector<std::string> catalog = ViewCatalog();
  for (size_t i = 0; i < 8; ++i) {
    views.push_back(engine.Register(catalog[i]).value());
  }

  for (auto _ : state) {
    graph.BeginBatch();
    for (int64_t i = 0; i < batch_size; ++i) {
      generator.ApplyRandomUpdate(&graph);
    }
    graph.CommitBatch();
  }

  int64_t emitted = 0;
  for (const auto& view : views) {
    emitted += view->network().TotalEmittedEntries();
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
  state.counters["batch"] = static_cast<double>(batch_size);
  state.counters["emitted_total"] = static_cast<double>(emitted);
  state.SetLabel(PropagationStrategyName(strategy));
}
BENCHMARK(BM_E3_BatchSweep)
    ->ArgsProduct({{1, 16, 128, 1024}, {0, 1}})
    ->Iterations(20);

}  // namespace
}  // namespace pgivm

BENCHMARK_MAIN();
