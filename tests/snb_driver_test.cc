// SNB interactive driver: stream determinism, timed-mode reporting,
// validation-mode bit-parity across engine shapes, the PGIVM_REPRO replay
// recipe, and the generator determinism lock the validation contract
// stands on.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <thread>

#include "graph/graph_stats.h"
#include "scoped_threads_env.h"
#include "workload/snb_driver.h"

namespace pgivm {
namespace {

SnbDriverConfig SmallConfig() {
  SnbDriverConfig config;
  config.scale_factor = 0.02;
  config.seed = 42;
  config.operations = 200;
  return config;
}

// ---- operation stream ------------------------------------------------------

TEST(SnbStreamTest, DeterministicForSameConfig) {
  SnbDriver a(SmallConfig());
  SnbDriver b(SmallConfig());
  ASSERT_EQ(a.stream().size(), b.stream().size());
  for (size_t i = 0; i < a.stream().size(); ++i) {
    EXPECT_EQ(a.stream()[i].op_class, b.stream()[i].op_class);
    EXPECT_EQ(a.stream()[i].seed, b.stream()[i].seed);
  }
}

TEST(SnbStreamTest, SeedChangesStream) {
  SnbDriverConfig other = SmallConfig();
  other.seed = 43;
  SnbDriver a(SmallConfig());
  SnbDriver b(other);
  bool differs = false;
  for (size_t i = 0; i < a.stream().size() && !differs; ++i) {
    differs = a.stream()[i].seed != b.stream()[i].seed;
  }
  EXPECT_TRUE(differs);
}

TEST(SnbStreamTest, MixFollowsWeights) {
  SnbDriverConfig config = SmallConfig();
  config.operations = 4000;
  SnbDriver driver(config);
  int64_t counts[3] = {0, 0, 0};
  for (const SnbOp& op : driver.stream()) {
    ++counts[static_cast<int>(op.op_class)];
  }
  const double total = static_cast<double>(config.operations);
  // Defaults are 10/55/35; a 4000-op stream should land within a few
  // points of the expectation.
  EXPECT_NEAR(static_cast<double>(counts[0]) / total, 0.10, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[1]) / total, 0.55, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[2]) / total, 0.35, 0.03);
}

TEST(SnbStreamTest, PureReadMixNeedsNoUpdates) {
  SnbDriverConfig config = SmallConfig();
  config.update_weight = 0;
  config.complex_read_weight = 1;
  config.short_read_weight = 1;
  SnbDriver driver(config);
  for (const SnbOp& op : driver.stream()) {
    EXPECT_NE(op.op_class, SnbOpClass::kUpdate);
  }
}

TEST(SnbStreamTest, OpClassNames) {
  EXPECT_STREQ(SnbOpClassName(SnbOpClass::kComplexRead), "complex_read");
  EXPECT_STREQ(SnbOpClassName(SnbOpClass::kShortRead), "short_read");
  EXPECT_STREQ(SnbOpClassName(SnbOpClass::kUpdate), "update");
}

// ---- scale factors ---------------------------------------------------------

TEST(SnbScaleTest, AtScaleGrowsMonotonically) {
  SocialNetworkConfig sf01 = SocialNetworkConfig::AtScale(0.1);
  SocialNetworkConfig sf1 = SocialNetworkConfig::AtScale(1.0);
  SocialNetworkConfig sf4 = SocialNetworkConfig::AtScale(4.0);
  EXPECT_EQ(sf01.persons, 100);
  EXPECT_EQ(sf1.persons, 1000);
  EXPECT_EQ(sf4.persons, 4000);
  EXPECT_LE(sf01.knows_per_person, sf1.knows_per_person);
  EXPECT_LE(sf1.knows_per_person, sf4.knows_per_person);
  EXPECT_LE(sf01.comments_per_post, sf4.comments_per_post);
  EXPECT_LE(sf01.max_reply_depth, sf4.max_reply_depth);
  EXPECT_DOUBLE_EQ(sf4.scale_factor, 4.0);
}

TEST(SnbScaleTest, AtScaleFloorsTinyFactors) {
  EXPECT_GE(SocialNetworkConfig::AtScale(0.0).persons, 10);
  EXPECT_GE(SocialNetworkConfig::AtScale(0.001).persons, 10);
}

TEST(SnbScaleTest, GraphSizeTracksScaleFactor) {
  PropertyGraph small, large;
  SocialNetworkGenerator(SocialNetworkConfig::AtScale(0.02)).Populate(&small);
  SocialNetworkGenerator(SocialNetworkConfig::AtScale(0.1)).Populate(&large);
  EXPECT_GT(large.vertex_count(), small.vertex_count());
  EXPECT_GT(large.edge_count(), small.edge_count());
}

// ---- generator determinism lock (the validation contract) ------------------

TEST(SnbDeterminismTest, PopulatePlusUpdatesFingerprintIsStable) {
  // Same seed, same op-seed sequence => bit-identical graph, across
  // independent generator instances and regardless of engine thread
  // settings (the generator never looks at them — but make the claim
  // explicit by varying PGIVM_THREADS, which engines read, around it).
  auto build = [](const char* threads_env) {
    ScopedThreadsEnv env(threads_env);
    PropertyGraph graph;
    SocialNetworkGenerator generator(SocialNetworkConfig::AtScale(0.02, 7));
    generator.Populate(&graph);
    Rng op_seeds(99);
    for (int k = 0; k < 50; ++k) {
      generator.ApplyUpdate(&graph, op_seeds.Next());
    }
    return GraphFingerprint(graph);
  };
  const uint64_t base = build(nullptr);
  EXPECT_EQ(build(nullptr), base);
  EXPECT_EQ(build("1"), base);
  EXPECT_EQ(build("8"), base);
}

TEST(SnbDeterminismTest, IndexScanOrderIsCanonicalAcrossStorageModes) {
  // Regression: VerticesWithLabel/EdgesWithType used to iterate hash
  // buckets, so scan order depended on process-specific hashing. The
  // indexes are sorted posting lists now: order is ascending by id — a
  // pure function of the mutation stream — and therefore identical
  // across independently built graphs, runs, processes, and storage
  // layouts. Built twice per mode (typed and row) to lock all of that.
  auto build = [](bool typed) {
    StorageOptions storage;
    storage.typed_columns = typed;
    auto graph = std::make_unique<PropertyGraph>(storage);
    SocialNetworkGenerator generator(SocialNetworkConfig::AtScale(0.02, 7));
    generator.Populate(graph.get());
    Rng op_seeds(99);
    for (int k = 0; k < 50; ++k) {
      generator.ApplyUpdate(graph.get(), op_seeds.Next());
    }
    return graph;
  };
  std::unique_ptr<PropertyGraph> typed = build(true);
  std::unique_ptr<PropertyGraph> typed_again = build(true);
  std::unique_ptr<PropertyGraph> row = build(false);
  for (const char* label : {"Person", "Post", "Comm"}) {
    std::vector<VertexId> scan = typed->VerticesWithLabel(label);
    EXPECT_FALSE(scan.empty()) << label;
    EXPECT_TRUE(std::is_sorted(scan.begin(), scan.end())) << label;
    EXPECT_EQ(scan, typed_again->VerticesWithLabel(label)) << label;
    EXPECT_EQ(scan, row->VerticesWithLabel(label)) << label;
  }
  for (const char* type : {"KNOWS", "HAS_CREATOR", "LIKES", "REPLY"}) {
    std::vector<EdgeId> scan = typed->EdgesWithType(type);
    EXPECT_FALSE(scan.empty()) << type;
    EXPECT_TRUE(std::is_sorted(scan.begin(), scan.end())) << type;
    EXPECT_EQ(scan, typed_again->EdgesWithType(type)) << type;
    EXPECT_EQ(scan, row->EdgesWithType(type)) << type;
  }
  // Scans of never-interned names are empty, not an error.
  EXPECT_TRUE(typed->VerticesWithLabel("NoSuchLabel").empty());
  EXPECT_TRUE(typed->EdgesWithType("NO_SUCH_TYPE").empty());
}

TEST(SnbDeterminismTest, DifferentSeedsDiverge) {
  PropertyGraph a, b;
  SocialNetworkGenerator(SocialNetworkConfig::AtScale(0.02, 7)).Populate(&a);
  SocialNetworkGenerator(SocialNetworkConfig::AtScale(0.02, 8)).Populate(&b);
  EXPECT_NE(GraphFingerprint(a), GraphFingerprint(b));
}

TEST(SnbDeterminismTest, FingerprintSeesPropertyChanges) {
  PropertyGraph graph;
  VertexId v = graph.AddVertex({"Person"}, {{"name", Value::String("a")}});
  const uint64_t before = GraphFingerprint(graph);
  ASSERT_TRUE(graph.SetVertexProperty(v, "name", Value::String("b")).ok());
  EXPECT_NE(GraphFingerprint(graph), before);
}

// ---- repro spec ------------------------------------------------------------

TEST(ReproSpecTest, FormatParseRoundTrip) {
  ReproSpec spec;
  spec.seed = 1234;
  spec.strategy = PropagationStrategy::kEager;
  spec.threads = 8;
  spec.morsel = true;
  spec.step = 17;
  EXPECT_EQ(spec.Format(), "seed=1234,strategy=eager,threads=8,morsel=1,step=17");
  EXPECT_EQ(spec.EnvLine(),
            "PGIVM_REPRO=\"seed=1234,strategy=eager,threads=8,morsel=1,step=17\"");
  Result<ReproSpec> parsed = ReproSpec::Parse(spec.Format());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->seed, 1234u);
  EXPECT_EQ(parsed->strategy, PropagationStrategy::kEager);
  EXPECT_EQ(parsed->threads, 8);
  EXPECT_TRUE(parsed->morsel);
  EXPECT_EQ(parsed->step, 17);
  EXPECT_TRUE(parsed->SameCase(spec));
}

TEST(ReproSpecTest, SameCaseIgnoresStep) {
  ReproSpec a, b;
  a.seed = b.seed = 5;
  a.step = 3;
  b.step = 99;
  EXPECT_TRUE(a.SameCase(b));
  b.threads = 4;
  EXPECT_FALSE(a.SameCase(b));
}

TEST(ReproSpecTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ReproSpec::Parse("").ok());
  EXPECT_FALSE(ReproSpec::Parse("seed=1").ok());  // missing required keys
  EXPECT_FALSE(
      ReproSpec::Parse("seed=x,strategy=batched,threads=1,morsel=0").ok());
  EXPECT_FALSE(
      ReproSpec::Parse("seed=1,strategy=wild,threads=1,morsel=0").ok());
  EXPECT_FALSE(
      ReproSpec::Parse("seed=1,strategy=batched,threads=1,morsel=0,bogus=1")
          .ok());
}

TEST(ReproSpecTest, FromEnvReadsAndStripsQuotes) {
  ScopedEnvVar repro("PGIVM_REPRO",
                     "\"seed=9,strategy=batched,threads=2,morsel=1,step=-1\"");
  std::optional<ReproSpec> spec = ReproSpec::FromEnv();
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->seed, 9u);
  EXPECT_EQ(spec->threads, 2);
  EXPECT_TRUE(spec->morsel);
}

TEST(ReproSpecTest, FromEnvIgnoresMalformedValue) {
  ScopedEnvVar repro("PGIVM_REPRO", "not-a-spec");
  EXPECT_FALSE(ReproSpec::FromEnv().has_value());
}

TEST(ReproSpecTest, FromEnvAbsentIsNullopt) {
  ScopedEnvVar repro("PGIVM_REPRO", nullptr);
  EXPECT_FALSE(ReproSpec::FromEnv().has_value());
}

TEST(SnbDriverReproTest, WithReproAppliesEngineShape) {
  ReproSpec spec;
  spec.seed = 77;
  spec.strategy = PropagationStrategy::kEager;
  spec.threads = 4;
  spec.morsel = true;
  SnbDriverConfig config = SnbDriver::WithRepro(SmallConfig(), spec);
  EXPECT_EQ(config.seed, 77u);
  EXPECT_EQ(config.engine.network.propagation, PropagationStrategy::kEager);
  EXPECT_EQ(config.engine.network.executor, ExecutorKind::kParallel);
  EXPECT_EQ(config.engine.network.num_threads, 4);
  EXPECT_EQ(config.engine.network.morsel_min_node_entries, 0);
  // Round trip: the driver built from the repro'd config reports the same
  // case, so recipes are stable across replay hops.
  SnbDriver driver(config);
  EXPECT_TRUE(driver.ReproCase().SameCase(spec));
}

// ---- validation mode: bit-parity across engine shapes ----------------------

struct EngineShape {
  const char* name;
  PropagationStrategy strategy;
  bool parallel;
};

constexpr EngineShape kShapes[] = {
    {"eager", PropagationStrategy::kEager, false},
    {"batched-serial", PropagationStrategy::kBatched, false},
    {"batched-parallel", PropagationStrategy::kBatched, true},
};

TEST(SnbValidationTest, BitParityAcrossSeedsAndShapes) {
  // The acceptance gate: >= 3 seeds, each under eager, batched-serial and
  // batched-parallel execution of the engine under test, all bit-identical
  // to the serial reference. PGIVM_THREADS must not override the shapes.
  ScopedThreadsEnv pin(nullptr);
  ScopedEnvVar morsel_pin("PGIVM_MORSEL", nullptr);
  for (uint64_t seed : {11u, 22u, 33u}) {
    std::set<uint64_t> fingerprints;
    for (const EngineShape& shape : kShapes) {
      SnbDriverConfig config = SmallConfig();
      config.seed = seed;
      config.operations = 120;
      config.validate_every = 2;
      config.baseline_every = 10;
      config.engine.network.propagation = shape.strategy;
      if (shape.parallel) {
        config.engine.network.executor = ExecutorKind::kParallel;
        config.engine.network.num_threads = 4;
        config.engine.network.parallel_min_wave_entries = 0;
      }
      SnbDriver driver(config);
      Result<SnbReport> report = driver.RunValidation();
      ASSERT_TRUE(report.ok()) << "seed " << seed << " shape " << shape.name
                               << ": " << report.status().message();
      EXPECT_GT(report->parity_checks, 0) << shape.name;
      EXPECT_GT(report->update.operations, 0) << shape.name;
      fingerprints.insert(report->graph_fingerprint);
    }
    // Same seed, same stream, same order => same final graph under every
    // engine shape.
    EXPECT_EQ(fingerprints.size(), 1u) << "seed " << seed;
  }
}

TEST(SnbValidationTest, MorselForcedShapeStaysBitIdentical) {
  ScopedThreadsEnv pin(nullptr);
  ScopedEnvVar morsel_pin("PGIVM_MORSEL", nullptr);
  SnbDriverConfig config = SmallConfig();
  config.operations = 120;
  config.validate_every = 2;
  config.engine.network.executor = ExecutorKind::kParallel;
  config.engine.network.num_threads = 4;
  config.engine.network.parallel_min_wave_entries = 0;
  config.engine.network.morsel_min_node_entries = 0;  // force morsel path
  SnbDriver driver(config);
  EXPECT_TRUE(driver.ReproCase().morsel);
  Result<SnbReport> report = driver.RunValidation();
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_GT(report->parity_checks, 0);
}

TEST(SnbValidationTest, TypedAndRowStorageAreBitIdentical) {
  // The storage acceptance gate: the full validation replay (per-update
  // cross-view parity + rotating EvaluateOnce checks) passes with typed
  // columns pinned on AND pinned off, and both runs end on the same
  // string-keyed graph fingerprint with the same number of parity checks
  // — the typed layout is observably the row layout, end to end.
  ScopedThreadsEnv pin(nullptr);
  ScopedEnvVar storage_pin("PGIVM_TYPED_COLUMNS", nullptr);
  for (uint64_t seed : {11u, 33u}) {
    SnbDriverConfig config = SmallConfig();
    config.seed = seed;
    config.operations = 120;
    config.validate_every = 2;
    config.baseline_every = 10;
    config.typed_columns = true;
    Result<SnbReport> typed = SnbDriver(config).RunValidation();
    ASSERT_TRUE(typed.ok()) << "seed " << seed << " typed: "
                            << typed.status().message();
    config.typed_columns = false;
    Result<SnbReport> row = SnbDriver(config).RunValidation();
    ASSERT_TRUE(row.ok()) << "seed " << seed << " row: "
                          << row.status().message();
    EXPECT_GT(typed->parity_checks, 0);
    EXPECT_EQ(typed->parity_checks, row->parity_checks) << "seed " << seed;
    EXPECT_EQ(typed->graph_fingerprint, row->graph_fingerprint)
        << "seed " << seed;
    EXPECT_EQ(typed->update.operations, row->update.operations);
  }
}

TEST(SnbValidationTest, FingerprintStableAcrossRuns) {
  ScopedThreadsEnv pin(nullptr);
  SnbDriverConfig config = SmallConfig();
  config.operations = 80;
  SnbDriver driver(config);
  Result<SnbReport> first = driver.RunValidation();
  Result<SnbReport> second = driver.RunValidation();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->graph_fingerprint, second->graph_fingerprint);
  EXPECT_EQ(first->parity_checks, second->parity_checks);
}

TEST(SnbValidationTest, EmptyStreamIsAnError) {
  SnbDriverConfig config = SmallConfig();
  config.operations = 0;
  SnbDriver driver(config);
  EXPECT_FALSE(driver.RunValidation().ok());
  EXPECT_FALSE(driver.RunTimed().ok());
}

// ---- timed mode ------------------------------------------------------------

TEST(SnbTimedTest, ReportsPerClassLatencies) {
  ScopedThreadsEnv pin(nullptr);
  SnbDriverConfig config = SmallConfig();
  config.operations = 400;
  SnbDriver driver(config);
  Result<SnbReport> report = driver.RunTimed();
  ASSERT_TRUE(report.ok()) << report.status().message();

  // Every op of the stream is accounted to exactly one class.
  int64_t expected[3] = {0, 0, 0};
  for (const SnbOp& op : driver.stream()) {
    ++expected[static_cast<int>(op.op_class)];
  }
  EXPECT_EQ(report->complex_read.operations, expected[0]);
  EXPECT_EQ(report->short_read.operations, expected[1]);
  EXPECT_EQ(report->update.operations, expected[2]);

  // Histograms carry real samples: counts match and percentiles are
  // ordered (P50 <= P95 <= P99 <= max by construction).
  for (const SnbClassStats* stats :
       {&report->complex_read, &report->short_read, &report->update}) {
    EXPECT_EQ(stats->latency_ns.count, stats->operations);
    EXPECT_LE(stats->latency_ns.P50(), stats->latency_ns.P95());
    EXPECT_LE(stats->latency_ns.P95(), stats->latency_ns.P99());
    EXPECT_LE(stats->latency_ns.P99(),
              std::max<int64_t>(stats->latency_ns.max, 1));
  }
  EXPECT_GT(report->elapsed_ns, 0);
  EXPECT_GT(report->operations_per_second, 0.0);
  EXPECT_GT(report->ingest_batches, 0);
  EXPECT_NE(report->graph_fingerprint, 0u);

  // The rendering carries the headline numbers.
  const std::string rendered = report->ToString();
  EXPECT_NE(rendered.find("complex_read"), std::string::npos);
  EXPECT_NE(rendered.find("p99"), std::string::npos);
  EXPECT_NE(rendered.find("ops/s"), std::string::npos);
}

TEST(SnbTimedTest, ConcurrentClientsApplyTheWholeStream) {
  ScopedThreadsEnv pin(nullptr);
  SnbDriverConfig config = SmallConfig();
  config.operations = 600;
  config.client_threads = 8;
  SnbDriver driver(config);
  Result<SnbReport> report = driver.RunTimed();
  ASSERT_TRUE(report.ok()) << report.status().message();
  int64_t expected[3] = {0, 0, 0};
  for (const SnbOp& op : driver.stream()) {
    ++expected[static_cast<int>(op.op_class)];
  }
  // Round-robin dealing across 8 clients still applies every op exactly
  // once: recorded histogram counts cover the full stream.
  EXPECT_EQ(report->complex_read.operations, expected[0]);
  EXPECT_EQ(report->short_read.operations, expected[1]);
  EXPECT_EQ(report->update.operations, expected[2]);
}

TEST(SnbTimedTest, LatenciesSurfaceThroughEngineSnapshotNames) {
  ScopedThreadsEnv pin(nullptr);
  // The driver records through the engine's MetricsRegistry, so the same
  // data is visible to any monitoring client via FindHistogram — proven
  // here indirectly: a fresh driver run must produce consistent counts
  // (RunTimed itself reads them back through EngineMetricsSnapshot).
  SnbDriverConfig config = SmallConfig();
  config.operations = 100;
  SnbDriver driver(config);
  Result<SnbReport> report = driver.RunTimed();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->complex_read.operations + report->short_read.operations +
                report->update.operations,
            static_cast<int64_t>(driver.stream().size()));
}

}  // namespace
}  // namespace pgivm
