#include "engine/view.h"

#include <algorithm>

#include "catalog/view_catalog.h"

namespace pgivm {

View::~View() {
  if (catalog_) catalog_->Deregister(this);
  // An owned (unshared-mode) network detaches in its own destructor.
}

std::vector<Tuple> View::Snapshot() const {
  uint64_t version = production_->version();
  if (!snapshot_valid_ || snapshot_version_ != version) {
    std::vector<Tuple> rows = production_->SortedSnapshot();
    if (skip_ > 0) {
      size_t drop = std::min<size_t>(static_cast<size_t>(skip_), rows.size());
      rows.erase(rows.begin(), rows.begin() + static_cast<ptrdiff_t>(drop));
    }
    if (limit_ >= 0 && rows.size() > static_cast<size_t>(limit_)) {
      rows.resize(static_cast<size_t>(limit_));
    }
    snapshot_cache_ = std::move(rows);
    snapshot_version_ = version;
    snapshot_valid_ = true;
  }
  return snapshot_cache_;
}

size_t View::ApproxMemoryBytes() const {
  if (catalog_) return catalog_->ViewMemoryBytes(this);
  return network_ != nullptr ? network_->ApproxMemoryBytes() : 0;
}

}  // namespace pgivm
