#ifndef PGIVM_CATALOG_VIEW_CATALOG_H_
#define PGIVM_CATALOG_VIEW_CATALOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <atomic>

#include "catalog/node_registry.h"
#include "engine/view.h"
#include "graph/property_graph.h"
#include "rete/network_builder.h"
#include "support/metrics.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace pgivm {

struct CatalogOptions {
  /// Consult the NodeRegistry on registration so views whose FRA plans share
  /// a (alias-insensitive) structural prefix reuse the same Rete nodes and
  /// memories inside one shared network. Off = the seed behaviour — one
  /// private network per view — kept as the ablation baseline for the
  /// sharing experiments (E3).
  bool share_operator_state = true;

  /// Prime registrations into a live shared network incrementally: reused
  /// nodes replay their materialized memories into just the newly attached
  /// consumers and only registry-miss sub-plans read the graph, so
  /// registration cost is proportional to the new view's own state — never
  /// to the catalog size. Off = the PR-2 behaviour (Detach + Attach, the
  /// whole shared network re-primed from the graph on every Register),
  /// kept as the ablation baseline for BM_E3_RegisterIntoLiveCatalog.
  /// Results are bit-identical either way (differential-harness checked).
  bool incremental_priming = true;
};

/// Aggregate health of a catalog: how many nodes the registered views
/// resolve to, how many of those are multi-view shared, and the registry's
/// lifetime reuse counters.
struct CatalogStats {
  size_t views = 0;
  size_t total_nodes = 0;   // live Rete nodes across the catalog
  size_t shared_nodes = 0;  // live nodes referenced by >= 2 views
  int64_t registry_hits = 0;    // lifetime sub-plan reuses
  int64_t registry_misses = 0;  // lifetime sub-plan constructions
  size_t memory_bytes = 0;      // node memories, each node counted once
  /// Lifetime priming volume split by origin: tuples delivered by memory
  /// replay from reused nodes vs. tuples emitted by fresh source nodes
  /// reading the graph. A catalog whose registrations fully share keeps
  /// `graph_primed_entries` at the cost of the *first* registration only.
  int64_t replayed_entries = 0;
  int64_t graph_primed_entries = 0;

  double SharingRatio() const {
    return total_nodes == 0
               ? 0.0
               : static_cast<double>(shared_nodes) /
                     static_cast<double>(total_nodes);
  }

  std::string ToString() const;
};

/// Owns every view registered against one PropertyGraph and the shared Rete
/// network they are instantiated in.
///
/// With sharing enabled (the default), all views live inside a single
/// multi-production network: registration consults the NodeRegistry so
/// structurally identical sub-plans map to the same nodes, the batched wave
/// scheduler propagates once per shared node (not once per view), and
/// deregistration refcounts node usage — tearing down a view frees exactly
/// the nodes no sibling references, never disturbing survivors' memories.
///
/// Registering into a live catalog primes incrementally (see
/// CatalogOptions::incremental_priming): the registry partitions the new
/// plan into hits — live nodes that replay their materialized memories into
/// just the newly attached consumers — and misses, which are built fresh
/// and primed from the graph through their own source nodes. Existing
/// views' memories, pending deltas and listeners are untouched; listener
/// fan-out is suppressed while the new sub-network catches up, so
/// observers of existing views see no spurious deltas. `last_prime_stats`
/// reports the replayed-vs-graph-primed split of the most recent Install.
///
/// Thread-safety: the catalog's own API (Install/Deregister/Stats/...)
/// must be driven from the thread that owns the engine and applies graph
/// deltas (the wave executor parallelizes *inside* a propagation drain,
/// never across API calls). The *views* it hands out are different:
/// View::Pin/Snapshot/results/size read epoch-published immutable state
/// and are safe from any thread, concurrently with drains and even with
/// sibling registrations — see the View thread-safety contract.
///
/// Lifetime: the catalog is shared between its QueryEngine and every View
/// handed out, so views stay valid after the engine is destroyed. The graph
/// must outlive all of them (same contract as the seed's per-view
/// networks).
class ViewCatalog : public std::enable_shared_from_this<ViewCatalog> {
 public:
  static std::shared_ptr<ViewCatalog> Create(PropertyGraph* graph,
                                             NetworkOptions network_options,
                                             CatalogOptions options);

  ViewCatalog(const ViewCatalog&) = delete;
  ViewCatalog& operator=(const ViewCatalog&) = delete;

  /// Instantiates the compiled view (FRA plan `fra`, original text `query`)
  /// and attaches it to the graph, primed with the current content. Called
  /// by QueryEngine::Register, which owns the compilation pipeline.
  Result<std::shared_ptr<View>> Install(std::string query, OpPtr gra,
                                        OpPtr fra, int64_t skip,
                                        int64_t limit);

  /// Prefer QueryEngine::MetricsSnapshot(), which embeds these stats in
  /// the engine-wide picture; kept as the catalog-local view.
  CatalogStats Stats() const;

  /// Priming accounting of the most recent Install: how many tuples the
  /// new view received by memory replay vs. from fresh source nodes
  /// reading the graph (plus the fresh-node / replay-edge partition
  /// sizes). The first registration and every unshared or
  /// full-re-prime registration report zero replayed entries. Also
  /// embedded in QueryEngine::MetricsSnapshot().last_prime.
  const ReteNetwork::PrimeStats& last_prime_stats() const {
    return last_prime_;
  }

  size_t view_count() const { return entries_.size(); }
  bool sharing() const { return options_.share_operator_state; }
  bool incremental_priming() const { return options_.incremental_priming; }

  /// Bytes held by the node memories `view` references. Shared nodes are
  /// counted in full for every referencing view; see Stats().memory_bytes
  /// for the deduplicated total and MarginalMemoryBytes for the exclusive
  /// slice.
  size_t ViewMemoryBytes(const View* view) const;

  /// Bytes held by nodes only `view` references — what deregistering the
  /// view would actually free.
  size_t MarginalMemoryBytes(const View* view) const;

  /// The shared multi-view network (nullptr when sharing is disabled or no
  /// view is registered).
  const ReteNetwork* shared_network() const { return network_.get(); }

  /// Every live network the catalog's views run in: the shared network in
  /// sharing mode, or one per view without it. Writer-thread only (the
  /// entry list mutates under Install/Deregister).
  std::vector<const ReteNetwork*> Networks() const;

  /// The engine-wide metrics registry: every network this catalog creates
  /// records its propagation histograms here, and the serving path records
  /// pin latency. Counter/histogram reads are safe from any thread.
  MetricsRegistry& metrics() const { return *metrics_; }
  std::shared_ptr<MetricsRegistry> metrics_ptr() const { return metrics_; }

  /// Flips per-node/per-drain propagation profiling on every live network
  /// (and every network created later). Writer-thread only — the flag must
  /// not change mid-drain. Serving-path pin instrumentation reads the
  /// atomic flag from reader threads.
  void SetProfiling(bool on);
  bool profiling() const { return profiling_flag_.load(std::memory_order_relaxed); }
  const std::atomic<bool>* profiling_flag() const { return &profiling_flag_; }

  /// Resolves a canonical plan fingerprint to its live shared Rete node,
  /// or nullptr (unknown fingerprint, or sharing disabled). Non-counting:
  /// ExplainAnalyze uses it without skewing registry hit/miss statistics.
  const ReteNode* FindNodeByFingerprint(const std::string& key) const {
    const NodeRegistry::Entry* entry = registry_.Find(key);
    return entry == nullptr ? nullptr : entry->node;
  }

  /// Stats plus one line per registered view.
  std::string DebugString() const;

 private:
  friend class View;  // ~View deregisters itself

  struct Entry {
    View* view = nullptr;
    ReteNetwork* network = nullptr;  // shared network_ or the view's own
    ProductionNode* production = nullptr;
    std::vector<ReteNode*> nodes;  // refcounted footprint (shared mode)
  };

  ViewCatalog(PropertyGraph* graph, NetworkOptions network_options,
              CatalogOptions options)
      : graph_(graph),
        network_options_(network_options),
        options_(options),
        metrics_(std::make_shared<MetricsRegistry>()),
        profiling_flag_(network_options.profiling) {}

  void Deregister(View* view);

  /// The engine-wide worker pool, created on first use when the resolved
  /// executor is parallel and lent to every network this catalog builds
  /// (shared or per-view) — sibling networks never drain concurrently, so
  /// one pool serves the whole engine. Null under the serial executor.
  std::shared_ptr<ThreadPool> EnginePool();

  PropertyGraph* graph_;
  NetworkOptions network_options_;
  CatalogOptions options_;
  std::unique_ptr<ReteNetwork> network_;  // shared mode only
  NodeRegistry registry_;
  std::vector<Entry> entries_;
  std::unordered_map<ReteNode*, int> refcounts_;
  std::shared_ptr<ThreadPool> pool_;
  /// Shared so views can keep the serving-path histograms alive past the
  /// catalog (View holds a reference).
  std::shared_ptr<MetricsRegistry> metrics_;
  /// Runtime profiling switch. Written by SetProfiling (writer thread),
  /// read relaxed by the serving path (View::Pin, any thread).
  std::atomic<bool> profiling_flag_;
  ReteNetwork::PrimeStats last_prime_;
  int64_t replayed_entries_ = 0;      // lifetime, across Installs
  int64_t graph_primed_entries_ = 0;  // lifetime, across Installs
};

}  // namespace pgivm

#endif  // PGIVM_CATALOG_VIEW_CATALOG_H_
