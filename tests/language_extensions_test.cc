// Tests for the language extensions beyond the paper's minimal fragment:
// CASE expressions, the extended scalar function library, exists()
// pattern predicates (semi/anti-joins), and UNION queries.

#include <gtest/gtest.h>

#include "engine/query_engine.h"

namespace pgivm {
namespace {

Value Eval1(const std::string& expr) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  Result<std::vector<Tuple>> rows =
      engine.EvaluateOnce("RETURN " + expr + " AS v");
  EXPECT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows.value().size(), 1u);
  return rows.value()[0].at(0);
}

// ---- Scalar function library ----------------------------------------------

TEST(FunctionsTest, StringFunctions) {
  EXPECT_EQ(Eval1("trim('  x  ')"), Value::String("x"));
  EXPECT_EQ(Eval1("lTrim('  x')"), Value::String("x"));
  EXPECT_EQ(Eval1("rTrim('x  ')"), Value::String("x"));
  EXPECT_EQ(Eval1("replace('banana', 'an', 'o')"), Value::String("booa"));
  EXPECT_EQ(Eval1("substring('hello', 1, 3)"), Value::String("ell"));
  EXPECT_EQ(Eval1("substring('hello', 2)"), Value::String("llo"));
  EXPECT_EQ(Eval1("left('hello', 2)"), Value::String("he"));
  EXPECT_EQ(Eval1("right('hello', 2)"), Value::String("lo"));
  EXPECT_EQ(Eval1("reverse('abc')"), Value::String("cba"));
  EXPECT_EQ(Eval1("split('a,b,c', ',')"),
            Value::List({Value::String("a"), Value::String("b"),
                         Value::String("c")}));
}

TEST(FunctionsTest, NumericFunctions) {
  EXPECT_EQ(Eval1("round(2.5)"), Value::Double(3.0));
  EXPECT_EQ(Eval1("floor(2.9)"), Value::Double(2.0));
  EXPECT_EQ(Eval1("ceil(2.1)"), Value::Double(3.0));
  EXPECT_EQ(Eval1("sqrt(9)"), Value::Double(3.0));
  EXPECT_TRUE(Eval1("sqrt(-1)").is_null());
  EXPECT_EQ(Eval1("sign(-7)"), Value::Int(-1));
  EXPECT_EQ(Eval1("sign(0)"), Value::Int(0));
  EXPECT_EQ(Eval1("toInteger('42')"), Value::Int(42));
  EXPECT_TRUE(Eval1("toInteger('4x')").is_null());
  EXPECT_EQ(Eval1("toFloat('2.5')"), Value::Double(2.5));
  EXPECT_EQ(Eval1("toInteger(3.7)"), Value::Int(3));
}

TEST(FunctionsTest, ListFunctions) {
  EXPECT_EQ(Eval1("range(1, 4)"),
            Value::List({Value::Int(1), Value::Int(2), Value::Int(3),
                         Value::Int(4)}));
  EXPECT_EQ(Eval1("range(5, 1, -2)"),
            Value::List({Value::Int(5), Value::Int(3), Value::Int(1)}));
  EXPECT_TRUE(Eval1("range(1, 3, 0)").is_null());
  EXPECT_EQ(Eval1("tail([1, 2, 3])"),
            Value::List({Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(Eval1("reverse([1, 2])"),
            Value::List({Value::Int(2), Value::Int(1)}));
}

TEST(FunctionsTest, ExistsOnExpression) {
  EXPECT_EQ(Eval1("exists(1)"), Value::Bool(true));
  EXPECT_EQ(Eval1("exists(null)"), Value::Bool(false));
}

// ---- CASE expressions -------------------------------------------------------

TEST(CaseTest, GenericForm) {
  EXPECT_EQ(Eval1("CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' "
                  "ELSE 'c' END"),
            Value::String("b"));
  EXPECT_EQ(Eval1("CASE WHEN false THEN 1 END"), Value::Null());
  EXPECT_EQ(Eval1("CASE WHEN null THEN 1 ELSE 2 END"), Value::Int(2));
}

TEST(CaseTest, SimpleForm) {
  EXPECT_EQ(Eval1("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END"),
            Value::String("two"));
  EXPECT_EQ(Eval1("CASE 9 WHEN 1 THEN 'one' ELSE 'many' END"),
            Value::String("many"));
  EXPECT_EQ(Eval1("CASE null WHEN null THEN 'n' ELSE 'e' END"),
            Value::String("e"));  // null never matches (Cypher semantics)
}

TEST(CaseTest, MaintainedInView) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine
                  .Register(
                      "MATCH (s:Seg) "
                      "RETURN CASE WHEN s.len <= 0 THEN 'bad' ELSE 'ok' END "
                      "AS verdict, count(*) AS n")
                  .value();
  VertexId seg = graph.AddVertex({"Seg"}, {{"len", Value::Int(5)}});
  graph.AddVertex({"Seg"}, {{"len", Value::Int(-1)}});
  {
    std::vector<Tuple> rows = view->Snapshot();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].at(0), Value::String("bad"));
    EXPECT_EQ(rows[0].at(1), Value::Int(1));
  }
  ASSERT_TRUE(graph.SetVertexProperty(seg, "len", Value::Int(0)).ok());
  {
    std::vector<Tuple> rows = view->Snapshot();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].at(0), Value::String("bad"));
    EXPECT_EQ(rows[0].at(1), Value::Int(2));
  }
}

TEST(CaseTest, RequiresWhenBranch) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  EXPECT_FALSE(engine.Register("RETURN CASE ELSE 1 END AS v").ok());
}

// ---- List comprehensions and quantifiers ------------------------------------

TEST(ComprehensionTest, FilterAndMap) {
  EXPECT_EQ(Eval1("[x IN [1,2,3,4] WHERE x % 2 = 0 | x * 10]"),
            Value::List({Value::Int(20), Value::Int(40)}));
  EXPECT_EQ(Eval1("[x IN [1,2,3] | x + 1]"),
            Value::List({Value::Int(2), Value::Int(3), Value::Int(4)}));
  EXPECT_EQ(Eval1("[x IN [1,2,3] WHERE x > 1]"),
            Value::List({Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(Eval1("[x IN []]"), Value::List({}));
  EXPECT_TRUE(Eval1("[x IN null | x]").is_null());
}

TEST(ComprehensionTest, NestedComprehensions) {
  EXPECT_EQ(Eval1("[x IN [1,2] | [y IN [10,20] | x + y]]"),
            Value::List({Value::List({Value::Int(11), Value::Int(21)}),
                         Value::List({Value::Int(12), Value::Int(22)})}));
  // Inner variable shadows outer.
  EXPECT_EQ(Eval1("[x IN [1] | [x IN [5] | x]]"),
            Value::List({Value::List({Value::Int(5)})}));
}

TEST(ComprehensionTest, LocalVariableIsScoped) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  // `x` is not visible outside the comprehension.
  EXPECT_FALSE(engine.EvaluateOnce("RETURN [x IN [1]] AS a, x AS b").ok());
}

TEST(QuantifierTest, AnyAllNoneSingle) {
  EXPECT_EQ(Eval1("any(x IN [1, 2] WHERE x > 1)"), Value::Bool(true));
  EXPECT_EQ(Eval1("any(x IN [1, 2] WHERE x > 5)"), Value::Bool(false));
  EXPECT_EQ(Eval1("all(x IN [2, 4] WHERE x % 2 = 0)"), Value::Bool(true));
  EXPECT_EQ(Eval1("all(x IN [2, 3] WHERE x % 2 = 0)"), Value::Bool(false));
  EXPECT_EQ(Eval1("all(x IN [] WHERE false)"), Value::Bool(true));
  EXPECT_EQ(Eval1("none(x IN [1, 2] WHERE x > 5)"), Value::Bool(true));
  EXPECT_EQ(Eval1("none(x IN [1, 2] WHERE x = 2)"), Value::Bool(false));
  EXPECT_EQ(Eval1("single(x IN [1, 2, 3] WHERE x = 2)"), Value::Bool(true));
  EXPECT_EQ(Eval1("single(x IN [2, 2] WHERE x = 2)"), Value::Bool(false));
}

TEST(QuantifierTest, ThreeValuedVerdicts) {
  EXPECT_TRUE(Eval1("any(x IN [null] WHERE x > 1)").is_null());
  EXPECT_EQ(Eval1("any(x IN [null, 5] WHERE x > 1)"), Value::Bool(true));
  EXPECT_TRUE(Eval1("all(x IN [2, null] WHERE x > 1)").is_null());
  EXPECT_EQ(Eval1("all(x IN [0, null] WHERE x > 1)"), Value::Bool(false));
}

TEST(QuantifierTest, ShadowedLocalReadsElementNotVertex) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  // The local `x` shadows the pattern `x`; `x.k` reads map elements.
  auto view = engine
                  .Register("MATCH (x:A) "
                            "WHERE any(x IN x.tags WHERE x.k = 1) RETURN x")
                  .value();
  VertexId v = graph.AddVertex(
      {"A"},
      {{"tags", Value::List({Value::Map({{"k", Value::Int(2)}})})},
       {"k", Value::Int(1)}});  // Vertex-level k=1 must NOT count.
  EXPECT_EQ(view->size(), 0);
  ASSERT_TRUE(
      graph.ListAppend(v, "tags", Value::Map({{"k", Value::Int(1)}})).ok());
  EXPECT_EQ(view->size(), 1);
}

TEST(QuantifierTest, MaintainedOverCollectionProperty) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine
                  .Register(
                      "MATCH (u:Person) "
                      "WHERE any(lang IN u.speaks WHERE lang = 'en') "
                      "RETURN u")
                  .value();
  VertexId u = graph.AddVertex(
      {"Person"}, {{"speaks", Value::List({Value::String("de")})}});
  EXPECT_EQ(view->size(), 0);
  ASSERT_TRUE(graph.ListAppend(u, "speaks", Value::String("en")).ok());
  EXPECT_EQ(view->size(), 1);
  ASSERT_TRUE(
      graph.ListRemoveFirst(u, "speaks", Value::String("en")).ok());
  EXPECT_EQ(view->size(), 0);
}

// ---- exists(pattern) --------------------------------------------------------

TEST(ExistsPatternTest, PositiveExistsMaintained) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine
                  .Register(
                      "MATCH (p:Person) "
                      "WHERE exists((p)-[:LIKES]->(:Post)) RETURN p")
                  .value();
  VertexId p = graph.AddVertex({"Person"});
  VertexId post = graph.AddVertex({"Post"});
  EXPECT_EQ(view->size(), 0);

  EdgeId like = graph.AddEdge(p, post, "LIKES").value();
  EXPECT_EQ(view->size(), 1);

  // Multiplicity stays 1 regardless of how many partners exist (semijoin).
  VertexId post2 = graph.AddVertex({"Post"});
  (void)graph.AddEdge(p, post2, "LIKES").value();
  EXPECT_EQ(view->size(), 1);

  ASSERT_TRUE(graph.RemoveEdge(like).ok());
  EXPECT_EQ(view->size(), 1);  // Second like still there.
}

TEST(ExistsPatternTest, NegatedExistsMaintained) {
  // The Train Benchmark SwitchMonitored constraint in its natural form.
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine
                  .Register(
                      "MATCH (sw:Switch) "
                      "WHERE NOT exists((sw)-[:monitoredBy]->(:Sensor)) "
                      "RETURN sw")
                  .value();
  VertexId sw = graph.AddVertex({"Switch"});
  VertexId sensor = graph.AddVertex({"Sensor"});
  EXPECT_EQ(view->size(), 1);  // Unmonitored.
  EdgeId e = graph.AddEdge(sw, sensor, "monitoredBy").value();
  EXPECT_EQ(view->size(), 0);
  ASSERT_TRUE(graph.RemoveEdge(e).ok());
  EXPECT_EQ(view->size(), 1);
}

TEST(ExistsPatternTest, CombinesWithPlainConjuncts) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine
                  .Register(
                      "MATCH (p:Person) WHERE p.age >= 18 AND "
                      "exists((p)-[:OWNS]->(:Car)) RETURN p")
                  .value();
  VertexId adult = graph.AddVertex({"Person"}, {{"age", Value::Int(30)}});
  VertexId minor = graph.AddVertex({"Person"}, {{"age", Value::Int(12)}});
  VertexId car = graph.AddVertex({"Car"});
  (void)graph.AddEdge(adult, car, "OWNS").value();
  (void)graph.AddEdge(minor, car, "OWNS").value();
  EXPECT_EQ(view->size(), 1);
  EXPECT_EQ(view->Snapshot()[0].at(0), Value::Vertex(adult));
}

TEST(ExistsPatternTest, MatchesBaseline) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  const char* query =
      "MATCH (a:Person)-[:KNOWS]->(b:Person) "
      "WHERE NOT exists((b)-[:KNOWS]->(a)) RETURN a, b";
  auto view = engine.Register(query).value();
  VertexId x = graph.AddVertex({"Person"});
  VertexId y = graph.AddVertex({"Person"});
  VertexId z = graph.AddVertex({"Person"});
  (void)graph.AddEdge(x, y, "KNOWS").value();
  (void)graph.AddEdge(y, x, "KNOWS").value();  // Mutual: excluded.
  (void)graph.AddEdge(x, z, "KNOWS").value();  // One-way: included.
  EXPECT_EQ(view->Snapshot(), engine.EvaluateOnce(query).value());
  EXPECT_EQ(view->size(), 1);
}

TEST(ExistsPatternTest, RejectedOutsideMatchWhere) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  EXPECT_FALSE(
      engine.Register("MATCH (p:P) RETURN exists((p)-[:X]->()) AS e").ok());
  EXPECT_FALSE(engine
                   .Register("MATCH (p:P) WHERE exists((p)-[:X]->()) OR "
                             "p.y = 1 RETURN p")
                   .ok());
}

// ---- UNION ------------------------------------------------------------------

TEST(UnionTest, UnionAllConcatenates) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine
                  .Register("MATCH (a:A) RETURN a AS x UNION ALL "
                            "MATCH (b:B) RETURN b AS x")
                  .value();
  VertexId both = graph.AddVertex({"A", "B"});
  graph.AddVertex({"A"});
  EXPECT_EQ(view->size(), 3);  // `both` appears via both parts.
  ASSERT_TRUE(graph.RemoveVertexLabel(both, "B").ok());
  EXPECT_EQ(view->size(), 2);
}

TEST(UnionTest, PlainUnionDeduplicates) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  auto view = engine
                  .Register("MATCH (a:A) RETURN a AS x UNION "
                            "MATCH (b:B) RETURN b AS x")
                  .value();
  VertexId both = graph.AddVertex({"A", "B"});
  EXPECT_EQ(view->size(), 1);
  ASSERT_TRUE(graph.RemoveVertexLabel(both, "A").ok());
  EXPECT_EQ(view->size(), 1);
  ASSERT_TRUE(graph.RemoveVertexLabel(both, "B").ok());
  EXPECT_EQ(view->size(), 0);
}

TEST(UnionTest, ColumnMismatchRejected) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  EXPECT_FALSE(engine
                   .Register("MATCH (a:A) RETURN a AS x UNION "
                             "MATCH (b:B) RETURN b AS y")
                   .ok());
}

TEST(UnionTest, MixingUnionKindsRejected) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  EXPECT_FALSE(engine
                   .Register("MATCH (a:A) RETURN a AS x UNION "
                             "MATCH (b:B) RETURN b AS x UNION ALL "
                             "MATCH (c:C) RETURN c AS x")
                   .ok());
}

TEST(UnionTest, MatchesBaseline) {
  PropertyGraph graph;
  QueryEngine engine(&graph);
  const char* query =
      "MATCH (a:A) RETURN a AS x, 'a' AS src UNION ALL "
      "MATCH (b:B) RETURN b AS x, 'b' AS src";
  auto view = engine.Register(query).value();
  graph.AddVertex({"A"});
  graph.AddVertex({"B"});
  graph.AddVertex({"A", "B"});
  EXPECT_EQ(view->Snapshot(), engine.EvaluateOnce(query).value());
}

}  // namespace
}  // namespace pgivm
