#include "algebra/passes/pass_manager.h"

namespace pgivm {

namespace {

Status CheckNoExpand(const OpPtr& op) {
  if (op->kind == OpKind::kExpand) {
    return Status::Internal("Expand survived the expand-to-join pass");
  }
  for (const OpPtr& child : op->children) {
    PGIVM_RETURN_IF_ERROR(CheckNoExpand(child));
  }
  return Status::Ok();
}

}  // namespace

Result<OpPtr> LowerToFra(const OpPtr& gra, const PlanOptions& options) {
  // Step 2 (paper): GRA -> NRA. Expands become joins against get-edges;
  // transitive expands are already the fused transitive-join operator.
  OpPtr plan = RewriteExpandToJoin(gra);
  PGIVM_RETURN_IF_ERROR(CheckNoExpand(plan));
  PGIVM_RETURN_IF_ERROR(ComputeSchemas(plan));

  // Step 3 (paper): NRA -> FRA. Minimal schema inference pushes property
  // accesses into the leaves (or whole maps, in the ablation mode).
  if (options.property_pushdown || options.naive_property_maps) {
    PGIVM_RETURN_IF_ERROR(
        PushDownProperties(plan, options.naive_property_maps));
  }

  if (options.filter_pushdown) {
    plan = PushDownFilters(plan);
    PGIVM_RETURN_IF_ERROR(ComputeSchemas(plan));
  }

  if (options.column_pruning) {
    PruneUnusedExtracts(plan);
    PGIVM_RETURN_IF_ERROR(ComputeSchemas(plan));
  }

  if (options.narrow_unnest_outputs) {
    NarrowUnnestOutputs(plan);
    PGIVM_RETURN_IF_ERROR(ComputeSchemas(plan));
  }

  // Canonical normalization runs last, on the final FRA shape, so the
  // catalog's fingerprint registry sees one normal form per logical plan.
  if (options.canonicalize) {
    PGIVM_ASSIGN_OR_RETURN(plan, CanonicalizePlan(plan));
    PGIVM_RETURN_IF_ERROR(ComputeSchemas(plan));
  }

  return plan;
}

}  // namespace pgivm
