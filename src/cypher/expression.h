#ifndef PGIVM_CYPHER_EXPRESSION_H_
#define PGIVM_CYPHER_EXPRESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/status.h"
#include "value/value.h"

namespace pgivm {

class Expression;
/// Expressions are immutable and shared between AST, logical plans and the
/// runtime, so passes can rewrite trees without copying whole queries.
using ExprPtr = std::shared_ptr<const Expression>;

enum class ExprKind {
  kLiteral,       // constant Value
  kVariable,      // named query variable
  kColumnRef,     // resolved reference to a tuple column (post-compilation)
  kProperty,      // child[0].name — graph property or map entry access
  kUnary,         // unary_op(child[0])
  kBinary,        // binary_op(child[0], child[1])
  kFunctionCall,  // name(children...), lowercased name
  kListLiteral,   // [children...]
  kMapLiteral,    // {map_keys[i]: children[i]}
  kParameter,     // $name — substituted with a literal at registration
  kCase,          // CASE [operand] WHEN..THEN.. [ELSE ..] END; see MakeCase
  kComprehension,  // [x IN list WHERE p | e] and any/all/none/single;
                   // name = local var, map_keys[0] = mode, children =
                   // [list, where, map]
  kPatternPredicate,  // exists(pattern) — `column` indexes the clause's
                      // pattern_predicates table (compile-time only)
};

enum class UnaryOp { kNot, kMinus, kIsNull, kIsNotNull };

enum class BinaryOp {
  kAnd,
  kOr,
  kXor,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kIn,
  kStartsWith,
  kEndsWith,
  kContains,
  kSubscript,  // child[0][child[1]] — list index or map key
};

/// Immutable expression tree node of the Cypher fragment.
///
/// Construction goes through the factory functions below; fields not used by
/// a given kind keep their defaults. Structural equality and hashing are
/// provided for the property-pushdown pass (identical accesses share one
/// extracted column).
class Expression {
 public:
  ExprKind kind;
  Value literal;                    // kLiteral
  std::string name;                 // variable / property key / function name
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kAnd;
  std::vector<ExprPtr> children;
  std::vector<std::string> map_keys;  // kMapLiteral
  int column = -1;                    // kColumnRef
  bool star = false;      // count(*)
  bool distinct = false;  // aggregate with DISTINCT argument

  /// Renders the expression as (approximate) Cypher text.
  std::string ToString() const;

  /// Deep structural equality / hash, consistent with each other.
  static bool Equal(const Expression& a, const Expression& b);
  size_t Hash() const;

  /// True if this node is an aggregate function call (count/sum/min/max/
  /// avg/collect); does not recurse.
  bool IsAggregateCall() const;

  /// True if any node in the tree is an aggregate call.
  bool ContainsAggregate() const;

  /// Collects the names of all free kVariable nodes into `out` (recursive,
  /// preserves first-seen order, deduplicated).
  void CollectVariables(std::vector<std::string>& out) const;
};

// ---- Factories ------------------------------------------------------------

ExprPtr MakeLiteral(Value v);
ExprPtr MakeVariable(std::string name);
ExprPtr MakeColumnRef(int column, std::string debug_name);
ExprPtr MakeProperty(ExprPtr subject, std::string key);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeFunctionCall(std::string lowercase_name,
                         std::vector<ExprPtr> args, bool distinct = false);
ExprPtr MakeCountStar();
ExprPtr MakeListLiteral(std::vector<ExprPtr> elements);
ExprPtr MakeMapLiteral(std::vector<std::string> keys,
                       std::vector<ExprPtr> values);

/// CASE expression. With `operand` (the "simple" form) each WHEN value is
/// compared against it; without, each WHEN is a predicate. Children layout:
/// [operand?] (when, then)* [else_value?] — `star` records whether the
/// operand is present, `distinct` whether the ELSE is.
ExprPtr MakeCase(ExprPtr operand_or_null,
                 std::vector<std::pair<ExprPtr, ExprPtr>> when_then,
                 ExprPtr else_or_null);

/// exists(pattern) placeholder referencing MatchClause::pattern_predicates
/// slot `index`.
ExprPtr MakePatternPredicate(int index);

/// Query parameter `$name`.
ExprPtr MakeParameter(std::string name);

/// List comprehension / quantifier. `mode` is one of "list", "any",
/// "all", "none", "single". `where` defaults to literal true, `map`
/// (list mode only) to the local variable itself.
ExprPtr MakeComprehension(std::string mode, std::string variable,
                          ExprPtr list, ExprPtr where, ExprPtr map);

/// Replaces every kParameter node with the literal from `parameters`;
/// fails on parameters missing from the map.
Result<ExprPtr> SubstituteParameters(const ExprPtr& expr,
                                     const ValueMap& parameters);

/// Rewrites `expr` bottom-up: `fn` is applied to every node after its
/// children were rewritten and may return a replacement (or the node
/// unchanged). Returns the rewritten tree.
ExprPtr RewriteExpression(
    const ExprPtr& expr,
    const std::function<ExprPtr(const ExprPtr&)>& fn);

/// Conjunction helper: AND-combines `terms` (empty -> literal true).
ExprPtr ConjoinAll(std::vector<ExprPtr> terms);

/// Splits a predicate into its top-level AND conjuncts.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred);

const char* BinaryOpName(BinaryOp op);
const char* UnaryOpName(UnaryOp op);

}  // namespace pgivm

#endif  // PGIVM_CYPHER_EXPRESSION_H_
