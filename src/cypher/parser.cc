#include "cypher/parser.h"

#include <unordered_set>

#include "cypher/lexer.h"
#include "support/string_util.h"

namespace pgivm {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Run() {
    PGIVM_ASSIGN_OR_RETURN(Query query, ParseSingleQuery());
    while (Match(TokenKind::kUnion)) {
      bool all = Match(TokenKind::kAll);
      PGIVM_ASSIGN_OR_RETURN(Query next, ParseSingleQuery());
      if (next.return_clause.skip > 0 || next.return_clause.limit >= 0 ||
          query.return_clause.skip > 0 || query.return_clause.limit >= 0) {
        return ErrorHere("SKIP/LIMIT are not supported in UNION queries");
      }
      query.unions.emplace_back(all, std::make_shared<Query>(std::move(next)));
    }
    if (Check(TokenKind::kSemicolon)) Advance();
    if (!Check(TokenKind::kEnd)) {
      return ErrorHere(StrCat("unexpected ", Peek().ToString(),
                              " after end of query"));
    }
    return query;
  }

 private:
  Result<Query> ParseSingleQuery() {
    Query query;
    while (true) {
      if (Check(TokenKind::kMatch) || Check(TokenKind::kOptional)) {
        PGIVM_ASSIGN_OR_RETURN(MatchClause m, ParseMatch());
        query.clauses.push_back(std::move(m));
      } else if (Check(TokenKind::kUnwind)) {
        PGIVM_ASSIGN_OR_RETURN(UnwindClause u, ParseUnwind());
        query.clauses.push_back(std::move(u));
      } else if (Check(TokenKind::kWith)) {
        PGIVM_ASSIGN_OR_RETURN(WithClause w, ParseWith());
        query.clauses.push_back(std::move(w));
      } else {
        break;
      }
      if (!pending_pattern_predicates_.empty()) {
        return ErrorHere(
            "exists(pattern) is only supported in a MATCH WHERE clause");
      }
    }
    PGIVM_ASSIGN_OR_RETURN(query.return_clause, ParseReturn());
    if (!pending_pattern_predicates_.empty()) {
      return ErrorHere(
          "exists(pattern) is only supported in a MATCH WHERE clause");
    }
    return query;
  }

 private:
  // ---- Token helpers -----------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }

  Status ErrorHere(const std::string& message) const {
    const Token& t = Peek();
    return Status::InvalidArgument(
        StrCat("parse error at ", t.line, ":", t.column, ": ", message));
  }

  Status Expect(TokenKind kind) {
    if (Match(kind)) return Status::Ok();
    return ErrorHere(StrCat("expected ", TokenKindName(kind), ", found ",
                            Peek().ToString()));
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (!Check(TokenKind::kIdentifier)) {
      return ErrorHere(
          StrCat("expected ", what, ", found ", Peek().ToString()));
    }
    return Advance().text;
  }

  std::string FreshAnonVariable() {
    return StrCat("#anon", ++anon_counter_);
  }

  // ---- Clauses -----------------------------------------------------------

  Result<MatchClause> ParseMatch() {
    MatchClause clause;
    if (Match(TokenKind::kOptional)) clause.optional = true;
    PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kMatch));
    while (true) {
      PGIVM_ASSIGN_OR_RETURN(PatternPart part, ParsePatternPart());
      clause.parts.push_back(std::move(part));
      if (!Match(TokenKind::kComma)) break;
    }
    if (Match(TokenKind::kWhere)) {
      PGIVM_ASSIGN_OR_RETURN(clause.where, ParseExpression());
      clause.pattern_predicates = std::move(pending_pattern_predicates_);
      pending_pattern_predicates_.clear();
    }
    return clause;
  }

  Result<UnwindClause> ParseUnwind() {
    PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kUnwind));
    UnwindClause clause;
    PGIVM_ASSIGN_OR_RETURN(clause.expr, ParseExpression());
    PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kAs));
    PGIVM_ASSIGN_OR_RETURN(clause.alias, ExpectIdentifier("UNWIND alias"));
    return clause;
  }

  Result<WithClause> ParseWith() {
    PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kWith));
    WithClause clause;
    if (Match(TokenKind::kDistinct)) clause.distinct = true;
    PGIVM_ASSIGN_OR_RETURN(clause.items, ParseReturnItems());
    if (Match(TokenKind::kWhere)) {
      PGIVM_ASSIGN_OR_RETURN(clause.where, ParseExpression());
    }
    return clause;
  }

  Result<ReturnClause> ParseReturn() {
    if (!Check(TokenKind::kReturn)) {
      return ErrorHere(StrCat("expected RETURN, found ", Peek().ToString()));
    }
    Advance();
    ReturnClause clause;
    if (Match(TokenKind::kDistinct)) clause.distinct = true;
    PGIVM_ASSIGN_OR_RETURN(clause.items, ParseReturnItems());
    if (Match(TokenKind::kOrder)) {
      return ErrorHere(
          "ORDER BY is not incrementally maintainable (the paper's ORD "
          "restriction); sort View::Snapshot results instead");
    }
    if (Match(TokenKind::kSkip)) {
      if (!Check(TokenKind::kInteger)) {
        return ErrorHere("SKIP expects an integer literal");
      }
      clause.skip = Advance().int_value;
    }
    if (Match(TokenKind::kLimit)) {
      if (!Check(TokenKind::kInteger)) {
        return ErrorHere("LIMIT expects an integer literal");
      }
      clause.limit = Advance().int_value;
    }
    return clause;
  }

  Result<std::vector<ReturnItem>> ParseReturnItems() {
    std::vector<ReturnItem> items;
    std::unordered_set<std::string> used;
    while (true) {
      ReturnItem item;
      PGIVM_ASSIGN_OR_RETURN(item.expr, ParseExpression());
      if (Match(TokenKind::kAs)) {
        PGIVM_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
      } else {
        item.alias = item.expr->ToString();
      }
      // Column names must be unique downstream; disambiguate silently.
      std::string base = item.alias;
      for (int n = 2; used.count(item.alias) > 0; ++n) {
        item.alias = StrCat(base, "#", n);
      }
      used.insert(item.alias);
      items.push_back(std::move(item));
      if (!Match(TokenKind::kComma)) break;
    }
    return items;
  }

  // ---- Patterns ----------------------------------------------------------

  Result<PatternPart> ParsePatternPart() {
    PatternPart part;
    // `p = (...)` — lookahead for IDENT '='.
    if (Check(TokenKind::kIdentifier) && Peek(1).kind == TokenKind::kEq) {
      part.path_variable = Advance().text;
      Advance();  // '='
    }
    PGIVM_ASSIGN_OR_RETURN(part.first, ParseNodePattern());
    while (Check(TokenKind::kMinus) || Check(TokenKind::kArrowLeft)) {
      PGIVM_ASSIGN_OR_RETURN(RelPattern rel, ParseRelPattern());
      PGIVM_ASSIGN_OR_RETURN(NodePattern node, ParseNodePattern());
      part.chain.emplace_back(std::move(rel), std::move(node));
    }
    return part;
  }

  Result<NodePattern> ParseNodePattern() {
    PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    NodePattern node;
    if (Check(TokenKind::kIdentifier)) {
      node.variable = Advance().text;
    } else {
      node.variable = FreshAnonVariable();
    }
    while (Match(TokenKind::kColon)) {
      PGIVM_ASSIGN_OR_RETURN(std::string label, ExpectIdentifier("label"));
      node.labels.push_back(std::move(label));
    }
    if (Check(TokenKind::kLBrace)) {
      PGIVM_ASSIGN_OR_RETURN(node.properties, ParsePropertyMap());
    }
    PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return node;
  }

  /// Parses the relationship between two node patterns. Handles the short
  /// forms `--`, `-->`, `<--` (no bracket detail) as well as bracketed
  /// details with types, variable-length and properties.
  Result<RelPattern> ParseRelPattern() {
    RelPattern rel;
    bool left_arrow = false;
    if (Match(TokenKind::kArrowLeft)) {
      left_arrow = true;
    } else {
      PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kMinus));
    }

    if (Match(TokenKind::kLBracket)) {
      if (Check(TokenKind::kIdentifier)) {
        rel.variable = Advance().text;
      } else {
        rel.variable = FreshAnonVariable();
      }
      if (Match(TokenKind::kColon)) {
        PGIVM_ASSIGN_OR_RETURN(std::string type,
                               ExpectIdentifier("relationship type"));
        rel.types.push_back(std::move(type));
        while (Match(TokenKind::kPipe)) {
          Match(TokenKind::kColon);  // `|:T` and `|T` are both accepted
          PGIVM_ASSIGN_OR_RETURN(std::string more,
                                 ExpectIdentifier("relationship type"));
          rel.types.push_back(std::move(more));
        }
      }
      if (Match(TokenKind::kStar)) {
        rel.variable_length = true;
        rel.min_hops = 1;
        rel.max_hops = -1;
        if (Check(TokenKind::kInteger)) {
          rel.min_hops = Advance().int_value;
          rel.max_hops = rel.min_hops;  // `*n` = exactly n, unless `..`
          if (Match(TokenKind::kDotDot)) {
            rel.max_hops =
                Check(TokenKind::kInteger) ? Advance().int_value : -1;
          }
        } else if (Match(TokenKind::kDotDot)) {  // `*..m`
          rel.min_hops = 1;
          rel.max_hops =
              Check(TokenKind::kInteger) ? Advance().int_value : -1;
        }
        if (rel.max_hops >= 0 && rel.max_hops < rel.min_hops) {
          return ErrorHere("variable-length bounds are inverted (min > max)");
        }
        if (rel.min_hops < 0) {
          return ErrorHere("variable-length minimum must be >= 0");
        }
      }
      if (Check(TokenKind::kLBrace)) {
        PGIVM_ASSIGN_OR_RETURN(rel.properties, ParsePropertyMap());
        if (rel.variable_length) {
          return ErrorHere(
              "property predicates on variable-length relationships are not "
              "supported");
        }
      }
      PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    } else {
      rel.variable = FreshAnonVariable();
    }

    bool right_arrow = false;
    if (Match(TokenKind::kArrowRight)) {
      right_arrow = true;
    } else {
      PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kMinus));
    }

    if (left_arrow && right_arrow) {
      return ErrorHere("relationship pattern cannot point both ways");
    }
    rel.direction = left_arrow    ? RelPattern::Direction::kIn
                    : right_arrow ? RelPattern::Direction::kOut
                                  : RelPattern::Direction::kBoth;
    if (rel.variable_length &&
        rel.direction == RelPattern::Direction::kBoth) {
      return ErrorHere(
          "undirected variable-length relationships are not supported");
    }
    return rel;
  }

  Result<std::vector<std::pair<std::string, ExprPtr>>> ParsePropertyMap() {
    PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    std::vector<std::pair<std::string, ExprPtr>> props;
    if (!Check(TokenKind::kRBrace)) {
      while (true) {
        PGIVM_ASSIGN_OR_RETURN(std::string key,
                               ExpectIdentifier("property key"));
        PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kColon));
        PGIVM_ASSIGN_OR_RETURN(ExprPtr value, ParseExpression());
        props.emplace_back(std::move(key), std::move(value));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    return props;
  }

  // ---- Expressions -------------------------------------------------------

  Result<ExprPtr> ParseExpression() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    PGIVM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseXor());
    while (Match(TokenKind::kOr)) {
      PGIVM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseXor());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseXor() {
    PGIVM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Match(TokenKind::kXor)) {
      PGIVM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kXor, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    PGIVM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Match(TokenKind::kAnd)) {
      PGIVM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Match(TokenKind::kNot)) {
      PGIVM_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    PGIVM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive(false));
    while (true) {
      BinaryOp op;
      bool negate_rhs = false;
      if (Match(TokenKind::kEq)) {
        op = BinaryOp::kEq;
      } else if (Match(TokenKind::kNeq)) {
        op = BinaryOp::kNe;
      } else if (Match(TokenKind::kLt)) {
        op = BinaryOp::kLt;
      } else if (Match(TokenKind::kLe)) {
        op = BinaryOp::kLe;
      } else if (Match(TokenKind::kGt)) {
        op = BinaryOp::kGt;
      } else if (Match(TokenKind::kGe)) {
        op = BinaryOp::kGe;
      } else if (Check(TokenKind::kArrowLeft)) {
        // `x <-1` lexes as ARROW_LEFT; in expression position it means
        // `x < -1`: reinterpret and negate the first following factor.
        Advance();
        op = BinaryOp::kLt;
        negate_rhs = true;
      } else if (Match(TokenKind::kIn)) {
        op = BinaryOp::kIn;
      } else if (Check(TokenKind::kStarts) &&
                 Peek(1).kind == TokenKind::kWith) {
        Advance();
        Advance();
        op = BinaryOp::kStartsWith;
      } else if (Check(TokenKind::kEnds) && Peek(1).kind == TokenKind::kWith) {
        Advance();
        Advance();
        op = BinaryOp::kEndsWith;
      } else if (Match(TokenKind::kContains)) {
        op = BinaryOp::kContains;
      } else if (Check(TokenKind::kIs)) {
        Advance();
        bool negated = Match(TokenKind::kNot);
        PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kNull));
        lhs = MakeUnary(negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                        std::move(lhs));
        continue;
      } else {
        break;
      }
      PGIVM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive(negate_rhs));
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive(bool negate_first) {
    PGIVM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative(negate_first));
    while (true) {
      if (Match(TokenKind::kPlus)) {
        PGIVM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative(false));
        lhs = MakeBinary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (Match(TokenKind::kMinus)) {
        PGIVM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative(false));
        lhs = MakeBinary(BinaryOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        break;
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative(bool negate_first) {
    PGIVM_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnaryExpr());
    if (negate_first) lhs = MakeUnary(UnaryOp::kMinus, std::move(lhs));
    while (true) {
      if (Match(TokenKind::kStar)) {
        PGIVM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnaryExpr());
        lhs = MakeBinary(BinaryOp::kMul, std::move(lhs), std::move(rhs));
      } else if (Match(TokenKind::kSlash)) {
        PGIVM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnaryExpr());
        lhs = MakeBinary(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
      } else if (Match(TokenKind::kPercent)) {
        PGIVM_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnaryExpr());
        lhs = MakeBinary(BinaryOp::kMod, std::move(lhs), std::move(rhs));
      } else {
        break;
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnaryExpr() {
    if (Match(TokenKind::kMinus)) {
      PGIVM_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnaryExpr());
      return MakeUnary(UnaryOp::kMinus, std::move(operand));
    }
    if (Match(TokenKind::kPlus)) return ParseUnaryExpr();
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    PGIVM_ASSIGN_OR_RETURN(ExprPtr expr, ParsePrimary());
    while (true) {
      if (Match(TokenKind::kDot)) {
        PGIVM_ASSIGN_OR_RETURN(std::string key,
                               ExpectIdentifier("property name"));
        expr = MakeProperty(std::move(expr), std::move(key));
      } else if (Match(TokenKind::kLBracket)) {
        PGIVM_ASSIGN_OR_RETURN(ExprPtr index, ParseExpression());
        PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
        expr = MakeBinary(BinaryOp::kSubscript, std::move(expr),
                          std::move(index));
      } else {
        break;
      }
    }
    return expr;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInteger:
        Advance();
        return MakeLiteral(Value::Int(t.int_value));
      case TokenKind::kFloat:
        Advance();
        return MakeLiteral(Value::Double(t.double_value));
      case TokenKind::kString:
        Advance();
        return MakeLiteral(Value::String(t.string_value));
      case TokenKind::kTrue:
        Advance();
        return MakeLiteral(Value::Bool(true));
      case TokenKind::kFalse:
        Advance();
        return MakeLiteral(Value::Bool(false));
      case TokenKind::kNull:
        Advance();
        return MakeLiteral(Value::Null());
      case TokenKind::kLParen: {
        Advance();
        PGIVM_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpression());
        PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return inner;
      }
      case TokenKind::kLBracket: {
        Advance();
        // `[x IN list ...]` is a comprehension, not a literal.
        if (Check(TokenKind::kIdentifier) &&
            Peek(1).kind == TokenKind::kIn) {
          PGIVM_ASSIGN_OR_RETURN(ExprPtr comprehension,
                                 ParseComprehensionTail("list"));
          PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
          return comprehension;
        }
        std::vector<ExprPtr> elements;
        if (!Check(TokenKind::kRBracket)) {
          while (true) {
            PGIVM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpression());
            elements.push_back(std::move(e));
            if (!Match(TokenKind::kComma)) break;
          }
        }
        PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
        return MakeListLiteral(std::move(elements));
      }
      case TokenKind::kLBrace: {
        PGIVM_ASSIGN_OR_RETURN(auto props, ParsePropertyMap());
        std::vector<std::string> keys;
        std::vector<ExprPtr> values;
        for (auto& [k, v] : props) {
          keys.push_back(k);
          values.push_back(v);
        }
        return MakeMapLiteral(std::move(keys), std::move(values));
      }
      case TokenKind::kParameter:
        return MakeParameter(Advance().text);
      case TokenKind::kAll: {
        Advance();
        PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        PGIVM_ASSIGN_OR_RETURN(ExprPtr quantifier,
                               ParseComprehensionTail("all"));
        PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return quantifier;
      }
      case TokenKind::kCase:
        return ParseCase();
      case TokenKind::kExists: {
        Advance();
        PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        if (Check(TokenKind::kLParen)) {
          // exists((a)-[:T]->(b)): a pattern predicate, recorded in the
          // enclosing MATCH clause's side table.
          PGIVM_ASSIGN_OR_RETURN(PatternPart part, ParsePatternPart());
          if (!part.path_variable.empty()) {
            return ErrorHere("exists() patterns cannot bind a path");
          }
          PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
          int index = static_cast<int>(pending_pattern_predicates_.size());
          pending_pattern_predicates_.push_back(std::move(part));
          return MakePatternPredicate(index);
        }
        // exists(expr): property-existence test.
        PGIVM_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpression());
        PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return MakeUnary(UnaryOp::kIsNotNull, std::move(inner));
      }
      case TokenKind::kIdentifier: {
        std::string name = Advance().text;
        if (Check(TokenKind::kLParen)) {
          return ParseFunctionCall(std::move(name));
        }
        return MakeVariable(std::move(name));
      }
      default:
        return ErrorHere(
            StrCat("expected an expression, found ", Peek().ToString()));
    }
  }

  /// Parses `var IN list [WHERE pred] [| map]` (the closing bracket or
  /// parenthesis is consumed by the caller). `mode` selects list
  /// comprehension vs. any/all/none/single quantifier semantics.
  Result<ExprPtr> ParseComprehensionTail(const std::string& mode) {
    PGIVM_ASSIGN_OR_RETURN(std::string variable,
                           ExpectIdentifier("comprehension variable"));
    PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kIn));
    PGIVM_ASSIGN_OR_RETURN(ExprPtr list, ParseExpression());
    ExprPtr where;
    if (Match(TokenKind::kWhere)) {
      PGIVM_ASSIGN_OR_RETURN(where, ParseExpression());
    }
    ExprPtr map;
    if (mode == "list" && Match(TokenKind::kPipe)) {
      PGIVM_ASSIGN_OR_RETURN(map, ParseExpression());
    }
    return MakeComprehension(mode, std::move(variable), std::move(list),
                             std::move(where), std::move(map));
  }

  Result<ExprPtr> ParseCase() {
    PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kCase));
    ExprPtr operand;  // Simple-form operand, if present.
    if (!Check(TokenKind::kWhen)) {
      PGIVM_ASSIGN_OR_RETURN(operand, ParseExpression());
    }
    std::vector<std::pair<ExprPtr, ExprPtr>> when_then;
    while (Match(TokenKind::kWhen)) {
      PGIVM_ASSIGN_OR_RETURN(ExprPtr when, ParseExpression());
      PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kThen));
      PGIVM_ASSIGN_OR_RETURN(ExprPtr then, ParseExpression());
      when_then.emplace_back(std::move(when), std::move(then));
    }
    if (when_then.empty()) {
      return ErrorHere("CASE requires at least one WHEN branch");
    }
    ExprPtr else_value;
    if (Match(TokenKind::kElse)) {
      PGIVM_ASSIGN_OR_RETURN(else_value, ParseExpression());
    }
    PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kEnd_));
    return MakeCase(std::move(operand), std::move(when_then),
                    std::move(else_value));
  }

  Result<ExprPtr> ParseFunctionCall(std::string name) {
    PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    std::string lower = AsciiLower(name);
    if ((lower == "any" || lower == "none" || lower == "single") &&
        Check(TokenKind::kIdentifier) && Peek(1).kind == TokenKind::kIn) {
      PGIVM_ASSIGN_OR_RETURN(ExprPtr quantifier,
                             ParseComprehensionTail(lower));
      PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return quantifier;
    }
    if (Check(TokenKind::kStar)) {
      Advance();
      PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      if (lower != "count") {
        return ErrorHere("only count(*) accepts '*'");
      }
      return MakeCountStar();
    }
    bool distinct = Match(TokenKind::kDistinct);
    std::vector<ExprPtr> args;
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        PGIVM_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpression());
        args.push_back(std::move(arg));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    PGIVM_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return MakeFunctionCall(std::move(lower), std::move(args), distinct);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int anon_counter_ = 0;
  /// exists(pattern) occurrences collected while parsing the current WHERE;
  /// claimed by the enclosing MATCH clause.
  std::vector<PatternPart> pending_pattern_predicates_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view query) {
  PGIVM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  return Parser(std::move(tokens)).Run();
}

}  // namespace pgivm
