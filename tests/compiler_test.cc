#include "algebra/compiler.h"

#include <gtest/gtest.h>

#include "algebra/plan_printer.h"
#include "cypher/parser.h"

namespace pgivm {
namespace {

OpPtr Compile(const std::string& text) {
  Result<Query> query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status();
  Result<OpPtr> plan = CompileToGra(query.value());
  EXPECT_TRUE(plan.ok()) << plan.status();
  return plan.ok() ? plan.value() : nullptr;
}

/// Counts operators of `kind` in the tree.
int CountKind(const OpPtr& op, OpKind kind) {
  int n = op->kind == kind ? 1 : 0;
  for (const OpPtr& child : op->children) n += CountKind(child, kind);
  return n;
}

const LogicalOp* FindKind(const OpPtr& op, OpKind kind) {
  if (op->kind == kind) return op.get();
  for (const OpPtr& child : op->children) {
    if (const LogicalOp* found = FindKind(child, kind)) return found;
  }
  return nullptr;
}

TEST(CompilerTest, RootIsProduceWithReturnColumns) {
  OpPtr plan = Compile("MATCH (n:A) RETURN n AS node");
  ASSERT_TRUE(plan != nullptr);
  EXPECT_EQ(plan->kind, OpKind::kProduce);
  ASSERT_EQ(plan->schema.size(), 1u);
  EXPECT_EQ(plan->schema.at(0).name, "node");
  EXPECT_EQ(plan->schema.at(0).kind, Attribute::Kind::kVertex);
}

TEST(CompilerTest, NodePatternBecomesGetVertices) {
  OpPtr plan = Compile("MATCH (n:Person) RETURN n");
  const LogicalOp* gv = FindKind(plan, OpKind::kGetVertices);
  ASSERT_NE(gv, nullptr);
  EXPECT_EQ(gv->vertex_var, "n");
  EXPECT_EQ(gv->labels, std::vector<std::string>{"Person"});
}

TEST(CompilerTest, RelationshipBecomesExpand) {
  OpPtr plan = Compile("MATCH (a:A)-[r:T]->(b:B) RETURN r");
  const LogicalOp* expand = FindKind(plan, OpKind::kExpand);
  ASSERT_NE(expand, nullptr);
  EXPECT_EQ(expand->src_var, "a");
  EXPECT_EQ(expand->edge_var, "r");
  EXPECT_EQ(expand->dst_var, "b");
  EXPECT_FALSE(expand->variable_length);
  // Labelled target: a get-vertices join enforces :B.
  EXPECT_EQ(CountKind(plan, OpKind::kGetVertices), 2);
}

TEST(CompilerTest, VariableLengthBecomesPathJoin) {
  OpPtr plan = Compile("MATCH (a:A)-[:T*1..3]->(b:B) RETURN a, b");
  const LogicalOp* pj = FindKind(plan, OpKind::kPathJoin);
  ASSERT_NE(pj, nullptr);
  EXPECT_TRUE(pj->variable_length);
  EXPECT_EQ(pj->min_hops, 1);
  EXPECT_EQ(pj->max_hops, 3);
  // Variable-length targets always get a get-vertices leaf.
  EXPECT_EQ(CountKind(plan, OpKind::kGetVertices), 2);
}

TEST(CompilerTest, NamedPathProjectsPathConstructor) {
  OpPtr plan = Compile("MATCH t = (a:A)-[r:T]->(b) RETURN t");
  int idx = plan->schema.IndexOf("t");
  ASSERT_GE(idx, 0);
  EXPECT_EQ(plan->schema.at(static_cast<size_t>(idx)).kind,
            Attribute::Kind::kPath);
}

TEST(CompilerTest, InlinePropertiesBecomeSelections) {
  OpPtr plan = Compile("MATCH (n:A {x: 1}) RETURN n");
  const LogicalOp* sel = FindKind(plan, OpKind::kSelection);
  ASSERT_NE(sel, nullptr);
  EXPECT_NE(sel->predicate->ToString().find("n.x"), std::string::npos);
}

TEST(CompilerTest, EdgeUniquenessConstraintGenerated) {
  OpPtr plan = Compile("MATCH (a)-[r1:T]->(b)-[r2:T]->(c) RETURN a");
  const LogicalOp* sel = FindKind(plan, OpKind::kSelection);
  ASSERT_NE(sel, nullptr);
  EXPECT_NE(sel->predicate->ToString().find("r1 <> r2"), std::string::npos);
}

TEST(CompilerTest, ChainRebindingRenamesAndEquates) {
  // (a)-->(b)-->(a): the second `a` becomes a fresh column equated to `a`.
  OpPtr plan = Compile("MATCH (a)-[r1:T]->(b)-[r2:T]->(a) RETURN a");
  const LogicalOp* sel = FindKind(plan, OpKind::kSelection);
  ASSERT_NE(sel, nullptr);
  EXPECT_NE(sel->predicate->ToString().find("a#"), std::string::npos);
}

TEST(CompilerTest, ReusedRelationshipVariableRejected) {
  Result<Query> query =
      ParseQuery("MATCH (a)-[r:T]->(b)-[r:T]->(c) RETURN a");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(CompileToGra(query.value()).ok());
}

TEST(CompilerTest, WhereBecomesSelection) {
  OpPtr plan = Compile("MATCH (n:A) WHERE n.x > 5 RETURN n");
  EXPECT_GE(CountKind(plan, OpKind::kSelection), 1);
}

TEST(CompilerTest, MultiplePartsJoined) {
  OpPtr plan = Compile("MATCH (a:A), (b:B) RETURN a, b");
  EXPECT_EQ(CountKind(plan, OpKind::kJoin), 1);
}

TEST(CompilerTest, UnwindBecomesUnnest) {
  OpPtr plan = Compile("UNWIND [1,2,3] AS x RETURN x");
  const LogicalOp* unnest = FindKind(plan, OpKind::kUnnest);
  ASSERT_NE(unnest, nullptr);
  EXPECT_EQ(unnest->unnest_alias, "x");
  EXPECT_EQ(CountKind(plan, OpKind::kUnit), 1);
}

TEST(CompilerTest, AggregationSplitsKeysAndAggregates) {
  OpPtr plan = Compile("MATCH (n:A) RETURN n.x AS k, count(*) AS c");
  const LogicalOp* agg = FindKind(plan, OpKind::kAggregate);
  ASSERT_NE(agg, nullptr);
  ASSERT_EQ(agg->group_by.size(), 1u);
  EXPECT_EQ(agg->group_by[0].first, "k");
  ASSERT_EQ(agg->aggregates.size(), 1u);
  EXPECT_EQ(agg->aggregates[0].first, "c");
}

TEST(CompilerTest, MixedAggregateExpressionRejected) {
  Result<Query> query =
      ParseQuery("MATCH (n:A) RETURN count(*) + 1 AS bad");
  ASSERT_TRUE(query.ok());
  Result<OpPtr> plan = CompileToGra(query.value());
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnimplemented);
}

TEST(CompilerTest, DistinctAddsDistinctOp) {
  OpPtr plan = Compile("MATCH (n:A) RETURN DISTINCT n");
  EXPECT_EQ(CountKind(plan, OpKind::kDistinct), 1);
}

TEST(CompilerTest, OptionalMatchBecomesLeftOuterJoin) {
  OpPtr plan = Compile("MATCH (a:A) OPTIONAL MATCH (a)-[r:T]->(b) RETURN a, b");
  EXPECT_EQ(CountKind(plan, OpKind::kLeftOuterJoin), 1);
}

TEST(CompilerTest, UnboundVariableInReturnRejected) {
  Result<Query> query = ParseQuery("MATCH (a:A) RETURN b");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(CompileToGra(query.value()).ok());
}

TEST(CompilerTest, UnboundVariableInWhereRejected) {
  Result<Query> query = ParseQuery("MATCH (a:A) WHERE zz > 1 RETURN a");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(CompileToGra(query.value()).ok());
}

TEST(CompilerTest, StartNodeEndNodeRewriting) {
  OpPtr plan = Compile("MATCH (a)-[r:T]->(b) RETURN startNode(r) AS s, "
                       "endNode(r) AS e");
  // Rewritten to the pattern variables, so Produce outputs vertex columns.
  EXPECT_EQ(plan->schema.at(0).kind, Attribute::Kind::kVertex);
  EXPECT_EQ(plan->schema.at(1).kind, Attribute::Kind::kVertex);
}

TEST(CompilerTest, StartNodeOnIncomingEdgeFollowsGraphDirection) {
  OpPtr plan = Compile("MATCH (a)<-[r:T]-(b) RETURN startNode(r) AS s");
  const LogicalOp* produce = plan.get();
  EXPECT_EQ(produce->projections[0].second->ToString(), "s");
  // The produced column aliases `b` (the graph-direction source).
  const LogicalOp* proj = FindKind(plan, OpKind::kProjection);
  ASSERT_NE(proj, nullptr);
  EXPECT_EQ(proj->projections[0].second->ToString(), "b");
}

TEST(CompilerTest, WithPipelinesProjection) {
  OpPtr plan =
      Compile("MATCH (n:A) WITH n.x AS x WHERE x > 1 RETURN x AS out");
  EXPECT_GE(CountKind(plan, OpKind::kProjection), 1);
  EXPECT_GE(CountKind(plan, OpKind::kSelection), 1);
}

TEST(CompilerTest, PlanPrinterShowsTree) {
  OpPtr plan = Compile("MATCH (p:Post)-[:REPLY]->(c:Comm) RETURN p");
  std::string printed = PrintPlan(plan);
  EXPECT_NE(printed.find("Produce"), std::string::npos);
  EXPECT_NE(printed.find("GetVertices p:Post"), std::string::npos);
  EXPECT_NE(printed.find("Expand"), std::string::npos);
}

}  // namespace
}  // namespace pgivm
