#include "rete/production_node.h"

#include <algorithm>

namespace pgivm {

void ProductionNode::OnDelta(int port, const Delta& delta) {
  (void)port;
  // The batched scheduler delivers already-consolidated deltas; only
  // re-normalize the eager path's raw ones.
  Delta normalized;
  const Delta* net = &delta;
  if (!IsConsolidated(delta)) {
    normalized = Normalize(delta);
    net = &normalized;
  }
  if (net->empty()) return;
  ++version_;
  for (const DeltaEntry& entry : *net) {
    results_.Apply(entry.tuple, entry.multiplicity);
  }
  if (notify_listeners_ && !listeners_.empty()) {
    if (defer_notifications_) {
      // Mid-parallel-wave: listener code must not run on a pool worker.
      // Buffered here (single writer: one worker owns this node) and
      // flushed from OnWaveBarrier on the draining thread.
      deferred_notifications_.push_back(*net);
    } else {
      for (ViewChangeListener* listener : listeners_) {
        listener->OnViewDelta(*net);
      }
    }
  }
  Emit(*net);  // Views can be chained (used by tests).
}

void ProductionNode::OnWaveBarrier() {
  if (deferred_notifications_.empty()) return;
  for (const Delta& delta : deferred_notifications_) {
    for (ViewChangeListener* listener : listeners_) {
      listener->OnViewDelta(delta);
    }
  }
  deferred_notifications_.clear();
}

std::vector<Tuple> ProductionNode::SortedSnapshot() const {
  std::vector<Tuple> rows;
  rows.reserve(static_cast<size_t>(results_.total_count()));
  for (const auto& [tuple, count] : results_.counts()) {
    for (int64_t i = 0; i < count; ++i) rows.push_back(tuple);
  }
  std::sort(rows.begin(), rows.end(), [](const Tuple& a, const Tuple& b) {
    return Tuple::Compare(a, b) < 0;
  });
  return rows;
}

void ProductionNode::RemoveListener(ViewChangeListener* listener) {
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

}  // namespace pgivm
