#ifndef PGIVM_RETE_PROJECT_NODE_H_
#define PGIVM_RETE_PROJECT_NODE_H_

#include <vector>

#include "rete/expression_eval.h"
#include "rete/node.h"

namespace pgivm {

/// π — stateless bag projection: maps each entry through the column
/// expressions, preserving multiplicities. Distinctness, if requested by the
/// query, is a separate DistinctNode downstream.
class ProjectNode : public ReteNode {
 public:
  ProjectNode(Schema schema, std::vector<BoundExpression> columns)
      : ReteNode(std::move(schema)), columns_(std::move(columns)) {}

  void OnDelta(int port, const Delta& delta) override;

  /// Stateless per-entry: any contiguous chunking reproduces the serial
  /// output exactly when chunks are concatenated in partition order.
  MorselKind morsel_kind() const override { return MorselKind::kChunked; }
  void OnDeltaMorsel(int port, const Delta& delta, const uint32_t* map,
                     uint32_t partition, uint32_t partitions,
                     Delta& out) override;

  std::string DebugString() const override { return "Project"; }
  const char* KindName() const override { return "Project"; }

 private:
  void ProcessRange(const Delta& delta, size_t begin, size_t end, Delta& out);

  std::vector<BoundExpression> columns_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_PROJECT_NODE_H_
