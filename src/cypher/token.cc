#include "cypher/token.h"

#include "support/string_util.h"

namespace pgivm {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kParameter:
      return "parameter";
    case TokenKind::kInteger:
      return "integer literal";
    case TokenKind::kFloat:
      return "float literal";
    case TokenKind::kString:
      return "string literal";
    case TokenKind::kMatch:
      return "MATCH";
    case TokenKind::kOptional:
      return "OPTIONAL";
    case TokenKind::kWhere:
      return "WHERE";
    case TokenKind::kReturn:
      return "RETURN";
    case TokenKind::kWith:
      return "WITH";
    case TokenKind::kUnwind:
      return "UNWIND";
    case TokenKind::kAs:
      return "AS";
    case TokenKind::kDistinct:
      return "DISTINCT";
    case TokenKind::kAnd:
      return "AND";
    case TokenKind::kOr:
      return "OR";
    case TokenKind::kXor:
      return "XOR";
    case TokenKind::kNot:
      return "NOT";
    case TokenKind::kIn:
      return "IN";
    case TokenKind::kIs:
      return "IS";
    case TokenKind::kNull:
      return "NULL";
    case TokenKind::kTrue:
      return "TRUE";
    case TokenKind::kFalse:
      return "FALSE";
    case TokenKind::kStarts:
      return "STARTS";
    case TokenKind::kEnds:
      return "ENDS";
    case TokenKind::kContains:
      return "CONTAINS";
    case TokenKind::kSkip:
      return "SKIP";
    case TokenKind::kLimit:
      return "LIMIT";
    case TokenKind::kOrder:
      return "ORDER";
    case TokenKind::kBy:
      return "BY";
    case TokenKind::kCase:
      return "CASE";
    case TokenKind::kWhen:
      return "WHEN";
    case TokenKind::kThen:
      return "THEN";
    case TokenKind::kElse:
      return "ELSE";
    case TokenKind::kEnd_:
      return "END";
    case TokenKind::kUnion:
      return "UNION";
    case TokenKind::kAll:
      return "ALL";
    case TokenKind::kExists:
      return "EXISTS";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kDotDot:
      return "'..'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNeq:
      return "'<>'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kArrowRight:
      return "'->'";
    case TokenKind::kArrowLeft:
      return "'<-'";
  }
  return "unknown token";
}

std::string Token::ToString() const {
  if (kind == TokenKind::kIdentifier || kind == TokenKind::kInteger ||
      kind == TokenKind::kFloat || kind == TokenKind::kString) {
    return StrCat(TokenKindName(kind), " '", text, "'");
  }
  return TokenKindName(kind);
}

}  // namespace pgivm
