#ifndef PGIVM_RETE_UNION_NODE_H_
#define PGIVM_RETE_UNION_NODE_H_

#include "rete/node.h"

namespace pgivm {

/// ∪ — stateless bag union: deltas from either port pass through. Inputs
/// must already share the output column order (the network builder inserts
/// reordering projections when needed).
class UnionNode : public ReteNode {
 public:
  explicit UnionNode(Schema schema) : ReteNode(std::move(schema)) {}

  void OnDelta(int port, const Delta& delta) override {
    (void)port;
    Emit(delta);
  }

  std::string DebugString() const override { return "Union"; }
  const char* KindName() const override { return "Union"; }
};

}  // namespace pgivm

#endif  // PGIVM_RETE_UNION_NODE_H_
