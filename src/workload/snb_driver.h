#ifndef PGIVM_WORKLOAD_SNB_DRIVER_H_
#define PGIVM_WORKLOAD_SNB_DRIVER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "support/repro.h"
#include "workload/social_network.h"

namespace pgivm {

/// Operation classes of the interactive mix, LDBC-SNB-flavoured:
///  * complex reads — standing pattern/aggregate/path views, maintained
///    incrementally and served by View::Pin (the IC queries' role);
///  * short reads — point lookups against a pinned profile/message
///    snapshot (the IS queries' role);
///  * updates — SNB-like insert/delete operations (replies, likes, knows
///    edges, profile edits, comment deletions) submitted through the
///    serving ingest queue.
enum class SnbOpClass { kComplexRead, kShortRead, kUpdate };

const char* SnbOpClassName(SnbOpClass op_class);

/// One operation of the deterministic stream. `seed` fully determines the
/// op's content: which view a read pins, which row a short read looks up,
/// and — combined with the generator state at apply time — which mutation
/// an update performs.
struct SnbOp {
  SnbOpClass op_class;
  uint64_t seed;
};

/// Scale-factor-parameterized interactive driver configuration. The same
/// config drives both modes: RunTimed replays the stream from
/// `client_threads` concurrent clients against the ingest loop and
/// measures; RunValidation replays it single-threaded against a serial
/// reference engine with bit-parity checks, so a run shape is provably
/// correct before it is timed.
struct SnbDriverConfig {
  /// Graph size via SocialNetworkConfig::AtScale (SF 1.0 ≈ 1000 persons).
  double scale_factor = 0.1;
  /// Seeds the graph population and the operation stream.
  uint64_t seed = 42;
  /// Concurrent client threads in RunTimed (ops dealt round-robin, so the
  /// per-thread substreams are deterministic; application order of updates
  /// is whatever the ingest queue sees). Ignored by RunValidation.
  int client_threads = 1;
  /// Total operations in the stream.
  int64_t operations = 1000;
  /// Operation mix weights (need not sum to 100). The defaults follow the
  /// short-read-heavy interactive shape of the SNB workload.
  int complex_read_weight = 10;
  int short_read_weight = 55;
  int update_weight = 35;
  /// Validation mode: full cross-view parity check after every Nth update
  /// (1 = after every update — the strongest, default); reads always check
  /// the view they touched.
  int64_t validate_every = 1;
  /// Validation mode: every Nth update additionally cross-checks one
  /// rotating view against a fresh EvaluateOnce, so the maintained pair
  /// cannot drift together.
  int64_t baseline_every = 16;
  /// Options of the engine under test (propagation strategy, executor,
  /// morsel settings, profiling). The validation reference engine always
  /// runs the default serial configuration with canonicalization off.
  EngineOptions engine;
  /// Storage mode of the graph both engines run over. Unset (default)
  /// follows the ambient default (typed columns, PGIVM_TYPED_COLUMNS
  /// honored); set pins typed/row storage for this run regardless of the
  /// environment — the storage-ablation knob of the validation gate.
  std::optional<bool> typed_columns;
};

/// Per-operation-class outcome: how many ops ran and their latency
/// histogram (ns). Complex/short reads measure Pin-to-rows-touched;
/// updates measure SubmitAsync-to-applied (queueing + coalescing included,
/// i.e. what a client experiences under backpressure).
struct SnbClassStats {
  int64_t operations = 0;
  HistogramSnapshot latency_ns;
};

/// Result of one driver run. ToString renders the p50/p95/p99 table.
struct SnbReport {
  SnbClassStats complex_read;
  SnbClassStats short_read;
  SnbClassStats update;
  /// Wall time of the replay (excludes population and registration).
  int64_t elapsed_ns = 0;
  /// Sustained throughput over the whole mixed stream.
  double operations_per_second = 0.0;
  /// Ingest batches the updates were coalesced into (timed mode).
  int64_t ingest_batches = 0;
  /// GraphFingerprint of the final graph. Deterministic in validation mode
  /// (stream order); order-dependent in timed mode with >1 client.
  uint64_t graph_fingerprint = 0;
  /// Validation mode: cross-view parity checks that passed.
  int64_t parity_checks = 0;

  std::string ToString() const;
};

/// LDBC-SNB-style interactive driver over SocialNetworkGenerator.
///
/// The operation stream is a pure function of the config (seed, weights,
/// operation count) — the same stream object feeds both modes. Each Run*
/// call builds a fresh graph, generator and engine(s), so runs are
/// independent and a driver object may run both modes.
///
/// Thread-safety of RunTimed is inherited from the serving contract:
/// client threads only Pin views (free-threaded) and SubmitAsync mutations
/// (any-thread); the generator and graph are touched exclusively by the
/// ingest thread. Latencies are recorded into the engine's MetricsRegistry
/// ("snb.complex_read_ns", "snb.short_read_ns", "snb.update_ns"), so they
/// surface through EngineMetricsSnapshot like every other instrument.
class SnbDriver {
 public:
  explicit SnbDriver(const SnbDriverConfig& config);

  /// The deterministic operation stream this config generates.
  const std::vector<SnbOp>& stream() const { return stream_; }

  /// Timed mode: populate at scale, register the query set, start the
  /// ingest loop and replay the stream from `client_threads` threads.
  /// Fails if the stream is empty or a submission is rejected.
  Result<SnbReport> RunTimed();

  /// Validation mode: replay the same stream single-threaded against the
  /// engine under test (config.engine) and a serial reference engine
  /// (canonicalize off, graph-primed) attached to the same graph. Every
  /// touched view must be bit-identical between the two after every
  /// operation batch, with periodic EvaluateOnce cross-checks. On a parity
  /// failure the error message carries a one-line PGIVM_REPRO replay
  /// recipe (also printed to stderr) naming seed, strategy, threads,
  /// morsel setting and the diverging update index.
  Result<SnbReport> RunValidation();

  /// The ReproSpec describing this config's engine case (for recipe
  /// printing and PGIVM_REPRO matching).
  ReproSpec ReproCase() const;

  /// Applies a PGIVM_REPRO spec onto a config: seed, strategy, thread
  /// count and morsel forcing override the corresponding fields.
  static SnbDriverConfig WithRepro(SnbDriverConfig config,
                                   const ReproSpec& spec);

  /// The standing complex-read views (joins over KNOWS/HAS_CREATOR/LIKES,
  /// a reply-tree transitive path, per-creator aggregates).
  static const std::vector<std::string>& ComplexReadQueries();

  /// The point-lookup views (person profiles, message bodies).
  static const std::vector<std::string>& ShortReadQueries();

 private:
  SnbDriverConfig config_;
  std::vector<SnbOp> stream_;
};

}  // namespace pgivm

#endif  // PGIVM_WORKLOAD_SNB_DRIVER_H_
