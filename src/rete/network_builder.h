#ifndef PGIVM_RETE_NETWORK_BUILDER_H_
#define PGIVM_RETE_NETWORK_BUILDER_H_

#include <memory>
#include <vector>

#include "algebra/operator.h"
#include "graph/property_graph.h"
#include "rete/network.h"
#include "support/status.h"

namespace pgivm {

class NodeRegistry;

struct NetworkOptions {
  /// Fold unnest deltas per kept-column projection and emit element-level
  /// differences (the FGN behaviour). Off = the E4 ablation baseline.
  bool fine_grained_unnest = true;

  /// How deltas travel through the network (see PropagationStrategy).
  /// kBatched consolidates per-(node, port) queues between topological
  /// waves — the default; kEager is the seed's per-change recursion.
  PropagationStrategy propagation = PropagationStrategy::kBatched;
};

/// One view instantiated inside a (possibly multi-view) network: its
/// production root plus every Rete node the view references — shared
/// prefixes included. The ViewCatalog refcounts exactly this set.
struct BuiltView {
  ProductionNode* production = nullptr;
  std::vector<ReteNode*> nodes;  // deduped, production included
};

/// Instantiates the FRA plan (paper step 4) as a Rete sub-network inside
/// `network`, which may already host other views. When `registry` is
/// non-null it is consulted per sub-plan: a fingerprint hit reuses the
/// existing nodes (and their memories) instead of constructing — the
/// operator-state sharing that turns a view catalog into one shared
/// dataflow graph. Downstream expressions are bound against the *plan's*
/// child schemas, which are positionally identical to any shared node's
/// output, so sharing is insensitive to query aliases.
///
/// On failure every node this call added is removed from `network` and
/// `registry` again; previously registered views are untouched.
///
/// Lowerings performed here:
///  * transitive join → Join(input, PathInputNode) — the path store is the
///    fused get-edges side of the paper's ./∗ operator;
///  * left outer join → Join ∪ (AntiJoin → null-pad Projection);
///  * Produce → Projection feeding a fresh ProductionNode (the view root;
///    productions are never shared).
Result<BuiltView> BuildViewInto(ReteNetwork* network, const OpPtr& plan,
                                const PropertyGraph* graph,
                                const NetworkOptions& options,
                                NodeRegistry* registry);

/// Single-view convenience: a fresh private network for `plan` (no
/// sharing). The network is built detached; call Attach() to start
/// maintenance.
Result<std::unique_ptr<ReteNetwork>> BuildNetwork(
    const OpPtr& plan, const PropertyGraph* graph,
    const NetworkOptions& options = {});

}  // namespace pgivm

#endif  // PGIVM_RETE_NETWORK_BUILDER_H_
