#include "graph/graph_io.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

#include "support/string_util.h"

namespace pgivm {

namespace {

void WriteEscaped(const std::string& s, std::ostringstream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

void WriteValueRec(const Value& value, std::ostringstream& os) {
  switch (value.type()) {
    case Value::Type::kNull:
    case Value::Type::kVertex:
    case Value::Type::kEdge:
    case Value::Type::kPath:
      os << "null";
      break;
    case Value::Type::kBool:
      os << (value.AsBool() ? "true" : "false");
      break;
    case Value::Type::kInt:
      os << value.AsInt();
      break;
    case Value::Type::kDouble: {
      char buffer[40];
      std::snprintf(buffer, sizeof(buffer), "%.17g", value.AsDouble());
      os << buffer;
      // Keep doubles distinguishable from ints on re-parse.
      std::string_view rendered(buffer);
      if (rendered.find('.') == std::string_view::npos &&
          rendered.find('e') == std::string_view::npos &&
          rendered.find("inf") == std::string_view::npos &&
          rendered.find("nan") == std::string_view::npos) {
        os << ".0";
      }
      break;
    }
    case Value::Type::kString:
      WriteEscaped(value.AsString(), os);
      break;
    case Value::Type::kList: {
      os << '[';
      const ValueList& list = value.AsList();
      for (size_t i = 0; i < list.size(); ++i) {
        if (i > 0) os << ", ";
        WriteValueRec(list[i], os);
      }
      os << ']';
      break;
    }
    case Value::Type::kMap: {
      os << '{';
      bool first = true;
      for (const auto& [k, v] : value.AsMap()) {
        if (!first) os << ", ";
        first = false;
        WriteEscaped(k, os);
        os << ": ";
        WriteValueRec(v, os);
      }
      os << '}';
      break;
    }
  }
}

/// Minimal recursive-descent parser for the value grammar above.
class ValueParser {
 public:
  explicit ValueParser(std::string_view text) : text_(text) {}

  Result<Value> Parse() {
    PGIVM_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          StrCat("trailing characters in value at offset ", pos_));
    }
    return v;
  }

  /// Parses one value and leaves the cursor after it (for embedding in the
  /// graph line parser).
  Result<Value> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of value text");
    }
    char c = text_[pos_];
    if (c == 'n' && Consume("null")) return Value::Null();
    if (c == 't' && Consume("true")) return Value::Bool(true);
    if (c == 'f' && Consume("false")) return Value::Bool(false);
    if (c == '"') return ParseString();
    if (c == '[') return ParseList();
    if (c == '{') return ParseMap();
    return ParseNumber();
  }

  size_t position() const { return pos_; }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument("unterminated escape");
        }
        char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case '"':
          case '\\':
            out.push_back(esc);
            break;
          default:
            return Status::InvalidArgument(
                StrCat("unknown escape \\", std::string(1, esc)));
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated string");
    }
    ++pos_;  // closing quote
    return Value::String(std::move(out));
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' ||
                 ((c == '-' || c == '+') && pos_ > start &&
                  (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))) {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrCat("expected a value at offset ", start));
    }
    std::string token(text_.substr(start, pos_ - start));
    // strtoll/strtod with a null end pointer would turn an unparseable
    // token ("-", "1e", "1.2.3") into Int(0)/garbage silently — a corrupt
    // input file must surface as a load error, not as a wrong value.
    errno = 0;
    char* end = nullptr;
    if (is_double) {
      double parsed = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size() || end == token.c_str()) {
        return Status::InvalidArgument(
            StrCat("malformed number \"", token, "\" at offset ", start));
      }
      if (errno == ERANGE) {
        return Status::InvalidArgument(
            StrCat("number \"", token, "\" out of range at offset ", start));
      }
      return Value::Double(parsed);
    }
    long long parsed = std::strtoll(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size() || end == token.c_str()) {
      return Status::InvalidArgument(
          StrCat("malformed number \"", token, "\" at offset ", start));
    }
    if (errno == ERANGE) {
      return Status::InvalidArgument(
          StrCat("integer \"", token, "\" out of range at offset ", start));
    }
    return Value::Int(parsed);
  }

  Result<Value> ParseList() {
    ++pos_;  // '['
    ValueList elements;
    SkipSpace();
    if (Consume("]")) return Value::List(std::move(elements));
    while (true) {
      PGIVM_ASSIGN_OR_RETURN(Value v, ParseValue());
      elements.push_back(std::move(v));
      SkipSpace();
      if (Consume("]")) break;
      if (!Consume(",")) {
        return Status::InvalidArgument("expected ',' or ']' in list");
      }
    }
    return Value::List(std::move(elements));
  }

  Result<Value> ParseMap() {
    ++pos_;  // '{'
    ValueMap entries;
    SkipSpace();
    if (Consume("}")) return Value::Map(std::move(entries));
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::InvalidArgument("expected a quoted map key");
      }
      PGIVM_ASSIGN_OR_RETURN(Value key, ParseString());
      SkipSpace();
      if (!Consume(":")) {
        return Status::InvalidArgument("expected ':' after map key");
      }
      PGIVM_ASSIGN_OR_RETURN(Value v, ParseValue());
      entries[key.AsString()] = std::move(v);
      SkipSpace();
      if (Consume("}")) break;
      if (!Consume(",")) {
        return Status::InvalidArgument("expected ',' or '}' in map");
      }
    }
    return Value::Map(std::move(entries));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string WriteValueText(const Value& value) {
  std::ostringstream os;
  WriteValueRec(value, os);
  return os.str();
}

Result<Value> ParseValueText(std::string_view text) {
  return ValueParser(text).Parse();
}

std::string WriteGraphText(const PropertyGraph& graph) {
  std::ostringstream os;
  os << "pgivm-graph 1\n";
  graph.ForEachVertex([&](VertexId v) {
    os << "vertex " << v << " :";
    os << StrJoin(graph.VertexLabels(v), ":");
    os << " ";
    WriteValueRec(Value::Map(graph.VertexProperties(v)), os);
    os << "\n";
  });
  graph.ForEachEdge([&](EdgeId e) {
    os << "edge " << e << " " << graph.EdgeSource(e) << " "
       << graph.EdgeTarget(e) << " " << graph.EdgeType(e) << " ";
    WriteValueRec(Value::Map(graph.EdgeProperties(e)), os);
    os << "\n";
  });
  return os.str();
}

Status ReadGraphText(std::string_view text, PropertyGraph* graph) {
  std::unordered_map<int64_t, VertexId> vertex_remap;
  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;

  auto error = [&line_no](const std::string& message) {
    return Status::InvalidArgument(
        StrCat("graph text line ", line_no, ": ", message));
  };

  if (!std::getline(lines, line) || line != "pgivm-graph 1") {
    return Status::InvalidArgument(
        "not a pgivm graph dump (missing 'pgivm-graph 1' header)");
  }
  line_no = 1;

  graph->BeginBatch();
  auto fail = [&](Status status) {
    graph->CommitBatch();  // Commit what was loaded so far; caller decides.
    return status;
  };

  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "vertex") {
      int64_t file_id;
      std::string label_spec;
      if (!(fields >> file_id >> label_spec)) {
        return fail(error("malformed vertex line"));
      }
      std::vector<std::string> labels;
      // label_spec is ":" (no labels) or ":A:B".
      size_t pos = 1;
      while (pos < label_spec.size()) {
        size_t next = label_spec.find(':', pos);
        if (next == std::string::npos) next = label_spec.size();
        if (next > pos) labels.push_back(label_spec.substr(pos, next - pos));
        pos = next + 1;
      }
      std::string rest;
      std::getline(fields, rest);
      Result<Value> props_or = ParseValueText(rest);
      if (!props_or.ok()) return fail(props_or.status());
      const Value& props = props_or.value();
      if (!props.is_map()) return fail(error("vertex properties not a map"));
      if (vertex_remap.count(file_id) > 0) {
        return fail(error(StrCat("duplicate vertex id ", file_id)));
      }
      vertex_remap[file_id] =
          graph->AddVertex(std::move(labels), props.AsMap());
    } else if (kind == "edge") {
      int64_t file_id, src, dst;
      std::string type;
      if (!(fields >> file_id >> src >> dst >> type)) {
        return fail(error("malformed edge line"));
      }
      std::string rest;
      std::getline(fields, rest);
      Result<Value> props_or = ParseValueText(rest);
      if (!props_or.ok()) return fail(props_or.status());
      const Value& props = props_or.value();
      if (!props.is_map()) return fail(error("edge properties not a map"));
      auto src_it = vertex_remap.find(src);
      auto dst_it = vertex_remap.find(dst);
      if (src_it == vertex_remap.end() || dst_it == vertex_remap.end()) {
        return fail(error(StrCat("edge ", file_id,
                                 " references unknown vertices")));
      }
      Result<EdgeId> edge = graph->AddEdge(src_it->second, dst_it->second,
                                           std::move(type), props.AsMap());
      if (!edge.ok()) return fail(edge.status());
    } else {
      return fail(error(StrCat("unknown record kind '", kind, "'")));
    }
  }
  graph->CommitBatch();
  return Status::Ok();
}

}  // namespace pgivm
