// Social network feed — SNB-flavoured standing queries over a living
// social graph: thread views with transitive replies (the paper's running
// example generalized), per-language statistics via aggregation, and
// profile-language fan-out via UNWIND (fine-grained nested updates).

#include <iostream>

#include "engine/query_engine.h"
#include "workload/social_network.h"

int main() {
  using namespace pgivm;

  PropertyGraph graph;
  SocialNetworkConfig config;
  config.persons = 40;
  config.posts_per_person = 2;
  config.comments_per_post = 5;
  SocialNetworkGenerator generator(config);
  generator.Populate(&graph);

  QueryEngine engine(&graph);

  // The running example as a living feed: same-language reply threads.
  auto threads = engine
                     .Register(
                         "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) "
                         "WHERE p.lang = c.lang RETURN p, t")
                     .value();

  // Language league table over all messages.
  auto stats = engine
                   .Register(
                       "MATCH (m:Comm) "
                       "RETURN m.lang AS lang, count(*) AS comments")
                   .value();

  // Who can read which post: speakers of the post's language, via the
  // collection property `speaks` (FGN territory).
  auto audience = engine
                      .Register(
                          "MATCH (p:Post), (u:Person) "
                          "UNWIND u.speaks AS lang "
                          "WITH p, u, lang WHERE lang = p.lang "
                          "RETURN p, count(*) AS readers")
                      .value();

  std::cout << "Initial state: " << threads->size()
            << " same-language thread paths, " << stats->size()
            << " comment languages, audience rows: " << audience->size()
            << "\n";

  std::cout << "\nComment language distribution:\n";
  for (const Tuple& row : stats->Snapshot()) {
    std::cout << "  " << row.at(0).ToString() << ": "
              << row.at(1).ToString() << "\n";
  }

  // Live updates: 200 social actions.
  for (int i = 0; i < 200; ++i) generator.ApplyRandomUpdate(&graph);
  std::cout << "\nAfter 200 stream operations: " << threads->size()
            << " thread paths; network memory "
            << threads->ApproxMemoryBytes() / 1024 << " KiB\n";

  // A user learns a new language: only the delta propagates through the
  // UNWIND (fine-grained nested maintenance).
  VertexId reader = generator.persons().front();
  (void)graph.ListAppend(reader, "speaks", Value::String("en"));
  std::cout << "After person " << reader
            << " learns 'en': audience rows = " << audience->size() << "\n";
  return 0;
}
