#include "rete/distinct_node.h"

namespace pgivm {

void DistinctNode::OnDelta(int port, const Delta& delta) {
  (void)port;
  Delta out;
  for (const DeltaEntry& entry : delta) {
    auto [old_count, new_count] = support_.Apply(entry.tuple,
                                                 entry.multiplicity);
    if (old_count == 0 && new_count > 0) {
      out.push_back({entry.tuple, 1});
    } else if (old_count > 0 && new_count == 0) {
      out.push_back({entry.tuple, -1});
    }
  }
  Emit(std::move(out));
}

}  // namespace pgivm
