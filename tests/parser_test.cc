#include "cypher/parser.h"

#include <gtest/gtest.h>

namespace pgivm {
namespace {

Query Parse(const std::string& text) {
  Result<Query> query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status();
  return query.ok() ? query.value() : Query{};
}

TEST(ParserTest, MinimalReturn) {
  Query q = Parse("RETURN 1");
  EXPECT_TRUE(q.clauses.empty());
  ASSERT_EQ(q.return_clause.items.size(), 1u);
  EXPECT_EQ(q.return_clause.items[0].expr->kind, ExprKind::kLiteral);
  EXPECT_EQ(q.return_clause.items[0].alias, "1");
}

TEST(ParserTest, SimpleMatchReturn) {
  Query q = Parse("MATCH (n:Person) RETURN n");
  ASSERT_EQ(q.clauses.size(), 1u);
  const auto& match = std::get<MatchClause>(q.clauses[0]);
  ASSERT_EQ(match.parts.size(), 1u);
  EXPECT_EQ(match.parts[0].first.variable, "n");
  EXPECT_EQ(match.parts[0].first.labels, std::vector<std::string>{"Person"});
}

TEST(ParserTest, AnonymousElementsGetVariables) {
  Query q = Parse("MATCH (:A)-[]->(:B) RETURN 1");
  const auto& match = std::get<MatchClause>(q.clauses[0]);
  EXPECT_FALSE(match.parts[0].first.variable.empty());
  ASSERT_EQ(match.parts[0].chain.size(), 1u);
  EXPECT_FALSE(match.parts[0].chain[0].first.variable.empty());
  EXPECT_FALSE(match.parts[0].chain[0].second.variable.empty());
}

TEST(ParserTest, RelationshipDirections) {
  {
    Query q = Parse("MATCH (a)-[r:T]->(b) RETURN r");
    const auto& rel =
        std::get<MatchClause>(q.clauses[0]).parts[0].chain[0].first;
    EXPECT_EQ(rel.direction, RelPattern::Direction::kOut);
    EXPECT_EQ(rel.types, std::vector<std::string>{"T"});
  }
  {
    Query q = Parse("MATCH (a)<-[r:T]-(b) RETURN r");
    const auto& rel =
        std::get<MatchClause>(q.clauses[0]).parts[0].chain[0].first;
    EXPECT_EQ(rel.direction, RelPattern::Direction::kIn);
  }
  {
    Query q = Parse("MATCH (a)-[r]-(b) RETURN r");
    const auto& rel =
        std::get<MatchClause>(q.clauses[0]).parts[0].chain[0].first;
    EXPECT_EQ(rel.direction, RelPattern::Direction::kBoth);
  }
  {
    Query q = Parse("MATCH (a)-->(b) RETURN a");
    const auto& rel =
        std::get<MatchClause>(q.clauses[0]).parts[0].chain[0].first;
    EXPECT_EQ(rel.direction, RelPattern::Direction::kOut);
    EXPECT_TRUE(rel.types.empty());
  }
  {
    Query q = Parse("MATCH (a)<--(b) RETURN a");
    const auto& rel =
        std::get<MatchClause>(q.clauses[0]).parts[0].chain[0].first;
    EXPECT_EQ(rel.direction, RelPattern::Direction::kIn);
  }
}

TEST(ParserTest, TypeAlternatives) {
  Query q = Parse("MATCH (a)-[r:X|Y|Z]->(b) RETURN r");
  const auto& rel =
      std::get<MatchClause>(q.clauses[0]).parts[0].chain[0].first;
  EXPECT_EQ(rel.types, (std::vector<std::string>{"X", "Y", "Z"}));
}

TEST(ParserTest, VariableLengthForms) {
  struct Case {
    const char* query;
    int64_t min;
    int64_t max;
  };
  for (const Case& c : std::vector<Case>{
           {"MATCH (a)-[:T*]->(b) RETURN a", 1, -1},
           {"MATCH (a)-[:T*3]->(b) RETURN a", 3, 3},
           {"MATCH (a)-[:T*1..4]->(b) RETURN a", 1, 4},
           {"MATCH (a)-[:T*..4]->(b) RETURN a", 1, 4},
           {"MATCH (a)-[:T*2..]->(b) RETURN a", 2, -1},
           {"MATCH (a)-[:T*0..2]->(b) RETURN a", 0, 2}}) {
    Query q = Parse(c.query);
    const auto& rel =
        std::get<MatchClause>(q.clauses[0]).parts[0].chain[0].first;
    EXPECT_TRUE(rel.variable_length) << c.query;
    EXPECT_EQ(rel.min_hops, c.min) << c.query;
    EXPECT_EQ(rel.max_hops, c.max) << c.query;
  }
}

TEST(ParserTest, InvertedBoundsRejected) {
  EXPECT_FALSE(ParseQuery("MATCH (a)-[:T*4..2]->(b) RETURN a").ok());
}

TEST(ParserTest, NamedPath) {
  Query q = Parse("MATCH t = (p:Post)-[:REPLY*]->(c:Comm) RETURN p, t");
  const auto& part = std::get<MatchClause>(q.clauses[0]).parts[0];
  EXPECT_EQ(part.path_variable, "t");
}

TEST(ParserTest, InlinePropertyPredicates) {
  Query q = Parse("MATCH (n:P {age: 30, name: 'x'}) RETURN n");
  const auto& node = std::get<MatchClause>(q.clauses[0]).parts[0].first;
  ASSERT_EQ(node.properties.size(), 2u);
  EXPECT_EQ(node.properties[0].first, "age");
  EXPECT_EQ(node.properties[1].first, "name");
}

TEST(ParserTest, WhereExpressionPrecedence) {
  Query q = Parse("MATCH (n) WHERE n.a = 1 OR n.b = 2 AND n.c = 3 RETURN n");
  const ExprPtr& where = std::get<MatchClause>(q.clauses[0]).where;
  ASSERT_TRUE(where != nullptr);
  // OR binds loosest: (a=1) OR ((b=2) AND (c=3)).
  EXPECT_EQ(where->binary_op, BinaryOp::kOr);
  EXPECT_EQ(where->children[1]->binary_op, BinaryOp::kAnd);
}

TEST(ParserTest, ComparisonLessThanNegativeNumber) {
  // `<-` would lex as an arrow; the parser must recover `<` + `-1`.
  Query q = Parse("MATCH (n) WHERE n.x <-1 RETURN n");
  const ExprPtr& where = std::get<MatchClause>(q.clauses[0]).where;
  EXPECT_EQ(where->binary_op, BinaryOp::kLt);
  EXPECT_EQ(where->children[1]->kind, ExprKind::kUnary);
  EXPECT_EQ(where->children[1]->unary_op, UnaryOp::kMinus);
}

TEST(ParserTest, StringPredicates) {
  Query q = Parse(
      "MATCH (n) WHERE n.s STARTS WITH 'a' AND n.s ENDS WITH 'b' AND "
      "n.s CONTAINS 'c' RETURN n");
  EXPECT_TRUE(std::get<MatchClause>(q.clauses[0]).where != nullptr);
}

TEST(ParserTest, IsNullAndIsNotNull) {
  Query q = Parse("MATCH (n) WHERE n.x IS NULL AND n.y IS NOT NULL RETURN n");
  const ExprPtr& where = std::get<MatchClause>(q.clauses[0]).where;
  EXPECT_EQ(where->children[0]->unary_op, UnaryOp::kIsNull);
  EXPECT_EQ(where->children[1]->unary_op, UnaryOp::kIsNotNull);
}

TEST(ParserTest, ListsMapsAndSubscripts) {
  Query q = Parse("RETURN [1, 2, 3][0] AS a, {x: 1}['x'] AS b, [] AS c");
  ASSERT_EQ(q.return_clause.items.size(), 3u);
  EXPECT_EQ(q.return_clause.items[0].expr->binary_op, BinaryOp::kSubscript);
}

TEST(ParserTest, FunctionCallsAndCountStar) {
  Query q = Parse("MATCH (n) RETURN count(*) AS c, size(labels(n)) AS s, "
                  "count(DISTINCT n.x) AS d");
  EXPECT_TRUE(q.return_clause.items[0].expr->star);
  EXPECT_EQ(q.return_clause.items[1].expr->name, "size");
  EXPECT_TRUE(q.return_clause.items[2].expr->distinct);
}

TEST(ParserTest, UnwindClause) {
  Query q = Parse("UNWIND [1,2] AS x RETURN x");
  ASSERT_EQ(q.clauses.size(), 1u);
  const auto& unwind = std::get<UnwindClause>(q.clauses[0]);
  EXPECT_EQ(unwind.alias, "x");
}

TEST(ParserTest, WithClause) {
  Query q = Parse("MATCH (n) WITH DISTINCT n.x AS x WHERE x > 1 RETURN x");
  ASSERT_EQ(q.clauses.size(), 2u);
  const auto& with = std::get<WithClause>(q.clauses[1]);
  EXPECT_TRUE(with.distinct);
  ASSERT_EQ(with.items.size(), 1u);
  EXPECT_EQ(with.items[0].alias, "x");
  EXPECT_TRUE(with.where != nullptr);
}

TEST(ParserTest, OptionalMatch) {
  Query q = Parse("MATCH (a) OPTIONAL MATCH (a)-[r]->(b) RETURN a, r");
  ASSERT_EQ(q.clauses.size(), 2u);
  EXPECT_FALSE(std::get<MatchClause>(q.clauses[0]).optional);
  EXPECT_TRUE(std::get<MatchClause>(q.clauses[1]).optional);
}

TEST(ParserTest, ReturnDistinctSkipLimit) {
  Query q = Parse("MATCH (n) RETURN DISTINCT n SKIP 5 LIMIT 10");
  EXPECT_TRUE(q.return_clause.distinct);
  EXPECT_EQ(q.return_clause.skip, 5);
  EXPECT_EQ(q.return_clause.limit, 10);
}

TEST(ParserTest, OrderByRejectedWithOrdHint) {
  Result<Query> q = ParseQuery("MATCH (n) RETURN n ORDER BY n.x");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("ORD"), std::string::npos);
}

TEST(ParserTest, DuplicateAliasesDisambiguated) {
  Query q = Parse("MATCH (n) RETURN n.x, n.x");
  EXPECT_NE(q.return_clause.items[0].alias, q.return_clause.items[1].alias);
}

TEST(ParserTest, MultiplePatternParts) {
  Query q = Parse("MATCH (a)-[:X]->(b), (c:L) RETURN a, c");
  EXPECT_EQ(std::get<MatchClause>(q.clauses[0]).parts.size(), 2u);
}

TEST(ParserTest, PropertiesOnVariableLengthRejected) {
  EXPECT_FALSE(ParseQuery("MATCH (a)-[:T* {w: 1}]->(b) RETURN a").ok());
}

TEST(ParserTest, UndirectedVariableLengthRejected) {
  EXPECT_FALSE(ParseQuery("MATCH (a)-[:T*]-(b) RETURN a").ok());
}

TEST(ParserTest, BidirectionalArrowRejected) {
  EXPECT_FALSE(ParseQuery("MATCH (a)<-[r]->(b) RETURN a").ok());
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseQuery("RETURN 1 banana").ok());
}

TEST(ParserTest, ErrorsCarryPositions) {
  Result<Query> q = ParseQuery("MATCH (n RETURN n");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("1:"), std::string::npos);
}

}  // namespace
}  // namespace pgivm
