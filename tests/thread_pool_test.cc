// Unit tests of the fork-join worker pool behind parallel wave execution.

#include "support/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace pgivm {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.parallelism(), 4);

  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.Run(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, DistinctSlotWritesNeedNoSynchronization) {
  // The wave scheduler's usage pattern: task i writes only slot i.
  ThreadPool pool(8);
  constexpr size_t kN = 4096;
  std::vector<int64_t> out(kN, -1);
  pool.Run(kN, [&](size_t i) { out[i] = static_cast<int64_t>(i) * 2; });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i], static_cast<int64_t>(i) * 2);
  }
}

TEST(ThreadPoolTest, SingleThreadDegeneratesToSerialLoop) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1);
  int64_t sum = 0;
  // No workers: the task may touch unsynchronized state freely.
  pool.Run(100, [&](size_t i) { sum += static_cast<int64_t>(i); });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.parallelism(), 1);
  std::atomic<int> ran{0};
  pool.Run(3, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolTest, ReusableAcrossManyRegions) {
  // The scheduler dispatches one region per wave — thousands over a
  // network's lifetime. Regions must not leak state into each other.
  ThreadPool pool(3);
  for (int region = 1; region <= 500; ++region) {
    std::atomic<int64_t> sum{0};
    size_t n = static_cast<size_t>(region % 7);  // exercises n == 0 and 1
    pool.Run(n, [&](size_t i) { sum.fetch_add(static_cast<int64_t>(i) + 1); });
    int64_t expected = 0;
    for (size_t i = 0; i < n; ++i) expected += static_cast<int64_t>(i) + 1;
    ASSERT_EQ(sum.load(), expected) << "region " << region;
  }
}

TEST(ThreadPoolTest, EmptyRegionIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.Run(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);   // hardware concurrency
  EXPECT_GE(ThreadPool::ResolveThreadCount(-3), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(6), 6);
}

}  // namespace
}  // namespace pgivm
