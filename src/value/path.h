#ifndef PGIVM_VALUE_PATH_H_
#define PGIVM_VALUE_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "value/ids.h"

namespace pgivm {

/// An immutable graph path: an alternating sequence of vertices and edges,
/// stored as `vertices()` (n+1 entries) and `edges()` (n entries).
///
/// Paths are the only *ordered* collection in the pgivm data model. Per the
/// paper's ORD compromise they are **atomic**: a maintained view never edits
/// a path in place — it deletes the old path value and inserts a new one.
/// A zero-length path (single vertex, no edges) is valid.
class Path {
 public:
  Path() = default;

  /// Builds a path. Requires vertices.size() == edges.size() + 1 and at
  /// least one vertex (asserted).
  Path(std::vector<VertexId> vertices, std::vector<EdgeId> edges);

  /// Single-vertex (zero-length) path.
  static Path Single(VertexId v);

  const std::vector<VertexId>& vertices() const { return vertices_; }
  const std::vector<EdgeId>& edges() const { return edges_; }

  /// Number of edges (Cypher's length(p)).
  size_t length() const { return edges_.size(); }

  VertexId source() const { return vertices_.front(); }
  VertexId target() const { return vertices_.back(); }

  bool ContainsEdge(EdgeId e) const;
  bool ContainsVertex(VertexId v) const;

  /// Returns a copy of this path extended by one hop over `e` to `v`.
  Path Extended(EdgeId e, VertexId v) const;

  /// Renders e.g. "<1-[e0]->2-[e3]->5>" (vertex ids and edge ids).
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const Path& a, const Path& b) {
    return a.vertices_ == b.vertices_ && a.edges_ == b.edges_;
  }

  /// Total order: by length, then lexicographic vertices, then edges.
  static int Compare(const Path& a, const Path& b);

 private:
  std::vector<VertexId> vertices_;
  std::vector<EdgeId> edges_;
};

}  // namespace pgivm

#endif  // PGIVM_VALUE_PATH_H_
