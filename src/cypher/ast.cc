#include "cypher/ast.h"

#include <sstream>

#include "support/string_util.h"

namespace pgivm {

namespace {

std::string PropsToString(
    const std::vector<std::pair<std::string, ExprPtr>>& props) {
  if (props.empty()) return "";
  std::ostringstream os;
  os << " {";
  for (size_t i = 0; i < props.size(); ++i) {
    if (i > 0) os << ", ";
    os << props[i].first << ": " << props[i].second->ToString();
  }
  os << "}";
  return os.str();
}

}  // namespace

std::string NodePattern::ToString() const {
  std::ostringstream os;
  os << "(" << variable;
  for (const std::string& label : labels) os << ":" << label;
  os << PropsToString(properties) << ")";
  return os.str();
}

std::string RelPattern::ToString() const {
  std::ostringstream os;
  os << (direction == Direction::kIn ? "<-" : "-") << "[" << variable;
  for (size_t i = 0; i < types.size(); ++i) {
    os << (i == 0 ? ":" : "|") << types[i];
  }
  if (variable_length) {
    os << "*" << min_hops << "..";
    if (max_hops >= 0) os << max_hops;
  }
  os << PropsToString(properties) << "]"
     << (direction == Direction::kOut ? "->" : "-");
  return os.str();
}

std::string PatternPart::ToString() const {
  std::ostringstream os;
  if (!path_variable.empty()) os << path_variable << " = ";
  os << first.ToString();
  for (const auto& [rel, node] : chain) {
    os << rel.ToString() << node.ToString();
  }
  return os.str();
}

std::string MatchClause::ToString() const {
  std::ostringstream os;
  if (optional) os << "OPTIONAL ";
  os << "MATCH ";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) os << ", ";
    os << parts[i].ToString();
  }
  if (where) os << " WHERE " << where->ToString();
  return os.str();
}

std::string UnwindClause::ToString() const {
  return StrCat("UNWIND ", expr->ToString(), " AS ", alias);
}

std::string ReturnItem::ToString() const {
  return StrCat(expr->ToString(), " AS ", alias);
}

std::string WithClause::ToString() const {
  std::ostringstream os;
  os << "WITH ";
  if (distinct) os << "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) os << ", ";
    os << items[i].ToString();
  }
  if (where) os << " WHERE " << where->ToString();
  return os.str();
}

std::string ReturnClause::ToString() const {
  std::ostringstream os;
  os << "RETURN ";
  if (distinct) os << "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) os << ", ";
    os << items[i].ToString();
  }
  if (skip > 0) os << " SKIP " << skip;
  if (limit >= 0) os << " LIMIT " << limit;
  return os.str();
}

namespace {

Status SubstituteExpr(ExprPtr& expr, const ValueMap& parameters) {
  if (!expr) return Status::Ok();
  PGIVM_ASSIGN_OR_RETURN(expr, SubstituteParameters(expr, parameters));
  return Status::Ok();
}

Status SubstituteProps(std::vector<std::pair<std::string, ExprPtr>>& props,
                       const ValueMap& parameters) {
  for (auto& [key, expr] : props) {
    PGIVM_RETURN_IF_ERROR(SubstituteExpr(expr, parameters));
  }
  return Status::Ok();
}

Status SubstitutePart(PatternPart& part, const ValueMap& parameters) {
  PGIVM_RETURN_IF_ERROR(SubstituteProps(part.first.properties, parameters));
  for (auto& [rel, node] : part.chain) {
    PGIVM_RETURN_IF_ERROR(SubstituteProps(rel.properties, parameters));
    PGIVM_RETURN_IF_ERROR(SubstituteProps(node.properties, parameters));
  }
  return Status::Ok();
}

}  // namespace

Status SubstituteQueryParameters(Query& query, const ValueMap& parameters) {
  for (Clause& clause : query.clauses) {
    if (auto* match = std::get_if<MatchClause>(&clause)) {
      for (PatternPart& part : match->parts) {
        PGIVM_RETURN_IF_ERROR(SubstitutePart(part, parameters));
      }
      for (PatternPart& part : match->pattern_predicates) {
        PGIVM_RETURN_IF_ERROR(SubstitutePart(part, parameters));
      }
      PGIVM_RETURN_IF_ERROR(SubstituteExpr(match->where, parameters));
    } else if (auto* unwind = std::get_if<UnwindClause>(&clause)) {
      PGIVM_RETURN_IF_ERROR(SubstituteExpr(unwind->expr, parameters));
    } else if (auto* with = std::get_if<WithClause>(&clause)) {
      for (ReturnItem& item : with->items) {
        PGIVM_RETURN_IF_ERROR(SubstituteExpr(item.expr, parameters));
      }
      PGIVM_RETURN_IF_ERROR(SubstituteExpr(with->where, parameters));
    }
  }
  for (ReturnItem& item : query.return_clause.items) {
    PGIVM_RETURN_IF_ERROR(SubstituteExpr(item.expr, parameters));
  }
  for (auto& [all, part] : query.unions) {
    PGIVM_RETURN_IF_ERROR(SubstituteQueryParameters(*part, parameters));
  }
  return Status::Ok();
}

std::string Query::ToString() const {
  std::ostringstream os;
  for (const Clause& clause : clauses) {
    std::visit([&os](const auto& c) { os << c.ToString() << " "; }, clause);
  }
  os << return_clause.ToString();
  for (const auto& [all, query] : unions) {
    os << (all ? " UNION ALL " : " UNION ") << query->ToString();
  }
  return os.str();
}

}  // namespace pgivm
