#ifndef PGIVM_WORKLOAD_RAILWAY_H_
#define PGIVM_WORKLOAD_RAILWAY_H_

#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "support/rng.h"

namespace pgivm {

/// Train-Benchmark-flavoured railway model generator (paper refs [30, 31]).
///
/// The Train Benchmark measures continuous well-formedness validation: a
/// model with injected faults is repeatedly repaired/re-broken while
/// constraint queries are re-checked. We synthesize the same shape:
///
/// Vertices: (:Route), (:SwitchPosition {position}), (:Switch {position}),
///           (:Sensor), (:Segment {length}), (:Semaphore {signal}).
/// Edges:    (:Route)-[:follows]->(:SwitchPosition),
///           (:SwitchPosition)-[:target]->(:Switch),
///           (:Switch)-[:monitoredBy]->(:Sensor),
///           (:Route)-[:requires]->(:Sensor),
///           (:Route)-[:entry]->(:Semaphore),
///           (:Segment)-[:connectsTo]->(:Segment),
///           (:Sensor)-[:monitors]->(:Segment).
///
/// Faults injected at generation and by the update stream:
///  * PosLength: segments with non-positive length;
///  * SwitchMonitored: switches without a monitoredBy edge;
///  * RouteSensor: a followed switch's sensor missing from the route's
///    requires set;
///  * SwitchSet: switch position differing from the route's prescribed
///    switch position.
struct RailwayConfig {
  int64_t routes = 20;
  int64_t switches_per_route = 5;
  int64_t segments_per_sensor = 3;
  /// Probability that a constraint-relevant element is generated faulty.
  double fault_rate = 0.1;
  uint64_t seed = 7;
};

class RailwayGenerator {
 public:
  explicit RailwayGenerator(const RailwayConfig& config)
      : config_(config), rng_(config.seed) {}

  /// Builds the railway model with injected faults.
  void Populate(PropertyGraph* graph);

  /// Applies one random repair-or-break operation (Train Benchmark's
  /// continuous validation loop). Emits one delta per call, unless the
  /// caller is composing a larger batch (then the changes join it).
  void ApplyRandomUpdate(PropertyGraph* graph);

  /// The well-formedness constraint queries, in the supported fragment.
  /// Each returns the *violations* — ideally empty on a healthy model.
  static std::string PosLengthQuery();
  static std::string SwitchMonitoredQuery();
  static std::string RouteSensorQuery();
  static std::string SwitchSetQuery();

  const std::vector<VertexId>& switches() const { return switches_; }
  const std::vector<VertexId>& segments() const { return segments_; }
  const std::vector<VertexId>& routes() const { return routes_; }
  const std::vector<VertexId>& sensors() const { return sensors_; }

 private:
  RailwayConfig config_;
  Rng rng_;
  std::vector<VertexId> routes_;
  std::vector<VertexId> switches_;
  std::vector<VertexId> switch_positions_;
  std::vector<VertexId> sensors_;
  std::vector<VertexId> segments_;
};

}  // namespace pgivm

#endif  // PGIVM_WORKLOAD_RAILWAY_H_
