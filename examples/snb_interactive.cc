// LDBC-SNB-style interactive driver demo: the scale-factor-parameterized
// read/write mix of workload/snb_driver.h in both of its modes.
//
//  1. Validation: the deterministic operation stream replays
//     single-threaded against the engine under test AND a serial reference
//     engine, with bit-parity checks after every update and periodic
//     EvaluateOnce cross-checks. A divergence prints a one-line
//     PGIVM_REPRO replay recipe.
//  2. Timed: the same stream replays from concurrent client threads
//     against the serving ingest loop, reporting p50/p95/p99 latency per
//     operation class (complex read / short read / update) plus sustained
//     throughput.
//
// Exporting PGIVM_REPRO="seed=...,strategy=...,threads=...,morsel=..."
// (the recipe a parity failure prints) replays exactly that validation
// case instead of the default demo configuration.

#include <cstdio>

#include "workload/snb_driver.h"

int main() {
  using namespace pgivm;

  SnbDriverConfig config;
  config.scale_factor = 0.05;
  config.seed = 42;
  config.operations = 400;
  config.engine.network.propagation = PropagationStrategy::kBatched;

  if (std::optional<ReproSpec> repro = ReproSpec::FromEnv()) {
    std::printf("replaying %s\n", repro->Format().c_str());
    config = SnbDriver::WithRepro(config, *repro);
  }

  {
    SnbDriver driver(config);
    std::printf("== validation mode (sf=%.2f, %lld ops, case %s) ==\n",
                config.scale_factor,
                static_cast<long long>(config.operations),
                driver.ReproCase().Format().c_str());
    Result<SnbReport> report = driver.RunValidation();
    if (!report.ok()) {
      std::fprintf(stderr, "validation FAILED: %s\n",
                   report.status().message().c_str());
      return 1;
    }
    std::printf("%s", report->ToString().c_str());
  }

  {
    SnbDriverConfig timed = config;
    timed.client_threads = 4;
    timed.operations = 2000;
    SnbDriver driver(timed);
    std::printf("== timed mode (sf=%.2f, %lld ops, %d client threads) ==\n",
                timed.scale_factor, static_cast<long long>(timed.operations),
                timed.client_threads);
    Result<SnbReport> report = driver.RunTimed();
    if (!report.ok()) {
      std::fprintf(stderr, "timed run FAILED: %s\n",
                   report.status().message().c_str());
      return 1;
    }
    std::printf("%s", report->ToString().c_str());
  }
  return 0;
}
