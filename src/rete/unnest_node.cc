#include "rete/unnest_node.h"

#include <map>
#include <unordered_map>

#include "rete/sharded_map.h"
#include "support/string_util.h"

namespace pgivm {

void UnnestNode::ExpandInto(
    const Tuple& tuple, int64_t multiplicity,
    std::vector<std::pair<Value, int64_t>>& out) const {
  Value collection = collection_.Eval(tuple);
  if (collection.is_null()) return;  // UNWIND null produces no rows.
  if (collection.is_list()) {
    for (const Value& element : collection.AsList()) {
      out.emplace_back(element, multiplicity);
    }
    return;
  }
  out.emplace_back(std::move(collection), multiplicity);  // Scalar singleton.
}

void UnnestNode::ProcessNaive(const Delta& delta, size_t begin, size_t end,
                              Delta& out) {
  for (size_t i = begin; i < end; ++i) {
    const DeltaEntry& entry = delta[i];
    Tuple kept = entry.tuple.Project(kept_columns_);
    std::vector<std::pair<Value, int64_t>> elements;
    ExpandInto(entry.tuple, entry.multiplicity, elements);
    for (auto& [element, m] : elements) {
      out.push_back({kept.Append(std::move(element)), m});
    }
  }
}

// Fine-grained: fold the batch per kept projection, then emit only the
// net per-element changes. Retract/assert pairs from a collection update
// cancel except for the touched elements. Under morsel delivery the
// partition map routes every entry of one kept projection to the same
// partition, so each fold group is processed whole.
void UnnestNode::ProcessFolded(const Delta& delta, const uint32_t* map,
                               uint32_t partition, Delta& out) {
  std::unordered_map<Tuple, std::map<Value, int64_t>, TupleHash> folded;
  std::vector<Tuple> order;
  for (size_t i = 0; i < delta.size(); ++i) {
    if (map != nullptr && map[i] != partition) continue;
    const DeltaEntry& entry = delta[i];
    Tuple kept = entry.tuple.Project(kept_columns_);
    auto [it, inserted] = folded.emplace(kept, std::map<Value, int64_t>{});
    if (inserted) order.push_back(kept);
    std::vector<std::pair<Value, int64_t>> elements;
    ExpandInto(entry.tuple, entry.multiplicity, elements);
    for (auto& [element, m] : elements) it->second[element] += m;
  }
  for (const Tuple& kept : order) {
    for (const auto& [element, m] : folded[kept]) {
      if (m != 0) out.push_back({kept.Append(element), m});
    }
  }
}

void UnnestNode::OnDelta(int port, const Delta& delta) {
  (void)port;
  Delta out;
  if (!fine_grained_) {
    ProcessNaive(delta, 0, delta.size(), out);
  } else {
    ProcessFolded(delta, /*map=*/nullptr, /*partition=*/0, out);
  }
  Emit(std::move(out));
}

void UnnestNode::MorselPartitionMap(int port, const Delta& delta,
                                    uint32_t partitions, size_t begin,
                                    size_t end, uint32_t* map) const {
  (void)port;
  for (size_t i = begin; i < end; ++i) {
    map[i] = MorselPartitionOfHash(
        delta[i].tuple.HashProjected(kept_columns_), partitions);
  }
}

void UnnestNode::OnDeltaMorsel(int port, const Delta& delta,
                               const uint32_t* map, uint32_t partition,
                               uint32_t partitions, Delta& out) {
  (void)port;
  if (!fine_grained_) {
    const size_t n = delta.size();
    ProcessNaive(delta, n * partition / partitions,
                 n * (partition + 1) / partitions, out);
    return;
  }
  ProcessFolded(delta, map, partition, out);
}

std::string UnnestNode::DebugString() const {
  return StrCat("Unnest[", collection_.expr()->ToString(), "]",
                fine_grained_ ? " (fine-grained)" : "");
}

}  // namespace pgivm
