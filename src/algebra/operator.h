#ifndef PGIVM_ALGEBRA_OPERATOR_H_
#define PGIVM_ALGEBRA_OPERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algebra/schema.h"
#include "cypher/expression.h"
#include "support/status.h"

namespace pgivm {

/// Kinds of logical operators across all three algebra stages of the paper:
///
///   GRA  : kGetVertices (◯), kExpand (↑, incl. transitive), kSelection,
///          kJoin, kProjection, ...
///   NRA  : kExpand is rewritten to kJoin(kGetEdges) / kPathJoin, property
///          access becomes keyed unnest (modelled as extracted columns),
///   FRA  : after property pushdown, leaf operators carry the inferred
///          minimal schema and the plan is flat (no nested evaluation).
enum class OpKind {
  kUnit,          // single empty tuple (base of pattern-free queries)
  kGetVertices,   // ◯(v:Labels) — one tuple per matching vertex
  kGetEdges,      // ⇑(src)-[edge:Types]->(dst) — one tuple per edge
  kExpand,        // ↑ GRA navigation, removed by the expand-to-join pass
  kPathJoin,      // ./* transitive join producing (dst, optional path)
  kSelection,     // σ predicate
  kProjection,    // π named expressions
  kJoin,          // ⋈ natural join on shared column names
  kLeftOuterJoin, // for OPTIONAL MATCH
  kAntiJoin,      // ▷ left rows with no partner (used to build outer join)
  kSemiJoin,      // ⋉ left rows with at least one partner (exists patterns)
  kUnion,         // bag union (schemas matched by name)
  kDistinct,      // bag → set
  kAggregate,     // γ group-by + aggregate functions
  kUnnest,        // μ one row per element of a collection expression
  kProduce,       // root: final named columns of the view
};

const char* OpKindName(OpKind kind);

/// A property/metadata extraction pushed down into a leaf operator — the
/// paper's `{lang → pL}` annotation produced by minimal schema inference.
struct PropertyExtract {
  enum class What {
    kProperty,     // element_var.key
    kLabels,       // labels(v) as a list of strings
    kType,         // type(e)
    kPropertyMap,  // properties(x) — the full map (also the naive-plan mode)
  };

  What what = What::kProperty;
  std::string element_var;  // leaf column holding the vertex/edge
  std::string key;          // property key (kProperty only)
  std::string column_name;  // generated output column (e.g. "#p.lang")

  std::string ToString() const;

  friend bool operator==(const PropertyExtract& a, const PropertyExtract& b) {
    return a.what == b.what && a.element_var == b.element_var &&
           a.key == b.key && a.column_name == b.column_name;
  }
};

struct LogicalOp;
using OpPtr = std::shared_ptr<LogicalOp>;

enum class EdgeDirection { kOut, kIn, kBoth };

/// One node of the logical plan. A tagged struct (rather than a class
/// hierarchy) so rewrite passes can clone and edit nodes freely; only the
/// fields relevant to `kind` are meaningful.
struct LogicalOp {
  OpKind kind;
  std::vector<OpPtr> children;

  /// Output schema; filled in by ComputeSchemas.
  Schema schema;

  // kGetVertices
  std::string vertex_var;
  std::vector<std::string> labels;

  // kGetEdges / kExpand / kPathJoin
  std::string src_var;
  std::string edge_var;  // empty for kPathJoin (edges are inside the path)
  std::string dst_var;
  std::vector<std::string> edge_types;  // empty = any type
  EdgeDirection direction = EdgeDirection::kOut;

  // kExpand / kPathJoin variable-length parameters.
  bool variable_length = false;
  int64_t min_hops = 1;
  int64_t max_hops = -1;  // -1 = unbounded
  std::string path_var;   // non-empty: emit the traversed path as a column

  // kGetVertices / kGetEdges: extracted columns (after property pushdown).
  std::vector<PropertyExtract> extracts;

  // kSelection
  ExprPtr predicate;

  // kProjection / kProduce: output columns.
  std::vector<std::pair<std::string, ExprPtr>> projections;

  // kAggregate
  std::vector<std::pair<std::string, ExprPtr>> group_by;
  std::vector<std::pair<std::string, ExprPtr>> aggregates;

  // kUnnest
  ExprPtr unnest_expr;
  std::string unnest_alias;
  /// Input columns excluded from the unnest output (they exist only to feed
  /// unnest_expr). Dropping the collection column is what makes fine-grained
  /// element-level maintenance (FGN) possible downstream.
  std::vector<std::string> unnest_drop_columns;

  /// One-line description (without children), e.g. "GetVertices p:Post
  /// {lang -> #p.lang}".
  std::string DebugString() const;
};

OpPtr MakeOp(OpKind kind, std::vector<OpPtr> children = {});

/// Deep-copies the operator tree (expressions are shared, they are
/// immutable).
OpPtr CloneTree(const OpPtr& op);

/// Recomputes `schema` for every node bottom-up, validating variable
/// references (join keys present, selection/projection inputs bound, ...).
/// Must be re-run after any structural rewrite.
Status ComputeSchemas(const OpPtr& root);

/// Recomputes `op->schema` from its *children's* schemas, which must
/// already be valid — the single-node step of ComputeSchemas. Rewrite
/// passes that rebuild trees bottom-up (e.g. canonicalization) call this
/// per node instead of re-walking whole subtrees.
Status ComputeSchemaShallow(const OpPtr& op);

/// Collects every node of the tree in post-order (children before parents).
void CollectPostOrder(const OpPtr& root, std::vector<OpPtr>& out);

/// Deep structural equality of two plans: operator kinds, every parameter
/// (variables, labels/types, hop bounds, extracts), expressions
/// (Expression::Equal) and children. Schemas are derived state and are not
/// compared. Two queries whose plans are PlanEqual after canonicalization
/// lower to byte-identical Rete networks.
bool PlanEqual(const OpPtr& a, const OpPtr& b);

/// Structural hash consistent with PlanEqual.
size_t PlanHash(const OpPtr& op);

}  // namespace pgivm

#endif  // PGIVM_ALGEBRA_OPERATOR_H_
