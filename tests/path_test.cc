#include "value/path.h"

#include <gtest/gtest.h>

namespace pgivm {
namespace {

TEST(PathTest, SingleVertexPath) {
  Path p = Path::Single(5);
  EXPECT_EQ(p.length(), 0u);
  EXPECT_EQ(p.source(), 5);
  EXPECT_EQ(p.target(), 5);
  EXPECT_TRUE(p.ContainsVertex(5));
  EXPECT_FALSE(p.ContainsEdge(0));
}

TEST(PathTest, MultiHopAccessors) {
  Path p({1, 2, 3}, {10, 11});
  EXPECT_EQ(p.length(), 2u);
  EXPECT_EQ(p.source(), 1);
  EXPECT_EQ(p.target(), 3);
  EXPECT_TRUE(p.ContainsEdge(10));
  EXPECT_TRUE(p.ContainsEdge(11));
  EXPECT_FALSE(p.ContainsEdge(12));
  EXPECT_TRUE(p.ContainsVertex(2));
  EXPECT_FALSE(p.ContainsVertex(4));
}

TEST(PathTest, ExtendedCreatesNewPath) {
  Path p = Path::Single(1);
  Path q = p.Extended(10, 2);
  EXPECT_EQ(p.length(), 0u);  // Original untouched (paths are atomic).
  EXPECT_EQ(q.length(), 1u);
  EXPECT_EQ(q.target(), 2);
  EXPECT_TRUE(q.ContainsEdge(10));
}

TEST(PathTest, EqualityAndHash) {
  Path a({1, 2}, {7});
  Path b({1, 2}, {7});
  Path c({1, 2}, {8});  // Same vertices, different edge.
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
}

TEST(PathTest, CompareByLengthThenContent) {
  Path shorter = Path::Single(9);
  Path longer({1, 2}, {0});
  EXPECT_LT(Path::Compare(shorter, longer), 0);
  EXPECT_GT(Path::Compare(longer, shorter), 0);
  EXPECT_EQ(Path::Compare(longer, longer), 0);

  Path a({1, 2}, {0});
  Path b({1, 3}, {0});
  EXPECT_LT(Path::Compare(a, b), 0);
}

TEST(PathTest, ToStringShowsAlternatingSequence) {
  Path p({1, 2, 3}, {10, 11});
  EXPECT_EQ(p.ToString(), "<1-[e10]->2-[e11]->3>");
}

}  // namespace
}  // namespace pgivm
