#include "engine/query_engine.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "algebra/compiler.h"
#include "algebra/plan_fingerprint.h"
#include "algebra/plan_printer.h"
#include "baseline/baseline_evaluator.h"
#include "cypher/parser.h"
#include "support/bounded_queue.h"
#include "support/string_util.h"

namespace pgivm {

/// Queue and thread of one ingest session. Volume counters live on the
/// engine itself (ingest_mutations_done_/ingest_batches_done_), not here:
/// any thread may poll them mid-session, and the session object dies in
/// StopIngest while pollers are still reading.
struct QueryEngine::Ingest {
  /// One queued mutation plus its enqueue timestamp. The timestamp is
  /// stamped only while profiling is on (0 otherwise), so SubmitAsync
  /// stays clock-free when observability is off; when on, the ingest
  /// thread turns it into the "ingest.commit_latency_ns" histogram — the
  /// submitter-visible enqueue-to-commit serving latency.
  struct Item {
    GraphMutation fn;
    int64_t enqueue_ns = 0;
  };

  explicit Ingest(size_t depth) : queue(depth) {}

  BoundedQueue<Item> queue;
  std::thread thread;
};

QueryEngine::QueryEngine(PropertyGraph* graph, EngineOptions options)
    : graph_(graph),
      options_(std::move(options)),
      catalog_(ViewCatalog::Create(graph, options_.network,
                                   options_.catalog)) {}

QueryEngine::~QueryEngine() { StopIngest(); }

void QueryEngine::StartIngest() {
  if (ingest_ != nullptr) return;
  size_t depth = options_.ingest_queue_depth < 1 ? 1
                                                 : options_.ingest_queue_depth;
  ingest_ = std::make_unique<Ingest>(depth);
  if (ingest_trace_ == nullptr) {
    ingest_trace_ =
        std::make_unique<TraceBuffer>(options_.network.trace_capacity);
  }
  Ingest* ingest = ingest_.get();
  PropertyGraph* graph = graph_;
  // Instruments are resolved once here so the loop records lock-free; the
  // profiling flag itself is re-read per batch (runtime-toggleable).
  const std::atomic<bool>* prof_flag = catalog_->profiling_flag();
  MetricsRegistry& metrics = catalog_->metrics();
  LatencyHistogram* h_commit =
      &metrics.GetHistogram("ingest.commit_latency_ns");
  LatencyHistogram* h_apply = &metrics.GetHistogram("ingest.batch_apply_ns");
  LatencyHistogram* h_size = &metrics.GetHistogram("ingest.batch_mutations");
  TraceBuffer* trace = ingest_trace_.get();
  std::atomic<int64_t>* mutations_done = &ingest_mutations_done_;
  std::atomic<int64_t>* batches_done = &ingest_batches_done_;
  ingest->thread = std::thread([ingest, graph, prof_flag, h_commit, h_apply,
                                h_size, trace, mutations_done, batches_done] {
    std::vector<Ingest::Item> batch;
    // PopAll blocks until work arrives and hands over *everything* queued:
    // submissions that piled up while the previous batch propagated are
    // coalesced into one graph delta — one drain, one committed epoch —
    // instead of one drain each.
    while (ingest->queue.PopAll(batch) > 0) {
      const bool prof = prof_flag->load(std::memory_order_relaxed);
      const int64_t start_ns = prof ? MonotonicNowNs() : 0;
      graph->BeginBatch();
      for (Ingest::Item& item : batch) item.fn(*graph);
      graph->CommitBatch();
      if (prof) {
        // CommitBatch returned, so the batch's propagation drain has run
        // and its epoch is published: end-start is apply+drain+publish,
        // end-enqueue the submitter-visible commit latency.
        const int64_t end_ns = MonotonicNowNs();
        h_apply->Record(end_ns - start_ns);
        h_size->Record(static_cast<int64_t>(batch.size()));
        for (const Ingest::Item& item : batch) {
          if (item.enqueue_ns > 0) h_commit->Record(end_ns - item.enqueue_ns);
        }
        TraceEvent event;
        event.name = "ingest.batch";
        event.category = "ingest";
        event.start_ns = start_ns;
        event.dur_ns = end_ns - start_ns;
        event.tid = 3;
        event.args = StrCat("\"mutations\":", batch.size());
        trace->Append(std::move(event));
      }
      mutations_done->fetch_add(static_cast<int64_t>(batch.size()),
                                std::memory_order_relaxed);
      batches_done->fetch_add(1, std::memory_order_relaxed);
      batch.clear();
    }
  });
}

void QueryEngine::StopIngest() {
  if (ingest_ == nullptr) return;
  ingest_->queue.Close();  // drains what is queued, then the loop exits
  if (ingest_->thread.joinable()) ingest_->thread.join();
  ingest_.reset();
}

bool QueryEngine::SubmitAsync(GraphMutation mutation) {
  if (ingest_ == nullptr || mutation == nullptr) return false;
  Ingest::Item item;
  item.fn = std::move(mutation);
  if (catalog_->profiling()) item.enqueue_ns = MonotonicNowNs();
  return ingest_->queue.Push(std::move(item));
}

int64_t QueryEngine::ingest_mutations() const {
  return ingest_mutations_done_.load(std::memory_order_relaxed);
}

int64_t QueryEngine::ingest_batches() const {
  return ingest_batches_done_.load(std::memory_order_relaxed);
}

namespace {

Result<Query> ParseAndBind(std::string_view cypher,
                           const ValueMap& parameters) {
  PGIVM_ASSIGN_OR_RETURN(Query query, ParseQuery(cypher));
  PGIVM_RETURN_IF_ERROR(SubstituteQueryParameters(query, parameters));
  return query;
}

void ApplySkipLimit(std::vector<Tuple>& rows, int64_t skip, int64_t limit) {
  if (skip > 0) {
    size_t drop = std::min<size_t>(static_cast<size_t>(skip), rows.size());
    rows.erase(rows.begin(), rows.begin() + static_cast<ptrdiff_t>(drop));
  }
  if (limit >= 0 && rows.size() > static_cast<size_t>(limit)) {
    rows.resize(static_cast<size_t>(limit));
  }
}

}  // namespace

Result<std::shared_ptr<View>> QueryEngine::Register(
    std::string_view cypher, const ValueMap& parameters) {
  PGIVM_ASSIGN_OR_RETURN(Query query, ParseAndBind(cypher, parameters));
  PGIVM_ASSIGN_OR_RETURN(OpPtr gra, CompileToGra(query));
  PGIVM_ASSIGN_OR_RETURN(OpPtr fra, LowerToFra(gra, options_.plan));
  return catalog_->Install(std::string(cypher), std::move(gra),
                           std::move(fra), query.return_clause.skip,
                           query.return_clause.limit);
}

Result<std::vector<Tuple>> QueryEngine::EvaluateOnce(
    std::string_view cypher, const ValueMap& parameters) const {
  PGIVM_ASSIGN_OR_RETURN(Query query, ParseAndBind(cypher, parameters));
  PGIVM_ASSIGN_OR_RETURN(OpPtr gra, CompileToGra(query));
  PGIVM_ASSIGN_OR_RETURN(OpPtr fra, LowerToFra(gra, options_.plan));
  BaselineEvaluator evaluator(graph_);
  PGIVM_ASSIGN_OR_RETURN(Bag bag, evaluator.Evaluate(fra));
  std::vector<Tuple> rows = BaselineEvaluator::SortedRows(bag);
  ApplySkipLimit(rows, query.return_clause.skip, query.return_clause.limit);
  return rows;
}

Result<OpPtr> QueryEngine::Compile(std::string_view cypher,
                                   const ValueMap& parameters) const {
  PGIVM_ASSIGN_OR_RETURN(Query query, ParseAndBind(cypher, parameters));
  PGIVM_ASSIGN_OR_RETURN(OpPtr gra, CompileToGra(query));
  return LowerToFra(gra, options_.plan);
}

Result<std::string> QueryEngine::Explain(std::string_view cypher,
                                         const ValueMap& parameters) const {
  PGIVM_ASSIGN_OR_RETURN(Query query, ParseAndBind(cypher, parameters));
  PGIVM_ASSIGN_OR_RETURN(OpPtr gra, CompileToGra(query));
  PGIVM_ASSIGN_OR_RETURN(OpPtr fra, LowerToFra(gra, options_.plan));
  // The FRA dump carries each operator's canonical fingerprint — the key
  // the catalog's NodeRegistry shares by — so comparing two Explain
  // outputs shows exactly which sub-plans two views would share and where
  // sharing stops.
  PlanPrintOptions fra_print;
  fra_print.fingerprints = true;
  return StrCat("GRA (paper step 1):\n", PrintPlan(gra),
                "\nFRA (after steps 2-3):\n", PrintPlan(fra, fra_print));
}

namespace {

/// The per-operator EXPLAIN ANALYZE annotation: live statistics of the
/// Rete node the operator resolved to. Counts come from the node's
/// NodeProfile (populated while profiling is on — for the probe view that
/// covers at least its priming propagation) plus the lifetime emitted
/// total and current memory footprint.
std::string NodeStatsAnnotation(const ReteNode& node) {
  const NodeProfile& profile = node.profile();
  return StrCat(
      "[", node.KindName(), " entries=", node.emitted_entries(),
      " in=", profile.input_entries.load(std::memory_order_relaxed),
      " out=", profile.output_entries.load(std::memory_order_relaxed),
      " act=", profile.activations.load(std::memory_order_relaxed),
      " mem=", node.ApproxMemoryBytes(), "B time=",
      profile.busy_ns.load(std::memory_order_relaxed) / 1000, "us]");
}

}  // namespace

Result<std::string> QueryEngine::ExplainAnalyze(std::string_view cypher,
                                                const ValueMap& parameters) {
  const bool was_profiling = catalog_->profiling();
  if (!was_profiling) catalog_->SetProfiling(true);
  Result<std::shared_ptr<View>> probe = Register(cypher, parameters);
  if (!probe.ok()) {
    if (!was_profiling) catalog_->SetProfiling(false);
    return probe.status();
  }
  const View& view = **probe;
  const bool sharing = catalog_->sharing();
  PlanPrintOptions print;
  print.fingerprints = true;
  print.annotate = [this, &view, sharing](const LogicalOp& op) {
    const ReteNode* node = nullptr;
    if (op.kind == OpKind::kProduce) {
      // Productions are never shared, so the probe's own root is the
      // operator's node; it is also absent from the sharing registry.
      node = view.production_;
    } else if (sharing) {
      const std::string key = CanonicalPlanKey(op);
      if (!key.empty()) node = catalog_->FindNodeByFingerprint(key);
    }
    return node == nullptr ? std::string() : NodeStatsAnnotation(*node);
  };
  const ReteNetwork::PrimeStats& prime = view.prime_stats();
  const EngineMetricsSnapshot metrics = MetricsSnapshot();
  std::string report = StrCat(
      "EXPLAIN ANALYZE ", view.query(), "\n",
      PrintPlan(view.fra_plan(), print),
      sharing ? ""
              : "(operator-state sharing disabled: only the production "
                "root resolves to a live node)\n",
      "prime: replayed=", prime.replayed_entries,
      " graph=", prime.graph_primed_entries,
      " fresh_nodes=", prime.fresh_nodes, "\n",
      "catalog: ", catalog_->Stats().ToString(), "\n",
      "propagation: parallel_waves=", metrics.parallel_waves_dispatched,
      " morsel_waves=", metrics.morsel_waves_dispatched, "\n");
  // Deregister the probe view (refcounts restore; siblings untouched),
  // then restore the profiling flag.
  probe->reset();
  if (!was_profiling) catalog_->SetProfiling(false);
  return report;
}

EngineMetricsSnapshot QueryEngine::MetricsSnapshot() const {
  EngineMetricsSnapshot snap;
  snap.catalog = catalog_->Stats();
  snap.last_prime = catalog_->last_prime_stats();
  for (const ReteNetwork* network : catalog_->Networks()) {
    snap.deltas_processed += network->deltas_processed();
    snap.changes_processed += network->changes_processed();
    snap.total_emitted_entries += network->TotalEmittedEntries();
    snap.source_emitted_entries += network->SourceEmittedEntries();
    snap.parallel_waves_dispatched += network->parallel_waves_dispatched();
    snap.morsel_waves_dispatched += network->morsel_waves_dispatched();
    snap.epochs_published += network->epochs_published();
    snap.commit_epoch = std::max(snap.commit_epoch, network->commit_epoch());
    std::vector<ReteNetwork::NodeMetrics> nodes =
        network->NodeMetricsSnapshot();
    snap.nodes.insert(snap.nodes.end(),
                      std::make_move_iterator(nodes.begin()),
                      std::make_move_iterator(nodes.end()));
  }
  snap.ingest_mutations = ingest_mutations();
  snap.ingest_batches = ingest_batches();
  snap.ingest_running = ingest_running();
  snap.profiling = catalog_->profiling();
  snap.counters = catalog_->metrics().CounterValues();
  snap.histograms = catalog_->metrics().HistogramValues();
  return snap;
}

const int64_t* EngineMetricsSnapshot::FindCounter(std::string_view name) const {
  auto it = std::lower_bound(
      counters.begin(), counters.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it == counters.end() || it->first != name) return nullptr;
  return &it->second;
}

const HistogramSnapshot* EngineMetricsSnapshot::FindHistogram(
    std::string_view name) const {
  auto it = std::lower_bound(
      histograms.begin(), histograms.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (it == histograms.end() || it->first != name) return nullptr;
  return &it->second;
}

std::string EngineMetricsSnapshot::ToString() const {
  std::ostringstream os;
  os << "catalog: " << catalog.ToString() << "\n";
  os << "propagation: deltas=" << deltas_processed
     << " changes=" << changes_processed
     << " emitted=" << total_emitted_entries
     << " source_emitted=" << source_emitted_entries
     << " parallel_waves=" << parallel_waves_dispatched
     << " morsel_waves=" << morsel_waves_dispatched
     << " epoch=" << commit_epoch
     << " epochs_published=" << epochs_published << "\n";
  os << "ingest: mutations=" << ingest_mutations
     << " batches=" << ingest_batches
     << " running=" << (ingest_running ? "yes" : "no") << "\n";
  os << "profiling: " << (profiling ? "on" : "off") << "\n";
  for (const auto& [name, value] : counters) {
    os << "counter " << name << " = " << value << "\n";
  }
  for (const auto& [name, hist] : histograms) {
    if (hist.count == 0) continue;
    os << "hist " << name << ": count=" << hist.count
       << " mean=" << static_cast<int64_t>(hist.Mean())
       << " p50=" << hist.P50() << " p95=" << hist.P95()
       << " p99=" << hist.P99() << " max=" << hist.max << "\n";
  }
  if (profiling) {
    for (const ReteNetwork::NodeMetrics& node : nodes) {
      os << "node " << node.name << " kind=" << node.kind
         << " level=" << node.level << " emitted=" << node.emitted_entries
         << " act=" << node.activations << " in=" << node.input_entries
         << " out=" << node.output_entries << " busy_ns=" << node.busy_ns
         << " mem=" << node.memory_bytes << "B\n";
    }
  }
  return os.str();
}

Status QueryEngine::DumpTrace(const std::string& path) const {
  std::vector<const TraceBuffer*> buffers;
  for (const ReteNetwork* network : catalog_->Networks()) {
    buffers.push_back(network->trace());  // null when never profiled
  }
  buffers.push_back(ingest_trace_.get());
  return WriteChromeTrace(path, buffers);
}

}  // namespace pgivm
