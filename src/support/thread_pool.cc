#include "support/thread_pool.h"

namespace pgivm {

namespace {

/// How long waiters spin before falling back to the condition variable.
/// Batched propagation dispatches a region every few microseconds while a
/// delta is in flight; a short spin catches the next region (or the last
/// straggler) without a sleep/wake round trip, while idle networks still
/// park their workers.
constexpr int kSpinIterations = 8192;

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

int ThreadPool::ResolveThreadCount(int num_threads) {
  if (num_threads > 0) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  unsigned hw = std::thread::hardware_concurrency();
  spin_iterations_ =
      (hw != 0 && static_cast<unsigned>(threads) <= hw) ? kSpinIterations : 0;
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_.store(true, std::memory_order_relaxed);
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Drain() {
  for (;;) {
    size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    (*task_)(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    // Fast path: the next region usually arrives within the spin window.
    bool dispatched = false;
    for (int spin = 0; spin < spin_iterations_; ++spin) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      if (generation_.load(std::memory_order_acquire) != seen) {
        dispatched = true;
        break;
      }
      CpuRelax();
    }
    if (!dispatched) {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stopping_.load(std::memory_order_relaxed) ||
               generation_.load(std::memory_order_acquire) != seen;
      });
      if (stopping_.load(std::memory_order_relaxed)) return;
    }
    seen = generation_.load(std::memory_order_acquire);
    Drain();
    if (active_workers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last straggler: wake Run() if it gave up spinning. The empty
      // critical section orders the notify after Run() starts waiting.
      { std::lock_guard<std::mutex> lock(mu_); }
      done_cv_.notify_one();
    }
  }
}

void ThreadPool::Run(size_t n, const std::function<void(size_t)>& task) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Serial degenerate case: no cursor, no wakeups.
    for (size_t i = 0; i < n; ++i) task(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    n_ = n;
    task_ = &task;
    next_.store(0, std::memory_order_relaxed);
    active_workers_.store(static_cast<int>(workers_.size()),
                          std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
  }
  work_cv_.notify_all();
  Drain();  // the calling thread claims tasks too
  for (int spin = 0; spin < spin_iterations_; ++spin) {
    if (active_workers_.load(std::memory_order_acquire) == 0) {
      task_ = nullptr;
      return;
    }
    CpuRelax();
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return active_workers_.load(std::memory_order_acquire) == 0;
  });
  task_ = nullptr;
}

}  // namespace pgivm
