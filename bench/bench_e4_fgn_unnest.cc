// E4 — FGN: fine-grained maintenance of nested collections.
//
// A view unnests a collection-valued property (UNWIND). One element is
// appended and removed per update. With fine-grained unnest (the paper's
// FGN property) the propagated delta is O(1) in the collection size; the
// naive mode retracts and re-asserts every element, O(n).
//
// Two benchmark families:
//  * the plain view reports `prop_entries` — delta entries propagated per
//    update (the direct FGN metric: flat for fine, linear for naive);
//  * the amplified view joins the unnested elements against a topic table,
//    so every propagated entry pays real downstream work and the entry gap
//    becomes a wall-clock gap.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "engine/query_engine.h"

namespace pgivm {
namespace {

constexpr char kPlainQuery[] =
    "MATCH (u:Person) UNWIND u.speaks AS lang "
    "RETURN lang, count(*) AS speakers";

constexpr char kAmplifiedQuery[] =
    "MATCH (u:Person) UNWIND u.speaks AS lang "
    "MATCH (t:Topic) WHERE t.lang = lang "
    "RETURN t AS topic, count(*) AS reach";

void RunCollectionChurn(benchmark::State& state, bool fine_grained,
                        bool amplified) {
  EngineOptions options;
  options.network.fine_grained_unnest = fine_grained;
  options.plan.narrow_unnest_outputs = fine_grained;

  PropertyGraph graph;
  int64_t collection_size = state.range(0);
  ValueList langs;
  for (int64_t i = 0; i < collection_size; ++i) {
    langs.push_back(Value::String("lang" + std::to_string(i)));
  }
  VertexId person =
      graph.AddVertex({"Person"}, {{"speaks", Value::List(langs)}});
  if (amplified) {
    // Topic table: one topic per language plus extras.
    for (int64_t i = 0; i < collection_size + 8; ++i) {
      graph.AddVertex({"Topic"},
                      {{"lang", Value::String("lang" + std::to_string(i))}});
    }
  }

  QueryEngine engine(&graph, options);
  auto view =
      engine.Register(amplified ? kAmplifiedQuery : kPlainQuery).value();

  int64_t entries_before = view->network().TotalEmittedEntries();
  for (auto _ : state) {
    (void)graph.ListAppend(person, "speaks", Value::String("extra"));
    (void)graph.ListRemoveFirst(person, "speaks", Value::String("extra"));
  }
  int64_t entries = view->network().TotalEmittedEntries() - entries_before;
  state.counters["collection"] = static_cast<double>(collection_size);
  state.counters["prop_entries"] =
      benchmark::Counter(static_cast<double>(entries),
                         benchmark::Counter::kAvgIterations);
  state.counters["rows"] = static_cast<double>(view->size());
}

void BM_E4_FineGrained(benchmark::State& state) {
  RunCollectionChurn(state, /*fine_grained=*/true, /*amplified=*/false);
}
BENCHMARK(BM_E4_FineGrained)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Iterations(500);

void BM_E4_Naive(benchmark::State& state) {
  RunCollectionChurn(state, /*fine_grained=*/false, /*amplified=*/false);
}
BENCHMARK(BM_E4_Naive)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Iterations(500);

void BM_E4_FineGrainedJoined(benchmark::State& state) {
  RunCollectionChurn(state, /*fine_grained=*/true, /*amplified=*/true);
}
BENCHMARK(BM_E4_FineGrainedJoined)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Iterations(100);

void BM_E4_NaiveJoined(benchmark::State& state) {
  RunCollectionChurn(state, /*fine_grained=*/false, /*amplified=*/true);
}
BENCHMARK(BM_E4_NaiveJoined)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Iterations(100);

}  // namespace
}  // namespace pgivm

PGIVM_BENCHMARK_MAIN();
