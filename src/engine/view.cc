#include "engine/view.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "catalog/view_catalog.h"

namespace pgivm {

View::~View() {
  if (catalog_) catalog_->Deregister(this);
  // An owned (unshared-mode) network detaches in its own destructor.
  // ViewSnapshots readers pinned stay valid: they own their epoch.
}

std::shared_ptr<const ViewSnapshot> View::Pin() const {
  // Profiling-off keeps this path free of clock reads: one relaxed bool
  // load is the entire overhead.
  const bool prof = profiling_flag_ != nullptr &&
                    profiling_flag_->load(std::memory_order_relaxed);
  const int64_t start_ns = prof ? MonotonicNowNs() : 0;
  ProductionNode::EpochPtr epoch = production_->PinSnapshot();
  std::shared_ptr<const ViewSnapshot> cached =
      std::atomic_load_explicit(&cache_, std::memory_order_acquire);
  if (cached != nullptr && cached->source_ == epoch) {
    if (prof) pin_hist_->Record(MonotonicNowNs() - start_ns);
    return cached;
  }

  // First reader of this epoch (or a racing peer — benign, see header):
  // build the immutable rendering and swap it in for later pins.
  auto built = std::make_shared<ViewSnapshot>();
  std::vector<Tuple> rows = ProductionNode::SortedRows(epoch->results);
  if (skip_ > 0) {
    size_t drop = std::min<size_t>(static_cast<size_t>(skip_), rows.size());
    rows.erase(rows.begin(), rows.begin() + static_cast<ptrdiff_t>(drop));
  }
  if (limit_ >= 0 && rows.size() > static_cast<size_t>(limit_)) {
    rows.resize(static_cast<size_t>(limit_));
  }
  built->source_ = std::move(epoch);
  built->rows_ = std::move(rows);
  std::shared_ptr<const ViewSnapshot> result = std::move(built);
  std::atomic_store_explicit(&cache_, result, std::memory_order_release);
  if (prof) pin_hist_->Record(MonotonicNowNs() - start_ns);
  return result;
}

std::shared_ptr<const Bag> View::results() const {
  ProductionNode::EpochPtr epoch = production_->PinSnapshot();
  const Bag* bag = &epoch->results;
  // Aliasing constructor: the returned pointer keeps the whole epoch alive.
  return std::shared_ptr<const Bag>(std::move(epoch), bag);
}

size_t View::ApproxMemoryBytes() const {
  if (catalog_) return catalog_->ViewMemoryBytes(this);
  return network_ != nullptr ? network_->ApproxMemoryBytes() : 0;
}

}  // namespace pgivm
