#include "rete/join_node.h"

#include "support/string_util.h"

namespace pgivm {

JoinLayout JoinLayout::Make(const Schema& left, const Schema& right) {
  JoinLayout layout;
  for (size_t i = 0; i < left.size(); ++i) {
    int r = right.IndexOf(left.at(i).name);
    if (r >= 0) {
      layout.left_key.push_back(static_cast<int>(i));
      layout.right_key.push_back(r);
    }
  }
  for (size_t i = 0; i < right.size(); ++i) {
    if (!left.Contains(right.at(i).name)) {
      layout.right_rest.push_back(static_cast<int>(i));
    }
  }
  return layout;
}

JoinNode::JoinNode(Schema schema, const Schema& left, const Schema& right)
    : ReteNode(std::move(schema)), layout_(JoinLayout::Make(left, right)) {}

void JoinNode::Apply(Memory& memory, const Tuple& key, const Tuple& tuple,
                     int64_t multiplicity) {
  Memory::Map& map = memory.shard(key);
  Bag& bag = map[key];
  bag.Apply(tuple, multiplicity);
  if (bag.total_count() == 0) map.erase(key);
}

Tuple JoinNode::Combine(const Tuple& left, const Tuple& right) const {
  return left.ConcatProjected(right, layout_.right_rest);
}

void JoinNode::ProcessEntries(int port, const Delta& delta,
                              const uint32_t* map, uint32_t partition,
                              Delta& out) {
  for (size_t i = 0; i < delta.size(); ++i) {
    if (map != nullptr && map[i] != partition) continue;
    const DeltaEntry& entry = delta[i];
    if (port == 0) {
      Tuple key = entry.tuple.Project(layout_.left_key);
      Apply(left_memory_, key, entry.tuple, entry.multiplicity);
      const Bag* matches = right_memory_.Find(key);
      if (matches == nullptr) continue;
      for (const auto& [right_tuple, right_count] : matches->counts()) {
        out.push_back({Combine(entry.tuple, right_tuple),
                       entry.multiplicity * right_count});
      }
    } else {
      Tuple key = entry.tuple.Project(layout_.right_key);
      Apply(right_memory_, key, entry.tuple, entry.multiplicity);
      const Bag* matches = left_memory_.Find(key);
      if (matches == nullptr) continue;
      for (const auto& [left_tuple, left_count] : matches->counts()) {
        out.push_back({Combine(left_tuple, entry.tuple),
                       entry.multiplicity * left_count});
      }
    }
  }
}

void JoinNode::OnDelta(int port, const Delta& delta) {
  Delta out;
  ProcessEntries(port, delta, /*map=*/nullptr, /*partition=*/0, out);
  Emit(std::move(out));
}

void JoinNode::MorselPartitionMap(int port, const Delta& delta,
                                  uint32_t partitions, size_t begin,
                                  size_t end, uint32_t* map) const {
  const std::vector<int>& key =
      port == 0 ? layout_.left_key : layout_.right_key;
  for (size_t i = begin; i < end; ++i) {
    map[i] = MorselPartitionOfHash(delta[i].tuple.HashProjected(key),
                                   partitions);
  }
}

void JoinNode::OnDeltaMorsel(int port, const Delta& delta,
                             const uint32_t* map, uint32_t partition,
                             uint32_t partitions, Delta& out) {
  (void)partitions;
  ProcessEntries(port, delta, map, partition, out);
}

bool JoinNode::ReplayOutput(Delta& out) const {
  left_memory_.ForEach([&](const Tuple& key, const Bag& left_bag) {
    const Bag* right_bag = right_memory_.Find(key);
    if (right_bag == nullptr) return;
    for (const auto& [left_tuple, left_count] : left_bag.counts()) {
      for (const auto& [right_tuple, right_count] : right_bag->counts()) {
        out.push_back(
            {Combine(left_tuple, right_tuple), left_count * right_count});
      }
    }
  });
  return true;
}

size_t JoinNode::ApproxMemoryBytes() const {
  size_t bytes = 0;
  left_memory_.ForEach([&](const Tuple& key, const Bag& bag) {
    bytes += sizeof(Tuple) + key.size() * sizeof(Value);
    bytes += bag.ApproxMemoryBytes();
  });
  right_memory_.ForEach([&](const Tuple& key, const Bag& bag) {
    bytes += sizeof(Tuple) + key.size() * sizeof(Value);
    bytes += bag.ApproxMemoryBytes();
  });
  return bytes;
}

std::string JoinNode::DebugString() const {
  return StrCat("Join[", layout_.left_key.size(), " keys]");
}

}  // namespace pgivm
