#ifndef PGIVM_GRAPH_SYMBOL_TABLE_H_
#define PGIVM_GRAPH_SYMBOL_TABLE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace pgivm {

/// Dense id of a name (label, edge type, or property key) interned in one
/// PropertyGraph's SymbolTable. Ids are assigned in first-intern order and
/// never reused or reassigned, so they are stable for the graph's lifetime —
/// but they depend on mutation order and are meaningful only within their
/// own graph. Anything that must be reproducible across graphs or processes
/// (fingerprints, serialized output, change records) goes through
/// SymbolTable::Name and compares strings, never ids.
using SymbolId = uint32_t;

/// "Not interned" sentinel: returned by SymbolRef::Resolve on a miss and
/// used as the unset value everywhere a SymbolId is stored lazily.
inline constexpr SymbolId kNoSymbol = 0xFFFFFFFFu;

/// Append-only intern table mapping names to dense SymbolIds. Labels, edge
/// types, and property keys share one namespace (a graph has few enough
/// distinct names that separate tables would only complicate callers).
///
/// Thread-compatibility mirrors PropertyGraph: const methods (Lookup, Name,
/// size) are safe to call concurrently; Intern mutates and requires the
/// same external single-writer synchronization as graph mutations.
class SymbolTable {
 public:
  SymbolTable() = default;

  // Not copyable: lookups hold string_views into names_.
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id of `name`, interning it on first sight. Idempotent:
  /// re-interning an existing name returns its original id.
  SymbolId Intern(std::string_view name);

  /// Id of `name` if it has ever been interned. Allocation-free (the index
  /// is keyed by string_view), so it is safe on per-tuple paths.
  std::optional<SymbolId> Lookup(std::string_view name) const;

  /// The interned spelling of `id`. The reference stays valid for the
  /// table's lifetime: names live in a deque, so growth never moves them.
  const std::string& Name(SymbolId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

  size_t ApproxMemoryBytes() const;

 private:
  std::deque<std::string> names_;
  // Keys are views into names_; deque growth never invalidates them.
  std::unordered_map<std::string_view, SymbolId> index_;
};

/// A name plus its lazily resolved SymbolId: the "resolve once at plan
/// time" handle Rete nodes hold for their required labels, edge types, and
/// extracted property keys. Resolution is monotone — ids are append-only
/// and never change — so caching the first successful Lookup is sound, and
/// a miss (kNoSymbol) simply means no graph element has used the name yet:
/// exactly the "matches nothing / property absent" semantics the caller
/// wants, and worth re-probing on the next call.
///
/// Thread-safe: Resolve may race with itself on pool threads (parallel
/// source translation); both racers compute the same id, and the cache is
/// a relaxed atomic because the value is derivable from the name alone.
class SymbolRef {
 public:
  SymbolRef() = default;
  explicit SymbolRef(std::string name) : name_(std::move(name)) {}

  SymbolRef(const SymbolRef& other)
      : name_(other.name_),
        cached_(other.cached_.load(std::memory_order_relaxed)) {}
  SymbolRef& operator=(const SymbolRef& other) {
    name_ = other.name_;
    cached_.store(other.cached_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    return *this;
  }

  /// The cached id, or the result of a fresh Lookup (cached on hit), or
  /// kNoSymbol while the name has never been interned in `symbols`.
  SymbolId Resolve(const SymbolTable& symbols) const {
    SymbolId id = cached_.load(std::memory_order_relaxed);
    if (id != kNoSymbol) return id;
    if (std::optional<SymbolId> found = symbols.Lookup(name_)) {
      cached_.store(*found, std::memory_order_relaxed);
      return *found;
    }
    return kNoSymbol;
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  mutable std::atomic<SymbolId> cached_{kNoSymbol};
};

}  // namespace pgivm

#endif  // PGIVM_GRAPH_SYMBOL_TABLE_H_
