#include "rete/tuple.h"

#include <sstream>

#include "support/string_util.h"

namespace pgivm {

namespace {

/// Seed of the tuple hash fold. The full hash of a tuple is
/// fold(kTupleHashSeed, column hashes, HashCombine) — a *left fold*, which
/// is what lets Concat/Append continue from the prefix's cached hash
/// instead of re-hashing every column.
constexpr size_t kTupleHashSeed = 0x74757065;  // "tupe"

size_t HashValues(const std::vector<Value>& values) {
  size_t seed = kTupleHashSeed;
  for (const Value& v : values) HashCombine(seed, v.Hash());
  return seed;
}

}  // namespace

Tuple::Tuple(std::vector<Value> values)
    : values_(std::make_shared<const std::vector<Value>>(std::move(values))),
      hash_(HashValues(*values_)) {}

Tuple Tuple::Project(const std::vector<int>& indices) const {
  std::vector<Value> out;
  out.reserve(indices.size());
  size_t hash = kTupleHashSeed;
  for (int i : indices) {
    const Value& v = at(static_cast<size_t>(i));
    HashCombine(hash, v.Hash());
    out.push_back(v);
  }
  return Tuple(std::move(out), hash);
}

size_t Tuple::HashProjected(const std::vector<int>& indices) const {
  size_t hash = kTupleHashSeed;
  for (int i : indices) HashCombine(hash, at(static_cast<size_t>(i)).Hash());
  return hash;
}

Tuple Tuple::Concat(const Tuple& suffix) const {
  std::vector<Value> out;
  out.reserve(size() + suffix.size());
  out.insert(out.end(), values_->begin(), values_->end());
  size_t hash = hash_;
  for (const Value& v : *suffix.values_) {
    HashCombine(hash, v.Hash());
    out.push_back(v);
  }
  return Tuple(std::move(out), hash);
}

Tuple Tuple::ConcatProjected(const Tuple& suffix,
                             const std::vector<int>& indices) const {
  std::vector<Value> out;
  out.reserve(size() + indices.size());
  out.insert(out.end(), values_->begin(), values_->end());
  size_t hash = hash_;
  for (int i : indices) {
    const Value& v = suffix.at(static_cast<size_t>(i));
    HashCombine(hash, v.Hash());
    out.push_back(v);
  }
  return Tuple(std::move(out), hash);
}

Tuple Tuple::Append(Value v) const {
  std::vector<Value> out;
  out.reserve(size() + 1);
  out.insert(out.end(), values_->begin(), values_->end());
  size_t hash = hash_;
  HashCombine(hash, v.Hash());
  out.push_back(std::move(v));
  return Tuple(std::move(out), hash);
}

Tuple Tuple::WithColumn(size_t i, Value v) const {
  std::vector<Value> out = *values_;
  out[i] = std::move(v);
  return Tuple(std::move(out));
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < size(); ++i) {
    if (i > 0) os << ", ";
    os << at(i).ToString();
  }
  os << ")";
  return os.str();
}

int Tuple::Compare(const Tuple& a, const Tuple& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = Value::Compare(a.at(i), b.at(i));
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

}  // namespace pgivm
