#ifndef PGIVM_RETE_FILTER_NODE_H_
#define PGIVM_RETE_FILTER_NODE_H_

#include "rete/expression_eval.h"
#include "rete/node.h"

namespace pgivm {

/// σ — stateless selection: forwards entries whose predicate evaluates to
/// exactly true. A tuple's verdict is deterministic, so assertions and
/// retractions of the same tuple always take the same branch.
class FilterNode : public ReteNode {
 public:
  FilterNode(Schema schema, BoundExpression predicate)
      : ReteNode(std::move(schema)), predicate_(std::move(predicate)) {}

  void OnDelta(int port, const Delta& delta) override;

  /// Stateless per-entry: any contiguous chunking reproduces the serial
  /// output exactly when chunks are concatenated in partition order.
  MorselKind morsel_kind() const override { return MorselKind::kChunked; }
  void OnDeltaMorsel(int port, const Delta& delta, const uint32_t* map,
                     uint32_t partition, uint32_t partitions,
                     Delta& out) override;

  std::string DebugString() const override;
  const char* KindName() const override { return "Filter"; }

 private:
  void ProcessRange(const Delta& delta, size_t begin, size_t end, Delta& out);

  BoundExpression predicate_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_FILTER_NODE_H_
