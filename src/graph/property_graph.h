#ifndef PGIVM_GRAPH_PROPERTY_GRAPH_H_
#define PGIVM_GRAPH_PROPERTY_GRAPH_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph_delta.h"
#include "graph/property_columns.h"
#include "graph/symbol_table.h"
#include "support/status.h"
#include "value/ids.h"
#include "value/value.h"

namespace pgivm {

/// Storage-layout knobs, fixed at graph construction (the layout of live
/// data cannot change underneath readers).
struct StorageOptions {
  /// Typed columnar property storage (symbol-keyed PropertyColumns with
  /// packed Int64/Double/Bool lanes + Value overflow). Off = the legacy
  /// per-element row maps, kept for ablation and differential testing;
  /// both modes are observably identical (see property_columns.h).
  /// The default PropertyGraph() constructor applies the
  /// PGIVM_TYPED_COLUMNS environment override (0 = row, nonzero = typed);
  /// the explicit constructor takes options as-given.
  bool typed_columns = true;
};

/// The storage options the default PropertyGraph() constructor uses: the
/// compiled defaults with the PGIVM_TYPED_COLUMNS override applied. For
/// code that wants env-following behaviour but must adjust one knob
/// programmatically before constructing.
StorageOptions AmbientStorageOptions();

/// In-memory property graph per the paper's data model
/// G = (V, E, st, L, T, labels, types, Pv, Pe):
///  * vertices carry a *set* of labels and a schema-free property map;
///  * edges carry exactly one type, a property map, and source/target;
///  * property values are pgivm::Value (atomic, list, map — nested data).
///
/// Storage is interned + columnar (stage 1 of the vectorized-propagation
/// refactor): labels, edge types, and property keys live once in a
/// per-graph SymbolTable; elements carry dense SymbolIds; properties live
/// in per-symbol typed columns (PropertyStore); and the label/type indexes
/// are symbol-keyed sorted posting lists, so index scans are deterministic
/// (ascending id) by construction. The string-based read API remains as
/// thin shims over one symbol lookup; hot paths use the SymbolId overloads
/// and skip string hashing entirely. Symbol ids depend on mutation order —
/// they never appear in change records, fingerprints, or serialized
/// output, which stay string-based and id-assignment-independent.
///
/// Mutations are observable: every applied change is delivered to registered
/// GraphListeners as a self-contained GraphDelta (see graph_delta.h). Calls
/// outside a batch emit one single-change delta each; BeginBatch/CommitBatch
/// groups many changes into one atomic delta — the unit of IVM propagation
/// ("transaction" in the paper's sense).
///
/// Identifier discipline: ids are dense, monotonically increasing and never
/// reused, so downstream state keyed by id stays unambiguous.
///
/// Thread-compatibility: const methods are safe to call concurrently;
/// mutations require external synchronization (single-writer model). The
/// embedded SymbolTable follows the same contract (Intern happens only
/// inside mutations).
class PropertyGraph {
 public:
  /// Default storage (typed columns), with the PGIVM_TYPED_COLUMNS
  /// environment override applied.
  PropertyGraph();

  /// Storage as-given (no environment override) — for ablation harnesses
  /// that pin a mode programmatically.
  explicit PropertyGraph(StorageOptions storage);

  // Not copyable or movable: listeners hold stable pointers to the graph.
  PropertyGraph(const PropertyGraph&) = delete;
  PropertyGraph& operator=(const PropertyGraph&) = delete;

  // ---- Mutations ---------------------------------------------------------

  /// Adds a vertex with `labels` (deduplicated) and `properties` (entries
  /// with null values are dropped). Returns its id.
  VertexId AddVertex(std::vector<std::string> labels,
                     ValueMap properties = {});

  /// Adds an edge of `type` from `src` to `dst`. Fails if an endpoint does
  /// not exist.
  Result<EdgeId> AddEdge(VertexId src, VertexId dst, std::string type,
                         ValueMap properties = {});

  /// Removes an edge. Fails if it does not exist.
  Status RemoveEdge(EdgeId edge);

  /// Removes a vertex. Fails if it still has incident edges (use
  /// DetachRemoveVertex for cascade semantics).
  Status RemoveVertex(VertexId vertex);

  /// Removes a vertex after removing all incident edges (Cypher's
  /// DETACH DELETE). Each edge removal is its own change in the delta.
  Status DetachRemoveVertex(VertexId vertex);

  /// Sets (or, when `value` is null, erases) a vertex/edge property.
  /// A no-op write (old == new) emits no change.
  Status SetVertexProperty(VertexId vertex, std::string key, Value value);
  Status SetEdgeProperty(EdgeId edge, std::string key, Value value);

  /// Adds/removes a single label. Adding an existing or removing a missing
  /// label is a no-op (OK, no change emitted).
  Status AddVertexLabel(VertexId vertex, std::string label);
  Status RemoveVertexLabel(VertexId vertex, const std::string& label);

  // ---- Fine-grained collection updates (FGN) -----------------------------
  // These express element-level edits of collection properties. They are
  // recorded as SetProperty changes carrying both old and new collection, so
  // incremental consumers (the unnest node) can diff them element-wise
  // instead of recomputing — the paper's FGN property.

  /// Appends `element` to the list property `key` (absent property becomes a
  /// one-element list). Fails if the property exists and is not a list.
  Status ListAppend(VertexId vertex, const std::string& key, Value element);

  /// Removes one occurrence of `element` from the list property `key`.
  /// Fails if the property is not a list or the element is absent.
  Status ListRemoveFirst(VertexId vertex, const std::string& key,
                         const Value& element);

  /// Inserts/overwrites `entry_key` in the map property `key` (absent
  /// property becomes a one-entry map).
  Status MapPut(VertexId vertex, const std::string& key,
                const std::string& entry_key, Value value);

  /// Erases `entry_key` from the map property `key`. Fails if the property
  /// is not a map; erasing a missing entry is a no-op.
  Status MapErase(VertexId vertex, const std::string& key,
                  const std::string& entry_key);

  // ---- Batching ----------------------------------------------------------

  /// Starts accumulating changes instead of emitting per-mutation deltas.
  /// Batches do not nest.
  void BeginBatch();

  /// Emits every change recorded since BeginBatch as one delta.
  void CommitBatch();

  bool in_batch() const { return in_batch_; }

  // ---- Listeners ---------------------------------------------------------

  /// Registers/unregisters an observer. The graph does not own listeners;
  /// they must outlive their registration.
  void AddListener(GraphListener* listener);
  void RemoveListener(GraphListener* listener);

  // ---- Reads (string shims) ----------------------------------------------
  // One symbol lookup, then the id-based fast path. Fine for cold paths;
  // per-tuple readers should resolve a SymbolRef once and use the SymbolId
  // overloads below.

  bool HasVertex(VertexId vertex) const;
  bool HasEdge(EdgeId edge) const;

  /// Label set of `vertex`, materialized sorted by name. Requires
  /// existence. (By value since the interned representation stores ids;
  /// hot paths use VertexLabelIds.)
  std::vector<std::string> VertexLabels(VertexId vertex) const;
  bool VertexHasLabel(VertexId vertex, std::string_view label) const;

  /// Property value, or null Value if absent. Requires element existence.
  Value GetVertexProperty(VertexId vertex, std::string_view key) const;
  Value GetEdgeProperty(EdgeId edge, std::string_view key) const;

  /// Properties materialized as a name-sorted ValueMap (by value since the
  /// columnar representation has no per-element map to reference).
  ValueMap VertexProperties(VertexId vertex) const;
  ValueMap EdgeProperties(EdgeId edge) const;

  VertexId EdgeSource(EdgeId edge) const;
  VertexId EdgeTarget(EdgeId edge) const;

  /// The edge's type name. The reference is stable for the graph's
  /// lifetime (interned spelling).
  const std::string& EdgeType(EdgeId edge) const;

  /// Incident edge lists (ids of live edges).
  const std::vector<EdgeId>& OutEdges(VertexId vertex) const;
  const std::vector<EdgeId>& InEdges(VertexId vertex) const;

  /// All live vertices carrying `label`, ascending by id (deterministic:
  /// the index is a sorted posting list).
  std::vector<VertexId> VerticesWithLabel(std::string_view label) const;

  /// All live edges of `type`, ascending by id (deterministic).
  std::vector<EdgeId> EdgesWithType(std::string_view type) const;

  // ---- Reads (interned fast path) ----------------------------------------
  // SymbolId arguments accept kNoSymbol (an unresolved SymbolRef) and
  // treat it as "matches nothing / absent".

  /// The graph's intern table. Mutations may append to it; ids already
  /// handed out never change.
  const SymbolTable& symbols() const { return symbols_; }

  const StorageOptions& storage_options() const { return storage_; }

  /// Label symbols of `vertex`, sorted ascending by id.
  const std::vector<SymbolId>& VertexLabelIds(VertexId vertex) const;
  bool VertexHasLabel(VertexId vertex, SymbolId label) const;

  Value GetVertexProperty(VertexId vertex, SymbolId key) const;
  Value GetEdgeProperty(EdgeId edge, SymbolId key) const;

  SymbolId EdgeTypeId(EdgeId edge) const;

  /// Posting list of live vertices carrying label `label`, ascending by
  /// id. The reference is invalidated by mutations.
  const std::vector<VertexId>& VerticesWithLabelId(SymbolId label) const;
  const std::vector<EdgeId>& EdgesWithTypeId(SymbolId type) const;

  /// Visits every live vertex/edge id in increasing id order.
  void ForEachVertex(const std::function<void(VertexId)>& fn) const;
  void ForEachEdge(const std::function<void(EdgeId)>& fn) const;

  size_t vertex_count() const { return live_vertex_count_; }
  size_t edge_count() const { return live_edge_count_; }

  /// Rough heap usage of the store (elements, symbols, properties,
  /// indexes), for the memory experiments and the `storage.bytes` bench
  /// counter.
  size_t ApproxMemoryBytes() const;

 private:
  struct VertexData {
    bool alive = false;
    std::vector<SymbolId> labels;  // sorted by id, unique
    std::vector<EdgeId> out_edges;
    std::vector<EdgeId> in_edges;
  };

  struct EdgeData {
    bool alive = false;
    VertexId src = kInvalidId;
    VertexId dst = kInvalidId;
    SymbolId type = kNoSymbol;
  };

  VertexData& MutableVertex(VertexId id);
  const VertexData& GetVertex(VertexId id) const;
  EdgeData& MutableEdge(EdgeId id);
  const EdgeData& GetEdge(EdgeId id) const;

  /// Materializes label names sorted by name (change records and the
  /// string API promise name order, not id order).
  std::vector<std::string> LabelNames(
      const std::vector<SymbolId>& ids) const;

  /// Records one applied change: appended to the open batch, or emitted as a
  /// singleton delta.
  void Record(GraphChange change);
  void Emit(GraphDelta delta);

  /// Shared implementation of vertex/edge property writes.
  Status SetPropertyImpl(bool is_vertex, int64_t id, std::string key,
                         Value value);

  StorageOptions storage_;
  SymbolTable symbols_;
  PropertyStore vertex_props_;
  PropertyStore edge_props_;

  std::vector<VertexData> vertices_;
  std::vector<EdgeData> edges_;
  size_t live_vertex_count_ = 0;
  size_t live_edge_count_ = 0;

  // Sorted posting lists indexed by label/type SymbolId.
  std::vector<std::vector<VertexId>> label_index_;
  std::vector<std::vector<EdgeId>> type_index_;

  bool in_batch_ = false;
  GraphDelta pending_;

  std::vector<GraphListener*> listeners_;
};

}  // namespace pgivm

#endif  // PGIVM_GRAPH_PROPERTY_GRAPH_H_
