#ifndef PGIVM_CYPHER_AST_H_
#define PGIVM_CYPHER_AST_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "cypher/expression.h"
#include "support/status.h"

namespace pgivm {

/// AST of the supported openCypher fragment. The parser produces this tree;
/// the algebra compiler lowers it to GRA. Anonymous pattern elements receive
/// generated variable names during parsing (`#anonN`), so every node/edge in
/// the AST is named.

/// `(v:Label1:Label2 {key: expr, ...})`
struct NodePattern {
  std::string variable;
  std::vector<std::string> labels;
  std::vector<std::pair<std::string, ExprPtr>> properties;

  std::string ToString() const;
};

/// `-[e:T1|T2 {..}]->`, `<-[e]-`, `-[*1..3]-` ...
struct RelPattern {
  enum class Direction { kOut, kIn, kBoth };

  std::string variable;
  std::vector<std::string> types;
  Direction direction = Direction::kOut;
  std::vector<std::pair<std::string, ExprPtr>> properties;

  /// Variable-length (`*`): min_hops..max_hops, max_hops == -1 meaning
  /// unbounded. Fixed-length patterns have variable_length == false.
  bool variable_length = false;
  int64_t min_hops = 1;
  int64_t max_hops = -1;

  std::string ToString() const;
};

/// One linear pattern `path_var = (n0)-[r0]-(n1)-[r1]-...-(nk)`; path_var
/// may be empty.
struct PatternPart {
  std::string path_variable;
  NodePattern first;
  std::vector<std::pair<RelPattern, NodePattern>> chain;

  std::string ToString() const;
};

struct MatchClause {
  bool optional = false;
  std::vector<PatternPart> parts;
  ExprPtr where;  // may be null

  /// Patterns referenced by exists(...) predicates inside `where`; the
  /// kPatternPredicate expression's `column` indexes this table. Compiled
  /// into semi-joins (positive) / anti-joins (negated).
  std::vector<PatternPart> pattern_predicates;

  std::string ToString() const;
};

struct UnwindClause {
  ExprPtr expr;
  std::string alias;

  std::string ToString() const;
};

struct ReturnItem {
  ExprPtr expr;
  std::string alias;  // never empty after parsing (auto-derived)

  std::string ToString() const;
};

struct WithClause {
  bool distinct = false;
  std::vector<ReturnItem> items;
  ExprPtr where;  // may be null

  std::string ToString() const;
};

using Clause = std::variant<MatchClause, UnwindClause, WithClause>;

struct ReturnClause {
  bool distinct = false;
  std::vector<ReturnItem> items;
  /// SKIP/LIMIT apply to snapshots only (the ORD restriction): they are
  /// recorded here and enforced by View::Snapshot, never inside the
  /// maintained view.
  int64_t skip = 0;
  int64_t limit = -1;  // -1 = no limit

  std::string ToString() const;
};

/// Replaces `$name` parameters everywhere in the query (WHERE clauses,
/// return/with items, inline property maps, UNWIND expressions, union
/// parts) with literals from `parameters`. Fails on unknown parameters.
struct Query;
Status SubstituteQueryParameters(Query& query, const ValueMap& parameters);

struct Query {
  std::vector<Clause> clauses;
  ReturnClause return_clause;

  /// UNION continuation queries: (is_union_all, query). All parts must
  /// produce the same column names; plain UNION deduplicates the combined
  /// result.
  std::vector<std::pair<bool, std::shared_ptr<Query>>> unions;

  std::string ToString() const;
};

}  // namespace pgivm

#endif  // PGIVM_CYPHER_AST_H_
