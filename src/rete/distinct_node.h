#ifndef PGIVM_RETE_DISTINCT_NODE_H_
#define PGIVM_RETE_DISTINCT_NODE_H_

#include "rete/node.h"

namespace pgivm {

/// δ — bag-to-set conversion with counting (Griffin–Libkin style): a tuple
/// is asserted downstream when its support count rises 0→positive and
/// retracted when it falls back to 0, regardless of the multiplicities in
/// between.
class DistinctNode : public ReteNode {
 public:
  explicit DistinctNode(Schema schema) : ReteNode(std::move(schema)) {}

  void OnDelta(int port, const Delta& delta) override;

  /// Replays each supported tuple exactly once (set semantics).
  bool ReplayOutput(Delta& out) const override {
    out.reserve(out.size() + support_.distinct_size());
    for (const auto& [tuple, count] : support_.counts()) {
      (void)count;
      out.push_back({tuple, 1});
    }
    return true;
  }

  void Reset() override { support_.Clear(); }

  size_t ApproxMemoryBytes() const override {
    return support_.ApproxMemoryBytes();
  }

  std::string DebugString() const override { return "Distinct"; }
  const char* KindName() const override { return "Distinct"; }

 private:
  Bag support_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_DISTINCT_NODE_H_
