#include "rete/delta.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace pgivm {

Delta Normalize(const Delta& delta) {
  Delta out = delta;
  Consolidate(out);
  return out;
}

void Consolidate(Delta& delta) {
  if (delta.size() <= 1) {
    if (delta.size() == 1 && delta[0].multiplicity == 0) delta.clear();
    return;
  }
  // Allocation-free: sort into a canonical order (cached tuple hash, ties
  // broken lexicographically) and fold equal-tuple runs. This runs on every
  // wave of batched propagation, so avoiding per-entry hash-table nodes
  // matters more than preserving arrival order — normalized deltas carry
  // each tuple once, so their order is semantically irrelevant.
  std::sort(delta.begin(), delta.end(),
            [](const DeltaEntry& a, const DeltaEntry& b) {
              size_t ha = a.tuple.Hash();
              size_t hb = b.tuple.Hash();
              if (ha != hb) return ha < hb;
              return Tuple::Compare(a.tuple, b.tuple) < 0;
            });
  size_t write = 0;
  for (size_t i = 0; i < delta.size();) {
    size_t j = i + 1;
    int64_t multiplicity = delta[i].multiplicity;
    while (j < delta.size() && delta[j].tuple == delta[i].tuple) {
      multiplicity += delta[j].multiplicity;
      ++j;
    }
    if (multiplicity != 0) {
      if (write != i) delta[write] = std::move(delta[i]);
      delta[write].multiplicity = multiplicity;
      ++write;
    }
    i = j;
  }
  delta.resize(write);
}

bool IsConsolidated(const Delta& delta) {
  for (size_t i = 0; i < delta.size(); ++i) {
    if (delta[i].multiplicity == 0) return false;
    if (i == 0) continue;
    size_t prev = delta[i - 1].tuple.Hash();
    size_t cur = delta[i].tuple.Hash();
    if (prev < cur) continue;
    if (prev > cur ||
        Tuple::Compare(delta[i - 1].tuple, delta[i].tuple) >= 0) {
      return false;
    }
  }
  return true;
}

std::string DeltaToString(const Delta& delta) {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < delta.size(); ++i) {
    if (i > 0) os << ", ";
    os << (delta[i].multiplicity > 0 ? "+" : "") << delta[i].multiplicity
       << "x" << delta[i].tuple.ToString();
  }
  os << "}";
  return os.str();
}

std::pair<int64_t, int64_t> Bag::Apply(const Tuple& tuple,
                                       int64_t multiplicity) {
  auto it = counts_.find(tuple);
  int64_t old_count = it == counts_.end() ? 0 : it->second;
  int64_t new_count = old_count + multiplicity;
  assert(new_count >= 0 && "bag count went negative: upstream emitted a "
                           "retraction for a tuple it never asserted");
  total_ += multiplicity;
  if (new_count == 0) {
    if (it != counts_.end()) counts_.erase(it);
  } else if (it == counts_.end()) {
    counts_.emplace(tuple, new_count);
  } else {
    it->second = new_count;
  }
  return {old_count, new_count};
}

int64_t Bag::Count(const Tuple& tuple) const {
  auto it = counts_.find(tuple);
  return it == counts_.end() ? 0 : it->second;
}

size_t Bag::ApproxMemoryBytes() const {
  size_t bytes = counts_.bucket_count() * sizeof(void*);
  for (const auto& [tuple, count] : counts_) {
    bytes += sizeof(Tuple) + sizeof(int64_t);
    for (const Value& v : tuple.values()) bytes += v.ApproxMemoryBytes();
    (void)count;
  }
  return bytes;
}

}  // namespace pgivm
