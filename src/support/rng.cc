#include "support/rng.h"

namespace pgivm {

uint64_t Rng::Next() {
  // splitmix64: passes BigCrush, two multiplies and shifts, fully portable.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection-free modulo is fine here: generators do not need perfect
  // uniformity, only determinism.
  return Next() % bound;
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace pgivm
