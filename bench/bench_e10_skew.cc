// E10 — morsel-style intra-drain parallelism under key skew.
//
// The wave scheduler's node-level parallelism assigns whole nodes to
// threads, so a Zipf-skewed update stream that funnels through a handful
// of hot nodes (one join, one aggregate) serializes the drain no matter
// how many workers the pool has. Morsel-style delivery splits exactly
// those hot nodes by key partition. This benchmark measures the drain
// under that adversarial shape: a hub-centered two-hop join plus a
// group-by-hub aggregate, fed bursts whose endpoints are Zipf-selected —
// most updates hit the same few hubs.
//
// Dimensions: threads {1, 2, 8} × morsel {off, on}. `morsel=0` pins
// partitions to 1 (node-level scheduling only — the pre-morsel engine);
// `morsel=1` forces the partitioned path (node-entry gate 0). The
// speedup criterion compares t8/morsel1 against t8/morsel0; both sit on
// identical update streams (fixed RNG seed), so the delta is scheduling
// only. Counters report how many waves actually split.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "engine/query_engine.h"

namespace pgivm {
namespace {

constexpr char kJoinQuery[] =
    "MATCH (a:A)-[:R]->(h:H)-[:S]->(c:C) RETURN a, h, c";
constexpr char kAggQuery[] =
    "MATCH (a:A)-[:R]->(h:H) RETURN h AS hub, count(*) AS c";

constexpr int kHubs = 64;
constexpr int kFansPerHub = 4;     // initial C fan-out behind every hub
constexpr int kInitialEdges = 2000;
constexpr int kBurst = 256;        // edges added (and removed) per batch
constexpr double kZipfExponent = 1.2;

/// Zipf(s) over [0, n): rank-1 mass ≈ 35% at s=1.2, n=64 — the hot-hub
/// shape. Inverse-CDF over precomputed cumulative weights.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s) : cumulative_(static_cast<size_t>(n)) {
    double total = 0.0;
    for (int k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cumulative_[static_cast<size_t>(k)] = total;
    }
    for (double& c : cumulative_) c /= total;
  }

  int Sample(std::mt19937_64& rng) const {
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<int>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

struct SkewFixture {
  SkewFixture(int threads, bool morsel)
      : engine(&graph, Options(threads, morsel)), zipf(kHubs, kZipfExponent),
        rng(0x5eedULL) {
    for (int h = 0; h < kHubs; ++h) {
      hubs.push_back(graph.AddVertex({"H"}));
      for (int f = 0; f < kFansPerHub; ++f) {
        VertexId c = graph.AddVertex({"C"});
        (void)graph.AddEdge(hubs.back(), c, "S").value();
      }
    }
    graph.BeginBatch();
    for (int i = 0; i < kInitialEdges; ++i) AddZipfEdge();
    graph.CommitBatch();
    join_view = engine.Register(kJoinQuery).value();
    agg_view = engine.Register(kAggQuery).value();
  }

  static EngineOptions Options(int threads, bool morsel) {
    EngineOptions options;
    if (threads > 1) {
      options.network.executor = ExecutorKind::kParallel;
      options.network.num_threads = threads;
      options.network.parallel_min_wave_entries = 0;
    }
    if (morsel) {
      options.network.morsel_min_node_entries = 0;  // split every hot node
    } else {
      options.network.morsel_partitions = 1;  // node-level scheduling only
    }
    return options;
  }

  void AddZipfEdge() {
    VertexId a = graph.AddVertex({"A"});
    VertexId hub = hubs[static_cast<size_t>(zipf.Sample(rng))];
    live_edges.push_back(graph.AddEdge(a, hub, "R").value());
  }

  /// One steady-state burst: kBurst Zipf-keyed additions plus kBurst
  /// oldest removals, committed (and drained) as one batch.
  void ApplyBurst() {
    graph.BeginBatch();
    for (int i = 0; i < kBurst; ++i) AddZipfEdge();
    size_t removals = live_edges.size() > static_cast<size_t>(kInitialEdges)
                          ? static_cast<size_t>(kBurst)
                          : 0;
    for (size_t i = 0; i < removals; ++i) {
      (void)graph.RemoveEdge(live_edges[next_removal + i]);
    }
    next_removal += removals;
    graph.CommitBatch();
  }

  PropertyGraph graph;
  QueryEngine engine;
  ZipfSampler zipf;
  std::mt19937_64 rng;
  std::vector<VertexId> hubs;
  std::vector<EdgeId> live_edges;
  size_t next_removal = 0;
  std::shared_ptr<View> join_view;
  std::shared_ptr<View> agg_view;
};

/// Drain latency per Zipf burst. items_per_second is graph changes
/// propagated per second (kBurst adds + kBurst removes per iteration at
/// steady state).
void BM_E10_ZipfBurstDrain(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bool morsel = state.range(1) != 0;
  SkewFixture f(threads, morsel);
  for (auto _ : state) {
    f.ApplyBurst();
    benchmark::DoNotOptimize(f.join_view->size());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kBurst);
  const EngineMetricsSnapshot metrics = f.engine.MetricsSnapshot();
  state.counters["morsel_waves"] =
      static_cast<double>(metrics.morsel_waves_dispatched);
  state.counters["parallel_waves"] =
      static_cast<double>(metrics.parallel_waves_dispatched);
  state.counters["join_rows"] = static_cast<double>(f.join_view->size());
}
BENCHMARK(BM_E10_ZipfBurstDrain)
    ->ArgNames({"threads", "morsel"})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({8, 0})
    ->Args({8, 1});

}  // namespace
}  // namespace pgivm

PGIVM_BENCHMARK_MAIN();
