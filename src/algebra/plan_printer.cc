#include "algebra/plan_printer.h"

#include <sstream>

namespace pgivm {

namespace {

void PrintRec(const OpPtr& op, int depth, std::ostringstream& os) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << op->DebugString();
  if (!op->schema.empty() || op->kind == OpKind::kUnit) {
    os << "  " << op->schema.ToString();
  }
  os << "\n";
  for (const OpPtr& child : op->children) PrintRec(child, depth + 1, os);
}

}  // namespace

std::string PrintPlan(const OpPtr& root) {
  std::ostringstream os;
  PrintRec(root, 0, os);
  return os.str();
}

}  // namespace pgivm
