// E5 — atomic path maintenance (the paper's ORD compromise).
//
// Variable-length views materialize whole paths; an edge change inserts or
// deletes complete paths (never edits one). We measure:
//  * tail churn on a reply chain of depth d — the number of affected paths
//    equals d (every prefix gains/loses one extension), so latency should
//    grow linearly in depth, not with the total path count;
//  * leaf churn on a reply tree with fanout f and fixed depth — only the
//    paths through the touched leaf are affected.

#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "engine/query_engine.h"

namespace pgivm {
namespace {

constexpr char kThreads[] =
    "MATCH t = (p:Post)-[:REPLY*]->(c:Comm) RETURN p, t";

void BM_E5_ChainTailChurn(benchmark::State& state) {
  int64_t depth = state.range(0);
  PropertyGraph graph;
  VertexId post = graph.AddVertex({"Post"});
  VertexId tail = post;
  for (int64_t i = 0; i < depth; ++i) {
    VertexId next = graph.AddVertex({"Comm"});
    (void)graph.AddEdge(tail, next, "REPLY").value();
    tail = next;
  }
  QueryEngine engine(&graph);
  auto view = engine.Register(kThreads).value();
  VertexId extra = graph.AddVertex({"Comm"});

  for (auto _ : state) {
    EdgeId e = graph.AddEdge(tail, extra, "REPLY").value();
    (void)graph.RemoveEdge(e);
  }
  state.counters["depth"] = static_cast<double>(depth);
  state.counters["paths"] = static_cast<double>(view->size());
}
BENCHMARK(BM_E5_ChainTailChurn)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Iterations(300);

void BM_E5_TreeLeafChurn(benchmark::State& state) {
  // Balanced reply tree: depth 3, fanout f.
  int64_t fanout = state.range(0);
  PropertyGraph graph;
  VertexId post = graph.AddVertex({"Post"});
  std::vector<VertexId> level{post};
  for (int d = 0; d < 3; ++d) {
    std::vector<VertexId> next_level;
    for (VertexId parent : level) {
      for (int64_t f = 0; f < fanout; ++f) {
        VertexId child = graph.AddVertex({"Comm"});
        (void)graph.AddEdge(parent, child, "REPLY").value();
        next_level.push_back(child);
      }
    }
    level = std::move(next_level);
  }
  QueryEngine engine(&graph);
  auto view = engine.Register(kThreads).value();
  VertexId leaf_parent = level.front();
  VertexId extra = graph.AddVertex({"Comm"});

  for (auto _ : state) {
    EdgeId e = graph.AddEdge(leaf_parent, extra, "REPLY").value();
    (void)graph.RemoveEdge(e);
  }
  state.counters["fanout"] = static_cast<double>(fanout);
  state.counters["paths"] = static_cast<double>(view->size());
}
BENCHMARK(BM_E5_TreeLeafChurn)->Arg(2)->Arg(3)->Arg(4)->Iterations(300);

void BM_E5_BoundedVsUnbounded(benchmark::State& state) {
  // Hop bounds limit the affected-path set: *1..2 vs unbounded on the same
  // deep chain.
  int64_t max_hops = state.range(0);  // 0 = unbounded
  PropertyGraph graph;
  VertexId post = graph.AddVertex({"Post"});
  VertexId tail = post;
  for (int64_t i = 0; i < 64; ++i) {
    VertexId next = graph.AddVertex({"Comm"});
    (void)graph.AddEdge(tail, next, "REPLY").value();
    tail = next;
  }
  QueryEngine engine(&graph);
  std::string query =
      max_hops == 0
          ? std::string(kThreads)
          : "MATCH t = (p:Post)-[:REPLY*1.." + std::to_string(max_hops) +
                "]->(c:Comm) RETURN p, t";
  auto view = engine.Register(query).value();
  VertexId extra = graph.AddVertex({"Comm"});

  for (auto _ : state) {
    EdgeId e = graph.AddEdge(tail, extra, "REPLY").value();
    (void)graph.RemoveEdge(e);
  }
  state.counters["max_hops"] = static_cast<double>(max_hops);
  state.counters["paths"] = static_cast<double>(view->size());
}
BENCHMARK(BM_E5_BoundedVsUnbounded)
    ->Arg(2)
    ->Arg(8)
    ->Arg(0)
    ->Iterations(300);

}  // namespace
}  // namespace pgivm

PGIVM_BENCHMARK_MAIN();
