#include "rete/semijoin_node.h"

#include <cassert>

namespace pgivm {

SemiJoinNode::SemiJoinNode(Schema schema, const Schema& left,
                           const Schema& right)
    : ReteNode(std::move(schema)), layout_(JoinLayout::Make(left, right)) {}

void SemiJoinNode::OnDelta(int port, const Delta& delta) {
  Delta out;
  for (const DeltaEntry& entry : delta) {
    if (port == 0) {
      Tuple key = entry.tuple.Project(layout_.left_key);
      Bag& bag = left_memory_[key];
      bag.Apply(entry.tuple, entry.multiplicity);
      if (bag.total_count() == 0) left_memory_.erase(key);
      auto it = right_support_.find(key);
      if (it != right_support_.end() && it->second > 0) {
        out.push_back(entry);
      }
    } else {
      Tuple key = entry.tuple.Project(layout_.right_key);
      int64_t& support = right_support_[key];
      int64_t old_support = support;
      support += entry.multiplicity;
      assert(support >= 0 && "semi-join right support went negative");
      if (support == 0) right_support_.erase(key);
      bool had_partner = old_support > 0;
      bool has_partner = old_support + entry.multiplicity > 0;
      if (had_partner == has_partner) continue;
      auto it = left_memory_.find(key);
      if (it == left_memory_.end()) continue;
      // First partner arrived: assert the lefts; last partner left:
      // retract them.
      int64_t sign = has_partner ? 1 : -1;
      for (const auto& [left_tuple, count] : it->second.counts()) {
        out.push_back({left_tuple, sign * count});
      }
    }
  }
  Emit(std::move(out));
}

bool SemiJoinNode::ReplayOutput(Delta& out) const {
  for (const auto& [key, bag] : left_memory_) {
    auto it = right_support_.find(key);
    if (it == right_support_.end() || it->second <= 0) continue;
    for (const auto& [left_tuple, count] : bag.counts()) {
      out.push_back({left_tuple, count});
    }
  }
  return true;
}

size_t SemiJoinNode::ApproxMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [key, bag] : left_memory_) {
    bytes += sizeof(Tuple) + key.size() * sizeof(Value);
    bytes += bag.ApproxMemoryBytes();
  }
  bytes += right_support_.size() * (sizeof(Tuple) + sizeof(int64_t));
  return bytes;
}

}  // namespace pgivm
