#include "rete/network_builder.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "catalog/node_registry.h"
#include "rete/aggregate_node.h"
#include "rete/antijoin_node.h"
#include "rete/distinct_node.h"
#include "rete/filter_node.h"
#include "rete/join_node.h"
#include "rete/path_node.h"
#include "rete/project_node.h"
#include "rete/semijoin_node.h"
#include "rete/union_node.h"
#include "rete/unnest_node.h"
#include "support/string_util.h"

namespace pgivm {

namespace {

/// A built sub-plan: its root node plus the support set — every node the
/// sub-plan transitively references (shared or freshly constructed). The
/// support travels upward so the registering view can refcount its whole
/// footprint.
struct Built {
  ReteNode* node = nullptr;
  std::vector<ReteNode*> support;
};

void MergeSupport(std::vector<ReteNode*>& dst,
                  const std::vector<ReteNode*>& src) {
  for (ReteNode* node : src) {
    if (std::find(dst.begin(), dst.end(), node) == dst.end()) {
      dst.push_back(node);
    }
  }
}

/// Builds one view's sub-network. Expressions are bound against the plan's
/// child schemas (not the child *node's* schema): a registry hit may return
/// a node built for another view whose schema carries that view's aliases,
/// but the tuple layout is positionally identical — and bound expressions
/// resolve names to column positions once, at bind time.
class Builder {
 public:
  Builder(ReteNetwork* network, const PropertyGraph* graph,
          const NetworkOptions& options, NodeRegistry* registry)
      : network_(network),
        graph_(graph),
        options_(options),
        registry_(registry) {}

  /// Every node this builder added to the network, for rollback on error.
  const std::vector<ReteNode*>& created() const { return created_; }

  Result<Built> Build(const OpPtr& op) {
    std::string key;
    if (registry_ != nullptr) {
      key = CanonicalPlanKey(*op);
      if (!key.empty()) {
        if (const NodeRegistry::Entry* hit = registry_->Lookup(key)) {
          return Built{hit->node, hit->support};
        }
      }
    }
    PGIVM_ASSIGN_OR_RETURN(Built built, BuildFresh(op));
    if (registry_ != nullptr && !key.empty()) {
      registry_->Insert(key, built.node, built.support);
    }
    return built;
  }

 private:
  template <typename NodeT>
  NodeT* Create(std::unique_ptr<NodeT> node) {
    NodeT* raw = network_->Add(std::move(node));
    created_.push_back(raw);
    return raw;
  }

  Result<Built> BuildFresh(const OpPtr& op) {
    switch (op->kind) {
      case OpKind::kUnit: {
        auto* node = Create(std::make_unique<UnitInputNode>());
        network_->RegisterSource(node);
        return Built{node, {node}};
      }

      case OpKind::kGetVertices: {
        auto* node = Create(std::make_unique<VertexInputNode>(
            op->schema, graph_, op->labels, op->extracts));
        network_->RegisterSource(node);
        return Built{node, {node}};
      }

      case OpKind::kGetEdges: {
        auto* node = Create(std::make_unique<EdgeInputNode>(
            op->schema, graph_, op->edge_types,
            op->direction == EdgeDirection::kBoth, op->src_var, op->edge_var,
            op->dst_var, op->extracts));
        network_->RegisterSource(node);
        return Built{node, {node}};
      }

      case OpKind::kPathJoin: {
        PGIVM_ASSIGN_OR_RETURN(Built input, Build(op->children[0]));
        Schema path_schema;
        path_schema.Add({op->src_var, Attribute::Kind::kVertex});
        path_schema.Add({op->dst_var, Attribute::Kind::kVertex});
        bool emit_path = !op->path_var.empty();
        if (emit_path) {
          path_schema.Add({op->path_var, Attribute::Kind::kPath});
        }
        auto* paths = Create(std::make_unique<PathInputNode>(
            path_schema, graph_, op->edge_types,
            op->direction == EdgeDirection::kIn, op->min_hops, op->max_hops,
            emit_path));
        network_->RegisterSource(paths);
        auto* join = Create(std::make_unique<JoinNode>(
            op->schema, op->children[0]->schema, path_schema));
        input.node->AddOutput(join, 0);
        paths->AddOutput(join, 1);
        Built built{join, std::move(input.support)};
        MergeSupport(built.support, {paths, join});
        return built;
      }

      case OpKind::kSelection: {
        PGIVM_ASSIGN_OR_RETURN(Built input, Build(op->children[0]));
        PGIVM_ASSIGN_OR_RETURN(
            BoundExpression predicate,
            BoundExpression::Bind(op->predicate, op->children[0]->schema));
        auto* node = Create(std::make_unique<FilterNode>(
            op->schema, std::move(predicate)));
        input.node->AddOutput(node, 0);
        Built built{node, std::move(input.support)};
        MergeSupport(built.support, {node});
        return built;
      }

      case OpKind::kProjection:
      case OpKind::kProduce: {
        PGIVM_ASSIGN_OR_RETURN(Built input, Build(op->children[0]));
        std::vector<BoundExpression> columns;
        for (const auto& [name, expr] : op->projections) {
          PGIVM_ASSIGN_OR_RETURN(
              BoundExpression bound,
              BoundExpression::Bind(expr, op->children[0]->schema));
          columns.push_back(std::move(bound));
        }
        auto* node = Create(std::make_unique<ProjectNode>(
            op->schema, std::move(columns)));
        input.node->AddOutput(node, 0);
        Built built{node, std::move(input.support)};
        MergeSupport(built.support, {node});
        return built;
      }

      case OpKind::kJoin:
      case OpKind::kAntiJoin:
      case OpKind::kSemiJoin: {
        PGIVM_ASSIGN_OR_RETURN(Built left, Build(op->children[0]));
        PGIVM_ASSIGN_OR_RETURN(Built right, Build(op->children[1]));
        const Schema& lschema = op->children[0]->schema;
        const Schema& rschema = op->children[1]->schema;
        ReteNode* node = nullptr;
        if (op->kind == OpKind::kJoin) {
          node = Create(
              std::make_unique<JoinNode>(op->schema, lschema, rschema));
        } else if (op->kind == OpKind::kAntiJoin) {
          node = Create(
              std::make_unique<AntiJoinNode>(op->schema, lschema, rschema));
        } else {
          node = Create(
              std::make_unique<SemiJoinNode>(op->schema, lschema, rschema));
        }
        left.node->AddOutput(node, 0);
        right.node->AddOutput(node, 1);
        Built built{node, std::move(left.support)};
        MergeSupport(built.support, right.support);
        MergeSupport(built.support, {node});
        return built;
      }

      case OpKind::kLeftOuterJoin: {
        // L ⟕ R  =  (L ⋈ R)  ∪  π_null-pad(L ▷ R).
        PGIVM_ASSIGN_OR_RETURN(Built left, Build(op->children[0]));
        PGIVM_ASSIGN_OR_RETURN(Built right, Build(op->children[1]));
        const Schema& lschema = op->children[0]->schema;
        const Schema& rschema = op->children[1]->schema;
        auto* join = Create(std::make_unique<JoinNode>(
            op->schema, lschema, rschema));
        left.node->AddOutput(join, 0);
        right.node->AddOutput(join, 1);
        auto* anti = Create(std::make_unique<AntiJoinNode>(
            lschema, lschema, rschema));
        left.node->AddOutput(anti, 0);
        right.node->AddOutput(anti, 1);
        std::vector<BoundExpression> pad;
        for (const Attribute& attr : op->schema.attributes()) {
          ExprPtr expr = lschema.Contains(attr.name)
                             ? MakeVariable(attr.name)
                             : MakeLiteral(Value::Null());
          PGIVM_ASSIGN_OR_RETURN(BoundExpression bound,
                                 BoundExpression::Bind(expr, lschema));
          pad.push_back(std::move(bound));
        }
        auto* padder = Create(std::make_unique<ProjectNode>(
            op->schema, std::move(pad)));
        anti->AddOutput(padder, 0);
        auto* merge = Create(std::make_unique<UnionNode>(op->schema));
        join->AddOutput(merge, 0);
        padder->AddOutput(merge, 1);
        Built built{merge, std::move(left.support)};
        MergeSupport(built.support, right.support);
        MergeSupport(built.support, {join, anti, padder, merge});
        return built;
      }

      case OpKind::kUnion: {
        PGIVM_ASSIGN_OR_RETURN(Built left, Build(op->children[0]));
        PGIVM_ASSIGN_OR_RETURN(Built right, Build(op->children[1]));
        const Schema& lschema = op->children[0]->schema;
        const Schema& rschema = op->children[1]->schema;
        // Align the right input's column order with the left's.
        ReteNode* aligned = right.node;
        std::vector<ReteNode*> extra;
        if (!(rschema == lschema)) {
          std::vector<BoundExpression> reorder;
          for (const Attribute& attr : lschema.attributes()) {
            PGIVM_ASSIGN_OR_RETURN(
                BoundExpression bound,
                BoundExpression::Bind(MakeVariable(attr.name), rschema));
            reorder.push_back(std::move(bound));
          }
          auto* project = Create(std::make_unique<ProjectNode>(
              lschema, std::move(reorder)));
          right.node->AddOutput(project, 0);
          aligned = project;
          extra.push_back(project);
        }
        auto* node = Create(std::make_unique<UnionNode>(op->schema));
        left.node->AddOutput(node, 0);
        aligned->AddOutput(node, 1);
        extra.push_back(node);
        Built built{node, std::move(left.support)};
        MergeSupport(built.support, right.support);
        MergeSupport(built.support, extra);
        return built;
      }

      case OpKind::kDistinct: {
        PGIVM_ASSIGN_OR_RETURN(Built input, Build(op->children[0]));
        auto* node = Create(std::make_unique<DistinctNode>(op->schema));
        input.node->AddOutput(node, 0);
        Built built{node, std::move(input.support)};
        MergeSupport(built.support, {node});
        return built;
      }

      case OpKind::kAggregate: {
        PGIVM_ASSIGN_OR_RETURN(Built input, Build(op->children[0]));
        const Schema& child_schema = op->children[0]->schema;
        std::vector<BoundExpression> keys;
        for (const auto& [name, expr] : op->group_by) {
          PGIVM_ASSIGN_OR_RETURN(BoundExpression bound,
                                 BoundExpression::Bind(expr, child_schema));
          keys.push_back(std::move(bound));
        }
        std::vector<AggregateSpec> specs;
        for (const auto& [name, expr] : op->aggregates) {
          PGIVM_ASSIGN_OR_RETURN(
              AggregateSpec spec,
              AggregateSpec::Make(expr, child_schema, nullptr));
          specs.push_back(std::move(spec));
        }
        auto* node = Create(std::make_unique<AggregateNode>(
            op->schema, std::move(keys), std::move(specs)));
        input.node->AddOutput(node, 0);
        Built built{node, std::move(input.support)};
        MergeSupport(built.support, {node});
        return built;
      }

      case OpKind::kUnnest: {
        PGIVM_ASSIGN_OR_RETURN(Built input, Build(op->children[0]));
        const Schema& child_schema = op->children[0]->schema;
        PGIVM_ASSIGN_OR_RETURN(
            BoundExpression collection,
            BoundExpression::Bind(op->unnest_expr, child_schema));
        std::vector<int> kept;
        for (size_t i = 0; i < child_schema.size(); ++i) {
          const std::string& name = child_schema.at(i).name;
          bool dropped = false;
          for (const std::string& d : op->unnest_drop_columns) {
            if (d == name) dropped = true;
          }
          if (!dropped) kept.push_back(static_cast<int>(i));
        }
        auto* node = Create(std::make_unique<UnnestNode>(
            op->schema, std::move(collection), std::move(kept),
            options_.fine_grained_unnest));
        input.node->AddOutput(node, 0);
        Built built{node, std::move(input.support)};
        MergeSupport(built.support, {node});
        return built;
      }

      case OpKind::kExpand:
        return Status::Internal(
            "Expand reached the network builder; run LowerToFra first");
    }
    return Status::Internal(
        StrCat("unhandled operator ", OpKindName(op->kind)));
  }

  ReteNetwork* network_;
  const PropertyGraph* graph_;
  NetworkOptions options_;
  NodeRegistry* registry_;
  std::vector<ReteNode*> created_;
};

}  // namespace

Result<BuiltView> BuildViewInto(ReteNetwork* network, const OpPtr& plan,
                                const PropertyGraph* graph,
                                const NetworkOptions& options,
                                NodeRegistry* registry) {
  Builder builder(network, graph, options, registry);
  Result<Built> root = builder.Build(plan);
  if (!root.ok()) {
    // Roll the half-built sub-network back out so earlier views (and the
    // registry) never see dangling construction debris.
    if (registry != nullptr) registry->RemoveNodes(builder.created());
    network->RemoveNodes(builder.created());
    return root.status();
  }
  // The production takes the *plan's* schema: a registry hit may return a
  // root built for another view, whose schema carries that view's aliases
  // — positionally identical, but this view's diagnostics and chained
  // subscribers should see its own column names.
  auto* production =
      network->Add(std::make_unique<ProductionNode>(plan->schema));
  root->node->AddOutput(production, 0);
  network->SetProduction(production);
  BuiltView view;
  view.production = production;
  view.nodes = std::move(root->support);
  view.nodes.push_back(production);
  view.created = builder.created();
  view.created.push_back(production);
  return view;
}

namespace {

/// Strict integer parse shared by the environment overrides: the value
/// must be entirely an integer and fit in int, or it is rejected with a
/// stderr warning naming the variable. A malformed value must not silently
/// resolve to some other setting ("8abc" is not 8; 99999999999 is not
/// whatever it truncates to in int).
bool ParseStrictEnvInt(const char* name, const char* env, int* out) {
  errno = 0;
  char* end = nullptr;
  long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') {
    std::fprintf(stderr, "pgivm: ignoring %s=\"%s\" (not an integer)\n",
                 name, env);
    return false;
  }
  if (errno == ERANGE || value > std::numeric_limits<int>::max() ||
      value < std::numeric_limits<int>::min()) {
    std::fprintf(stderr, "pgivm: ignoring %s=\"%s\" (out of range)\n", name,
                 env);
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

}  // namespace

NetworkOptions ApplyEnvExecutorOverride(NetworkOptions options) {
  const char* env = std::getenv("PGIVM_THREADS");
  if (env == nullptr || *env == '\0') return options;
  int threads = 0;
  if (!ParseStrictEnvInt("PGIVM_THREADS", env, &threads)) return options;
  if (threads > 1) {
    options.executor = ExecutorKind::kParallel;
    options.num_threads = threads;
  } else {
    options.executor = ExecutorKind::kSerial;
    options.num_threads = 1;
  }
  return options;
}

NetworkOptions ApplyEnvProfilingOverride(NetworkOptions options) {
  const char* env = std::getenv("PGIVM_PROFILE");
  if (env == nullptr || *env == '\0') return options;
  int value = 0;
  if (!ParseStrictEnvInt("PGIVM_PROFILE", env, &value)) return options;
  options.profiling = value != 0;
  return options;
}

NetworkOptions ApplyEnvMorselOverride(NetworkOptions options) {
  const char* env = std::getenv("PGIVM_MORSEL");
  if (env == nullptr || *env == '\0') return options;
  int value = 0;
  if (!ParseStrictEnvInt("PGIVM_MORSEL", env, &value)) return options;
  if (value >= 0) {
    options.morsel_min_node_entries = static_cast<size_t>(value);
  } else {
    options.morsel_partitions = 1;  // negative = disable morsel execution
  }
  return options;
}

Result<std::unique_ptr<ReteNetwork>> BuildNetwork(
    const OpPtr& plan, const PropertyGraph* graph,
    const NetworkOptions& options) {
  // `options` is taken as-given: the PGIVM_THREADS override is applied
  // exactly once, at ViewCatalog::Create — never re-read here, so a view
  // registered later cannot resolve differently from its engine.
  auto network = std::make_unique<ReteNetwork>();
  network->set_propagation(options.propagation);
  network->set_executor(options.executor, options.num_threads);
  network->set_consolidation_cutoff(options.consolidation_cutoff);
  network->set_parallel_min_wave_entries(options.parallel_min_wave_entries);
  network->set_morsel_min_node_entries(options.morsel_min_node_entries);
  network->set_morsel_partitions(options.morsel_partitions);
  network->set_epoch_retention(options.epoch_retention);
  network->set_trace_capacity(options.trace_capacity);
  network->set_profiling(options.profiling);
  PGIVM_ASSIGN_OR_RETURN(
      BuiltView view,
      BuildViewInto(network.get(), plan, graph, options, nullptr));
  (void)view;
  return network;
}

}  // namespace pgivm
