#ifndef PGIVM_VALUE_VALUE_H_
#define PGIVM_VALUE_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "value/ids.h"
#include "value/path.h"

namespace pgivm {

class Value;

/// Unordered-in-spirit bag/list of values. Per the paper, collection
/// properties are *bags*: the engine never relies on element order, only on
/// element multiplicities; the vector is just the storage.
using ValueList = std::vector<Value>;

/// String-keyed map of values (ordered map for deterministic iteration,
/// comparison and hashing).
using ValueMap = std::map<std::string, Value>;

/// Dynamically typed value of the property graph data model.
///
/// Types: null, bool, integer, double, string, list, map, vertex reference,
/// edge reference, and path (ordered, atomic — see Path). Lists and maps are
/// stored behind shared immutable pointers so copying a Value is cheap.
///
/// The class provides a *total order* across all values (type rank first,
/// numeric types compared numerically among themselves), equality consistent
/// with that order, and hashing consistent with equality — the properties
/// the Rete engine's counted memories require.
class Value {
 public:
  enum class Type {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kList,
    kMap,
    kVertex,
    kEdge,
    kPath,
  };

  /// Default-constructed Value is null.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Double(double d) { return Value(Rep(d)); }
  static Value String(std::string s) { return Value(Rep(std::move(s))); }
  static Value List(ValueList elements);
  static Value Map(ValueMap entries);
  static Value Vertex(VertexId id) { return Value(Rep(VertexTag{id})); }
  static Value Edge(EdgeId id) { return Value(Rep(EdgeTag{id})); }
  static Value MakePath(Path p);

  Type type() const;

  /// Returns a stable name for `t` ("Int", "List", ...).
  static const char* TypeName(Type t);

  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_numeric() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_list() const { return type() == Type::kList; }
  bool is_map() const { return type() == Type::kMap; }
  bool is_vertex() const { return type() == Type::kVertex; }
  bool is_edge() const { return type() == Type::kEdge; }
  bool is_path() const { return type() == Type::kPath; }

  /// Typed accessors; calling the wrong accessor is a programming error
  /// (asserted in debug builds, undefined otherwise).
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  const ValueList& AsList() const;
  const ValueMap& AsMap() const;
  VertexId AsVertex() const { return std::get<VertexTag>(rep_).id; }
  EdgeId AsEdge() const { return std::get<EdgeTag>(rep_).id; }
  const Path& AsPath() const;

  /// Numeric value widened to double (valid for kInt and kDouble).
  double NumericAsDouble() const;

  /// Cypher-style rendering: null, true, 1, 2.5, 'text', [1, 2],
  /// {k: v}, (#3) for vertices, [#4] for edges, <1-[e0]->2> for paths.
  std::string ToString() const;

  /// Deep heap-usage estimate (inline representation + owned payloads),
  /// used by the memory-footprint experiments. Shared payloads are counted
  /// at every holder — an upper bound.
  size_t ApproxMemoryBytes() const;

  size_t Hash() const;

  /// Total order over all values. Type rank ordering:
  /// null < bool < number < string < list < map < vertex < edge < path,
  /// with kInt and kDouble sharing the "number" rank and comparing
  /// numerically (so Int(1) == Double(1.0)).
  static int Compare(const Value& a, const Value& b);

  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return Compare(a, b) != 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }

 private:
  struct VertexTag {
    VertexId id;
  };
  struct EdgeTag {
    EdgeId id;
  };
  using ListPtr = std::shared_ptr<const ValueList>;
  using MapPtr = std::shared_ptr<const ValueMap>;
  using PathPtr = std::shared_ptr<const Path>;
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string,
                           ListPtr, MapPtr, VertexTag, EdgeTag, PathPtr>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// std::hash adapter so Values can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace pgivm

#endif  // PGIVM_VALUE_VALUE_H_
