#include "support/string_util.h"

#include <algorithm>
#include <cctype>

namespace pgivm {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace pgivm
