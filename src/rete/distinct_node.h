#ifndef PGIVM_RETE_DISTINCT_NODE_H_
#define PGIVM_RETE_DISTINCT_NODE_H_

#include "rete/node.h"
#include "rete/sharded_map.h"

namespace pgivm {

/// δ — bag-to-set conversion with counting (Griffin–Libkin style): a tuple
/// is asserted downstream when its support count rises 0→positive and
/// retracted when it falls back to 0, regardless of the multiplicities in
/// between. The support bag is sharded by tuple hash so morsel partitions
/// (which own disjoint tuple sets — the "key" here is the whole tuple)
/// write disjoint shards.
class DistinctNode : public ReteNode {
 public:
  explicit DistinctNode(Schema schema) : ReteNode(std::move(schema)) {}

  void OnDelta(int port, const Delta& delta) override;

  MorselKind morsel_kind() const override { return MorselKind::kKeyed; }
  void MorselPartitionMap(int port, const Delta& delta, uint32_t partitions,
                          size_t begin, size_t end,
                          uint32_t* map) const override;
  void OnDeltaMorsel(int port, const Delta& delta, const uint32_t* map,
                     uint32_t partition, uint32_t partitions,
                     Delta& out) override;

  /// Replays each supported tuple exactly once (set semantics).
  bool ReplayOutput(Delta& out) const override {
    out.reserve(out.size() + support_.distinct_size());
    for (const Bag& bag : support_.shards()) {
      for (const auto& [tuple, count] : bag.counts()) {
        (void)count;
        out.push_back({tuple, 1});
      }
    }
    return true;
  }

  void Reset() override { support_.Clear(); }

  size_t ApproxMemoryBytes() const override {
    return support_.ApproxMemoryBytes();
  }

  std::string DebugString() const override { return "Distinct"; }
  const char* KindName() const override { return "Distinct"; }

 private:
  void ProcessEntries(const Delta& delta, const uint32_t* map,
                      uint32_t partition, Delta& out);

  ShardedBag support_;
};

}  // namespace pgivm

#endif  // PGIVM_RETE_DISTINCT_NODE_H_
